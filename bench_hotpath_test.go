// Hot-path benchmark: raw simulated cycles per wall-clock second of
// Chip.Run for every evaluated system kind, independent of the
// campaign/experiment layers. This is the repo's recorded performance
// baseline — BENCH_hotpath.json holds the before/after numbers of each
// optimization PR, and CI runs the suite with -benchtime=1x so it
// cannot rot.
//
//	go test -run=NONE -bench=BenchmarkHotPath -benchtime=2s .
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// hotPathCell names one benchmark configuration: a system kind, in
// Kind order, plus dynamic-mode-policy cells (policy decisions and
// their transitions are chip-level events the event-horizon run loop
// must absorb, so their speed is part of the recorded trajectory).
type hotPathCell struct {
	name   string
	kind   core.Kind
	policy string
}

var hotPathKinds = func() []hotPathCell {
	var cells []hotPathCell
	for _, k := range core.AllKinds() {
		cells = append(cells, hotPathCell{name: k.String(), kind: k})
	}
	return append(cells,
		hotPathCell{name: "MMM-IPC+duty-cycle", kind: core.KindMMMIPC, policy: "duty-cycle"},
		hotPathCell{name: "Reunion+utilization", kind: core.KindReunion, policy: "utilization"},
	)
}()

// hotPathChip builds the benchmark system: the apache workload (the
// paper's most switch-heavy server mix) at the default configuration,
// settled past the cold-cache transient so the benchmark window
// measures steady-state simulation speed.
func hotPathChip(b *testing.B, cell hotPathCell) *core.Chip {
	b.Helper()
	wl, err := workload.ByName("apache")
	if err != nil {
		b.Fatal(err)
	}
	chip, err := core.NewSystem(core.Options{Kind: cell.kind, Policy: cell.policy, Workload: wl, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	chip.Run(20_000)
	return chip
}

// BenchmarkHotPath measures Chip.Run throughput per system kind in
// simulated cycles per second (the number BENCH_hotpath.json records).
func BenchmarkHotPath(b *testing.B) {
	const slice = 10_000 // cycles per iteration: several gang timeslices per second
	for _, cell := range hotPathKinds {
		b.Run(cell.name, func(b *testing.B) {
			chip := hotPathChip(b, cell)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				chip.Run(slice)
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(b.N)*slice/secs, "cycles/sec")
			}
		})
	}
}

// BenchmarkHotPathTick measures the per-cycle reference path (Tick in a
// loop) so the event-horizon bulk stepping of Run keeps an honest
// comparison point.
func BenchmarkHotPathTick(b *testing.B) {
	const slice = 10_000
	for _, kind := range []core.Kind{core.KindNoDMR, core.KindMMMTP} {
		b.Run(kind.String(), func(b *testing.B) {
			chip := hotPathChip(b, hotPathCell{name: kind.String(), kind: kind})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := sim.Cycle(0); c < slice; c++ {
					chip.Tick()
				}
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(b.N)*slice/secs, "cycles/sec")
			}
		})
	}
}
