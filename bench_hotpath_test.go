// Hot-path benchmark: raw simulated cycles per wall-clock second of
// Chip.Run for every evaluated system kind, independent of the
// campaign/experiment layers. This is the repo's recorded performance
// baseline — BENCH_hotpath.json holds the before/after numbers of each
// optimization PR, and CI runs the suite with -benchtime=1x so it
// cannot rot.
//
//	go test -run=NONE -bench=BenchmarkHotPath -benchtime=2s .
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// hotPathCell names one benchmark configuration: a system kind, in
// Kind order, plus dynamic-mode-policy cells (policy decisions and
// their transitions are chip-level events the event-horizon run loop
// must absorb, so their speed is part of the recorded trajectory).
type hotPathCell struct {
	name   string
	kind   core.Kind
	policy string
}

var hotPathKinds = func() []hotPathCell {
	var cells []hotPathCell
	for _, k := range core.AllKinds() {
		cells = append(cells, hotPathCell{name: k.String(), kind: k})
	}
	return append(cells,
		hotPathCell{name: "MMM-IPC+duty-cycle", kind: core.KindMMMIPC, policy: "duty-cycle"},
		hotPathCell{name: "Reunion+utilization", kind: core.KindReunion, policy: "utilization"},
	)
}()

// hotPathWorkloads and hotPathSeeds span the measurement grid: two
// workload mixes (apache, the paper's most switch-heavy server mix;
// oltp, its transaction-processing counterpart) by three seeds, so the
// recorded numbers carry a per-cell min/median/max spread instead of a
// single apache/seed-11 point — per "Producing Wrong Data Without
// Doing Anything Obviously Wrong", one cell's median is exactly the
// measurement-bias trap. benchgate treats apache/s11 as the primary
// cell, so baselines recorded before the grid still gate.
var (
	hotPathWorkloads = []string{"apache", "oltp"}
	hotPathSeeds     = []uint64{11, 12, 13}
)

// hotPathChip builds one benchmark system at the default
// configuration, settled past the cold-cache transient so the
// benchmark window measures steady-state simulation speed.
func hotPathChip(b *testing.B, cell hotPathCell, wlName string, seed uint64) *core.Chip {
	b.Helper()
	wl, err := workload.ByName(wlName)
	if err != nil {
		b.Fatal(err)
	}
	chip, err := core.NewSystem(core.Options{Kind: cell.kind, Policy: cell.policy, Workload: wl, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	chip.Run(20_000)
	return chip
}

// BenchmarkHotPath measures Chip.Run throughput in simulated cycles
// per second across the kind × workload × seed grid (the numbers
// BENCH_hotpath.json records). Sub-benchmark names are
// <kind>/<workload>/s<seed>, the cell key benchgate parses.
func BenchmarkHotPath(b *testing.B) {
	const slice = 10_000 // cycles per iteration: several gang timeslices per second
	for _, cell := range hotPathKinds {
		for _, wlName := range hotPathWorkloads {
			for _, seed := range hotPathSeeds {
				b.Run(fmt.Sprintf("%s/%s/s%d", cell.name, wlName, seed), func(b *testing.B) {
					chip := hotPathChip(b, cell, wlName, seed)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						chip.Run(slice)
					}
					b.StopTimer()
					secs := b.Elapsed().Seconds()
					if secs > 0 {
						b.ReportMetric(float64(b.N)*slice/secs, "cycles/sec")
					}
				})
			}
		}
	}
}

// BenchmarkHotPathTick measures the per-cycle reference path (Tick in a
// loop) so the event-horizon bulk stepping of Run keeps an honest
// comparison point.
func BenchmarkHotPathTick(b *testing.B) {
	const slice = 10_000
	for _, kind := range []core.Kind{core.KindNoDMR, core.KindMMMTP} {
		b.Run(kind.String(), func(b *testing.B) {
			chip := hotPathChip(b, hotPathCell{name: kind.String(), kind: kind}, "apache", 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := sim.Cycle(0); c < slice; c++ {
					chip.Tick()
				}
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(b.N)*slice/secs, "cycles/sec")
			}
		})
	}
}
