// Hot-path benchmark: raw simulated cycles per wall-clock second of
// Chip.Run for every evaluated system kind, independent of the
// campaign/experiment layers. This is the repo's recorded performance
// baseline — BENCH_hotpath.json holds the before/after numbers of each
// optimization PR, and CI runs the suite with -benchtime=1x so it
// cannot rot.
//
//	go test -run=NONE -bench=BenchmarkHotPath -benchtime=2s .
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// hotPathKinds is every evaluated system configuration, in Kind order.
var hotPathKinds = []core.Kind{
	core.KindNoDMR2X,
	core.KindNoDMR,
	core.KindReunion,
	core.KindDMRBase,
	core.KindMMMIPC,
	core.KindMMMTP,
	core.KindSingleOS,
}

// hotPathChip builds the benchmark system: the apache workload (the
// paper's most switch-heavy server mix) at the default configuration,
// settled past the cold-cache transient so the benchmark window
// measures steady-state simulation speed.
func hotPathChip(b *testing.B, kind core.Kind) *core.Chip {
	b.Helper()
	wl, err := workload.ByName("apache")
	if err != nil {
		b.Fatal(err)
	}
	chip, err := core.NewSystem(core.Options{Kind: kind, Workload: wl, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	chip.Run(20_000)
	return chip
}

// BenchmarkHotPath measures Chip.Run throughput per system kind in
// simulated cycles per second (the number BENCH_hotpath.json records).
func BenchmarkHotPath(b *testing.B) {
	const slice = 10_000 // cycles per iteration: several gang timeslices per second
	for _, kind := range hotPathKinds {
		b.Run(kind.String(), func(b *testing.B) {
			chip := hotPathChip(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				chip.Run(slice)
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(b.N)*slice/secs, "cycles/sec")
			}
		})
	}
}

// BenchmarkHotPathTick measures the per-cycle reference path (Tick in a
// loop) so the event-horizon bulk stepping of Run keeps an honest
// comparison point.
func BenchmarkHotPathTick(b *testing.B) {
	const slice = 10_000
	for _, kind := range []core.Kind{core.KindNoDMR, core.KindMMMTP} {
		b.Run(kind.String(), func(b *testing.B) {
			chip := hotPathChip(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := sim.Cycle(0); c < slice; c++ {
					chip.Tick()
				}
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(b.N)*slice/secs, "cycles/sec")
			}
		})
	}
}
