// Package repro's benchmarks regenerate every table and figure of the
// paper's evaluation (Section 5). Each benchmark runs the experiment at
// a scale controlled by -short (reduced) or default (full), reports the
// paper-comparable numbers through b.ReportMetric, and prints the same
// rows the paper reports.
//
//	go test -bench=. -benchmem                 # everything
//	go test -bench=BenchmarkFigure5a           # one figure
//	go test -short -bench=.                    # reduced scale
package repro

import (
	"fmt"
	"testing"

	"repro/internal/exp"
)

func benchConfig(b *testing.B) exp.Config {
	if testing.Short() {
		return exp.Quick()
	}
	return exp.Default()
}

// The Figure 5 and Figure 6 sweeps each feed two benchmarks (the (a)
// per-thread IPC panel and the (b) throughput panel); cache the sweep
// so a full -bench=. run does not simulate everything twice.
var (
	fig5Cache []exp.Fig5Row
	fig6Cache []exp.Fig6Row
)

func figure5(b *testing.B, cfg exp.Config) []exp.Fig5Row {
	if fig5Cache == nil {
		rows, err := exp.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !testing.Short() {
			fig5Cache = rows
		}
		return rows
	}
	return fig5Cache
}

func figure6(b *testing.B, cfg exp.Config) []exp.Fig6Row {
	if fig6Cache == nil {
		rows, err := exp.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !testing.Short() {
			fig6Cache = rows
		}
		return rows
	}
	return fig6Cache
}

// BenchmarkFigure5a regenerates Figure 5(a): normalized per-thread user
// IPC of No DMR 2X, No DMR and Reunion. Paper bands: No DMR +8–15%
// over the 2X baseline; Reunion −22–48%.
func BenchmarkFigure5a(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := figure5(b, cfg)
		if i == 0 {
			fmt.Println(exp.Figure5aTable(rows))
			for _, r := range rows {
				b.ReportMetric(r.IPCNoDMR.Mean(), r.Workload+":NoDMR")
				b.ReportMetric(r.IPCReunion.Mean(), r.Workload+":Reunion")
			}
		}
	}
}

// BenchmarkFigure5b regenerates Figure 5(b): normalized throughput.
// Paper bands: No DMR ≈ 0.5 of the 2X baseline; Reunion ≈ 0.25–0.33.
func BenchmarkFigure5b(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := figure5(b, cfg)
		if i == 0 {
			fmt.Println(exp.Figure5bTable(rows))
			for _, r := range rows {
				b.ReportMetric(r.TPNoDMR.Mean(), r.Workload+":NoDMR")
				b.ReportMetric(r.TPReunion.Mean(), r.Workload+":Reunion")
			}
		}
	}
}

// BenchmarkFigure6a regenerates Figure 6(a): consolidated-server
// per-thread user IPC under DMR-base, MMM-IPC and MMM-TP. Paper bands:
// the performance VM gains 25–85% (MMM-IPC) and 24–67% (MMM-TP); the
// reliable VM is roughly unchanged.
func BenchmarkFigure6a(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := figure6(b, cfg)
		if i == 0 {
			fmt.Println(exp.Figure6aTable(rows))
			for _, r := range rows {
				b.ReportMetric(r.IPCPerfIPC.Mean(), r.Workload+":perf@IPC")
				b.ReportMetric(r.IPCPerfTP.Mean(), r.Workload+":perf@TP")
			}
		}
	}
}

// BenchmarkFigure6b regenerates Figure 6(b): consolidated-server
// throughput. Paper bands: MMM-TP's performance VM 2.4–3.6x DMR-base;
// whole machine 1.7–2.3x.
func BenchmarkFigure6b(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows := figure6(b, cfg)
		if i == 0 {
			fmt.Println(exp.Figure6bTable(rows))
			for _, r := range rows {
				b.ReportMetric(r.TPPerfTP.Mean(), r.Workload+":perfVM@TP")
				b.ReportMetric(r.TPTotalTP.Mean(), r.Workload+":total@TP")
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: the per-VCPU mode-switching
// overheads measured from MMM-TP. Paper values: Enter ≈ 2.2–2.4k
// cycles, Leave ≈ 9.9–10.4k cycles.
func BenchmarkTable1(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(exp.Table1Table(rows))
			for _, r := range rows {
				b.ReportMetric(r.Enter.Mean(), r.Workload+":enter-cycles")
				b.ReportMetric(r.Leave.Mean(), r.Workload+":leave-cycles")
			}
		}
	}
}

// BenchmarkTable2 regenerates Table 2: cycles before switching modes in
// a single-OS system. Paper values: user 59k–554k, OS 35k–220k.
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig(b)
	if !testing.Short() {
		// Long-burst workloads (pgbench) need several phase round
		// trips per run for a stable estimate.
		cfg.Measure = 2_500_000
	}
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(exp.Table2Table(rows))
			for _, r := range rows {
				b.ReportMetric(r.UserCyc.Mean()/1000, r.Workload+":user-kcyc")
				b.ReportMetric(r.OSCyc.Mean()/1000, r.Workload+":os-kcyc")
			}
		}
	}
}

// BenchmarkPABLatency regenerates the Section 5.2 design study: the
// serial 2-cycle PAB lookup costs the performance application 3–10%
// IPC; the reliable application is unaffected.
func BenchmarkPABLatency(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.PABStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(exp.PABTable(rows))
			for _, r := range rows {
				b.ReportMetric(r.PerfIPCRatio.Mean(), r.Workload+":perf-serial/parallel")
			}
		}
	}
}

// BenchmarkSingleOSOverhead regenerates the Section 5.3 analysis:
// single-OS mode switching costs ≈8% for Apache and <5% for the other
// workloads.
func BenchmarkSingleOSOverhead(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.SingleOSOverhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(exp.SingleOSTable(rows))
			for _, r := range rows {
				b.ReportMetric(100*r.Overhead.Mean(), r.Workload+":overhead-pct")
			}
		}
	}
}

// BenchmarkFaultInjection runs the protection-validation campaign the
// paper's design arguments imply (not a paper table, but the direct
// test of Section 3.4's mechanisms).
func BenchmarkFaultInjection(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := exp.FaultStudy(cfg, "apache", 40_000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(exp.FaultTable(rows))
		}
	}
}
