// Package vcpu models the OS-visible virtual processors of the MMM and
// the hardware state machine that moves their architectural state
// through the cache hierarchy during mode transitions and migrations.
//
// The chip exposes VCPUs to the system software and maps them onto
// physical cores (statically for a traditional DMR system and MMM-IPC,
// dynamically and overcommitted for MMM-TP). A VCPU's ~2.3 KB of
// architectural state is saved to and restored from a reserved portion
// of the physical address space — the scratchpad — using ordinary
// coherent loads and stores, so state can migrate between cores over
// the on-chip coherence protocol.
package vcpu

import (
	"repro/internal/isa"
	"repro/internal/paging"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mode is the per-VCPU reliability register the paper proposes: a
// 2-bit, privileged-software-writable register selecting the execution
// mode.
type Mode uint8

const (
	// ModeReliable runs the VCPU under DMR at all times.
	ModeReliable Mode = iota
	// ModePerformance runs the VCPU on a single core at all times
	// (evaluated only as a limit case; unsafe for privileged code).
	ModePerformance
	// ModePerfUser runs unprivileged software on a single core but
	// enters DMR whenever the VCPU executes privileged code — the mode
	// this paper's mechanisms make safe.
	ModePerfUser
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeReliable:
		return "reliable"
	case ModePerformance:
		return "performance"
	case ModePerfUser:
		return "perf-user"
	default:
		return "?"
	}
}

// VCPU is one OS-visible virtual processor.
type VCPU struct {
	ID    int
	Guest int
	Mode  Mode

	// Reg is the live architectural state; SavedPriv is the redundant
	// copy of the privileged registers written to the scratchpad on
	// Leave-DMR and verified against the vocal's copy on Enter-DMR.
	Reg       isa.RegFile
	SavedPriv [isa.NumPriv]uint64
	HasSaved  bool

	Space  *paging.Space
	Stream *trace.Shared

	// Scratch is the physical base address of this VCPU's slot in the
	// scratchpad space (two state images: vocal's and mute's).
	Scratch uint64

	// Paused marks a VCPU with no core available (overcommit).
	Paused bool

	// InOS preserves the user/OS phase across migrations so cycle
	// attribution (Table 2) stays correct when the VCPU moves between
	// cores.
	InOS bool
}

// ScratchSlotBytes is the scratchpad footprint per VCPU: two full state
// images (the vocal's and the mute's redundant copy), rounded to lines.
func ScratchSlotBytes(cfg *sim.Config) uint64 {
	lines := uint64(cfg.VCPUStateLines())
	return 2 * lines * uint64(cfg.LineSize)
}

// AllocScratch reserves the scratchpad region for n VCPUs and returns
// the base physical addresses of each slot.
func AllocScratch(cfg *sim.Config, pm *paging.PhysMap, n int) []uint64 {
	slot := ScratchSlotBytes(cfg)
	pages := (slot*uint64(n) + uint64(cfg.PageBytes) - 1) / uint64(cfg.PageBytes)
	base := pm.Alloc(pages, paging.DomainScratchpad, -1) << pm.PageShift()
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*slot
	}
	return out
}

// Engine is the per-chip hardware state machine that moves VCPU state.
// The scratchpad is a reserved portion of the physical address space
// that the transition state machine keeps resident on chip (pinned L3
// ways); writes stream at one line per cycle and drain with one
// scratchpad access latency, while reads are dependent, serial
// line-by-line accesses — the state machine is deliberately simple
// hardware. These mechanics, not constants, produce the Table 1 costs:
// Enter-DMR ≈ 2.3k cycles (dominated by the mute's serial reload and
// verification of ~2.3 KB of state) and MMM-TP Leave-DMR ≈ 10k cycles
// (dominated by the 8192-line L2 flush).
type Engine struct {
	cfg *sim.Config

	Saves    uint64
	Restores uint64
	Verifies uint64
	// VerifyFailures counts privileged-state divergence detected when
	// entering DMR — exactly the fault class Section 3.4.3 defends
	// against.
	VerifyFailures uint64

	// OnVerifyFailure, when non-nil, observes every caught divergence
	// with the victim VCPU's id, so reliability evaluation can
	// attribute the catch to the injected privileged-register fault.
	OnVerifyFailure func(vcpu int, now sim.Cycle)
}

// NewEngine creates the state-move engine.
func NewEngine(cfg *sim.Config) *Engine {
	return &Engine{cfg: cfg}
}

// vocalImage and muteImage locate the two state images in a VCPU slot.
func (e *Engine) vocalImage(v *VCPU) uint64 { return v.Scratch }
func (e *Engine) muteImage(v *VCPU) uint64 {
	return v.Scratch + uint64(e.cfg.VCPUStateLines()*e.cfg.LineSize)
}

// Save writes one state image (full or privileged-only) from core to
// the given scratchpad image, returning the completion cycle: the
// stores are pipelined one line per cycle and the last drains after one
// scratchpad access latency.
func (e *Engine) Save(core int, image uint64, lines int, now sim.Cycle) sim.Cycle {
	e.Saves++
	_ = core
	_ = image
	return now + sim.Cycle(lines) + e.cfg.ScratchLat
}

// Restore reads one state image into core, returning the completion
// cycle. Loads are serial: each line's address depends on the state
// machine's progress, so every line pays the scratchpad access latency.
func (e *Engine) Restore(core int, image uint64, lines int, now sim.Cycle) sim.Cycle {
	e.Restores++
	_ = core
	_ = image
	return now + sim.Cycle(lines)*e.cfg.ScratchLat
}

// privLines returns the number of cache lines holding only the
// privileged registers (the MMM-IPC Leave-DMR save set).
func (e *Engine) privLines() int {
	bytes := isa.NumPriv * 8
	return (bytes + e.cfg.LineSize - 1) / e.cfg.LineSize
}

// SaveVocal stores the vocal core's full state image.
func (e *Engine) SaveVocal(core int, v *VCPU, now sim.Cycle) sim.Cycle {
	return e.Save(core, e.vocalImage(v), e.cfg.VCPUStateLines(), now)
}

// SaveMutePriv stores the mute's redundant privileged-register copy
// (Leave-DMR). It also snapshots the values for later verification.
func (e *Engine) SaveMutePriv(core int, v *VCPU, now sim.Cycle) sim.Cycle {
	v.SavedPriv = v.Reg.Priv
	v.HasSaved = true
	return e.Save(core, e.muteImage(v), e.privLines(), now)
}

// SaveMuteFull stores the mute's full state image (MMM-TP Leave-DMR,
// where the mute may next run an unrelated VCPU).
func (e *Engine) SaveMuteFull(core int, v *VCPU, now sim.Cycle) sim.Cycle {
	v.SavedPriv = v.Reg.Priv
	v.HasSaved = true
	return e.Save(core, e.muteImage(v), e.cfg.VCPUStateLines(), now)
}

// RestoreVocal reads a VCPU's full vocal-side state image into core.
func (e *Engine) RestoreVocal(core int, v *VCPU, now sim.Cycle) sim.Cycle {
	return e.Restore(core, e.vocalImage(v), e.cfg.VCPUStateLines(), now)
}

// SaveVocalPriv stores only the vocal's privileged registers (the
// MMM-IPC Leave-DMR save set: "the cores need only store their
// privileged state to the cache hierarchy for later use").
func (e *Engine) SaveVocalPriv(core int, v *VCPU, now sim.Cycle) sim.Cycle {
	return e.Save(core, e.vocalImage(v), e.privLines(), now)
}

// EnterVerify performs the mute side of Enter-DMR: load the mute's own
// previously saved privileged copy (available from cycle now), then the
// vocal's user and privileged registers (available once the vocal's
// save completes at vocalReady), verifying the privileged registers
// against the mute's copy. It returns the completion cycle and whether
// privileged state was corrupted while the vocal ran unprotected
// (detected, as the design requires, before any architected state is
// updated).
func (e *Engine) EnterVerify(muteCore int, v *VCPU, now, vocalReady sim.Cycle) (sim.Cycle, bool) {
	e.Verifies++
	// Mute's own redundant privileged copy.
	t := e.Restore(muteCore, e.muteImage(v), e.privLines(), now)
	// Vocal's full image: user registers, then privileged registers.
	if vocalReady > t {
		t = vocalReady
	}
	t = e.Restore(muteCore, e.vocalImage(v), e.cfg.VCPUStateLines(), t)
	// Register-by-register comparison in the state machine.
	t += sim.Cycle(isa.NumPriv / 8)
	corrupted := false
	if v.HasSaved && v.SavedPriv != v.Reg.Priv {
		corrupted = true
		e.VerifyFailures++
		if e.OnVerifyFailure != nil {
			e.OnVerifyFailure(v.ID, now)
		}
		// Recover using the redundant copy.
		v.Reg.Priv = v.SavedPriv
	}
	return t, corrupted
}
