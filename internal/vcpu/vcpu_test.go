package vcpu

import (
	"testing"

	"repro/internal/paging"
	"repro/internal/sim"
)

func TestScratchAllocation(t *testing.T) {
	cfg := sim.DefaultConfig()
	pm := paging.NewPhysMap(1<<30, cfg.PageBytes)
	slots := AllocScratch(cfg, pm, 4)
	if len(slots) != 4 {
		t.Fatalf("got %d slots", len(slots))
	}
	slot := ScratchSlotBytes(cfg)
	for i := 1; i < len(slots); i++ {
		if slots[i]-slots[i-1] != slot {
			t.Fatalf("slots not contiguous: %d", slots[i]-slots[i-1])
		}
	}
	if pm.OwnerOfAddr(slots[0]) != paging.DomainScratchpad {
		t.Fatal("scratchpad not owned by the scratchpad domain")
	}
	// Two full state images per slot.
	if slot != 2*uint64(cfg.VCPUStateLines()*cfg.LineSize) {
		t.Fatalf("slot size = %d", slot)
	}
}

func TestSaveRestoreCosts(t *testing.T) {
	cfg := sim.DefaultConfig()
	e := NewEngine(cfg)
	v := &VCPU{Scratch: 0x10000}
	lines := cfg.VCPUStateLines()
	// Saves stream at one line per cycle plus the drain latency.
	if got := e.SaveVocal(0, v, 1000) - 1000; got != sim.Cycle(lines)+cfg.ScratchLat {
		t.Fatalf("save cost = %d", got)
	}
	// Restores are serial: one access latency per line. For the
	// default config this is what puts Enter-DMR near the paper's
	// ~2.2-2.4k cycles.
	if got := e.RestoreVocal(0, v, 0); got != sim.Cycle(lines)*cfg.ScratchLat {
		t.Fatalf("restore cost = %d", got)
	}
}

func TestEnterVerifyDetectsCorruption(t *testing.T) {
	cfg := sim.DefaultConfig()
	e := NewEngine(cfg)
	v := &VCPU{Scratch: 0}
	for i := range v.Reg.Priv {
		v.Reg.Priv[i] = uint64(i) * 3
	}
	// Leave-DMR snapshots the privileged registers.
	e.SaveMutePriv(1, v, 0)
	// A fault corrupts a privileged register while the VCPU runs
	// unprotected.
	v.Reg.Priv[7] ^= 1 << 33
	_, corrupted := e.EnterVerify(1, v, 10_000, 10_000)
	if !corrupted {
		t.Fatal("privileged corruption not detected on Enter-DMR")
	}
	if e.VerifyFailures != 1 {
		t.Fatal("failure not counted")
	}
	// Recovery restored the redundant copy.
	if v.Reg.Priv[7] != 7*3 {
		t.Fatal("privileged state not recovered from the mute's copy")
	}
}

func TestEnterVerifyCleanPath(t *testing.T) {
	cfg := sim.DefaultConfig()
	e := NewEngine(cfg)
	v := &VCPU{Scratch: 0}
	e.SaveMuteFull(1, v, 0)
	done, corrupted := e.EnterVerify(1, v, 0, 500)
	if corrupted {
		t.Fatal("false positive on clean state")
	}
	// The vocal-image load cannot begin before vocalReady.
	if done < 500+sim.Cycle(cfg.VCPUStateLines())*cfg.ScratchLat {
		t.Fatalf("verify finished too early: %d", done)
	}
}

func TestEnterVerifyWithoutPriorSave(t *testing.T) {
	cfg := sim.DefaultConfig()
	e := NewEngine(cfg)
	v := &VCPU{Scratch: 0}
	// First-ever Enter-DMR: no saved copy exists; it must not report
	// false corruption.
	if _, corrupted := e.EnterVerify(1, v, 0, 0); corrupted {
		t.Fatal("verify without a prior save reported corruption")
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{ModeReliable, ModePerformance, ModePerfUser} {
		if m.String() == "?" {
			t.Fatalf("mode %d unnamed", m)
		}
	}
}

func TestPrivSaveCheaperThanFull(t *testing.T) {
	cfg := sim.DefaultConfig()
	e := NewEngine(cfg)
	v := &VCPU{Scratch: 0}
	full := e.SaveVocal(0, v, 0)
	priv := e.SaveVocalPriv(0, v, 0)
	if priv >= full {
		t.Fatal("privileged-only save should be cheaper than a full save")
	}
}
