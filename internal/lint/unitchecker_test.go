package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeVetUnit builds a vet.cfg-style compilation unit for one
// synthetic boundary source file, with stdlib imports satisfied from
// real compiler export data.
func writeVetUnit(t *testing.T, src string, vetxOnly bool) (cfgFile, vetxFile string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "core.go")
	if err := os.WriteFile(goFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	exports, err := ExportsFor(".", "time")
	if err != nil {
		t.Fatalf("resolving stdlib export data: %v", err)
	}
	vetxFile = filepath.Join(dir, "unit.vetx")
	cfg := vetConfig{
		ID:          "repro/internal/core",
		ImportPath:  "repro/internal/core",
		GoFiles:     []string{goFile},
		ImportMap:   map[string]string{"time": "time"},
		PackageFile: exports,
		VetxOnly:    vetxOnly,
		VetxOutput:  vetxFile,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile = filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(cfgFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgFile, vetxFile
}

const vetUnitBadSrc = `package core

import "time"

func tick() int64 { return time.Now().UnixNano() }
`

// TestVetUnitFindings: a unit with a boundary violation exits 2 with a
// file:line:col diagnostic on stderr, and still writes the .vetx fact
// file the go command caches on.
func TestVetUnitFindings(t *testing.T) {
	cfgFile, vetxFile := writeVetUnit(t, vetUnitBadSrc, false)
	var stdout, stderr bytes.Buffer
	code, err := runVetUnit(cfgFile, All(), false, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2 (findings)", code)
	}
	if !strings.Contains(stderr.String(), "time.Now") ||
		!strings.Contains(stderr.String(), "core.go:5:") {
		t.Errorf("stderr lacks positioned diagnostic:\n%s", stderr.String())
	}
	if _, err := os.Stat(vetxFile); err != nil {
		t.Errorf(".vetx fact file not written: %v", err)
	}
}

// TestVetUnitJSON: -json mode exits 0 and prints the unitchecker's
// ID -> analyzer -> diagnostics tree on stdout.
func TestVetUnitJSON(t *testing.T) {
	cfgFile, _ := writeVetUnit(t, vetUnitBadSrc, false)
	var stdout, stderr bytes.Buffer
	code, err := runVetUnit(cfgFile, All(), true, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("JSON mode exit code = %d, want 0", code)
	}
	var tree map[string]map[string][]struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &tree); err != nil {
		t.Fatalf("stdout is not the expected JSON tree: %v\n%s", err, stdout.String())
	}
	diags := tree["repro/internal/core"]["detclock"]
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "time.Now") {
		t.Errorf("JSON tree lacks the detclock diagnostic: %s", stdout.String())
	}
}

// TestVetUnitVetxOnly: dependency-mode units do no analysis but must
// still produce their fact file.
func TestVetUnitVetxOnly(t *testing.T) {
	cfgFile, vetxFile := writeVetUnit(t, vetUnitBadSrc, true)
	var stdout, stderr bytes.Buffer
	code, err := runVetUnit(cfgFile, All(), false, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || stderr.Len() != 0 {
		t.Errorf("VetxOnly unit: code %d, stderr %q; want 0 and empty", code, stderr.String())
	}
	if _, err := os.Stat(vetxFile); err != nil {
		t.Errorf("VetxOnly unit did not write fact file: %v", err)
	}
}

// TestBoundaryPackage pins the path gating shared by detclock.
func TestBoundaryPackage(t *testing.T) {
	cases := []struct {
		path string
		name string
		in   bool
	}{
		{"repro/internal/core", "core", true},
		{"repro/internal/sim", "sim", true},
		{"repro/internal/cache", "cache", true},
		{"repro/internal/campaign", "", false},
		{"repro/internal/obs", "", false},
		{"repro/cmd/mmm", "", false},
		{"internal/stats", "stats", true},
		{"example.com/a/internal/trace/sub", "trace", true},
		{"example.com/sprinternal/core", "", false},
	}
	for _, tc := range cases {
		name, in := boundaryPackage(tc.path)
		if name != tc.name || in != tc.in {
			t.Errorf("boundaryPackage(%q) = (%q, %v), want (%q, %v)", tc.path, name, in, tc.name, tc.in)
		}
	}
}

// TestSuppressionsRequireReason: the directive index keeps reasonless
// directives distinguishable so analyzers can refuse them.
func TestSuppressionsRequireReason(t *testing.T) {
	dir := t.TempDir()
	src := `package campaign

// Knobs is annotated but one exemption has no reason.
//
//mmm:knobcover Fingerprint
type Knobs struct {
	A int
	//mmm:knobcover-exempt
	B int
}

// Fingerprint reads A only.
func (k Knobs) Fingerprint() int { return k.A }
`
	if err := os.WriteFile(filepath.Join(dir, "k.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadFixture(dir, "example.com/knobs")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{KnobCover})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "Knobs.B") {
		t.Errorf("reasonless exempt directive should not exempt; findings: %v", findings)
	}
}
