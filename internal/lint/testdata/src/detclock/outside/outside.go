// Package campaign is the detclock negative fixture: loaded under
// repro/internal/campaign, which is outside the determinism boundary,
// the exact calls that are findings in the boundary fixture are legal
// here (campaign journaling and wall-clock attribution need them).
package campaign

import (
	"os"
	"time"
)

// Stamp reads the wall clock for journal entries: legal outside the
// boundary, no directive needed.
func Stamp() int64 { return time.Now().UnixNano() }

// Verbose reads the environment: likewise legal here.
func Verbose() bool { return os.Getenv("MMM_VERBOSE") != "" }
