// Package core is a detclock fixture loaded under the import path
// repro/internal/core, so the analyzer treats it as determinism-
// boundary code.
package core

import (
	"math/rand"
	"os"
	"time"
)

// tick exercises one forbidden symbol per category.
func tick() time.Duration {
	t0 := time.Now()           // want `time\.Now \(wall clock\) is forbidden inside determinism-boundary package internal/core`
	time.Sleep(1)              // want `time\.Sleep \(wall-clock timer\) is forbidden inside determinism-boundary package internal/core`
	_ = os.Getenv("MMM_DEBUG") // want `os\.Getenv \(environment read\) is forbidden inside determinism-boundary package internal/core`
	_ = rand.Intn(8)           // want `math/rand\.Intn \(global RNG\) is forbidden inside determinism-boundary package internal/core`
	return time.Since(t0)      // want `time\.Since \(wall clock\) is forbidden inside determinism-boundary package internal/core`
}

// seeded uses an explicitly seeded local source: the sanctioned way to
// get randomness inside the boundary, never flagged.
func seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(8)
}

// audited carries a reasoned suppression and is allowed.
func audited() int64 {
	t := time.Now().UnixNano() //mmm:wallclock-ok audited: label only, never reaches simulated state
	return t
}

// unreasoned has a directive without a reason: it does not suppress,
// and the diagnostic says why.
func unreasoned() time.Time {
	//mmm:wallclock-ok
	return time.Now() // want `//mmm:wallclock-ok directive with no reason`
}
