// Package campaign is the knobcover enforcement fixture: loaded under
// repro/internal/campaign, where the Knobs and Job structs are always
// under coverage — a missing annotation is itself a finding.
package campaign

// Knobs lost its annotation.
type Knobs struct { // want `struct Knobs must declare its cache-identity contract`
	A int
}

// Job keeps the contract and full coverage.
//
//mmm:knobcover Fingerprint
type Job struct {
	Workload string
}

// Fingerprint reads every Job field.
func (j Job) Fingerprint() string { return j.Workload }
