// Package knobs is the knobcover fixture: annotated sweep-knob
// structs whose fields must be read by their coverage functions.
package knobs

import "fmt"

// Knobs is under coverage by Fingerprint and Key. A is read directly,
// B transitively through cellKey, Display is exempt with a reason;
// Missing is the cache-poisoning bug the analyzer exists to catch, and
// BadExempt shows that an exempt directive without a reason does not
// exempt.
//
//mmm:knobcover Fingerprint,Key
type Knobs struct {
	A int
	B string
	//mmm:knobcover-exempt display label only, never part of job identity
	Display string
	Missing int // want `field Knobs\.Missing is not read by coverage functions \(Fingerprint, Key\)`
	//mmm:knobcover-exempt
	BadExempt int // want `field Knobs\.BadExempt is not read by coverage functions`
}

// Fingerprint reads A directly and B transitively via cellKey.
func (k Knobs) Fingerprint() string {
	return fmt.Sprintf("%d|%s", k.A, cellKey(k))
}

// Key covers B through the same helper.
func (k Knobs) Key() string { return cellKey(k) }

func cellKey(k Knobs) string { return k.B }

// Orphan names a coverage function that does not exist, so no field
// can be covered either.
//
//mmm:knobcover Nope
type Orphan struct { // want `names coverage function "Nope", which is not declared in this package`
	X int // want `field Orphan\.X is not read by coverage functions`
}

// Bare carries a marker with no function list.
//
//mmm:knobcover
type Bare struct { // want `names no coverage functions`
	Y int
}

// Scalar is not a struct, so the annotation is itself an error.
//
//mmm:knobcover Fingerprint
type Scalar int // want `annotation on Scalar, which is not a struct`
