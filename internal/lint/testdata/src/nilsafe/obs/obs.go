// Package obs is the nilsafe fixture: loaded under repro/internal/obs
// it is held to the telemetry package's nil-safe no-op contract.
package obs

// Counter is a minimal instrument mirroring the real package's shape.
type Counter struct {
	n uint64
}

// Inc lacks the guard: the first nil (disabled) instrument through
// here panics.
func (c *Counter) Inc() { // want `exported pointer-receiver method \(\*Counter\)\.Inc must begin with a nil-receiver guard`
	c.n++
}

// Add carries the canonical guard.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.n += d
}

// Value guards with a typed zero return.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Busy guards with a disjunct: still recognized.
func (c *Counter) Busy(d uint64) {
	if c == nil || d == 0 {
		return
	}
	c.n += d
}

// Snapshot has a value receiver: out of the contract's scope.
func (c Counter) Snapshot() uint64 { return c.n }

// reset is unexported: out of scope.
func (c *Counter) reset() { c.n = 0 }

// Hot is the audited exception: its receivers are produced only by
// NewCounter, so the guard would be dead code on the hot path.
//
//mmm:nilsafe-ok receivers come only from NewCounter, never nil
func (c *Counter) Hot() uint64 { return c.n }

// NewCounter is a free function: out of scope.
func NewCounter() *Counter {
	c := &Counter{}
	c.reset()
	return c
}
