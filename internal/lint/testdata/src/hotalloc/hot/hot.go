// Package hot is the hotalloc fixture: allocations inside //mmm:hotpath
// functions fire, scratch-buffer idioms and unannotated functions do
// not, and suppressions need a reason.
package hot

// step is the per-cycle loop: every allocation kind fires.
//
//mmm:hotpath
func step(xs []int, n int) []int {
	buf := make([]int, n) // want "make in //mmm:hotpath function step allocates"
	m := map[int]int{}    // want "map literal in //mmm:hotpath function step allocates"
	lit := []int{1, 2}    // want "slice literal in //mmm:hotpath function step allocates"
	out := append(xs, n)  // want "append escaping its input slice in //mmm:hotpath function step allocates"
	m[n] = len(buf) + len(lit)
	return out
}

// scratch reuses its buffers: the self-append idiom and suppressed
// sites pass.
//
//mmm:hotpath
func scratch(acc []int, n int) []int {
	acc = acc[:0]
	for i := 0; i < n; i++ {
		acc = append(acc, i) // self-append reuses capacity: allowed
	}
	//mmm:hotalloc-ok cold path, runs once per campaign
	audited := make([]int, 1)
	return append(acc, audited...) // want "append escaping its input slice"
}

// unreasoned directives do not suppress.
//
//mmm:hotpath
func unreasoned(n int) []int {
	//mmm:hotalloc-ok
	return make([]int, n) // want "directive with no reason"
}

// closures declared inside a hot function are hot too.
//
//mmm:hotpath
func nested(n int) func() []int {
	return func() []int {
		return make([]int, n) // want "make in //mmm:hotpath function nested allocates"
	}
}

// cold is not annotated: allocations are fine.
func cold(n int) []int {
	m := map[int]int{n: n}
	return append(make([]int, 0, n), m[n])
}
