// Package mapsink is the maporder fixture: map ranges feeding each
// recognized output sink, plus the allowed shapes (sorted afterwards,
// suppressed, or no sink at all).
package mapsink

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// emit streams formatted output straight from a map range.
func emit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf call inside range over map m`
	}
}

// digest feeds a hash from a map range: the fingerprint-poisoning
// shape.
func digest(m map[string]uint64) [32]byte {
	h := sha256.New()
	for k := range m {
		h.Write([]byte(k)) // want `Write on io\.Writer h inside range over map m`
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// encode streams JSON values in map order.
func encode(enc *json.Encoder, m map[string]int) error {
	for k := range m {
		if err := enc.Encode(k); err != nil { // want `encoding/json\.Encoder\.Encode call inside range over map m`
			return err
		}
	}
	return nil
}

// keys returns an unsorted key slice: callers see a different order
// every run.
func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want `append to returned slice ks \(unsorted afterwards\) inside range over map m`
	}
	return ks
}

// keysSorted is the repository's blessed collect/sort/iterate pattern.
func keysSorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// keysSuppressed is order-insensitive by contract and says so.
func keysSuppressed(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) //mmm:maporder-ok membership set: the one consumer treats it as unordered
	}
	return ks
}

// total is an order-insensitive reduction with no sink: never flagged.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
