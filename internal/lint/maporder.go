package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose body reaches an output sink
// — a hash / io.Writer Write, a json/gob/xml Encoder.Encode, an
// fmt.Fprint*/Print*, or an append into a slice the function returns —
// without the slice being sorted afterwards. Go randomizes map
// iteration order per run, so such a loop emits a different byte
// stream every execution: the exact bug class that would quietly break
// fingerprint digests, Prometheus exposition and journal replay. The
// fix is the repository's standard collect-keys/sort/iterate pattern;
// genuinely order-insensitive sites carry //mmm:maporder-ok <reason>.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration feeding an output sink (hash, encoder, writer, " +
		"returned slice) without an intervening sort",
	Run: runMapOrder,
}

// sortCalls recognizes the blessed post-loop sorts.
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		forEachFuncScope(file, func(ftype *ast.FuncType, body *ast.BlockStmt) {
			checkScope(pass, ftype, body)
		})
	}
	return nil
}

// checkScope analyzes one function scope: every map range statement
// directly inside it (nested function literals are their own scopes).
func checkScope(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	returned := returnedExprs(pass, ftype, body)
	inspectShallow(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, rng, body, returned)
		return true
	})
}

// checkMapRange scans one map-range body for output sinks.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, scope *ast.BlockStmt, returned []string) {
	mapName := render(pass.Fset, rng.X)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, ok := sinkCall(pass, call); ok {
			reportMapOrder(pass, call.Pos(), kind, mapName)
			return true
		}
		if target, ok := appendedReturnedSlice(pass, call, returned); ok {
			if !sortedAfter(pass, scope, target, rng.End()) {
				reportMapOrder(pass, call.Pos(),
					"append to returned slice "+target+" (unsorted afterwards)", mapName)
			}
		}
		return true
	})
}

// reportMapOrder emits the maporder diagnostic unless suppressed.
func reportMapOrder(pass *Pass, pos token.Pos, sink, mapName string) {
	if pass.Suppressed("maporder-ok", pos) {
		return
	}
	pass.Reportf(pos,
		"%s inside range over map %s: map iteration order is randomized per run, "+
			"so this emits a different byte stream every execution; iterate sorted keys "+
			"instead, or suppress an order-insensitive site with //mmm:maporder-ok <reason>",
		sink, mapName)
}

// sinkCall classifies direct output sinks.
func sinkCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name

	// fmt.Fprint* / fmt.Print* — formatted output to a writer or stdout.
	if pkgPath, ok := usedPackage(pass.TypesInfo, sel.X); ok {
		if pkgPath == "fmt" {
			switch name {
			case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
				return "fmt." + name + " call", true
			}
		}
		return "", false
	}

	recv := pass.TypesInfo.Types[sel.X].Type

	// *json.Encoder (and gob/xml) Encode — streamed serialization.
	if name == "Encode" {
		if pkgPath, typeName, ok := namedFrom(recv); ok && typeName == "Encoder" {
			switch pkgPath {
			case "encoding/json", "encoding/gob", "encoding/xml":
				return pkgPath + ".Encoder.Encode call", true
			}
		}
	}

	// Write-family methods on anything satisfying io.Writer — covers
	// hash.Hash, bytes.Buffer, strings.Builder, bufio.Writer,
	// http.ResponseWriter.
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if hasWriteMethod(recv) {
			return name + " on io.Writer " + render(pass.Fset, sel.X), true
		}
	}
	return "", false
}

// appendedReturnedSlice reports whether call is append(target, ...)
// where target is (part of) a value the enclosing function returns.
func appendedReturnedSlice(pass *Pass, call *ast.CallExpr, returned []string) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return "", false
	}
	if obj, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || obj.Name() != "append" {
		return "", false
	}
	target := render(pass.Fset, call.Args[0])
	for _, r := range returned {
		if target == r || strings.HasPrefix(target, r+".") || strings.HasPrefix(target, r+"[") {
			return target, true
		}
	}
	return "", false
}

// returnedExprs collects the rendered result expressions of every
// return statement in the scope, plus named results (which bare
// returns return implicitly).
func returnedExprs(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) []string {
	var out []string
	if ftype != nil && ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if name.Name != "_" {
					out = append(out, name.Name)
				}
			}
		}
	}
	inspectShallow(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			out = append(out, render(pass.Fset, res))
		}
		return true
	})
	return out
}

// sortedAfter reports whether the scope sorts target (a rendered
// expression) at any point after pos — the collect/sort/emit pattern.
func sortedAfter(pass *Pass, scope *ast.BlockStmt, target string, pos token.Pos) bool {
	found := false
	inspectShallow(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := usedPackage(pass.TypesInfo, sel.X)
		if !ok || !sortCalls[pathBase(pkgPath)][sel.Sel.Name] {
			return true
		}
		if strings.Contains(render(pass.Fset, call.Args[0]), target) {
			found = true
			return false
		}
		return true
	})
	return found
}

// pathBase returns the last element of an import path ("sort",
// "slices").
func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
