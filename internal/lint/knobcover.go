package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// KnobCover cross-checks sweep-knob structs against their identity
// functions. A struct annotated
//
//	//mmm:knobcover Fingerprint,Key,SimSeed
//
// promises that every one of its fields is read by (the transitive
// closure of) the named functions. Adding a knob without folding it
// into the fingerprint/key/seed derivation is the silent
// cache-poisoning failure mode behind the SpecVersion discipline: two
// jobs differing only in the new knob collide on one cached result and
// the sweep quietly reports one cell's data for both. KnobCover makes
// that a build error. Fields that are genuinely not part of a job's
// identity carry //mmm:knobcover-exempt <reason>.
//
// In the real campaign package the contract is not optional: Knobs and
// Job must carry the annotation, so deleting it is itself a finding.
var KnobCover = &Analyzer{
	Name: "knobcover",
	Doc: "require every field of an //mmm:knobcover-annotated struct to be read " +
		"by its fingerprint/key/seed coverage functions",
	Run: runKnobCover,
}

func runKnobCover(pass *Pass) error {
	// internal/api owns the knob structs since the typed-API refactor;
	// internal/campaign (which now aliases them) keeps the mandatory
	// check so a reintroduced local Knobs/Job struct cannot dodge it.
	campaignPkg := strings.HasSuffix(pass.Pkg.Path(), "internal/campaign") ||
		strings.HasSuffix(pass.Pkg.Path(), "internal/api")
	declsByObj := funcDeclsByObject(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gen.Specs) == 1 {
					doc = gen.Doc
				}
				st, isStruct := ts.Type.(*ast.StructType)
				funcList, hasMarker := knobcoverMarker(doc)
				if !hasMarker {
					if campaignPkg && isStruct && (ts.Name.Name == "Knobs" || ts.Name.Name == "Job") {
						pass.Reportf(ts.Name.Pos(),
							"struct %s must declare its cache-identity contract with a "+
								"//mmm:knobcover <coverage funcs> annotation (the campaign package's "+
								"knob structs are always under coverage)", ts.Name.Name)
					}
					continue
				}
				if !isStruct {
					pass.Reportf(ts.Name.Pos(),
						"//mmm:knobcover annotation on %s, which is not a struct", ts.Name.Name)
					continue
				}
				checkKnobStruct(pass, ts, st, funcList, declsByObj)
			}
		}
	}
	return nil
}

// knobcoverMarker extracts the coverage-function list from a doc
// comment carrying //mmm:knobcover <funcs>.
func knobcoverMarker(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if rest, ok := strings.CutPrefix(text, "mmm:knobcover"); ok && !strings.HasPrefix(rest, "-") {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// checkKnobStruct verifies one annotated struct.
func checkKnobStruct(pass *Pass, ts *ast.TypeSpec, st *ast.StructType, funcList string, declsByObj map[types.Object]*ast.FuncDecl) {
	names := splitNames(funcList)
	if len(names) == 0 {
		pass.Reportf(ts.Name.Pos(),
			"//mmm:knobcover on %s names no coverage functions (want e.g. "+
				"//mmm:knobcover Fingerprint,Key,SimSeed)", ts.Name.Name)
		return
	}
	covered, missing := coverageSet(pass, names, declsByObj)
	for _, m := range missing {
		pass.Reportf(ts.Name.Pos(),
			"//mmm:knobcover on %s names coverage function %q, which is not declared in this package",
			ts.Name.Name, m)
	}
	display := strings.Join(names, ", ")
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 { // embedded field
			if exemptField(pass, field) {
				continue
			}
			pass.Reportf(field.Pos(),
				"embedded field in knobcover struct %s cannot be verified; name it or annotate "+
					"//mmm:knobcover-exempt <reason>", ts.Name.Name)
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if exemptField(pass, field) {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || covered[obj] {
				continue
			}
			pass.Reportf(name.Pos(),
				"field %s.%s is not read by coverage functions (%s): a knob outside the "+
					"fingerprint/key/seed derivation makes distinct configurations collide on one "+
					"cached result; fold it in (and bump SpecVersion) or annotate "+
					"//mmm:knobcover-exempt <reason>",
				ts.Name.Name, name.Name, display)
		}
	}
}

// exemptField reports whether the field carries a reasoned
// //mmm:knobcover-exempt directive (doc comment or trailing comment).
// An exempt directive without a reason does not exempt: Suppressed
// enforces the reason through the shared line index.
func exemptField(pass *Pass, field *ast.Field) bool {
	return pass.Suppressed("knobcover-exempt", field.Pos())
}

// splitNames parses the marker's comma/space-separated function list.
func splitNames(s string) []string {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
	out := fields[:0]
	for _, f := range fields {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// funcDeclsByObject maps every function/method object declared in the
// package to its declaration.
func funcDeclsByObject(pass *Pass) map[types.Object]*ast.FuncDecl {
	out := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// coverageSet walks the named functions and every same-package
// function they (transitively) call, collecting all struct fields
// read via selectors or set via composite-literal keys. It returns
// the covered field objects and the marker names that resolved to no
// declaration.
func coverageSet(pass *Pass, names []string, declsByObj map[types.Object]*ast.FuncDecl) (map[types.Object]bool, []string) {
	wanted := make(map[string]bool, len(names))
	for _, n := range names {
		wanted[n] = true
	}
	found := make(map[string]bool, len(names))
	var work []*ast.FuncDecl
	visited := make(map[*ast.FuncDecl]bool)
	for obj, fd := range declsByObj {
		if wanted[obj.Name()] {
			found[obj.Name()] = true
			if !visited[fd] {
				visited[fd] = true
				work = append(work, fd)
			}
		}
	}
	// Deterministic worklist order (map iteration above is random but
	// the result is a set, so order only matters for bounded growth).
	sort.Slice(work, func(i, j int) bool { return work[i].Pos() < work[j].Pos() })

	covered := make(map[types.Object]bool)
	for len(work) > 0 {
		fd := work[0]
		work = work[1:]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel := pass.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
					covered[sel.Obj()] = true
				}
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok {
					if obj, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && obj.IsField() {
						covered[obj] = true
					}
				}
			case *ast.CallExpr:
				if callee := calleeObject(pass, n); callee != nil {
					if next, ok := declsByObj[callee]; ok && !visited[next] {
						visited[next] = true
						work = append(work, next)
					}
				}
			}
			return true
		})
	}

	var missing []string
	for _, n := range names {
		if !found[n] {
			missing = append(missing, n)
		}
	}
	return covered, missing
}

// calleeObject resolves a call's target object (function or method)
// when statically known.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}
