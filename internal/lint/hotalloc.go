package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc forbids per-call heap allocations inside functions annotated
// //mmm:hotpath — the simulator's per-cycle loop (Chip.Run, Chip.Tick,
// nextEventAt, policyDecide, pairStatus). A make, a map or slice
// literal, or an append whose result escapes its input slice inside one
// of these functions runs millions of times per simulated second; the
// benchgate regression catches the throughput loss after the fact, this
// analyzer catches the allocation at compile time. Audited sites carry
// //mmm:hotalloc-ok <reason> (e.g. a cold error path, or a buffer that
// demonstrably reaches steady-state capacity).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid make/map/escaping-append allocations inside functions " +
		"annotated //mmm:hotpath",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, found := pass.directiveAt("hotpath", fd.Pos()); !found {
				continue
			}
			checkHotBody(pass, fd.Name.Name, fd.Body)
		}
	}
	return nil
}

// checkHotBody reports every allocation site in one annotated function
// body. Nested function literals are included: a closure declared in a
// hot function allocates (and runs) on the hot path too.
func checkHotBody(pass *Pass, fname string, body *ast.BlockStmt) {
	// Appends whose result is assigned back to their own first argument
	// (x = append(x, ...)) reuse the slice's capacity at steady state —
	// the scratch-buffer idiom — and are allowed. Any other append forces
	// the result to escape its input.
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(pass.TypesInfo, call.Fun, "append") || len(call.Args) == 0 {
				continue
			}
			if render(pass.Fset, as.Lhs[i]) == render(pass.Fset, call.Args[0]) {
				selfAppend[call] = true
			}
		}
		return true
	})

	report := func(pos token.Pos, what string) {
		if pass.Suppressed("hotalloc-ok", pos) {
			return
		}
		msg := "%s in //mmm:hotpath function %s allocates on the hot loop; " +
			"reuse a scratch buffer or suppress with //mmm:hotalloc-ok <reason> after an audit"
		if d, found := pass.directiveAt("hotalloc-ok", pos); found && d.reason == "" {
			msg = "%s in //mmm:hotpath function %s has a //mmm:hotalloc-ok directive with no reason; " +
				"audited suppressions must say why"
		}
		pass.Reportf(pos, msg, what, fname)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(pass.TypesInfo, n.Fun, "make"):
				report(n.Pos(), "make")
			case isBuiltin(pass.TypesInfo, n.Fun, "append") && !selfAppend[n]:
				report(n.Pos(), "append escaping its input slice")
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal")
			case *types.Slice:
				report(n.Pos(), "slice literal")
			}
		}
		return true
	})
}

// isBuiltin reports whether fun names the given predeclared builtin
// (resolved through the type checker, so shadowing does not confuse it).
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
