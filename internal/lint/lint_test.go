package lint_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, elem...)...)
}

// TestDetClockFixture: every forbidden category is caught inside the
// boundary, the reasoned suppression and the seeded local RNG are
// allowed, and a reasonless directive is called out.
func TestDetClockFixture(t *testing.T) {
	fs := linttest.Run(t, lint.DetClock, fixture("detclock", "boundary"), "repro/internal/core")
	if len(fs) != 6 {
		t.Errorf("detclock boundary fixture produced %d findings, want 6", len(fs))
	}
}

// TestDetClockOutsideBoundary: identical calls in a non-boundary
// package produce no findings at all.
func TestDetClockOutsideBoundary(t *testing.T) {
	fs := linttest.Run(t, lint.DetClock, fixture("detclock", "outside"), "repro/internal/campaign")
	if len(fs) != 0 {
		t.Errorf("detclock flagged %d sites outside the boundary, want 0", len(fs))
	}
}

// TestMapOrderFixture: each sink kind fires, and the sorted-afterwards
// pattern, the reasoned suppression and sink-free reductions do not.
func TestMapOrderFixture(t *testing.T) {
	fs := linttest.Run(t, lint.MapOrder, fixture("maporder", "sinks"), "example.com/mapsink")
	if len(fs) != 4 {
		t.Errorf("maporder fixture produced %d findings, want 4", len(fs))
	}
}

// TestNilSafeFixture: the unguarded exported method is the only
// finding; guards, value receivers, unexported methods, free functions
// and the audited suppression all pass.
func TestNilSafeFixture(t *testing.T) {
	fs := linttest.Run(t, lint.NilSafe, fixture("nilsafe", "obs"), "repro/internal/obs")
	if len(fs) != 1 {
		t.Errorf("nilsafe fixture produced %d findings, want 1", len(fs))
	}
}

// TestKnobCoverFixture: uncovered fields, unreasoned exemptions,
// unknown coverage functions, empty markers and non-struct annotations
// all fire; direct, transitive and exempted coverage pass.
func TestKnobCoverFixture(t *testing.T) {
	linttest.Run(t, lint.KnobCover, fixture("knobcover", "knobs"), "example.com/knobs")
}

// TestKnobCoverCampaignEnforcement: in the real campaign package the
// annotation is mandatory on Knobs and Job.
func TestKnobCoverCampaignEnforcement(t *testing.T) {
	linttest.Run(t, lint.KnobCover, fixture("knobcover", "campaign"), "repro/internal/campaign")
}

// TestHotAllocFixture: every allocation kind fires inside //mmm:hotpath
// functions (including closures), the scratch-buffer self-append idiom,
// reasoned suppressions and unannotated functions pass, and a
// reasonless directive is called out.
func TestHotAllocFixture(t *testing.T) {
	fs := linttest.Run(t, lint.HotAlloc, fixture("hotalloc", "hot"), "example.com/hot")
	if len(fs) != 7 {
		t.Errorf("hotalloc fixture produced %d findings, want 7", len(fs))
	}
}

// TestRepoTreeIsClean pins the acceptance criterion: mmmlint over the
// whole repository exits clean. Any new finding must be fixed or
// carry an audited suppression in the same change.
func TestRepoTreeIsClean(t *testing.T) {
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	findings, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("tree not lint-clean: %s", f)
	}
}

// TestByName: analyzer selection by comma list, and rejection of
// unknown names.
func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != 5 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 5, nil", len(all), err)
	}
	two, err := lint.ByName("detclock, maporder")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName(detclock, maporder) = %d analyzers, err %v; want 2, nil", len(two), err)
	}
	if _, err := lint.ByName("detclock,nope"); err == nil {
		t.Fatal("ByName accepted unknown analyzer \"nope\"")
	}
}

// TestWriteJSON: the machine-readable output is a JSON array, [] when
// clean (never null), with the documented field names.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty findings encode as %q, want []", got)
	}

	buf.Reset()
	in := []lint.Finding{{File: "a.go", Line: 3, Col: 7, Analyzer: "detclock", Message: "m"}}
	if err := lint.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 {
		t.Fatalf("decoded %d findings, want 1", len(out))
	}
	for _, key := range []string{"file", "line", "col", "analyzer", "message"} {
		if _, ok := out[0][key]; !ok {
			t.Errorf("JSON finding lacks %q field: %s", key, buf.String())
		}
	}
}

// TestFindingString pins the conventional rendering used by CI logs.
func TestFindingString(t *testing.T) {
	f := lint.Finding{File: "x/y.go", Line: 12, Col: 4, Analyzer: "maporder", Message: "oops"}
	if got, want := f.String(), "x/y.go:12:4: maporder: oops"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}
