package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// This file implements the `go vet -vettool` command-line protocol
// (the unitchecker protocol), so mmmlint can run as a vet tool inside
// an ordinary `go vet -vettool=$(which mmmlint) ./...` invocation:
//
//	-V=full    describe the executable (build-cache fingerprint)
//	-flags     describe supported flags as JSON
//	foo.cfg    analyze the single compilation unit described by the
//	           JSON config file the go command wrote
//
// The protocol is documented by golang.org/x/tools/go/analysis/
// unitchecker; this is a dependency-free reimplementation of the
// subset the suite needs (no facts: the analyzers are all
// single-package, so the .vetx fact file is written empty).

// vetConfig mirrors the JSON compilation-unit description `go vet`
// hands the tool.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetToolMain handles a `go vet -vettool` invocation if os.Args looks
// like one, and returns false otherwise (the caller then runs the
// standalone CLI). On a vet invocation it never returns: it exits with
// the protocol's status code.
func VetToolMain(analyzers []*Analyzer) bool {
	args := os.Args[1:]
	if len(args) == 0 {
		return false
	}
	jsonOut := false
	var cfgFile string
	enabled := map[string]bool{}
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			vetVersion()
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			vetFlags(analyzers)
			os.Exit(0)
		case arg == "-json" || arg == "--json" || arg == "-json=true":
			jsonOut = true
		case strings.HasSuffix(arg, ".cfg") && !strings.HasPrefix(arg, "-"):
			cfgFile = arg
		case strings.HasPrefix(arg, "-"):
			// Analyzer enable flags: -detclock, -maporder=true, ...
			name := strings.TrimLeft(arg, "-")
			val := true
			if n, v, ok := strings.Cut(name, "="); ok {
				name, val = n, v == "true" || v == "1"
			}
			for _, a := range analyzers {
				if a.Name == name && val {
					enabled[name] = true
				}
			}
		}
	}
	if cfgFile == "" {
		return false
	}
	selected := analyzers
	if len(enabled) > 0 {
		selected = nil
		for _, a := range analyzers {
			if enabled[a.Name] {
				selected = append(selected, a)
			}
		}
	}
	code, err := runVetUnit(cfgFile, selected, jsonOut, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmmlint: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
	return true
}

// vetVersion implements -V=full: the go command fingerprints the tool
// binary for its build cache.
func vetVersion() {
	prog, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h := sha256.New()
	_, cpErr := io.Copy(h, f)
	f.Close()
	if cpErr != nil {
		fmt.Fprintln(os.Stderr, cpErr)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", prog, string(h.Sum(nil)))
}

// vetFlags implements -flags: the go command asks which flags the tool
// accepts before forwarding any.
func vetFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{"json", true, "emit JSON output"},
	}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{a.Name, true, "enable " + a.Name + " analysis"})
	}
	data, _ := json.MarshalIndent(flags, "", "\t")
	os.Stdout.Write(data)
}

// runVetUnit analyzes the single compilation unit described by
// cfgFile and returns the process exit code. Diagnostics go to errw
// in file:line:col form (or to w as JSON), matching what `go vet`
// expects from a vet tool.
func runVetUnit(cfgFile string, analyzers []*Analyzer, jsonOut bool, w, errw io.Writer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		return 0, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}

	// The go command caches analysis results through the .vetx fact
	// file; the suite computes no facts, so an empty file suffices —
	// but it must exist even in VetxOnly (dependency) mode.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	findings, err := checkVetUnit(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}
	if jsonOut {
		// JSON mode always exits 0; the go command inspects the tree.
		type jsonDiagnostic struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		tree := map[string]map[string][]jsonDiagnostic{cfg.ID: {}}
		for _, f := range findings {
			tree[cfg.ID][f.Analyzer] = append(tree[cfg.ID][f.Analyzer], jsonDiagnostic{
				Posn:    fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col),
				Message: f.Message,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		if err := enc.Encode(tree); err != nil {
			return 0, err
		}
		return 0, nil
	}
	for _, f := range findings {
		fmt.Fprintf(errw, "%s:%d:%d: %s\n", f.File, f.Line, f.Col, f.Message)
	}
	if len(findings) > 0 {
		return 2, nil
	}
	return 0, nil
}

// checkVetUnit type-checks and analyzes one vet compilation unit.
func checkVetUnit(cfg *vetConfig, analyzers []*Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compilerImp := importer.ForCompiler(fset, compilerOr(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path := importPath
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			path = mapped
		}
		return compilerImp.Import(path)
	})
	pkg, info, errs := check(cfg.ImportPath, fset, files, imp)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	p := newPackage(cfg.ImportPath, cfg.GoFiles, fset, files, pkg, info)
	return runPackage(p, analyzers)
}

func compilerOr(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
