package lint

import (
	"go/ast"
)

// NilSafe mechanizes internal/obs's contract: every instrument and the
// recorder are nil-safe no-ops, so instrumented code holds a
// possibly-nil pointer and pays exactly one predictable branch when
// telemetry is off. Concretely: every exported pointer-receiver method
// in internal/obs must begin with a nil-receiver guard whose body
// returns. A method that skips the guard panics the first time a
// disabled (nil) instrument flows through it — in the hot loop, under
// load, long after review. Deliberate exceptions carry
// //mmm:nilsafe-ok <reason>.
var NilSafe = &Analyzer{
	Name: "nilsafe",
	Doc: "require exported pointer-receiver methods in internal/obs to begin " +
		"with a nil-receiver guard",
	Run: runNilSafe,
}

func runNilSafe(pass *Pass) error {
	if !isObsPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recvName, ok := pointerReceiverName(fn)
			if !ok {
				continue
			}
			if beginsWithNilGuard(fn.Body, recvName) {
				continue
			}
			if pass.Suppressed("nilsafe-ok", fn.Pos()) || pass.Suppressed("nilsafe-ok", fn.Name.Pos()) {
				continue
			}
			pass.Reportf(fn.Name.Pos(),
				"exported pointer-receiver method %s.%s must begin with a nil-receiver guard "+
					"(if %s == nil { return ... }): internal/obs instruments are nil-safe no-ops "+
					"by contract; suppress with //mmm:nilsafe-ok <reason> if nil receivers are impossible",
				receiverTypeName(fn), fn.Name.Name, recvName)
		}
	}
	return nil
}

// isObsPackage matches the telemetry package in the real tree and in
// fixtures.
func isObsPackage(path string) bool {
	return path == "internal/obs" || len(path) > len("/internal/obs") &&
		path[len(path)-len("/internal/obs"):] == "/internal/obs"
}

// pointerReceiverName returns the receiver identifier of a
// pointer-receiver method. Unnamed (or blank) receivers cannot be
// dereferenced, so such methods are trivially nil-safe and skipped.
func pointerReceiverName(fn *ast.FuncDecl) (string, bool) {
	if len(fn.Recv.List) != 1 {
		return "", false
	}
	field := fn.Recv.List[0]
	if _, isPtr := field.Type.(*ast.StarExpr); !isPtr {
		return "", false
	}
	if len(field.Names) != 1 || field.Names[0].Name == "_" {
		return "", false
	}
	return field.Names[0].Name, true
}

// receiverTypeName renders the receiver type for diagnostics
// ("(*Recorder)").
func receiverTypeName(fn *ast.FuncDecl) string {
	star, ok := fn.Recv.List[0].Type.(*ast.StarExpr)
	if !ok {
		return "(?)"
	}
	base := star.X
	// Unwrap generic instantiations: (*Ring[T]) -> Ring.
	if ix, ok := base.(*ast.IndexExpr); ok {
		base = ix.X
	}
	if id, ok := base.(*ast.Ident); ok {
		return "(*" + id.Name + ")"
	}
	return "(?)"
}

// beginsWithNilGuard reports whether the body's first statement is
//
//	if <recv> == nil { ...; return ... }
//
// possibly with further || disjuncts (if r == nil || r.off { return }).
func beginsWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return true // empty body: nothing to deref
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	if !condHasNilCheck(ifStmt.Cond, recvName) {
		return false
	}
	if len(ifStmt.Body.List) == 0 {
		return false
	}
	_, isReturn := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

// condHasNilCheck looks for `<recv> == nil` as a top-level operand of
// the condition (allowing || chains).
func condHasNilCheck(cond ast.Expr, recvName string) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condHasNilCheck(e.X, recvName)
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "||":
			return condHasNilCheck(e.X, recvName) || condHasNilCheck(e.Y, recvName)
		case "==":
			return isIdent(e.X, recvName) && isIdent(e.Y, "nil") ||
				isIdent(e.X, "nil") && isIdent(e.Y, recvName)
		}
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
