package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadFixture parses and type-checks a testdata package from dir,
// giving it the declared import path (fixtures impersonate real
// packages — "repro/internal/core" — so package-gated analyzers fire).
// Stdlib imports are satisfied from compiler export data via `go list
// -export`, exactly like Load; the fixture directory must not import
// anything outside the standard library.
func LoadFixture(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: fixture %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: fixture %s has no .go files", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var goFiles []string
	importSet := map[string]bool{}
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
		goFiles = append(goFiles, path)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("lint: %s: bad import %s", path, imp.Path.Value)
			}
			if p != "unsafe" {
				importSet[p] = true
			}
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)

	exports, err := ExportsFor(dir, imports...)
	if err != nil {
		return nil, err
	}
	pkg, info, errs := check(pkgPath, fset, files, exportImporter(fset, exports))
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: fixture %s does not type-check:\n  %s", dir, strings.Join(msgs, "\n  "))
	}
	return newPackage(pkgPath, goFiles, fset, files, pkg, info), nil
}
