// Package lint is the repository's determinism-invariant analyzer
// suite: five repo-specific static analyzers that turn the byte-
// identity contract defended at runtime by the golden-row, replay and
// traced-vs-untraced tests into compile-time errors. It is a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis driver shape (Analyzer / Pass / Diagnostic) built on
// go/ast + go/types only, because the analyzers need full type
// information but the repository takes no module dependencies.
//
// The analyzers:
//
//   - detclock:  no wall clock, environment reads or global RNG inside
//     the determinism boundary (the simulation packages).
//   - maporder:  no map iteration feeding an output sink (hash, JSON
//     encoder, io.Writer, returned slice) without a sort.
//   - nilsafe:   every exported pointer-receiver method in
//     internal/obs begins with a nil-receiver guard.
//   - knobcover: every field of an //mmm:knobcover-annotated struct is
//     read by its fingerprint/key/seed coverage functions.
//   - hotalloc:  no make/map/escaping-append allocations inside
//     functions annotated //mmm:hotpath (the per-cycle loop).
//
// Audited exceptions are declared in source with //mmm: directives
// (see Suppressed); every directive requires a reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one static check. The shape deliberately
// mirrors golang.org/x/tools/go/analysis.Analyzer so the suite can be
// ported onto the real framework if the repository ever takes the
// dependency.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg    *Package
	report func(Diagnostic)
}

// A Diagnostic is one finding, positioned in the pass's file set.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{DetClock, MapOrder, NilSafe, KnobCover, HotAlloc}
}

// ByName resolves a comma-separated analyzer selection ("" = all).
func ByName(sel string) ([]*Analyzer, error) {
	if sel == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (have detclock, maporder, nilsafe, knobcover, hotalloc)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty analyzer selection %q", sel)
	}
	return out, nil
}

// DeterminismBoundary names the internal packages whose code must be a
// pure function of (config, seed): the simulated machine and
// everything it is built from. Wall clock, environment and global RNG
// are forbidden inside (detclock); they are legal only in the
// orchestration layers outside it — campaign journaling/attribution,
// obs, exp and cmd/*.
var DeterminismBoundary = map[string]bool{
	"core": true, "cpu": true, "vcpu": true, "isa": true,
	"sched": true, "mode": true, "fault": true, "reunion": true,
	"pab": true, "paging": true, "cache": true, "interconnect": true,
	"sim": true, "workload": true, "relia": true, "trace": true,
	"stats": true,
}

// boundaryPackage reports whether pkgPath is inside the determinism
// boundary, returning the boundary package's short name. The module
// prefix is irrelevant: any .../internal/<name>[/...] with <name> in
// DeterminismBoundary qualifies, so fixtures and forks behave like the
// real tree.
func boundaryPackage(pkgPath string) (string, bool) {
	rest := pkgPath
	for {
		i := strings.Index(rest, "internal/")
		if i < 0 {
			return "", false
		}
		if i == 0 || rest[i-1] == '/' {
			rest = rest[i+len("internal/"):]
			break
		}
		rest = rest[i+len("internal/"):]
	}
	seg, _, _ := strings.Cut(rest, "/")
	if DeterminismBoundary[seg] {
		return seg, true
	}
	return "", false
}

// A directive is one parsed //mmm:<marker> <reason> comment.
type directive struct {
	marker string
	reason string
}

// suppressions indexes every //mmm: directive of a file by line.
func suppressions(file *ast.File, fset *token.FileSet) map[int][]directive {
	out := make(map[int][]directive)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "//") {
				continue // block comments cannot carry directives
			}
			text = strings.TrimPrefix(text, "//")
			idx := strings.Index(text, "mmm:")
			if idx != 0 { // directives are //mmm:..., no leading space
				continue
			}
			body := text[len("mmm:"):]
			marker, reason, _ := strings.Cut(body, " ")
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], directive{marker: marker, reason: strings.TrimSpace(reason)})
		}
	}
	return out
}

// Suppressed reports whether a //mmm:<marker> directive with a
// non-empty reason covers pos: on the same line (trailing comment) or
// on the line immediately above (comment line). A directive without a
// reason does not suppress — audits must say why.
func (p *Pass) Suppressed(marker string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	idx := p.pkg.directives[position.Filename]
	if idx == nil {
		return false
	}
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range idx[line] {
			if d.marker == marker && d.reason != "" {
				return true
			}
		}
	}
	return false
}

// directiveAt returns the first //mmm:<marker> directive on the given
// line or the line above, whether or not it carries a reason.
func (p *Pass) directiveAt(marker string, pos token.Pos) (directive, bool) {
	position := p.Fset.Position(pos)
	idx := p.pkg.directives[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, d := range idx[line] {
			if d.marker == marker {
				return d, true
			}
		}
	}
	return directive{}, false
}

// render pretty-prints a node for string comparison of expressions
// (append targets vs. sort arguments vs. returned values).
func render(fset *token.FileSet, n ast.Node) string {
	var b strings.Builder
	printer.Fprint(&b, fset, n)
	return b.String()
}

// hasWriteMethod reports whether t (or *t) has a Write([]byte) (int,
// error) method — the structural io.Writer check that also covers
// hash.Hash, strings.Builder, bytes.Buffer and http.ResponseWriter.
func hasWriteMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Write")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	sl, ok := sig.Params().At(0).Type().(*types.Slice)
	if !ok {
		return false
	}
	if basic, ok := sl.Elem().(*types.Basic); !ok || basic.Kind() != types.Byte {
		return false
	}
	if basic, ok := sig.Results().At(0).Type().(*types.Basic); !ok || basic.Kind() != types.Int {
		return false
	}
	named, ok := sig.Results().At(1).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// usedPackage resolves a selector base expression to the package it
// names, if it is a package qualifier (fmt.Fprintf -> "fmt").
func usedPackage(info *types.Info, x ast.Expr) (string, bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// namedFrom unwraps pointers and reports the defining package path and
// name of a named type ("encoding/json", "Encoder").
func namedFrom(t types.Type) (pkgPath, name string, ok bool) {
	if t == nil {
		return "", "", false
	}
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// forEachFuncScope calls fn once per function body in the file —
// declarations and literals — without descending into nested function
// literals (each gets its own call). ftype carries the function's
// signature for named-result analysis.
func forEachFuncScope(file *ast.File, fn func(ftype *ast.FuncType, body *ast.BlockStmt)) {
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Type, n.Body)
			}
		case *ast.FuncLit:
			fn(n.Type, n.Body)
		}
		return true
	}
	ast.Inspect(file, visit)
}

// inspectShallow walks n without descending into nested function
// literals.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return fn(n)
	})
}
