package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is one positioned diagnostic in reporting form: the
// machine-readable unit of `mmmlint -json` output and of the CI
// annotation step.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col: analyzer: message
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// RunAnalyzers runs every analyzer over every package and returns the
// merged findings in deterministic order (file, line, col, analyzer,
// message).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	SortFindings(findings)
	return findings, nil
}

// runPackage runs the analyzers over one package.
func runPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			pkg:       pkg,
		}
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			findings = append(findings, Finding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: a.Name,
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	return findings, nil
}

// SortFindings orders findings by file, line, column, analyzer and
// message.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Relativize rewrites absolute finding paths relative to dir when
// possible, for stable, readable output.
func Relativize(dir string, fs []Finding) {
	for i := range fs {
		rel, err := filepath.Rel(dir, fs[i].File)
		if err == nil && !strings.HasPrefix(rel, "..") {
			fs[i].File = filepath.ToSlash(rel)
		}
	}
}

// WriteJSON emits findings as a JSON array (never null: an empty run
// encodes as []).
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}

// WriteText emits findings one per line in file:line:col form.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}
