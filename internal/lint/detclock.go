package lint

import (
	"go/ast"
)

// DetClock forbids wall-clock reads, timers, environment reads and
// global (process-wide) RNG inside the determinism boundary. Code
// there must be a pure function of (config, seed): a time.Now or
// os.Getenv that reaches a simulated decision silently decorrelates
// local from distributed runs, traced from untraced runs, and cold
// from cache-resumed runs — the exact class of "wrong data without
// doing anything obviously wrong". Audited sites (none today) carry
// //mmm:wallclock-ok <reason>.
var DetClock = &Analyzer{
	Name: "detclock",
	Doc: "forbid wall clock, timers, environment and global RNG inside the " +
		"determinism-boundary packages",
	Run: runDetClock,
}

// detclockForbidden maps package path -> symbol -> category used in
// the diagnostic. Constructors taking an explicit source (rand.New,
// rand.NewSource, rand.NewPCG) are deliberately absent: seeded local
// RNG is how the simulator is supposed to get randomness.
var detclockForbidden = map[string]map[string]string{
	"time": {
		"Now": "wall clock", "Since": "wall clock", "Until": "wall clock",
		"Sleep": "wall-clock timer", "After": "wall-clock timer",
		"Tick": "wall-clock timer", "AfterFunc": "wall-clock timer",
		"NewTimer": "wall-clock timer", "NewTicker": "wall-clock timer",
	},
	"os": {
		"Getenv": "environment read", "LookupEnv": "environment read",
		"Environ": "environment read", "ExpandEnv": "environment read",
	},
	"math/rand": {
		"Seed": "global RNG", "Int": "global RNG", "Intn": "global RNG",
		"Int31": "global RNG", "Int31n": "global RNG", "Int63": "global RNG",
		"Int63n": "global RNG", "Uint32": "global RNG", "Uint64": "global RNG",
		"Float32": "global RNG", "Float64": "global RNG",
		"ExpFloat64": "global RNG", "NormFloat64": "global RNG",
		"Perm": "global RNG", "Shuffle": "global RNG", "Read": "global RNG",
	},
	"math/rand/v2": {
		"Int": "global RNG", "IntN": "global RNG", "Int32": "global RNG",
		"Int32N": "global RNG", "Int64": "global RNG", "Int64N": "global RNG",
		"Uint": "global RNG", "UintN": "global RNG", "Uint32": "global RNG",
		"Uint32N": "global RNG", "Uint64": "global RNG", "Uint64N": "global RNG",
		"N": "global RNG", "Float32": "global RNG", "Float64": "global RNG",
		"ExpFloat64": "global RNG", "NormFloat64": "global RNG",
		"Perm": "global RNG", "Shuffle": "global RNG",
	},
}

func runDetClock(pass *Pass) error {
	boundary, ok := boundaryPackage(pass.Pkg.Path())
	if !ok {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := usedPackage(pass.TypesInfo, sel.X)
			if !ok {
				return true
			}
			category, ok := detclockForbidden[pkgPath][sel.Sel.Name]
			if !ok {
				return true
			}
			if pass.Suppressed("wallclock-ok", sel.Pos()) {
				return true
			}
			msg := "%s.%s (%s) is forbidden inside determinism-boundary package internal/%s: " +
				"simulation must be a pure function of (config, seed); " +
				"suppress with //mmm:wallclock-ok <reason> after an audit"
			if d, found := pass.directiveAt("wallclock-ok", sel.Pos()); found && d.reason == "" {
				msg = "%s.%s (%s) in internal/%s has a //mmm:wallclock-ok directive with no reason; " +
					"audited suppressions must say why"
			}
			pass.Reportf(sel.Pos(), msg, pkgPath, sel.Sel.Name, category, boundary)
			return true
		})
	}
	return nil
}
