package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked compilation unit ready for analysis.
type Package struct {
	PkgPath   string
	GoFiles   []string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// directives indexes //mmm: comments by file and line, shared by
	// every analyzer pass over this package.
	directives map[string]map[int][]directive
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") in dir with the go tool and
// type-checks every matched package from source. Imports — stdlib and
// intra-module alike — are satisfied from the compiler export data
// that `go list -export` places in the build cache, so loading needs
// no network and no dependencies beyond the toolchain. Only non-test
// files are analyzed: the determinism contract binds shipped code,
// and _test.go files legitimately use wall clock for deadlines.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var roots []*listedPackage
	var broken []string
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			broken = append(broken, fmt.Sprintf("%s: %s", p.ImportPath, p.Error.Err))
			continue
		}
		if p.Name == "" || len(p.GoFiles) == 0 {
			continue
		}
		if len(p.CgoFiles) > 0 {
			// cgo files cannot be type-checked from source without the
			// generated shims; the repository has none, so refuse
			// loudly rather than analyze a half-package.
			broken = append(broken, fmt.Sprintf("%s: uses cgo, cannot analyze", p.ImportPath))
			continue
		}
		roots = append(roots, p)
	}
	if len(broken) > 0 {
		return nil, fmt.Errorf("lint: cannot load:\n  %s", strings.Join(broken, "\n  "))
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	var typeErrs []string
	for _, p := range roots {
		files := make([]*ast.File, 0, len(p.GoFiles))
		names := make([]string, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			path := filepath.Join(p.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
			names = append(names, path)
		}
		pkg, info, errs := check(p.ImportPath, fset, files, imp)
		if len(errs) > 0 {
			for _, e := range errs {
				typeErrs = append(typeErrs, e.Error())
			}
			continue
		}
		pkgs = append(pkgs, newPackage(p.ImportPath, names, fset, files, pkg, info))
	}
	if len(typeErrs) > 0 {
		if len(typeErrs) > 10 {
			typeErrs = append(typeErrs[:10], "...")
		}
		return nil, fmt.Errorf("lint: type errors:\n  %s", strings.Join(typeErrs, "\n  "))
	}
	return pkgs, nil
}

// newPackage assembles a Package and its directive index.
func newPackage(path string, goFiles []string, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Package {
	p := &Package{
		PkgPath:   path,
		GoFiles:   goFiles,
		Fset:      fset,
		Files:     files,
		Types:     pkg,
		TypesInfo: info,
	}
	p.directives = make(map[string]map[int][]directive, len(files))
	for _, f := range files {
		pos := fset.Position(f.Pos())
		p.directives[pos.Filename] = suppressions(f, fset)
	}
	return p
}

// check type-checks one package's files.
func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := NewTypesInfo()
	pkg, _ := conf.Check(path, fset, files, info)
	return pkg, info, errs
}

// NewTypesInfo returns a types.Info with every map the analyzers
// consult allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// exportImporter satisfies imports from compiler export data files.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// goList runs `go list -e -export -deps -json` over the patterns.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,CgoFiles,DepOnly,Standard,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// ExportsFor returns the export-data lookup table for the given import
// paths and their transitive dependencies — used by the fixture test
// harness to type-check testdata packages against the real stdlib.
func ExportsFor(dir string, importPaths ...string) (map[string]string, error) {
	if len(importPaths) == 0 {
		return map[string]string{}, nil
	}
	listed, err := goList(dir, importPaths)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
