// Package linttest is the fixture harness for the mmmlint analyzer
// suite: the repo-local analogue of golang.org/x/tools/go/analysis/
// analysistest. A fixture is a directory of .go files under
// internal/lint/testdata, type-checked under a caller-chosen import
// path (so package-gated analyzers like detclock and nilsafe fire),
// with expected diagnostics declared inline as `// want "regexp"`
// comments on the offending line.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// A want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture directory as a package with import path
// pkgPath, runs the analyzer, and diffs the diagnostics against the
// fixture's `// want` comments: every finding must be wanted, every
// want must be found, regexes match against the finding message.
// It returns the findings for any extra assertions.
func Run(t *testing.T, a *lint.Analyzer, dir, pkgPath string) []lint.Finding {
	t.Helper()
	pkg, err := lint.LoadFixture(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}
	for _, f := range findings {
		if w := match(wants, f); w != nil {
			w.matched = true
		} else {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s finding matched want %q", w.file, w.line, a.Name, w.raw)
		}
	}
	return findings
}

// match finds an unmatched want on the finding's file and line whose
// regexp matches the message.
func match(wants []*want, f lint.Finding) *want {
	for _, w := range wants {
		if !w.matched && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
			return w
		}
	}
	return nil
}

// parseWants extracts every `// want "re"` (or backquoted) comment in
// the package. Multiple quoted regexps after one want keyword declare
// multiple expected diagnostics on that line.
func parseWants(pkg *lint.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := quotedStrings(text[idx+len("want "):])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				if len(patterns) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants, nil
}

// quotedStrings parses a sequence of space-separated Go string
// literals (double- or back-quoted).
func quotedStrings(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in want comment: %s", s)
			}
			lit, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad string in want comment: %v", err)
			}
			out = append(out, lit)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in want comment: %s", s)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want comment arguments must be quoted regexps, got: %s", s)
		}
	}
}
