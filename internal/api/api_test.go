package api

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestPrecisionNormalizedDefaults(t *testing.T) {
	p := Precision{HalfWidth: 0.05}.Normalized()
	if p.Metric != "coverage" {
		t.Fatalf("default metric %q", p.Metric)
	}
	if p.WaveTrials != DefaultWaveTrials {
		t.Fatalf("default wave trials %d", p.WaveTrials)
	}
	if p.MinTrials != DefaultMinWaves*DefaultWaveTrials {
		t.Fatalf("default min trials %d", p.MinTrials)
	}
	// MaxTrials defaults to the worst-case (p=0.5) sample size rounded
	// up to a whole wave: the budget a fixed design must provision.
	worst := int(stats.WorstCaseTrials(0.05))
	if p.MaxTrials < worst || p.MaxTrials%p.WaveTrials != 0 {
		t.Fatalf("default max trials %d, want >= %d and a wave multiple", p.MaxTrials, worst)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("normalized block invalid: %v", err)
	}

	// Explicit knobs survive normalization.
	q := Precision{Metric: "sdc", HalfWidth: 0.1, WaveTrials: 3, MinTrials: 6, MaxTrials: 9}.Normalized()
	if q != (Precision{Metric: "sdc", HalfWidth: 0.1, WaveTrials: 3, MinTrials: 6, MaxTrials: 9}) {
		t.Fatalf("normalization mutated explicit knobs: %+v", q)
	}
}

// TestPrecisionValidateNamesBounds: rejections name the valid bounds,
// so the 400 a server builds from them tells the client what to fix.
func TestPrecisionValidateNamesBounds(t *testing.T) {
	cases := []struct {
		p    Precision
		want string
	}{
		{Precision{Metric: "latency", HalfWidth: 0.05}, "coverage"},
		{Precision{HalfWidth: 0.0001}, fmt.Sprint(MinHalfWidth)},
		{Precision{HalfWidth: 0.3}, fmt.Sprint(MaxHalfWidth)},
		{Precision{HalfWidth: 0.05, WaveTrials: -1, MinTrials: 1, MaxTrials: 1}, "wave_trials"},
		{Precision{HalfWidth: 0.05, WaveTrials: 1, MinTrials: 8, MaxTrials: 4}, "max_trials"},
	}
	for _, c := range cases {
		p := c.p
		if p.Metric == "" {
			p.Metric = "coverage"
		}
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want mention of %q", c.p, err, c.want)
		}
	}
}

func TestPrecisionAxis(t *testing.T) {
	ax := PrecisionAxis()
	if len(ax.Metrics) != len(PrecisionMetrics) ||
		ax.MinHalfWidth != MinHalfWidth || ax.MaxHalfWidth != MaxHalfWidth {
		t.Fatalf("advertised axis %+v disagrees with the package bounds", ax)
	}
}

// TestFingerprintV4Compat pins the compatibility contract of the v5
// bump: a non-wave job's fingerprint is the v4 rendering verbatim —
// recomputed here against the frozen v4 format string — so the entire
// pre-adaptive cache stays addressable.
func TestFingerprintV4Compat(t *testing.T) {
	sc := Scale{Warmup: 30_000, Measure: 60_000, Timeslice: 20_000}
	j := Job{Workload: "apache", Kind: core.KindMMMIPC, Seed: 11, Variant: "mixed-r5000",
		Knobs: Knobs{FaultInterval: 5000, ReliaTrials: 6, Policy: "fault-escalation"}}

	h := sha256.New()
	fmt.Fprintf(h,
		"v4|warm=%d|meas=%d|slice=%d|wl=%s|kind=%s|seed=%d|var=%s|pabser=%t|pabdis=%t|tso=%t|flush=%d|fault=%g|fkinds=%s|rtrials=%d|fpab=%t|policy=%s",
		sc.Warmup, sc.Measure, sc.Timeslice,
		j.Workload, j.Kind, j.Seed, j.Variant,
		false, false, false, 0, 5000.0, "", 6, false, "fault-escalation")
	want := hex.EncodeToString(h.Sum(nil))
	if got := j.Fingerprint(sc); got != want {
		t.Fatalf("non-wave fingerprint diverged from the frozen v4 rendering:\ngot  %s\nwant %s", got, want)
	}
}

// TestFingerprintWaveCoordinates: wave jobs render v5 with their wave
// coordinates — distinct waves, offsets and sizes of one cell never
// collide, while Key and SimSeed stay wave-invariant so waves aggregate
// into their cell.
func TestFingerprintWaveCoordinates(t *testing.T) {
	sc := Scale{Warmup: 30_000, Measure: 60_000, Timeslice: 20_000}
	base := Job{Workload: "apache", Kind: core.KindReunion, Seed: 11, Variant: "dmr-r5000",
		Knobs: Knobs{FaultInterval: 5000, ReliaTrials: 2, Wave: 1, TrialOffset: 0}}

	seen := map[string]Job{}
	perturb := []Job{base}
	w2 := base
	w2.Knobs.Wave, w2.Knobs.TrialOffset = 2, 2
	w3 := base
	w3.Knobs.Wave, w3.Knobs.TrialOffset = 2, 4
	w4 := base
	w4.Knobs.ReliaTrials = 4
	perturb = append(perturb, w2, w3, w4)
	for _, j := range perturb {
		fp := j.Fingerprint(sc)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("wave fingerprint collision: %+v vs %+v", prev, j)
		}
		seen[fp] = j
	}

	fixed := base
	fixed.Knobs.Wave, fixed.Knobs.TrialOffset = 0, 0
	if fixed.Fingerprint(sc) == base.Fingerprint(sc) {
		t.Fatal("wave 1 shares a fingerprint with the fixed-batch job")
	}

	if base.Key() != fixed.Key() || w2.Key() != fixed.Key() {
		t.Fatal("wave knobs leaked into the aggregation key")
	}
	if base.SimSeed() != fixed.SimSeed() || w2.SimSeed() != fixed.SimSeed() {
		t.Fatal("wave knobs leaked into the sim seed")
	}
}
