// Package api is the typed, versioned wire vocabulary of the
// simulator's distributed surface. Every structure that crosses a
// process boundary lives here — the campaign job identity (Scale,
// Knobs, Job and its fingerprint derivation), the adaptive-precision
// block, the run-journal event record, the attribution report, the
// lease protocol spoken between the campaign board and fleet workers,
// and the mmmd service request/response bodies — so that mmmd,
// mmmtail, the Dispatcher/Worker pair and the tests all share one
// definition instead of hand-rolling per-command structs.
//
// The package sits below internal/campaign: campaign aliases these
// types (type Job = api.Job, ...), so existing call sites keep
// compiling while the wire contract has a single owner. HTTP routes
// carrying these bodies are versioned under PathPrefix ("/v1");
// legacy unversioned paths remain as thin aliases that answer with a
// Deprecation header naming the successor route.
package api

const (
	// Version names the current API generation. It appears in route
	// prefixes and lets clients assert compatibility explicitly.
	Version = "v1"
	// PathPrefix is the route prefix of the current API generation:
	// every mmmd endpoint is canonically served under it.
	PathPrefix = "/v1"
	// DeprecationHeader is set (to "true") on responses served via a
	// legacy unversioned route alias. Clients should migrate to the
	// PathPrefix form; the alias additionally sends a Link header with
	// rel="successor-version" naming the canonical route.
	DeprecationHeader = "Deprecation"
	// SuccessorRel is the Link relation used by deprecated aliases to
	// point at the versioned route that replaces them.
	SuccessorRel = "successor-version"
)
