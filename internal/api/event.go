package api

import (
	"time"

	"repro/internal/core"
)

// EventType classifies one run-journal event. The vocabulary is
// stable: JSONL journals are read across builds.
type EventType string

const (
	// EventExpanded opens a run: the spec expanded to Total cells at
	// Scale. Always the first event (Cell = -1). Adaptive runs also
	// carry the normalized Precision block.
	EventExpanded EventType = "expanded"
	// EventCacheHit marks a cell (or, adaptively, one wave of a cell)
	// served from the result cache without simulation.
	EventCacheHit EventType = "cache_hit"
	// EventLeased marks a cell leased to a worker (Attempt starts at 1).
	EventLeased EventType = "leased"
	// EventStarted marks a cell beginning simulation (for distributed
	// runs this coincides with the lease grant — workers lease only
	// into a free slot and run immediately).
	EventStarted EventType = "started"
	// EventHeartbeatMissed marks a lease reaped after its worker went
	// silent; the cell returns to the queue.
	EventHeartbeatMissed EventType = "heartbeat_missed"
	// EventReassigned marks a lease grant that retries a previously
	// attempted cell (always paired with an EventLeased of Attempt > 1).
	EventReassigned EventType = "reassigned"
	// EventCompleted marks a cell's simulation finishing, in completion
	// order, with the attempt's wall time.
	EventCompleted EventType = "completed"
	// EventFailed marks a failed attempt (Cell >= 0, Error set) or —
	// with Cell = -1 — the run failing terminally.
	EventFailed EventType = "failed"
	// EventMerged marks a cell's result entering the deterministic
	// merged prefix, in expansion order, carrying the full Job and
	// Metrics payload. Exactly one per cell, Cell strictly increasing.
	EventMerged EventType = "merged"
	// EventCanceled marks the run canceled (Cell = -1). Terminal.
	EventCanceled EventType = "canceled"
	// EventWaveScheduled marks the sequential-stopping planner
	// scheduling wave Wave (Trials trials) of an adaptive cell; the
	// event carries the cell's Wilson half-width going into the wave
	// (HalfWidth, 0 before any trials ran) so a stream consumer can
	// watch each interval tighten.
	EventWaveScheduled EventType = "wave_scheduled"
	// EventCellRetired marks an adaptive cell leaving the schedule:
	// its interval met the target half-width (or the cell hit its
	// MaxTrials cap — then Capped is set). Trials is the cell's total
	// trial count; exactly one per adaptive cell, always before the
	// cell's EventMerged.
	EventCellRetired EventType = "cell_retired"
)

// Event is one journal record. Cell is the job's index in expansion
// order, or -1 for run-level events. Only EventMerged carries the Job
// and Metrics payloads — every other event stays compact (Key labels
// the cell). In adaptive runs, cell-scoped events additionally carry
// the wave coordinate of the attempt they describe.
type Event struct {
	Seq     int64         `json:"seq"`
	Time    time.Time     `json:"time"`
	Type    EventType     `json:"type"`
	Run     string        `json:"run,omitempty"`
	Cell    int           `json:"cell"`
	Key     string        `json:"key,omitempty"`
	Worker  string        `json:"worker,omitempty"`
	Attempt int           `json:"attempt,omitempty"`
	WallMS  int64         `json:"wall_ms,omitempty"`
	Error   string        `json:"error,omitempty"`
	Total   int           `json:"total,omitempty"`
	Scale   *Scale        `json:"scale,omitempty"`
	Hit     bool          `json:"hit,omitempty"`
	Fp      string        `json:"fp,omitempty"`
	Job     *Job          `json:"job,omitempty"`
	Metrics *core.Metrics `json:"metrics,omitempty"`

	// Adaptive-precision fields (PR 9). Wave is the 1-based wave index
	// of the attempt the event describes (0 on non-wave events);
	// Trials and HalfWidth annotate wave_scheduled/cell_retired;
	// Precision rides on the expanded event of an adaptive run.
	Wave      int        `json:"wave,omitempty"`
	Trials    int        `json:"trials,omitempty"`
	HalfWidth float64    `json:"half_width,omitempty"`
	Capped    bool       `json:"capped,omitempty"`
	Precision *Precision `json:"precision,omitempty"`
}
