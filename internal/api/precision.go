package api

import (
	"fmt"

	"repro/internal/stats"
)

// Bounds of the precision axis, advertised by GET /v1/catalog and
// enforced at submit time. The lower half-width bound keeps the
// worst-case trial budget (stats.WorstCaseTrials) within what a
// campaign can actually execute; the upper bound rejects targets so
// loose the first wave always satisfies them, which would silently
// degrade an "adaptive" run into a fixed wave-sized batch.
const (
	MinHalfWidth = 0.001
	MaxHalfWidth = 0.25
)

// Default sizing for precision blocks that leave the knobs zero.
const (
	DefaultWaveTrials = 12
	DefaultMinWaves   = 2
)

// PrecisionMetrics lists the proportions a stopping rule can target.
// "coverage" is covered/exposed across all injected kinds; "sdc" is
// its complement (1 - coverage). The two Wilson intervals are mirror
// images, so the half-width — and therefore the stopping decision —
// is identical; both names are accepted so a spec reads naturally for
// the question it asks.
var PrecisionMetrics = []string{"coverage", "sdc"}

// Precision is the sequential-stopping block of an adaptive campaign
// spec: run each cell's reliability trials in waves of WaveTrials,
// retire the cell once its 95% Wilson interval on Metric has
// half-width at most HalfWidth (never before MinTrials trials), and
// cap the cell at MaxTrials regardless.
type Precision struct {
	// Metric names the targeted proportion; see PrecisionMetrics.
	// Empty means "coverage".
	Metric string `json:"metric,omitempty"`
	// HalfWidth is the target 95% Wilson half-width, e.g. 0.01 for
	// ±1 percentage point. Required; bounded by [MinHalfWidth,
	// MaxHalfWidth].
	HalfWidth float64 `json:"half_width"`
	// WaveTrials is the number of Monte Carlo trials per wave.
	// Zero means DefaultWaveTrials.
	WaveTrials int `json:"wave_trials,omitempty"`
	// MinTrials is the floor below which a cell is never retired, so
	// a lucky tiny sample cannot stop a cell early. Zero means
	// DefaultMinWaves full waves.
	MinTrials int `json:"min_trials,omitempty"`
	// MaxTrials caps a cell's total trials. Zero means the worst-case
	// sample size for HalfWidth (the n at which even p=0.5 meets the
	// target — the size a fixed-batch design must provision), rounded
	// up to a whole wave. With that default every cell provably ends
	// within target, and any cell whose proportion sits away from 0.5
	// retires earlier: the trials-saved-vs-fixed win.
	MaxTrials int `json:"max_trials,omitempty"`
}

// Normalized returns a copy with the documented defaults filled in.
func (p Precision) Normalized() Precision {
	if p.Metric == "" {
		p.Metric = "coverage"
	}
	if p.WaveTrials == 0 {
		p.WaveTrials = DefaultWaveTrials
	}
	if p.MinTrials == 0 {
		p.MinTrials = DefaultMinWaves * p.WaveTrials
	}
	if p.MaxTrials == 0 {
		worst := int(stats.WorstCaseTrials(p.HalfWidth))
		waves := (worst + p.WaveTrials - 1) / p.WaveTrials
		p.MaxTrials = waves * p.WaveTrials
	}
	if p.MaxTrials < p.MinTrials {
		p.MaxTrials = p.MinTrials
	}
	return p
}

// Validate checks a (typically Normalized) precision block and
// returns an error naming the valid bounds on rejection, so a 400
// response tells the client exactly what to fix.
func (p Precision) Validate() error {
	ok := false
	for _, m := range PrecisionMetrics {
		if p.Metric == m {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("precision: unknown metric %q (valid: %v)", p.Metric, PrecisionMetrics)
	}
	if p.HalfWidth < MinHalfWidth || p.HalfWidth > MaxHalfWidth {
		return fmt.Errorf("precision: half_width %g outside valid bounds [%g, %g]",
			p.HalfWidth, MinHalfWidth, MaxHalfWidth)
	}
	if p.WaveTrials < 1 {
		return fmt.Errorf("precision: wave_trials %d must be at least 1", p.WaveTrials)
	}
	if p.MinTrials < 1 {
		return fmt.Errorf("precision: min_trials %d must be at least 1", p.MinTrials)
	}
	if p.MaxTrials < p.MinTrials {
		return fmt.Errorf("precision: max_trials %d below min_trials %d", p.MaxTrials, p.MinTrials)
	}
	return nil
}

// Axis describes the precision axis for the catalog: which metrics a
// stopping rule can target and the bounds a submitted half-width must
// respect.
type Axis struct {
	Metrics           []string `json:"metrics"`
	MinHalfWidth      float64  `json:"min_half_width"`
	MaxHalfWidth      float64  `json:"max_half_width"`
	DefaultWaveTrials int      `json:"default_wave_trials"`
}

// PrecisionAxis returns the advertised precision axis.
func PrecisionAxis() Axis {
	return Axis{
		Metrics:           append([]string(nil), PrecisionMetrics...),
		MinHalfWidth:      MinHalfWidth,
		MaxHalfWidth:      MaxHalfWidth,
		DefaultWaveTrials: DefaultWaveTrials,
	}
}
