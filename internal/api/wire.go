package api

import (
	"repro/internal/core"
)

// --- mmmd service bodies -------------------------------------------

// SubmitRequest is the body of POST /v1/campaigns: a named campaign
// plus optional axis, scale and precision overrides.
type SubmitRequest struct {
	// Name selects a registered campaign (GET /v1/catalog lists them).
	Name string `json:"name"`
	// Scale is "default" or "quick"; empty means "default".
	Scale string `json:"scale,omitempty"`
	// Warmup/Measure/Timeslice override individual scale windows.
	// Pointers so that an explicit zero (e.g. a zero-warmup campaign,
	// which the engine supports) is distinguishable from "not set".
	Warmup    *uint64 `json:"warmup,omitempty"`
	Measure   *uint64 `json:"measure,omitempty"`
	Timeslice *uint64 `json:"timeslice,omitempty"`
	// Workloads and Seeds override the sweep axes.
	Workloads []string `json:"workloads,omitempty"`
	Seeds     []uint64 `json:"seeds,omitempty"`
	// Policies overrides the mode-policy axis: each entry is a policy
	// spec (GET /v1/catalog lists the registered names), "" or "static"
	// meaning the kind's default behavior. The campaign's cells are
	// multiplied across the axis. Unknown names are rejected with 400.
	Policies []string `json:"policies,omitempty"`
	// Precision turns the submission into an adaptive-precision run:
	// every cell (which must be a reliability cell) is scheduled in
	// waves under the sequential stopping rule instead of one fixed
	// batch. Targets outside the advertised bounds are rejected with
	// 400 naming the valid range.
	Precision *Precision `json:"precision,omitempty"`
	// Workers overrides the worker fleet ("host:port" or URLs) for
	// this campaign; empty uses the service's -workers default.
	// Campaign jobs are then sharded across the fleet through the
	// pull-based lease protocol instead of the local pool.
	Workers []string `json:"workers,omitempty"`
	// Local forces local execution even when the service has a
	// default fleet.
	Local bool `json:"local,omitempty"`
}

// RunStatus is the JSON rendering of a run's state (GET
// /v1/campaigns/{id}, and the element of the list/status responses).
// For adaptive runs Jobs/Done count cells, not waves.
type RunStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Scale    Scale  `json:"scale"`
	Status   string `json:"status"`
	Jobs     int    `json:"jobs"`
	Done     int    `json:"done"`
	CacheHit int    `json:"cache_hits"`
	Workers  int    `json:"workers,omitempty"`
	Error    string `json:"error,omitempty"`
	WallMS   int64  `json:"wall_ms,omitempty"`
	// Precision echoes the normalized adaptive block of an adaptive
	// submission; nil for fixed-batch runs.
	Precision *Precision `json:"precision,omitempty"`
	// Attribution is the journal-derived wall-clock report, present
	// once the run reaches a terminal state.
	Attribution *Report `json:"attribution,omitempty"`
}

// RunList is the body of GET /v1/campaigns.
type RunList struct {
	Campaigns []RunStatus `json:"campaigns"`
}

// CatalogResponse is the body of GET /v1/catalog: the registered
// campaign names, the mode-policy vocabulary, the precision axis an
// adaptive submission may target, and the full per-campaign axes.
type CatalogResponse struct {
	Names     []string `json:"names"`
	Policies  []string `json:"policies"`
	Precision Axis     `json:"precision"`
	Campaigns []Axes   `json:"campaigns"`
}

// ErrorResponse is the body of every non-2xx mmmd response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Axes describes a registered campaign's sweep dimensions under its
// default axes, so operators can discover what a campaign runs without
// reading source (served by the catalog endpoint).
type Axes struct {
	Name      string   `json:"name"`
	Kinds     []string `json:"kinds"`
	Workloads []string `json:"workloads"`
	Variants  []string `json:"variants,omitempty"`
	// Policies lists the distinct mode policies the campaign's default
	// expansion sweeps ("static" stands for the default cells).
	Policies    []string `json:"policies,omitempty"`
	Seeds       []uint64 `json:"seeds"`
	Jobs        int      `json:"jobs"`
	Reliability bool     `json:"reliability,omitempty"`
	// Precision is the campaign's default adaptive block, for
	// campaigns registered as adaptive; nil otherwise.
	Precision *Precision `json:"precision,omitempty"`
}

// --- lease protocol (board <-> worker) -----------------------------

// AttachRequest invites a worker to start pulling jobs from a board
// (POST {worker}/v1/attach).
type AttachRequest struct {
	// Coordinator is the base URL of the board to pull from.
	Coordinator string `json:"coordinator"`
	// Check is the coordinator's protocol check token; the worker
	// refuses the attachment unless it matches its own.
	Check string `json:"check"`
}

// AttachResponse acknowledges an attachment.
type AttachResponse struct {
	Worker   string `json:"worker"`
	Capacity int    `json:"capacity"`
	Check    string `json:"check"`
}

// LeaseRequest asks the board for one job (POST {board}/lease).
type LeaseRequest struct {
	Worker string `json:"worker"`
	Check  string `json:"check"`
}

// LeaseResponse hands a worker one job under a lease. SimSeed and
// Fingerprint are the coordinator's derivations; the worker recomputes
// both and refuses the job on mismatch, so a seed-derivation or
// fingerprint skew between builds surfaces as an explicit error
// instead of a silently divergent (and wrongly cached) simulation.
type LeaseResponse struct {
	LeaseID     string `json:"lease_id"`
	Job         Job    `json:"job"`
	Scale       Scale  `json:"scale"`
	SimSeed     uint64 `json:"sim_seed"`
	Fingerprint string `json:"fingerprint"`
	TTLMS       int64  `json:"ttl_ms"`
}

// HeartbeatRequest extends a lease while its job simulates.
type HeartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// CompleteRequest returns a finished job: the canonical core.Metrics
// payload (the same JSON the content-addressed cache stores) plus the
// job's cache key, or an error. Exactly one of Metrics/Error is set.
type CompleteRequest struct {
	LeaseID     string        `json:"lease_id"`
	Worker      string        `json:"worker"`
	Fingerprint string        `json:"fingerprint"`
	Metrics     *core.Metrics `json:"metrics,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// BoardStatus is the terminal payload of 410 responses: why the board
// is over, so workers can log something actionable.
type BoardStatus struct {
	Done  bool   `json:"done"`
	Error string `json:"error,omitempty"`
}
