package api

import (
	"fmt"
	"io"
)

// Wall-clock attribution types: where did the campaign's time go?
// The report is computed by campaign.Attribute purely from journal
// events; the types live here because the report crosses the wire —
// GET /v1/campaigns/{id} embeds it and mmmtail renders it.

// WorkerReport is one worker's share of a run.
type WorkerReport struct {
	Worker string `json:"worker"`
	// Jobs counts completions (cache hits are coordinator-local and
	// attributed to no worker).
	Jobs     int `json:"jobs"`
	Failures int `json:"failures"`
	// BusySeconds sums the worker's completed-attempt wall times;
	// BusyPct is that against the run's wall clock — the utilization of
	// a dedicated worker (time not busy was idle or lost to churn).
	BusySeconds float64 `json:"busy_seconds"`
	BusyPct     float64 `json:"busy_pct"`
}

// GroupReport aggregates job seconds per workload x kind group —
// the straggler axis: a group whose p99 dwarfs its p50 is where the
// fleet's tail lives.
type GroupReport struct {
	Group string  `json:"group"`
	Jobs  int     `json:"jobs"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
}

// CellReport is one straggler: a slowest-N simulated cell.
type CellReport struct {
	Cell    int     `json:"cell"`
	Key     string  `json:"key"`
	Worker  string  `json:"worker,omitempty"`
	Seconds float64 `json:"seconds"`
}

// Report is the wall-clock attribution of one run.
type Report struct {
	Run              string         `json:"run,omitempty"`
	Outcome          string         `json:"outcome"`
	Cells            int            `json:"cells"`
	Merged           int            `json:"merged"`
	CacheHits        int            `json:"cache_hits"`
	CacheHitPct      float64        `json:"cache_hit_pct"`
	WallSeconds      float64        `json:"wall_seconds"`
	BusySeconds      float64        `json:"busy_seconds"`
	Failures         int            `json:"failures"`
	Reassignments    int            `json:"reassignments"`
	HeartbeatsMissed int            `json:"heartbeats_missed"`
	Workers          []WorkerReport `json:"workers,omitempty"`
	Groups           []GroupReport  `json:"groups,omitempty"`
	Stragglers       []CellReport   `json:"stragglers,omitempty"`

	// Adaptive-precision attribution: trials the sequential-stopping
	// planner actually scheduled vs the fixed-batch equivalent (cells
	// x the precision block's MaxTrials — the worst-case budget a
	// fixed design must provision for the same guarantee), and how
	// cells retired. Zero-valued on non-adaptive runs.
	Adaptive        bool    `json:"adaptive,omitempty"`
	TrialsScheduled int     `json:"trials_scheduled,omitempty"`
	TrialsFixed     int     `json:"trials_fixed,omitempty"`
	TrialsSavedPct  float64 `json:"trials_saved_pct,omitempty"`
	CellsRetired    int     `json:"cells_retired,omitempty"`
	CellsCapped     int     `json:"cells_capped,omitempty"`
}

// WriteText renders the report for terminals (mmmtail).
func (r Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "run %s: %s — %d/%d cells merged, %d cache hits (%.0f%%), wall %.2fs\n",
		orDash(r.Run), r.Outcome, r.Merged, r.Cells, r.CacheHits, r.CacheHitPct, r.WallSeconds)
	if r.Adaptive {
		fmt.Fprintf(w, "adaptive: %d trials scheduled vs %d fixed-equivalent (%.1f%% saved), %d cells retired on target, %d capped\n",
			r.TrialsScheduled, r.TrialsFixed, r.TrialsSavedPct, r.CellsRetired-r.CellsCapped, r.CellsCapped)
	}
	if r.Failures > 0 || r.Reassignments > 0 || r.HeartbeatsMissed > 0 {
		fmt.Fprintf(w, "churn: %d failed attempts, %d reassignments, %d missed heartbeats\n",
			r.Failures, r.Reassignments, r.HeartbeatsMissed)
	}
	if len(r.Workers) > 0 {
		fmt.Fprintf(w, "workers:\n")
		for _, wr := range r.Workers {
			fmt.Fprintf(w, "  %-16s %4d jobs  busy %8.2fs  util %5.1f%%  failures %d\n",
				wr.Worker, wr.Jobs, wr.BusySeconds, wr.BusyPct, wr.Failures)
		}
	}
	if len(r.Groups) > 0 {
		fmt.Fprintf(w, "job seconds by workload/kind (p50/p95/p99/max):\n")
		for _, g := range r.Groups {
			fmt.Fprintf(w, "  %-28s %3d jobs  %6.2f %6.2f %6.2f %6.2f\n",
				g.Group, g.Jobs, g.P50, g.P95, g.P99, g.Max)
		}
	}
	if len(r.Stragglers) > 0 {
		fmt.Fprintf(w, "stragglers:\n")
		for _, s := range r.Stragglers {
			fmt.Fprintf(w, "  cell %-4d %-32s %6.2fs  %s\n", s.Cell, s.Key, s.Seconds, orDash(s.Worker))
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
