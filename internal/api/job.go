package api

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// SpecVersion is folded into every job fingerprint. Bump it whenever
// the simulator's semantics change in a way that invalidates previously
// cached metrics.
//
// v2: Reunion fingerprints cover memory access addresses, persistent
// divergences escalate to machine checks, and reliability (Monte
// Carlo trial batch) jobs exist.
//
// v3: Metrics.FaultsInjected is rebased at ResetMeasurement and now
// counts only measurement-window injections; cached v2 metrics for
// fault-injection cells include warmup faults and are invalid.
//
// v4: the runtime mode-policy axis exists (Knobs.Policy, folded into
// the fingerprint). Static-policy results are byte-identical to v3 —
// the golden-row regression pins that — but the fingerprint input
// set changed, so cached v3 entries are re-keyed, not reinterpreted.
//
// v5: adaptive-precision campaigns schedule reliability trials in
// waves (Knobs.Wave/TrialOffset). Only wave jobs render v5 — a
// non-wave job keeps rendering the v4 prefix verbatim, so the entire
// pre-adaptive cache remains valid (fingerprint compatibility for
// non-adaptive cells).
const SpecVersion = 5

// compatVersion is the fingerprint version rendered for non-wave
// jobs: their input set is unchanged since v4, so re-keying them
// would only throw away valid cache entries.
const compatVersion = 4

// Scale sets the simulation windows shared by every job of a campaign.
type Scale struct {
	Warmup    sim.Cycle `json:"warmup"`
	Measure   sim.Cycle `json:"measure"`
	Timeslice sim.Cycle `json:"timeslice"`
}

// Knobs is the declarative form of the sim.Config mutations the
// evaluation sweeps over. Unlike a closure, a Knobs value is part of a
// job's identity: it canonicalizes into the cache fingerprint, so two
// jobs differing only in a knob never collide. The annotation below is
// enforced by mmmlint's knobcover analyzer: every field added here
// must be folded into Fingerprint/Key/SimSeed (with a SpecVersion
// bump) or carry an explicit //mmm:knobcover-exempt reason, so a knob
// outside the fingerprint — the silent cache-poisoning failure mode —
// is a build error, not a code-review hope.
//
//mmm:knobcover Fingerprint,Key,SimSeed
type Knobs struct {
	// PABSerial selects the serial 2-cycle PAB lookup (Section 5.2).
	PABSerial bool `json:"pab_serial,omitempty"`
	// PABDisabled turns PAB enforcement off (fault-injection ablation).
	PABDisabled bool `json:"pab_disabled,omitempty"`
	// TSO selects total-store-order instead of the paper's SC.
	TSO bool `json:"tso,omitempty"`
	// FlushPerCycle overrides the Leave-DMR flush rate when positive.
	FlushPerCycle int `json:"flush_per_cycle,omitempty"`
	// FaultInterval, when positive, injects faults with this mean
	// spacing in cycles.
	FaultInterval float64 `json:"fault_interval,omitempty"`
	// FaultKinds restricts injected manifestations to a comma-joined
	// list of canonical kind names ("result-flip,tlb-flip"); empty
	// injects all kinds. A string (not a slice) so Job stays
	// comparable and deduplicable.
	FaultKinds string `json:"fault_kinds,omitempty"`
	// ReliaTrials, when positive, turns the job into a reliability
	// evaluation batch: that many Monte Carlo fault-injection trials
	// run and the result carries an outcome taxonomy instead of
	// performance buckets (see internal/relia).
	ReliaTrials int `json:"relia_trials,omitempty"`
	// ForcePAB guards performance-mode stores with the PAB on system
	// kinds that do not enable it by default (the pure
	// performance-mode protection scenario).
	ForcePAB bool `json:"force_pab,omitempty"`
	// Policy names the runtime mode policy (internal/mode) deciding
	// when core pairs couple into DMR and decouple back to performance
	// mode: "" or "static" for the kind's pre-built behavior, or a
	// dynamic policy spec such as "utilization", "duty-cycle:60000:25"
	// or "fault-escalation". Expand canonicalizes and validates it.
	Policy string `json:"policy,omitempty"`
	// Wave, when positive, marks the job as the Wave'th (1-based)
	// sequential-stopping increment of an adaptive-precision cell:
	// ReliaTrials then counts only this wave's trials, and the trial
	// windows derive from the cell's reference batch shape so every
	// wave of a cell is statistically mergeable with the others. Wave
	// 0 is a plain fixed-batch job and keeps the v4 fingerprint.
	Wave int `json:"wave,omitempty"`
	// TrialOffset is the global index of the wave's first trial within
	// its cell: wave trials [TrialOffset, TrialOffset+ReliaTrials) use
	// exactly the per-trial seeds a single fixed batch of the same
	// total size would, which is what makes the merged aggregate
	// provably equal to that batch.
	TrialOffset int `json:"trial_offset,omitempty"`
}

// Apply mutates a sim.Config according to the knobs. PABDisabled and
// FaultInterval act at the core.Options level, not here.
func (k Knobs) Apply(cfg *sim.Config) {
	if k.PABSerial {
		cfg.PABSerial = true
	}
	if k.TSO {
		cfg.TSO = true
	}
	if k.FlushPerCycle > 0 {
		cfg.FlushPerCycle = k.FlushPerCycle
	}
}

// Job is one fully specified simulation: a cell of the sweep
// cross-product. Jobs are pure data so they can be expanded, hashed,
// cached and distributed. Like Knobs, the field set is under knobcover
// coverage: every field must reach the fingerprint/key/seed
// derivation.
//
//mmm:knobcover Fingerprint,Key,SimSeed
type Job struct {
	Workload string    `json:"workload"`
	Kind     core.Kind `json:"kind"`
	Seed     uint64    `json:"seed"`
	Variant  string    `json:"variant,omitempty"`
	Knobs    Knobs     `json:"knobs"`
}

// Key is the aggregation key of the job's cell: runs differing only in
// seed share a key and fold into one stats.Sample. A non-default mode
// policy is its own key segment, so a policy sweep's cells never fold
// into the static baseline's. Waves of one adaptive cell share the
// cell's key — the wave index is an execution detail, not a cell.
func (j Job) Key() string {
	k := fmt.Sprintf("%s/%s", j.Workload, j.Kind)
	if j.Variant != "" {
		k += "/" + j.Variant
	}
	if j.Knobs.Policy != "" {
		k += "/pol=" + j.Knobs.Policy
	}
	return k
}

// SimSeed derives the seed handed to the simulator. Mixing the cell
// labels in decorrelates the random streams of different cells that
// declare the same seed, and is stable across processes, so cached
// results remain valid. The policy label is folded in only when set,
// so every pre-policy cell keeps its historical stream. Waves share
// the cell's seed: per-trial streams separate on the global trial
// index (Knobs.TrialOffset + t) inside relia.RunBatch, which is what
// keeps a waved cell's trials identical to a single batch's.
func (j Job) SimSeed() uint64 {
	if j.Knobs.Policy != "" {
		return sim.DeriveSeed(j.Seed, j.Workload, j.Kind.String(), j.Variant, j.Knobs.Policy)
	}
	return sim.DeriveSeed(j.Seed, j.Workload, j.Kind.String(), j.Variant)
}

// Fingerprint is the content address of the job's result: a SHA-256
// over the canonical rendering of (version, scale, every job
// parameter). Equal fingerprints mean byte-identical simulations.
// Non-wave jobs render the v4 prefix unchanged so every pre-adaptive
// cache entry stays addressable; wave jobs render v5 plus their wave
// coordinates.
func (j Job) Fingerprint(sc Scale) string {
	h := sha256.New()
	v := compatVersion
	if j.Knobs.Wave > 0 {
		v = SpecVersion
	}
	fmt.Fprintf(h,
		"v%d|warm=%d|meas=%d|slice=%d|wl=%s|kind=%s|seed=%d|var=%s|pabser=%t|pabdis=%t|tso=%t|flush=%d|fault=%g|fkinds=%s|rtrials=%d|fpab=%t|policy=%s",
		v, sc.Warmup, sc.Measure, sc.Timeslice,
		j.Workload, j.Kind, j.Seed, j.Variant,
		j.Knobs.PABSerial, j.Knobs.PABDisabled, j.Knobs.TSO,
		j.Knobs.FlushPerCycle, j.Knobs.FaultInterval,
		j.Knobs.FaultKinds, j.Knobs.ReliaTrials, j.Knobs.ForcePAB,
		j.Knobs.Policy)
	if j.Knobs.Wave > 0 {
		fmt.Fprintf(h, "|wave=%d|off=%d", j.Knobs.Wave, j.Knobs.TrialOffset)
	}
	return hex.EncodeToString(h.Sum(nil))
}
