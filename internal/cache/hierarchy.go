package cache

import (
	"repro/internal/interconnect"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Source says where a memory access was satisfied, for diagnostics and
// for reproducing the paper's C2C-transfer analysis.
type Source uint8

const (
	// SrcL1 is a private L1 hit.
	SrcL1 Source = iota
	// SrcL2 is a private L2 hit.
	SrcL2
	// SrcC2C is a 3-hop cache-to-cache transfer from another L2.
	SrcC2C
	// SrcL3 is a shared L3 hit (2-hop).
	SrcL3
	// SrcMem is an off-chip memory access.
	SrcMem
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	case SrcC2C:
		return "C2C"
	case SrcL3:
		return "L3"
	case SrcMem:
		return "Mem"
	default:
		return "?"
	}
}

// Hierarchy is the chip's full memory system: per-core split L1s and
// private L2s, the shared exclusive L3, the MOSI directory, the
// interconnect, and the memory controller.
//
// Coherent requests (everything except a Reunion mute core's normal
// execution) update directory state. Incoherent requests make a
// best-effort attempt to find the data — preferentially a C2C transfer
// from the owning L2, which is usually the vocal core that fetched the
// line first (the paper's explanation for Reunion's 20–50% C2C
// increase under an exclusive L3) — without changing the state of the
// line in the directory or any other cache.
type Hierarchy struct {
	cfg *sim.Config
	rec *Recycler
	net *interconnect.Network
	mem *Memory

	L1I []*Cache
	L1D []*Cache
	L2  []*Cache
	L3  *Cache
	Dir *Directory

	l3AccessLat sim.Cycle
	memEP       int

	// lineShift/bankMask turn bankEP's divide-and-modulo into
	// shift-and-mask; bankMask is 0 when L3Banks is not a power of two
	// and the slow path applies.
	lineShift uint
	bankMask  uint64

	// Ctr is indexed by core; mute incoherent traffic is charged to
	// the mute's own core id.
	Ctr []stats.CacheCounters
}

// New builds the hierarchy for the configured chip.
func New(cfg *sim.Config) *Hierarchy {
	return NewRecycled(cfg, nil)
}

// NewRecycled builds the hierarchy drawing its line arrays from the
// given recycler (nil allocates fresh); Release returns them.
func NewRecycled(cfg *sim.Config, rec *Recycler) *Hierarchy {
	h := &Hierarchy{
		cfg:   cfg,
		rec:   rec,
		net:   interconnect.NewNetwork(cfg.Cores+cfg.L3Banks+1, cfg.NetHopLat, cfg.L3PortBusy),
		mem:   NewMemory(cfg),
		L3:    newCache(rec, "L3", cfg.L3Size, cfg.L3Ways, cfg.LineSize),
		Dir:   NewDirectory(),
		Ctr:   make([]stats.CacheCounters, cfg.Cores),
		memEP: cfg.Cores + cfg.L3Banks,
	}
	for 1<<h.lineShift < cfg.LineSize {
		h.lineShift++
	}
	if b := cfg.L3Banks; b > 0 && b&(b-1) == 0 && 1<<h.lineShift == cfg.LineSize {
		h.bankMask = uint64(b - 1)
	}
	for i := 0; i < cfg.Cores; i++ {
		h.L1I = append(h.L1I, newCache(rec, "L1I", cfg.L1Size, cfg.L1Ways, cfg.LineSize))
		h.L1D = append(h.L1D, newCache(rec, "L1D", cfg.L1Size, cfg.L1Ways, cfg.LineSize))
		h.L2 = append(h.L2, newCache(rec, "L2", cfg.L2Size, cfg.L2Ways, cfg.LineSize))
	}
	// Decompose the configured end-to-end L3 load-to-use latency into
	// request hop + shadow-tag/directory lookup + array access +
	// response hop.
	lat := int64(cfg.L3HitLat) - 2*int64(cfg.NetHopLat) - int64(cfg.DirLat)
	if lat < 1 {
		lat = 1
	}
	h.l3AccessLat = sim.Cycle(lat)
	return h
}

// Mem exposes the memory controller (for tests and ablations).
func (h *Hierarchy) Mem() *Memory { return h.mem }

// Release hands every line array back to the recycler the hierarchy
// was built with (a no-op for fresh-allocating hierarchies). The
// hierarchy — and the chip above it — must not be used afterwards.
func (h *Hierarchy) Release() {
	if h.rec == nil {
		return
	}
	h.L3.release(h.rec)
	for i := range h.L2 {
		h.L1I[i].release(h.rec)
		h.L1D[i].release(h.rec)
		h.L2[i].release(h.rec)
	}
}

func (h *Hierarchy) lineAddr(pa uint64) uint64 {
	return pa &^ (uint64(h.cfg.LineSize) - 1)
}

func (h *Hierarchy) bankEP(la uint64) int {
	if h.bankMask != 0 {
		return h.cfg.Cores + int((la>>h.lineShift)&h.bankMask)
	}
	bank := int((la / uint64(h.cfg.LineSize)) % uint64(h.cfg.L3Banks))
	return h.cfg.Cores + bank
}

// Totals sums the per-core cache counters.
func (h *Hierarchy) Totals() stats.CacheCounters {
	var t stats.CacheCounters
	for i := range h.Ctr {
		t.Add(&h.Ctr[i])
	}
	return t
}

// --- coherent request path ---------------------------------------------

// Load performs a coherent load by core at cycle now and returns the
// absolute cycle at which the data is usable plus its source.
func (h *Hierarchy) Load(core int, pa uint64, now sim.Cycle) (sim.Cycle, Source) {
	ctr := &h.Ctr[core]
	la := h.lineAddr(pa)
	if l := h.L1D[core].Lookup(pa); l != nil && l.Coherent {
		ctr.L1Hits++
		return now + h.cfg.L1HitLat, SrcL1
	}
	ctr.L1Misses++
	if l := h.L2[core].Lookup(pa); l != nil && l.Coherent {
		ctr.L2Hits++
		h.fillL1(core, h.L1D, la, true)
		return now + h.cfg.L2HitLat, SrcL2
	}
	ctr.L2Misses++
	ready, src := h.coherentFill(core, la, now, Shared)
	h.fillL1(core, h.L1D, la, true)
	return ready, src
}

// Fetch performs a coherent instruction fetch through the L1I.
func (h *Hierarchy) Fetch(core int, pa uint64, now sim.Cycle) (sim.Cycle, Source) {
	ctr := &h.Ctr[core]
	la := h.lineAddr(pa)
	if l := h.L1I[core].Lookup(pa); l != nil && l.Coherent {
		ctr.L1Hits++
		return now + h.cfg.L1HitLat, SrcL1
	}
	ctr.L1Misses++
	if l := h.L2[core].Lookup(pa); l != nil && l.Coherent {
		ctr.L2Hits++
		h.fillL1(core, h.L1I, la, true)
		return now + h.cfg.L2HitLat, SrcL2
	}
	ctr.L2Misses++
	ready, src := h.coherentFill(core, la, now, Shared)
	h.fillL1(core, h.L1I, la, true)
	return ready, src
}

// Store performs a coherent store by core (a write-through from the L1)
// at cycle now. Under MOSI the L2 must hold the line in Modified state
// before the write completes.
func (h *Hierarchy) Store(core int, pa uint64, now sim.Cycle) (sim.Cycle, Source) {
	ctr := &h.Ctr[core]
	la := h.lineAddr(pa)
	if l := h.L2[core].Probe(la); l != nil && l.Coherent {
		switch l.State {
		case Modified:
			h.L2[core].Lookup(pa) // refresh LRU, count hit
			ctr.L2Hits++
			return now + h.cfg.L2HitLat, SrcL2
		case Owned, Shared:
			// Upgrade: invalidate all other copies via the directory.
			h.L2[core].Lookup(pa)
			ctr.L2Hits++
			inv := h.Dir.TakeExclusive(la, core)
			h.invalidateMask(la, inv, core)
			l.State = Modified
			// One round trip to the home directory bank; the
			// acknowledgement returns on the response channel.
			ready := h.net.Send(core, h.bankEP(la), now) + h.cfg.DirLat + h.cfg.NetHopLat
			return ready, SrcL2
		}
	}
	ctr.L2Misses++
	ready, src := h.coherentFill(core, la, now, Modified)
	return ready, src
}

// coherentFill brings la into core's L2 in the requested final state
// (Shared for a read, Modified for a write), consulting the directory
// and sourcing data from the owning L2 (C2C), the L3, or memory.
func (h *Hierarchy) coherentFill(core int, la uint64, now sim.Cycle, want State) (sim.Cycle, Source) {
	ctr := &h.Ctr[core]
	bank := h.bankEP(la)
	// Request travels to the home bank where shadow tags are consulted.
	atDir := h.net.Send(core, bank, now) + h.cfg.DirLat

	var ready sim.Cycle
	var src Source
	owner := h.Dir.Owner(la)
	switch {
	case owner != NoOwner && owner != core:
		// 3-hop cache-to-cache transfer from the owning L2.
		ctr.C2CTransfers++
		atOwner := h.net.Send(bank, owner, atDir)
		ready = atOwner + h.cfg.L2HitLat + h.cfg.NetHopLat
		src = SrcC2C
		ol := h.L2[owner].Probe(la)
		if want == Modified {
			// Owner is invalidated; requester takes the only copy.
			if ol != nil {
				h.invalidateL2Line(owner, la)
			}
		} else if ol != nil && ol.State == Modified {
			// Owner downgrades M -> O and keeps supplying data.
			ol.State = Owned
		}
	case h.L3.Probe(la) != nil:
		// 2-hop L3 hit. The L3 is exclusive with the L2s: the line
		// moves out of the L3 into the requester's L2.
		ctr.L3Hits++
		l3l := h.L3.Probe(la)
		dirty := l3l.State.Dirty()
		h.L3.Invalidate(la)
		ready = atDir + h.l3AccessLat + h.cfg.NetHopLat
		src = SrcL3
		if want == Shared && dirty {
			// Preserve writeback responsibility: the requester
			// becomes the owner of the dirty line.
			want = Owned
		}
	default:
		// Off-chip memory access.
		ctr.MemAccesses++
		atMem := h.net.Send(bank, h.memEP, atDir)
		ready = h.mem.Read(atMem) + h.cfg.NetHopLat
		src = SrcMem
	}

	switch src {
	case SrcC2C:
		ctr.LatC2C += uint64(ready - now)
	case SrcL3:
		ctr.LatL3 += uint64(ready - now)
	case SrcMem:
		ctr.LatMem += uint64(ready - now)
	}

	// Update the directory.
	switch want {
	case Modified:
		inv := h.Dir.TakeExclusive(la, core)
		h.invalidateMask(la, inv, core)
	case Owned:
		h.Dir.SetOwner(la, core)
	default:
		h.Dir.AddSharer(la, core)
	}

	h.installL2(core, la, want, true)
	return ready, src
}

// installL2 inserts a line into core's private L2, handling the victim:
// coherent victims are written back or migrated to the exclusive L3,
// incoherent victims are silently dropped (a mute core never exposes
// new values outside its private hierarchy).
func (h *Hierarchy) installL2(core int, la uint64, st State, coherent bool) {
	victim, evicted := h.L2[core].Insert(la, st, coherent)
	if !evicted {
		return
	}
	// Inclusion: the L1s may not cache a line the L2 lost.
	h.L1D[core].Invalidate(victim.Addr)
	h.L1I[core].Invalidate(victim.Addr)
	if !victim.Coherent {
		return // incoherent data dies silently
	}
	h.Ctr[core].Writebacks++
	h.Dir.RemoveSharer(victim.Addr, core)
	if victim.State.Dirty() {
		h.installL3(victim.Addr, Modified)
	} else if !h.Dir.Cached(victim.Addr) {
		// Clean victim: keep it on-chip in the L3 only if no other L2
		// still holds it (preserving L2/L3 exclusion).
		h.installL3(victim.Addr, Shared)
	}
}

// installL3 inserts a line into the L3, writing a dirty L3 victim to
// memory.
func (h *Hierarchy) installL3(la uint64, st State) {
	victim, evicted := h.L3.Insert(la, st, true)
	if evicted && victim.State.Dirty() {
		h.mem.Write(0) // posted; charged only against memory bandwidth
	}
}

// invalidateMask invalidates la in every L2 whose bit is set in mask
// (except requester), maintaining L1 inclusion.
func (h *Hierarchy) invalidateMask(la uint64, mask uint32, requester int) {
	for c := 0; mask != 0; c++ {
		if mask&1 != 0 && c != requester {
			h.invalidateL2Line(c, la)
			h.Ctr[requester].Invalidations++
		}
		mask >>= 1
	}
}

func (h *Hierarchy) invalidateL2Line(core int, la uint64) {
	h.L2[core].Invalidate(la)
	h.L1D[core].Invalidate(la)
	h.L1I[core].Invalidate(la)
}

func (h *Hierarchy) fillL1(core int, l1 []*Cache, la uint64, coherent bool) {
	l1[core].Insert(la, Shared, coherent)
}

// --- incoherent (mute) request path -------------------------------------

// IncoherentLoad performs a mute core's load: it may hit incoherent or
// coherent lines in the mute's own hierarchy; on a miss the system
// makes a best-effort attempt to supply the value without changing any
// directory or cache state elsewhere.
func (h *Hierarchy) IncoherentLoad(core int, pa uint64, now sim.Cycle) (sim.Cycle, Source) {
	ctr := &h.Ctr[core]
	ctr.IncoherentLoads++
	la := h.lineAddr(pa)
	if h.L1D[core].Lookup(pa) != nil {
		ctr.L1Hits++
		return now + h.cfg.L1HitLat, SrcL1
	}
	ctr.L1Misses++
	if h.L2[core].Lookup(pa) != nil {
		ctr.L2Hits++
		h.fillL1(core, h.L1D, la, false)
		return now + h.cfg.L2HitLat, SrcL2
	}
	ctr.L2Misses++
	ready, src := h.bestEffortFill(core, la, now)
	h.fillL1(core, h.L1D, la, false)
	return ready, src
}

// IncoherentFetch is the mute instruction-fetch path.
func (h *Hierarchy) IncoherentFetch(core int, pa uint64, now sim.Cycle) (sim.Cycle, Source) {
	ctr := &h.Ctr[core]
	la := h.lineAddr(pa)
	if h.L1I[core].Lookup(pa) != nil {
		ctr.L1Hits++
		return now + h.cfg.L1HitLat, SrcL1
	}
	ctr.L1Misses++
	if h.L2[core].Lookup(pa) != nil {
		ctr.L2Hits++
		h.fillL1(core, h.L1I, la, false)
		return now + h.cfg.L2HitLat, SrcL2
	}
	ctr.L2Misses++
	ready, src := h.bestEffortFill(core, la, now)
	h.fillL1(core, h.L1I, la, false)
	return ready, src
}

// IncoherentStore performs a mute core's store: the new value stays in
// the mute's private hierarchy, marked incoherent, and is never exposed.
func (h *Hierarchy) IncoherentStore(core int, pa uint64, now sim.Cycle) (sim.Cycle, Source) {
	ctr := &h.Ctr[core]
	la := h.lineAddr(pa)
	if l := h.L2[core].Probe(la); l != nil {
		h.L2[core].Lookup(pa)
		ctr.L2Hits++
		l.State = Modified
		l.Coherent = false
		return now + h.cfg.L2HitLat, SrcL2
	}
	ctr.L2Misses++
	ready, _ := h.bestEffortFill(core, la, now)
	if l := h.L2[core].Probe(la); l != nil {
		l.State = Modified
		l.Coherent = false
	}
	return ready + h.cfg.L2HitLat, SrcL2
}

// bestEffortFill sources a line for a mute core without disturbing
// coherence state. Preference order: the owning L2 (typically the vocal
// core, which with an exclusive L3 acquired the line first, making this
// a 3-hop C2C transfer), then the L3 (the line stays in the L3), then
// memory.
func (h *Hierarchy) bestEffortFill(core int, la uint64, now sim.Cycle) (sim.Cycle, Source) {
	ctr := &h.Ctr[core]
	bank := h.bankEP(la)
	atDir := h.net.Send(core, bank, now) + h.cfg.DirLat

	owner := h.Dir.Owner(la)
	switch {
	case owner != NoOwner && owner != core:
		ctr.C2CTransfers++
		atOwner := h.net.Send(bank, owner, atDir)
		ready := atOwner + h.cfg.L2HitLat + h.cfg.NetHopLat
		h.installL2(core, la, Shared, false)
		return ready, SrcC2C
	case h.L3.Probe(la) != nil:
		// The line stays resident in the L3: a mute request must not
		// change the state of the line in any other cache.
		ctr.L3Hits++
		ready := atDir + h.l3AccessLat + h.cfg.NetHopLat
		h.installL2(core, la, Shared, false)
		return ready, SrcL3
	default:
		ctr.MemAccesses++
		atMem := h.net.Send(bank, h.memEP, atDir)
		ready := h.mem.Read(atMem) + h.cfg.NetHopLat
		h.installL2(core, la, Shared, false)
		return ready, SrcMem
	}
}

// --- flush engine --------------------------------------------------------

// FlushL2 models the Leave-DMR cache flush of a mute core in MMM-TP:
// because the cache mixes incoherent lines (normal Reunion operation)
// with coherent lines (VCPU state moved during mode switches), lines
// must be inspected one by one — FlushPerCycle lines per cycle over the
// whole array — writing back dirty coherent lines to the L3 and
// dropping incoherent ones. It returns the cycle at which the flush
// completes and the number of lines written back.
func (h *Hierarchy) FlushL2(core int, now sim.Cycle) (done sim.Cycle, writebacks int) {
	ctr := &h.Ctr[core]
	l2 := h.L2[core]
	wb := 0
	l2.Walk(func(l *Line) bool {
		ctr.FlushedLines++
		if !l.Coherent {
			// Incoherent data is invalidated, never written back.
			h.L1D[core].Invalidate(l.Addr)
			h.L1I[core].Invalidate(l.Addr)
			l.State = Invalid
			return true
		}
		if l.State.Dirty() {
			wb++
			ctr.FlushWritebacks++
			h.Dir.RemoveSharer(l.Addr, core)
			h.installL3(l.Addr, Modified)
			h.L1D[core].Invalidate(l.Addr)
			h.L1I[core].Invalidate(l.Addr)
			l.State = Invalid
		}
		return true
	})
	// Every line frame is inspected, one (FlushPerCycle) per cycle,
	// regardless of occupancy — the paper's pessimistic assumption —
	// plus one cycle per writeback to the shared L3.
	cycles := sim.Cycle(l2.NumLines()/h.cfg.FlushPerCycle) + sim.Cycle(wb)
	return now + cycles, wb
}

// InvalidateIncoherent drops every incoherent line from a core's
// private hierarchy without the line-by-line timing cost; used by tests
// and by the gang-invalidate ablation.
func (h *Hierarchy) InvalidateIncoherent(core int) int {
	n := 0
	h.L2[core].Walk(func(l *Line) bool {
		if !l.Coherent {
			h.L1D[core].Invalidate(l.Addr)
			h.L1I[core].Invalidate(l.Addr)
			l.State = Invalid
			n++
		}
		return true
	})
	return n
}
