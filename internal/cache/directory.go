package cache

// NoOwner marks a directory entry with no owning L2.
const NoOwner = -1

// dirEntry is the shadow-tag directory state for one line: which L2 (if
// any) owns it (holds it in M or O), and which L2s hold Shared copies.
// Shadow tags are co-located with the L3 banks in the target machine.
type dirEntry struct {
	owner   int8
	sharers uint32 // bitmask over cores (up to 32)
}

// Directory is the MOSI directory. It is authoritative for coherent
// requests only: mute (incoherent) requests neither consult nor modify
// it beyond a read-only probe.
type Directory struct {
	entries map[uint64]dirEntry

	Lookups uint64
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[uint64]dirEntry)}
}

// lookup fetches the entry for a line address.
func (d *Directory) lookup(la uint64) dirEntry {
	d.Lookups++
	if e, ok := d.entries[la]; ok {
		return e
	}
	return dirEntry{owner: NoOwner}
}

func (d *Directory) store(la uint64, e dirEntry) {
	if e.owner == NoOwner && e.sharers == 0 {
		delete(d.entries, la)
		return
	}
	d.entries[la] = e
}

// Owner returns the core whose L2 owns the line (M or O), or NoOwner.
func (d *Directory) Owner(la uint64) int {
	return int(d.lookup(la).owner)
}

// Sharers returns the bitmask of cores holding Shared copies.
func (d *Directory) Sharers(la uint64) uint32 {
	return d.lookup(la).sharers
}

// AddSharer records that core now holds a Shared copy.
func (d *Directory) AddSharer(la uint64, core int) {
	e := d.lookup(la)
	e.sharers |= 1 << uint(core)
	d.store(la, e)
}

// RemoveSharer records that core no longer holds a copy.
func (d *Directory) RemoveSharer(la uint64, core int) {
	e := d.lookup(la)
	e.sharers &^= 1 << uint(core)
	if e.owner == int8(core) {
		e.owner = NoOwner
	}
	d.store(la, e)
}

// SetOwner records that core's L2 now owns the line (M or O). The owner
// is also recorded as a sharer.
func (d *Directory) SetOwner(la uint64, core int) {
	e := d.lookup(la)
	e.owner = int8(core)
	e.sharers |= 1 << uint(core)
	d.store(la, e)
}

// ClearOwner demotes the line to un-owned while keeping sharers.
func (d *Directory) ClearOwner(la uint64) {
	e := d.lookup(la)
	e.owner = NoOwner
	d.store(la, e)
}

// TakeExclusive records that core now holds the only (Modified) copy,
// returning the previous sharers (excluding core) that must be
// invalidated.
func (d *Directory) TakeExclusive(la uint64, core int) (invalidate uint32) {
	e := d.lookup(la)
	invalidate = e.sharers &^ (1 << uint(core))
	if e.owner != NoOwner && e.owner != int8(core) {
		invalidate |= 1 << uint(e.owner)
	}
	d.store(la, dirEntry{owner: int8(core), sharers: 1 << uint(core)})
	return invalidate
}

// Cached reports whether any L2 holds the line.
func (d *Directory) Cached(la uint64) bool {
	e := d.lookup(la)
	return e.owner != NoOwner || e.sharers != 0
}

// Entries returns the number of tracked lines (for tests and memory
// accounting).
func (d *Directory) Entries() int { return len(d.entries) }
