// Package cache implements the full memory hierarchy of the target
// multicore: split write-through L1 instruction/data caches, a private
// L2 per core, a shared L3 that maintains exclusion with the L2s (like
// the IBM Power5 and AMD quad-core Opteron the paper cites), a MOSI
// directory protocol with shadow tags co-located with the L3 banks, a
// bandwidth-limited memory controller, and the incoherent-request path
// that Reunion's mute cores use.
package cache

// State is the MOSI coherence state of a line in a private L2.
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: a read-only copy; other caches may also hold copies.
	Shared
	// Owned: a dirty copy responsible for supplying data and for the
	// eventual writeback; other caches may hold Shared copies.
	Owned
	// Modified: the only copy, dirty.
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// Dirty reports whether a line in this state holds data newer than the
// next level.
func (s State) Dirty() bool { return s == Owned || s == Modified }

// Line is one cache line's metadata. Data values are not stored — the
// simulator is timing-directed — but the Coherent bit is real state the
// paper adds: a mute core's cache simultaneously holds incoherent lines
// (normal Reunion operation) and coherent lines (VCPU state moved
// during a mode switch), and the flush on Leave-DMR must inspect lines
// one by one to tell them apart.
type Line struct {
	Addr     uint64 // line-aligned physical address
	State    State
	Coherent bool
	lru      uint64
}

// Cache is one set-associative cache array with LRU replacement.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineSize  uint64
	lineShift uint   // log2(lineSize)
	setMask   uint64 // sets-1
	lines     []Line // sets*ways entries
	tick      uint64

	Hits   uint64
	Misses uint64
}

// NewCache builds a cache of size bytes with the given associativity
// and line size.
func NewCache(name string, size, ways, lineSize int) *Cache {
	return newCache(nil, name, size, ways, lineSize)
}

func newCache(r *Recycler, name string, size, ways, lineSize int) *Cache {
	sets := size / (ways * lineSize)
	if sets == 0 || sets&(sets-1) != 0 {
		panic("cache: set count must be a positive power of two: " + name)
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic("cache: line size must be a positive power of two: " + name)
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	return &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		lineSize:  uint64(lineSize),
		lineShift: shift,
		setMask:   uint64(sets - 1),
		lines:     r.get(sets * ways),
	}
}

// Recycler recycles the line arrays of dead cache hierarchies across
// chip constructions. Campaign workers build thousands of short-lived
// chips, and each hierarchy carries several megabytes of line metadata;
// reusing the arrays keeps that churn out of the garbage collector. A
// recycled array is zeroed before reuse, so a chip built from recycled
// arrays is indistinguishable from a freshly allocated one. A Recycler
// is single-owner state (one per campaign worker), not safe for
// concurrent use. The nil *Recycler is valid and always allocates.
type Recycler struct {
	free map[int][][]Line
}

// NewRecycler returns an empty recycler.
func NewRecycler() *Recycler {
	return &Recycler{free: make(map[int][][]Line)}
}

// get returns a zeroed line array of length n, recycled if available.
func (r *Recycler) get(n int) []Line {
	if r == nil {
		return make([]Line, n)
	}
	bucket := r.free[n]
	if len(bucket) == 0 {
		return make([]Line, n)
	}
	a := bucket[len(bucket)-1]
	r.free[n] = bucket[:len(bucket)-1]
	clear(a)
	return a
}

// put returns a line array to the recycler.
func (r *Recycler) put(a []Line) {
	if r == nil || a == nil {
		return
	}
	r.free[len(a)] = append(r.free[len(a)], a)
}

// release hands the cache's line array back to the recycler; the cache
// must not be used afterwards.
func (c *Cache) release(r *Recycler) {
	r.put(c.lines)
	c.lines = nil
}

// Name returns the cache's name (for diagnostics).
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// NumLines returns the total line capacity.
func (c *Cache) NumLines() int { return c.sets * c.ways }

// LineAddr aligns a physical address down to its line address.
func (c *Cache) LineAddr(pa uint64) uint64 { return pa &^ (c.lineSize - 1) }

func (c *Cache) setOf(lineAddr uint64) int {
	return int((lineAddr >> c.lineShift) & c.setMask)
}

// Lookup returns the line holding pa, or nil on miss. A hit refreshes
// LRU state.
func (c *Cache) Lookup(pa uint64) *Line {
	la := c.LineAddr(pa)
	set := c.setOf(la)
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.State != Invalid && l.Addr == la {
			c.tick++
			l.lru = c.tick
			c.Hits++
			return l
		}
	}
	c.Misses++
	return nil
}

// Probe is like Lookup but does not count a hit/miss or touch LRU
// state; used by the directory and by incoherent best-effort peeks.
func (c *Cache) Probe(pa uint64) *Line {
	la := c.LineAddr(pa)
	set := c.setOf(la)
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.State != Invalid && l.Addr == la {
			return l
		}
	}
	return nil
}

// Insert places a line for pa with the given state, returning the
// evicted victim (valid=true) if a valid line had to be displaced.
func (c *Cache) Insert(pa uint64, st State, coherent bool) (victim Line, evicted bool) {
	la := c.LineAddr(pa)
	set := c.setOf(la)
	base := set * c.ways
	c.tick++
	// Reuse an existing copy if present; otherwise prefer an invalid
	// way; otherwise evict the LRU line.
	invalidIdx := -1
	lruIdx := 0
	var oldest uint64 = ^uint64(0)
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.State != Invalid && l.Addr == la {
			l.State = st
			l.Coherent = coherent
			l.lru = c.tick
			return Line{}, false
		}
		if l.State == Invalid {
			if invalidIdx == -1 {
				invalidIdx = i
			}
		} else if l.lru < oldest {
			oldest = l.lru
			lruIdx = i
		}
	}
	victimIdx := invalidIdx
	if victimIdx == -1 {
		victimIdx = lruIdx
	}
	v := c.lines[base+victimIdx]
	c.lines[base+victimIdx] = Line{Addr: la, State: st, Coherent: coherent, lru: c.tick}
	if v.State != Invalid {
		return v, true
	}
	return Line{}, false
}

// Invalidate removes the line holding pa, returning its previous
// metadata if it was present.
func (c *Cache) Invalidate(pa uint64) (Line, bool) {
	la := c.LineAddr(pa)
	set := c.setOf(la)
	base := set * c.ways
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.State != Invalid && l.Addr == la {
			old := *l
			l.State = Invalid
			return old, true
		}
	}
	return Line{}, false
}

// SetState updates the state of the line holding pa if present.
func (c *Cache) SetState(pa uint64, st State) bool {
	if l := c.Probe(pa); l != nil {
		l.State = st
		return true
	}
	return false
}

// Walk calls fn for every valid line. fn may mutate the line; if fn
// returns false the walk stops. Iteration order is deterministic
// (set-major), which the Leave-DMR flush engine relies on.
func (c *Cache) Walk(fn func(l *Line) bool) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			if !fn(&c.lines[i]) {
				return
			}
		}
	}
}

// InvalidateAll clears the entire cache (used by tests and by
// gang-invalidation ablations).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i].State = Invalid
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			n++
		}
	}
	return n
}
