package cache

import (
	"testing"
	"testing/quick"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("t", 1024, 2, 64) // 8 sets x 2 ways
	if c.Lookup(0x100) != nil {
		t.Fatal("empty cache hit")
	}
	c.Insert(0x100, Shared, true)
	l := c.Lookup(0x13f) // same line
	if l == nil || l.State != Shared || !l.Coherent {
		t.Fatal("expected hit on the inserted line")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", 2*64*2, 2, 64) // 2 sets, 2 ways
	// Fill both ways of set 0 (line addresses 0, 256 both map to set 0).
	c.Insert(0, Shared, true)
	c.Insert(256, Shared, true)
	c.Lookup(0) // make line 0 MRU
	victim, evicted := c.Insert(512, Shared, true)
	if !evicted || victim.Addr != 256 {
		t.Fatalf("expected LRU victim 256, got %+v evicted=%v", victim, evicted)
	}
	if c.Probe(0) == nil || c.Probe(512) == nil {
		t.Fatal("resident lines disturbed")
	}
}

func TestCacheInsertUpdatesInPlace(t *testing.T) {
	c := NewCache("t", 1024, 2, 64)
	c.Insert(0x40, Shared, false)
	_, evicted := c.Insert(0x40, Modified, true)
	if evicted {
		t.Fatal("re-inserting the same line must not evict")
	}
	l := c.Probe(0x40)
	if l.State != Modified || !l.Coherent {
		t.Fatal("in-place update failed")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache("t", 1024, 2, 64)
	c.Insert(0x80, Owned, true)
	old, ok := c.Invalidate(0x80)
	if !ok || old.State != Owned {
		t.Fatal("invalidate did not return the old line")
	}
	if c.Probe(0x80) != nil {
		t.Fatal("line survived invalidation")
	}
	if _, ok := c.Invalidate(0x80); ok {
		t.Fatal("double invalidation reported success")
	}
}

func TestCacheWalkAndOccupancy(t *testing.T) {
	c := NewCache("t", 1024, 2, 64)
	for i := uint64(0); i < 5; i++ {
		c.Insert(i*64, Shared, i%2 == 0)
	}
	if c.Occupancy() != 5 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
	n := 0
	c.Walk(func(l *Line) bool { n++; return true })
	if n != 5 {
		t.Fatalf("walk visited %d lines", n)
	}
	c.InvalidateAll()
	if c.Occupancy() != 0 {
		t.Fatal("InvalidateAll left lines")
	}
}

// TestCacheSetBound is the structural property: a set never holds more
// than `ways` lines, and lookups always return the line inserted for
// that address.
func TestCacheSetBound(t *testing.T) {
	c := NewCache("t", 4096, 4, 64) // 16 sets x 4 ways
	err := quick.Check(func(addrs []uint16) bool {
		for _, a := range addrs {
			la := uint64(a) &^ 63
			c.Insert(la, Shared, true)
			got := c.Probe(la)
			if got == nil || got.Addr != la {
				return false
			}
		}
		// Count per set.
		counts := make(map[int]int)
		c.Walk(func(l *Line) bool {
			counts[c.setOf(l.Addr)]++
			return true
		})
		for _, n := range counts {
			if n > 4 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStateDirty(t *testing.T) {
	if Invalid.Dirty() || Shared.Dirty() {
		t.Fatal("clean states report dirty")
	}
	if !Owned.Dirty() || !Modified.Dirty() {
		t.Fatal("dirty states report clean")
	}
	for _, s := range []State{Invalid, Shared, Owned, Modified} {
		if s.String() == "?" {
			t.Fatalf("state %d unnamed", s)
		}
	}
}

func TestDirectoryOwnership(t *testing.T) {
	d := NewDirectory()
	if d.Owner(0x1000) != NoOwner {
		t.Fatal("fresh line has an owner")
	}
	d.SetOwner(0x1000, 3)
	if d.Owner(0x1000) != 3 {
		t.Fatal("owner not recorded")
	}
	if d.Sharers(0x1000)&(1<<3) == 0 {
		t.Fatal("owner must also be a sharer")
	}
	d.AddSharer(0x1000, 5)
	inv := d.TakeExclusive(0x1000, 7)
	if inv&(1<<3) == 0 || inv&(1<<5) == 0 || inv&(1<<7) != 0 {
		t.Fatalf("TakeExclusive invalidation mask wrong: %b", inv)
	}
	if d.Owner(0x1000) != 7 || d.Sharers(0x1000) != 1<<7 {
		t.Fatal("exclusive state wrong")
	}
}

func TestDirectoryRemoveSharerClearsEntry(t *testing.T) {
	d := NewDirectory()
	d.SetOwner(0x40, 2)
	d.RemoveSharer(0x40, 2)
	if d.Cached(0x40) {
		t.Fatal("line still cached after last sharer left")
	}
	if d.Entries() != 0 {
		t.Fatal("empty entries must be garbage collected")
	}
}

// TestDirectoryInvariant drives random request sequences and checks
// the MOSI single-owner invariant.
func TestDirectoryInvariant(t *testing.T) {
	d := NewDirectory()
	err := quick.Check(func(ops []struct {
		Line  uint8
		Core  uint8
		Write bool
	}) bool {
		for _, op := range ops {
			la := uint64(op.Line) * 64
			core := int(op.Core % 16)
			if op.Write {
				d.TakeExclusive(la, core)
				if d.Owner(la) != core || d.Sharers(la) != 1<<uint(core) {
					return false
				}
			} else {
				d.AddSharer(la, core)
				if d.Sharers(la)&(1<<uint(core)) == 0 {
					return false
				}
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMemoryBandwidthQueueing(t *testing.T) {
	m := &Memory{lat: 100, busyPerLine: 5}
	first := m.Read(0)
	if first != 100 {
		t.Fatalf("first read at %d, want 100", first)
	}
	second := m.Read(0) // queued behind the first
	if second != 105 {
		t.Fatalf("second read at %d, want 105", second)
	}
	// After the channel drains, latency returns to the base value.
	third := m.Read(1000)
	if third != 1100 {
		t.Fatalf("third read at %d, want 1100", third)
	}
	if m.Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", m.Stalls)
	}
}

func TestMemoryWritePosted(t *testing.T) {
	m := &Memory{lat: 100, busyPerLine: 5}
	m.Write(0)
	if got := m.Read(0); got != 105 {
		t.Fatalf("read behind posted write at %d, want 105", got)
	}
}
