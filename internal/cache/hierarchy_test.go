package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func smallCfg() *sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	return cfg
}

func TestLoadMissGoesToMemoryThenL2Hits(t *testing.T) {
	h := New(smallCfg())
	ready, src := h.Load(0, 0x10000, 100)
	if src != SrcMem {
		t.Fatalf("cold load source = %v, want Mem", src)
	}
	if ready < 100+300 {
		t.Fatalf("memory load too fast: %d", ready-100)
	}
	// Same line: L1 hit now.
	ready, src = h.Load(0, 0x10008, 1000)
	if src != SrcL1 || ready != 1000+h.cfg.L1HitLat {
		t.Fatalf("expected L1 hit, got %v at +%d", src, ready-1000)
	}
}

func TestStoreAcquiresModified(t *testing.T) {
	h := New(smallCfg())
	h.Store(1, 0x2000, 0)
	l := h.L2[1].Probe(0x2000)
	if l == nil || l.State != Modified {
		t.Fatalf("store did not leave line Modified: %+v", l)
	}
	if h.Dir.Owner(h.lineAddr(0x2000)) != 1 {
		t.Fatal("directory does not record the owner")
	}
}

func TestC2CTransferOnSharedLoad(t *testing.T) {
	h := New(smallCfg())
	h.Store(0, 0x3000, 0) // core 0 owns the line (M)
	ready, src := h.Load(1, 0x3000, 1000)
	if src != SrcC2C {
		t.Fatalf("load of a modified remote line: source %v, want C2C", src)
	}
	if ready-1000 > 120 {
		t.Fatalf("C2C latency %d looks wrong", ready-1000)
	}
	// MOSI: the old owner downgrades M -> O and keeps supplying.
	if st := h.L2[0].Probe(0x3000).State; st != Owned {
		t.Fatalf("owner state after C2C = %v, want Owned", st)
	}
	if st := h.L2[1].Probe(0x3000).State; st != Shared {
		t.Fatalf("requester state = %v, want Shared", st)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	h := New(smallCfg())
	h.Store(0, 0x4000, 0)
	h.Load(1, 0x4000, 100)
	h.Load(2, 0x4000, 200)
	// Core 3 writes: all other copies must go away.
	h.Store(3, 0x4000, 300)
	for c := 0; c < 3; c++ {
		if h.L2[c].Probe(0x4000) != nil {
			t.Fatalf("core %d retains a stale copy after remote write", c)
		}
	}
	if h.Dir.Owner(h.lineAddr(0x4000)) != 3 {
		t.Fatal("writer is not the owner")
	}
}

func TestUpgradeFromShared(t *testing.T) {
	h := New(smallCfg())
	h.Load(0, 0x5000, 0)  // core 0: S
	h.Load(1, 0x5000, 50) // core 1: S
	ready, _ := h.Store(0, 0x5000, 100)
	if h.L2[0].Probe(0x5000).State != Modified {
		t.Fatal("upgrade did not reach Modified")
	}
	if h.L2[1].Probe(0x5000) != nil {
		t.Fatal("other sharer survived the upgrade")
	}
	if ready-100 > 60 {
		t.Fatalf("upgrade latency %d looks wrong", ready-100)
	}
}

// TestExclusiveL3 verifies L2/L3 exclusion: a line moves L3 -> L2 on a
// fill and back on eviction.
func TestExclusiveL3(t *testing.T) {
	cfg := smallCfg()
	h := New(cfg)
	h.Load(0, 0x6000, 0)
	la := h.lineAddr(0x6000)
	// Force eviction of every set-0-conflicting line by filling the set.
	sets := h.L2[0].Sets()
	ways := h.L2[0].Ways()
	for i := 1; i <= ways; i++ {
		conflict := uint64(0x6000) + uint64(i*sets*cfg.LineSize)
		h.Load(0, conflict, sim.Cycle(1000*i))
	}
	if h.L2[0].Probe(la) != nil {
		t.Fatal("line should have been evicted from L2")
	}
	if h.L3.Probe(la) == nil {
		t.Fatal("clean victim did not land in the L3")
	}
	// Reload: must hit L3 and leave it (exclusion).
	_, src := h.Load(0, 0x6000, 100_000)
	if src != SrcL3 {
		t.Fatalf("reload source = %v, want L3", src)
	}
	if h.L3.Probe(la) != nil {
		t.Fatal("line stayed in L3 after moving to L2 (exclusion violated)")
	}
}

func TestIncoherentLoadDoesNotDisturbState(t *testing.T) {
	h := New(smallCfg())
	h.Store(0, 0x7000, 0) // vocal owns in M
	la := h.lineAddr(0x7000)
	_, src := h.IncoherentLoad(1, 0x7000, 100)
	if src != SrcC2C {
		t.Fatalf("mute load source = %v, want C2C from the vocal", src)
	}
	// The vocal's state and the directory must be untouched.
	if h.L2[0].Probe(la).State != Modified {
		t.Fatal("mute load changed the owner's state")
	}
	if h.Dir.Owner(la) != 0 {
		t.Fatal("mute load changed the directory")
	}
	// The mute's copy is incoherent.
	if l := h.L2[1].Probe(la); l == nil || l.Coherent {
		t.Fatal("mute should hold an incoherent copy")
	}
}

func TestIncoherentLoadLeavesL3Resident(t *testing.T) {
	cfg := smallCfg()
	h := New(cfg)
	// Put a line into L3 via eviction.
	h.Load(0, 0x8000, 0)
	sets := h.L2[0].Sets()
	for i := 1; i <= h.L2[0].Ways(); i++ {
		h.Load(0, uint64(0x8000)+uint64(i*sets*cfg.LineSize), sim.Cycle(100*i))
	}
	la := h.lineAddr(0x8000)
	if h.L3.Probe(la) == nil {
		t.Skip("victim did not reach L3; geometry changed")
	}
	_, src := h.IncoherentLoad(1, 0x8000, 10_000)
	if src != SrcL3 {
		t.Fatalf("source %v, want L3", src)
	}
	if h.L3.Probe(la) == nil {
		t.Fatal("mute L3 access must not remove the line from the L3")
	}
}

func TestIncoherentStoreStaysLocal(t *testing.T) {
	h := New(smallCfg())
	h.IncoherentStore(2, 0x9000, 0)
	la := h.lineAddr(0x9000)
	l := h.L2[2].Probe(la)
	if l == nil || l.Coherent || l.State != Modified {
		t.Fatalf("mute store result wrong: %+v", l)
	}
	if h.Dir.Cached(la) {
		t.Fatal("mute store leaked into the directory")
	}
}

func TestIncoherentVictimDiesSilently(t *testing.T) {
	cfg := smallCfg()
	h := New(cfg)
	h.IncoherentStore(1, 0xa000, 0)
	la := h.lineAddr(0xa000)
	sets := h.L2[1].Sets()
	// Evict it with coherent fills.
	for i := 1; i <= h.L2[1].Ways(); i++ {
		h.Load(1, uint64(0xa000)+uint64(i*sets*cfg.LineSize), sim.Cycle(100*i))
	}
	if h.L2[1].Probe(la) != nil {
		t.Skip("line not evicted; geometry changed")
	}
	if h.L3.Probe(la) != nil {
		t.Fatal("incoherent dirty victim was exposed to the L3")
	}
}

func TestFlushL2Semantics(t *testing.T) {
	cfg := smallCfg()
	h := New(cfg)
	// Mute core 1: one incoherent dirty line, one coherent dirty line
	// (VCPU state), one coherent clean line.
	h.IncoherentStore(1, 0xb000, 0)
	h.Store(1, 0xc000, 10)
	h.Load(1, 0xd000, 50)
	done, wbs := h.FlushL2(1, 1000)
	if wbs != 1 {
		t.Fatalf("writebacks = %d, want 1 (the coherent dirty line)", wbs)
	}
	// Inspecting all 8192 line frames at 1/cycle dominates the cost.
	minCycles := sim.Cycle(h.L2[1].NumLines() / cfg.FlushPerCycle)
	if done-1000 < minCycles {
		t.Fatalf("flush took %d cycles, want >= %d", done-1000, minCycles)
	}
	if h.L2[1].Probe(0xb000) != nil {
		t.Fatal("incoherent line survived the flush")
	}
	if h.L3.Probe(h.lineAddr(0xc000)) == nil {
		t.Fatal("coherent dirty line was not written back to the L3")
	}
	if l := h.L2[1].Probe(0xd000); l == nil {
		t.Fatal("coherent clean line should survive the flush")
	}
}

func TestInvalidateIncoherent(t *testing.T) {
	h := New(smallCfg())
	h.IncoherentStore(0, 0xe000, 0)
	h.Load(0, 0xf000, 10)
	if n := h.InvalidateIncoherent(0); n != 1 {
		t.Fatalf("dropped %d lines, want 1", n)
	}
	if h.L2[0].Probe(0xf000) == nil {
		t.Fatal("coherent line dropped")
	}
}

// TestCoherenceInvariant: under random coherent traffic, at most one
// L2 holds a line in a dirty state, and if any L2 holds it Modified no
// other L2 holds it at all.
func TestCoherenceInvariant(t *testing.T) {
	cfg := smallCfg()
	h := New(cfg)
	now := sim.Cycle(0)
	err := quick.Check(func(ops []struct {
		Core  uint8
		Line  uint8
		Write bool
	}) bool {
		for _, op := range ops {
			core := int(op.Core) % cfg.Cores
			pa := uint64(op.Line) * 64
			now += 10
			if op.Write {
				h.Store(core, pa, now)
			} else {
				h.Load(core, pa, now)
			}
			// Invariant check over all cores for this line.
			dirty, holders := 0, 0
			for c := 0; c < cfg.Cores; c++ {
				if l := h.L2[c].Probe(pa); l != nil && l.Coherent {
					holders++
					if l.State.Dirty() {
						dirty++
						if h.Dir.Owner(h.lineAddr(pa)) != c {
							return false
						}
					}
					if l.State == Modified && holders > 1 {
						return false
					}
				}
			}
			if dirty > 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSourceStrings(t *testing.T) {
	for _, s := range []Source{SrcL1, SrcL2, SrcC2C, SrcL3, SrcMem} {
		if s.String() == "?" {
			t.Fatalf("source %d unnamed", s)
		}
	}
}

func TestFetchPath(t *testing.T) {
	h := New(smallCfg())
	_, src := h.Fetch(0, 0x1000, 0)
	if src != SrcMem {
		t.Fatalf("cold fetch source %v", src)
	}
	_, src = h.Fetch(0, 0x1004, 500)
	if src != SrcL1 {
		t.Fatalf("warm fetch source %v, want L1I hit", src)
	}
}

func TestTotals(t *testing.T) {
	h := New(smallCfg())
	h.Load(0, 0x100, 0)
	h.Load(1, 0x200, 0)
	tot := h.Totals()
	if tot.MemAccesses != 2 {
		t.Fatalf("totals wrong: %+v", tot)
	}
}
