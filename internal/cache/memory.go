package cache

import "repro/internal/sim"

// Memory models the off-chip DRAM: a fixed load-to-use latency plus a
// bandwidth constraint (40 GB/s at 3 GHz = ~13.3 bytes per cycle, so a
// 64-byte line occupies the channel for ~4.8 cycles). Requests that
// arrive while the channel is busy queue behind it.
type Memory struct {
	lat         sim.Cycle
	busyPerLine sim.Cycle
	nextFree    sim.Cycle

	Reads  uint64
	Writes uint64
	Stalls uint64
}

// NewMemory builds the memory model from the chip configuration.
func NewMemory(cfg *sim.Config) *Memory {
	per := sim.Cycle(float64(cfg.LineSize) / cfg.MemBWBytesPerCycle)
	if per == 0 {
		per = 1
	}
	return &Memory{lat: cfg.MemLat, busyPerLine: per}
}

// Read models a demand line fill issued at now; it returns the cycle at
// which the data is usable.
func (m *Memory) Read(now sim.Cycle) sim.Cycle {
	m.Reads++
	start := now
	if m.nextFree > start {
		start = m.nextFree
		m.Stalls++
	}
	m.nextFree = start + m.busyPerLine
	return start + m.lat
}

// Write models a posted writeback issued at now. It consumes channel
// bandwidth but the writer does not wait for completion.
func (m *Memory) Write(now sim.Cycle) {
	m.Writes++
	start := now
	if m.nextFree > start {
		start = m.nextFree
	}
	m.nextFree = start + m.busyPerLine
}
