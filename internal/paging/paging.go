// Package paging models the virtual-memory substrate the MMM design
// depends on: per-guest address spaces with 8 KB pages, a
// hardware-filled TLB (as the paper assumes, to avoid over-inflating
// serializing-instruction counts), and the physical-memory ownership
// map that the system software encodes into the Protection Assistance
// Table.
package paging

import "fmt"

// Domain identifies who owns a physical page. The PAT distinguishes
// only "reliable-only" from "accessible in performance mode", but the
// simulator tracks the precise owner so that fault-injection tests can
// verify that no performance-mode store ever lands on another
// component's memory.
type Domain uint8

const (
	// DomainSystem is the VMM/hypervisor (or the OS in a single-OS
	// system): always reliable-only.
	DomainSystem Domain = iota
	// DomainReliable is a guest (or application) that requires DMR.
	DomainReliable
	// DomainPerformance is a guest (or application) that runs in
	// high-performance (non-DMR) mode.
	DomainPerformance
	// DomainScratchpad is the reserved physical region used by the
	// mode-transition state machine to stage VCPU state.
	DomainScratchpad
)

// String names the domain.
func (d Domain) String() string {
	switch d {
	case DomainSystem:
		return "system"
	case DomainReliable:
		return "reliable"
	case DomainPerformance:
		return "performance"
	case DomainScratchpad:
		return "scratchpad"
	default:
		return "?"
	}
}

// PhysMap records, for every physical page, which domain owns it. The
// system software derives the PAT from this map: a page is marked
// reliable-only unless it is owned by a performance domain.
type PhysMap struct {
	pageShift uint
	owner     []Domain
	guest     []int32 // guest id per page, -1 if none
	nextFree  uint64  // simple bump allocator, in pages
}

// NewPhysMap creates an ownership map covering memBytes of physical
// memory with the given page size.
func NewPhysMap(memBytes uint64, pageBytes int) *PhysMap {
	shift := uint(0)
	for 1<<shift != pageBytes {
		shift++
		if shift > 30 {
			panic("paging: page size is not a power of two")
		}
	}
	pages := memBytes >> shift
	m := &PhysMap{
		pageShift: shift,
		owner:     make([]Domain, pages),
		guest:     make([]int32, pages),
	}
	for i := range m.guest {
		m.guest[i] = -1
	}
	return m
}

// PageShift returns log2(page size).
func (m *PhysMap) PageShift() uint { return m.pageShift }

// Pages returns the number of physical pages.
func (m *PhysMap) Pages() uint64 { return uint64(len(m.owner)) }

// Allocated returns the bump allocator's high-water mark: every page at
// or above it is free (and therefore reliable-only). PAT construction
// uses it to avoid inspecting the millions of untouched pages of a
// mostly empty physical memory.
func (m *PhysMap) Allocated() uint64 { return m.nextFree }

// Alloc reserves n physical pages for the given domain and guest,
// returning the first physical page number. Allocation is a
// deterministic bump pointer so traces are reproducible.
func (m *PhysMap) Alloc(n uint64, d Domain, guest int) uint64 {
	if m.nextFree+n > m.Pages() {
		panic(fmt.Sprintf("paging: out of physical memory (%d pages requested, %d free)",
			n, m.Pages()-m.nextFree))
	}
	first := m.nextFree
	for i := uint64(0); i < n; i++ {
		m.owner[first+i] = d
		m.guest[first+i] = int32(guest)
	}
	m.nextFree += n
	return first
}

// SetOwner reassigns one physical page (used when the system software
// remaps pages, which must also update the PAT).
func (m *PhysMap) SetOwner(ppage uint64, d Domain, guest int) {
	m.owner[ppage] = d
	m.guest[ppage] = int32(guest)
}

// Owner returns the owning domain of a physical page.
func (m *PhysMap) Owner(ppage uint64) Domain { return m.owner[ppage] }

// Guest returns the guest id owning a physical page, or -1.
func (m *PhysMap) Guest(ppage uint64) int { return int(m.guest[ppage]) }

// OwnerOfAddr returns the owning domain of a physical address.
func (m *PhysMap) OwnerOfAddr(pa uint64) Domain {
	return m.owner[pa>>m.pageShift]
}

// ReliableOnly reports whether the PAT bit for this physical page
// should be 1: the page may only be written by software executing in
// reliable mode.
func (m *PhysMap) ReliableOnly(ppage uint64) bool {
	switch m.owner[ppage] {
	case DomainPerformance:
		return false
	default:
		return true
	}
}
