package paging

// Space is one virtual address space (an OS process or a guest VM's
// pseudo-physical space). Virtual pages map lazily to physical pages
// drawn from the owning domain's allocation; the mapping is
// deterministic so that the vocal and mute cores of a DMR pair, and
// repeated runs with the same seed, observe identical translations.
type Space struct {
	ASID   int
	Domain Domain
	Guest  int

	phys *PhysMap

	// Regions pre-allocate physical backing so that footprints are
	// contiguous and allocation order cannot depend on access order.
	// Translation walks the region list (at most a handful of entries)
	// and indexes the region's per-page table — cheaper to build and to
	// query than a hash map over every mapped page, which is what chip
	// construction cost was dominated by.
	regions []Region
}

// Region is a contiguous range of virtual pages backed by a contiguous
// physical allocation. ppages holds the current per-page mapping
// (initially PBase+i; Remap rewrites individual entries), owned by this
// region — MapShared copies it so a remap in one space never changes a
// translation in another, exactly like the per-space page tables it
// replaced.
type Region struct {
	Name  string
	VBase uint64 // first virtual page
	Pages uint64
	PBase uint64 // first physical page

	ppages []uint64
}

// NewSpace creates an address space in the given domain.
func NewSpace(asid int, d Domain, guest int, phys *PhysMap) *Space {
	return &Space{
		ASID:   asid,
		Domain: d,
		Guest:  guest,
		phys:   phys,
	}
}

// MapRegion allocates pages physical pages for the virtual range
// starting at virtual address vbase and installs the translations.
// It returns the region descriptor.
func (s *Space) MapRegion(name string, vbase uint64, pages uint64) Region {
	vpage := vbase >> s.phys.pageShift
	pbase := s.phys.Alloc(pages, s.Domain, s.Guest)
	ppages := make([]uint64, pages)
	for i := uint64(0); i < pages; i++ {
		ppages[i] = pbase + i
	}
	r := Region{Name: name, VBase: vpage, Pages: pages, PBase: pbase, ppages: ppages}
	s.regions = append(s.regions, r)
	return r
}

// MapShared installs translations in this space pointing at an existing
// region's physical pages (used for memory shared between the VCPUs of
// one guest: OS text/data, shared heaps). The page table is copied:
// later remaps stay private to each space.
func (s *Space) MapShared(name string, vbase uint64, r Region) Region {
	vpage := vbase >> s.phys.pageShift
	ppages := make([]uint64, r.Pages)
	copy(ppages, r.ppages)
	nr := Region{Name: name, VBase: vpage, Pages: r.Pages, PBase: r.PBase, ppages: ppages}
	s.regions = append(s.regions, nr)
	return nr
}

// lookup resolves a virtual page through the region list.
func (s *Space) lookup(vpage uint64) (uint64, bool) {
	for i := range s.regions {
		r := &s.regions[i]
		if off := vpage - r.VBase; off < r.Pages {
			return r.ppages[off], true
		}
	}
	return 0, false
}

// Translate maps a virtual address to a physical address. ok is false
// for unmapped addresses (a page fault in a real system).
func (s *Space) Translate(va uint64) (pa uint64, ok bool) {
	ppage, ok := s.lookup(va >> s.phys.pageShift)
	if !ok {
		return 0, false
	}
	off := va & ((1 << s.phys.pageShift) - 1)
	return ppage<<s.phys.pageShift | off, true
}

// Remap moves one virtual page onto a fresh physical page, returning
// the old and new physical page numbers. The system software performs
// this during paging activity; every remap requires a TLB demap and a
// PAT update, exercising the PAB coherence path.
func (s *Space) Remap(va uint64) (oldP, newP uint64, ok bool) {
	vpage := va >> s.phys.pageShift
	for i := range s.regions {
		r := &s.regions[i]
		if off := vpage - r.VBase; off < r.Pages {
			oldP = r.ppages[off]
			newP = s.phys.Alloc(1, s.Domain, s.Guest)
			r.ppages[off] = newP
			return oldP, newP, true
		}
	}
	return 0, 0, false
}

// Regions returns the mapped regions.
func (s *Space) Regions() []Region { return s.regions }

// PageBytes returns the page size in bytes.
func (s *Space) PageBytes() uint64 { return 1 << s.phys.pageShift }
