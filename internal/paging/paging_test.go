package paging

import (
	"testing"
	"testing/quick"
)

func newTestMap() *PhysMap {
	return NewPhysMap(64<<20, 8192) // 64 MB, 8 KB pages
}

func TestAllocAssignsOwnership(t *testing.T) {
	pm := newTestMap()
	p := pm.Alloc(4, DomainReliable, 1)
	for i := uint64(0); i < 4; i++ {
		if pm.Owner(p+i) != DomainReliable || pm.Guest(p+i) != 1 {
			t.Fatalf("page %d has wrong ownership", p+i)
		}
		if !pm.ReliableOnly(p + i) {
			t.Fatal("reliable-domain page must be reliable-only")
		}
	}
	q := pm.Alloc(2, DomainPerformance, 2)
	if q < p+4 {
		t.Fatal("allocations overlap")
	}
	if pm.ReliableOnly(q) {
		t.Fatal("performance page must be writable in performance mode")
	}
}

func TestOwnerOfAddr(t *testing.T) {
	pm := newTestMap()
	p := pm.Alloc(1, DomainScratchpad, -1)
	addr := p<<pm.PageShift() | 0x123
	if pm.OwnerOfAddr(addr) != DomainScratchpad {
		t.Fatal("OwnerOfAddr does not match page owner")
	}
}

func TestDomainStrings(t *testing.T) {
	for _, d := range []Domain{DomainSystem, DomainReliable, DomainPerformance, DomainScratchpad} {
		if d.String() == "?" {
			t.Fatalf("domain %d has no name", d)
		}
	}
}

func TestSpaceTranslate(t *testing.T) {
	pm := newTestMap()
	s := NewSpace(1, DomainPerformance, 0, pm)
	r := s.MapRegion("data", 0x10000000, 8)
	pa, ok := s.Translate(0x10000000 + 8192 + 100)
	if !ok {
		t.Fatal("mapped address did not translate")
	}
	wantPage := r.PBase + 1
	if pa>>pm.PageShift() != wantPage || pa&8191 != 100 {
		t.Fatalf("pa = %#x, want page %d offset 100", pa, wantPage)
	}
	if _, ok := s.Translate(0x99990000); ok {
		t.Fatal("unmapped address translated")
	}
}

func TestMapSharedAliases(t *testing.T) {
	pm := newTestMap()
	a := NewSpace(1, DomainPerformance, 0, pm)
	b := NewSpace(2, DomainPerformance, 0, pm)
	r := a.MapRegion("shared", 0x3000_0000, 4)
	b.MapShared("shared", 0x3000_0000, r)
	pa1, _ := a.Translate(0x3000_0000 + 4096)
	pa2, _ := b.Translate(0x3000_0000 + 4096)
	if pa1 != pa2 {
		t.Fatalf("shared mapping differs: %#x vs %#x", pa1, pa2)
	}
}

func TestRemapMovesPage(t *testing.T) {
	pm := newTestMap()
	s := NewSpace(1, DomainPerformance, 0, pm)
	s.MapRegion("data", 0, 2)
	oldPA, _ := s.Translate(8192)
	oldP, newP, ok := s.Remap(8192)
	if !ok {
		t.Fatal("remap failed")
	}
	if oldP != oldPA>>pm.PageShift() {
		t.Fatal("wrong old page reported")
	}
	newPA, _ := s.Translate(8192)
	if newPA>>pm.PageShift() != newP || newP == oldP {
		t.Fatal("translation does not point at the new page")
	}
}

func TestTLBHitAfterFill(t *testing.T) {
	pm := newTestMap()
	s := NewSpace(1, DomainPerformance, 0, pm)
	s.MapRegion("data", 0, 4)
	tlb := NewTLB(64)
	_, hit, ok := tlb.Lookup(s, 100)
	if !ok || hit {
		t.Fatal("first access should be a miss that fills")
	}
	_, hit, ok = tlb.Lookup(s, 200)
	if !ok || !hit {
		t.Fatal("second access to the same page should hit")
	}
	if tlb.Misses != 1 {
		t.Fatalf("misses = %d, want 1", tlb.Misses)
	}
}

func TestTLBASIDIsolation(t *testing.T) {
	pm := newTestMap()
	a := NewSpace(1, DomainPerformance, 0, pm)
	b := NewSpace(2, DomainPerformance, 0, pm)
	a.MapRegion("d", 0, 1)
	b.MapRegion("d", 0, 1)
	tlb := NewTLB(64)
	paA, _, _ := tlb.Lookup(a, 0)
	paB, _, _ := tlb.Lookup(b, 0)
	if paA == paB {
		t.Fatal("different address spaces map to the same frame")
	}
	// Re-lookups must return the same translations (no ASID mixing).
	paA2, hit, _ := tlb.Lookup(a, 0)
	if !hit || paA2 != paA {
		t.Fatal("ASID confusion on re-lookup")
	}
}

func TestTLBDemapNotifies(t *testing.T) {
	pm := newTestMap()
	s := NewSpace(1, DomainPerformance, 0, pm)
	s.MapRegion("d", 0, 2)
	tlb := NewTLB(64)
	var demapped []uint64
	tlb.OnDemap(func(p uint64) { demapped = append(demapped, p) })
	pa, _, _ := tlb.Lookup(s, 8192)
	tlb.Demap(1, 1)
	if len(demapped) != 1 || demapped[0] != pa>>pm.PageShift() {
		t.Fatalf("demap notification wrong: %v", demapped)
	}
	if _, hit, _ := tlb.Lookup(s, 8192); hit {
		t.Fatal("translation survived demap")
	}
}

func TestTLBCorruptEntry(t *testing.T) {
	pm := newTestMap()
	s := NewSpace(1, DomainPerformance, 0, pm)
	s.MapRegion("d", 0, 1)
	tlb := NewTLB(64)
	good, _, _ := tlb.Lookup(s, 0)
	if !tlb.CorruptEntry(1, 0, 3) {
		t.Fatal("corruption target not found")
	}
	bad, hit, _ := tlb.Lookup(s, 0)
	if !hit {
		t.Fatal("corrupted entry should still hit")
	}
	if bad == good {
		t.Fatal("corruption had no effect")
	}
	if bad>>pm.PageShift() != (good>>pm.PageShift())^8 {
		t.Fatalf("wrong bit flipped: %#x vs %#x", bad, good)
	}
}

// TestTLBEvictionConsistency: whatever the access pattern, a hit must
// return the page-table translation (never a stale or mixed frame).
func TestTLBEvictionConsistency(t *testing.T) {
	pm := NewPhysMap(512<<20, 8192)
	s := NewSpace(3, DomainPerformance, 0, pm)
	s.MapRegion("d", 0, 4096)
	tlb := NewTLB(16)
	err := quick.Check(func(pages []uint16) bool {
		for _, pRaw := range pages {
			va := uint64(pRaw%4096) * 8192
			pa, _, ok := tlb.Lookup(s, va)
			if !ok {
				return false
			}
			want, _ := s.Translate(va)
			if pa != want {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDemapAll(t *testing.T) {
	pm := newTestMap()
	s := NewSpace(1, DomainPerformance, 0, pm)
	s.MapRegion("d", 0, 8)
	tlb := NewTLB(64)
	for i := uint64(0); i < 8; i++ {
		tlb.Lookup(s, i*8192)
	}
	tlb.DemapAll(1)
	if tlb.Demaps != 8 {
		t.Fatalf("demapped %d entries, want 8", tlb.Demaps)
	}
}

func TestTLBCorruptUseReportedOnce(t *testing.T) {
	pm := newTestMap()
	s := NewSpace(1, DomainPerformance, 0, pm)
	s.MapRegion("d", 0, 1)
	tlb := NewTLB(64)
	var uses int
	tlb.OnCorruptUse(func(vpage, ppage uint64) { uses++ })
	tlb.Lookup(s, 0)
	if !tlb.CorruptEntry(1, 0, 3) {
		t.Fatal("corruption target not found")
	}
	if uses != 0 {
		t.Fatal("corrupt-use fired before any use")
	}
	tlb.Lookup(s, 0)
	tlb.Lookup(s, 0)
	tlb.Lookup(s, 0)
	if uses != 1 {
		t.Fatalf("corrupt-use fired %d times, want exactly once", uses)
	}
}

func TestTLBFlushClearsEverything(t *testing.T) {
	pm := newTestMap()
	s := NewSpace(1, DomainPerformance, 0, pm)
	s.MapRegion("d", 0, 2)
	tlb := NewTLB(64)
	var demapped int
	tlb.OnDemap(func(uint64) { demapped++ })
	good, _, _ := tlb.Lookup(s, 0)
	tlb.CorruptEntry(1, 0, 3)
	tlb.Flush()
	// No demap notifications: the page tables did not change.
	if demapped != 0 {
		t.Fatalf("flush fired %d demap notifications", demapped)
	}
	pa, hit, ok := tlb.Lookup(s, 0)
	if hit {
		t.Fatal("entry survived the flush")
	}
	if !ok || pa != good {
		t.Fatalf("refill after flush returned %#x, want the correct %#x", pa, good)
	}
}
