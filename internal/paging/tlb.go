package paging

// TLBEntry is one translation cached by the hardware TLB.
type TLBEntry struct {
	valid bool
	asid  int
	vpage uint64
	ppage uint64
	lru   uint64
	// corrupt marks an entry whose physical page was flipped by fault
	// injection and whose first use has not yet been reported. The flag
	// is instrumentation only — the flipped ppage itself is the fault.
	corrupt bool
}

// TLB is a set-associative, hardware-filled translation lookaside
// buffer. The paper models a hardware-filled TLB (like Reunion's
// evaluation) so that TLB refills do not serialize the pipeline; a
// miss costs a fixed fill latency instead of trapping to software.
//
// The TLB is also a fault-injection target: a flipped bit in the
// physical page number models the class of faults the PAB exists to
// catch — a successful translation to a physical address the
// application does not own.
type TLB struct {
	sets    int
	ways    int
	setMask uint64
	entries []TLBEntry
	// keys packs each way's (valid, asid, vpage) into one comparable
	// word — (asid+1)<<48 | vpage, 0 when invalid — so the lookup fast
	// path compares one flat uint64 per way instead of three entry
	// fields scattered across a 48-byte struct. Kept in sync with
	// entries by every mutation.
	keys []uint64
	tick uint64

	Lookups uint64
	Misses  uint64
	Demaps  uint64

	// demapListener is notified with the demapped physical page so the
	// PAB can invalidate its corresponding entry (the PAB coherence
	// rule of Section 3.4.1).
	demapListener func(ppage uint64)

	// corruptListener is notified (once per injected corruption) when a
	// translation corrupted by fault injection is actually consumed by
	// the pipeline; reliability evaluation uses it to distinguish faults
	// that propagated from faults that vanished in the array.
	corruptListener func(vpage, ppage uint64)
}

// NewTLB creates a TLB with n entries, 4-way set associative (n must
// be a multiple of 4 with a power-of-two set count).
func NewTLB(n int) *TLB {
	ways := 4
	if n < ways {
		ways = n
	}
	sets := n / ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic("paging: TLB set count must be a positive power of two")
	}
	return &TLB{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		entries: make([]TLBEntry, n),
		keys:    make([]uint64, n),
	}
}

// OnDemap registers fn to be called with the physical page of every
// demapped translation.
func (t *TLB) OnDemap(fn func(ppage uint64)) { t.demapListener = fn }

// OnCorruptUse registers fn to be called the first time a corrupted
// translation is consumed by a lookup.
func (t *TLB) OnCorruptUse(fn func(vpage, ppage uint64)) { t.corruptListener = fn }

func key(asid int, vpage uint64) uint64 {
	return (uint64(asid)+1)<<48 | vpage
}

func (t *TLB) setOf(asid int, vpage uint64) int {
	return int((vpage ^ uint64(asid)*0x9e37) & t.setMask)
}

// Lookup translates va in the given space. hit is false when the
// translation had to be filled from the page table (costing the fill
// latency); ok is false when the address is unmapped.
func (t *TLB) Lookup(s *Space, va uint64) (pa uint64, hit, ok bool) {
	t.tick++
	t.Lookups++
	vpage := va >> s.phys.pageShift
	off := va & (s.PageBytes() - 1)
	k := key(s.ASID, vpage)
	base := t.setOf(s.ASID, vpage) * t.ways
	for i := 0; i < t.ways; i++ {
		if t.keys[base+i] != k {
			continue
		}
		e := &t.entries[base+i]
		e.lru = t.tick
		if e.corrupt {
			e.corrupt = false
			if t.corruptListener != nil {
				t.corruptListener(e.vpage, e.ppage)
			}
		}
		return e.ppage<<s.phys.pageShift | off, true, true
	}
	// Hardware fill from the page table.
	ppage, found := s.lookup(vpage)
	if !found {
		return 0, false, false
	}
	t.Misses++
	t.insert(s.ASID, vpage, ppage)
	return ppage<<s.phys.pageShift | off, false, true
}

// insert places a translation, evicting the set's LRU entry.
func (t *TLB) insert(asid int, vpage, ppage uint64) {
	base := t.setOf(asid, vpage) * t.ways
	victim := base
	var oldest uint64 = ^uint64(0)
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if !e.valid {
			victim = base + i
			break
		}
		if e.lru < oldest {
			oldest = e.lru
			victim = base + i
		}
	}
	t.entries[victim] = TLBEntry{valid: true, asid: asid, vpage: vpage, ppage: ppage, lru: t.tick}
	t.keys[victim] = key(asid, vpage)
}

// Demap removes any translation for (asid, vpage) and notifies the
// demap listener with the physical page so dependent structures (the
// PAB) stay coherent.
func (t *TLB) Demap(asid int, vpage uint64) {
	base := t.setOf(asid, vpage) * t.ways
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.asid == asid && e.vpage == vpage {
			e.valid = false
			t.keys[base+i] = 0
			t.Demaps++
			if t.demapListener != nil {
				t.demapListener(e.ppage)
			}
		}
	}
}

// DemapAll invalidates every entry for an address space.
func (t *TLB) DemapAll(asid int) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asid == asid {
			e.valid = false
			t.keys[i] = 0
			t.Demaps++
			if t.demapListener != nil {
				t.demapListener(e.ppage)
			}
		}
	}
}

// CorruptEntry flips bit in the physical page number of the entry
// currently caching (asid, vpage), modeling a hardware fault in the
// TLB array. It reports whether an entry was present to corrupt.
func (t *TLB) CorruptEntry(asid int, vpage uint64, bit uint) bool {
	base := t.setOf(asid, vpage) * t.ways
	for i := 0; i < t.ways; i++ {
		e := &t.entries[base+i]
		if e.valid && e.asid == asid && e.vpage == vpage {
			e.ppage ^= 1 << bit
			e.corrupt = true
			return true
		}
	}
	return false
}

// Flush invalidates every entry — the software TLB shootdown a
// machine-check handler performs after an unrecoverable translation
// fault. No demap notifications fire: the page tables did not change,
// so PAB contents remain coherent.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
		t.entries[i].corrupt = false
		t.keys[i] = 0
	}
}

// Entries returns the number of TLB entries.
func (t *TLB) Entries() int { return len(t.entries) }
