package interconnect

import "testing"

func TestSendLatency(t *testing.T) {
	n := NewNetwork(4, 10, 4)
	if got := n.Send(0, 1, 100); got != 110 {
		t.Fatalf("arrival %d, want 110", got)
	}
}

func TestPortContentionQueues(t *testing.T) {
	n := NewNetwork(4, 10, 4)
	first := n.Send(0, 1, 100)
	second := n.Send(2, 1, 100) // same destination, same cycle
	if second <= first {
		t.Fatalf("contended message not delayed: %d vs %d", second, first)
	}
	if second != 114 {
		t.Fatalf("second arrival %d, want 114 (4-cycle port occupancy)", second)
	}
	if n.Queued == 0 && second > first {
		t.Log("note: queueing tracked at source ports only")
	}
}

func TestPortsDrain(t *testing.T) {
	n := NewNetwork(2, 10, 4)
	n.Send(0, 1, 0)
	// Long after the burst, latency returns to one hop.
	if got := n.Send(0, 1, 1000); got != 1010 {
		t.Fatalf("arrival %d, want 1010", got)
	}
}

func TestMessagesCounted(t *testing.T) {
	n := NewNetwork(2, 10, 4)
	for i := 0; i < 5; i++ {
		n.Send(0, 1, uint64(i*100))
	}
	if n.Messages != 5 {
		t.Fatalf("messages = %d", n.Messages)
	}
}

func TestFingerprintLink(t *testing.T) {
	l := NewFingerprintLink(10)
	if got := l.Deliver(50); got != 60 {
		t.Fatalf("delivery at %d, want 60", got)
	}
	if l.Latency() != 10 || l.Sent != 1 {
		t.Fatalf("link state wrong: lat=%d sent=%d", l.Latency(), l.Sent)
	}
}
