// Package interconnect models the on-chip networks of the target
// multicore: the point-to-point data/coherence network with an average
// 10-cycle latency, and the dedicated fingerprint network (also
// 10 cycles) that Reunion pairs use to exchange check-stage
// fingerprints without perturbing the coherence traffic.
package interconnect

import "repro/internal/sim"

// Network is the point-to-point coherence/data interconnect. Latency is
// the paper's average hop latency; congestion is modeled by per-endpoint
// occupancy: each message holds its source and destination ports for a
// configurable number of cycles, so bursts queue up rather than
// teleport.
type Network struct {
	hopLat   sim.Cycle
	portBusy sim.Cycle
	ports    []sim.Cycle // next free cycle per endpoint

	Messages uint64
	Queued   uint64
}

// NewNetwork creates a network with endpoints numbered [0, endpoints).
// Endpoint numbering is up to the caller (cores, L3 banks, memory
// controllers).
func NewNetwork(endpoints int, hopLat, portBusy sim.Cycle) *Network {
	return &Network{
		hopLat:   hopLat,
		portBusy: portBusy,
		ports:    make([]sim.Cycle, endpoints),
	}
}

// HopLat returns the configured single-hop latency.
func (n *Network) HopLat() sim.Cycle { return n.hopLat }

// Send models one message from src to dst injected at cycle now and
// returns its arrival cycle. Port contention at both endpoints delays
// injection.
func (n *Network) Send(src, dst int, now sim.Cycle) sim.Cycle {
	n.Messages++
	start := now
	if n.ports[src] > start {
		start = n.ports[src]
		n.Queued++
	}
	if n.ports[dst] > start {
		start = n.ports[dst]
	}
	n.ports[src] = start + n.portBusy
	n.ports[dst] = start + n.portBusy
	return start + n.hopLat
}

// FingerprintLink is the dedicated fingerprint network between the two
// cores of a Reunion pair. It is private to the pair, so there is no
// port contention with coherence traffic; a fingerprint sent at cycle t
// is visible to the partner at t + latency.
type FingerprintLink struct {
	lat sim.Cycle

	Sent uint64
}

// NewFingerprintLink creates a link with the given one-way latency.
func NewFingerprintLink(lat sim.Cycle) *FingerprintLink {
	return &FingerprintLink{lat: lat}
}

// Deliver returns the cycle at which a fingerprint sent at cycle now is
// visible at the other core.
func (l *FingerprintLink) Deliver(now sim.Cycle) sim.Cycle {
	l.Sent++
	return now + l.lat
}

// Latency returns the one-way link latency.
func (l *FingerprintLink) Latency() sim.Cycle { return l.lat }
