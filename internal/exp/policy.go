package exp

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/mode"
	"repro/internal/stats"
)

// PolicyRow summarizes the mode-policy design study for one (policy,
// fault condition) cell of the "policy" campaign, merged across
// workloads: the consolidated mixed-mode server (MMM-IPC roster)
// under a dynamic coupling policy, normalized to the static default.
type PolicyRow struct {
	Policy  string
	Variant string // "clean" (fault-free) or "faulty" (injection on)
	// PerfIPC / RelIPC are the performance and reliable guests'
	// per-thread user IPC, normalized per workload to the static
	// policy under the same fault condition.
	PerfIPC *stats.Sample
	RelIPC  *stats.Sample
	// Switches is the number of mode transitions (enter + leave) per
	// million cycles — the cost side of a dynamic policy.
	Switches *stats.Sample
	// Mismatches / MachineChecks count the protection activity the
	// policy's coupling choices exposed (faulty cells only; clean runs
	// report zero).
	Mismatches    *stats.Sample
	MachineChecks *stats.Sample
}

// policyAxis returns the swept policies: the configured subset, or
// static plus every registered dynamic policy.
func (c Config) policyAxis() []string {
	if len(c.Policies) > 0 {
		return c.Policies
	}
	return append([]string{""}, mode.Dynamic()...)
}

// PolicyStudy runs the registered "policy" campaign and reports each
// dynamic policy against the static baseline: what per-thread
// performance the guests gain or lose when coupling becomes a runtime
// decision, how many transitions the policy pays for it, and — under
// fault injection — how much protection activity its coupling windows
// still catch. Cells are normalized per workload, then merged.
func PolicyStudy(c Config) ([]PolicyRow, error) {
	// Canonicalize the axis up front: result keys carry the canonical
	// policy names the campaign layer normalizes to ("static" folds
	// into the "" default cell).
	axis := make([]string, 0, len(c.policyAxis()))
	for _, pol := range c.policyAxis() {
		if pol != "" {
			canon, err := mode.Parse(pol)
			if err != nil {
				return nil, err
			}
			pol = canon
			if pol == "static" {
				pol = ""
			}
		}
		axis = append(axis, pol)
	}
	// The static baseline is always swept: every row normalizes to it.
	hasBase := false
	for _, pol := range axis {
		hasBase = hasBase || pol == ""
	}
	if !hasBase {
		axis = append([]string{""}, axis...)
	}
	c.Policies = axis
	spec, err := campaign.Named("policy", c.workloads(), c.Seeds)
	if err != nil {
		return nil, err
	}
	spec.Policies = axis
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	res, err := c.runAll(jobs)
	if err != nil {
		return nil, err
	}
	polKey := func(wl, variant, pol string) string {
		return campaign.Job{
			Workload: wl, Kind: core.KindMMMIPC, Variant: variant,
			Knobs: campaign.Knobs{Policy: pol},
		}.Key()
	}
	// The fault-free cells carry no variant label (they are figure6's
	// cells); the report labels them "clean".
	variantLabel := map[string]string{"": "clean", "faulty": "faulty"}
	var rows []PolicyRow
	for _, pol := range c.policyAxis() {
		if pol == "" || pol == "static" {
			continue // the baseline every other row is normalized to
		}
		for _, variant := range []string{"", "faulty"} {
			row := PolicyRow{
				Policy: pol, Variant: variantLabel[variant],
				PerfIPC: &stats.Sample{}, RelIPC: &stats.Sample{},
				Switches: &stats.Sample{}, Mismatches: &stats.Sample{}, MachineChecks: &stats.Sample{},
			}
			for _, wl := range c.workloads() {
				base := res[polKey(wl, variant, "")]
				ms := res[polKey(wl, variant, pol)]
				basePerf := sampleOf(base, func(m *core.Metrics) float64 { return m.UserIPC("perf") }).Mean()
				baseRel := sampleOf(base, func(m *core.Metrics) float64 { return m.UserIPC("reliable") }).Mean()
				for i := range ms {
					m := &ms[i]
					row.PerfIPC.Add(stats.Ratio(m.UserIPC("perf"), basePerf))
					row.RelIPC.Add(stats.Ratio(m.UserIPC("reliable"), baseRel))
					row.Switches.Add(float64(m.EnterN+m.LeaveN) / float64(m.Cycles) * 1e6)
					row.Mismatches.Add(float64(m.Mismatches))
					row.MachineChecks.Add(float64(m.MachineChecks))
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PolicyTable renders the mode-policy study.
func PolicyTable(rows []PolicyRow) *stats.Table {
	t := &stats.Table{
		Title: "Mode policies: dynamic DMR coupling on the consolidated server (MMM-IPC), vs static",
		Columns: []string{
			"policy", "faults", "perf IPC (vs static)", "rel IPC (vs static)",
			"switches/Mcyc", "FP detections", "machine checks",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Policy, r.Variant,
			fmtRatio(r.PerfIPC), fmtRatio(r.RelIPC),
			fmt.Sprintf("%.1f", r.Switches.Mean()),
			fmt.Sprintf("%.0f", r.Mismatches.Mean()),
			fmt.Sprintf("%.0f", r.MachineChecks.Mean()))
	}
	return t
}
