package exp

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Fig6Row is one workload's Figure 6 data for the mixed-mode
// consolidated server: per-thread user IPC and throughput of the
// reliable and performance guest VMs under DMR-base, MMM-IPC and
// MMM-TP, normalized to DMR-base.
type Fig6Row struct {
	Workload string

	// Figure 6(a): per-thread user IPC, normalized to the DMR-base
	// value of the same guest.
	IPCPerfIPC *stats.Sample // performance VM under MMM-IPC
	IPCPerfTP  *stats.Sample // performance VM under MMM-TP
	IPCRelIPC  *stats.Sample // reliable VM under MMM-IPC
	IPCRelTP   *stats.Sample // reliable VM under MMM-TP

	// Figure 6(b): throughput normalized to the whole DMR-base system.
	TPPerfIPC  *stats.Sample
	TPPerfTP   *stats.Sample
	TPTotalIPC *stats.Sample // whole machine, MMM-IPC
	TPTotalTP  *stats.Sample // whole machine, MMM-TP
}

// Figure6 reproduces Figure 6: mixed-mode performance on a
// consolidated server with one reliable and one performance guest.
// Paper bands: the performance VM speeds up 25–85% (MMM-IPC) and
// 24–67% (MMM-TP) per-thread; the reliable VM is essentially unchanged
// (pgoltp −6.5%); MMM-TP's performance VM gains 2.4–3.6x throughput
// and the whole machine 1.7–2.3x.
func Figure6(c Config) ([]Fig6Row, error) {
	res, err := c.named("figure6")
	if err != nil {
		return nil, err
	}
	perfIPC := func(m *core.Metrics) float64 { return m.UserIPC("perf") }
	relIPC := func(m *core.Metrics) float64 { return m.UserIPC("reliable") }
	var rows []Fig6Row
	for _, wl := range c.workloads() {
		base := res[key(wl, core.KindDMRBase, "")]
		ipc := res[key(wl, core.KindMMMIPC, "")]
		tp := res[key(wl, core.KindMMMTP, "")]
		basePerf := sampleOf(base, perfIPC).Mean()
		baseRel := sampleOf(base, relIPC).Mean()
		basePerfTP := sampleOf(base, func(m *core.Metrics) float64 { return m.Throughput("perf") }).Mean()
		baseTotTP := sampleOf(base, func(m *core.Metrics) float64 { return m.TotalThroughput() }).Mean()
		rows = append(rows, Fig6Row{
			Workload:   wl,
			IPCPerfIPC: sampleOf(ipc, func(m *core.Metrics) float64 { return stats.Ratio(perfIPC(m), basePerf) }),
			IPCPerfTP:  sampleOf(tp, func(m *core.Metrics) float64 { return stats.Ratio(perfIPC(m), basePerf) }),
			IPCRelIPC:  sampleOf(ipc, func(m *core.Metrics) float64 { return stats.Ratio(relIPC(m), baseRel) }),
			IPCRelTP:   sampleOf(tp, func(m *core.Metrics) float64 { return stats.Ratio(relIPC(m), baseRel) }),
			TPPerfIPC:  sampleOf(ipc, func(m *core.Metrics) float64 { return stats.Ratio(m.Throughput("perf"), basePerfTP) }),
			TPPerfTP:   sampleOf(tp, func(m *core.Metrics) float64 { return stats.Ratio(m.Throughput("perf"), basePerfTP) }),
			TPTotalIPC: sampleOf(ipc, func(m *core.Metrics) float64 { return stats.Ratio(m.TotalThroughput(), baseTotTP) }),
			TPTotalTP:  sampleOf(tp, func(m *core.Metrics) float64 { return stats.Ratio(m.TotalThroughput(), baseTotTP) }),
		})
	}
	return rows, nil
}

// Figure6aTable renders Figure 6(a).
func Figure6aTable(rows []Fig6Row) *stats.Table {
	t := &stats.Table{
		Title: "Figure 6(a): Consolidated-server per-thread user IPC, normalized to DMR-base",
		Columns: []string{"workload", "perf@MMM-IPC", "perf@MMM-TP", "rel@MMM-IPC", "rel@MMM-TP",
			"paper: perf +25-85% (IPC) / +24-67% (TP), rel ~1.0"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, fmtRatio(r.IPCPerfIPC), fmtRatio(r.IPCPerfTP),
			fmtRatio(r.IPCRelIPC), fmtRatio(r.IPCRelTP), "")
	}
	return t
}

// Figure6bTable renders Figure 6(b).
func Figure6bTable(rows []Fig6Row) *stats.Table {
	t := &stats.Table{
		Title: "Figure 6(b): Consolidated-server throughput, normalized to DMR-base",
		Columns: []string{"workload", "perfVM@MMM-IPC", "perfVM@MMM-TP", "total@MMM-IPC", "total@MMM-TP",
			"paper: perfVM@TP 2.4-3.6x, total@TP 1.7-2.3x"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, fmtRatio(r.TPPerfIPC), fmtRatio(r.TPPerfTP),
			fmtRatio(r.TPTotalIPC), fmtRatio(r.TPTotalTP), "")
	}
	return t
}
