package exp

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Fig5Row is one workload's Figure 5 data: per-thread user IPC and
// total throughput of the three systems, normalized to No DMR 2X.
type Fig5Row struct {
	Workload string

	// Figure 5(a): normalized per-thread user IPC.
	IPCNoDMR2X *stats.Sample // 1.0 by construction
	IPCNoDMR   *stats.Sample
	IPCReunion *stats.Sample

	// Figure 5(b): normalized throughput.
	TPNoDMR   *stats.Sample
	TPReunion *stats.Sample
}

// Figure5 reproduces Figure 5: the DMR performance comparison. The
// paper's bands: No DMR observes 8–15% higher per-thread IPC than
// No DMR 2X; Reunion observes 22–48% lower; No DMR throughput is about
// half of No DMR 2X and Reunion's is one quarter to one third.
func Figure5(c Config) ([]Fig5Row, error) {
	res, err := c.named("figure5")
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, wl := range c.workloads() {
		base := res[key(wl, core.KindNoDMR2X, "")]
		nod := res[key(wl, core.KindNoDMR, "")]
		reu := res[key(wl, core.KindReunion, "")]
		baseIPC := sampleOf(base, func(m *core.Metrics) float64 { return m.UserIPC("app") }).Mean()
		baseTP := sampleOf(base, func(m *core.Metrics) float64 { return m.TotalThroughput() }).Mean()
		row := Fig5Row{
			Workload:   wl,
			IPCNoDMR2X: sampleOf(base, func(m *core.Metrics) float64 { return stats.Ratio(m.UserIPC("app"), baseIPC) }),
			IPCNoDMR:   sampleOf(nod, func(m *core.Metrics) float64 { return stats.Ratio(m.UserIPC("app"), baseIPC) }),
			IPCReunion: sampleOf(reu, func(m *core.Metrics) float64 { return stats.Ratio(m.UserIPC("app"), baseIPC) }),
			TPNoDMR:    sampleOf(nod, func(m *core.Metrics) float64 { return stats.Ratio(m.TotalThroughput(), baseTP) }),
			TPReunion:  sampleOf(reu, func(m *core.Metrics) float64 { return stats.Ratio(m.TotalThroughput(), baseTP) }),
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure5aTable renders Figure 5(a).
func Figure5aTable(rows []Fig5Row) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 5(a): Normalized Per-thread User IPC (vs No DMR 2X)",
		Columns: []string{"workload", "NoDMR2X", "NoDMR", "Reunion", "paper: NoDMR +8-15%, Reunion -22-48%"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, fmtRatio(r.IPCNoDMR2X), fmtRatio(r.IPCNoDMR), fmtRatio(r.IPCReunion), "")
	}
	return t
}

// Figure5bTable renders Figure 5(b).
func Figure5bTable(rows []Fig5Row) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 5(b): Normalized Throughput (vs No DMR 2X)",
		Columns: []string{"workload", "NoDMR", "Reunion", "paper: NoDMR ~0.5, Reunion ~0.25-0.33"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, fmtRatio(r.TPNoDMR), fmtRatio(r.TPReunion), "")
	}
	return t
}
