package exp

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/stats"
)

// PABRow holds the serial-vs-parallel PAB lookup study for one
// workload (Section 5.2, "Effect of PAB Latency").
type PABRow struct {
	Workload string
	// PerfIPCRatio is the performance VM's per-thread IPC with a
	// 2-cycle serial PAB lookup, normalized to the parallel lookup.
	PerfIPCRatio *stats.Sample
	// RelIPCRatio is the reliable VM's ratio (the PAB is not used in
	// reliable mode, so this should be ~1.0).
	RelIPCRatio *stats.Sample
}

// PABStudy reproduces the Section 5.2 design study: a serial 2-cycle
// PAB lookup before the L2 access reduces the performance-mode
// application's IPC by 3–10%; the reliable application is unaffected.
func PABStudy(c Config) ([]PABRow, error) {
	res, err := c.named("pab")
	if err != nil {
		return nil, err
	}
	var rows []PABRow
	for _, wl := range c.workloads() {
		par := res[key(wl, core.KindMMMIPC, "parallel")]
		ser := res[key(wl, core.KindMMMIPC, "serial")]
		basePerf := sampleOf(par, func(m *core.Metrics) float64 { return m.UserIPC("perf") }).Mean()
		baseRel := sampleOf(par, func(m *core.Metrics) float64 { return m.UserIPC("reliable") }).Mean()
		rows = append(rows, PABRow{
			Workload:     wl,
			PerfIPCRatio: sampleOf(ser, func(m *core.Metrics) float64 { return stats.Ratio(m.UserIPC("perf"), basePerf) }),
			RelIPCRatio:  sampleOf(ser, func(m *core.Metrics) float64 { return stats.Ratio(m.UserIPC("reliable"), baseRel) }),
		})
	}
	return rows, nil
}

// PABTable renders the PAB latency study.
func PABTable(rows []PABRow) *stats.Table {
	t := &stats.Table{
		Title:   "Section 5.2: Serial (2-cycle) vs parallel PAB lookup (MMM-IPC)",
		Columns: []string{"workload", "perf IPC (serial/parallel)", "reliable IPC ratio", "paper: perf -3-10%, reliable 1.0"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, fmtRatio(r.PerfIPCRatio), fmtRatio(r.RelIPCRatio), "")
	}
	return t
}

// SingleOSRow holds the single-OS mode-switching overhead for one
// workload (Section 5.3).
type SingleOSRow struct {
	Workload string
	// Overhead is the fraction of cycles spent in mode transitions
	// when every OS entry/exit switches modes.
	Overhead *stats.Sample
	// Switches is the number of Enter-DMR transitions per million
	// cycles.
	Switches *stats.Sample
	// Estimate is the paper's analytic estimate: switch cost divided
	// by (user+OS cycles between switches).
	Estimate *stats.Sample
}

// SingleOSOverhead reproduces the Section 5.3 analysis: with mode
// transitions at every OS boundary, the overhead is ≈8% for Apache and
// <5% for the other workloads.
func SingleOSOverhead(c Config) ([]SingleOSRow, error) {
	res, err := c.named("singleos")
	if err != nil {
		return nil, err
	}
	var rows []SingleOSRow
	for _, wl := range c.workloads() {
		ms := res[key(wl, core.KindSingleOS, "")]
		overhead := func(m *core.Metrics) float64 {
			trans := float64(m.EnterN)*m.EnterAvg + float64(m.LeaveN)*m.LeaveAvg
			active := float64(m.Core.Cycles - m.Core.IdleCycles)
			if active == 0 {
				return 0
			}
			return trans / active
		}
		estimate := func(m *core.Metrics) float64 {
			per := m.EnterAvg + m.LeaveAvg
			interval := m.UserCycPerSwitch + m.OSCycPerSwitch
			if interval == 0 {
				return 0
			}
			return per / (interval + per)
		}
		rows = append(rows, SingleOSRow{
			Workload: wl,
			Overhead: sampleOf(ms, overhead),
			Switches: sampleOf(ms, func(m *core.Metrics) float64 {
				return float64(m.EnterN) / float64(m.Cycles) * 1e6
			}),
			Estimate: sampleOf(ms, estimate),
		})
	}
	return rows, nil
}

// SingleOSTable renders the single-OS overhead analysis.
func SingleOSTable(rows []SingleOSRow) *stats.Table {
	t := &stats.Table{
		Title:   "Section 5.3: Single-OS mode-switching overhead",
		Columns: []string{"workload", "measured overhead", "switches/Mcyc", "analytic estimate", "paper: ~8% apache, <5% others"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.1f%%", 100*r.Overhead.Mean()),
			fmt.Sprintf("%.1f", r.Switches.Mean()),
			fmt.Sprintf("%.1f%%", 100*r.Estimate.Mean()), "")
	}
	return t
}

// FaultRow summarizes a fault-injection campaign on one system kind.
type FaultRow struct {
	System       string
	Injected     *stats.Sample
	FPDetected   *stats.Sample // fingerprint mismatches (DMR detection)
	PABPrevented *stats.Sample // PAB exceptions (stores stopped)
	WouldCorrupt *stats.Sample // violations with enforcement off
	VerifyCaught *stats.Sample // privileged-state divergence caught on Enter-DMR
}

// faultVariants maps the fault campaign's variant labels to the names
// the paper-facing table reports, in row order.
var faultVariants = []struct {
	kind    core.Kind
	variant string
	name    string
}{
	{core.KindReunion, "dmr", "Reunion (DMR)"},
	{core.KindMMMIPC, "pab", "MMM-IPC +PAB"},
	{core.KindMMMIPC, "nopab", "MMM-IPC -PAB"},
}

// FaultStudy runs the protection-validation campaign the paper's
// design arguments imply: faults injected into a mixed-mode system are
// either detected by fingerprints (DMR mode), stopped by the PAB
// before corrupting reliable memory (performance mode), or caught by
// the privileged-register verification on Enter-DMR. Disabling the
// PAB converts prevented violations into silent corruption.
func FaultStudy(c Config, wl string, meanInterval float64) ([]FaultRow, error) {
	res, err := c.runAll(campaign.FaultJobs([]string{wl}, c.Seeds, meanInterval))
	if err != nil {
		return nil, err
	}
	var rows []FaultRow
	for _, v := range faultVariants {
		ms := res[key(wl, v.kind, v.variant)]
		rows = append(rows, FaultRow{
			System:       v.name,
			Injected:     sampleOf(ms, func(m *core.Metrics) float64 { return float64(m.FaultsInjected) }),
			FPDetected:   sampleOf(ms, func(m *core.Metrics) float64 { return float64(m.Mismatches) }),
			PABPrevented: sampleOf(ms, func(m *core.Metrics) float64 { return float64(m.PABExceptions) }),
			WouldCorrupt: sampleOf(ms, func(m *core.Metrics) float64 { return float64(m.WouldCorrupt) }),
			VerifyCaught: sampleOf(ms, func(m *core.Metrics) float64 { return float64(m.VerifyFailures) }),
		})
	}
	return rows, nil
}

// FaultTable renders the fault-injection campaign.
func FaultTable(rows []FaultRow) *stats.Table {
	t := &stats.Table{
		Title:   "Fault injection: detection and prevention by system",
		Columns: []string{"system", "injected", "FP detections", "PAB prevented", "silent corruptions", "verify caught"},
	}
	for _, r := range rows {
		t.AddRow(r.System,
			fmt.Sprintf("%.0f", r.Injected.Mean()),
			fmt.Sprintf("%.0f", r.FPDetected.Mean()),
			fmt.Sprintf("%.0f", r.PABPrevented.Mean()),
			fmt.Sprintf("%.0f", r.WouldCorrupt.Mean()),
			fmt.Sprintf("%.0f", r.VerifyCaught.Mean()))
	}
	return t
}
