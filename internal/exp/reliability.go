package exp

import (
	"fmt"
	"sort"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/relia"
	"repro/internal/stats"
)

// ReliaRow summarizes the reliability campaign for one protection mode
// at one raw fault rate, merged across workloads and seeds.
type ReliaRow struct {
	Mode string
	// Rate is the injected mean fault interval in cycles.
	Rate float64
	// Faults is the number of successfully injected faults classified.
	Faults uint64
	// Trials is the number of Monte Carlo trial slices behind the row —
	// fixed-batch runs schedule the same count for every cell, adaptive
	// runs stop each cell as soon as its interval meets the target.
	Trials int
	// ResultCov / TLBCov are the per-kind coverage proportions with
	// their 95% Wilson bounds.
	ResultCov, ResultLo, ResultHi float64
	TLBCov, TLBLo, TLBHi          float64
	// Prevented / VerifyCaught / SDC / DUE / Masked are outcome counts
	// across kinds.
	Prevented, VerifyCaught, SDC, DUE, Masked uint64
	// LatP95 is the 95th-percentile detection latency in cycles over
	// all detected faults.
	LatP95 float64
	// FITSDC and MTTFHours roll the outcome probabilities up under the
	// default raw-rate model.
	FITSDC    float64
	MTTFHours float64
}

// ReliabilityStudy runs the registered "relia" campaign — the paper's
// protection story quantified: DMR-mode result flips are detected and
// corrected with coverage statistically indistinguishable from 100%,
// performance-mode TLB flips are prevented by the PAB, and
// performance-mode result flips surface as SDC — and merges each
// (mode, rate) cell across workloads and seeds.
func ReliabilityStudy(c Config) ([]ReliaRow, error) {
	spec, err := campaign.Named("relia", c.workloads(), c.Seeds)
	if err != nil {
		return nil, err
	}
	if c.Precision != nil {
		p := *c.Precision
		spec.Precision = &p
	} else if c.ReliaTrials > 0 {
		for i := range spec.Jobs {
			spec.Jobs[i].Knobs.ReliaTrials = c.ReliaTrials
		}
	}
	rs, err := c.runSpec(spec)
	if err != nil {
		return nil, err
	}
	res := rs.ByKey()
	rates := campaign.DefaultFaultRates()
	var rows []ReliaRow
	for _, rm := range campaign.ReliaModes() {
		for _, rate := range rates {
			variant := campaign.ReliaVariant(rm.Name, rate)
			// Adaptive modes run under a dynamic policy, which is its
			// own key segment; build the key through Job so it matches.
			k := campaign.Job{
				Workload: "", Kind: rm.Kind, Variant: variant,
				Knobs: campaign.Knobs{Policy: rm.Policy},
			}
			var batches []*core.ReliaBatch
			for _, wl := range c.workloads() {
				k.Workload = wl
				for _, m := range res[k.Key()] {
					batches = append(batches, m.Relia)
				}
			}
			merged := relia.MergeBatches(batches)
			if merged == nil {
				continue
			}
			row := ReliaRow{Mode: rm.Name, Rate: rate,
				Faults: relia.TotalInjected(merged), Trials: merged.Trials}
			cov, exposed := relia.Coverage(merged, "result-flip")
			row.ResultCov = stats.Ratio(float64(cov), float64(exposed))
			row.ResultLo, row.ResultHi = stats.Wilson(cov, exposed)
			cov, exposed = relia.Coverage(merged, "tlb-flip")
			row.TLBCov = stats.Ratio(float64(cov), float64(exposed))
			row.TLBLo, row.TLBHi = stats.Wilson(cov, exposed)
			for kind := range merged.Injected {
				row.Prevented += merged.Outcomes[kind+"/"+relia.OutcomePrevented.String()]
				row.VerifyCaught += merged.Outcomes[kind+"/"+relia.OutcomeVerifyCaught.String()]
				row.SDC += merged.Outcomes[kind+"/"+relia.OutcomeSDC.String()]
				row.DUE += merged.Outcomes[kind+"/"+relia.OutcomeDUE.String()]
				row.Masked += merged.Outcomes[kind+"/"+relia.OutcomeMasked.String()]
			}
			var lat []float64
			for _, k := range fault.AllKinds() {
				lat = append(lat, merged.DetectLat[k.String()]...)
			}
			if len(lat) > 0 {
				sort.Float64s(lat)
				row.LatP95 = stats.PercentileSorted(lat, 95)
			}
			row.FITSDC, _ = relia.FIT(merged, relia.DefaultRates())
			row.MTTFHours = relia.MTTFHours(row.FITSDC)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ReliabilityTable renders the reliability study.
func ReliabilityTable(rows []ReliaRow) *stats.Table {
	t := &stats.Table{
		Title: "Reliability: Monte Carlo fault-campaign outcomes by protection mode",
		Columns: []string{
			"mode", "rate(cyc)", "trials", "faults",
			"result cov [95% CI]", "tlb cov [95% CI]",
			"prevented", "verify", "SDC", "DUE", "masked",
			"p95 lat", "FIT(SDC)", "MTTF(h)",
		},
	}
	for _, r := range rows {
		mttf := "-"
		if r.MTTFHours > 0 {
			mttf = fmt.Sprintf("%.2g", r.MTTFHours)
		} else if r.SDC == 0 {
			mttf = "no SDC observed"
		}
		t.AddRow(r.Mode,
			fmt.Sprintf("%.0f", r.Rate),
			fmt.Sprintf("%d", r.Trials),
			fmt.Sprintf("%d", r.Faults),
			fmt.Sprintf("%.3f [%.3f,%.3f]", r.ResultCov, r.ResultLo, r.ResultHi),
			fmt.Sprintf("%.3f [%.3f,%.3f]", r.TLBCov, r.TLBLo, r.TLBHi),
			fmt.Sprintf("%d", r.Prevented),
			fmt.Sprintf("%d", r.VerifyCaught),
			fmt.Sprintf("%d", r.SDC),
			fmt.Sprintf("%d", r.DUE),
			fmt.Sprintf("%d", r.Masked),
			fmt.Sprintf("%.0f", r.LatP95),
			fmt.Sprintf("%.1f", r.FITSDC),
			mttf)
	}
	return t
}
