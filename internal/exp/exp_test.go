package exp

import (
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/mode"
)

// testCache is shared by every test config: experiments that revisit a
// cell another test already simulated at the same scale hit the warm
// cache instead of re-simulating.
var testCache = campaign.NewMemCache()

// tiny returns a minimal-scale experiment config for tests.
func tiny() Config {
	c := Quick()
	c.Warmup = 60_000
	c.Measure = 120_000
	c.Timeslice = 40_000
	c.Cache = testCache
	return c
}

// fig5Rows runs the tiny Figure 5 sweep exactly once; every test that
// needs Figure 5 shapes shares the result instead of re-simulating.
var fig5Rows = sync.OnceValues(func() ([]Fig5Row, error) {
	return Figure5(tiny())
})

func TestFigure5Shape(t *testing.T) {
	rows, err := fig5Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.IPCNoDMR2X.Mean() != 1.0 {
			t.Errorf("%s: baseline not normalized to 1", r.Workload)
		}
		if r.IPCReunion.Mean() <= 0 || r.TPReunion.Mean() <= 0 {
			t.Errorf("%s: Reunion produced nothing", r.Workload)
		}
		// Reunion's throughput must be below the 16-thread baseline
		// (it runs half the VCPUs, each slower) at any scale.
		if r.TPReunion.Mean() >= 1.0 {
			t.Errorf("%s: Reunion throughput %.2f >= baseline", r.Workload, r.TPReunion.Mean())
		}
	}
	if Figure5aTable(rows).String() == "" || Figure5bTable(rows).String() == "" {
		t.Fatal("tables render empty")
	}
}

func TestFigure5CacheShared(t *testing.T) {
	// The shared sweep warmed testCache, so re-deriving Figure 5 at the
	// same scale must be pure cache hits and reproduce the same rows.
	if _, err := fig5Rows(); err != nil {
		t.Fatal(err)
	}
	c := tiny()
	spec, err := campaign.Named("figure5", c.workloads(), c.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.runSet(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Misses != 0 || rs.Hits != len(jobs) {
		t.Fatalf("warm rerun: hits=%d misses=%d want %d/0", rs.Hits, rs.Misses, len(jobs))
	}
}

func TestTable1Shape(t *testing.T) {
	c := tiny()
	// The per-workload assertions are structural; three workloads with
	// distinct OS profiles cover them without simulating all six under
	// MMM-TP (three guests per run, the most expensive system kind).
	c.Workloads = []string{"apache", "oltp", "zeus"}
	rows, err := Table1(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(c.Workloads) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Enter.Mean() <= 0 || r.Leave.Mean() <= 0 {
			t.Errorf("%s: missing transitions", r.Workload)
			continue
		}
		// Leave is dominated by the 8192-line flush; Enter is not.
		if r.Leave.Mean() < 8000 {
			t.Errorf("%s: leave %.0f < flush floor", r.Workload, r.Leave.Mean())
		}
		if r.Enter.Mean() >= r.Leave.Mean() {
			t.Errorf("%s: enter %.0f >= leave %.0f", r.Workload, r.Enter.Mean(), r.Leave.Mean())
		}
	}
	if Table1Table(rows).String() == "" {
		t.Fatal("table renders empty")
	}
}

func TestTable2Shape(t *testing.T) {
	// Table 2 measures user/OS phase round trips; the long-burst
	// workloads (pgbench: 554k user cycles between traps) need windows
	// the full benchmark provides. Here we use a mid-size window and
	// validate the short-phase workloads' cadence and shape — so only
	// those two workloads are simulated.
	c := tiny()
	c.Measure = 600_000
	c.Workloads = []string{"apache", "zeus"}
	rows, err := Table2(c)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	for _, name := range []string{"apache", "zeus"} {
		r := byName[name]
		if r.UserCyc.Mean() <= 0 || r.OSCyc.Mean() <= 0 {
			t.Errorf("%s: zero cadence at 600k cycles", name)
		}
	}
	// Relative shape: zeus is OS-dominated.
	if z := byName["zeus"]; z.OSCyc.Mean() <= z.UserCyc.Mean() {
		t.Error("zeus should spend more cycles in the OS than in user code")
	}
	if Table2Table(rows).String() == "" {
		t.Fatal("table renders empty")
	}
}

func TestFaultStudyShape(t *testing.T) {
	c := tiny()
	rows, err := FaultStudy(c, "apache", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if FaultTable(rows).String() == "" {
		t.Fatal("table renders empty")
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	c := tiny()
	_, err := c.runAll([]campaign.Job{{Workload: "nope", Kind: core.KindNoDMR, Seed: 1}})
	if err == nil {
		t.Fatal("bad workload name not reported")
	}
}

func TestKeyFormat(t *testing.T) {
	if key("apache", core.KindNoDMR, "") != "apache/NoDMR" {
		t.Fatal(key("apache", core.KindNoDMR, ""))
	}
	if key("apache", core.KindNoDMR, "v") != "apache/NoDMR/v" {
		t.Fatal(key("apache", core.KindNoDMR, "v"))
	}
}

func TestReliabilityStudyShape(t *testing.T) {
	c := tiny()
	c.Workloads = []string{"apache"}
	rows, err := ReliabilityStudy(c)
	if err != nil {
		t.Fatal(err)
	}
	modes := len(campaign.ReliaModes())
	rates := len(campaign.DefaultFaultRates())
	if len(rows) != modes*rates {
		t.Fatalf("rows = %d, want %d (modes x rates)", len(rows), modes*rates)
	}
	agg := map[string]*ReliaRow{}
	for i := range rows {
		r := &rows[i]
		if a := agg[r.Mode]; a == nil {
			cp := *r
			agg[r.Mode] = &cp
		} else {
			a.Faults += r.Faults
			a.SDC += r.SDC
			a.DUE += r.DUE
			a.Prevented += r.Prevented
		}
	}
	// DMR mode must never leak silent corruption, and its result-flip
	// coverage interval must include 100%.
	if d := agg["dmr"]; d == nil || d.SDC != 0 {
		t.Fatalf("dmr mode leaked SDC: %+v", d)
	}
	for _, r := range rows {
		if r.Mode == "dmr" && r.Faults > 0 && r.ResultHi != 1 {
			t.Fatalf("dmr result coverage interval excludes 100%%: %+v", r)
		}
	}
	// Performance mode accepts SDC (unchecked result flips) while the
	// PAB prevents TLB-flip stores that threaten protected memory.
	if p := agg["performance"]; p == nil || p.Faults == 0 || p.SDC == 0 {
		t.Fatalf("performance mode shape wrong: %+v", agg["performance"])
	}
	if ReliabilityTable(rows).String() == "" {
		t.Fatal("table renders empty")
	}
}

func TestPolicyStudyShape(t *testing.T) {
	c := tiny()
	c.Workloads = []string{"apache"}
	rows, err := PolicyStudy(c)
	if err != nil {
		t.Fatal(err)
	}
	// Every registered dynamic policy x {clean, faulty}.
	if want := 2 * len(mode.Dynamic()); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	byPolicy := map[string]bool{}
	for _, r := range rows {
		byPolicy[r.Policy] = true
		if r.PerfIPC.N() == 0 || r.RelIPC.N() == 0 {
			t.Fatalf("%s/%s: empty ratio samples", r.Policy, r.Variant)
		}
		// Duty-cycle forces transitions at every boundary; the study
		// must see them.
		if r.Policy == "duty-cycle" && r.Switches.Mean() == 0 {
			t.Fatalf("duty-cycle reported no mode switches")
		}
	}
	for _, p := range mode.Dynamic() {
		if !byPolicy[p] {
			t.Fatalf("policy %q missing from study", p)
		}
	}
	if PolicyTable(rows).String() == "" {
		t.Fatal("table renders empty")
	}
	// A restricted axis runs only the requested policies (plus the
	// static baseline), honoring parameterized specs.
	c.Policies = []string{"duty-cycle:60000:25"}
	rows, err = PolicyStudy(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Policy != "duty-cycle" {
		t.Fatalf("restricted axis rows: %+v", rows)
	}
}
