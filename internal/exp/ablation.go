package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// TSORow holds the memory-consistency ablation for one workload.
type TSORow struct {
	Workload string
	// ReunionSC and ReunionTSO are Reunion's per-thread user IPC
	// normalized to the No DMR 2X baseline under the same consistency
	// model.
	ReunionSC  *stats.Sample
	ReunionTSO *stats.Sample
}

// TSOAblation reproduces the paper's "Comparison to Prior Work"
// analysis: this paper's configuration uses sequential consistency
// (stores hold their window slot until the write-through completes),
// which Smolens reports costs Reunion ~30% on average and which is the
// largest contributor to the gap between this paper's 22–48% Reunion
// penalty and the original Reunion paper's 5–10%. Under TSO the store
// buffer hides most of the per-store fingerprint serialization, so
// Reunion's normalized IPC should recover substantially.
func TSOAblation(c Config) ([]TSORow, error) {
	res, err := c.named("tso")
	if err != nil {
		return nil, err
	}
	var rows []TSORow
	for _, wl := range c.workloads() {
		baseSC := sampleOf(res[key(wl, core.KindNoDMR2X, "sc")],
			func(m *core.Metrics) float64 { return m.UserIPC("app") }).Mean()
		baseTSO := sampleOf(res[key(wl, core.KindNoDMR2X, "tso")],
			func(m *core.Metrics) float64 { return m.UserIPC("app") }).Mean()
		rows = append(rows, TSORow{
			Workload: wl,
			ReunionSC: sampleOf(res[key(wl, core.KindReunion, "sc")],
				func(m *core.Metrics) float64 { return stats.Ratio(m.UserIPC("app"), baseSC) }),
			ReunionTSO: sampleOf(res[key(wl, core.KindReunion, "tso")],
				func(m *core.Metrics) float64 { return stats.Ratio(m.UserIPC("app"), baseTSO) }),
		})
	}
	return rows, nil
}

// TSOTable renders the consistency-model ablation.
func TSOTable(rows []TSORow) *stats.Table {
	t := &stats.Table{
		Title:   "Ablation: Reunion normalized IPC under SC vs TSO (Section 5.1, Comparison to Prior Work)",
		Columns: []string{"workload", "Reunion@SC", "Reunion@TSO", "expectation: TSO recovers much of the SC penalty"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, fmtRatio(r.ReunionSC), fmtRatio(r.ReunionTSO), "")
	}
	return t
}

// FlushRow holds the Leave-DMR cost for one flush rate.
type FlushRow struct {
	LinesPerCycle int
	Leave         *stats.Sample
}

// FlushAblation sweeps the paper's "pessimistic" assumption that only
// one cache line can be inspected/flushed per cycle (footnote 4 /
// Section 5.3): the ~8k-cycle flush dominates Leave-DMR, so doubling
// the flush rate should roughly halve the Leave cost until the state
// moves dominate.
func FlushAblation(c Config, wl string) ([]FlushRow, error) {
	c.Workloads = []string{wl}
	res, err := c.named("flush")
	if err != nil {
		return nil, err
	}
	var rows []FlushRow
	for _, rate := range []int{1, 2, 4, 8} {
		rows = append(rows, FlushRow{
			LinesPerCycle: rate,
			Leave: sampleOf(res[key(wl, core.KindMMMTP, fmt.Sprintf("flush%d", rate))],
				func(m *core.Metrics) float64 { return m.LeaveAvg }),
		})
	}
	return rows, nil
}

// FlushTable renders the flush-rate ablation.
func FlushTable(wl string, rows []FlushRow) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: Leave-DMR cost vs L2 flush rate (%s, MMM-TP)", wl),
		Columns: []string{"lines/cycle", "Leave DMR (cycles)", "paper assumes 1 line/cycle -> ~10k"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.LinesPerCycle), fmt.Sprintf("%.0f", r.Leave.Mean()), "")
	}
	return t
}
