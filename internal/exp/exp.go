// Package exp defines the paper's experiments: one function per table
// and figure of the evaluation (Section 5), each running the required
// system configurations over all six workloads and multiple seeds, and
// rendering the same rows/series the paper reports. cmd/mmmbench and
// the repository-level benchmarks are thin wrappers around this
// package.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config scales the experiments. The paper simulates 100M cycles per
// run with 3M-cycle (1 ms) timeslices; that is hours of host time for
// a full sweep, so the defaults use shorter, proportionally scaled
// windows. Quick() shrinks further for smoke tests.
type Config struct {
	Warmup    sim.Cycle
	Measure   sim.Cycle
	Timeslice sim.Cycle // consolidated-server gang timeslice
	Seeds     []uint64
	Parallel  int // concurrent simulations (independent chips)
}

// Default returns the standard experiment scale: enough cycles for
// steady-state caches and several gang timeslices, two seeds for
// confidence intervals.
func Default() Config {
	return Config{
		Warmup:    400_000,
		Measure:   900_000,
		Timeslice: 250_000,
		Seeds:     []uint64{11, 23},
		Parallel:  runtime.NumCPU(),
	}
}

// Quick returns a reduced scale for smoke testing (-short).
func Quick() Config {
	return Config{
		Warmup:    150_000,
		Measure:   300_000,
		Timeslice: 60_000,
		Seeds:     []uint64{11},
		Parallel:  runtime.NumCPU(),
	}
}

// job is one simulation to run.
type job struct {
	wl   string
	kind core.Kind
	seed uint64
	mut  func(*sim.Config) // optional config mutation (e.g. serial PAB)
	key  string
}

// runAll executes jobs concurrently and returns metrics keyed by
// job.key.
func (c Config) runAll(jobs []job) (map[string][]core.Metrics, error) {
	type result struct {
		key string
		m   core.Metrics
		err error
	}
	par := c.Parallel
	if par < 1 {
		par = 1
	}
	work := make(chan job)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				wl, err := workload.ByName(j.wl)
				if err != nil {
					results <- result{key: j.key, err: err}
					continue
				}
				cfg := sim.DefaultConfig()
				cfg.TimesliceCycles = c.Timeslice
				if j.mut != nil {
					j.mut(cfg)
				}
				m, err := core.RunSystem(core.Options{
					Cfg:      cfg,
					Kind:     j.kind,
					Workload: wl,
					Seed:     j.seed,
				}, c.Warmup, c.Measure)
				results <- result{key: j.key, m: m, err: err}
			}
		}()
	}
	go func() {
		for _, j := range jobs {
			work <- j
		}
		close(work)
		wg.Wait()
		close(results)
	}()
	out := make(map[string][]core.Metrics)
	var firstErr error
	for r := range results {
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		out[r.key] = append(out[r.key], r.m)
	}
	return out, firstErr
}

// key builds a deterministic result key.
func key(wl string, kind core.Kind, variant string) string {
	if variant == "" {
		return fmt.Sprintf("%s/%s", wl, kind)
	}
	return fmt.Sprintf("%s/%s/%s", wl, kind, variant)
}

// sampleOf folds a metric extractor over a key's runs.
func sampleOf(ms []core.Metrics, f func(*core.Metrics) float64) *stats.Sample {
	s := &stats.Sample{}
	for i := range ms {
		s.Add(f(&ms[i]))
	}
	return s
}

// fmtRatio renders a normalized value with its CI when available.
func fmtRatio(s *stats.Sample) string {
	if s.N() > 1 {
		return fmt.Sprintf("%.3f ±%.3f", s.Mean(), s.CI95())
	}
	return fmt.Sprintf("%.3f", s.Mean())
}
