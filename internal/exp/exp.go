// Package exp defines the paper's experiments: one function per table
// and figure of the evaluation (Section 5), each a named campaign run
// through internal/campaign's engine and rendered into the same
// rows/series the paper reports. cmd/mmmbench and the repository-level
// benchmarks are thin wrappers around this package; cmd/mmmd serves
// the same campaigns over HTTP.
package exp

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config scales the experiments. The paper simulates 100M cycles per
// run with 3M-cycle (1 ms) timeslices; that is hours of host time for
// a full sweep, so the defaults use shorter, proportionally scaled
// windows. Quick() shrinks further for smoke tests.
type Config struct {
	Warmup    sim.Cycle
	Measure   sim.Cycle
	Timeslice sim.Cycle // consolidated-server gang timeslice
	Seeds     []uint64
	Parallel  int // concurrent simulations (independent chips)

	// Workloads restricts the sweep to a subset of workload names;
	// empty means all six.
	Workloads []string

	// Policies restricts the mode-policy axis of the policy study;
	// empty means the static baseline plus every registered dynamic
	// policy. Entries are policy specs (internal/mode), "" meaning the
	// static default.
	Policies []string

	// Cache, when non-nil, serves repeated jobs from the campaign
	// result cache instead of re-simulating.
	Cache campaign.Cache

	// Runner, when non-nil, executes campaigns instead of a local
	// engine — mmmbench -workers installs the fleet dispatcher here.
	// The Runner contract guarantees the tables come out
	// byte-identical either way.
	Runner campaign.Runner

	// Precision, when non-nil, switches the reliability study to
	// sequential stopping: each cell's trials are scheduled in waves
	// until its 95% Wilson interval on coverage is within the target
	// half-width (or the cell hits its trial cap). Experiments that
	// inject no faults ignore it.
	Precision *campaign.Precision

	// ReliaTrials overrides the fixed per-cell trial count of the
	// reliability study (0 = the registered default). It is how a
	// fixed-batch run is sized to the same worst-case budget an
	// adaptive run stops within — the nightly fixed-vs-adaptive
	// comparison. Ignored when Precision is set: adaptive cells get
	// their trial counts from the stopping rule.
	ReliaTrials int
}

// fromScale builds a Config from a campaign preset, so mmmbench and
// mmmd resolve "default"/"quick" to the same jobs and cache entries.
func fromScale(sc campaign.Scale, seeds []uint64) Config {
	return Config{
		Warmup:    sc.Warmup,
		Measure:   sc.Measure,
		Timeslice: sc.Timeslice,
		Seeds:     seeds,
		Parallel:  runtime.NumCPU(),
	}
}

// Default returns the standard experiment scale: enough cycles for
// steady-state caches and several gang timeslices, two seeds for
// confidence intervals.
func Default() Config {
	return fromScale(campaign.DefaultScale(), campaign.DefaultSeeds())
}

// Quick returns a reduced scale for smoke testing (-short).
func Quick() Config {
	return fromScale(campaign.QuickScale(), campaign.QuickSeeds())
}

// Scale returns the campaign scale of the config.
func (c Config) Scale() campaign.Scale {
	return campaign.Scale{Warmup: c.Warmup, Measure: c.Measure, Timeslice: c.Timeslice}
}

// workloads returns the workload axis: the configured subset, or all.
func (c Config) workloads() []string {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return workload.Names()
}

// runAll executes jobs on the campaign engine and returns metrics
// grouped by aggregation key.
func (c Config) runAll(jobs []campaign.Job) (map[string][]core.Metrics, error) {
	rs, err := c.runSet(jobs)
	if err != nil {
		return nil, err
	}
	return rs.ByKey(), nil
}

// runSet executes jobs on the configured runner (the local campaign
// engine unless a remote dispatcher is installed).
func (c Config) runSet(jobs []campaign.Job) (*campaign.ResultSet, error) {
	r := c.Runner
	if r == nil {
		r = campaign.New(campaign.Options{Parallel: c.Parallel, Cache: c.Cache})
	}
	return r.Run(context.Background(), c.Scale(), jobs)
}

// runSpec executes a whole spec on the configured runner through
// campaign.RunSpec, which routes adaptive-precision specs to the
// sequential-stopping scheduler and everything else through the fixed
// path runSet uses.
func (c Config) runSpec(spec campaign.Spec) (*campaign.ResultSet, error) {
	r := c.Runner
	if r == nil {
		r = campaign.New(campaign.Options{Parallel: c.Parallel, Cache: c.Cache})
	}
	return campaign.RunSpec(context.Background(), r, c.Scale(), spec)
}

// named expands the registered campaign spec under this config's axes
// and runs it.
func (c Config) named(name string) (map[string][]core.Metrics, error) {
	spec, err := campaign.Named(name, c.workloads(), c.Seeds)
	if err != nil {
		return nil, err
	}
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	return c.runAll(jobs)
}

// key builds a deterministic result key (campaign.Job.Key format).
func key(wl string, kind core.Kind, variant string) string {
	return campaign.Job{Workload: wl, Kind: kind, Variant: variant}.Key()
}

// sampleOf folds a metric extractor over a key's runs.
func sampleOf(ms []core.Metrics, f func(*core.Metrics) float64) *stats.Sample {
	s := &stats.Sample{}
	for i := range ms {
		s.Add(f(&ms[i]))
	}
	return s
}

// fmtRatio renders a normalized value with its CI when available.
func fmtRatio(s *stats.Sample) string {
	if s.N() > 1 {
		return fmt.Sprintf("%.3f ±%.3f", s.Mean(), s.CI95())
	}
	return fmt.Sprintf("%.3f", s.Mean())
}
