package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Table1Row holds one workload's mode-switching overheads (cycles),
// measured from MMM-TP as the paper does.
type Table1Row struct {
	Workload string
	Enter    *stats.Sample
	Leave    *stats.Sample
}

// Table1 reproduces Table 1: the average per-VCPU cost of entering and
// leaving DMR mode under MMM-TP. Paper values: Enter ≈ 2.2–2.4k
// cycles; Leave ≈ 9.9–10.4k cycles (≈8k of which is the line-by-line
// L2 flush).
func Table1(c Config) ([]Table1Row, error) {
	res, err := c.named("table1")
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, wl := range c.workloads() {
		ms := res[key(wl, core.KindMMMTP, "")]
		rows = append(rows, Table1Row{
			Workload: wl,
			Enter:    sampleOf(ms, func(m *core.Metrics) float64 { return m.EnterAvg }),
			Leave:    sampleOf(ms, func(m *core.Metrics) float64 { return m.LeaveAvg }),
		})
	}
	return rows, nil
}

// Table1Table renders Table 1.
func Table1Table(rows []Table1Row) *stats.Table {
	t := &stats.Table{
		Title:   "Table 1: Mixed-Mode Switching Overheads (cycles, MMM-TP)",
		Columns: []string{"workload", "Enter DMR", "Leave DMR", "paper: enter 2.2-2.4k, leave 9.9-10.4k"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.0f", r.Enter.Mean()),
			fmt.Sprintf("%.0f", r.Leave.Mean()), "")
	}
	return t
}

// Table2Row holds one workload's single-OS switching cadence.
type Table2Row struct {
	Workload  string
	UserCyc   *stats.Sample
	OSCyc     *stats.Sample
	PaperUser float64
	PaperOS   float64
}

// paperTable2 holds the cycle counts the paper reports in Table 2.
var paperTable2 = map[string][2]float64{
	"apache":  {59_000, 98_000},
	"oltp":    {218_000, 52_000},
	"pgoltp":  {210_000, 35_000},
	"pmake":   {312_000, 47_000},
	"pgbench": {554_000, 126_000},
	"zeus":    {65_000, 220_000},
}

// Table2 reproduces Table 2: the average number of cycles a thread of
// the baseline (non-DMR) system spends in user mode before entering
// the OS, and in the OS before returning, per workload.
func Table2(c Config) ([]Table2Row, error) {
	res, err := c.named("table2")
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, wl := range c.workloads() {
		ms := res[key(wl, core.KindNoDMR, "")]
		p := paperTable2[wl]
		rows = append(rows, Table2Row{
			Workload:  wl,
			UserCyc:   sampleOf(ms, func(m *core.Metrics) float64 { return m.UserCycPerSwitch }),
			OSCyc:     sampleOf(ms, func(m *core.Metrics) float64 { return m.OSCycPerSwitch }),
			PaperUser: p[0],
			PaperOS:   p[1],
		})
	}
	return rows, nil
}

// Table2Table renders Table 2.
func Table2Table(rows []Table2Row) *stats.Table {
	t := &stats.Table{
		Title:   "Table 2: Cycles Before Switching Modes for Single-OS",
		Columns: []string{"workload", "User Cycles", "OS Cycles", "paper User", "paper OS"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.0fk", r.UserCyc.Mean()/1000),
			fmt.Sprintf("%.0fk", r.OSCyc.Mean()/1000),
			fmt.Sprintf("%.0fk", r.PaperUser/1000),
			fmt.Sprintf("%.0fk", r.PaperOS/1000))
	}
	return t
}
