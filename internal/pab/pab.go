// Package pab implements the paper's memory-protection contribution:
// the Protection Assistance Table (PAT) and the per-core Protection
// Assistance Buffer (PAB).
//
// The PAT is an inverse page table maintained by system software in
// cacheable physical memory: one bit per 8 KB physical page, set when
// the page may only be written by software executing in reliable mode.
// At one bit per page it costs 16 MB per TB of physical memory.
//
// The PAB is a small hardware cache of PAT entries attached to each
// core, organized like a cache: physically indexed and tagged, each
// entry holding one 64-byte line of PAT bits (so one entry covers
// 64 B x 8 pages/B x 8 KB = 4 MB of physical memory; the paper's
// 128-entry PAB maps 512 MB at 8.2 KB of storage). When a core runs in
// performance (non-DMR) mode, every store write-through re-validates
// its physical address against the PAB before (serial) or in parallel
// with the L2 access. The PAB and TLB thus provide redundancy for each
// other: a fault in either raises an exception before corruption
// occurs. On a TLB demap the PAB entry covering the demapped physical
// page is invalidated.
package pab

import (
	"repro/internal/cache"
	"repro/internal/paging"
	"repro/internal/sim"
	"repro/internal/stats"
)

const (
	patLineBytes = 64
	// pagesPerLine is how many pages one PAT line covers: 64 bytes of
	// 1-bit entries.
	pagesPerLine = patLineBytes * 8
)

// Table is the PAT: the in-memory, system-software-maintained bit
// array. It is backed by a physical allocation so that PAB refills are
// real memory traffic.
type Table struct {
	bits      []uint64
	base      uint64 // physical base address of the PAT
	pageShift uint
	pages     uint64

	Updates uint64
}

// NewTable allocates the PAT for the physical memory described by pm
// and initializes every bit from the current ownership map (pages owned
// by a performance domain are writable in performance mode; everything
// else is reliable-only).
func NewTable(pm *paging.PhysMap) *Table {
	pages := pm.Pages()
	t := &Table{
		bits:      make([]uint64, (pages+63)/64),
		pageShift: pm.PageShift(),
		pages:     pages,
	}
	// Reserve physical memory for the PAT itself (system-owned).
	patBytes := pages / 8
	patPages := (patBytes + (1 << t.pageShift) - 1) >> t.pageShift
	if patPages == 0 {
		patPages = 1
	}
	t.base = pm.Alloc(patPages, paging.DomainSystem, -1) << t.pageShift
	t.syncBits(pm)
	return t
}

func (t *Table) set(ppage uint64, reliableOnly bool) {
	if reliableOnly {
		t.bits[ppage/64] |= 1 << (ppage % 64)
	} else {
		t.bits[ppage/64] &^= 1 << (ppage % 64)
	}
}

// ReliableOnly reads the PAT bit for a physical page.
func (t *Table) ReliableOnly(ppage uint64) bool {
	if ppage >= t.pages {
		return true // out-of-range physical addresses are never writable
	}
	return t.bits[ppage/64]&(1<<(ppage%64)) != 0
}

// Sync rewrites every PAT bit from the current ownership map — the
// system-software step that publishes a finished memory layout. A PAT
// snapshotted before guest memory is allocated marks every
// later-allocated performance page reliable-only, making the PAB deny
// legitimate stores; system construction calls Sync once layout is
// done.
func (t *Table) Sync(pm *paging.PhysMap) {
	t.syncBits(pm)
}

// syncBits rewrites the bit array from the ownership map. Physical
// memory is allocated by a bump pointer, so every page at or above the
// high-water mark is free and reliable-only: those words are written
// wholesale instead of bit by bit, leaving only the allocated prefix —
// typically a few thousand pages of a multi-gigabyte memory — to
// per-page inspection.
func (t *Table) syncBits(pm *paging.PhysMap) {
	alloc := pm.Allocated()
	if alloc > t.pages {
		alloc = t.pages
	}
	words := int((alloc + 63) / 64)
	for w := 0; w < words; w++ {
		base := uint64(w) * 64
		n := alloc - base
		if n > 64 {
			n = 64
		}
		word := ^uint64(0) << n // pages past the allocation mark
		for b := uint64(0); b < n; b++ {
			if pm.ReliableOnly(base + b) {
				word |= 1 << b
			}
		}
		t.bits[w] = word
	}
	for w := words; w < len(t.bits); w++ {
		t.bits[w] = ^uint64(0)
	}
}

// Update is the system-software path: it rewrites the PAT bit for a
// physical page (called whenever the page table changes, e.g. on a
// page fault or remap) and returns the physical address of the PAT
// line that changed so callers can invalidate PAB copies.
func (t *Table) Update(ppage uint64, reliableOnly bool) (patLine uint64) {
	t.Updates++
	t.set(ppage, reliableOnly)
	return t.LineAddr(ppage)
}

// LineAddr returns the physical address of the PAT line holding the
// bit for ppage.
func (t *Table) LineAddr(ppage uint64) uint64 {
	return t.base + (ppage/pagesPerLine)*patLineBytes
}

// Base returns the PAT's physical base address.
func (t *Table) Base() uint64 { return t.base }

// entry is one PAB entry: a cached PAT line.
type entry struct {
	valid bool
	line  uint64 // physical address of the cached PAT line
	lru   uint64
}

// PAB is one core's Protection Assistance Buffer. It implements
// cpu.StoreGuard.
type PAB struct {
	cfg   *sim.Config
	table *Table
	hier  *cache.Hierarchy
	core  int

	sets    int
	ways    int
	entries []entry
	tick    uint64

	// Enabled gates enforcement: when false the PAB still models an
	// oracle that counts would-be violations (used by the
	// fault-injection experiments to show what corruption the PAB
	// prevents) but raises no exception.
	Enabled bool
	// Serial selects the 2-cycle serial lookup instead of the
	// parallel-with-L2 lookup (the Section 5.2 design study).
	Serial bool

	C stats.CoreCounters // PABChecks / PABMisses / PABExceptions

	// WouldCorrupt counts stores that violated the PAT while
	// enforcement was disabled.
	WouldCorrupt uint64

	// OnException, when non-nil, observes every store the PAB denied;
	// OnWouldCorrupt observes every violation the disabled-PAB oracle
	// recorded. Reliability evaluation attributes these to injected
	// faults.
	OnException    func(core int, pa uint64, now sim.Cycle)
	OnWouldCorrupt func(core int, pa uint64, now sim.Cycle)
}

// New creates the PAB for one core.
func New(cfg *sim.Config, t *Table, hier *cache.Hierarchy, core int) *PAB {
	ways := 4
	if cfg.PABEntries < ways {
		ways = cfg.PABEntries
	}
	sets := cfg.PABEntries / ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic("pab: entry count must give a power-of-two set count")
	}
	return &PAB{
		cfg:     cfg,
		table:   t,
		hier:    hier,
		core:    core,
		sets:    sets,
		ways:    ways,
		entries: make([]entry, cfg.PABEntries),
		Enabled: true,
		Serial:  cfg.PABSerial,
	}
}

func (p *PAB) setOf(line uint64) int {
	return int((line / patLineBytes) % uint64(p.sets))
}

// lookup finds the PAB entry caching the PAT line, refreshing LRU.
func (p *PAB) lookup(line uint64) *entry {
	base := p.setOf(line) * p.ways
	for i := 0; i < p.ways; i++ {
		e := &p.entries[base+i]
		if e.valid && e.line == line {
			p.tick++
			e.lru = p.tick
			return e
		}
	}
	return nil
}

// fill installs a PAT line, evicting LRU.
func (p *PAB) fill(line uint64) {
	base := p.setOf(line) * p.ways
	victim := base
	var oldest uint64 = ^uint64(0)
	for i := 0; i < p.ways; i++ {
		e := &p.entries[base+i]
		if !e.valid {
			victim = base + i
			break
		}
		if e.lru < oldest {
			oldest = e.lru
			victim = base + i
		}
	}
	p.tick++
	p.entries[victim] = entry{valid: true, line: line, lru: p.tick}
}

// CheckStore re-validates a performance-mode store's permission
// (cpu.StoreGuard). It returns the extra store latency (serial lookup
// and/or PAT refill on a PAB miss) and whether the store violates the
// PAT and must raise an exception before reaching the L2.
func (p *PAB) CheckStore(core int, pa uint64, now sim.Cycle) (sim.Cycle, bool) {
	p.C.PABChecks++
	ppage := pa >> p.table.pageShift
	if !p.Enabled {
		// Oracle mode (ablation): observe what the PAB would have
		// prevented, at no cost and with no protection.
		if p.table.ReliableOnly(ppage) {
			p.WouldCorrupt++
			if p.OnWouldCorrupt != nil {
				p.OnWouldCorrupt(core, pa, now)
			}
		}
		return 0, false
	}
	line := p.table.LineAddr(ppage)
	extra := sim.Cycle(0)
	if p.Serial {
		extra += p.cfg.PABSerialLat
	}
	if p.lookup(line) == nil {
		// PAB miss: fetch the PAT line through the memory hierarchy
		// (it resides in cacheable memory) and install it.
		p.C.PABMisses++
		ready, _ := p.hier.Load(p.core, line, now+extra)
		extra = ready - now
		p.fill(line)
	}
	if !p.table.ReliableOnly(ppage) {
		return extra, false
	}
	// Violation: the physical page is reliable-only.
	if !p.Enabled {
		p.WouldCorrupt++
		return extra, false
	}
	p.C.PABExceptions++
	if p.OnException != nil {
		p.OnException(core, pa, now)
	}
	return extra, true
}

// InvalidateForPage drops the PAB entry covering a demapped physical
// page (the TLB-demap coherence rule). Wire it to paging.TLB.OnDemap.
func (p *PAB) InvalidateForPage(ppage uint64) {
	line := p.table.LineAddr(ppage)
	base := p.setOf(line) * p.ways
	for i := 0; i < p.ways; i++ {
		e := &p.entries[base+i]
		if e.valid && e.line == line {
			e.valid = false
		}
	}
}

// InvalidateLine drops the PAB entry caching the given PAT line
// (called when system software updates the PAT).
func (p *PAB) InvalidateLine(patLine uint64) {
	base := p.setOf(patLine) * p.ways
	for i := 0; i < p.ways; i++ {
		e := &p.entries[base+i]
		if e.valid && e.line == patLine {
			e.valid = false
		}
	}
}

// Occupancy returns the number of valid PAB entries.
func (p *PAB) Occupancy() int {
	n := 0
	for i := range p.entries {
		if p.entries[i].valid {
			n++
		}
	}
	return n
}

// CoveragePages returns how many physical pages a full PAB can map
// (512 MB worth for the default configuration, as in the paper).
func (p *PAB) CoveragePages() uint64 {
	return uint64(len(p.entries)) * pagesPerLine
}
