package pab

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/paging"
	"repro/internal/sim"
)

func rig(t testing.TB) (*sim.Config, *paging.PhysMap, *Table, *cache.Hierarchy) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	pm := paging.NewPhysMap(1<<30, cfg.PageBytes) // 1 GB
	tab := NewTable(pm)
	h := cache.New(cfg)
	return cfg, pm, tab, h
}

func TestPATReflectsOwnership(t *testing.T) {
	_, pm, tab, _ := rig(t)
	rel := pm.Alloc(4, paging.DomainReliable, 0)
	perf := pm.Alloc(4, paging.DomainPerformance, 1)
	// NewTable initialized before these allocations; system software
	// updates the PAT as it assigns pages.
	tab.Update(rel, pm.ReliableOnly(rel))
	tab.Update(perf, pm.ReliableOnly(perf))
	if !tab.ReliableOnly(rel) {
		t.Fatal("reliable page not marked reliable-only")
	}
	if tab.ReliableOnly(perf) {
		t.Fatal("performance page marked reliable-only")
	}
	// Out-of-range physical addresses are never writable.
	if !tab.ReliableOnly(1 << 40) {
		t.Fatal("out-of-range page must be reliable-only")
	}
}

func TestPATSizing(t *testing.T) {
	// 1 bit per 8 KB page: 1 TB of physical memory needs 16 MB of PAT,
	// so our 1 GB needs 16 KB.
	_, _, tab, _ := rig(t)
	pages := uint64(1<<30) / 8192
	if got := uint64(len(tab.bits)) * 8; got != pages/8 {
		t.Fatalf("PAT occupies %d bytes, want %d", got, pages/8)
	}
}

func TestCheckStoreAllowsOwnPages(t *testing.T) {
	cfg, pm, tab, h := rig(t)
	perf := pm.Alloc(8, paging.DomainPerformance, 1)
	for i := uint64(0); i < 8; i++ {
		tab.Update(perf+i, false)
	}
	p := New(cfg, tab, h, 0)
	pa := perf << pm.PageShift()
	extra, fault := p.CheckStore(0, pa, 1000)
	if fault {
		t.Fatal("store to an owned page raised an exception")
	}
	if extra == 0 {
		t.Fatal("first access must pay the PAB refill")
	}
	// Second store to the same PAT line: PAB hit, parallel lookup,
	// zero extra latency.
	extra, fault = p.CheckStore(0, pa+64, 2000)
	if fault || extra != 0 {
		t.Fatalf("PAB hit should be free in parallel mode: extra=%d fault=%v", extra, fault)
	}
	if p.C.PABChecks != 2 || p.C.PABMisses != 1 {
		t.Fatalf("counters: %d checks %d misses", p.C.PABChecks, p.C.PABMisses)
	}
}

func TestCheckStoreBlocksReliablePages(t *testing.T) {
	cfg, pm, tab, h := rig(t)
	rel := pm.Alloc(2, paging.DomainReliable, 0)
	tab.Update(rel, true)
	p := New(cfg, tab, h, 0)
	pa := rel << pm.PageShift()
	_, fault := p.CheckStore(0, pa, 100)
	if !fault {
		t.Fatal("store to a reliable-only page not blocked")
	}
	if p.C.PABExceptions != 1 {
		t.Fatal("exception not counted")
	}
}

func TestDisabledPABCountsWouldCorrupt(t *testing.T) {
	cfg, pm, tab, h := rig(t)
	rel := pm.Alloc(1, paging.DomainReliable, 0)
	tab.Update(rel, true)
	p := New(cfg, tab, h, 0)
	p.Enabled = false
	extra, fault := p.CheckStore(0, rel<<pm.PageShift(), 100)
	if fault || extra != 0 {
		t.Fatal("disabled PAB must not block or delay")
	}
	if p.WouldCorrupt != 1 {
		t.Fatal("silent corruption not counted")
	}
}

func TestSerialLookupCostsTwoCycles(t *testing.T) {
	cfg, pm, tab, h := rig(t)
	perf := pm.Alloc(1, paging.DomainPerformance, 1)
	tab.Update(perf, false)
	p := New(cfg, tab, h, 0)
	p.Serial = true
	pa := perf << pm.PageShift()
	p.CheckStore(0, pa, 100) // fill
	extra, _ := p.CheckStore(0, pa+8, 200)
	if extra != cfg.PABSerialLat {
		t.Fatalf("serial hit extra = %d, want %d", extra, cfg.PABSerialLat)
	}
}

func TestDemapInvalidation(t *testing.T) {
	cfg, pm, tab, h := rig(t)
	perf := pm.Alloc(1, paging.DomainPerformance, 1)
	tab.Update(perf, false)
	p := New(cfg, tab, h, 0)
	pa := perf << pm.PageShift()
	p.CheckStore(0, pa, 100)
	if p.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", p.Occupancy())
	}
	p.InvalidateForPage(perf)
	if p.Occupancy() != 0 {
		t.Fatal("demap did not invalidate the covering entry")
	}
	// The next check must miss (and re-read the PAT).
	misses := p.C.PABMisses
	p.CheckStore(0, pa, 200)
	if p.C.PABMisses != misses+1 {
		t.Fatal("stale PAB entry survived the demap")
	}
}

func TestPATUpdateInvalidatesLine(t *testing.T) {
	cfg, pm, tab, h := rig(t)
	perf := pm.Alloc(1, paging.DomainPerformance, 1)
	tab.Update(perf, false)
	p := New(cfg, tab, h, 0)
	pa := perf << pm.PageShift()
	if _, fault := p.CheckStore(0, pa, 100); fault {
		t.Fatal("setup store blocked")
	}
	// System software reassigns the page to a reliable application.
	line := tab.Update(perf, true)
	p.InvalidateLine(line)
	if _, fault := p.CheckStore(0, pa, 200); !fault {
		t.Fatal("store allowed after the page became reliable-only")
	}
}

// TestPABAlwaysAgreesWithPAT is the coherence property: after any mix
// of updates and demap invalidations, CheckStore's verdict always
// matches the PAT's current contents.
func TestPABAlwaysAgreesWithPAT(t *testing.T) {
	cfg, pm, tab, h := rig(t)
	base := pm.Alloc(256, paging.DomainPerformance, 1)
	p := New(cfg, tab, h, 0)
	now := sim.Cycle(0)
	err := quick.Check(func(ops []struct {
		Page   uint8
		Toggle bool
	}) bool {
		for _, op := range ops {
			page := base + uint64(op.Page)
			now += 100
			if op.Toggle {
				line := tab.Update(page, !tab.ReliableOnly(page))
				p.InvalidateLine(line)
				continue
			}
			_, fault := p.CheckStore(0, page<<pm.PageShift(), now)
			if fault != tab.ReliableOnly(page) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoverage(t *testing.T) {
	cfg, pm, tab, h := rig(t)
	p := New(cfg, tab, h, 0)
	// 128 entries x 512 pages x 8 KB = 512 MB, as the paper states.
	if got := p.CoveragePages() * uint64(cfg.PageBytes); got != 512<<20 {
		t.Fatalf("coverage = %d MB, want 512", got>>20)
	}
	_ = pm
}
