package sched

import (
	"testing"

	"repro/internal/paging"
	"repro/internal/sim"
	"repro/internal/vcpu"
	"repro/internal/workload"
)

func builder(t testing.TB) (*sim.Config, *paging.PhysMap, *Builder) {
	t.Helper()
	cfg := sim.DefaultConfig()
	pm := paging.NewPhysMap(cfg.PhysMemBytes, cfg.PageBytes)
	return cfg, pm, NewBuilder(cfg, pm, 64)
}

func TestBuildGuestLayout(t *testing.T) {
	_, pm, b := builder(t)
	wl, _ := workload.ByName("oltp")
	g, err := b.Build("g0", wl, 8, vcpu.ModeReliable, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.VCPUs) != 8 {
		t.Fatalf("vcpus = %d", len(g.VCPUs))
	}
	// Shared regions alias; private regions do not.
	v0, v1 := g.VCPUs[0], g.VCPUs[1]
	s0, _ := v0.Space.Translate(0x0000_0300_0000_0000)
	s1, _ := v1.Space.Translate(0x0000_0300_0000_0000)
	if s0 != s1 {
		t.Fatal("shared region not aliased between VCPUs")
	}
	p0, ok0 := v0.Space.Translate(0x0000_0200_0000_0000)
	p1, ok1 := v1.Space.Translate(0x0000_0200_0000_0000)
	if !ok0 || !ok1 || p0 == p1 {
		t.Fatal("private regions alias")
	}
	// Reliable-guest pages are reliable-only in the ownership map.
	if !pm.ReliableOnly(s0 >> pm.PageShift()) {
		t.Fatal("reliable guest's pages are writable in performance mode")
	}
	// Each VCPU has a distinct scratchpad slot and distinct privileged
	// state seed.
	if v0.Scratch == v1.Scratch {
		t.Fatal("scratch slots collide")
	}
	if v0.Reg.Priv == v1.Reg.Priv {
		t.Fatal("privileged state seeds collide")
	}
}

func TestPerformanceGuestWritable(t *testing.T) {
	_, pm, b := builder(t)
	wl, _ := workload.ByName("apache")
	g, err := b.Build("p", wl, 2, vcpu.ModePerformance, 7)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := g.VCPUs[0].Space.Translate(0x0000_0200_0000_0000)
	if pm.ReliableOnly(pa >> pm.PageShift()) {
		t.Fatal("performance guest's private pages must be writable")
	}
}

func TestGuestsIsolated(t *testing.T) {
	_, _, b := builder(t)
	wl, _ := workload.ByName("pmake")
	a, _ := b.Build("a", wl, 2, vcpu.ModePerformance, 1)
	c, _ := b.Build("b", wl, 2, vcpu.ModePerformance, 2)
	pa, _ := a.VCPUs[0].Space.Translate(0x0000_0300_0000_0000)
	pb, _ := c.VCPUs[0].Space.Translate(0x0000_0300_0000_0000)
	if pa == pb {
		t.Fatal("guests share physical memory")
	}
	if a.ID == c.ID {
		t.Fatal("guest ids collide")
	}
}

func TestScratchSlotExhaustion(t *testing.T) {
	cfg := sim.DefaultConfig()
	pm := paging.NewPhysMap(cfg.PhysMemBytes, cfg.PageBytes)
	b := NewBuilder(cfg, pm, 4)
	wl, _ := workload.ByName("apache")
	if _, err := b.Build("big", wl, 8, vcpu.ModePerformance, 1); err == nil {
		t.Fatal("expected scratchpad exhaustion error")
	}
}
