// Package sched is the multicore-virtualization layer the MMM leverages
// (the paper builds on the authors' PACT 2006 overcommitted-VM work):
// guests expose VCPUs, and a thin hardware/firmware layer maps VCPUs
// onto physical cores. VCPUs can be overcommitted — more VCPUs exposed
// than core pairs available — with the surplus paused, which is what
// lets MMM-TP run independent software threads on otherwise-mute
// cores. The consolidated-server gang rotation that used to live here
// is now the timer half of the mode-policy layer (internal/mode's
// rotor, embedded by every policy).
package sched

import (
	"fmt"

	"repro/internal/paging"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vcpu"
	"repro/internal/workload"
)

// Guest is one guest virtual machine (or, in a single-OS system, the
// one operating system): a set of VCPUs sharing code, shared-data and
// kernel regions, with per-VCPU private regions.
type Guest struct {
	ID   int
	Name string
	Mode vcpu.Mode
	WL   *workload.Params

	VCPUs []*vcpu.VCPU
}

// asidCounter hands out unique ASIDs per chip; owned by Builder.
type Builder struct {
	cfg      *sim.Config
	pm       *paging.PhysMap
	nextASID int
	nextID   int
	scratch  []uint64
	nextSlot int
}

// NewBuilder creates a guest builder over the chip's physical memory.
// maxVCPUs bounds the scratchpad reservation.
func NewBuilder(cfg *sim.Config, pm *paging.PhysMap, maxVCPUs int) *Builder {
	return &Builder{
		cfg:     cfg,
		pm:      pm,
		scratch: vcpu.AllocScratch(cfg, pm, maxVCPUs),
	}
}

// Build creates a guest with n VCPUs running the given workload model.
// The guest's code, shared-data, kernel-text and kernel-data regions
// are allocated once and mapped into every VCPU's address space;
// private data is per-VCPU. The domain of every allocation follows the
// guest's reliability mode, which is what the system software encodes
// into the PAT.
func (b *Builder) Build(name string, wl *workload.Params, n int, mode vcpu.Mode, seed uint64) (*Guest, error) {
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	g := &Guest{ID: b.nextID, Name: name, Mode: mode, WL: wl}
	b.nextID++
	gs := trace.NewGuestState(wl)

	domain := paging.DomainReliable
	if mode != vcpu.ModeReliable {
		domain = paging.DomainPerformance
	}

	// Template space owns the shared allocations.
	template := paging.NewSpace(b.nextASID, domain, g.ID, b.pm)
	b.nextASID++
	code := template.MapRegion("code", trace.VACodeBase, wl.CodePages)
	shared := template.MapRegion("shared", trace.VASharedBase, wl.SharedPages)
	osCode := template.MapRegion("oscode", trace.VAOSCodeBase, wl.OSCodePages)
	osData := template.MapRegion("osdata", trace.VAOSDataBase, wl.OSPages)

	for i := 0; i < n; i++ {
		var space *paging.Space
		if i == 0 {
			space = template
		} else {
			space = paging.NewSpace(b.nextASID, domain, g.ID, b.pm)
			b.nextASID++
			space.MapShared("code", trace.VACodeBase, code)
			space.MapShared("shared", trace.VASharedBase, shared)
			space.MapShared("oscode", trace.VAOSCodeBase, osCode)
			space.MapShared("osdata", trace.VAOSDataBase, osData)
		}
		space.MapRegion("priv", trace.VAPrivBase, wl.PrivPages)

		if b.nextSlot >= len(b.scratch) {
			return nil, fmt.Errorf("sched: out of scratchpad slots (max %d VCPUs)", len(b.scratch))
		}
		v := &vcpu.VCPU{
			ID:      b.nextSlot,
			Guest:   g.ID,
			Mode:    mode,
			Space:   space,
			Stream:  trace.NewShared(trace.NewInGuest(wl, seed+uint64(i)*0x9e3779b9, gs)),
			Scratch: b.scratch[b.nextSlot],
		}
		// Seed distinguishable privileged state so corruption is
		// detectable by value comparison.
		for r := range v.Reg.Priv {
			v.Reg.Priv[r] = uint64(v.ID)<<32 | uint64(r)
		}
		b.nextSlot++
		g.VCPUs = append(g.VCPUs, v)
	}
	return g, nil
}
