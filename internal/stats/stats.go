// Package stats provides the measurement machinery used by the
// evaluation: per-VCPU user-instruction commit accounting (the paper's
// "work" metric), sample statistics with 95% confidence intervals
// across repeated runs, and normalization helpers for reproducing the
// paper's normalized figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations from repeated simulation runs with
// different seeds and reports their mean and 95% confidence interval,
// matching the paper's methodology ("we simulate multiple runs and
// report average results with 95% confidence intervals").
type Sample struct {
	xs []float64
}

// Add records one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation (0 if fewer than two
// observations).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean using the Student-t distribution.
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return tCritical95(n-1) * s.StdDev() / math.Sqrt(float64(n))
}

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the sample median (0 if empty).
func (s *Sample) Median() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), s.xs...)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// String formats the sample as "mean ±ci".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4f ±%.4f", s.Mean(), s.CI95())
}

// tCritical95 returns the two-tailed 95% Student-t critical value for
// the given degrees of freedom. Values beyond the table converge to the
// normal quantile 1.96.
func tCritical95(df int) float64 {
	table := []float64{
		0:  0, // unused
		1:  12.706,
		2:  4.303,
		3:  3.182,
		4:  2.776,
		5:  2.571,
		6:  2.447,
		7:  2.365,
		8:  2.306,
		9:  2.262,
		10: 2.228,
		11: 2.201,
		12: 2.179,
		13: 2.160,
		14: 2.145,
		15: 2.131,
		16: 2.120,
		17: 2.110,
		18: 2.101,
		19: 2.093,
		20: 2.086,
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 30:
		return 2.06
	case df < 60:
		return 2.00
	default:
		return 1.96
	}
}

// Ratio returns a/b, or 0 when b is 0; used when normalizing results
// against a baseline configuration.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Wilson returns the 95% Wilson score interval for k successes out of
// n Bernoulli trials. Unlike the normal approximation, the interval
// stays inside [0, 1] and remains meaningful at the proportions
// reliability campaigns care about most — coverage near 100% and SDC
// rates near 0% — where the Wald interval collapses to a point.
func Wilson(k, n uint64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = z95
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - half) / denom
	hi = (center + half) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// z95 is the two-tailed 95% normal quantile shared by the Wilson
// interval and the sequential-stopping budget arithmetic.
const z95 = 1.959963984540054

// WilsonHalfWidth returns half the width of the 95% Wilson interval
// for num successes out of den trials — the precision figure the
// adaptive stopping rule compares against its target. It is the one
// definition of "half-width" in the tree: report columns and the
// sequential-stopping rule must agree on it, so neither recomputes
// (hi-lo)/2 by hand.
func WilsonHalfWidth(num, den uint64) float64 {
	lo, hi := Wilson(num, den)
	return (hi - lo) / 2
}

// WorstCaseTrials returns the smallest trial count n at which the
// 95% Wilson half-width is guaranteed to be at most half regardless
// of the observed proportion. The interval is widest at p=0.5, where
// the half-width is approximately z/(2*sqrt(n+z^2)); solving gives
// n = z^2/(4*half^2) - z^2. This is the sample size a fixed-batch
// design must provision to promise the same precision, and therefore
// the baseline adaptive campaigns report their trial savings against.
func WorstCaseTrials(half float64) uint64 {
	if half <= 0 {
		return 0
	}
	n := z95*z95/(4*half*half) - z95*z95
	if n < 1 {
		return 1
	}
	return uint64(math.Ceil(n))
}

// PercentileSorted returns the p-th percentile (0 < p <= 100) of an
// ascending-sorted sample using the nearest-rank definition, which is
// exact, deterministic and free of interpolation-order ambiguity.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}
