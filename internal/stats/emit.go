package stats

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// Row is one aggregated measurement of a sweep: a (result key, metric)
// cell summarized over its repeated runs. Rows are the machine-readable
// counterpart of Table: campaign aggregation emits them and the JSON /
// CSV writers below serialize them deterministically, so two runs that
// produced the same samples emit byte-identical output.
type Row struct {
	Key    string  `json:"key"`
	Metric string  `json:"metric"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	CI95   float64 `json:"ci95"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// RowOf summarizes a sample into a Row.
func RowOf(key, metric string, s *Sample) Row {
	return Row{
		Key:    key,
		Metric: metric,
		N:      s.N(),
		Mean:   s.Mean(),
		CI95:   s.CI95(),
		Min:    s.Min(),
		Max:    s.Max(),
	}
}

// WriteRowsJSON writes rows as an indented JSON array. Field order is
// fixed by the Row struct and float64 values round-trip exactly, so the
// byte stream is a deterministic function of the rows.
func WriteRowsJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if rows == nil {
		rows = []Row{}
	}
	return enc.Encode(rows)
}

// WriteRowsCSV writes rows as CSV with a header line.
func WriteRowsCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"key", "metric", "n", "mean", "ci95", "min", "max"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range rows {
		rec := []string{r.Key, r.Metric, strconv.Itoa(r.N), f(r.Mean), f(r.CI95), f(r.Min), f(r.Max)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
