package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CoreCounters tallies per-core pipeline events during a run. The
// paper's key diagnostics — window-full cycles, serializing-instruction
// fetch stalls, check-stage wait cycles — are all recorded here so the
// overhead decomposition of Section 5.1 can be reproduced.
type CoreCounters struct {
	Cycles            uint64
	UserCycles        uint64
	OSCycles          uint64
	UserCommits       uint64
	OSCommits         uint64
	Commits           uint64
	Loads             uint64
	Stores            uint64
	Branches          uint64
	Mispredicts       uint64
	SerializingInsts  uint64
	WindowFullCycles  uint64
	SIStallCycles     uint64
	CheckWaitCycles   uint64
	FetchStallCycles  uint64
	StoreCommitStall  uint64
	StoreLatCycles    uint64
	LoadLatCycles     uint64
	TLBMisses         uint64
	TrapEntries       uint64
	TrapReturns       uint64
	IdleCycles        uint64
	ModeSwitches      uint64
	EnterDMRCycles    uint64
	LeaveDMRCycles    uint64
	PABChecks         uint64
	PABMisses         uint64
	PABExceptions     uint64
	FingerprintChecks uint64
	FPMismatches      uint64
	Recoveries        uint64
}

// Add accumulates other into c (used when merging per-core counters
// into chip-level totals).
func (c *CoreCounters) Add(o *CoreCounters) {
	c.Cycles += o.Cycles
	c.UserCycles += o.UserCycles
	c.OSCycles += o.OSCycles
	c.UserCommits += o.UserCommits
	c.OSCommits += o.OSCommits
	c.Commits += o.Commits
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.Branches += o.Branches
	c.Mispredicts += o.Mispredicts
	c.SerializingInsts += o.SerializingInsts
	c.WindowFullCycles += o.WindowFullCycles
	c.SIStallCycles += o.SIStallCycles
	c.CheckWaitCycles += o.CheckWaitCycles
	c.FetchStallCycles += o.FetchStallCycles
	c.StoreCommitStall += o.StoreCommitStall
	c.StoreLatCycles += o.StoreLatCycles
	c.LoadLatCycles += o.LoadLatCycles
	c.TLBMisses += o.TLBMisses
	c.TrapEntries += o.TrapEntries
	c.TrapReturns += o.TrapReturns
	c.IdleCycles += o.IdleCycles
	c.ModeSwitches += o.ModeSwitches
	c.EnterDMRCycles += o.EnterDMRCycles
	c.LeaveDMRCycles += o.LeaveDMRCycles
	c.PABChecks += o.PABChecks
	c.PABMisses += o.PABMisses
	c.PABExceptions += o.PABExceptions
	c.FingerprintChecks += o.FingerprintChecks
	c.FPMismatches += o.FPMismatches
	c.Recoveries += o.Recoveries
}

// UserIPC returns committed user instructions divided by total cycles,
// the paper's per-thread performance metric.
func (c *CoreCounters) UserIPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.UserCommits) / float64(c.Cycles)
}

// CacheCounters tallies memory-hierarchy events.
type CacheCounters struct {
	L1Hits          uint64
	L1Misses        uint64
	L2Hits          uint64
	L2Misses        uint64
	L3Hits          uint64
	C2CTransfers    uint64
	MemAccesses     uint64
	Writebacks      uint64
	Invalidations   uint64
	IncoherentLoads uint64
	FlushedLines    uint64
	FlushWritebacks uint64

	// Latency sums per data source (diagnostics: average miss cost).
	LatL2  uint64
	LatC2C uint64
	LatL3  uint64
	LatMem uint64
}

// Add accumulates other into c.
func (c *CacheCounters) Add(o *CacheCounters) {
	c.L1Hits += o.L1Hits
	c.L1Misses += o.L1Misses
	c.L2Hits += o.L2Hits
	c.L2Misses += o.L2Misses
	c.L3Hits += o.L3Hits
	c.C2CTransfers += o.C2CTransfers
	c.MemAccesses += o.MemAccesses
	c.Writebacks += o.Writebacks
	c.Invalidations += o.Invalidations
	c.IncoherentLoads += o.IncoherentLoads
	c.FlushedLines += o.FlushedLines
	c.FlushWritebacks += o.FlushWritebacks
	c.LatL2 += o.LatL2
	c.LatC2C += o.LatC2C
	c.LatL3 += o.LatL3
	c.LatMem += o.LatMem
}

// Table renders rows of labelled values as a fixed-width text table —
// the output format used by cmd/mmmbench when regenerating the paper's
// tables and figures.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SortRows orders rows lexicographically by their first cell, for
// deterministic output independent of map iteration order.
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i][0] < t.Rows[j][0] })
}
