package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.CI95() != 0 || s.Median() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	for _, x := range []float64{2, 4, 6} {
		s.Add(x)
	}
	if s.Mean() != 4 {
		t.Fatalf("mean = %v, want 4", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 6 || s.Median() != 4 {
		t.Fatalf("min/max/median wrong: %v %v %v", s.Min(), s.Max(), s.Median())
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestSampleCI95(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Add(12)
	s.Add(8)
	s.Add(10)
	// sd = sqrt(8/3) ~= 1.633, se = 0.8165, t(3) = 3.182
	want := 3.182 * math.Sqrt(8.0/3.0) / 2
	if got := s.CI95(); math.Abs(got-want) > 1e-3 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
}

func TestSampleCIShrinks(t *testing.T) {
	// Property: for a fixed spread, more samples give a tighter CI.
	small, large := &Sample{}, &Sample{}
	for i := 0; i < 4; i++ {
		small.Add(float64(i % 2))
	}
	for i := 0; i < 64; i++ {
		large.Add(float64(i % 2))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: n=4 %v vs n=64 %v", small.CI95(), large.CI95())
	}
}

func TestMedianEven(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 9, 3, 7} {
		s.Add(x)
	}
	if s.Median() != 5 {
		t.Fatalf("median = %v, want 5", s.Median())
	}
}

func TestMeanWithinBounds(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		var s Sample
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true // avoid sum overflow, not a property violation
			}
			s.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= lo-1e-9*math.Abs(lo) && m <= hi+1e-9*math.Abs(hi)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4, 2) != 2 {
		t.Fatal("Ratio(4,2) != 2")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio(x,0) should be 0")
	}
}

func TestCountersAdd(t *testing.T) {
	a := CoreCounters{Cycles: 10, UserCommits: 5, Stores: 2}
	b := CoreCounters{Cycles: 1, UserCommits: 2, Stores: 3, FPMismatches: 1}
	a.Add(&b)
	if a.Cycles != 11 || a.UserCommits != 7 || a.Stores != 5 || a.FPMismatches != 1 {
		t.Fatalf("Add gave %+v", a)
	}
	if got := a.UserIPC(); math.Abs(got-7.0/11) > 1e-12 {
		t.Fatalf("UserIPC = %v", got)
	}
}

func TestCacheCountersAdd(t *testing.T) {
	a := CacheCounters{L1Hits: 1, C2CTransfers: 2}
	b := CacheCounters{L1Hits: 3, C2CTransfers: 5, FlushedLines: 7}
	a.Add(&b)
	if a.L1Hits != 4 || a.C2CTransfers != 7 || a.FlushedLines != 7 {
		t.Fatalf("Add gave %+v", a)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bee"}}
	tab.AddRow("x", "1")
	tab.AddRow("longer", "2")
	out := tab.String()
	if !strings.Contains(out, "== T ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "x") || !strings.Contains(lines[4], "longer") {
		t.Fatalf("rows missing:\n%s", out)
	}
}

func TestTableSortRows(t *testing.T) {
	tab := &Table{Columns: []string{"k"}}
	tab.AddRow("zeta")
	tab.AddRow("alpha")
	tab.SortRows()
	if tab.Rows[0][0] != "alpha" {
		t.Fatal("rows not sorted")
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df < 200; df++ {
		v := tCritical95(df)
		if v > prev {
			t.Fatalf("t-critical increased at df=%d: %v > %v", df, v, prev)
		}
		prev = v
	}
	if tCritical95(10_000) != 1.96 {
		t.Fatal("large df should converge to 1.96")
	}
}

func TestWilson(t *testing.T) {
	// Degenerate cases.
	lo, hi := Wilson(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0,0) = [%v,%v], want [0,1]", lo, hi)
	}
	// All successes: the upper bound must include 1 (coverage
	// "statistically indistinguishable from 100%").
	lo, hi = Wilson(20, 20)
	if hi != 1 {
		t.Fatalf("Wilson(20,20) hi = %v, want 1", hi)
	}
	if lo < 0.80 || lo > 0.90 {
		t.Fatalf("Wilson(20,20) lo = %v, want ~0.84", lo)
	}
	// No successes mirrors all successes.
	lo2, hi2 := Wilson(0, 20)
	if lo2 != 0 || math.Abs((1-hi2)-lo) > 1e-12 {
		t.Fatalf("Wilson(0,20) = [%v,%v] not mirror of all-successes", lo2, hi2)
	}
	// Half-half is symmetric around 0.5 and inside (0,1).
	lo, hi = Wilson(10, 20)
	if math.Abs((0.5-lo)-(hi-0.5)) > 1e-12 || lo <= 0 || hi >= 1 {
		t.Fatalf("Wilson(10,20) = [%v,%v]", lo, hi)
	}
}

func TestPercentileSorted(t *testing.T) {
	if got := PercentileSorted(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct{ p, want float64 }{
		{50, 5}, {95, 10}, {99, 10}, {10, 1}, {100, 10},
	} {
		if got := PercentileSorted(xs, tc.p); got != tc.want {
			t.Fatalf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestWilsonHalfWidth(t *testing.T) {
	// The half-width is literally half the Wilson interval, symmetric
	// in successes and failures (coverage and SDC stop identically).
	for _, c := range []struct{ k, n uint64 }{{0, 10}, {5, 10}, {10, 10}, {3, 17}} {
		lo, hi := Wilson(c.k, c.n)
		if got := WilsonHalfWidth(c.k, c.n); got != (hi-lo)/2 {
			t.Errorf("WilsonHalfWidth(%d,%d) = %v, want (hi-lo)/2 = %v", c.k, c.n, got, (hi-lo)/2)
		}
		if a, b := WilsonHalfWidth(c.k, c.n), WilsonHalfWidth(c.n-c.k, c.n); math.Abs(a-b) > 1e-12 {
			t.Errorf("half-width not symmetric: p gives %v, 1-p gives %v", a, b)
		}
	}
	// No data: the vacuous [0,1] interval, half-width 0.5 — an adaptive
	// cell with no exposed faults never claims precision.
	if got := WilsonHalfWidth(0, 0); got != 0.5 {
		t.Fatalf("WilsonHalfWidth(0,0) = %v, want 0.5", got)
	}
	// Extreme proportions converge much faster than p=0.5 — the whole
	// point of sequential stopping.
	if WilsonHalfWidth(20, 20) >= WilsonHalfWidth(10, 20) {
		t.Fatal("p=1 interval not tighter than p=0.5 at equal n")
	}
}

func TestWorstCaseTrials(t *testing.T) {
	for _, half := range []float64{0.2, 0.1, 0.05, 0.01} {
		n := WorstCaseTrials(half)
		// At the returned n, even the widest proportion meets the target...
		if got := WilsonHalfWidth(n/2, n); got > half {
			t.Errorf("WorstCaseTrials(%g) = %d but p=0.5 half-width is %v", half, n, got)
		}
		// ...and n is minimal: one fewer trial misses it.
		if n > 1 {
			if got := WilsonHalfWidth((n-1)/2, n-1); got <= half {
				t.Errorf("WorstCaseTrials(%g) = %d not minimal: n-1 gives %v", half, n, got)
			}
		}
	}
	if WorstCaseTrials(0) != 0 {
		t.Fatal("WorstCaseTrials(0) must be 0 (no finite sample reaches zero width)")
	}
}
