package isa

// Architectural register state sizes. SPARC V9 with register windows
// carries roughly 2.3 KB of architectural state per virtual CPU (the
// figure the paper uses when bounding the dirty scratchpad footprint of
// a mode switch); we model that as general-purpose windows plus a
// privileged register file.
const (
	// NumGPR is the number of general-purpose registers including
	// windowed registers (8 windows x 16 + 32 visible).
	NumGPR = 160
	// NumFPR is the number of floating-point registers.
	NumFPR = 64
	// NumPriv is the number of privileged registers (trap state,
	// condition codes, ASIs, timers, MMU context, ...).
	NumPriv = 64
)

// RegFile is the full architectural register state of one VCPU.
// It is the unit that the mode-transition state machine saves to and
// restores from the scratchpad space, and that the mute core verifies
// against its own redundant copy when a pair enters DMR mode.
type RegFile struct {
	GPR  [NumGPR]uint64
	FPR  [NumFPR]uint64
	Priv [NumPriv]uint64
	PC   uint64
	NPC  uint64
}

// Bytes returns the architectural state size in bytes (~2.3 KB).
func (r *RegFile) Bytes() int {
	return 8 * (NumGPR + NumFPR + NumPriv + 2)
}

// Copy returns a deep copy of the register file.
func (r *RegFile) Copy() RegFile { return *r }

// EqualPriv reports whether the privileged state of two register files
// matches. The mute core performs exactly this check when entering DMR
// mode, to detect privileged-register corruption that occurred while
// the vocal ran unprotected in performance mode.
func (r *RegFile) EqualPriv(o *RegFile) bool {
	return r.Priv == o.Priv
}

// Equal reports whether all architectural state matches.
func (r *RegFile) Equal(o *RegFile) bool {
	return r.GPR == o.GPR && r.FPR == o.FPR && r.Priv == o.Priv &&
		r.PC == o.PC && r.NPC == o.NPC
}

// Hash produces a fingerprint of the register file, used to validate a
// restored state image against the copy saved to the scratchpad.
func (r *RegFile) Hash() uint64 {
	h := uint64(fnvOffset)
	for _, v := range r.GPR {
		h = fnvMix(h, v)
	}
	for _, v := range r.FPR {
		h = fnvMix(h, v)
	}
	h = fnvMix(h, r.PC)
	h = fnvMix(h, r.NPC)
	return r.HashPriv() ^ h
}

// HashPriv fingerprints only the privileged registers.
func (r *RegFile) HashPriv() uint64 {
	h := uint64(fnvOffset)
	for _, v := range r.Priv {
		h = fnvMix(h, v)
	}
	return h
}
