package isa

import (
	"testing"
	"testing/quick"
)

func TestClassLatencies(t *testing.T) {
	if ALU.Latency() != 1 || Div.Latency() <= Mul.Latency() {
		t.Fatal("unexpected latency ordering")
	}
	for c := ALU; c <= Nop; c++ {
		if c.Latency() == 0 {
			t.Fatalf("class %v has zero latency", c)
		}
		if c.String() == "?" {
			t.Fatalf("class %d has no mnemonic", c)
		}
	}
}

func TestIsMem(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() {
		t.Fatal("loads and stores access memory")
	}
	if ALU.IsMem() || Branch.IsMem() || Serializing.IsMem() {
		t.Fatal("non-memory class reports IsMem")
	}
}

func TestFingerprintDeterminism(t *testing.T) {
	in := Inst{Seq: 5, PC: 0x1000, Class: Store, VA: 0xdead0, Result: 42, Taken: true}
	cp := in
	if in.Fingerprint() != cp.Fingerprint() {
		t.Fatal("identical instructions must fingerprint identically")
	}
}

// TestFingerprintSensitivity is the property Reunion's detection relies
// on: flipping any single bit of an instruction's architecturally
// visible outputs changes the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	err := quick.Check(func(seq, pc, va, result uint64, bit uint8) bool {
		in := Inst{Seq: seq, PC: pc, Class: ALU, VA: va, Result: result}
		base := in.Fingerprint()
		in.Result ^= 1 << (bit % 64)
		return in.Fingerprint() != base
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintAddressSensitivity(t *testing.T) {
	err := quick.Check(func(va uint64, bit uint8) bool {
		in := Inst{Seq: 1, PC: 4, Class: Store, VA: va, Result: 7}
		base := in.Fingerprint()
		in.VA ^= 1 << (bit % 64)
		return in.Fingerprint() != base
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCombineFingerprintsOrderSensitive(t *testing.T) {
	a, b := uint64(111), uint64(222)
	ab := CombineFingerprints(CombineFingerprints(0, a), b)
	ba := CombineFingerprints(CombineFingerprints(0, b), a)
	if ab == ba {
		t.Fatal("interval fingerprint should be order sensitive")
	}
}

func TestRegFileSize(t *testing.T) {
	var r RegFile
	if r.Bytes() < 2048 || r.Bytes() > 4096 {
		t.Fatalf("architectural state should be ~2.3KB, got %d bytes", r.Bytes())
	}
}

func TestRegFilePrivComparison(t *testing.T) {
	var a, b RegFile
	a.Priv[3] = 7
	b.Priv[3] = 7
	if !a.EqualPriv(&b) {
		t.Fatal("equal privileged state should compare equal")
	}
	b.Priv[3] ^= 1 << 40
	if a.EqualPriv(&b) {
		t.Fatal("corrupted privileged register not detected")
	}
	if a.HashPriv() == b.HashPriv() {
		t.Fatal("privileged hash insensitive to corruption")
	}
}

func TestRegFileHashCoversAll(t *testing.T) {
	var a RegFile
	base := a.Hash()
	a.GPR[0] = 1
	if a.Hash() == base {
		t.Fatal("hash insensitive to GPR")
	}
	a = RegFile{}
	a.FPR[63] = 1
	if a.Hash() == base {
		t.Fatal("hash insensitive to FPR")
	}
	a = RegFile{}
	a.PC = 4
	if a.Hash() == base {
		t.Fatal("hash insensitive to PC")
	}
}

func TestRegFileCopyIsDeep(t *testing.T) {
	var a RegFile
	a.GPR[5] = 9
	b := a.Copy()
	b.GPR[5] = 1
	if a.GPR[5] != 9 {
		t.Fatal("Copy aliases the original")
	}
	if !a.Equal(&a) {
		t.Fatal("Equal self")
	}
	if a.Equal(&b) {
		t.Fatal("Equal after divergence")
	}
}
