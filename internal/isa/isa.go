// Package isa defines the synthetic SPARC-like instruction set executed
// by the simulator: instruction classes and their execution latencies,
// the architectural register state that must be saved and restored on
// mode transitions, and the result fingerprinting used by Reunion's
// Check stage.
//
// The simulator is trace-driven rather than semantics-driven: what
// matters for the paper's evaluation is each instruction's timing
// behaviour (class, dependences, memory address, privilege level), not
// the values it computes. Values appear only where correctness is
// checked — fingerprints hash the (possibly fault-corrupted) results so
// that redundant execution can detect divergence.
package isa

// Class is the timing class of an instruction.
type Class uint8

const (
	// ALU is a single-cycle integer operation.
	ALU Class = iota
	// Mul is a multi-cycle multiply.
	Mul
	// Div is a long-latency divide.
	Div
	// FP is a floating-point operation.
	FP
	// Branch is a conditional or unconditional control transfer.
	Branch
	// Load reads memory.
	Load
	// Store writes memory. Under sequential consistency a store holds
	// its instruction-window entry until the write-through completes.
	Store
	// Serializing is an instruction that cannot execute out of order:
	// all older instructions must commit before it executes and no
	// younger instruction may fetch until it completes (the paper's
	// SIs: privileged register reads/writes, membars, etc.).
	Serializing
	// TrapEnter transfers control to privileged software (system call,
	// page fault, interrupt). In a single-OS mixed-mode system this
	// triggers an Enter-DMR mode transition.
	TrapEnter
	// TrapReturn returns from privileged software to user code,
	// triggering a Leave-DMR transition in a single-OS system.
	TrapReturn
	// Nop does nothing.
	Nop
)

// String returns the mnemonic of the class.
func (c Class) String() string {
	switch c {
	case ALU:
		return "alu"
	case Mul:
		return "mul"
	case Div:
		return "div"
	case FP:
		return "fp"
	case Branch:
		return "br"
	case Load:
		return "ld"
	case Store:
		return "st"
	case Serializing:
		return "si"
	case TrapEnter:
		return "trap"
	case TrapReturn:
		return "rett"
	case Nop:
		return "nop"
	default:
		return "?"
	}
}

// Latency returns the execution latency of the class, in cycles, not
// counting memory hierarchy time for loads and stores.
func (c Class) Latency() uint64 {
	switch c {
	case ALU, Branch, Nop, TrapEnter, TrapReturn:
		return 1
	case Mul:
		return 3
	case Div:
		return 12
	case FP:
		return 4
	case Load, Store:
		return 1 // address generation; memory time is added separately
	case Serializing:
		return 6 // privileged state access
	default:
		return 1
	}
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// Inst is one dynamic instruction in a thread's stream.
type Inst struct {
	Seq   uint64 // dynamic sequence number within the thread
	PC    uint64 // virtual program-counter address
	Class Class
	VA    uint64 // virtual data address (loads/stores)
	Dep   uint8  // distance (in dynamic instructions) to the producer; 0 = none
	Priv  bool   // executes in privileged (OS/VMM) mode
	Taken bool   // branch outcome (branches)
	Misp  bool   // branch mispredicted (branches)
	// Result is the value the instruction produces. The trace
	// generator fills in a deterministic pseudo-value; fault injection
	// flips bits in it to model computation errors.
	Result uint64
	// FP caches Fingerprint() over the fault-free instruction, computed
	// once at generation: both cores of a DMR pair (and every
	// re-execution after a squash) hash the identical architectural
	// outputs, so the Check stage reads the cache instead of re-hashing.
	// Fault-corrupted executions recompute from the corrupted copy.
	FP uint64
}

// Fingerprint hashes the architecturally visible outputs of the
// instruction — results, branch targets, store addresses and values —
// in the style of Smolens' fingerprinting. Two fault-free cores
// executing the same instruction produce identical fingerprints; any
// single-bit corruption of an output yields a different hash with high
// probability.
func (in *Inst) Fingerprint() uint64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, in.Seq)
	h = fnvMix(h, in.PC)
	h = fnvMix(h, uint64(in.Class))
	h = fnvMix(h, in.VA)
	h = fnvMix(h, in.Result)
	if in.Taken {
		h = fnvMix(h, 1)
	}
	return h
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// CombineFingerprints folds a per-instruction fingerprint into an
// accumulated interval fingerprint. Reunion sends one fingerprint per
// checked interval; accumulating preserves sensitivity to every bit
// and to the order of the instructions.
func CombineFingerprints(acc, fp uint64) uint64 {
	return fnvMix(acc^fnvOffset, fp)
}
