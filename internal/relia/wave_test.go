package relia

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
)

// waveTrialSpec is a small fault-injection configuration shared by the
// wave-splitting tests.
func waveTrialSpec(t *testing.T) TrialSpec {
	t.Helper()
	return TrialSpec{
		Kind: core.KindMMMIPC, Workload: wl(t, "apache"), Seed: 11,
		MeanInterval: 8_000,
		Warmup:       15_000, Measure: 45_000, Timeslice: 15_000,
	}
}

// TestWaveSplitEqualsSingleBatch is the adaptive campaigns' merge
// guarantee: one cell's trials split across wave-shaped batches at
// FirstTrial offsets run exactly the trials a single batch of the same
// total runs, so MergeBatches over the segments equals the one-batch
// aggregate. Only the per-batch log digest differs (it hashes each
// batch's own log stream).
func TestWaveSplitEqualsSingleBatch(t *testing.T) {
	ts := waveTrialSpec(t)
	const total = 6

	whole, err := RunBatch(BatchSpec{Trials: total, Trial: ts})
	if err != nil {
		t.Fatal(err)
	}

	for _, sizes := range [][]int{{2, 2, 2}, {1, 5}, {4, 2}, {3, 1, 2}} {
		var parts []*core.ReliaBatch
		off := 0
		for _, n := range sizes {
			b, err := RunBatch(BatchSpec{Trials: n, FirstTrial: off, Trial: ts})
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, &b)
			off += n
		}
		merged := MergeBatches(parts)

		a, b := whole, *merged
		a.LogDigest, b.LogDigest = "", ""
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if !reflect.DeepEqual(aj, bj) {
			t.Fatalf("split %v diverges from single batch:\nsplit: %s\nwhole: %s", sizes, bj, aj)
		}
	}
}

// TestWaveSplitDeterministicPerSegment: the same wave re-run is
// byte-identical including its digest — the property the campaign
// cache keys on — and distinct offsets produce distinct trials.
func TestWaveSplitDeterministicPerSegment(t *testing.T) {
	ts := waveTrialSpec(t)
	one, err := RunBatch(BatchSpec{Trials: 2, FirstTrial: 2, Trial: ts})
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunBatch(BatchSpec{Trials: 2, FirstTrial: 2, Trial: ts})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, again) {
		t.Fatal("re-run wave diverged from itself")
	}
	other, err := RunBatch(BatchSpec{Trials: 2, FirstTrial: 4, Trial: ts})
	if err != nil {
		t.Fatal(err)
	}
	if one.LogDigest == other.LogDigest {
		t.Fatal("different trial offsets produced the same log digest")
	}

	// FirstTrial zero is the historical single-batch behavior: a batch
	// that declares it explicitly matches one that leaves it zero.
	implicit, err := RunBatch(BatchSpec{Trials: 3, Trial: ts})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := RunBatch(BatchSpec{Trials: 3, FirstTrial: 0, Trial: ts})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(implicit, explicit) {
		t.Fatal("FirstTrial=0 diverges from the implicit zero batch")
	}
}
