package relia

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

// maxEvents bounds the per-trial event buffer; trials are short slices
// with a handful of faults, so the cap exists only to keep a
// pathological configuration from hoarding memory.
const maxEvents = 8192

// resultWindow bounds how far after a result-flip injection a
// fingerprint mismatch may be attributed to it. A pending flip lands
// on the very next executed instruction and is checked within the
// instruction window plus the fingerprint network round trip, so a
// generous bound keeps attribution tight without ever cutting off a
// genuine detection.
const resultWindow = 50_000

// Classifier buffers the chip's fault events during a trial and
// attributes them to the injector's recorded injections afterwards.
type Classifier struct {
	chip    *core.Chip
	events  []core.FaultEvent
	claimed []bool
}

// Attach installs a classifier as the chip's fault observer.
func Attach(chip *core.Chip) *Classifier {
	cls := &Classifier{chip: chip}
	chip.SetFaultObserver(cls.observe)
	return cls
}

func (cls *Classifier) observe(ev core.FaultEvent) {
	if len(cls.events) < maxEvents {
		cls.events = append(cls.events, ev)
	}
}

// claim finds the first unclaimed event matching pred at or after
// cycle from (and before from+window when window > 0), claims it, and
// returns it.
func (cls *Classifier) claim(from sim.Cycle, window sim.Cycle, pred func(core.FaultEvent) bool) (core.FaultEvent, bool) {
	if cls.claimed == nil {
		cls.claimed = make([]bool, maxEvents)
	}
	for i, ev := range cls.events {
		if cls.claimed[i] || ev.Cycle < from {
			continue
		}
		if window > 0 && ev.Cycle >= from+window {
			continue
		}
		if pred(ev) {
			cls.claimed[i] = true
			return ev, true
		}
	}
	return core.FaultEvent{}, false
}

// Classify attributes the buffered events to the ordered injection log
// and returns one classified record per successful injection. Missed
// injection attempts (no viable target) carry no record; callers count
// them from the injector directly.
func (cls *Classifier) Classify(log []fault.Injection, cfg *sim.Config) []Record {
	var out []Record
	for _, in := range log {
		if !in.Hit {
			continue
		}
		rec := Record{Kind: in.Kind, Core: in.Core, Cycle: in.Cycle}
		switch in.Kind {
		case fault.ResultFlip:
			cls.classifyResult(&rec, in)
		case fault.TLBFlip:
			cls.classifyTLB(&rec, in, cfg)
		case fault.PrivRegFlip:
			cls.classifyPrivReg(&rec, in)
		}
		switch rec.Outcome {
		case OutcomeDetectedCorrected:
			rec.Recovery = float64(cfg.RecoveryPenalty)
		case OutcomeDUE:
			rec.Recovery = float64(cfg.MachineCheckPenalty)
		}
		out = append(out, rec)
	}
	return out
}

func samePair(a, b int) bool { return a/2 == b/2 }

// classifyResult: in DMR the corrupted fingerprint mismatches at the
// Check stage (detected-corrected); unprotected, the corruption lands
// silently (SDC); a flip that never reached an execution (core went
// idle) vanished (masked).
func (cls *Classifier) classifyResult(rec *Record, in fault.Injection) {
	if ev, ok := cls.claim(in.Cycle, resultWindow, func(ev core.FaultEvent) bool {
		return ev.Kind == core.EvMismatch && samePair(ev.Core, in.Core)
	}); ok {
		rec.Outcome = OutcomeDetectedCorrected
		rec.Detected, rec.DetectLat = true, ev.Cycle-in.Cycle
		return
	}
	if ev, ok := cls.claim(in.Cycle, 0, func(ev core.FaultEvent) bool {
		return ev.Kind == core.EvSilentResult && ev.Core == in.Core
	}); ok {
		rec.Outcome = OutcomeSDC
		rec.DetectLat = ev.Cycle - in.Cycle
		return
	}
	rec.Outcome = OutcomeMasked
}

// classifyTLB: a corrupted translation consumed by a performance-mode
// store is denied by the PAB (prevented); consumed under DMR it
// diverges the address-bearing fingerprints — once transiently
// (detected-corrected, the entry was refilled or evicted) or
// persistently until the machine check (detected-unrecoverable);
// consumed with the PAB disabled or absent it corrupts silently; never
// consumed, it vanished.
func (cls *Classifier) classifyTLB(rec *Record, in fault.Injection, cfg *sim.Config) {
	if ev, ok := cls.claim(in.Cycle, 0, func(ev core.FaultEvent) bool {
		return ev.Kind == core.EvPABException && ev.Core == in.Core
	}); ok {
		rec.Outcome = OutcomePrevented
		rec.Detected, rec.DetectLat = true, ev.Cycle-in.Cycle
		return
	}
	if ev, ok := cls.claim(in.Cycle, 0, func(ev core.FaultEvent) bool {
		return ev.Kind == core.EvUnrecoverable && samePair(ev.Core, in.Core)
	}); ok {
		// Consume the mismatch burst that escalated to the check, so it
		// cannot be misattributed to a later injection on the pair.
		for {
			if _, more := cls.claim(in.Cycle, 0, func(e2 core.FaultEvent) bool {
				return e2.Kind == core.EvMismatch && samePair(e2.Core, in.Core) && e2.Cycle <= ev.Cycle
			}); !more {
				break
			}
		}
		rec.Outcome = OutcomeDUE
		rec.Detected, rec.DetectLat = true, ev.Cycle-in.Cycle
		return
	}
	if ev, ok := cls.claim(in.Cycle, 0, func(ev core.FaultEvent) bool {
		return ev.Kind == core.EvMismatch && samePair(ev.Core, in.Core)
	}); ok {
		rec.Outcome = OutcomeDetectedCorrected
		rec.Detected, rec.DetectLat = true, ev.Cycle-in.Cycle
		return
	}
	if ev, ok := cls.claim(in.Cycle, 0, func(ev core.FaultEvent) bool {
		return (ev.Kind == core.EvWouldCorrupt || ev.Kind == core.EvCorruptUse) && ev.Core == in.Core
	}); ok {
		rec.Outcome = OutcomeSDC
		rec.DetectLat = ev.Cycle - in.Cycle
		return
	}
	rec.Outcome = OutcomeMasked
}

// classifyPrivReg: the redundant-copy verification at the next
// Enter-DMR catches the divergence (verify-caught); a VCPU that never
// re-enters DMR within the horizon carries latent corrupted privileged
// state — silent data corruption, the exposure a pure performance-mode
// VCPU accepts.
func (cls *Classifier) classifyPrivReg(rec *Record, in fault.Injection) {
	if ev, ok := cls.claim(in.Cycle, 0, func(ev core.FaultEvent) bool {
		return ev.Kind == core.EvVerifyFailure && ev.VCPU == in.VCPU
	}); ok {
		rec.Outcome = OutcomeVerifyCaught
		rec.Detected, rec.DetectLat = true, ev.Cycle-in.Cycle
		return
	}
	rec.Outcome = OutcomeSDC
}
