package relia

import (
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// RateModel maps a fault kind name to its raw fault rate in FIT
// (faults per 10^9 device-hours) before architectural masking or
// protection. The MTTF/FIT rollup multiplies each kind's raw rate by
// the measured probability that one such fault ends as SDC (or DUE).
type RateModel map[string]float64

// DefaultRates is an illustrative raw-rate budget in FIT per structure
// class, in the proportions the soft-error literature attributes to
// combinational logic / latches (result flips), SRAM arrays without
// ECC (TLB entries) and small register files. Callers with real
// technology data substitute their own model; every reporting function
// accepts one.
func DefaultRates() RateModel {
	return RateModel{
		"result-flip":  2000,
		"tlb-flip":     1000,
		"privreg-flip": 200,
	}
}

// Coverage returns a kind's covered and exposed fault counts in a
// batch: exposed faults are the injected faults that did not vanish
// (masked), covered are those detected or prevented before silent
// corruption. Kind "" aggregates every kind.
func Coverage(b *core.ReliaBatch, kind string) (covered, exposed uint64) {
	for _, o := range AllOutcomes() {
		for k := range b.Injected {
			if kind != "" && k != kind {
				continue
			}
			n := b.Outcomes[k+"/"+o.String()]
			if o == OutcomeMasked {
				continue
			}
			exposed += n
			if o.Covered() {
				covered += n
			}
		}
	}
	return covered, exposed
}

// FIT computes the batch's silent-corruption and
// detected-unrecoverable failure rates in FIT under the rate model:
// each kind's raw rate derated by the measured per-fault outcome
// probability (faults that were masked or covered do not fail). Kinds
// with no injected faults contribute nothing — no observation, no
// claim.
func FIT(b *core.ReliaBatch, rates RateModel) (sdcFIT, dueFIT float64) {
	kinds := make([]string, 0, len(b.Injected))
	for k := range b.Injected {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		inj := b.Injected[k]
		if inj == 0 {
			continue
		}
		raw := rates[k]
		sdcFIT += raw * float64(b.Outcomes[k+"/"+OutcomeSDC.String()]) / float64(inj)
		dueFIT += raw * float64(b.Outcomes[k+"/"+OutcomeDUE.String()]) / float64(inj)
	}
	return sdcFIT, dueFIT
}

// MTTFHours converts a FIT rate to mean time to failure in hours;
// a zero rate reports zero (no failures observed — callers render it
// as "no observed failures", not as an MTTF of zero).
func MTTFHours(fit float64) float64 {
	if fit <= 0 {
		return 0
	}
	return 1e9 / fit
}

// Rows renders one aggregation key's merged batch into deterministic
// stats rows: per-kind coverage and SDC proportions with 95% Wilson
// intervals (the interval bounds ride in the Min/Max columns),
// per-kind/outcome counts, detection-latency percentiles, recovery
// cost totals and the MTTF/FIT rollup under the rate model.
func Rows(key string, b *core.ReliaBatch, rates RateModel) []stats.Row {
	var rows []stats.Row
	kinds := make([]string, 0, len(b.Injected))
	for k := range b.Injected {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)

	prop := func(metric string, num, den uint64) stats.Row {
		lo, hi := stats.Wilson(num, den)
		mean := 0.0
		if den > 0 {
			mean = float64(num) / float64(den)
		}
		return stats.Row{
			Key: key, Metric: metric, N: int(den),
			// WilsonHalfWidth is the same (hi-lo)/2 the adaptive stopping
			// rule targets, so a report column and a precision target are
			// always the one definition.
			Mean: mean, CI95: stats.WilsonHalfWidth(num, den), Min: lo, Max: hi,
		}
	}

	for _, k := range kinds {
		covered, exposed := Coverage(b, k)
		rows = append(rows, prop("relia:coverage:"+k, covered, exposed))
		rows = append(rows, prop("relia:sdc:"+k, exposed-covered, exposed))
		for _, o := range AllOutcomes() {
			n := b.Outcomes[k+"/"+o.String()]
			rows = append(rows, stats.Row{
				Key: key, Metric: "relia:outcome:" + k + "/" + o.String(),
				N: b.Trials, Mean: float64(n), Min: float64(n), Max: float64(n),
			})
		}
		if lat := b.DetectLat[k]; len(lat) > 0 {
			for _, p := range []struct {
				name string
				pct  float64
			}{{"p50", 50}, {"p95", 95}, {"p99", 99}} {
				v := stats.PercentileSorted(lat, p.pct)
				rows = append(rows, stats.Row{
					Key: key, Metric: "relia:detect_lat_" + p.name + ":" + k,
					N: len(lat), Mean: v, Min: lat[0], Max: lat[len(lat)-1],
				})
			}
		}
	}

	outs := make([]string, 0, len(b.Recovery))
	for o := range b.Recovery {
		outs = append(outs, o)
	}
	sort.Strings(outs)
	for _, o := range outs {
		rows = append(rows, stats.Row{
			Key: key, Metric: "relia:recovery_cycles:" + o,
			N: b.Trials, Mean: b.Recovery[o], Min: b.Recovery[o], Max: b.Recovery[o],
		})
	}

	sdcFIT, dueFIT := FIT(b, rates)
	total := int(TotalInjected(b))
	rows = append(rows,
		stats.Row{Key: key, Metric: "relia:fit_sdc", N: total, Mean: sdcFIT, Min: sdcFIT, Max: sdcFIT},
		stats.Row{Key: key, Metric: "relia:fit_due", N: total, Mean: dueFIT, Min: dueFIT, Max: dueFIT},
		stats.Row{Key: key, Metric: "relia:mttf_h", N: total, Mean: MTTFHours(sdcFIT), Min: MTTFHours(sdcFIT), Max: MTTFHours(sdcFIT)},
	)
	return rows
}

// MergeBatches folds several batches (the seed axis of one sweep cell)
// into one, with latency samples re-sorted so percentile reporting is
// order-independent.
func MergeBatches(batches []*core.ReliaBatch) *core.ReliaBatch {
	var merged *core.ReliaBatch
	for _, b := range batches {
		if b == nil {
			continue
		}
		if merged == nil {
			merged = &core.ReliaBatch{}
		}
		merged.Merge(b)
	}
	if merged != nil {
		for k := range merged.DetectLat {
			sort.Float64s(merged.DetectLat[k])
		}
	}
	return merged
}
