package relia

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TrialSpec fully describes one Monte Carlo trial: a short derived-seed
// simulation slice with faults injected after a fault-free warmup.
type TrialSpec struct {
	Kind     core.Kind
	Workload *workload.Params
	Seed     uint64

	// Policy names the runtime mode policy the trials run under
	// (internal/mode); empty is the kind's static behavior. Adaptive
	// policies are the reason the taxonomy has a coverage story to
	// tell beyond the static modes.
	Policy string

	// Config, when non-nil, is the chip configuration the trials run
	// under (design knobs like the serial PAB lookup or TSO arrive
	// here); nil uses the paper's default. The spec's own Timeslice
	// still takes precedence, and the caller's value is never mutated.
	Config *sim.Config

	// Kinds restricts the injected manifestations (empty = all);
	// Cores restricts the victim cores (empty = all).
	Kinds []fault.Kind
	Cores []int
	// MeanInterval is the mean cycles between faults; MaxFaults, when
	// positive, bounds the trial to that many injections.
	MeanInterval float64
	MaxFaults    int

	Warmup    sim.Cycle
	Measure   sim.Cycle
	Timeslice sim.Cycle

	ForcePAB    bool
	PABDisabled bool

	// Recycler, when non-nil, recycles cache line arrays across the
	// many short-lived chips a trial batch builds (single-owner; the
	// caller must not share it across concurrent batches).
	Recycler *cache.Recycler

	// Recorder, when non-nil, traces each trial's chip into one shared
	// flight recorder. Trials restart the simulation clock, so events
	// from successive trials overlap in time; RunBatch marks each
	// trial's boundary with a "trial-start" annotation.
	Recorder *obs.Recorder
}

// TrialResult is one trial's classified faults plus its raw log.
type TrialResult struct {
	Records []Record
	Misses  uint64
	Log     []fault.Injection
}

// RunTrial builds the system, warms it up fault-free, then injects and
// classifies faults over the measurement slice.
func RunTrial(spec TrialSpec) (TrialResult, error) {
	if spec.MeanInterval <= 0 {
		return TrialResult{}, fmt.Errorf("relia: trial needs a positive MeanInterval")
	}
	cfg := sim.DefaultConfig()
	if spec.Config != nil {
		cp := *spec.Config
		cfg = &cp
	}
	if spec.Timeslice > 0 {
		cfg.TimesliceCycles = spec.Timeslice
	}
	chip, err := core.NewSystem(core.Options{
		Cfg:         cfg,
		Kind:        spec.Kind,
		Workload:    spec.Workload,
		Seed:        spec.Seed,
		Policy:      spec.Policy,
		ForcePAB:    spec.ForcePAB,
		PABDisabled: spec.PABDisabled,
		Recycler:    spec.Recycler,
		Recorder:    spec.Recorder,
	})
	if err != nil {
		return TrialResult{}, err
	}
	chip.Run(spec.Warmup)

	cls := Attach(chip)
	inj := fault.NewInjector(fault.Plan{
		MeanInterval: spec.MeanInterval,
		Kinds:        spec.Kinds,
		Cores:        spec.Cores,
		MaxFaults:    spec.MaxFaults,
		Seed:         spec.Seed ^ 0x51a17,
	})
	inj.Rebase(chip.Now)
	chip.Injector = inj
	chip.Run(spec.Measure)
	chip.Release()

	return TrialResult{
		Records: cls.Classify(inj.Log, cfg),
		Misses:  inj.Misses,
		Log:     inj.Log,
	}, nil
}

// BatchSpec is a batch of independent trials of one configuration.
// Trial.Seed is the batch base seed; each trial derives its own.
type BatchSpec struct {
	Trials int
	// FirstTrial is the global index of the batch's first trial within
	// its cell. Trial seeds and the log digest use the global index
	// (FirstTrial + t), so splitting one cell's trials across several
	// batches — the adaptive campaigns' wave-shaped increments — runs
	// exactly the trials a single batch of the same total would:
	// MergeBatches over the segments equals the one-batch aggregate.
	// Zero (the whole cell in one batch) reproduces the historical
	// byte-identical behavior.
	FirstTrial int
	Trial      TrialSpec
}

// TrialWindows derives the per-trial simulation windows from a
// campaign scale: the warmup shrinks (protection behavior stabilizes
// long before IPC does), the measurement window divides across trials,
// and the gang timeslice shrinks so mixed-mode trials sample both the
// reliable guest's DMR slices and the performance guest's PAB-guarded
// slices.
func TrialWindows(sc, meas sim.Cycle, trials int) (warmup, measure, timeslice sim.Cycle) {
	if trials < 1 {
		trials = 1
	}
	warmup = sc / 4
	if warmup < 10_000 {
		warmup = 10_000
	}
	if warmup > 40_000 {
		warmup = 40_000
	}
	measure = meas / sim.Cycle(trials)
	if measure < 30_000 {
		measure = 30_000
	}
	if measure > 150_000 {
		measure = 150_000
	}
	timeslice = measure / 3
	if timeslice < 15_000 {
		timeslice = 15_000
	}
	if timeslice > 60_000 {
		timeslice = 60_000
	}
	return warmup, measure, timeslice
}

// RunBatch executes the batch's trials sequentially (trials of one
// batch share nothing, but sequential execution keeps the batch's
// digest and aggregation order deterministic regardless of how many
// batches run concurrently above) and folds them into a ReliaBatch.
func RunBatch(spec BatchSpec) (core.ReliaBatch, error) {
	if spec.Trials < 1 {
		spec.Trials = 1
	}
	batch := core.ReliaBatch{
		Trials:    spec.Trials,
		Injected:  make(map[string]uint64),
		Outcomes:  make(map[string]uint64),
		DetectLat: make(map[string][]float64),
		Recovery:  make(map[string]float64),
	}
	h := sha256.New()
	for t := 0; t < spec.Trials; t++ {
		// The global trial index: seed derivation and the digest lines
		// are keyed on it, never on the batch-local t, so a wave batch
		// at FirstTrial=k runs trial k of the cell bit-for-bit.
		g := spec.FirstTrial + t
		ts := spec.Trial
		ts.Seed = sim.DeriveSeed(spec.Trial.Seed, "relia-trial", strconv.Itoa(g))
		spec.Trial.Recorder.Emit(obs.Event{
			Kind: obs.KindMark, Pair: -1, Core: -1,
			Cause: "trial-start", Arg: int64(g),
		})
		res, err := RunTrial(ts)
		if err != nil {
			return core.ReliaBatch{}, err
		}
		for _, in := range res.Log {
			fmt.Fprintf(h, "%d|%d|%s|%d|%d|%t|%d\n",
				g, in.Seq, in.Kind, in.Core, in.Cycle, in.Hit, in.VCPU)
		}
		batch.Misses += res.Misses
		for _, rec := range res.Records {
			kind := rec.Kind.String()
			batch.Injected[kind]++
			batch.Outcomes[kind+"/"+rec.Outcome.String()]++
			if rec.Detected {
				batch.DetectLat[kind] = append(batch.DetectLat[kind], float64(rec.DetectLat))
			}
			if rec.Recovery > 0 {
				batch.Recovery[rec.Outcome.String()] += rec.Recovery
			}
		}
	}
	for k := range batch.DetectLat {
		sort.Float64s(batch.DetectLat[k])
	}
	batch.LogDigest = hex.EncodeToString(h.Sum(nil))
	return batch, nil
}

// TotalInjected sums a batch's successfully injected faults.
func TotalInjected(b *core.ReliaBatch) uint64 {
	var n uint64
	for _, v := range b.Injected {
		n += v
	}
	return n
}
