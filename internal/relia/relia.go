// Package relia is the Monte Carlo reliability-evaluation engine: it
// runs many short fault-injection trials per configuration, classifies
// every injected fault into a canonical outcome taxonomy by attributing
// the chip's protection-mechanism events (fingerprint mismatches, PAB
// exceptions, Enter-DMR verification catches, machine checks, silent
// corruption) back to individual injections, and aggregates trials
// into coverage rates with Wilson confidence intervals, detection
// latency distributions and MTTF/FIT rollups.
//
// The paper's argument is a reliability-vs-performance trade: PAB
// coverage in performance mode versus Reunion DMR coverage in reliable
// mode. This package turns that argument into measurements: a DMR-mode
// result flip must be detected and corrected with coverage
// statistically indistinguishable from 100%, a performance-mode TLB
// flip must be stopped by the PAB before it corrupts reliable memory,
// and a performance-mode result flip surfaces as silent data
// corruption — the exposure the performance domain accepted.
//
// Everything here is deterministic: trial seeds derive from the batch
// seed via sim.DeriveSeed, events fire synchronously on the simulation
// goroutine, and aggregation iterates in sorted order, so reports are
// byte-identical across reruns and worker-pool parallelism.
package relia

import (
	"repro/internal/fault"
	"repro/internal/sim"
)

// Outcome is the canonical fate of one injected fault.
type Outcome uint8

const (
	// OutcomeDetectedCorrected: Reunion's fingerprint comparison caught
	// the divergence and squash-and-re-execute recovered.
	OutcomeDetectedCorrected Outcome = iota
	// OutcomePrevented: the PAB denied the corrupted store before it
	// reached the L2 — the corruption never became architecturally
	// visible.
	OutcomePrevented
	// OutcomeVerifyCaught: the mute's redundant privileged-register
	// copy exposed the corruption at Enter-DMR verification and the
	// state was restored from the copy.
	OutcomeVerifyCaught
	// OutcomeDUE: detected but unrecoverable — a persistent divergence
	// escalated to a machine check (detected-unrecoverable error).
	OutcomeDUE
	// OutcomeSDC: silent data corruption — the fault became
	// architecturally visible with no mechanism observing it.
	OutcomeSDC
	// OutcomeMasked: the fault vanished without ever being consumed
	// (core idle, corrupted entry evicted or flushed unused).
	OutcomeMasked
)

// AllOutcomes lists the taxonomy in canonical order.
func AllOutcomes() []Outcome {
	return []Outcome{
		OutcomeDetectedCorrected, OutcomePrevented, OutcomeVerifyCaught,
		OutcomeDUE, OutcomeSDC, OutcomeMasked,
	}
}

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeDetectedCorrected:
		return "detected-corrected"
	case OutcomePrevented:
		return "prevented"
	case OutcomeVerifyCaught:
		return "verify-caught"
	case OutcomeDUE:
		return "detected-unrecoverable"
	case OutcomeSDC:
		return "sdc"
	case OutcomeMasked:
		return "masked"
	default:
		return "?"
	}
}

// Covered reports whether the outcome counts toward coverage: the
// fault was detected or stopped before silent corruption. Masked
// faults are excluded from the coverage denominator entirely.
func (o Outcome) Covered() bool {
	switch o {
	case OutcomeDetectedCorrected, OutcomePrevented, OutcomeVerifyCaught, OutcomeDUE:
		return true
	default:
		return false
	}
}

// Record is one classified fault.
type Record struct {
	Kind    fault.Kind
	Core    int
	Cycle   sim.Cycle
	Outcome Outcome
	// Detected reports whether a detection event was attributed; when
	// true, DetectLat is the cycles from injection to that event.
	Detected  bool
	DetectLat sim.Cycle
	// Recovery is the recovery cost in cycles charged by the outcome's
	// mechanism (squash penalty, machine-check latency, ...).
	Recovery float64
}
