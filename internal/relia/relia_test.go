package relia

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/stats"
	"repro/internal/workload"
)

func wl(t testing.TB, name string) *workload.Params {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// outcomeCounts tallies a batch's outcomes for one kind.
func outcomes(b *core.ReliaBatch, kind fault.Kind) map[Outcome]uint64 {
	m := make(map[Outcome]uint64)
	for _, o := range AllOutcomes() {
		if n := b.Outcomes[kind.String()+"/"+o.String()]; n > 0 {
			m[o] = n
		}
	}
	return m
}

func TestOutcomeTaxonomy(t *testing.T) {
	for _, o := range AllOutcomes() {
		if o.String() == "?" {
			t.Fatalf("outcome %d unnamed", o)
		}
	}
	if !OutcomePrevented.Covered() || OutcomeSDC.Covered() || OutcomeMasked.Covered() {
		t.Fatal("coverage classification wrong")
	}
}

// TestDMRResultCoverage is the paper's core reliability claim: result
// corruption under DMR is detected by the fingerprint comparison and
// corrected by squash-and-re-execute — coverage statistically
// indistinguishable from 100%.
func TestDMRResultCoverage(t *testing.T) {
	batch, err := RunBatch(BatchSpec{
		Trials: 4,
		Trial: TrialSpec{
			Kind: core.KindReunion, Workload: wl(t, "apache"), Seed: 11,
			Kinds: []fault.Kind{fault.ResultFlip}, MeanInterval: 15_000,
			Warmup: 20_000, Measure: 60_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	oc := outcomes(&batch, fault.ResultFlip)
	if oc[OutcomeSDC] != 0 || oc[OutcomeDUE] != 0 {
		t.Fatalf("DMR let result corruption escape: %v", oc)
	}
	if oc[OutcomeDetectedCorrected] == 0 {
		t.Fatalf("no detections: %v", oc)
	}
	covered, exposed := Coverage(&batch, "result-flip")
	if covered != exposed || exposed == 0 {
		t.Fatalf("coverage %d/%d", covered, exposed)
	}
	if _, hi := stats.Wilson(covered, exposed); hi != 1 {
		t.Fatalf("Wilson upper bound %v excludes 100%%", hi)
	}
	if len(batch.DetectLat["result-flip"]) != int(oc[OutcomeDetectedCorrected]) {
		t.Fatalf("latency samples %d != detections %d",
			len(batch.DetectLat["result-flip"]), oc[OutcomeDetectedCorrected])
	}
	for _, lat := range batch.DetectLat["result-flip"] {
		if lat < 0 || lat > 50_000 {
			t.Fatalf("implausible detection latency %v", lat)
		}
	}
}

// TestPerformanceModeOutcomes: with every VCPU in performance mode and
// the PAB guarding stores, result flips surface as SDC (nothing checks
// them), TLB flips that threaten non-performance memory are prevented
// by the PAB, and privileged-register flips stay latent (SDC) — the
// exposure the performance domain accepted.
func TestPerformanceModeOutcomes(t *testing.T) {
	run := func(k fault.Kind) *core.ReliaBatch {
		batch, err := RunBatch(BatchSpec{
			Trials: 4,
			Trial: TrialSpec{
				Kind: core.KindNoDMR2X, Workload: wl(t, "apache"), Seed: 11,
				Kinds: []fault.Kind{k}, MeanInterval: 15_000,
				Warmup: 20_000, Measure: 60_000, ForcePAB: true,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return &batch
	}
	oc := outcomes(run(fault.ResultFlip), fault.ResultFlip)
	if oc[OutcomeSDC] == 0 {
		t.Fatalf("performance-mode result flips did not surface as SDC: %v", oc)
	}
	if oc[OutcomeDetectedCorrected] != 0 || oc[OutcomePrevented] != 0 {
		t.Fatalf("phantom detection in unprotected mode: %v", oc)
	}
	oc = outcomes(run(fault.TLBFlip), fault.TLBFlip)
	if oc[OutcomePrevented] == 0 {
		t.Fatalf("PAB never prevented a TLB-flip store: %v", oc)
	}
	oc = outcomes(run(fault.PrivRegFlip), fault.PrivRegFlip)
	if oc[OutcomeVerifyCaught] != 0 || oc[OutcomeSDC] == 0 {
		t.Fatalf("privreg flips in pure performance mode should stay latent SDC: %v", oc)
	}
}

// TestPrivRegVerifyCaught: in the single-OS system every trap enters
// DMR, and the mute's redundant privileged copy exposes a flip
// injected during the preceding user phase.
func TestPrivRegVerifyCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("long warmup; covered by the full suite")
	}
	batch, err := RunBatch(BatchSpec{
		Trials: 2,
		Trial: TrialSpec{
			Kind: core.KindSingleOS, Workload: wl(t, "apache"), Seed: 2,
			Kinds: []fault.Kind{fault.PrivRegFlip}, MeanInterval: 15_000,
			Warmup: 200_000, Measure: 300_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	oc := outcomes(&batch, fault.PrivRegFlip)
	if oc[OutcomeVerifyCaught] == 0 {
		t.Fatalf("Enter-DMR verification never caught a privreg flip: %v", oc)
	}
}

// TestDMRTLBFlipEscalates: a corrupted translation under DMR diverges
// the address-bearing fingerprints persistently; squash-and-retry
// cannot clear it, so the pair machine-checks (detected-unrecoverable)
// and — crucially — the trial keeps making progress afterwards.
func TestDMRTLBFlipEscalates(t *testing.T) {
	batch, err := RunBatch(BatchSpec{
		Trials: 4,
		Trial: TrialSpec{
			Kind: core.KindReunion, Workload: wl(t, "apache"), Seed: 11,
			Kinds: []fault.Kind{fault.TLBFlip}, MeanInterval: 15_000,
			Warmup: 20_000, Measure: 60_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	oc := outcomes(&batch, fault.TLBFlip)
	if oc[OutcomeDUE] == 0 {
		t.Fatalf("no detected-unrecoverable outcomes: %v", oc)
	}
	if oc[OutcomeSDC] != 0 {
		t.Fatalf("TLB corruption escaped DMR silently: %v", oc)
	}
	if batch.Recovery[OutcomeDUE.String()] == 0 {
		t.Fatal("machine checks charged no recovery cycles")
	}
}

// TestBatchDeterminism: the same batch spec must reproduce the exact
// same outcome tallies, latencies, log digest and report rows.
func TestBatchDeterminism(t *testing.T) {
	spec := BatchSpec{
		Trials: 3,
		Trial: TrialSpec{
			Kind: core.KindMMMIPC, Workload: wl(t, "apache"), Seed: 23,
			MeanInterval: 12_000,
			Warmup:       20_000, Measure: 50_000, Timeslice: 16_000,
		},
	}
	a, err := RunBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.LogDigest == "" || a.LogDigest != b.LogDigest {
		t.Fatalf("log digests differ: %s vs %s", a.LogDigest, b.LogDigest)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("batches differ:\n%+v\nvs\n%+v", a, b)
	}
	rowsA := Rows("cell", &a, DefaultRates())
	rowsB := Rows("cell", &b, DefaultRates())
	var bufA, bufB bytes.Buffer
	if err := stats.WriteRowsJSON(&bufA, rowsA); err != nil {
		t.Fatal(err)
	}
	if err := stats.WriteRowsJSON(&bufB, rowsB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("report rows not byte-identical")
	}
}

// TestRowsShape: the emitted rows carry Wilson bounds in Min/Max and a
// coherent MTTF/FIT rollup for a synthetic batch.
func TestRowsShape(t *testing.T) {
	b := &core.ReliaBatch{
		Trials:   2,
		Injected: map[string]uint64{"result-flip": 10},
		Outcomes: map[string]uint64{
			"result-flip/detected-corrected": 7,
			"result-flip/sdc":                2,
			"result-flip/masked":             1,
		},
		DetectLat: map[string][]float64{"result-flip": {10, 20, 30, 40, 50, 60, 70}},
	}
	rows := Rows("cell", b, RateModel{"result-flip": 1000})
	byMetric := map[string]stats.Row{}
	for _, r := range rows {
		byMetric[r.Metric] = r
	}
	cov := byMetric["relia:coverage:result-flip"]
	if cov.N != 9 {
		t.Fatalf("coverage over %d faults, want 9 exposed (masked excluded)", cov.N)
	}
	lo, hi := stats.Wilson(7, 9)
	if cov.Min != lo || cov.Max != hi {
		t.Fatalf("coverage bounds [%v,%v], want Wilson [%v,%v]", cov.Min, cov.Max, lo, hi)
	}
	if got := byMetric["relia:detect_lat_p50:result-flip"].Mean; got != 40 {
		t.Fatalf("p50 = %v, want 40", got)
	}
	// FIT: raw 1000 derated by P(SDC|fault) = 2/10.
	if got := byMetric["relia:fit_sdc"].Mean; got != 200 {
		t.Fatalf("fit_sdc = %v, want 200", got)
	}
	if got := byMetric["relia:mttf_h"].Mean; got != 1e9/200 {
		t.Fatalf("mttf_h = %v, want %v", got, 1e9/200)
	}
}

func TestTrialWindowsClamp(t *testing.T) {
	w, m, s := TrialWindows(400_000, 900_000, 6)
	if w != 40_000 || m != 150_000 || s != 50_000 {
		t.Fatalf("default-scale windows = %d/%d/%d", w, m, s)
	}
	w, m, s = TrialWindows(0, 0, 0)
	if w < 10_000 || m < 30_000 || s < 15_000 {
		t.Fatalf("zero-scale windows not clamped: %d/%d/%d", w, m, s)
	}
}

func TestMergeBatches(t *testing.T) {
	a := &core.ReliaBatch{
		Trials:    1,
		Injected:  map[string]uint64{"tlb-flip": 2},
		Outcomes:  map[string]uint64{"tlb-flip/prevented": 2},
		DetectLat: map[string][]float64{"tlb-flip": {30, 10}},
	}
	b := &core.ReliaBatch{
		Trials:    1,
		Injected:  map[string]uint64{"tlb-flip": 1},
		Outcomes:  map[string]uint64{"tlb-flip/sdc": 1},
		DetectLat: map[string][]float64{"tlb-flip": {20}},
	}
	m := MergeBatches([]*core.ReliaBatch{a, nil, b})
	if m.Trials != 2 || m.Injected["tlb-flip"] != 3 {
		t.Fatalf("merge wrong: %+v", m)
	}
	if got := m.DetectLat["tlb-flip"]; !reflect.DeepEqual(got, []float64{10, 20, 30}) {
		t.Fatalf("merged latencies not sorted: %v", got)
	}
	if MergeBatches([]*core.ReliaBatch{nil, nil}) != nil {
		t.Fatal("all-nil merge should be nil")
	}
}
