// Package reunion implements the Reunion loose lock-stepping DMR scheme
// the paper builds on (Smolens et al., MICRO 2006): a logical
// processing pair of two cores redundantly executing one instruction
// stream. The vocal core implements full coherence; the mute core loads
// through its own private hierarchy incoherently and never exposes new
// values. An added in-order Check stage computes a fingerprint of each
// instruction's outputs, exchanges it with the partner over a dedicated
// 10-cycle network, and releases the instruction for commit only when
// the fingerprints match; a mismatch — whether from a hardware fault or
// from the mute's best-effort incoherent data going stale — squashes
// both pipelines and re-executes, the same recovery as a transient
// fault.
package reunion

import (
	"repro/internal/cpu"
	"repro/internal/interconnect"
	"repro/internal/sim"
)

// ringSize bounds how far either side can run ahead; it needs to cover
// both instruction windows plus slack.
const ringSize = 1024

// record is one side's completion record for one instruction.
type record struct {
	seq   uint64
	done  sim.Cycle
	fp    uint64
	valid bool
}

// Pair is one logical processing pair. It implements cpu.Gate.
type Pair struct {
	cfg  *sim.Config
	link *interconnect.FingerprintLink

	rings [2][ringSize]record

	vocal *cpu.Core
	mute  *cpu.Core

	// Check-stage sleep registrations (cpu.gateSleeper): waiting[s] is
	// set while core s sleeps until the partner completes waitSeq[s].
	// Stale registrations are harmless — waking an already-awake core
	// (or one that re-armed a different sleep) is always safe.
	waitSeq [2]uint64
	waiting [2]bool

	// Repeated-mismatch escalation state: how many times the same
	// sequence number has mismatched in a row. Squash-and-re-execute
	// only recovers transient corruption; a persistent divergence (e.g.
	// a corrupted TLB entry re-translating to the same wrong address)
	// mismatches at the same instruction forever.
	stuckSeq uint64
	stuckN   int

	// Stats
	Checks     uint64
	Mismatches uint64

	// OnMismatch, when non-nil, observes every fingerprint mismatch.
	OnMismatch func(seq uint64, now sim.Cycle)
	// OnUnrecoverable fires when the same instruction mismatches
	// stuckLimit times in a row — the detected-unrecoverable case. The
	// handler (the MMM layer's machine-check path) must repair the
	// divergence source or the pair will fire again.
	OnUnrecoverable func(seq uint64, now sim.Cycle)
}

// stuckLimit is how many consecutive mismatches of one instruction
// escalate from squash-and-retry to a machine check.
const stuckLimit = 4

// NewPair creates a pair gate for the given cores. The cores are not
// reconfigured here; callers (the MMM layer) call Bind/Unbind to enter
// and leave DMR mode.
func NewPair(cfg *sim.Config, vocal, mute *cpu.Core) *Pair {
	return &Pair{
		cfg:   cfg,
		link:  interconnect.NewFingerprintLink(cfg.FingerprintLat),
		vocal: vocal,
		mute:  mute,
	}
}

// Vocal returns the vocal (master) core.
func (p *Pair) Vocal() *cpu.Core { return p.vocal }

// Mute returns the mute (slave) core.
func (p *Pair) Mute() *cpu.Core { return p.mute }

// Bind activates the Check stage on both cores: the vocal stays
// coherent, the mute switches to the incoherent request path. Both
// windows must be drained.
func (p *Pair) Bind() {
	p.reset()
	p.vocal.SetGate(p, 0)
	p.vocal.SetCoherent(true)
	p.mute.SetGate(p, 1)
	p.mute.SetCoherent(false)
}

// Unbind deactivates the Check stage (Leave-DMR). The mute core is
// returned to the coherent path; its incoherent cache contents must be
// flushed by the caller before it runs independent software.
func (p *Pair) Unbind() {
	p.vocal.SetGate(nil, 0)
	p.mute.SetGate(nil, 0)
	p.mute.SetCoherent(true)
	p.reset()
}

func (p *Pair) reset() {
	for s := range p.rings {
		for i := range p.rings[s] {
			p.rings[s][i].valid = false
		}
	}
	p.stuckSeq, p.stuckN = 0, 0
	p.waiting[0], p.waiting[1] = false, false
}

func (p *Pair) core(side int) *cpu.Core {
	if side == 0 {
		return p.vocal
	}
	return p.mute
}

// Complete records that side finished executing seq at cycle done with
// fingerprint fp (cpu.Gate). If the partner core is sleeping until this
// instruction's record arrives, it is woken.
func (p *Pair) Complete(side int, seq uint64, done sim.Cycle, fp uint64) {
	p.rings[side][seq%ringSize] = record{seq: seq, done: done, fp: fp, valid: true}
	if p.waiting[1-side] && p.waitSeq[1-side] == seq {
		p.waiting[1-side] = false
		p.core(1 - side).WakeCheck()
	}
}

// CheckSleep classifies the Check-stage wait for seq on side without
// CommitReady's counter side effects (cpu gateSleeper extension). A
// partner-missing wait registers the core for a wake on the partner's
// Complete.
func (p *Pair) CheckSleep(side int, seq uint64) (sim.Cycle, int) {
	self := &p.rings[side][seq%ringSize]
	other := &p.rings[1-side][seq%ringSize]
	if !self.valid || self.seq != seq {
		return 0, cpu.CheckNoSleep
	}
	if !other.valid || other.seq != seq {
		p.waitSeq[side] = seq
		p.waiting[side] = true
		return 0, cpu.CheckWaitPartner
	}
	if self.fp != other.fp {
		return 0, cpu.CheckNoSleep // the next live poll squashes
	}
	done := self.done
	if other.done > done {
		done = other.done
	}
	return done + p.link.Latency(), cpu.CheckWaitRelease
}

// CreditWait replays the per-poll counters of n slept CommitReady polls
// of a matched-and-waiting-for-the-link instruction (cpu gateSleeper
// extension).
func (p *Pair) CreditWait(n uint64) {
	p.Checks += n
	p.link.Sent += n
}

// CommitReady implements the Check stage (cpu.Gate): instruction seq on
// side may commit once both sides have executed it and the fingerprints
// have crossed the dedicated network and compared equal. A mismatch
// squashes both cores; the instruction re-executes and is re-checked.
func (p *Pair) CommitReady(side int, seq uint64, now sim.Cycle) (sim.Cycle, bool) {
	self := &p.rings[side][seq%ringSize]
	other := &p.rings[1-side][seq%ringSize]
	if !self.valid || self.seq != seq {
		return 0, false
	}
	if !other.valid || other.seq != seq {
		return 0, false // partner has not executed it yet
	}
	p.Checks++
	if self.fp != other.fp {
		// Fingerprint mismatch: detected fault (or stale incoherent
		// data). Instructions from seq onward squash on both cores and
		// re-execute; architected state was never updated. Older
		// instructions already passed their check and may still
		// commit, so their records are preserved.
		p.Mismatches++
		p.vocal.C.FPMismatches++
		if seq == p.stuckSeq {
			p.stuckN++
		} else {
			p.stuckSeq, p.stuckN = seq, 1
		}
		if p.OnMismatch != nil {
			p.OnMismatch(seq, now)
		}
		for s := range p.rings {
			for i := range p.rings[s] {
				if p.rings[s][i].valid && p.rings[s][i].seq >= seq {
					p.rings[s][i].valid = false
				}
			}
		}
		p.vocal.Squash(now, seq)
		p.mute.Squash(now, seq)
		if p.stuckN >= stuckLimit && p.OnUnrecoverable != nil {
			p.stuckSeq, p.stuckN = 0, 0
			p.OnUnrecoverable(seq, now)
		}
		return 0, false
	}
	// The later of the two executions sends its fingerprint; the
	// instruction commits when that fingerprint arrives at the other
	// side.
	done := self.done
	if other.done > done {
		done = other.done
	}
	p.link.Sent++
	return done + p.link.Latency(), true
}
