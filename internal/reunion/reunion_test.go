package reunion

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/paging"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// rig builds a bound pair running one shared workload stream.
func rig(t testing.TB, seed uint64) (*sim.Config, *Pair, *trace.Shared) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	h := cache.New(cfg)
	pm := paging.NewPhysMap(1<<30, cfg.PageBytes)
	sp := paging.NewSpace(1, paging.DomainReliable, 0, pm)
	wl, err := workload.ByName("pmake")
	if err != nil {
		t.Fatal(err)
	}
	sp.MapRegion("code", trace.VACodeBase, wl.CodePages)
	sp.MapRegion("priv", trace.VAPrivBase, wl.PrivPages)
	sp.MapRegion("shared", trace.VASharedBase, wl.SharedPages+uint64(wl.SyncLines)+1)
	sp.MapRegion("oscode", trace.VAOSCodeBase, wl.OSCodePages)
	sp.MapRegion("osdata", trace.VAOSDataBase, wl.OSPages+uint64(wl.SyncLines)+1)

	vocal := cpu.New(0, cfg, h)
	mute := cpu.New(1, cfg, h)
	vocal.SetSpace(sp)
	mute.SetSpace(sp)
	stream := trace.NewShared(trace.New(wl, seed))
	stream.Attach()
	vocal.SetSource(stream.Side(0))
	mute.SetSource(stream.Side(1))
	pair := NewPair(cfg, vocal, mute)
	pair.Bind()
	return cfg, pair, stream
}

func tickPair(p *Pair, from, n sim.Cycle) sim.Cycle {
	for i := sim.Cycle(0); i < n; i++ {
		p.Vocal().Tick(from + i)
		p.Mute().Tick(from + i)
	}
	return from + n
}

// TestFaultFreeLockstep is the fundamental Reunion property: with no
// faults, the pair commits the identical stream with zero fingerprint
// mismatches.
func TestFaultFreeLockstep(t *testing.T) {
	_, pair, _ := rig(t, 5)
	tickPair(pair, 0, 150_000)
	if pair.Mismatches != 0 {
		t.Fatalf("fault-free run produced %d mismatches", pair.Mismatches)
	}
	if pair.Vocal().C.Commits == 0 {
		t.Fatal("pair made no progress")
	}
	// Commit counts differ by at most a window of slack.
	v, m := pair.Vocal().C.Commits, pair.Mute().C.Commits
	diff := int64(v) - int64(m)
	if diff < -256 || diff > 256 {
		t.Fatalf("cores diverged: vocal %d vs mute %d commits", v, m)
	}
	if pair.Checks == 0 {
		t.Fatal("check stage never engaged")
	}
}

// TestCommitGating: the vocal cannot commit an instruction the mute has
// not executed.
func TestCommitGating(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	h := cache.New(cfg)
	pm := paging.NewPhysMap(1<<28, cfg.PageBytes)
	sp := paging.NewSpace(1, paging.DomainReliable, 0, pm)
	sp.MapRegion("code", 0, 16)
	vocal := cpu.New(0, cfg, h)
	mute := cpu.New(1, cfg, h)
	vocal.SetSpace(sp)
	mute.SetSpace(sp)
	pair := NewPair(cfg, vocal, mute)
	// Drive the gate directly: only side 0 completes seq 1.
	pair.Complete(0, 1, 100, 0xabc)
	if _, ok := pair.CommitReady(0, 1, 200); ok {
		t.Fatal("commit allowed before the partner executed")
	}
	pair.Complete(1, 1, 150, 0xabc)
	at, ok := pair.CommitReady(0, 1, 200)
	if !ok {
		t.Fatal("commit refused after both completed")
	}
	if at != 150+cfg.FingerprintLat {
		t.Fatalf("commit time %d, want later-done + fingerprint latency = %d",
			at, 150+cfg.FingerprintLat)
	}
}

func TestMismatchSquashesBoth(t *testing.T) {
	_, pair, _ := rig(t, 9)
	now := tickPair(pair, 0, 30_000)
	// Corrupt the next executed result on the vocal: the fingerprints
	// must diverge, be detected, and recovery must re-execute with no
	// architectural damage.
	pair.Vocal().InjectResultFault(1 << 17)
	tickPair(pair, now, 60_000)
	if pair.Mismatches == 0 {
		t.Fatal("injected corruption was not detected")
	}
	if pair.Vocal().C.Recoveries == 0 || pair.Mute().C.Recoveries == 0 {
		t.Fatal("both cores must squash on a mismatch")
	}
	// Execution continues past the fault.
	if pair.Vocal().C.Commits < 1000 {
		t.Fatalf("pair stalled after recovery: %d commits", pair.Vocal().C.Commits)
	}
}

func TestEveryInjectedFaultDetected(t *testing.T) {
	_, pair, _ := rig(t, 21)
	now := tickPair(pair, 0, 20_000)
	const faults = 5
	for i := 0; i < faults; i++ {
		pair.Mute().InjectResultFault(1 << uint(7+i))
		now = tickPair(pair, now, 30_000)
	}
	if pair.Mismatches < faults {
		t.Fatalf("detected %d of %d injected faults", pair.Mismatches, faults)
	}
}

func TestUnbindRestoresCoherence(t *testing.T) {
	_, pair, _ := rig(t, 3)
	tickPair(pair, 0, 5_000)
	if pair.Mute().Coherent() {
		t.Fatal("bound mute must be incoherent")
	}
	// Drain before unbinding (as the MMM transition machinery does).
	pair.Vocal().HoldFetch()
	pair.Mute().HoldFetch()
	now := sim.Cycle(5_000)
	for !pair.Vocal().Drained() || !pair.Mute().Drained() {
		pair.Vocal().Tick(now)
		pair.Mute().Tick(now)
		now++
		if now > 3_000_000 {
			t.Fatal("pair failed to drain")
		}
	}
	pair.Unbind()
	if !pair.Mute().Coherent() {
		t.Fatal("unbound mute must be coherent")
	}
}

func TestMuteIncoherentFills(t *testing.T) {
	cfg, pair, _ := rig(t, 7)
	tickPair(pair, 0, 100_000)
	_ = cfg
	// The mute's traffic must not have produced directory ownership of
	// lines it alone touched; spot-check: every line the mute's L2
	// holds incoherently is absent from the directory or owned by the
	// vocal.
	h := pairHierarchy(pair)
	bad := 0
	h.L2[1].Walk(func(l *cache.Line) bool {
		if !l.Coherent && h.Dir.Owner(l.Addr) == 1 {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Fatalf("%d incoherent mute lines own directory entries", bad)
	}
}

// pairHierarchy digs the shared hierarchy out of the cores for
// inspection (test-only, via the vocal's constructor wiring).
func pairHierarchy(p *Pair) *cache.Hierarchy {
	return cpuHierarchy(p.Vocal())
}

func cpuHierarchy(c *cpu.Core) *cache.Hierarchy { return c.Hierarchy() }

func TestCheckStageSeqnumAliasesHandled(t *testing.T) {
	cfg := sim.DefaultConfig()
	vocal := cpu.New(0, cfg, cache.New(cfg))
	mute := cpu.New(1, cfg, cache.New(cfg))
	pair := NewPair(cfg, vocal, mute)
	// Two instructions whose sequence numbers alias in the ring must
	// not be confused.
	pair.Complete(0, 1, 10, 111)
	pair.Complete(0, 1+ringSize, 20, 222)
	if _, ok := pair.CommitReady(0, 1, 30); ok {
		t.Fatal("aliased ring slot treated as valid for the old seq")
	}
}
