package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vcpu"
	"repro/internal/workload"
)

// Options configures one simulated system.
type Options struct {
	// Cfg is the chip configuration; nil uses the paper's target
	// multicore (sim.DefaultConfig).
	Cfg *sim.Config
	// Kind selects the system configuration.
	Kind Kind
	// Workload is the application model run by every guest.
	Workload *workload.Params
	// Policy names the runtime mode policy (internal/mode) that decides
	// when pairs couple into DMR and decouple back to performance mode.
	// Empty selects "static": the kind's pre-built plans, rotated at
	// gang timeslice boundaries, byte-identical to the pre-policy
	// implementation.
	Policy string
	// Seed makes the run reproducible; different seeds give the
	// independent runs behind the confidence intervals.
	Seed uint64
	// PABDisabled turns PAB enforcement off (fault-injection ablation:
	// violations are counted, not prevented).
	PABDisabled bool
	// ForcePAB guards performance-mode stores with the PAB even on
	// system kinds that do not enable it by default (the pure
	// performance-mode reliability scenario: NoDMR2X with the MMM's
	// memory protection active).
	ForcePAB bool
	// FaultPlan, when non-nil, runs a fault-injection campaign.
	FaultPlan *fault.Plan
	// Recycler, when non-nil, supplies recycled cache line arrays to
	// the hierarchy; callers that set it must Release the chip when
	// done. Campaign workers use one per worker so thousands of
	// short-lived chips reuse a handful of multi-megabyte arrays.
	Recycler *cache.Recycler
	// Recorder, when non-nil, attaches a flight recorder that traces
	// mode transitions, policy decisions, faults and run-loop bulk
	// steps. Pure observation: it never consumes RNG, never changes
	// event order, and never appears in Metrics, so results are
	// byte-identical with or without it.
	Recorder *obs.Recorder
}

// NewSystem builds a chip configured as one of the paper's evaluated
// systems, with guests created, memory laid out, the PAT initialized,
// and the initial VCPU-to-core mapping applied.
func NewSystem(opts Options) (*Chip, error) {
	cfg := opts.Cfg
	if cfg == nil {
		cfg = sim.DefaultConfig()
	}
	if opts.Workload == nil {
		return nil, fmt.Errorf("core: no workload given")
	}
	c := newChip(cfg, opts.Kind, opts.Recycler)
	c.rec = opts.Recorder
	pairs := cfg.Cores / 2
	b := sched.NewBuilder(cfg, c.PM, 4*cfg.Cores)

	mk := func(name string, n int, mode vcpu.Mode, salt uint64) (*sched.Guest, error) {
		g, err := b.Build(name, opts.Workload, n, mode, opts.Seed^salt)
		if err != nil {
			return nil, err
		}
		c.Guests = append(c.Guests, g)
		return g, nil
	}

	switch opts.Kind {
	case KindNoDMR2X:
		g, err := mk("app", cfg.Cores, vcpu.ModePerformance, 0x2a)
		if err != nil {
			return nil, err
		}
		pl := make(plan, pairs)
		for i := 0; i < pairs; i++ {
			pl[i] = pairPlan{vocal: g.VCPUs[2*i], mute: g.VCPUs[2*i+1]}
		}
		c.groups = []plan{pl}

	case KindNoDMR:
		g, err := mk("app", pairs, vcpu.ModePerformance, 0x2a)
		if err != nil {
			return nil, err
		}
		pl := make(plan, pairs)
		for i := 0; i < pairs; i++ {
			pl[i] = pairPlan{vocal: g.VCPUs[i]}
		}
		c.groups = []plan{pl}

	case KindReunion:
		g, err := mk("app", pairs, vcpu.ModeReliable, 0x2a)
		if err != nil {
			return nil, err
		}
		pl := make(plan, pairs)
		for i := 0; i < pairs; i++ {
			pl[i] = pairPlan{vocal: g.VCPUs[i], dmr: true}
		}
		c.groups = []plan{pl}

	case KindDMRBase, KindMMMIPC, KindMMMTP:
		// Consolidated server: one guest needs reliability, the other
		// needs performance. Both run the same application, as in the
		// paper's methodology.
		rg, err := mk("reliable", pairs, vcpu.ModeReliable, 0x52)
		if err != nil {
			return nil, err
		}
		rPlan := make(plan, pairs)
		for i := 0; i < pairs; i++ {
			rPlan[i] = pairPlan{vocal: rg.VCPUs[i], dmr: true}
		}
		var pPlan plan
		switch opts.Kind {
		case KindDMRBase:
			pg, err := mk("perf", pairs, vcpu.ModeReliable, 0x9f)
			if err != nil {
				return nil, err
			}
			pPlan = make(plan, pairs)
			for i := 0; i < pairs; i++ {
				pPlan[i] = pairPlan{vocal: pg.VCPUs[i], dmr: true}
			}
		case KindMMMIPC:
			pg, err := mk("perf", pairs, vcpu.ModePerformance, 0x9f)
			if err != nil {
				return nil, err
			}
			c.usePAB = true
			pPlan = make(plan, pairs)
			for i := 0; i < pairs; i++ {
				pPlan[i] = pairPlan{vocal: pg.VCPUs[i]}
			}
		case KindMMMTP:
			// The 16-VCPU performance guest is implemented as two
			// co-scheduled 8-VCPU guests running the same application,
			// exactly as the paper's methodology does.
			pg1, err := mk("perf", pairs, vcpu.ModePerformance, 0x9f)
			if err != nil {
				return nil, err
			}
			pg2, err := mk("perf2", pairs, vcpu.ModePerformance, 0xe3)
			if err != nil {
				return nil, err
			}
			c.usePAB = true
			pPlan = make(plan, pairs)
			for i := 0; i < pairs; i++ {
				pPlan[i] = pairPlan{vocal: pg1.VCPUs[i], mute: pg2.VCPUs[i]}
			}
		}
		c.groups = []plan{rPlan, pPlan}

	case KindSingleOS:
		g, err := mk("apps", pairs, vcpu.ModePerfUser, 0x2a)
		if err != nil {
			return nil, err
		}
		c.usePAB = true
		pl := make(plan, pairs)
		for i := 0; i < pairs; i++ {
			pl[i] = pairPlan{vocal: g.VCPUs[i]}
		}
		c.groups = []plan{pl}
		c.installSingleOSHooks()

	default:
		return nil, fmt.Errorf("core: unknown system kind %d", opts.Kind)
	}

	// Publish the finished memory layout to the PAT. The table was
	// created with the bare chip, before the guests above allocated
	// their memory; without this sync every guest page would still
	// read reliable-only and the PAB would deny legitimate
	// performance-mode stores.
	c.PAT.Sync(c.PM)

	if opts.ForcePAB {
		c.usePAB = true
	}
	if opts.PABDisabled {
		for _, p := range c.PABs {
			p.Enabled = false
		}
	}
	if opts.FaultPlan != nil {
		fp := *opts.FaultPlan
		if fp.Seed == 0 {
			fp.Seed = opts.Seed
		}
		c.Injector = fault.NewInjector(fp)
	}

	// Arm the mode policy and apply its initial mapping directly (no
	// transition cost at t=0). The static policy reproduces the
	// pre-policy behavior: group 0 everywhere, rotation at timeslice
	// boundaries on multi-group (consolidated) rosters.
	if err := c.installPolicy(opts.Policy); err != nil {
		return nil, err
	}
	return c, nil
}

// installSingleOSHooks wires the per-trap mode transitions of a
// single-OS mixed-mode system: every entry into privileged code on a
// performance-mode VCPU appropriates the paired core and enters DMR;
// every return to user code leaves it.
func (c *Chip) installSingleOSHooks() {
	enter := func(core *cpu.Core) bool {
		pi := core.ID / 2
		pl := c.curPlan[pi]
		if pl.dmr || pl.vocal == nil || pl.vocal.Mode != vcpu.ModePerfUser {
			return false
		}
		if c.trans[pi] == nil {
			c.startTransition(pi, pairPlan{vocal: pl.vocal, dmr: true}, true, c.Now, "trap-enter")
		}
		return true
	}
	leave := func(core *cpu.Core) bool {
		pi := core.ID / 2
		pl := c.curPlan[pi]
		if !pl.dmr || pl.vocal == nil || pl.vocal.Mode != vcpu.ModePerfUser {
			return false
		}
		if c.trans[pi] == nil {
			c.startTransition(pi, pairPlan{vocal: pl.vocal}, false, c.Now, "trap-return")
		}
		return true
	}
	for _, core := range c.Cores {
		core.OnTrapEnter = enter
		core.OnTrapReturn = leave
	}
}
