package core

import (
	"fmt"

	"repro/internal/mode"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the chip side of the runtime mode-policy seam
// (internal/mode): the chip consults its Policy at scheduling
// boundaries — timer horizons (gang timeslices, utilization sample
// periods, duty-cycle boundaries, escalation decays) and, for
// fault-sensitive policies, protection-mechanism events — and turns
// the returned per-pair assignments into mode transitions through the
// existing Enter-DMR / Leave-DMR machinery.

// PolicyName returns the canonical name of the chip's mode policy.
func (c *Chip) PolicyName() string {
	if c.policy == nil {
		return ""
	}
	return c.policy.Name()
}

// GroupSwitches counts the timer-driven policy decisions that
// reconfigured at least one pair — under the static policy, exactly
// the consolidated-server gang rotations.
func (c *Chip) GroupSwitches() uint64 { return c.groupSwitches }

// installPolicy resolves and arms the chip's mode policy and applies
// its initial assignments directly (no transition cost at t=0).
func (c *Chip) installPolicy(name string) error {
	pol, err := mode.New(name)
	if err != nil {
		return err
	}
	init := pol.Reset(mode.Topology{
		Pairs:     len(c.Pairs),
		Groups:    len(c.groups),
		Timeslice: c.Cfg.TimesliceCycles,
	})
	if len(init) != len(c.Pairs) {
		return fmt.Errorf("core: policy %q returned %d initial assignments for %d pairs",
			pol.Name(), len(init), len(c.Pairs))
	}
	c.policy = pol
	c.polWantsFaults = pol.WantsFaults()
	copy(c.curAsg, init)
	for pi := range init {
		c.applyPlan(pi, c.planFor(init[pi], pi), false)
	}
	c.polNextAt = pol.NextEventAt()
	c.compilePolicy(pol)
	return nil
}

// compilePolicy arms the devirtualized decision path when the policy's
// timer behavior compiles to a mode.Program (static, duty-cycle): timer
// decisions then replay the schedule inline — no Decide call, no
// pairStatus refresh, no per-decision allocations. Single-group static
// programs compile to no decision points at all (polNextAt stays
// sim.Never). The compiled rotor/duty state mirrors the freshly Reset
// policy exactly; policies that want fault events never compile, so
// policyFault always reaches the generic path.
func (c *Chip) compilePolicy(pol mode.Policy) {
	c.polCompiled = false
	sp, ok := pol.(mode.Scheduled)
	if !ok || pol.WantsFaults() {
		return
	}
	prog, ok := sp.Compile(mode.Topology{
		Pairs:     len(c.Pairs),
		Groups:    len(c.groups),
		Timeslice: c.Cfg.TimesliceCycles,
	})
	if !ok {
		return
	}
	c.polProg = prog
	c.polCompiled = true
	c.polActive = 0
	if prog.Groups <= 1 {
		c.polRotAt = sim.Never
	} else {
		c.polRotAt = prog.Slice
	}
	c.polFrom = 1 // cycle 0's duty window was applied by Reset
}

// policyDecideCompiled is the devirtualized timer decision: it replays
// the compiled schedule — gang rotation, then the duty-phase override —
// and applies the uniform assignment through the same per-pair logic as
// the generic path, emitting identical flight-recorder events. The
// golden-row and Run-vs-Tick regressions pin it to policyDecide
// cycle-for-cycle.
//
//mmm:hotpath
func (c *Chip) policyDecideCompiled(now sim.Cycle) {
	prog := &c.polProg
	rotated := false
	if prog.Groups > 1 && now >= c.polRotAt {
		// rotor.due: re-arm relative to the decision cycle, not the
		// nominal boundary (pre-policy semantics).
		c.polActive = (c.polActive + 1) % prog.Groups
		c.polRotAt = now + prog.Slice
		rotated = true
	}
	a := mode.Assignment{Group: c.polActive}
	fire := rotated
	if prog.Period != 0 {
		a.Override = mode.OverrideDecouple
		if now%prog.Period < prog.Window {
			a.Override = mode.OverrideCouple
		}
		c.polFrom = now + 1
		fire = true // every duty boundary decides, rotated or not
	}
	c.polNextAt = c.compiledNextAt()
	if !fire {
		return
	}
	started := false
	for pi := range c.curAsg {
		if c.applyDecision(pi, a, "timer", now) {
			started = true
		}
	}
	if started {
		c.groupSwitches++
	}
}

// compiledNextAt recomputes the compiled schedule's timer horizon: the
// earlier of the next gang rotation and the next duty-phase boundary at
// or after polFrom (mirroring dutyCycle.nextBoundary).
func (c *Chip) compiledNextAt() sim.Cycle {
	at := c.polRotAt
	if c.polProg.Period == 0 {
		return at
	}
	var b sim.Cycle
	pos := c.polFrom % c.polProg.Period
	switch {
	case pos == 0:
		b = c.polFrom
	case pos <= c.polProg.Window:
		b = c.polFrom - pos + c.polProg.Window
	default:
		b = c.polFrom - pos + c.polProg.Period
	}
	if b < at {
		return b
	}
	return at
}

// planFor maps a policy assignment onto a concrete pair plan: the
// roster group's built plan, with the coupling override applied where
// it is applicable. Coupling a plan that is already DMR (or has no
// VCPU) and decoupling one that is already independent are no-ops, so
// policies can issue overrides uniformly across heterogeneous rosters.
func (c *Chip) planFor(a mode.Assignment, pi int) pairPlan {
	if a.Group < 0 || a.Group >= len(c.groups) {
		panic(fmt.Sprintf("core: policy %q assigned pair %d to group %d of %d",
			c.policy.Name(), pi, a.Group, len(c.groups)))
	}
	pl := c.groups[a.Group][pi]
	switch a.Override {
	case mode.OverrideDecouple:
		if pl.dmr {
			return pairPlan{vocal: pl.vocal}
		}
	case mode.OverrideCouple:
		if !pl.dmr && pl.vocal != nil {
			return pairPlan{vocal: pl.vocal, dmr: true}
		}
	}
	return pl
}

// policyDecide runs one decision point: report per-pair status, ask
// the policy, re-read its timer horizon, and start transitions for
// every pair whose plan actually changes. Pairs with a transition in
// flight are skipped — exactly as the pre-policy gang switch skipped
// them — and keep their previous target assignment, so a policy that
// must win re-issues the decision at its next event.
//
//mmm:hotpath
func (c *Chip) policyDecide(ev mode.Event) {
	st := c.pairStatus(ev.Cycle)
	asg := c.policy.Decide(ev, st)
	c.polNextAt = c.policy.NextEventAt()
	if asg == nil {
		return
	}
	if len(asg) != len(c.curAsg) {
		panic(fmt.Sprintf("core: policy %q decided %d assignments for %d pairs",
			c.policy.Name(), len(asg), len(c.curAsg)))
	}
	started := false
	evKind := ev.Kind.String()
	for pi := range asg {
		if c.applyDecision(pi, asg[pi], evKind, ev.Cycle) {
			started = true
		}
	}
	if started && ev.Kind == mode.EvTimer {
		c.groupSwitches++
	}
}

// applyDecision applies one pair's decided assignment — the shared tail
// of the generic and compiled decision paths. Pairs with a transition
// in flight are skipped — exactly as the pre-policy gang switch skipped
// them — and keep their previous target assignment, so a policy that
// must win re-issues the decision at its next event. It reports whether
// a transition started.
func (c *Chip) applyDecision(pi int, a mode.Assignment, evKind string, now sim.Cycle) bool {
	if c.trans[pi] != nil {
		// Switching already; the policy may re-issue later. The flight
		// recorder notes the dropped decision so retries can be
		// distinguished when they finally land.
		if c.rec != nil && a != c.curAsg[pi] {
			c.rec.Emit(obs.Event{
				Kind: obs.KindDecision, Cycle: now,
				Pair: pi, Core: -1,
				Cause: evKind + "/dropped",
				Arg:   int64(a.Group),
			})
			c.polRetry[pi] = true
		}
		return false
	}
	pl := c.planFor(a, pi)
	c.curAsg[pi] = a
	if pl == c.curPlan[pi] {
		return false // inapplicable override or unchanged group
	}
	cause := evKind
	if a.Override != mode.OverrideNone {
		cause += "/" + a.Override.String()
	}
	if c.rec != nil {
		verdict := "/taken"
		if c.polRetry[pi] {
			verdict = "/retried"
			c.polRetry[pi] = false
		}
		c.rec.Emit(obs.Event{
			Kind: obs.KindDecision, Cycle: now,
			Pair: pi, Core: -1,
			Cause: evKind + verdict,
			Arg:   int64(a.Group),
		})
		if a.Override != mode.OverrideNone {
			c.rec.Emit(obs.Event{
				Kind: obs.KindOverride, Cycle: now,
				Pair: pi, Core: -1,
				Cause: a.Override.String(),
			})
		}
	}
	c.startTransition(pi, pl, false, now, cause)
	return true
}

// policyFault forwards one protection event to a fault-sensitive
// policy. It fires synchronously from inside a core's Tick (machine
// checks and PAB exceptions surface mid-cycle, like trap hooks), so
// it marks the bulk-step horizon dirty: the decision may have moved
// the policy's timer while Run was mid-stride.
func (c *Chip) policyFault(kind mode.EventKind, pair int, now sim.Cycle) {
	c.policyDecide(mode.Event{Kind: kind, Pair: pair, Cycle: now})
	c.transDirty = true
}

// pairStatus refreshes the per-pair status scratch for one decision
// point: current assignment and coupling, transition occupancy, and
// commit deltas over the window since the previous decision.
//
//mmm:hotpath
func (c *Chip) pairStatus(now sim.Cycle) []mode.PairStatus {
	window := now - c.polLastAt
	for pi := range c.polStatus {
		vc, mc := c.Cores[2*pi], c.Cores[2*pi+1]
		vCommits, mCommits := vc.C.Commits, mc.C.Commits
		c.polStatus[pi] = mode.PairStatus{
			Assignment:   c.curAsg[pi],
			DMR:          c.curPlan[pi].dmr,
			InTransition: c.trans[pi] != nil,
			VocalCommits: vCommits - c.polLastCommits[2*pi],
			MuteCommits:  mCommits - c.polLastCommits[2*pi+1],
			Window:       window,
			VocalBusy:    !vc.Idle(),
			MuteBusy:     !mc.Idle(),
		}
		c.polLastCommits[2*pi] = vCommits
		c.polLastCommits[2*pi+1] = mCommits
	}
	c.polLastAt = now
	return c.polStatus
}
