package core

import (
	"fmt"

	"repro/internal/mode"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the chip side of the runtime mode-policy seam
// (internal/mode): the chip consults its Policy at scheduling
// boundaries — timer horizons (gang timeslices, utilization sample
// periods, duty-cycle boundaries, escalation decays) and, for
// fault-sensitive policies, protection-mechanism events — and turns
// the returned per-pair assignments into mode transitions through the
// existing Enter-DMR / Leave-DMR machinery.

// PolicyName returns the canonical name of the chip's mode policy.
func (c *Chip) PolicyName() string {
	if c.policy == nil {
		return ""
	}
	return c.policy.Name()
}

// GroupSwitches counts the timer-driven policy decisions that
// reconfigured at least one pair — under the static policy, exactly
// the consolidated-server gang rotations.
func (c *Chip) GroupSwitches() uint64 { return c.groupSwitches }

// installPolicy resolves and arms the chip's mode policy and applies
// its initial assignments directly (no transition cost at t=0).
func (c *Chip) installPolicy(name string) error {
	pol, err := mode.New(name)
	if err != nil {
		return err
	}
	init := pol.Reset(mode.Topology{
		Pairs:     len(c.Pairs),
		Groups:    len(c.groups),
		Timeslice: c.Cfg.TimesliceCycles,
	})
	if len(init) != len(c.Pairs) {
		return fmt.Errorf("core: policy %q returned %d initial assignments for %d pairs",
			pol.Name(), len(init), len(c.Pairs))
	}
	c.policy = pol
	c.polWantsFaults = pol.WantsFaults()
	copy(c.curAsg, init)
	for pi := range init {
		c.applyPlan(pi, c.planFor(init[pi], pi), false)
	}
	c.polNextAt = pol.NextEventAt()
	return nil
}

// planFor maps a policy assignment onto a concrete pair plan: the
// roster group's built plan, with the coupling override applied where
// it is applicable. Coupling a plan that is already DMR (or has no
// VCPU) and decoupling one that is already independent are no-ops, so
// policies can issue overrides uniformly across heterogeneous rosters.
func (c *Chip) planFor(a mode.Assignment, pi int) pairPlan {
	if a.Group < 0 || a.Group >= len(c.groups) {
		panic(fmt.Sprintf("core: policy %q assigned pair %d to group %d of %d",
			c.policy.Name(), pi, a.Group, len(c.groups)))
	}
	pl := c.groups[a.Group][pi]
	switch a.Override {
	case mode.OverrideDecouple:
		if pl.dmr {
			return pairPlan{vocal: pl.vocal}
		}
	case mode.OverrideCouple:
		if !pl.dmr && pl.vocal != nil {
			return pairPlan{vocal: pl.vocal, dmr: true}
		}
	}
	return pl
}

// policyDecide runs one decision point: report per-pair status, ask
// the policy, re-read its timer horizon, and start transitions for
// every pair whose plan actually changes. Pairs with a transition in
// flight are skipped — exactly as the pre-policy gang switch skipped
// them — and keep their previous target assignment, so a policy that
// must win re-issues the decision at its next event.
func (c *Chip) policyDecide(ev mode.Event) {
	st := c.pairStatus(ev.Cycle)
	asg := c.policy.Decide(ev, st)
	c.polNextAt = c.policy.NextEventAt()
	if asg == nil {
		return
	}
	if len(asg) != len(c.curAsg) {
		panic(fmt.Sprintf("core: policy %q decided %d assignments for %d pairs",
			c.policy.Name(), len(asg), len(c.curAsg)))
	}
	started := false
	for pi := range asg {
		if c.trans[pi] != nil {
			// Switching already; the policy may re-issue later. The
			// flight recorder notes the dropped decision so retries can
			// be distinguished when they finally land.
			if c.rec != nil && asg[pi] != c.curAsg[pi] {
				c.rec.Emit(obs.Event{
					Kind: obs.KindDecision, Cycle: ev.Cycle,
					Pair: pi, Core: -1,
					Cause: ev.Kind.String() + "/dropped",
					Arg:   int64(asg[pi].Group),
				})
				c.polRetry[pi] = true
			}
			continue
		}
		pl := c.planFor(asg[pi], pi)
		c.curAsg[pi] = asg[pi]
		if pl == c.curPlan[pi] {
			continue // inapplicable override or unchanged group
		}
		cause := ev.Kind.String()
		if asg[pi].Override != mode.OverrideNone {
			cause += "/" + asg[pi].Override.String()
		}
		if c.rec != nil {
			verdict := "/taken"
			if c.polRetry[pi] {
				verdict = "/retried"
				c.polRetry[pi] = false
			}
			c.rec.Emit(obs.Event{
				Kind: obs.KindDecision, Cycle: ev.Cycle,
				Pair: pi, Core: -1,
				Cause: ev.Kind.String() + verdict,
				Arg:   int64(asg[pi].Group),
			})
			if asg[pi].Override != mode.OverrideNone {
				c.rec.Emit(obs.Event{
					Kind: obs.KindOverride, Cycle: ev.Cycle,
					Pair: pi, Core: -1,
					Cause: asg[pi].Override.String(),
				})
			}
		}
		c.startTransition(pi, pl, false, ev.Cycle, cause)
		started = true
	}
	if started && ev.Kind == mode.EvTimer {
		c.groupSwitches++
	}
}

// policyFault forwards one protection event to a fault-sensitive
// policy. It fires synchronously from inside a core's Tick (machine
// checks and PAB exceptions surface mid-cycle, like trap hooks), so
// it marks the bulk-step horizon dirty: the decision may have moved
// the policy's timer while Run was mid-stride.
func (c *Chip) policyFault(kind mode.EventKind, pair int, now sim.Cycle) {
	c.policyDecide(mode.Event{Kind: kind, Pair: pair, Cycle: now})
	c.transDirty = true
}

// pairStatus refreshes the per-pair status scratch for one decision
// point: current assignment and coupling, transition occupancy, and
// commit deltas over the window since the previous decision.
func (c *Chip) pairStatus(now sim.Cycle) []mode.PairStatus {
	window := now - c.polLastAt
	for pi := range c.polStatus {
		vc, mc := c.Cores[2*pi], c.Cores[2*pi+1]
		vCommits, mCommits := vc.C.Commits, mc.C.Commits
		c.polStatus[pi] = mode.PairStatus{
			Assignment:   c.curAsg[pi],
			DMR:          c.curPlan[pi].dmr,
			InTransition: c.trans[pi] != nil,
			VocalCommits: vCommits - c.polLastCommits[2*pi],
			MuteCommits:  mCommits - c.polLastCommits[2*pi+1],
			Window:       window,
			VocalBusy:    !vc.Idle(),
			MuteBusy:     !mc.Idle(),
		}
		c.polLastCommits[2*pi] = vCommits
		c.polLastCommits[2*pi+1] = mCommits
	}
	c.polLastAt = now
	return c.polStatus
}
