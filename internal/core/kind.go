package core

import (
	"fmt"
	"strconv"
	"strings"
)

// AllKinds lists every evaluated system configuration in Kind order.
func AllKinds() []Kind {
	return []Kind{
		KindNoDMR2X, KindNoDMR, KindReunion, KindDMRBase,
		KindMMMIPC, KindMMMTP, KindSingleOS,
	}
}

// kindAliases maps accepted spellings (lower-cased) onto kinds: the
// canonical String() forms plus the hyphenated command-line aliases
// mmmsim has always accepted.
var kindAliases = map[string]Kind{
	"nodmr2x":   KindNoDMR2X,
	"no-dmr-2x": KindNoDMR2X,
	"nodmr":     KindNoDMR,
	"no-dmr":    KindNoDMR,
	"reunion":   KindReunion,
	"dmrbase":   KindDMRBase,
	"dmr-base":  KindDMRBase,
	"mmm-ipc":   KindMMMIPC,
	"mmm-tp":    KindMMMTP,
	"singleos":  KindSingleOS,
	"single-os": KindSingleOS,
}

// ParseKind resolves a system-kind name, case-insensitively, accepting
// both the canonical String() form ("MMM-IPC") and the hyphenated CLI
// alias ("mmm-ipc"). The error lists the canonical names.
func ParseKind(name string) (Kind, error) {
	if k, ok := kindAliases[strings.ToLower(strings.TrimSpace(name))]; ok {
		return k, nil
	}
	names := make([]string, 0, len(AllKinds()))
	for _, k := range AllKinds() {
		names = append(names, k.String())
	}
	return 0, fmt.Errorf("core: unknown system kind %q (valid: %s)", name, strings.Join(names, ", "))
}

// MarshalJSON renders the kind by name, so campaign jobs, cached
// metrics and the distributed wire protocol read "MMM-IPC" instead of
// a bare enum integer.
func (k Kind) MarshalJSON() ([]byte, error) {
	name := k.String()
	if name == "?" {
		return nil, fmt.Errorf("core: cannot marshal unknown kind %d", int(k))
	}
	return strconv.AppendQuote(nil, name), nil
}

// UnmarshalJSON accepts the named form and, for compatibility with
// pre-v4 job documents, the legacy integer form.
func (k *Kind) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) > 0 && s[0] == '"' {
		name, err := strconv.Unquote(s)
		if err != nil {
			return err
		}
		kk, err := ParseKind(name)
		if err != nil {
			return err
		}
		*k = kk
		return nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("core: kind must be a name or integer: %w", err)
	}
	if Kind(n) < KindNoDMR2X || Kind(n) > KindSingleOS {
		return fmt.Errorf("core: kind %d out of range", n)
	}
	*k = Kind(n)
	return nil
}
