// Package core assembles the paper's contribution: the Mixed-Mode
// Multicore (MMM). It wires the substrates together — cores, Reunion
// pairs, the cache hierarchy, the PAT/PAB protection path, the VCPU
// state engine and the virtualization scheduler — and implements the
// Enter-DMR / Leave-DMR mode-transition state machines, the per-VCPU
// reliability-mode register semantics, and the five evaluated system
// configurations (No DMR 2X, No DMR, Reunion/DMR-base, MMM-IPC,
// MMM-TP) plus the single-OS mixed-mode system.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/mode"
	"repro/internal/obs"
	"repro/internal/pab"
	"repro/internal/paging"
	"repro/internal/reunion"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vcpu"
)

// Kind selects one of the evaluated system configurations.
type Kind int

const (
	// KindNoDMR2X runs independent VCPUs on all cores with no
	// redundancy — the normalization baseline of Figure 5.
	KindNoDMR2X Kind = iota
	// KindNoDMR runs half as many VCPUs on half the cores; the other
	// cores idle.
	KindNoDMR
	// KindReunion pairs all cores and runs every VCPU under DMR — the
	// traditional DMR system.
	KindReunion
	// KindDMRBase is the consolidated-server baseline: both guests run
	// under DMR because one of them needs reliability.
	KindDMRBase
	// KindMMMIPC is the first mixed-mode system: the performance
	// guest's redundant cores idle, improving per-thread IPC.
	KindMMMIPC
	// KindMMMTP is the second mixed-mode system: otherwise-idle
	// redundant cores run additional independent VCPUs of the
	// performance guest, improving throughput.
	KindMMMTP
	// KindSingleOS is the single-OS mixed-mode system of Figure 1:
	// user code of performance applications runs on one core, and
	// every trap into the OS triggers an Enter-DMR transition.
	KindSingleOS
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNoDMR2X:
		return "NoDMR2X"
	case KindNoDMR:
		return "NoDMR"
	case KindReunion:
		return "Reunion"
	case KindDMRBase:
		return "DMRBase"
	case KindMMMIPC:
		return "MMM-IPC"
	case KindMMMTP:
		return "MMM-TP"
	case KindSingleOS:
		return "SingleOS"
	default:
		return "?"
	}
}

// pairPlan describes what one core pair runs during one scheduling
// group: a VCPU executing redundantly (dmr), or up to two independent
// VCPUs (vocal on the even core, mute on the odd core).
type pairPlan struct {
	vocal *vcpu.VCPU
	mute  *vcpu.VCPU
	dmr   bool
}

// plan assigns every pair for one gang-scheduled group.
type plan []pairPlan

// Chip is the full simulated Mixed-Mode Multicore.
type Chip struct {
	Cfg   *sim.Config
	Kind  Kind
	Hier  *cache.Hierarchy
	Cores []*cpu.Core
	Pairs []*reunion.Pair
	Eng   *vcpu.Engine
	PM    *paging.PhysMap
	PAT   *pab.Table
	PABs  []*pab.PAB

	Guests []*sched.Guest
	groups []plan

	Now sim.Cycle

	curPlan []pairPlan
	trans   []*transition

	// Mode-policy seam (internal/mode, driver in policy.go): the
	// policy decides at scheduling boundaries what every pair runs;
	// polNextAt caches its timer horizon for the event-horizon run
	// loop; curAsg tracks each pair's target assignment; the polLast*
	// fields window the per-pair commit deltas between decisions.
	policy         mode.Policy
	polNextAt      sim.Cycle
	polWantsFaults bool
	// Compiled decision schedule (see compilePolicy): when the policy's
	// timer behavior compiles to a mode.Program, timer decisions replay
	// it through these fields instead of calling Decide — polActive /
	// polRotAt mirror the rotor, polFrom the duty phase.
	polCompiled    bool
	polProg        mode.Program
	polActive      int
	polRotAt       sim.Cycle
	polFrom        sim.Cycle
	curAsg         []mode.Assignment
	polStatus      []mode.PairStatus
	polLastCommits []uint64
	polLastAt      sim.Cycle
	groupSwitches  uint64

	// rec is the optional flight recorder (internal/obs): transitions,
	// policy decisions, faults, injections and bulk-step segments are
	// emitted when it is non-nil. It is pure observation — it never
	// consumes RNG or changes event order — so a recorded run's
	// metrics are byte-identical to an unrecorded one, and the
	// disabled path costs one nil check per (rare) emission site.
	rec *obs.Recorder
	// polRetry marks pairs whose policy decision was dropped while a
	// transition was in flight, so the recorder can tell a "retried"
	// decision from a fresh one. Only maintained while rec != nil.
	polRetry []bool

	// Hot-path scheduling state. active lists, in core-ID order, the
	// cores that currently have an instruction stream; parked cores
	// (NoDMR's idle half, MMM-IPC's idle redundant cores, mute cores
	// with no work) are skipped by Tick/Run and their idle-cycle
	// counters settled lazily from idleSince (see creditIdle).
	active     []*cpu.Core
	coreIdle   []bool
	idleSince  []sim.Cycle
	transCount int  // live entries in trans
	drainCount int  // live entries still in phase 0 (draining)
	transDirty bool // a transition started during the current bulk step

	usePAB bool

	Injector *fault.Injector
	// faultBase is the injector's total at the last ResetMeasurement, so
	// Collect reports only measurement-window injections.
	faultBase uint64

	// onFaultEvent observes protection-mechanism activity for
	// reliability evaluation (see observe.go); machineChecks counts
	// unrecoverable-divergence escalations.
	onFaultEvent  func(FaultEvent)
	machineChecks uint64

	// Attribution of committed work to guests across reassignments.
	attrGuest []int // guest occupying each core; -1 idle / duplicate
	attrUser  []uint64
	attrOS    []uint64
	guestUser map[int]uint64
	guestOS   map[int]uint64

	// Transition-cost accounting (Table 1).
	enterN, leaveN        uint64
	enterCycles, leaveCyc uint64
	ctxN, ctxCycles       uint64
}

// newChip builds the hardware: cores, pairs, hierarchy, protection.
func newChip(cfg *sim.Config, kind Kind, rec *cache.Recycler) *Chip {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Chip{
		Cfg:       cfg,
		Kind:      kind,
		Hier:      cache.NewRecycled(cfg, rec),
		PM:        paging.NewPhysMap(cfg.PhysMemBytes, cfg.PageBytes),
		guestUser: make(map[int]uint64),
		guestOS:   make(map[int]uint64),
	}
	c.PAT = pab.NewTable(c.PM)
	for i := 0; i < cfg.Cores; i++ {
		core := cpu.New(i, cfg, c.Hier)
		c.Cores = append(c.Cores, core)
		p := pab.New(cfg, c.PAT, c.Hier, i)
		p.Serial = cfg.PABSerial
		c.PABs = append(c.PABs, p)
		// PAB<->TLB coherence: demaps invalidate the covering entry.
		core.TLB.OnDemap(p.InvalidateForPage)
	}
	for i := 0; i < cfg.Cores/2; i++ {
		c.Pairs = append(c.Pairs, reunion.NewPair(cfg, c.Cores[2*i], c.Cores[2*i+1]))
	}
	c.Eng = vcpu.NewEngine(cfg)
	c.curPlan = make([]pairPlan, cfg.Cores/2)
	c.trans = make([]*transition, cfg.Cores/2)
	c.curAsg = make([]mode.Assignment, cfg.Cores/2)
	c.polStatus = make([]mode.PairStatus, cfg.Cores/2)
	c.polLastCommits = make([]uint64, cfg.Cores)
	c.polRetry = make([]bool, cfg.Cores/2)
	c.polNextAt = sim.Never
	c.active = make([]*cpu.Core, 0, cfg.Cores)
	c.coreIdle = make([]bool, cfg.Cores)
	c.idleSince = make([]sim.Cycle, cfg.Cores)
	for i := range c.coreIdle {
		c.coreIdle[i] = true
	}
	c.attrGuest = make([]int, cfg.Cores)
	c.attrUser = make([]uint64, cfg.Cores)
	c.attrOS = make([]uint64, cfg.Cores)
	for i := range c.attrGuest {
		c.attrGuest[i] = -1
	}
	c.installFaultHooks()
	return c
}

// Tick advances the whole chip by one cycle: scheduler, in-flight mode
// transitions, fault injector, then every active core in ID order.
// Parked cores are skipped; their idle-cycle counters are settled
// lazily (creditIdle), so the counters a Collect observes are identical
// to ticking every core unconditionally.
//
//mmm:hotpath
func (c *Chip) Tick() {
	now := c.Now
	if c.policy != nil && now >= c.polNextAt {
		if c.polCompiled {
			c.policyDecideCompiled(now)
		} else {
			c.policyDecide(mode.Event{Kind: mode.EvTimer, Pair: -1, Cycle: now})
		}
	}
	if c.transCount > 0 {
		for p := range c.trans {
			if c.trans[p] != nil {
				c.stepTransition(p, now)
			}
		}
	}
	if c.Injector != nil {
		if c.rec == nil {
			c.Injector.Tick(now, c)
		} else {
			c.tickInjectorRecorded(now)
		}
	}
	for _, core := range c.active {
		core.Tick(now)
	}
	c.Now++
}

// tickInjectorRecorded runs the injector and emits every attempt it
// logged this cycle to the flight recorder. Kept out of Tick's body so
// the recorder-disabled path stays lean.
func (c *Chip) tickInjectorRecorded(now sim.Cycle) {
	n0 := len(c.Injector.Log)
	c.Injector.Tick(now, c)
	for _, in := range c.Injector.Log[n0:] {
		cause := in.Kind.String()
		if !in.Hit {
			cause += "/miss"
		}
		c.rec.Emit(obs.Event{
			Kind: obs.KindInjection, Cycle: in.Cycle,
			Pair: in.Core / 2, Core: in.Core,
			Cause: cause, Arg: int64(in.Seq),
		})
	}
}

// Run advances the chip n cycles. It is the hot path of every campaign:
// instead of consulting the gang scheduler, the transition engine and
// the fault injector on each of the n cycles, it asks each for its
// event horizon (NextEventAt) and bulk-steps the active cores up to the
// earliest one, falling back to full per-cycle Ticks only at event
// cycles and while a pair is draining toward a mode switch. The
// resulting simulation is cycle-for-cycle identical to n Ticks.
//
//mmm:hotpath
func (c *Chip) Run(n sim.Cycle) {
	end := c.Now + n
	for c.Now < end {
		horizon := c.nextEventAt(end)
		if horizon <= c.Now {
			c.Tick()
			continue
		}
		if len(c.active) == 0 {
			// Whole-chip idle: no core touches any state before the
			// horizon; idle counters are settled lazily.
			if c.rec != nil {
				c.rec.Emit(obs.Event{
					Kind: obs.KindBulkStep, Cycle: c.Now, Dur: horizon - c.Now,
					Pair: -1, Core: -1, Cause: "idle",
				})
			}
			c.Now = horizon
			continue
		}
		start := c.Now
		c.transDirty = false
		for c.Now < horizon {
			now := c.Now
			for _, core := range c.active {
				core.Tick(now)
			}
			c.Now++
			if c.transDirty {
				// A fetch/commit hook queued a mode transition this
				// cycle; it must start draining on the next one.
				break
			}
		}
		if c.rec != nil && c.Now > start {
			c.rec.Emit(obs.Event{
				Kind: obs.KindBulkStep, Cycle: start, Dur: c.Now - start,
				Pair: -1, Core: -1, Arg: int64(len(c.active)),
			})
		}
	}
}

// nextEventAt returns the earliest cycle at which chip-level machinery
// must run again, capped at end. While any pair is still draining
// (transition phase 0) the horizon collapses to now, because drain
// completion is detected by polling the pipelines.
//
//mmm:hotpath
func (c *Chip) nextEventAt(end sim.Cycle) sim.Cycle {
	h := end
	if c.policy != nil && c.polNextAt < h {
		h = c.polNextAt
	}
	if c.Injector != nil {
		if t := c.Injector.NextEventAt(); t < h {
			h = t
		}
	}
	if c.transCount > 0 {
		if c.drainCount > 0 {
			// Drain completion is detected by polling the pipelines, so
			// any pair still in phase 0 collapses the horizon to now —
			// decided by one counter, without walking trans.
			return c.Now
		}
		for _, tr := range c.trans {
			if tr != nil && tr.doneAt < h {
				h = tr.doneAt
			}
		}
	}
	return h
}

// refreshActive rebuilds the active-core list after a plan application
// changed core sources, settling idle spans for cores that woke up and
// opening spans for cores that parked.
func (c *Chip) refreshActive() {
	c.active = c.active[:0]
	for i, core := range c.Cores {
		idle := core.Idle()
		if idle != c.coreIdle[i] {
			if idle {
				c.idleSince[i] = c.Now
			} else {
				c.creditIdle(i)
			}
			c.coreIdle[i] = idle
		}
		if !idle {
			c.active = append(c.active, core)
		}
	}
}

// creditIdle settles a parked core's pending idle span: the cycles it
// would have counted had it been ticked individually.
func (c *Chip) creditIdle(i int) {
	span := c.Now - c.idleSince[i]
	cc := &c.Cores[i].C
	cc.Cycles += span
	cc.IdleCycles += span
	c.idleSince[i] = c.Now
}

// syncIdle settles every parked core's pending idle span so externally
// visible counters match per-cycle ticking.
func (c *Chip) syncIdle() {
	for i := range c.Cores {
		if c.coreIdle[i] {
			c.creditIdle(i)
		}
	}
}

// --- attribution ----------------------------------------------------------

// flushAttribution credits committed work on core to the guest that was
// running it and rebases the counters.
func (c *Chip) flushAttribution(coreID int) {
	g := c.attrGuest[coreID]
	cc := &c.Cores[coreID].C
	if g >= 0 {
		c.guestUser[g] += cc.UserCommits - c.attrUser[coreID]
		c.guestOS[g] += cc.OSCommits - c.attrOS[coreID]
	}
	c.attrUser[coreID] = cc.UserCommits
	c.attrOS[coreID] = cc.OSCommits
}

// setAttribution records which guest's work now commits on the core
// (-1 for idle or for mute cores whose commits duplicate the vocal's).
func (c *Chip) setAttribution(coreID, guest int) {
	c.flushAttribution(coreID)
	c.attrGuest[coreID] = guest
}

// ResetMeasurement zeroes every counter after warmup so reported
// metrics cover only the measurement window.
func (c *Chip) ResetMeasurement() {
	for i, core := range c.Cores {
		c.flushAttribution(i)
		// Settle Check-stage poll debt into the warmup counters being
		// discarded; polls slept through after the reset accrue fresh.
		core.SettleCheckDebt()
		core.C = stats.CoreCounters{}
		c.attrUser[i] = 0
		c.attrOS[i] = 0
		// Parked cores restart their idle span at the window boundary;
		// the span accumulated during warmup dies with the counters.
		c.idleSince[i] = c.Now
	}
	for i := range c.Hier.Ctr {
		c.Hier.Ctr[i] = stats.CacheCounters{}
	}
	for _, p := range c.Pairs {
		p.Checks = 0
		p.Mismatches = 0
	}
	for _, p := range c.PABs {
		p.C = stats.CoreCounters{}
		p.WouldCorrupt = 0
	}
	clear(c.guestUser)
	clear(c.guestOS)
	c.enterN, c.enterCycles = 0, 0
	c.leaveN, c.leaveCyc = 0, 0
	c.ctxN, c.ctxCycles = 0, 0
	c.machineChecks = 0
	c.Eng.VerifyFailures = 0
	// Rebase the policy's utilization windows onto the zeroed commit
	// counters so the next decision's deltas stay well-formed.
	for i := range c.polLastCommits {
		c.polLastCommits[i] = 0
	}
	c.polLastAt = c.Now
	// Rebase the injector tally: warmup-window faults stay injected (the
	// corrupted state is real), but the measured FaultsInjected metric
	// must cover only the measurement window.
	if c.Injector != nil {
		c.faultBase = c.Injector.Total()
	}
}

// Release returns the chip's recycled resources (the hierarchy's line
// arrays) to the recycler it was built with; a no-op otherwise. The
// chip must not be used afterwards.
func (c *Chip) Release() {
	c.Hier.Release()
}

// --- fault.Target ----------------------------------------------------------

// NumCores implements fault.Target.
func (c *Chip) NumCores() int { return c.Cfg.Cores }

// CorruptResult implements fault.Target.
func (c *Chip) CorruptResult(core int, mask uint64) {
	c.Cores[core].InjectResultFault(mask)
}

// CorruptTLB implements fault.Target: flip a physical-page bit of a
// live translation in the core's TLB (a private-region page of the
// running VCPU, the hottest class of store targets).
func (c *Chip) CorruptTLB(core int, bit uint) bool {
	v := c.runningVCPU(core)
	if v == nil {
		return false
	}
	regions := v.Space.Regions()
	for _, r := range regions {
		if r.Name != "priv" {
			continue
		}
		// Try a few pages of the private region.
		for p := uint64(0); p < r.Pages && p < 8; p++ {
			if c.Cores[core].TLB.CorruptEntry(v.Space.ASID, r.VBase+p, bit) {
				return true
			}
		}
	}
	return false
}

// CorruptPrivReg implements fault.Target: flip a privileged-register
// bit of the VCPU running on core. Only effective while the VCPU runs
// unprotected (performance mode); in DMR mode the redundant copy means
// the corruption is detected at the next fingerprint/verify point, so
// we restrict injection to performance-mode cores, the case the paper
// defends against.
func (c *Chip) CorruptPrivReg(core int, reg int, bit uint) (int, bool) {
	pi := core / 2
	if c.curPlan[pi].dmr {
		return -1, false
	}
	v := c.runningVCPU(core)
	if v == nil {
		return -1, false
	}
	v.Reg.Priv[reg%len(v.Reg.Priv)] ^= 1 << (bit % 64)
	return v.ID, true
}

// runningVCPU returns the VCPU whose stream the core is executing.
func (c *Chip) runningVCPU(core int) *vcpu.VCPU {
	pl := c.curPlan[core/2]
	if core%2 == 0 {
		return pl.vocal
	}
	if pl.dmr {
		return pl.vocal
	}
	return pl.mute
}

// RemapPage exercises the paging/PAT/PAB coherence path: the system
// software moves one virtual page of the VCPU onto a fresh physical
// page, demaps the TLB entry on every core, and updates the PAT (which
// invalidates the stale PAB lines).
func (c *Chip) RemapPage(v *vcpu.VCPU, va uint64) error {
	oldP, newP, ok := v.Space.Remap(va)
	if !ok {
		return fmt.Errorf("core: remap of unmapped address %#x", va)
	}
	vpage := va >> c.PM.PageShift()
	for _, core := range c.Cores {
		core.TLB.Demap(v.Space.ASID, vpage)
	}
	line := c.PAT.Update(oldP, true) // old frame reverts to reliable-only
	for _, p := range c.PABs {
		p.InvalidateLine(line)
	}
	line = c.PAT.Update(newP, c.PM.ReliableOnly(newP))
	for _, p := range c.PABs {
		p.InvalidateLine(line)
	}
	return nil
}
