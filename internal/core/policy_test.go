package core

import (
	"reflect"
	"testing"

	"repro/internal/mode"
	"repro/internal/sim"
	"repro/internal/workload"
)

// buildPolicySystem constructs a system running a named mode policy.
func buildPolicySystem(t *testing.T, kind Kind, policy string, timeslice sim.Cycle) *Chip {
	t.Helper()
	wl, err := workload.ByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.TimesliceCycles = timeslice
	chip, err := NewSystem(Options{Cfg: cfg, Kind: kind, Workload: wl, Seed: 11, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

// TestPolicyNameValidation: an unknown policy is rejected at system
// construction, not at the first decision.
func TestPolicyNameValidation(t *testing.T) {
	wl, _ := workload.ByName("apache")
	if _, err := NewSystem(Options{Kind: KindReunion, Workload: wl, Policy: "nope"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	chip, err := NewSystem(Options{Kind: KindReunion, Workload: wl, Policy: "duty-cycle:40000:50"})
	if err != nil {
		t.Fatal(err)
	}
	if chip.PolicyName() != "duty-cycle:40000:50" {
		t.Fatalf("PolicyName = %q", chip.PolicyName())
	}
}

// TestPolicyDecisionDuringTransitionDropped: a policy decision that
// arrives while a pair's mode transition is still in flight must not
// clobber the transition — the pair is skipped (keeping its previous
// target) and the in-flight state machine runs to completion. The
// duty-cycle boundaries here are shorter than an Enter-DMR transition,
// so decisions land mid-flight constantly.
func TestPolicyDecisionDuringTransitionDropped(t *testing.T) {
	chip := buildPolicySystem(t, KindReunion, "duty-cycle:3000:50", 60_000)
	dropped := 0
	var inflight [8]*transition
	for i := 0; i < 60_000; i++ {
		due := chip.polNextAt <= chip.Now
		copy(inflight[:], chip.trans)
		chip.Tick()
		if !due {
			continue
		}
		for pi, tr := range inflight {
			if tr == nil {
				continue
			}
			dropped++
			if chip.trans[pi] != tr && chip.trans[pi] != nil {
				t.Fatalf("cycle %d: pair %d's in-flight transition was replaced by a policy decision", i, pi)
			}
		}
	}
	if dropped == 0 {
		t.Fatal("no decision landed during a transition; shrink the duty period so the edge is exercised")
	}
	// The chip must still be making progress afterwards.
	chip.ResetMeasurement()
	chip.Run(30_000)
	if m := chip.Collect(30_000); m.TotalThroughput() == 0 {
		t.Fatal("chip wedged after dropped decisions")
	}
}

// TestFaultEscalationRetriesDroppedDecision: an escalation event that
// lands while the pair's transition machinery is busy is dropped by
// the chip; the policy's retry timer must re-issue it until the pair
// actually couples.
func TestFaultEscalationRetriesDroppedDecision(t *testing.T) {
	chip := buildPolicySystem(t, KindMMMIPC, "fault-escalation", 5_000)
	// Tick until some pair is mid-transition (the 5k timeslice rotates
	// constantly and transitions cost thousands of cycles).
	pi := -1
	for i := 0; i < 50_000 && pi < 0; i++ {
		chip.Tick()
		for p, tr := range chip.trans {
			if tr != nil {
				pi = p
				break
			}
		}
	}
	if pi < 0 {
		t.Fatal("no transition ever started")
	}
	before := chip.curAsg[pi]
	chip.policyFault(mode.EvPABException, pi, chip.Now)
	if chip.curAsg[pi] != before {
		t.Fatalf("decision for a busy pair was applied immediately: %+v -> %+v", before, chip.curAsg[pi])
	}
	// Within the retry interval plus a transition's worth of cycles,
	// the re-issued decision must land: the pair's target assignment
	// carries the escalation override.
	coupled := false
	for i := 0; i < 60_000 && !coupled; i++ {
		chip.Tick()
		coupled = chip.curAsg[pi].Override == mode.OverrideCouple
	}
	if !coupled {
		t.Fatal("escalation dropped during a transition was never re-issued")
	}
}

// TestGroupSwitchRacesHookTransition: on a single-OS system the trap
// hooks start transitions from inside a core's Tick while the policy's
// timer decisions fire at duty boundaries — the two sources race on
// the same pairs, and the bulk-stepping Run must agree with per-cycle
// Tick exactly (the transDirty path). Fault-free variant of the
// equivalence test, with boundaries tight enough to interleave with
// per-trap switching.
func TestGroupSwitchRacesHookTransition(t *testing.T) {
	const warmup, measure = 20_000, 120_000
	build := func() *Chip {
		return buildPolicySystem(t, KindSingleOS, "duty-cycle:4000:50", 15_000)
	}
	fast := build()
	mFast := fast.Measure(warmup, measure)

	slow := build()
	for i := 0; i < warmup; i++ {
		slow.Tick()
	}
	slow.ResetMeasurement()
	start := slow.Now
	for i := 0; i < measure; i++ {
		slow.Tick()
	}
	mSlow := slow.Collect(slow.Now - start)

	if !reflect.DeepEqual(mFast, mSlow) {
		t.Errorf("hook/policy race diverged between Run and Tick:\nfast: %+v\nslow: %+v", mFast, mSlow)
	}
	if mFast.EnterN == 0 {
		t.Fatal("no transitions at all; the race was not exercised")
	}
}

// TestParseKindRoundTrip: every kind's String form parses back to the
// kind, case-insensitively, as do the CLI aliases; unknown names list
// the valid ones.
func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	aliases := map[string]Kind{
		"no-dmr-2x": KindNoDMR2X, "no-dmr": KindNoDMR, "reunion": KindReunion,
		"dmr-base": KindDMRBase, "mmm-ipc": KindMMMIPC, "MMM-TP": KindMMMTP,
		"single-os": KindSingleOS, "SingleOS": KindSingleOS,
	}
	for s, want := range aliases {
		if got, err := ParseKind(s); err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestKindJSONRoundTrip: kinds marshal by name and unmarshal from both
// the name and the legacy integer form.
func TestKindJSONRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		data, err := k.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalJSON(data); err != nil || back != k {
			t.Errorf("round trip %v via %s: %v, %v", k, data, back, err)
		}
	}
	var legacy Kind
	if err := legacy.UnmarshalJSON([]byte("4")); err != nil || legacy != KindMMMIPC {
		t.Errorf("legacy integer form: %v, %v", legacy, nil)
	}
	if err := legacy.UnmarshalJSON([]byte("99")); err == nil {
		t.Error("out-of-range integer accepted")
	}
	if _, err := Kind(99).MarshalJSON(); err == nil {
		t.Error("unknown kind marshaled")
	}
}
