package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testCfg() *sim.Config {
	cfg := sim.DefaultConfig()
	cfg.TimesliceCycles = 60_000
	return cfg
}

func buildSystem(t testing.TB, kind Kind, opts ...func(*Options)) *Chip {
	t.Helper()
	wl, err := workload.ByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Cfg: testCfg(), Kind: kind, Workload: wl, Seed: 7}
	for _, f := range opts {
		f(&o)
	}
	chip, err := NewSystem(o)
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func TestKindStrings(t *testing.T) {
	for k := KindNoDMR2X; k <= KindSingleOS; k++ {
		if k.String() == "?" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}

func TestAllSystemsMakeProgress(t *testing.T) {
	for k := KindNoDMR2X; k <= KindSingleOS; k++ {
		chip := buildSystem(t, k)
		m := chip.Measure(30_000, 120_000)
		if m.TotalThroughput() == 0 {
			t.Errorf("%v: no user instructions committed", k)
		}
		if m.Mismatches != 0 {
			t.Errorf("%v: %d fingerprint mismatches in a fault-free run", k, m.Mismatches)
		}
	}
}

func TestNoDMR2XUsesAllCores(t *testing.T) {
	chip := buildSystem(t, KindNoDMR2X)
	chip.Run(50_000)
	for i, c := range chip.Cores {
		if c.Idle() {
			t.Fatalf("core %d idle in NoDMR2X", i)
		}
	}
}

func TestNoDMRIdlesHalf(t *testing.T) {
	chip := buildSystem(t, KindNoDMR)
	chip.Run(50_000)
	idle := 0
	for _, c := range chip.Cores {
		if c.Idle() {
			idle++
		}
	}
	if idle != chip.Cfg.Cores/2 {
		t.Fatalf("%d idle cores, want %d", idle, chip.Cfg.Cores/2)
	}
}

func TestReunionPairsAllCores(t *testing.T) {
	chip := buildSystem(t, KindReunion)
	chip.Run(50_000)
	for i, c := range chip.Cores {
		if c.Idle() {
			t.Fatalf("core %d idle under Reunion", i)
		}
		wantCoherent := i%2 == 0
		if c.Coherent() != wantCoherent {
			t.Fatalf("core %d coherence = %v", i, c.Coherent())
		}
	}
	// Mute commits never count toward guest work.
	chip.ResetMeasurement()
	chip.Run(50_000)
	m := chip.Collect(50_000)
	var vocalCommits uint64
	for i := 0; i < chip.Cfg.Cores; i += 2 {
		vocalCommits += chip.Cores[i].C.UserCommits
	}
	if m.GuestUser["app"] > vocalCommits {
		t.Fatal("mute commits leaked into guest throughput")
	}
}

func TestGangSwitchesGuests(t *testing.T) {
	chip := buildSystem(t, KindMMMIPC)
	m := chip.Measure(60_000, 360_000)
	if m.GuestUser["reliable"] == 0 || m.GuestUser["perf"] == 0 {
		t.Fatalf("a guest starved: %v", m.GuestUser)
	}
	if m.EnterN == 0 || m.LeaveN == 0 {
		t.Fatalf("no mode transitions at timeslice boundaries: enter=%d leave=%d", m.EnterN, m.LeaveN)
	}
}

func TestMMMTPRunsExtraVCPUs(t *testing.T) {
	chip := buildSystem(t, KindMMMTP)
	m := chip.Measure(60_000, 360_000)
	if n := m.GuestVCPUs["perf"]; n != chip.Cfg.Cores {
		t.Fatalf("MMM-TP performance bucket has %d VCPUs, want %d", n, chip.Cfg.Cores)
	}
	// The paper's key throughput claim, qualitatively: MMM-TP's
	// performance guest outproduces MMM-IPC's. This needs timeslices
	// long enough to amortize the Leave-DMR flush — the mute-side
	// VCPUs restart with an empty L2 every performance slice (the
	// paper gang-schedules 3M-cycle slices for the same reason).
	long := func(o *Options) {
		cfg := testCfg()
		cfg.TimesliceCycles = 250_000
		o.Cfg = cfg
	}
	tpChip := buildSystem(t, KindMMMTP, long)
	mt := tpChip.Measure(250_000, 1_000_000)
	ipcChip := buildSystem(t, KindMMMIPC, long)
	mi := ipcChip.Measure(250_000, 1_000_000)
	if mt.Throughput("perf") <= mi.Throughput("perf") {
		t.Fatalf("MMM-TP perf throughput %.0f <= MMM-IPC %.0f",
			mt.Throughput("perf"), mi.Throughput("perf"))
	}
}

func TestMMMTPFlushesOnLeave(t *testing.T) {
	chip := buildSystem(t, KindMMMTP)
	m := chip.Measure(60_000, 300_000)
	if m.Cache.FlushedLines == 0 {
		t.Fatal("MMM-TP never ran the Leave-DMR flush")
	}
	if m.LeaveN == 0 || m.LeaveAvg < float64(chip.Cfg.L2Lines()) {
		t.Fatalf("Leave-DMR cost %f should be dominated by the %d-line flush",
			m.LeaveAvg, chip.Cfg.L2Lines())
	}
	if m.EnterN == 0 || m.EnterAvg >= m.LeaveAvg {
		t.Fatalf("Enter (%f) should be much cheaper than Leave (%f)", m.EnterAvg, m.LeaveAvg)
	}
}

func TestSingleOSTransitionsPerTrap(t *testing.T) {
	chip := buildSystem(t, KindSingleOS)
	m := chip.Measure(50_000, 400_000)
	if m.EnterN == 0 || m.LeaveN == 0 {
		t.Fatalf("no per-trap transitions: enter=%d leave=%d", m.EnterN, m.LeaveN)
	}
	// During the run, OS work must execute in DMR: fingerprint checks
	// happened.
	if m.Checks == 0 {
		t.Fatal("OS phases did not run redundantly")
	}
	if m.TotalThroughput() == 0 {
		t.Fatal("no progress")
	}
}

func TestSingleOSNeverRunsPrivilegedUnprotected(t *testing.T) {
	chip := buildSystem(t, KindSingleOS)
	// Tick manually and assert the invariant the whole design exists
	// for: no OS instruction commits on an unpaired (performance-mode)
	// core.
	chip.Run(30_000)
	var osBefore [16]uint64
	for i, c := range chip.Cores {
		osBefore[i] = c.C.OSCommits
	}
	for i := 0; i < 50_000; i++ {
		chip.Tick()
		for pi := range chip.curPlan {
			if chip.curPlan[pi].dmr {
				continue
			}
			vc := chip.Cores[2*pi]
			if vc.C.OSCommits > osBefore[2*pi] && chip.trans[pi] == nil {
				t.Fatalf("cycle %d: pair %d committed OS work outside DMR", i, pi)
			}
		}
		for i, c := range chip.Cores {
			osBefore[i] = c.C.OSCommits
		}
	}
}

func TestPABProtectsAgainstTLBFaults(t *testing.T) {
	plan := &fault.Plan{MeanInterval: 5_000, Kinds: []fault.Kind{fault.TLBFlip}}
	chip := buildSystem(t, KindMMMIPC, func(o *Options) { o.FaultPlan = plan })
	m := chip.Measure(50_000, 400_000)
	if m.FaultsInjected == 0 {
		t.Skip("no faults landed on live TLB entries")
	}
	if m.PABExceptions == 0 {
		t.Fatalf("%d TLB faults injected but the PAB never fired", m.FaultsInjected)
	}
	if m.WouldCorrupt != 0 {
		t.Fatal("violations bypassed an enabled PAB")
	}
}

func TestDisabledPABAllowsCorruption(t *testing.T) {
	plan := &fault.Plan{MeanInterval: 5_000, Kinds: []fault.Kind{fault.TLBFlip}}
	chip := buildSystem(t, KindMMMIPC, func(o *Options) {
		o.FaultPlan = plan
		o.PABDisabled = true
	})
	m := chip.Measure(50_000, 400_000)
	if m.FaultsInjected == 0 {
		t.Skip("no faults landed")
	}
	if m.WouldCorrupt == 0 {
		t.Fatal("disabled PAB recorded no would-be corruption")
	}
	if m.PABExceptions != 0 {
		t.Fatal("disabled PAB raised exceptions")
	}
}

func TestPrivRegCorruptionCaughtOnEnter(t *testing.T) {
	plan := &fault.Plan{MeanInterval: 20_000, Kinds: []fault.Kind{fault.PrivRegFlip}}
	chip := buildSystem(t, KindSingleOS, func(o *Options) { o.FaultPlan = plan })
	m := chip.Measure(50_000, 500_000)
	if m.FaultsInjected == 0 {
		t.Skip("no privileged-register faults landed")
	}
	if m.VerifyFailures == 0 {
		t.Fatal("privileged corruption never caught by Enter-DMR verification")
	}
}

func TestResultFaultsDetectedInDMR(t *testing.T) {
	plan := &fault.Plan{MeanInterval: 30_000, Kinds: []fault.Kind{fault.ResultFlip}}
	chip := buildSystem(t, KindReunion, func(o *Options) { o.FaultPlan = plan })
	m := chip.Measure(50_000, 300_000)
	if m.FaultsInjected == 0 {
		t.Skip("no faults injected")
	}
	if m.Mismatches == 0 {
		t.Fatal("result corruption in DMR mode never detected")
	}
	if m.TotalThroughput() == 0 {
		t.Fatal("system did not survive recovery")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Metrics {
		chip := buildSystem(t, KindReunion)
		return chip.Measure(30_000, 100_000)
	}
	a, b := run(), run()
	if a.TotalThroughput() != b.TotalThroughput() || a.Checks != b.Checks {
		t.Fatalf("identical configurations diverged: %v vs %v commits",
			a.TotalThroughput(), b.TotalThroughput())
	}
}

func TestRemapPageKeepsPABCoherent(t *testing.T) {
	chip := buildSystem(t, KindMMMIPC)
	chip.Run(120_000) // let the perf guest run (second timeslice)
	// Pick a perf-guest VCPU and remap one of its private pages.
	var target = chip.Guests[1].VCPUs[0]
	va := uint64(0x0000_0200_0000_0000)
	if err := chip.RemapPage(target, va); err != nil {
		t.Fatal(err)
	}
	pa, ok := target.Space.Translate(va)
	if !ok {
		t.Fatal("page lost after remap")
	}
	// The new frame must be writable by the perf guest per the PAT.
	if chip.PAT.ReliableOnly(pa >> chip.PM.PageShift()) {
		t.Fatal("PAT not updated for the remapped page")
	}
	chip.Run(50_000)
}

func TestSerialPABWiring(t *testing.T) {
	// The IPC impact of the serial lookup is a statistical result
	// (exp.PABStudy / BenchmarkPABLatency); here we verify the
	// mechanism is wired: the serial configuration reaches every
	// core's PAB and the checks actually happen in performance mode,
	// while the reliable guest stays within noise of the parallel
	// configuration.
	base := buildSystem(t, KindMMMIPC)
	mb := base.Measure(60_000, 300_000)
	serial := buildSystem(t, KindMMMIPC, func(o *Options) {
		cfg := testCfg()
		cfg.PABSerial = true
		o.Cfg = cfg
	})
	for i, p := range serial.PABs {
		if !p.Serial {
			t.Fatalf("PAB %d not serial", i)
		}
	}
	ms := serial.Measure(60_000, 300_000)
	if ms.PABChecks == 0 || mb.PABChecks == 0 {
		t.Fatal("PAB never consulted in performance mode")
	}
	relDelta := ms.UserIPC("reliable") / mb.UserIPC("reliable")
	if relDelta < 0.85 || relDelta > 1.15 {
		t.Fatalf("serial PAB perturbed the reliable guest: ratio %.3f", relDelta)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewSystem(Options{Kind: KindNoDMR}); err == nil {
		t.Fatal("missing workload accepted")
	}
	wl, _ := workload.ByName("apache")
	if _, err := NewSystem(Options{Kind: Kind(99), Workload: wl}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := Metrics{
		Cycles:     1000,
		GuestUser:  map[string]uint64{"app": 500},
		GuestVCPUs: map[string]int{"app": 5},
	}
	if got := m.UserIPC("app"); got != 0.1 {
		t.Fatalf("UserIPC = %v", got)
	}
	if m.UserIPC("missing") != 0 {
		t.Fatal("missing bucket should be 0")
	}
	if m.TotalThroughput() != 500 {
		t.Fatal("total throughput wrong")
	}
}

func TestFaultFreePABRaisesNoExceptions(t *testing.T) {
	// Regression for the stale-PAT bug: the PAT must be synced to the
	// final memory layout, or legitimate performance-mode stores to
	// guest pages allocated after chip construction are denied.
	for _, k := range []Kind{KindMMMIPC, KindMMMTP, KindSingleOS} {
		chip := buildSystem(t, k)
		m := chip.Measure(30_000, 120_000)
		if m.PABChecks == 0 {
			t.Errorf("%v: PAB never consulted", k)
		}
		if m.PABExceptions != 0 {
			t.Errorf("%v: %d PAB exceptions in a fault-free run", k, m.PABExceptions)
		}
	}
}

func TestForcePABGuardsPerformanceSystem(t *testing.T) {
	plain := buildSystem(t, KindNoDMR2X)
	mp := plain.Measure(20_000, 60_000)
	if mp.PABChecks != 0 {
		t.Fatalf("NoDMR2X consulted the PAB without ForcePAB: %d", mp.PABChecks)
	}
	forced := buildSystem(t, KindNoDMR2X, func(o *Options) { o.ForcePAB = true })
	mf := forced.Measure(20_000, 60_000)
	if mf.PABChecks == 0 {
		t.Fatal("ForcePAB did not install the store guard")
	}
	if mf.PABExceptions != 0 {
		t.Fatalf("%d PAB exceptions in a fault-free forced-PAB run", mf.PABExceptions)
	}
}

func TestTLBFaultUnderDMRMachineChecks(t *testing.T) {
	// A corrupted translation under DMR diverges the address-bearing
	// fingerprints persistently: squash-and-retry cannot clear it, the
	// pair must escalate to a machine check, flush its TLBs and then
	// keep making progress.
	chip := buildSystem(t, KindReunion)
	chip.Run(30_000)
	chip.ResetMeasurement()
	start := chip.Now
	injected := false
	for core := 0; core < chip.Cfg.Cores && !injected; core++ {
		injected = chip.CorruptTLB(core, 7)
	}
	if !injected {
		t.Skip("no live TLB entry to corrupt")
	}
	chip.Run(150_000)
	m := chip.Collect(chip.Now - start)
	if m.MachineChecks == 0 {
		t.Fatal("persistent fingerprint divergence never escalated to a machine check")
	}
	if m.Mismatches == 0 {
		t.Fatal("corrupted translation never mismatched")
	}
	if m.TotalThroughput() == 0 {
		t.Fatal("system did not survive the machine check")
	}
}

func TestFaultObserverSeesEvents(t *testing.T) {
	plan := &fault.Plan{MeanInterval: 10_000, Kinds: []fault.Kind{fault.ResultFlip}}
	chip := buildSystem(t, KindReunion, func(o *Options) { o.FaultPlan = plan })
	var mismatches int
	chip.SetFaultObserver(func(ev FaultEvent) {
		if ev.Kind == EvMismatch {
			mismatches++
		}
	})
	chip.Run(200_000)
	if chip.Injector.Total() == 0 {
		t.Skip("no faults landed")
	}
	if mismatches == 0 {
		t.Fatal("observer saw no mismatch events")
	}
	// The observer must see exactly the mismatches the pairs record.
	if uint64(mismatches) != sumMismatches(chip) {
		t.Fatalf("observer saw %d mismatches, pairs recorded %d",
			mismatches, sumMismatches(chip))
	}
}

func sumMismatches(c *Chip) uint64 {
	var n uint64
	for _, p := range c.Pairs {
		n += p.Mismatches
	}
	return n
}
