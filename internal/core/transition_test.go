package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/workload"
)

// drainAll ticks the chip until no transition is in flight (bounded).
func drainAll(t *testing.T, c *Chip, bound int) {
	t.Helper()
	for i := 0; i < bound; i++ {
		busy := false
		for _, tr := range c.trans {
			if tr != nil {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		c.Tick()
	}
	t.Fatal("transition never completed (drain deadlock?)")
}

// TestGangSwitchCompletes: every pair's transition at a timeslice
// boundary finishes — the drain-barrier mechanism prevents the
// skewed-fetch deadlock where one core of a pair has fetched further
// than its partner.
func TestGangSwitchCompletes(t *testing.T) {
	for _, kind := range []Kind{KindDMRBase, KindMMMIPC, KindMMMTP} {
		chip := buildSystem(t, kind)
		// Run through several boundaries.
		chip.Run(4 * chip.Cfg.TimesliceCycles)
		drainAll(t, chip, 100_000)
		if chip.GroupSwitches() < 3 {
			t.Errorf("%v: only %d gang switches", kind, chip.GroupSwitches())
		}
	}
}

// TestTransitionCostsScaleWithFlushRate: the Leave-DMR cost under
// MMM-TP is dominated by the one-line-per-cycle flush; quadrupling the
// flush rate must cut it by well over half.
func TestTransitionCostsScaleWithFlushRate(t *testing.T) {
	wl, _ := workload.ByName("oltp")
	leave := func(rate int) float64 {
		cfg := sim.DefaultConfig()
		cfg.TimesliceCycles = 60_000
		cfg.FlushPerCycle = rate
		chip, err := NewSystem(Options{Cfg: cfg, Kind: KindMMMTP, Workload: wl, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		m := chip.Measure(60_000, 300_000)
		if m.LeaveN == 0 {
			t.Fatal("no leave transitions")
		}
		return m.LeaveAvg
	}
	slow := leave(1)
	fast := leave(4)
	if fast >= slow/2 {
		t.Fatalf("flush at 4 lines/cycle (%.0f) should cost well under half of 1 line/cycle (%.0f)", fast, slow)
	}
}

// TestAttributionConserved: the sum of per-guest user commits equals
// the user commits of the cores that count (vocal and independent
// cores), regardless of how many reassignments happened.
func TestAttributionConserved(t *testing.T) {
	chip := buildSystem(t, KindMMMTP)
	m := chip.Measure(60_000, 400_000)
	var sum uint64
	for _, v := range m.GuestUser {
		sum += v
	}
	if sum == 0 {
		t.Fatal("no attributed work")
	}
	var counted uint64
	for i := range chip.Cores {
		if chip.attrGuest[i] >= 0 {
			counted += chip.Cores[i].C.UserCommits
		}
	}
	// Every counting core's commits must be <= attributed total plus
	// commits from cores whose assignment changed mid-window; the
	// conservation check is that attribution never exceeds raw commits.
	var raw uint64
	for i := range chip.Cores {
		raw += chip.Cores[i].C.UserCommits
	}
	if sum > raw {
		t.Fatalf("attributed %d user commits but only %d were committed", sum, raw)
	}
}

// TestMuteIncoherentLinesNeverSurviveLeave: after an MMM-TP Leave-DMR,
// the mute core's L2 holds no incoherent lines (they were dropped by
// the flush), so the independent VCPU scheduled onto it can never read
// stale redundant-execution data.
func TestMuteIncoherentLinesNeverSurviveLeave(t *testing.T) {
	chip := buildSystem(t, KindMMMTP)
	seenPerfSlice := false
	for i := 0; i < 300_000; i++ {
		chip.Tick()
		for pi := range chip.curPlan {
			pl := chip.curPlan[pi]
			if pl.dmr || pl.mute == nil || chip.trans[pi] != nil {
				continue
			}
			seenPerfSlice = true
			mc := 2*pi + 1
			bad := 0
			chip.Hier.L2[mc].Walk(func(l *cache.Line) bool {
				if !l.Coherent && l.State.Dirty() {
					bad++
				}
				return true
			})
			if bad != 0 {
				t.Fatalf("cycle %d: mute core %d holds %d dirty incoherent lines while running an independent VCPU", i, mc, bad)
			}
		}
	}
	if !seenPerfSlice {
		t.Skip("no performance slice observed")
	}
}

// TestSingleOSRoundTrip: a performance VCPU that traps enters DMR,
// executes the OS redundantly, and returns to performance mode — and
// the pair's plan reflects each stage.
func TestSingleOSRoundTrip(t *testing.T) {
	chip := buildSystem(t, KindSingleOS)
	sawDMR, sawPerf, sawReturn := false, false, false
	wasDMR := false
	for i := 0; i < 1_200_000; i++ {
		chip.Tick()
		pl := chip.curPlan[0]
		if pl.dmr {
			sawDMR = true
			wasDMR = true
		} else {
			sawPerf = true
			if wasDMR {
				sawReturn = true
			}
		}
		if sawDMR && sawPerf && sawReturn {
			return
		}
	}
	t.Fatalf("single-OS round trip incomplete: dmr=%v perf=%v returned=%v", sawDMR, sawPerf, sawReturn)
}
