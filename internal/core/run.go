package core

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Metrics summarizes one measured simulation window.
type Metrics struct {
	Kind     Kind
	Workload string
	Cycles   uint64

	// GuestUser / GuestOS are committed instructions per reporting
	// bucket; the MMM-TP performance guest's two co-scheduled halves
	// are merged into one "perf" bucket. GuestVCPUs counts the VCPUs
	// contributing to each bucket.
	GuestUser  map[string]uint64
	GuestOS    map[string]uint64
	GuestVCPUs map[string]int

	Core  stats.CoreCounters
	Cache stats.CacheCounters

	// Mode-transition costs (Table 1).
	EnterN, LeaveN     uint64
	EnterAvg, LeaveAvg float64
	CtxN               uint64
	CtxAvg             float64

	// Reunion activity.
	Checks, Mismatches uint64

	// Protection activity.
	PABChecks, PABMisses, PABExceptions uint64
	WouldCorrupt                        uint64
	VerifyFailures                      uint64
	MachineChecks                       uint64

	// Fault campaign.
	FaultsInjected uint64

	// Relia, when non-nil, is the Monte Carlo reliability batch this
	// metrics record summarizes (reliability jobs carry outcome
	// tallies instead of performance buckets).
	Relia *ReliaBatch `json:"Relia,omitempty"`

	// Single-OS switching cadence (Table 2).
	UserCycPerSwitch float64
	OSCycPerSwitch   float64
}

// UserIPC returns the average per-VCPU user IPC of a bucket: user
// commits divided by (cycles x VCPUs), the paper's per-thread metric.
func (m *Metrics) UserIPC(bucket string) float64 {
	n := m.GuestVCPUs[bucket]
	if n == 0 || m.Cycles == 0 {
		return 0
	}
	return float64(m.GuestUser[bucket]) / (float64(m.Cycles) * float64(n))
}

// Throughput returns a bucket's total committed user instructions.
func (m *Metrics) Throughput(bucket string) float64 {
	return float64(m.GuestUser[bucket])
}

// TotalThroughput sums committed user instructions over all buckets.
// The sum is accumulated in uint64 so the result does not depend on
// map iteration order (float addition is not associative).
func (m *Metrics) TotalThroughput() float64 {
	var t uint64
	for _, v := range m.GuestUser {
		t += v
	}
	return float64(t)
}

// bucketName merges the MMM-TP co-scheduled halves.
func bucketName(name string) string {
	if name == "perf2" {
		return "perf"
	}
	return name
}

// Measure runs the chip for warmup cycles, resets all counters, runs
// for measure cycles, and collects metrics.
func (c *Chip) Measure(warmup, measure sim.Cycle) Metrics {
	c.Run(warmup)
	c.ResetMeasurement()
	start := c.Now
	c.Run(measure)
	return c.Collect(c.Now - start)
}

// Collect gathers metrics for the last measurement window of the given
// length.
func (c *Chip) Collect(window sim.Cycle) Metrics {
	c.syncIdle()
	// Cores sleeping through a Check-stage wait owe the pair counters
	// their unperformed polls; settle before summing.
	for _, core := range c.Cores {
		core.SettleCheckDebt()
	}
	for i := range c.Cores {
		c.flushAttribution(i)
	}
	m := Metrics{
		Kind:       c.Kind,
		Cycles:     window,
		GuestUser:  make(map[string]uint64),
		GuestOS:    make(map[string]uint64),
		GuestVCPUs: make(map[string]int),
	}
	if len(c.Guests) > 0 {
		m.Workload = c.Guests[0].WL.Name
	}
	for _, g := range c.Guests {
		b := bucketName(g.Name)
		m.GuestUser[b] += c.guestUser[g.ID]
		m.GuestOS[b] += c.guestOS[g.ID]
		m.GuestVCPUs[b] += len(g.VCPUs)
	}
	for _, core := range c.Cores {
		m.Core.Add(&core.C)
	}
	m.Cache = c.Hier.Totals()
	for _, p := range c.Pairs {
		m.Checks += p.Checks
		m.Mismatches += p.Mismatches
	}
	for _, p := range c.PABs {
		m.PABChecks += p.C.PABChecks
		m.PABMisses += p.C.PABMisses
		m.PABExceptions += p.C.PABExceptions
		m.WouldCorrupt += p.WouldCorrupt
	}
	m.VerifyFailures = c.Eng.VerifyFailures
	m.MachineChecks = c.machineChecks
	m.EnterN, m.LeaveN, m.CtxN = c.enterN, c.leaveN, c.ctxN
	if c.enterN > 0 {
		m.EnterAvg = float64(c.enterCycles) / float64(c.enterN)
	}
	if c.leaveN > 0 {
		m.LeaveAvg = float64(c.leaveCyc) / float64(c.leaveN)
	}
	if c.ctxN > 0 {
		m.CtxAvg = float64(c.ctxCycles) / float64(c.ctxN)
	}
	if c.Injector != nil {
		// Rebased at ResetMeasurement: report only faults injected
		// inside the measurement window, not warmup-window injections.
		m.FaultsInjected = c.Injector.Total() - c.faultBase
	}
	// Switching cadence: average user (OS) cycles accumulated per trap
	// entry (return) across cores that ran software.
	if m.Core.TrapEntries > 0 {
		m.UserCycPerSwitch = float64(m.Core.UserCycles) / float64(m.Core.TrapEntries)
	}
	if m.Core.TrapReturns > 0 {
		m.OSCycPerSwitch = float64(m.Core.OSCycles) / float64(m.Core.TrapReturns)
	}
	return m
}

// RunSystem builds the system described by opts and measures it. When
// opts carries a recycler, the chip's big arrays are handed back to it
// before returning.
func RunSystem(opts Options, warmup, measure sim.Cycle) (Metrics, error) {
	chip, err := NewSystem(opts)
	if err != nil {
		return Metrics{}, err
	}
	m := chip.Measure(warmup, measure)
	chip.Release()
	return m, nil
}
