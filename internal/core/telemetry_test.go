package core

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// telemetryCell builds the ISSUE's acceptance configuration — an
// MMM-IPC chip under the utilization policy with fault injection — so
// the recorder sees transitions, policy decisions and faults.
func telemetryCell(t *testing.T, rec *obs.Recorder) *Chip {
	t.Helper()
	wl, err := workload.ByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.TimesliceCycles = 15_000
	chip, err := NewSystem(Options{
		Cfg: cfg, Kind: KindMMMIPC, Workload: wl, Seed: 11,
		Policy:    "utilization",
		FaultPlan: &fault.Plan{MeanInterval: 3_000, Seed: 5},
		ForcePAB:  true,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

// TestRecorderCapturesRunEvents is the tentpole's flight-recorder
// acceptance check at the package level: an instrumented MMM-IPC +
// utilization run must record mode transitions (with drain latency),
// policy decisions, faults, injector attempts and bulk steps.
func TestRecorderCapturesRunEvents(t *testing.T) {
	rec := obs.NewRecorder(1 << 18)
	chip := telemetryCell(t, rec)
	chip.Measure(30_000, 90_000)

	byKind := map[obs.Kind]int{}
	for _, ev := range rec.Events() {
		byKind[ev.Kind]++
	}
	for _, kind := range []obs.Kind{
		obs.KindEnterDMR, obs.KindLeaveDMR, obs.KindDecision,
		obs.KindFault, obs.KindInjection, obs.KindBulkStep,
	} {
		if byKind[kind] == 0 {
			t.Errorf("no %s events recorded (kinds seen: %v)", kind, byKind)
		}
	}

	// Transition spans carry a duration and the pair they ran on;
	// decisions carry a "<event>/<verdict>" cause.
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case obs.KindEnterDMR, obs.KindLeaveDMR:
			if ev.Dur == 0 {
				t.Fatalf("transition span without duration: %+v", ev)
			}
			if ev.Pair < 0 {
				t.Fatalf("transition without pair: %+v", ev)
			}
		case obs.KindDecision:
			if ev.Cause == "" {
				t.Fatalf("decision without cause: %+v", ev)
			}
		case obs.KindBulkStep:
			if ev.Dur == 0 {
				t.Fatalf("bulk step without duration: %+v", ev)
			}
		}
	}
}

// TestRecorderDoesNotPerturbResults is the determinism hard
// requirement: a run with the flight recorder attached must produce
// Metrics identical to the same run without it.
func TestRecorderDoesNotPerturbResults(t *testing.T) {
	plain := telemetryCell(t, nil)
	mPlain := plain.Measure(30_000, 90_000)

	rec := obs.NewRecorder(0)
	traced := telemetryCell(t, rec)
	mTraced := traced.Measure(30_000, 90_000)

	if !reflect.DeepEqual(mPlain, mTraced) {
		t.Fatalf("recorder changed simulation results:\nplain:  %+v\ntraced: %+v", mPlain, mTraced)
	}
	if rec.Total() == 0 {
		t.Fatal("recorder attached but saw no events — instrumentation is dead")
	}
	// And across every system kind with a dynamic policy, since each
	// kind wires different hooks.
	for _, kind := range fastPathKinds {
		t.Run(kind.String(), func(t *testing.T) {
			build := func(rec *obs.Recorder) *Chip {
				wl, err := workload.ByName("apache")
				if err != nil {
					t.Fatal(err)
				}
				cfg := sim.DefaultConfig()
				cfg.TimesliceCycles = 15_000
				chip, err := NewSystem(Options{
					Cfg: cfg, Kind: kind, Workload: wl, Seed: 11, Policy: "duty-cycle",
					FaultPlan: &fault.Plan{MeanInterval: 3_000, Seed: 5},
					Recorder:  rec,
				})
				if err != nil {
					t.Fatal(err)
				}
				return chip
			}
			a := build(nil).Measure(20_000, 40_000)
			b := build(obs.NewRecorder(1<<12)).Measure(20_000, 40_000)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("recorder changed %s results:\nplain:  %+v\ntraced: %+v", kind, a, b)
			}
		})
	}
}

// TestRecorderTransitionCausesNamed checks that recorded transitions
// carry the policy-event cause they were started for, not empty
// strings — the whole point of the flight recorder is attribution.
func TestRecorderTransitionCausesNamed(t *testing.T) {
	rec := obs.NewRecorder(1 << 16)
	chip := telemetryCell(t, rec)
	chip.Measure(30_000, 90_000)

	caused := 0
	for _, ev := range rec.Events() {
		if ev.Kind != obs.KindEnterDMR && ev.Kind != obs.KindLeaveDMR {
			continue
		}
		if ev.Cause != "" {
			caused++
		}
	}
	if caused == 0 {
		t.Fatal("no transition carried a cause")
	}
}
