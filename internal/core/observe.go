package core

import (
	"repro/internal/cpu"
	"repro/internal/mode"
	"repro/internal/obs"
	"repro/internal/sim"
)

// FaultEventKind classifies one protection-mechanism observation the
// chip can report while a fault campaign runs.
type FaultEventKind uint8

const (
	// EvMismatch: a Reunion fingerprint mismatch was detected on a pair
	// (the Core field is the pair's vocal core).
	EvMismatch FaultEventKind = iota
	// EvUnrecoverable: repeated mismatches of one instruction escalated
	// to a machine check (persistent divergence, e.g. a corrupted TLB
	// entry); the handler flushed the pair's TLBs and restarted it.
	EvUnrecoverable
	// EvPABException: the PAB denied a performance-mode store before it
	// reached the L2.
	EvPABException
	// EvWouldCorrupt: the disabled-PAB oracle observed a violation that
	// reached memory unchecked.
	EvWouldCorrupt
	// EvSilentResult: an injected result corruption landed on an
	// execution with no Check stage — silent data corruption.
	EvSilentResult
	// EvCorruptUse: a translation corrupted by fault injection was
	// consumed by the pipeline (first use only).
	EvCorruptUse
	// EvVerifyFailure: the Enter-DMR privileged-register verification
	// caught a divergence and recovered from the redundant copy.
	EvVerifyFailure
)

// String names the event kind.
func (k FaultEventKind) String() string {
	switch k {
	case EvMismatch:
		return "mismatch"
	case EvUnrecoverable:
		return "unrecoverable"
	case EvPABException:
		return "pab-exception"
	case EvWouldCorrupt:
		return "would-corrupt"
	case EvSilentResult:
		return "silent-result"
	case EvCorruptUse:
		return "corrupt-use"
	case EvVerifyFailure:
		return "verify-failure"
	default:
		return "?"
	}
}

// FaultEvent is one observation, timestamped in chip cycles.
type FaultEvent struct {
	Kind  FaultEventKind
	Core  int // physical core (-1 when not applicable)
	VCPU  int // victim VCPU id (-1 when not applicable)
	Cycle sim.Cycle
}

// SetFaultObserver installs (or, with nil, removes) the chip-wide
// fault-event observer. Events fire synchronously during Tick, on the
// simulation goroutine.
func (c *Chip) SetFaultObserver(fn func(FaultEvent)) {
	c.onFaultEvent = fn
}

// emitFault reports an event to the observer, if any, and forwards
// the protection events a fault-sensitive mode policy subscribes to
// (machine checks and PAB exceptions; see policy.go).
func (c *Chip) emitFault(ev FaultEvent) {
	if c.rec != nil {
		pair := -1
		if ev.Core >= 0 {
			pair = ev.Core / 2
		}
		c.rec.Emit(obs.Event{
			Kind: obs.KindFault, Cycle: ev.Cycle,
			Pair: pair, Core: ev.Core,
			Cause: ev.Kind.String(), Arg: int64(ev.VCPU),
		})
	}
	if c.onFaultEvent != nil {
		c.onFaultEvent(ev)
	}
	if c.polWantsFaults {
		switch ev.Kind {
		case EvUnrecoverable:
			c.policyFault(mode.EvMachineCheck, ev.Core/2, ev.Cycle)
		case EvPABException:
			c.policyFault(mode.EvPABException, ev.Core/2, ev.Cycle)
		}
	}
}

// installFaultHooks wires the protection substrates' callbacks to the
// chip's observer and machine-check path. Called once from newChip;
// the hooks are permanent (they only forward when an observer is set,
// except the machine-check recovery, which always runs — a stuck pair
// must make progress whether or not anyone is watching).
func (c *Chip) installFaultHooks() {
	for pi, pair := range c.Pairs {
		pair.OnMismatch = func(seq uint64, now sim.Cycle) {
			c.emitFault(FaultEvent{Kind: EvMismatch, Core: 2 * pi, VCPU: -1, Cycle: now})
		}
		pair.OnUnrecoverable = func(seq uint64, now sim.Cycle) {
			c.machineCheck(pi, now)
		}
	}
	for i, p := range c.PABs {
		p.OnException = func(core int, pa uint64, now sim.Cycle) {
			c.emitFault(FaultEvent{Kind: EvPABException, Core: i, VCPU: -1, Cycle: now})
		}
		p.OnWouldCorrupt = func(core int, pa uint64, now sim.Cycle) {
			c.emitFault(FaultEvent{Kind: EvWouldCorrupt, Core: i, VCPU: -1, Cycle: now})
		}
	}
	for i, core := range c.Cores {
		core.OnSilentFault = func(_ *cpu.Core, now sim.Cycle) {
			c.emitFault(FaultEvent{Kind: EvSilentResult, Core: i, VCPU: -1, Cycle: now})
		}
		core.TLB.OnCorruptUse(func(vpage, ppage uint64) {
			c.emitFault(FaultEvent{Kind: EvCorruptUse, Core: i, VCPU: -1, Cycle: c.Now})
		})
	}
	c.Eng.OnVerifyFailure = func(vcpu int, now sim.Cycle) {
		c.emitFault(FaultEvent{Kind: EvVerifyFailure, Core: -1, VCPU: vcpu, Cycle: now})
	}
}

// machineCheck is the unrecoverable-divergence handler: the pair traps
// to system software, which flushes both cores' TLBs (clearing any
// corrupted translation — page tables themselves are intact), charges
// the machine-check latency, and restarts the pair. Without this path
// a persistently diverging pair would retry the same instruction until
// the end of the simulation.
func (c *Chip) machineCheck(pi int, now sim.Cycle) {
	vocal, mute := c.Cores[2*pi], c.Cores[2*pi+1]
	vocal.TLB.Flush()
	mute.TLB.Flush()
	until := now + c.Cfg.MachineCheckPenalty
	vocal.BlockUntil(until)
	mute.BlockUntil(until)
	c.machineChecks++
	c.emitFault(FaultEvent{Kind: EvUnrecoverable, Core: 2 * pi, VCPU: -1, Cycle: now})
}

// ReliaBatch summarizes one Monte Carlo reliability trial batch: the
// per-kind injected-fault counts, the outcome tallies, the detection
// latencies and the injection-log digest. It rides inside Metrics so
// reliability jobs flow through the same campaign cache and
// aggregation machinery as performance jobs. The type lives here (not
// in internal/relia, which fills it) because Metrics cannot depend on
// the evaluation layer above it.
type ReliaBatch struct {
	// Trials is the number of independent trial slices in the batch.
	Trials int `json:"trials"`
	// Injected counts successfully injected faults per kind name.
	Injected map[string]uint64 `json:"injected,omitempty"`
	// Misses counts injection attempts with no viable target.
	Misses uint64 `json:"misses,omitempty"`
	// Outcomes tallies classified faults, keyed "<kind>/<outcome>".
	Outcomes map[string]uint64 `json:"outcomes,omitempty"`
	// DetectLat holds sorted detection latencies (cycles from injection
	// to the detecting event) per kind name, over detected faults only.
	DetectLat map[string][]float64 `json:"detect_lat,omitempty"`
	// Recovery sums recovery-cost cycles per outcome name.
	Recovery map[string]float64 `json:"recovery,omitempty"`
	// LogDigest is a SHA-256 over the batch's ordered injection logs;
	// byte-identical across reruns and parallelism levels.
	LogDigest string `json:"log_digest,omitempty"`
}

// Merge folds another batch into b (for aggregating seeds of one
// sweep cell). Latency slices are re-sorted by the caller.
func (b *ReliaBatch) Merge(o *ReliaBatch) {
	if o == nil {
		return
	}
	b.Trials += o.Trials
	b.Misses += o.Misses
	for k, v := range o.Injected {
		if b.Injected == nil {
			b.Injected = make(map[string]uint64)
		}
		b.Injected[k] += v
	}
	for k, v := range o.Outcomes {
		if b.Outcomes == nil {
			b.Outcomes = make(map[string]uint64)
		}
		b.Outcomes[k] += v
	}
	for k, v := range o.DetectLat {
		if b.DetectLat == nil {
			b.DetectLat = make(map[string][]float64)
		}
		b.DetectLat[k] = append(b.DetectLat[k], v...)
	}
	for k, v := range o.Recovery {
		if b.Recovery == nil {
			b.Recovery = make(map[string]float64)
		}
		b.Recovery[k] += v
	}
}
