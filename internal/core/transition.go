package core

import (
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vcpu"
)

// transKind classifies a pair reconfiguration for cost accounting.
type transKind int

const (
	transCtx   transKind = iota // context switch without a mode change
	transEnter                  // performance -> DMR
	transLeave                  // DMR -> performance
)

// transition is the per-pair mode-switch state machine (Section 3.4.3):
// hold fetch, wait for both pipelines to drain, run the hardware state
// machine that moves and verifies VCPU state through the scratchpad
// space, then reconfigure the pair and resume.
type transition struct {
	phase        int // 0 = draining, 1 = moving
	doneAt       sim.Cycle
	startAt      sim.Cycle
	old, next    pairPlan
	kind         transKind
	suppressHook bool // vocal resumes into the trap that caused the switch
	// cause names what queued the switch (policy event kind, possibly
	// with a coupling override, or a single-OS trap boundary). Only
	// read by the flight recorder.
	cause string
}

// startTransition holds fetch on the pair and queues the switch; cause
// names the trigger for the flight recorder.
func (c *Chip) startTransition(pi int, next pairPlan, suppressHook bool, now sim.Cycle, cause string) {
	old := c.curPlan[pi]
	kind := transCtx
	switch {
	case old.dmr && !next.dmr:
		kind = transLeave
	case !old.dmr && next.dmr:
		kind = transEnter
	}
	c.trans[pi] = &transition{
		startAt:      now,
		old:          old,
		next:         next,
		kind:         kind,
		suppressHook: suppressHook,
		cause:        cause,
	}
	c.transCount++
	c.drainCount++
	c.transDirty = true // Run must leave bulk stepping to poll the drain
	if old.dmr && old.vocal != nil {
		// A redundant pair drains to an agreed stream position; see
		// cpu.Core.HoldFetchAfter.
		barrier := old.vocal.Stream.MaxCursor()
		c.Cores[2*pi].HoldFetchAfter(barrier)
		c.Cores[2*pi+1].HoldFetchAfter(barrier)
		return
	}
	c.Cores[2*pi].HoldFetch()
	c.Cores[2*pi+1].HoldFetch()
}

// stepTransition advances one pair's switch.
func (c *Chip) stepTransition(pi int, now sim.Cycle) {
	tr := c.trans[pi]
	vocal, mute := c.Cores[2*pi], c.Cores[2*pi+1]
	switch tr.phase {
	case 0: // draining
		if !vocal.Drained() || !mute.Drained() {
			return
		}
		tr.doneAt = c.moveState(pi, tr, now)
		vocal.BlockUntil(tr.doneAt)
		mute.BlockUntil(tr.doneAt)
		tr.phase = 1
		c.drainCount--
		c.recordTransition(pi, tr, tr.doneAt-tr.startAt, now-tr.startAt)
	case 1: // moving
		if now < tr.doneAt {
			return
		}
		c.applyPlan(pi, tr.next, tr.suppressHook)
		c.trans[pi] = nil
		c.transCount--
	}
}

// recordTransition accumulates Table 1 statistics and emits the
// completed switch — with its cause and pipeline-drain latency — to
// the flight recorder.
func (c *Chip) recordTransition(pi int, tr *transition, dur, drain sim.Cycle) {
	kind := obs.KindCtxSwitch
	switch tr.kind {
	case transEnter:
		c.enterN++
		c.enterCycles += dur
		c.Cores[0].C.ModeSwitches++ // chip-level tally, kept on core 0
		kind = obs.KindEnterDMR
	case transLeave:
		c.leaveN++
		c.leaveCyc += dur
		c.Cores[0].C.ModeSwitches++
		kind = obs.KindLeaveDMR
	default:
		c.ctxN++
		c.ctxCycles += dur
	}
	if c.rec != nil {
		c.rec.Emit(obs.Event{
			Kind: kind, Cycle: tr.startAt, Dur: dur,
			Pair: pi, Core: 2 * pi,
			Cause: tr.cause, Arg: int64(drain),
		})
	}
}

// moveState runs the hardware state machine that saves, migrates and
// verifies VCPU state for one pair's reconfiguration, returning the
// completion cycle. Costs are not constants: every step is a sequence
// of coherent loads and stores through the real cache hierarchy, so
// Enter-DMR lands near 2.2k cycles (dominated by the mute re-loading
// and verifying state) and MMM-TP's Leave-DMR near 10k cycles
// (dominated by the line-by-line L2 flush).
func (c *Chip) moveState(pi int, tr *transition, now sim.Cycle) sim.Cycle {
	vc, mc := 2*pi, 2*pi+1
	old, next := tr.old, tr.next
	sync := c.Cfg.FingerprintLat

	switch tr.kind {
	case transEnter:
		v := next.vocal
		tV := now
		vocalReady := now
		if old.vocal == v {
			// Single-OS trap: the same VCPU switches modes. The vocal
			// stores all of its state so the mute can load and verify
			// it.
			tV = c.Eng.SaveVocal(vc, v, now)
			vocalReady = tV
		} else {
			// Consolidated switch: context switch out the performance
			// VCPU, switch in the reliable one (its image is already
			// in the scratchpad from its last Leave-DMR).
			if old.vocal != nil {
				tV = c.Eng.SaveVocal(vc, old.vocal, now)
				old.vocal.InOS = c.Cores[vc].InOS()
			}
			tV = c.Eng.RestoreVocal(vc, v, tV)
		}
		tM := now
		if old.mute != nil {
			// MMM-TP: the hardware scheduler had an independent VCPU
			// on the mute core; it is displaced and its state saved.
			tM = c.Eng.SaveVocal(mc, old.mute, now)
			old.mute.InOS = c.Cores[mc].InOS()
		}
		// Privileged-register divergence detected here is counted by
		// the engine (VerifyFailures) and surfaces in Metrics.
		tM, _ = c.Eng.EnterVerify(mc, v, tM, vocalReady)
		done := tV
		if tM > done {
			done = tM
		}
		return done + sync

	case transLeave:
		ov := old.vocal
		t0 := now + sync // final fingerprint synchronization
		tV := t0
		if next.vocal == ov {
			// Single-OS return from trap: the vocal keeps running the
			// same VCPU; both cores store their privileged state for
			// later use.
			tV = c.Eng.SaveVocalPriv(vc, ov, t0)
		} else {
			tV = c.Eng.SaveVocal(vc, ov, t0)
			ov.InOS = c.Cores[vc].InOS()
			if next.vocal != nil {
				tV = c.Eng.RestoreVocal(vc, next.vocal, tV)
			}
		}
		tM := t0
		if c.Kind == KindMMMTP {
			// The mute may next run an unrelated VCPU: save all state,
			// then flush the cache of incoherent lines one line at a
			// time (coherent dirty lines write back to the L3).
			tM = c.Eng.SaveMuteFull(mc, ov, t0)
			tM, _ = c.Hier.FlushL2(mc, tM)
		} else {
			tM = c.Eng.SaveMutePriv(mc, ov, t0)
		}
		if next.mute != nil {
			tM = c.Eng.RestoreVocal(mc, next.mute, tM)
		}
		if tM > tV {
			return tM
		}
		return tV

	default: // context switch with no mode change
		tV := now + sync
		tM := now + sync
		if old.dmr {
			// DMR-to-DMR guest switch (the DMR-base consolidated
			// server): vocal swaps images, mute saves its redundant
			// copy and verifies the incoming VCPU.
			tV = c.Eng.SaveVocal(vc, old.vocal, tV)
			old.vocal.InOS = c.Cores[vc].InOS()
			tV = c.Eng.RestoreVocal(vc, next.vocal, tV)
			tM = c.Eng.SaveMutePriv(mc, old.vocal, tM)
			tM, _ = c.Eng.EnterVerify(mc, next.vocal, tM, now)
		} else {
			// Independent-VCPU context switches on each core.
			if old.vocal != nil && old.vocal != next.vocal {
				tV = c.Eng.SaveVocal(vc, old.vocal, tV)
				old.vocal.InOS = c.Cores[vc].InOS()
			}
			if next.vocal != nil && old.vocal != next.vocal {
				tV = c.Eng.RestoreVocal(vc, next.vocal, tV)
			}
			if old.mute != nil && old.mute != next.mute {
				tM = c.Eng.SaveVocal(mc, old.mute, tM)
				old.mute.InOS = c.Cores[mc].InOS()
			}
			if next.mute != nil && old.mute != next.mute {
				tM = c.Eng.RestoreVocal(mc, next.mute, tM)
			}
		}
		if tM > tV {
			return tM
		}
		return tV
	}
}

// applyPlan reconfigures one pair: sources, spaces, coherence mode, the
// Check stage, PAB guards and attribution.
func (c *Chip) applyPlan(pi int, pl pairPlan, suppressHook bool) {
	vocal, mute := c.Cores[2*pi], c.Cores[2*pi+1]
	pair := c.Pairs[pi]
	was := c.curPlan[pi]

	// Detach streams that stop running redundantly.
	if was.dmr && !pl.dmr && was.vocal != nil {
		was.vocal.Stream.Detach()
	}

	if pl.dmr {
		v := pl.vocal
		v.Stream.Attach()
		vocal.SetSource(v.Stream.Side(0))
		vocal.SetSpace(v.Space)
		vocal.SetGuard(nil)
		vocal.SetInOS(v.InOS)
		mute.SetSource(v.Stream.Side(1))
		mute.SetSpace(v.Space)
		mute.SetGuard(nil)
		mute.SetInOS(v.InOS)
		pair.Bind()
		c.setAttribution(2*pi, c.guestOf(v))
		c.setAttribution(2*pi+1, -1) // mute commits are duplicates
	} else {
		if was.dmr {
			pair.Unbind()
		}
		c.applyCore(vocal, pl.vocal, 2*pi)
		c.applyCore(mute, pl.mute, 2*pi+1)
	}
	vocal.Resume(suppressHook)
	mute.Resume(false)
	c.curPlan[pi] = pl
	c.refreshActive()
}

// applyCore configures one core to run an independent VCPU (or idle).
func (c *Chip) applyCore(core *cpu.Core, v *vcpu.VCPU, coreID int) {
	core.SetCoherent(true)
	core.SetGate(nil, 0)
	if v == nil {
		core.SetSource(nil)
		core.SetGuard(nil)
		c.setAttribution(coreID, -1)
		return
	}
	core.SetSource(v.Stream.Side(0))
	core.SetSpace(v.Space)
	core.SetInOS(v.InOS)
	if c.usePAB && v.Mode != vcpu.ModeReliable {
		core.SetGuard(c.PABs[coreID])
	} else {
		core.SetGuard(nil)
	}
	c.setAttribution(coreID, c.guestOf(v))
}

// guestOf returns the guest id of a VCPU.
func (c *Chip) guestOf(v *vcpu.VCPU) int {
	if v == nil {
		return -1
	}
	return v.Guest
}
