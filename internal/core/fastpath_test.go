package core

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fastPathKinds is every evaluated system configuration.
var fastPathKinds = []Kind{
	KindNoDMR2X, KindNoDMR, KindReunion, KindDMRBase,
	KindMMMIPC, KindMMMTP, KindSingleOS,
}

// buildCell constructs one benchmark cell deterministically.
func buildCell(t *testing.T, kind Kind, plan *fault.Plan) *Chip {
	t.Helper()
	wl, err := workload.ByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.TimesliceCycles = 15_000 // several gang switches inside the window
	chip, err := NewSystem(Options{Cfg: cfg, Kind: kind, Workload: wl, Seed: 11, FaultPlan: plan})
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

// TestRunMatchesTickPerCycle: Run's event-horizon bulk stepping and
// idle-core skipping must be cycle-for-cycle equivalent to the per-cycle
// reference (Tick in a loop) — identical Metrics for one cell of every
// system kind. This is the safety net under the hot-path overhaul: any
// event the bulk loop skips or double-runs shows up as a counter diff.
func TestRunMatchesTickPerCycle(t *testing.T) {
	const warmup, measure = 30_000, 60_000
	for _, kind := range fastPathKinds {
		t.Run(kind.String(), func(t *testing.T) {
			fast := buildCell(t, kind, nil)
			mFast := fast.Measure(warmup, measure)

			slow := buildCell(t, kind, nil)
			for i := 0; i < warmup; i++ {
				slow.Tick()
			}
			slow.ResetMeasurement()
			start := slow.Now
			for i := 0; i < measure; i++ {
				slow.Tick()
			}
			mSlow := slow.Collect(slow.Now - start)

			if !reflect.DeepEqual(mFast, mSlow) {
				t.Errorf("fast path diverged from per-cycle reference:\nfast: %+v\nslow: %+v", mFast, mSlow)
			}
		})
	}
}

// TestRunMatchesTickDynamicPolicies repeats the equivalence check for
// every mode policy, with fault injection active so the
// fault-escalation path (policy decisions fired from inside a core's
// Tick, mid-bulk-step) is exercised, and on SingleOS so policy timers
// race the trap hooks' transitions (the transDirty path). "static" and
// the duty-cycle variants run through the compiled decision schedule
// (policyDecideCompiled), so the devirtualized fast path is equivalence-
// checked under fault injection too; the parameterized duty-cycle's
// short period lands boundaries between, on and across gang rotations.
func TestRunMatchesTickDynamicPolicies(t *testing.T) {
	const warmup, measure = 30_000, 90_000
	for _, kind := range []Kind{KindReunion, KindMMMIPC, KindMMMTP, KindSingleOS} {
		for _, pol := range []string{"static", "utilization", "duty-cycle", "duty-cycle:9000:40", "fault-escalation"} {
			t.Run(kind.String()+"/"+pol, func(t *testing.T) {
				build := func() *Chip {
					wl, err := workload.ByName("apache")
					if err != nil {
						t.Fatal(err)
					}
					cfg := sim.DefaultConfig()
					cfg.TimesliceCycles = 15_000
					chip, err := NewSystem(Options{
						Cfg: cfg, Kind: kind, Workload: wl, Seed: 11, Policy: pol,
						FaultPlan: &fault.Plan{MeanInterval: 3_000, Seed: 5},
						ForcePAB:  true,
					})
					if err != nil {
						t.Fatal(err)
					}
					return chip
				}
				fast := build()
				mFast := fast.Measure(warmup, measure)

				slow := build()
				for i := 0; i < warmup; i++ {
					slow.Tick()
				}
				slow.ResetMeasurement()
				start := slow.Now
				for i := 0; i < measure; i++ {
					slow.Tick()
				}
				mSlow := slow.Collect(slow.Now - start)

				if !reflect.DeepEqual(mFast, mSlow) {
					t.Errorf("dynamic-policy fast path diverged:\nfast: %+v\nslow: %+v", mFast, mSlow)
				}
			})
		}
	}
}

// TestCompiledPolicyMatchesGeneric pins the devirtualized decision
// schedule (policyDecideCompiled) to the generic Decide path it
// replaces: the same cell measured with the compiled path armed and
// with it force-disabled must produce identical Metrics. Covers the
// three specialization shapes — single-group static (zero decision
// points), multi-group static (precomputed rotation), duty-cycle
// (precompiled on/off timeline) — each with and without fault
// injection racing the schedule.
func TestCompiledPolicyMatchesGeneric(t *testing.T) {
	const warmup, measure = 30_000, 90_000
	inject := &fault.Plan{MeanInterval: 3_000, Seed: 5}
	cases := []struct {
		name       string
		kind       Kind
		policy     string
		plan       *fault.Plan
		wantGroups int
	}{
		{"static-single-group", KindReunion, "static", nil, 1},
		{"static-multi-group", KindDMRBase, "static", nil, 2},
		{"static-fault-injected", KindDMRBase, "static", inject, 2},
		{"duty-single-group", KindReunion, "duty-cycle", nil, 1},
		{"duty-multi-group", KindMMMIPC, "duty-cycle", nil, 2},
		{"duty-fault-injected", KindMMMIPC, "duty-cycle:9000:40", inject, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func() *Chip {
				wl, err := workload.ByName("apache")
				if err != nil {
					t.Fatal(err)
				}
				cfg := sim.DefaultConfig()
				cfg.TimesliceCycles = 15_000
				chip, err := NewSystem(Options{
					Cfg: cfg, Kind: tc.kind, Workload: wl, Seed: 11,
					Policy: tc.policy, FaultPlan: tc.plan,
				})
				if err != nil {
					t.Fatal(err)
				}
				return chip
			}
			comp := build()
			if !comp.polCompiled {
				t.Fatal("policy did not compile; the fast path under test is disarmed")
			}
			if got := len(comp.groups); got != tc.wantGroups {
				t.Fatalf("cell built %d roster groups, want %d (case mislabeled)", got, tc.wantGroups)
			}
			if tc.wantGroups == 1 && tc.policy == "static" && comp.polNextAt != sim.Never {
				t.Errorf("single-group static armed a decision point at %d, want none (sim.Never)", comp.polNextAt)
			}
			mComp := comp.Measure(warmup, measure)

			gen := build()
			gen.polCompiled = false // force the generic Decide path
			mGen := gen.Measure(warmup, measure)

			if !reflect.DeepEqual(mComp, mGen) {
				t.Errorf("compiled schedule diverged from generic Decide:\ncompiled: %+v\ngeneric:  %+v", mComp, mGen)
			}
		})
	}
}

// TestRunMatchesTickUnderFaultInjection repeats the equivalence check
// with the fault injector active, covering the injector's event-horizon
// path (including multi-fault catch-up at one cycle).
func TestRunMatchesTickUnderFaultInjection(t *testing.T) {
	const warmup, measure = 20_000, 40_000
	plan := func() *fault.Plan {
		return &fault.Plan{MeanInterval: 1_500, Seed: 77}
	}
	for _, kind := range []Kind{KindReunion, KindMMMIPC} {
		t.Run(kind.String(), func(t *testing.T) {
			fast := buildCell(t, kind, plan())
			mFast := fast.Measure(warmup, measure)

			slow := buildCell(t, kind, plan())
			for i := 0; i < warmup; i++ {
				slow.Tick()
			}
			slow.ResetMeasurement()
			start := slow.Now
			for i := 0; i < measure; i++ {
				slow.Tick()
			}
			mSlow := slow.Collect(slow.Now - start)

			if !reflect.DeepEqual(mFast, mSlow) {
				t.Errorf("fault-injected fast path diverged:\nfast: %+v\nslow: %+v", mFast, mSlow)
			}
			if mFast.FaultsInjected == 0 {
				t.Error("fault campaign injected nothing; the cell is not exercising the injector")
			}
		})
	}
}

// BenchmarkNewSystem tracks chip-construction cost (PAT sync, page
// tables, cache arrays): campaign workers and relia trial batches build
// thousands of short-lived chips, so construction is part of the hot
// path. BENCH_hotpath.json records its trajectory.
func BenchmarkNewSystem(b *testing.B) {
	wl, err := workload.ByName("apache")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewSystem(Options{Kind: KindMMMIPC, Workload: wl, Seed: 11}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestResetMeasurementRebasesInjector: warmup-window faults are real
// (the corrupted state persists) but the measured FaultsInjected metric
// must cover only the measurement window.
func TestResetMeasurementRebasesInjector(t *testing.T) {
	chip := buildCell(t, KindReunion, &fault.Plan{MeanInterval: 1_000, Seed: 5})
	chip.Run(20_000)
	warm := chip.Injector.Total()
	if warm == 0 {
		t.Fatal("no warmup faults; raise the rate so the regression test has teeth")
	}
	chip.ResetMeasurement()
	chip.Run(20_000)
	m := chip.Collect(20_000)
	total := chip.Injector.Total()
	if m.FaultsInjected != total-warm {
		t.Fatalf("FaultsInjected = %d, want measurement-window-only %d (total %d, warmup %d)",
			m.FaultsInjected, total-warm, total, warm)
	}
	if m.FaultsInjected == 0 {
		t.Fatal("no measurement-window faults; the assertion above is vacuous")
	}
}
