// Package workload defines the statistical models of the six
// commercial workloads the paper evaluates: Apache and Zeus (static web
// servers driven by Surge), OLTP (TPC-C-like on DB2), pgoltp (TPC-C on
// PostgreSQL/dbt2), pgbench (TPC-B on PostgreSQL), and pmake (parallel
// compile of PostgreSQL).
//
// The real workloads run on Solaris 9 inside Simics; neither is
// available here, so each workload is replaced by a parameterized
// synthetic model that reproduces the observable characteristics the
// paper's evaluation depends on:
//
//   - the interleaving of user and OS execution (Table 2: user bursts
//     of 59k–554k cycles, OS bursts of 35k–220k cycles),
//   - serializing-instruction density (with Reunion, SIs stall fetch
//     15–46% of cycles, worst for OS-intensive workloads),
//   - the instruction mix and memory locality (hot working sets plus
//     large DB/server footprints; pmake exhibits very little sharing,
//     so its baseline C2C rate is tiny, while the commercial workloads
//     share heavily).
//
// Parameters were hand-calibrated so the simulated baseline reproduces
// Table 2 and the relative IPC/throughput bands of Figures 5 and 6.
package workload

import "fmt"

// Params is the tuning-knob set for one synthetic workload model.
type Params struct {
	Name string

	// Instruction mix for user code (fractions of all instructions;
	// the remainder is single-cycle ALU work).
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64
	MulFrac    float64
	DivFrac    float64

	// OS behaviour. OS code is branchier, has a higher serializing-
	// instruction density, and touches kernel data structures.
	OSLoadFrac   float64
	OSStoreFrac  float64
	OSBranchFrac float64
	OSSIFrac     float64 // serializing instructions in OS code
	UserSIFrac   float64 // serializing instructions in user code

	// Phase structure: mean dynamic instructions per user burst and
	// per OS visit (system call, interrupt, page fault). These are the
	// knobs behind Table 2's user/OS cycle interleaving.
	UserInstrsPerTrap float64
	OSInstrsPerTrap   float64

	// Branch prediction.
	MispredictRate float64

	// Memory behaviour: footprints in 8 KB pages.
	PrivPages   uint64 // per-VCPU private data
	SharedPages uint64 // per-guest shared data (DB buffer pool, docroot cache)
	OSPages     uint64 // per-guest kernel data
	CodePages   uint64 // application + library text
	OSCodePages uint64 // kernel text

	// Access locality: a three-tier reuse model. HotFrac of data
	// accesses re-reference an L1-resident hot set of HotLines lines;
	// WarmFrac re-reference an L2/L3-resident warm set of WarmLines
	// lines; the remainder touch cold lines anywhere in the region
	// footprint (and promote them into the warm set, from which lines
	// are promoted into the hot set). SharedFrac of user accesses go
	// to the per-guest shared region (these create C2C transfers).
	HotFrac   float64
	HotLines  int
	WarmFrac  float64
	WarmLines int
	// SharedFrac of user data accesses go to the guest's shared region
	// (buffer pool, document cache). Each thread works on its own rows
	// and pages, so reuse sets are thread-local; the sharing is of
	// capacity and of whatever lines threads happen to hand off.
	SharedFrac float64
	// SyncFrac of user data accesses (OSSyncFrac of OS accesses) hit
	// the guest's small set of truly write-shared lines — locks, run
	// queues, counters — of SyncLines lines. These are the lines whose
	// stores invalidate every other cache and whose reloads arrive as
	// 3-hop cache-to-cache transfers.
	SyncFrac   float64
	OSSyncFrac float64
	SyncLines  int

	// Instruction-fetch locality. Fetch runs sequentially for
	// ICLineRunMean instructions, then transfers to another code line:
	// with probability ICHotFrac a recently executed line (L1-I
	// resident loop/function working set of ICHotLines lines),
	// otherwise a cold line anywhere in the code footprint.
	ICLineRunMean float64
	ICHotFrac     float64
	ICHotLines    int

	// Dependency structure: mean distance (in dynamic instructions)
	// from a consumer to its producer; smaller = less ILP.
	DepMean float64
}

// Validate reports an error if the parameters are not a sane
// probability model.
func (p *Params) Validate() error {
	sum := p.LoadFrac + p.StoreFrac + p.BranchFrac + p.MulFrac + p.DivFrac + p.UserSIFrac
	if sum > 1 {
		return fmt.Errorf("workload %s: user instruction mix sums to %.2f > 1", p.Name, sum)
	}
	osSum := p.OSLoadFrac + p.OSStoreFrac + p.OSBranchFrac + p.OSSIFrac
	if osSum > 1 {
		return fmt.Errorf("workload %s: OS instruction mix sums to %.2f > 1", p.Name, osSum)
	}
	if p.UserInstrsPerTrap < 1 || p.OSInstrsPerTrap < 1 {
		return fmt.Errorf("workload %s: phase lengths must be >= 1", p.Name)
	}
	if p.HotFrac < 0 || p.HotFrac > 1 || p.HotLines <= 0 {
		return fmt.Errorf("workload %s: bad hot-set parameters", p.Name)
	}
	if p.PrivPages == 0 || p.CodePages == 0 || p.OSPages == 0 || p.OSCodePages == 0 {
		return fmt.Errorf("workload %s: zero footprint", p.Name)
	}
	return nil
}

// Names lists the six paper workloads in the order the paper's figures
// use.
func Names() []string {
	return []string{"apache", "oltp", "pgoltp", "pmake", "pgbench", "zeus"}
}

// ByName returns the parameter preset for a workload name.
func ByName(name string) (*Params, error) {
	for _, p := range presets {
		if p.Name == name {
			cp := *p
			return &cp, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// All returns copies of every preset, in figure order.
func All() []*Params {
	out := make([]*Params, 0, len(presets))
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

// The presets. Calibration targets, from the paper:
//
//	            user-cyc  OS-cyc   character
//	Apache      59k       98k      OS-dominated web serving, heavy sharing
//	OLTP        218k      52k      DB, large footprint, heavy sharing
//	pgoltp      210k      35k      DB, similar to OLTP
//	pmake       312k      47k      compiler, almost no sharing, small WS
//	pgbench     554k      126k     DB, long user bursts
//	Zeus        65k       220k     most OS-intensive of all
var presets = []*Params{
	{
		Name:     "apache",
		LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.16, MulFrac: 0.01, DivFrac: 0.002,
		OSLoadFrac: 0.27, OSStoreFrac: 0.13, OSBranchFrac: 0.18, OSSIFrac: 0.008,
		UserSIFrac:        0.0015,
		UserInstrsPerTrap: 10_200, OSInstrsPerTrap: 19_200,
		MispredictRate: 0.04,
		PrivPages:      192, SharedPages: 3072, OSPages: 1536, CodePages: 96, OSCodePages: 192,
		HotFrac: 0.86, HotLines: 192, WarmFrac: 0.125, WarmLines: 8192,
		SharedFrac: 0.24, SyncFrac: 0.024, OSSyncFrac: 0.048, SyncLines: 64,
		ICLineRunMean: 9, ICHotFrac: 0.988, ICHotLines: 96, DepMean: 2.6,
	},
	{
		Name:     "oltp",
		LoadFrac: 0.28, StoreFrac: 0.13, BranchFrac: 0.14, MulFrac: 0.012, DivFrac: 0.002,
		OSLoadFrac: 0.27, OSStoreFrac: 0.12, OSBranchFrac: 0.17, OSSIFrac: 0.003,
		UserSIFrac:        0.0008,
		UserInstrsPerTrap: 26_400, OSInstrsPerTrap: 5_100,
		MispredictRate: 0.045,
		PrivPages:      256, SharedPages: 8192, OSPages: 1024, CodePages: 160, OSCodePages: 192,
		HotFrac: 0.84, HotLines: 224, WarmFrac: 0.142, WarmLines: 10240,
		SharedFrac: 0.30, SyncFrac: 0.030, OSSyncFrac: 0.042, SyncLines: 80,
		ICLineRunMean: 9, ICHotFrac: 0.990, ICHotLines: 112, DepMean: 2.5,
	},
	{
		Name:     "pgoltp",
		LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.15, MulFrac: 0.012, DivFrac: 0.002,
		OSLoadFrac: 0.26, OSStoreFrac: 0.12, OSBranchFrac: 0.17, OSSIFrac: 0.0025,
		UserSIFrac:        0.0007,
		UserInstrsPerTrap: 37_400, OSInstrsPerTrap: 3_300,
		MispredictRate: 0.042,
		PrivPages:      256, SharedPages: 7168, OSPages: 1024, CodePages: 144, OSCodePages: 192,
		HotFrac: 0.85, HotLines: 224, WarmFrac: 0.134, WarmLines: 10240,
		SharedFrac: 0.27, SyncFrac: 0.027, OSSyncFrac: 0.042, SyncLines: 80,
		ICLineRunMean: 9, ICHotFrac: 0.990, ICHotLines: 112, DepMean: 2.5,
	},
	{
		Name:     "pmake",
		LoadFrac: 0.24, StoreFrac: 0.11, BranchFrac: 0.17, MulFrac: 0.008, DivFrac: 0.001,
		OSLoadFrac: 0.25, OSStoreFrac: 0.12, OSBranchFrac: 0.18, OSSIFrac: 0.0016,
		UserSIFrac:        0.0004,
		UserInstrsPerTrap: 92_900, OSInstrsPerTrap: 6_300,
		MispredictRate: 0.03,
		PrivPages:      768, SharedPages: 256, OSPages: 768, CodePages: 256, OSCodePages: 192,
		HotFrac: 0.90, HotLines: 256, WarmFrac: 0.092, WarmLines: 6144,
		SharedFrac: 0.015, SyncFrac: 0.0006, OSSyncFrac: 0.012, SyncLines: 32,
		ICLineRunMean: 10, ICHotFrac: 0.994, ICHotLines: 112, DepMean: 2.8,
	},
	{
		Name:     "pgbench",
		LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.14, MulFrac: 0.010, DivFrac: 0.002,
		OSLoadFrac: 0.26, OSStoreFrac: 0.12, OSBranchFrac: 0.17, OSSIFrac: 0.0022,
		UserSIFrac:        0.0005,
		UserInstrsPerTrap: 133_600, OSInstrsPerTrap: 20_300,
		MispredictRate: 0.04,
		PrivPages:      256, SharedPages: 6144, OSPages: 1024, CodePages: 144, OSCodePages: 192,
		HotFrac: 0.85, HotLines: 224, WarmFrac: 0.125, WarmLines: 3072,
		SharedFrac: 0.25, SyncFrac: 0.024, OSSyncFrac: 0.039, SyncLines: 80,
		ICLineRunMean: 9, ICHotFrac: 0.991, ICHotLines: 112, DepMean: 2.6,
	},
	{
		Name:     "zeus",
		LoadFrac: 0.25, StoreFrac: 0.12, BranchFrac: 0.16, MulFrac: 0.01, DivFrac: 0.002,
		OSLoadFrac: 0.27, OSStoreFrac: 0.13, OSBranchFrac: 0.18, OSSIFrac: 0.009,
		UserSIFrac:        0.0015,
		UserInstrsPerTrap: 9_100, OSInstrsPerTrap: 38_100,
		MispredictRate: 0.04,
		PrivPages:      160, SharedPages: 2560, OSPages: 1792, CodePages: 96, OSCodePages: 224,
		HotFrac: 0.86, HotLines: 192, WarmFrac: 0.124, WarmLines: 8192,
		SharedFrac: 0.22, SyncFrac: 0.023, OSSyncFrac: 0.051, SyncLines: 64,
		ICLineRunMean: 9, ICHotFrac: 0.987, ICHotLines: 96, DepMean: 2.6,
	},
}
