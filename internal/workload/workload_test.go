package workload

import "testing"

func TestAllPresetsValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestNamesMatchPresets(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("expected the paper's 6 workloads, got %d", len(names))
	}
	for _, n := range names {
		if _, err := ByName(n); err != nil {
			t.Errorf("preset %q missing: %v", n, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("specjbb"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestByNameReturnsCopy(t *testing.T) {
	a, _ := ByName("apache")
	a.LoadFrac = 0.99
	b, _ := ByName("apache")
	if b.LoadFrac == 0.99 {
		t.Fatal("ByName must return an independent copy")
	}
}

// TestTable2Character checks the calibration targets' relative shape:
// Zeus is the most OS-intensive, pgbench has the longest user bursts,
// pmake shares the least.
func TestTable2Character(t *testing.T) {
	get := func(n string) *Params {
		p, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	zeus, apache, pgbench, pmake := get("zeus"), get("apache"), get("pgbench"), get("pmake")
	if zeus.OSInstrsPerTrap <= zeus.UserInstrsPerTrap {
		t.Error("zeus must be OS-dominated")
	}
	if apache.OSInstrsPerTrap <= apache.UserInstrsPerTrap {
		t.Error("apache must be OS-dominated")
	}
	for _, other := range []*Params{get("apache"), get("oltp"), get("pgoltp"), get("pmake"), get("zeus")} {
		if pgbench.UserInstrsPerTrap <= other.UserInstrsPerTrap {
			t.Errorf("pgbench should have the longest user bursts (vs %s)", other.Name)
		}
	}
	for _, other := range []*Params{get("apache"), get("oltp"), get("pgoltp"), get("pgbench"), get("zeus")} {
		if pmake.SharedFrac >= other.SharedFrac || pmake.SyncFrac >= other.SyncFrac {
			t.Errorf("pmake should share the least (vs %s)", other.Name)
		}
	}
}

func TestValidationCatchesBadMixes(t *testing.T) {
	p, _ := ByName("apache")
	p.LoadFrac = 0.9
	p.StoreFrac = 0.9
	if err := p.Validate(); err == nil {
		t.Fatal("over-full instruction mix accepted")
	}
	p, _ = ByName("apache")
	p.OSLoadFrac, p.OSStoreFrac, p.OSBranchFrac = 0.5, 0.4, 0.3
	if err := p.Validate(); err == nil {
		t.Fatal("over-full OS mix accepted")
	}
	p, _ = ByName("apache")
	p.UserInstrsPerTrap = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero phase length accepted")
	}
	p, _ = ByName("apache")
	p.HotLines = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero hot set accepted")
	}
	p, _ = ByName("apache")
	p.CodePages = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero footprint accepted")
	}
}
