package campaign

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/stats"
)

// determinismJobs is a small but representative sweep: two system
// kinds, two seeds, one knob variant.
func determinismJobs(t *testing.T) []Job {
	t.Helper()
	spec, err := Named("tso", []string{"apache"}, []uint64{11, 23})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// summarizeJSON runs jobs on an engine and renders the aggregated rows
// as canonical JSON bytes.
func summarizeJSON(t *testing.T, eng *Engine, jobs []Job) ([]byte, *ResultSet) {
	t.Helper()
	rs, err := eng.Run(context.Background(), microScale(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stats.WriteRowsJSON(&buf, Summarize(rs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rs
}

// TestParallelismDeterminism: the same spec run with Parallel=1 and
// Parallel=NumCPU must produce byte-identical aggregated results — the
// worker pool's scheduling must not leak into the output.
func TestParallelismDeterminism(t *testing.T) {
	jobs := determinismJobs(t)
	seq, _ := summarizeJSON(t, New(Options{Parallel: 1}), jobs)
	par, _ := summarizeJSON(t, New(Options{Parallel: runtime.NumCPU()}), jobs)
	if !bytes.Equal(seq, par) {
		t.Fatalf("sequential and parallel runs diverge:\nseq: %s\npar: %s", seq, par)
	}
	if len(seq) == 0 || string(seq) == "[]\n" {
		t.Fatal("summary is empty")
	}
}

// TestCacheWarmRerunIdentical: a rerun against a warm cache must hit on
// every job and emit byte-identical rows.
func TestCacheWarmRerunIdentical(t *testing.T) {
	jobs := determinismJobs(t)
	cache, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Parallel: runtime.NumCPU(), Cache: cache})

	cold, rs := summarizeJSON(t, eng, jobs)
	if rs.Hits != 0 || rs.Misses != len(jobs) {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/%d", rs.Hits, rs.Misses, len(jobs))
	}
	warm, rs2 := summarizeJSON(t, eng, jobs)
	if rs2.Hits != len(jobs) || rs2.Misses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want %d/0", rs2.Hits, rs2.Misses, len(jobs))
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm rerun diverges from cold run:\ncold: %s\nwarm: %s", cold, warm)
	}
}

// TestInterruptedCampaignResumes: a campaign that only partially
// completed resumes from the cache — already-finished jobs are hits,
// only the remainder simulates — and the final output matches an
// uninterrupted run.
func TestInterruptedCampaignResumes(t *testing.T) {
	jobs := determinismJobs(t)
	if len(jobs) < 4 {
		t.Fatalf("need >= 4 jobs, have %d", len(jobs))
	}
	cache, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Parallel: 2, Cache: cache})

	// "Interrupted": only the first half of the campaign completed.
	half := jobs[:len(jobs)/2]
	if _, err := eng.Run(context.Background(), microScale(), half); err != nil {
		t.Fatal(err)
	}

	resumed, rs := summarizeJSON(t, eng, jobs)
	if rs.Hits != len(half) || rs.Misses != len(jobs)-len(half) {
		t.Fatalf("resume: hits=%d misses=%d, want %d/%d",
			rs.Hits, rs.Misses, len(half), len(jobs)-len(half))
	}

	full, _ := summarizeJSON(t, New(Options{Parallel: 2}), jobs)
	if !bytes.Equal(resumed, full) {
		t.Fatal("resumed campaign output differs from an uninterrupted run")
	}
}

// reliaTestJobs is a small reliability sweep: every protection mode at
// one rate, one workload, one seed, three trials per cell.
func reliaTestJobs() []Job {
	return ReliaJobs([]string{"apache"}, []uint64{11}, []float64{15_000}, 3)
}

// TestReliaParallelismDeterminism is the injection-determinism
// guarantee end to end: the same fault.Plan seeds must produce
// byte-identical injection logs — and therefore identical outcome
// tallies, Wilson intervals and MTTF/FIT rows — whether the campaign
// runs on one worker or NumCPU.
func TestReliaParallelismDeterminism(t *testing.T) {
	jobs := reliaTestJobs()
	seq, rsSeq := summarizeJSON(t, New(Options{Parallel: 1}), jobs)
	par, rsPar := summarizeJSON(t, New(Options{Parallel: runtime.NumCPU()}), jobs)
	if !bytes.Equal(seq, par) {
		t.Fatalf("relia campaign diverges across parallelism:\nseq: %s\npar: %s", seq, par)
	}
	for i := range rsSeq.Results {
		a, b := rsSeq.Results[i].Metrics.Relia, rsPar.Results[i].Metrics.Relia
		if a == nil || b == nil {
			t.Fatalf("job %d missing relia batch", i)
		}
		if a.LogDigest == "" || a.LogDigest != b.LogDigest {
			t.Fatalf("job %d injection logs differ: %q vs %q", i, a.LogDigest, b.LogDigest)
		}
	}
	if !strings.Contains(string(seq), "relia:coverage:") {
		t.Fatal("summary carries no reliability rows")
	}
}

// TestReliaCacheWarmRerun: reliability batches round-trip the result
// cache — a warm rerun hits on every job and reproduces the rows and
// injection-log digests byte for byte.
func TestReliaCacheWarmRerun(t *testing.T) {
	jobs := reliaTestJobs()
	cache, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Parallel: runtime.NumCPU(), Cache: cache})
	cold, rs := summarizeJSON(t, eng, jobs)
	if rs.Misses != len(jobs) {
		t.Fatalf("cold run: %d misses, want %d", rs.Misses, len(jobs))
	}
	warm, rs2 := summarizeJSON(t, eng, jobs)
	if rs2.Hits != len(jobs) {
		t.Fatalf("warm run: %d hits, want %d", rs2.Hits, len(jobs))
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cache-warm relia rerun not byte-identical")
	}
	for i := range rs.Results {
		a, b := rs.Results[i].Metrics.Relia, rs2.Results[i].Metrics.Relia
		if b == nil || a.LogDigest != b.LogDigest {
			t.Fatalf("job %d digest lost through the cache", i)
		}
	}
}
