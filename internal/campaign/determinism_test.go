package campaign

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"repro/internal/stats"
)

// determinismJobs is a small but representative sweep: two system
// kinds, two seeds, one knob variant.
func determinismJobs(t *testing.T) []Job {
	t.Helper()
	spec, err := Named("tso", []string{"apache"}, []uint64{11, 23})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// summarizeJSON runs jobs on an engine and renders the aggregated rows
// as canonical JSON bytes.
func summarizeJSON(t *testing.T, eng *Engine, jobs []Job) ([]byte, *ResultSet) {
	t.Helper()
	rs, err := eng.Run(context.Background(), microScale(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stats.WriteRowsJSON(&buf, Summarize(rs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rs
}

// TestParallelismDeterminism: the same spec run with Parallel=1 and
// Parallel=NumCPU must produce byte-identical aggregated results — the
// worker pool's scheduling must not leak into the output.
func TestParallelismDeterminism(t *testing.T) {
	jobs := determinismJobs(t)
	seq, _ := summarizeJSON(t, New(Options{Parallel: 1}), jobs)
	par, _ := summarizeJSON(t, New(Options{Parallel: runtime.NumCPU()}), jobs)
	if !bytes.Equal(seq, par) {
		t.Fatalf("sequential and parallel runs diverge:\nseq: %s\npar: %s", seq, par)
	}
	if len(seq) == 0 || string(seq) == "[]\n" {
		t.Fatal("summary is empty")
	}
}

// TestCacheWarmRerunIdentical: a rerun against a warm cache must hit on
// every job and emit byte-identical rows.
func TestCacheWarmRerunIdentical(t *testing.T) {
	jobs := determinismJobs(t)
	cache, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Parallel: runtime.NumCPU(), Cache: cache})

	cold, rs := summarizeJSON(t, eng, jobs)
	if rs.Hits != 0 || rs.Misses != len(jobs) {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/%d", rs.Hits, rs.Misses, len(jobs))
	}
	warm, rs2 := summarizeJSON(t, eng, jobs)
	if rs2.Hits != len(jobs) || rs2.Misses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want %d/0", rs2.Hits, rs2.Misses, len(jobs))
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm rerun diverges from cold run:\ncold: %s\nwarm: %s", cold, warm)
	}
}

// TestInterruptedCampaignResumes: a campaign that only partially
// completed resumes from the cache — already-finished jobs are hits,
// only the remainder simulates — and the final output matches an
// uninterrupted run.
func TestInterruptedCampaignResumes(t *testing.T) {
	jobs := determinismJobs(t)
	if len(jobs) < 4 {
		t.Fatalf("need >= 4 jobs, have %d", len(jobs))
	}
	cache, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Parallel: 2, Cache: cache})

	// "Interrupted": only the first half of the campaign completed.
	half := jobs[:len(jobs)/2]
	if _, err := eng.Run(context.Background(), microScale(), half); err != nil {
		t.Fatal(err)
	}

	resumed, rs := summarizeJSON(t, eng, jobs)
	if rs.Hits != len(half) || rs.Misses != len(jobs)-len(half) {
		t.Fatalf("resume: hits=%d misses=%d, want %d/%d",
			rs.Hits, rs.Misses, len(half), len(jobs)-len(half))
	}

	full, _ := summarizeJSON(t, New(Options{Parallel: 2}), jobs)
	if !bytes.Equal(resumed, full) {
		t.Fatal("resumed campaign output differs from an uninterrupted run")
	}
}
