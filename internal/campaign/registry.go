package campaign

import (
	"fmt"
	"sort"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/mode"
	"repro/internal/workload"
)

// DefaultScale is the standard experiment scale: enough cycles for
// steady-state caches and several gang timeslices. internal/exp and
// cmd/mmmd both resolve their presets here, so a "default" campaign
// means the same jobs — and hits the same cache entries — everywhere.
func DefaultScale() Scale {
	return Scale{Warmup: 400_000, Measure: 900_000, Timeslice: 250_000}
}

// QuickScale is the reduced smoke-test scale.
func QuickScale() Scale {
	return Scale{Warmup: 150_000, Measure: 300_000, Timeslice: 60_000}
}

// DefaultSeeds is the standard seed axis: two independent runs per
// cell for confidence intervals.
func DefaultSeeds() []uint64 { return []uint64{11, 23} }

// QuickSeeds is the reduced seed axis for smoke runs.
func QuickSeeds() []uint64 { return []uint64{11} }

// builders maps campaign names to spec constructors. Every figure,
// table and design study of the paper's evaluation is a named campaign
// here, so cmd/mmmd can run any of them by name and internal/exp
// expands the same specs for its in-process tables.
var builders = map[string]func(workloads []string, seeds []uint64) Spec{
	"figure5": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "figure5",
			Kinds:     []core.Kind{core.KindNoDMR2X, core.KindNoDMR, core.KindReunion},
			Workloads: wls,
			Seeds:     seeds,
		}
	},
	"figure6": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "figure6",
			Kinds:     []core.Kind{core.KindDMRBase, core.KindMMMIPC, core.KindMMMTP},
			Workloads: wls,
			Seeds:     seeds,
		}
	},
	"table1": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "table1",
			Kinds:     []core.Kind{core.KindMMMTP},
			Workloads: wls,
			Seeds:     seeds,
		}
	},
	"table2": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "table2",
			Kinds:     []core.Kind{core.KindNoDMR},
			Workloads: wls,
			Seeds:     seeds,
		}
	},
	"pab": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "pab",
			Kinds:     []core.Kind{core.KindMMMIPC},
			Workloads: wls,
			Seeds:     seeds,
			Variants: []Variant{
				{Name: "parallel"},
				{Name: "serial", Knobs: Knobs{PABSerial: true}},
			},
		}
	},
	"singleos": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "singleos",
			Kinds:     []core.Kind{core.KindSingleOS},
			Workloads: wls,
			Seeds:     seeds,
		}
	},
	"tso": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "tso",
			Kinds:     []core.Kind{core.KindNoDMR2X, core.KindReunion},
			Workloads: wls,
			Seeds:     seeds,
			Variants: []Variant{
				{Name: "sc"},
				{Name: "tso", Knobs: Knobs{TSO: true}},
			},
		}
	},
	"flush": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "flush",
			Kinds:     []core.Kind{core.KindMMMTP},
			Workloads: wls,
			Seeds:     seeds,
			Variants: []Variant{
				{Name: "flush1", Knobs: Knobs{FlushPerCycle: 1}},
				{Name: "flush2", Knobs: Knobs{FlushPerCycle: 2}},
				{Name: "flush4", Knobs: Knobs{FlushPerCycle: 4}},
				{Name: "flush8", Knobs: Knobs{FlushPerCycle: 8}},
			},
		}
	},
	"faults": func(wls []string, seeds []uint64) Spec {
		// Per-kind knobs do not fit a cross-product; FaultJobs builds
		// the explicit cells.
		return Spec{Name: "faults", Jobs: FaultJobs(wls, seeds, 40_000)}
	},
	"relia": func(wls []string, seeds []uint64) Spec {
		// The Monte Carlo reliability evaluation: protection modes x
		// workloads x fault rates, each cell a batch of derived-seed
		// trials classified by internal/relia.
		return Spec{Name: "relia", Jobs: ReliaJobs(wls, seeds, nil, 0)}
	},
	"relia-adaptive": func(wls []string, seeds []uint64) Spec {
		// The sequential-stopping variant of "relia": the same cells,
		// but trials are scheduled in waves until each cell's 95%
		// Wilson interval on coverage is within ±5 points (a submit
		// may override the precision block). See Spec.Precision.
		return Spec{
			Name:      "relia-adaptive",
			Jobs:      ReliaJobs(wls, seeds, nil, 0),
			Precision: &Precision{HalfWidth: 0.05},
		}
	},
	"policy": func(wls []string, seeds []uint64) Spec {
		// The mode-policy design study: the consolidated mixed-mode
		// server swept over the dynamic coupling policies, fault-free
		// and under fault injection (the fault-escalation policy is
		// inert without protection events to react to). The fault-free
		// cells carry no variant label, so the static baseline is the
		// same cell — same fingerprint, same cache entry — as
		// figure6's MMM-IPC column.
		return Spec{
			Name:      "policy",
			Kinds:     []core.Kind{core.KindMMMIPC},
			Workloads: wls,
			Seeds:     seeds,
			Variants: []Variant{
				{},
				{Name: "faulty", Knobs: Knobs{FaultInterval: 40_000}},
			},
			Policies: append([]string{""}, mode.Dynamic()...),
		}
	},
}

// ReliaMode is one protection mode of the reliability sweep: the
// system kind that realizes it plus the knobs it needs.
type ReliaMode struct {
	Name     string
	Kind     core.Kind
	ForcePAB bool
	// Policy, when non-empty, runs the mode under a dynamic coupling
	// policy instead of the kind's static plans.
	Policy string
}

// ReliaModes lists the swept protection modes in canonical order:
// pure performance mode (every VCPU unprotected, stores PAB-guarded),
// full DMR, the consolidated mixed-mode server, the single-OS system
// whose per-trap Enter-DMR exercises the privileged-register
// verification, and two adaptive modes — fault-escalation on the
// mixed-mode server (pairs couple after a protection event and decay
// back) and duty-cycle scrubbing on the full-DMR roster (pairs spend
// only the duty fraction coupled, trading SDC exposure for
// performance). The adaptive coverage/SDC rows are the policy
// refactor's paper-payoff result.
func ReliaModes() []ReliaMode {
	return []ReliaMode{
		{Name: "performance", Kind: core.KindNoDMR2X, ForcePAB: true},
		{Name: "dmr", Kind: core.KindReunion},
		{Name: "mixed", Kind: core.KindMMMIPC},
		{Name: "singleos", Kind: core.KindSingleOS},
		{Name: "adaptive", Kind: core.KindMMMIPC, Policy: "fault-escalation"},
		{Name: "duty", Kind: core.KindReunion, Policy: "duty-cycle"},
	}
}

// DefaultFaultRates is the default raw-rate axis: mean cycles between
// injected faults. Two rates give the sweep a rate dimension without
// doubling every other axis.
func DefaultFaultRates() []float64 { return []float64{25_000, 50_000} }

// DefaultReliaTrials is the default Monte Carlo batch size per cell.
const DefaultReliaTrials = 6

// ReliaVariant names the sweep cell of one mode at one rate, e.g.
// "dmr-r25000". The variant carries both non-workload axes so cells
// never collide in the aggregation key; %g keeps distinct fractional
// rates distinct.
func ReliaVariant(mode string, rate float64) string {
	return fmt.Sprintf("%s-r%g", mode, rate)
}

// ReliaJobs builds the reliability campaign's explicit job list:
// modes x workloads x rates x seeds. Zero-value arguments select the
// defaults (all workloads, default seeds, DefaultFaultRates,
// DefaultReliaTrials).
func ReliaJobs(workloads []string, seeds []uint64, rates []float64, trials int) []Job {
	if len(workloads) == 0 {
		workloads = workload.Names()
	}
	if len(seeds) == 0 {
		seeds = DefaultSeeds()
	}
	if len(rates) == 0 {
		rates = DefaultFaultRates()
	}
	if trials <= 0 {
		trials = DefaultReliaTrials
	}
	var jobs []Job
	for _, wl := range workloads {
		for _, m := range ReliaModes() {
			for _, rate := range rates {
				for _, seed := range seeds {
					jobs = append(jobs, Job{
						Workload: wl,
						Kind:     m.Kind,
						Seed:     seed,
						Variant:  ReliaVariant(m.Name, rate),
						Knobs: Knobs{
							FaultInterval: rate,
							ReliaTrials:   trials,
							ForcePAB:      m.ForcePAB,
							Policy:        m.Policy,
						},
					})
				}
			}
		}
	}
	return jobs
}

// FaultJobs builds the protection-validation campaign's explicit job
// list: faults at the given mean interval injected into Reunion (all
// DMR), MMM-IPC with the PAB enabled, and MMM-IPC with the PAB
// disabled.
func FaultJobs(workloads []string, seeds []uint64, meanInterval float64) []Job {
	if len(workloads) == 0 {
		workloads = []string{"apache"}
	}
	if len(seeds) == 0 {
		seeds = DefaultSeeds()
	}
	var jobs []Job
	for _, wl := range workloads {
		for _, seed := range seeds {
			jobs = append(jobs,
				Job{Workload: wl, Kind: core.KindReunion, Seed: seed, Variant: "dmr",
					Knobs: Knobs{FaultInterval: meanInterval}},
				Job{Workload: wl, Kind: core.KindMMMIPC, Seed: seed, Variant: "pab",
					Knobs: Knobs{FaultInterval: meanInterval}},
				Job{Workload: wl, Kind: core.KindMMMIPC, Seed: seed, Variant: "nopab",
					Knobs: Knobs{FaultInterval: meanInterval, PABDisabled: true}},
			)
		}
	}
	return jobs
}

// Named resolves a registered campaign name into its spec. Empty
// workloads or seeds select the defaults (all six workloads, seeds
// {11, 23}).
func Named(name string, workloads []string, seeds []uint64) (Spec, error) {
	b, ok := builders[name]
	if !ok {
		return Spec{}, fmt.Errorf("campaign: unknown campaign %q (have %v)", name, Names())
	}
	return b(workloads, seeds), nil
}

// Names lists the registered campaign names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Axes describes a registered campaign's sweep dimensions under its
// default axes, so operators can discover what a campaign runs without
// reading source (served by mmmd's catalog endpoint). The type lives
// in internal/api — it crosses the wire in the catalog body.
type Axes = api.Axes

// Catalog expands every registered campaign under its default axes and
// summarizes the distinct values of each dimension, in sorted order.
func Catalog() []Axes {
	var out []Axes
	for _, name := range Names() {
		spec := builders[name](nil, nil)
		jobs, err := spec.Expand()
		if err != nil {
			// A registered campaign that cannot expand under defaults is
			// a programming error; surface it as an empty entry rather
			// than hiding the name.
			out = append(out, Axes{Name: name})
			continue
		}
		ax := Axes{Name: name, Jobs: len(jobs)}
		if spec.Precision != nil {
			p := spec.Precision.Normalized()
			ax.Precision = &p
		}
		kinds := map[string]bool{}
		wls := map[string]bool{}
		variants := map[string]bool{}
		policies := map[string]bool{}
		seeds := map[uint64]bool{}
		for _, j := range jobs {
			kinds[j.Kind.String()] = true
			wls[j.Workload] = true
			if j.Variant != "" {
				variants[j.Variant] = true
			}
			pol := j.Knobs.Policy
			if pol == "" {
				pol = "static"
			}
			policies[pol] = true
			seeds[j.Seed] = true
			if j.Knobs.ReliaTrials > 0 {
				ax.Reliability = true
			}
		}
		for k := range kinds {
			ax.Kinds = append(ax.Kinds, k)
		}
		for w := range wls {
			ax.Workloads = append(ax.Workloads, w)
		}
		for v := range variants {
			ax.Variants = append(ax.Variants, v)
		}
		if len(policies) > 1 || !policies["static"] {
			for p := range policies {
				ax.Policies = append(ax.Policies, p)
			}
		}
		for s := range seeds {
			ax.Seeds = append(ax.Seeds, s)
		}
		sort.Strings(ax.Kinds)
		sort.Strings(ax.Workloads)
		sort.Strings(ax.Variants)
		sort.Strings(ax.Policies)
		sort.Slice(ax.Seeds, func(i, j int) bool { return ax.Seeds[i] < ax.Seeds[j] })
		out = append(out, ax)
	}
	return out
}
