package campaign

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// DefaultScale is the standard experiment scale: enough cycles for
// steady-state caches and several gang timeslices. internal/exp and
// cmd/mmmd both resolve their presets here, so a "default" campaign
// means the same jobs — and hits the same cache entries — everywhere.
func DefaultScale() Scale {
	return Scale{Warmup: 400_000, Measure: 900_000, Timeslice: 250_000}
}

// QuickScale is the reduced smoke-test scale.
func QuickScale() Scale {
	return Scale{Warmup: 150_000, Measure: 300_000, Timeslice: 60_000}
}

// DefaultSeeds is the standard seed axis: two independent runs per
// cell for confidence intervals.
func DefaultSeeds() []uint64 { return []uint64{11, 23} }

// QuickSeeds is the reduced seed axis for smoke runs.
func QuickSeeds() []uint64 { return []uint64{11} }

// builders maps campaign names to spec constructors. Every figure,
// table and design study of the paper's evaluation is a named campaign
// here, so cmd/mmmd can run any of them by name and internal/exp
// expands the same specs for its in-process tables.
var builders = map[string]func(workloads []string, seeds []uint64) Spec{
	"figure5": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "figure5",
			Kinds:     []core.Kind{core.KindNoDMR2X, core.KindNoDMR, core.KindReunion},
			Workloads: wls,
			Seeds:     seeds,
		}
	},
	"figure6": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "figure6",
			Kinds:     []core.Kind{core.KindDMRBase, core.KindMMMIPC, core.KindMMMTP},
			Workloads: wls,
			Seeds:     seeds,
		}
	},
	"table1": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "table1",
			Kinds:     []core.Kind{core.KindMMMTP},
			Workloads: wls,
			Seeds:     seeds,
		}
	},
	"table2": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "table2",
			Kinds:     []core.Kind{core.KindNoDMR},
			Workloads: wls,
			Seeds:     seeds,
		}
	},
	"pab": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "pab",
			Kinds:     []core.Kind{core.KindMMMIPC},
			Workloads: wls,
			Seeds:     seeds,
			Variants: []Variant{
				{Name: "parallel"},
				{Name: "serial", Knobs: Knobs{PABSerial: true}},
			},
		}
	},
	"singleos": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "singleos",
			Kinds:     []core.Kind{core.KindSingleOS},
			Workloads: wls,
			Seeds:     seeds,
		}
	},
	"tso": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "tso",
			Kinds:     []core.Kind{core.KindNoDMR2X, core.KindReunion},
			Workloads: wls,
			Seeds:     seeds,
			Variants: []Variant{
				{Name: "sc"},
				{Name: "tso", Knobs: Knobs{TSO: true}},
			},
		}
	},
	"flush": func(wls []string, seeds []uint64) Spec {
		return Spec{
			Name:      "flush",
			Kinds:     []core.Kind{core.KindMMMTP},
			Workloads: wls,
			Seeds:     seeds,
			Variants: []Variant{
				{Name: "flush1", Knobs: Knobs{FlushPerCycle: 1}},
				{Name: "flush2", Knobs: Knobs{FlushPerCycle: 2}},
				{Name: "flush4", Knobs: Knobs{FlushPerCycle: 4}},
				{Name: "flush8", Knobs: Knobs{FlushPerCycle: 8}},
			},
		}
	},
	"faults": func(wls []string, seeds []uint64) Spec {
		// Per-kind knobs do not fit a cross-product; FaultJobs builds
		// the explicit cells.
		return Spec{Name: "faults", Jobs: FaultJobs(wls, seeds, 40_000)}
	},
}

// FaultJobs builds the protection-validation campaign's explicit job
// list: faults at the given mean interval injected into Reunion (all
// DMR), MMM-IPC with the PAB enabled, and MMM-IPC with the PAB
// disabled.
func FaultJobs(workloads []string, seeds []uint64, meanInterval float64) []Job {
	if len(workloads) == 0 {
		workloads = []string{"apache"}
	}
	if len(seeds) == 0 {
		seeds = DefaultSeeds()
	}
	var jobs []Job
	for _, wl := range workloads {
		for _, seed := range seeds {
			jobs = append(jobs,
				Job{Workload: wl, Kind: core.KindReunion, Seed: seed, Variant: "dmr",
					Knobs: Knobs{FaultInterval: meanInterval}},
				Job{Workload: wl, Kind: core.KindMMMIPC, Seed: seed, Variant: "pab",
					Knobs: Knobs{FaultInterval: meanInterval}},
				Job{Workload: wl, Kind: core.KindMMMIPC, Seed: seed, Variant: "nopab",
					Knobs: Knobs{FaultInterval: meanInterval, PABDisabled: true}},
			)
		}
	}
	return jobs
}

// Named resolves a registered campaign name into its spec. Empty
// workloads or seeds select the defaults (all six workloads, seeds
// {11, 23}).
func Named(name string, workloads []string, seeds []uint64) (Spec, error) {
	b, ok := builders[name]
	if !ok {
		return Spec{}, fmt.Errorf("campaign: unknown campaign %q (have %v)", name, Names())
	}
	return b(workloads, seeds), nil
}

// Names lists the registered campaign names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
