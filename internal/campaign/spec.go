// Package campaign turns declarative sweep specifications into
// deterministic job sets and executes them on a bounded,
// context-cancellable worker pool with a content-addressed result
// cache. It is the execution engine behind internal/exp (every figure,
// table and design study of the paper is a named campaign) and behind
// the cmd/mmmd sweep service: overlapping or re-submitted campaigns
// resume from cached results instead of re-simulating.
package campaign

import (
	"fmt"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/mode"
	"repro/internal/workload"
)

// The job-identity vocabulary — Scale, Knobs, Job and the fingerprint
// derivation, plus the adaptive Precision block — lives in
// internal/api (it crosses the wire: the lease protocol and the mmmd
// bodies carry it verbatim). The aliases keep campaign the natural
// import for execution-side callers; api.SpecVersion is the cache
// generation and bumps under the same discipline as before the move.
type (
	Scale     = api.Scale
	Knobs     = api.Knobs
	Job       = api.Job
	Precision = api.Precision
)

// SpecVersion is folded into every job fingerprint; see
// api.SpecVersion for the generation history.
const SpecVersion = api.SpecVersion

// Variant names one point of a non-axis sweep dimension (e.g. the
// serial-vs-parallel PAB lookup). The empty Variant{} is the default
// configuration.
type Variant struct {
	Name  string `json:"name"`
	Knobs Knobs  `json:"knobs"`
}

// Spec declares a sweep: the cross-product of kinds x workloads x
// seeds x variants, or an explicit job list for campaigns that do not
// fit a cross-product (e.g. per-kind knobs).
type Spec struct {
	Name      string      `json:"name"`
	Kinds     []core.Kind `json:"kinds,omitempty"`
	Workloads []string    `json:"workloads,omitempty"`
	Seeds     []uint64    `json:"seeds,omitempty"`
	Variants  []Variant   `json:"variants,omitempty"`
	// Policies is the mode-policy axis: each entry crosses the sweep
	// with Knobs.Policy set to it ("" = the kind's static default).
	// Empty means the single default policy. The axis also applies to
	// explicit Jobs lists, multiplying the jobs that do not already
	// fix their own policy (jobs that do, like relia's adaptive-mode
	// cells, keep it — the policy is part of what their labels mean).
	Policies []string `json:"policies,omitempty"`
	// Jobs, when non-empty, bypasses the cross-product and is used
	// verbatim (still validated and deduplicated by Expand).
	Jobs []Job `json:"jobs,omitempty"`
	// Precision, when set, makes the campaign adaptive: Expand's jobs
	// become cells whose reliability trials the engine/dispatcher
	// schedules in waves under the sequential stopping rule instead of
	// one fixed batch per cell. Every cell must be a reliability cell
	// (Knobs.FaultInterval > 0). Run such specs through RunSpec.
	Precision *Precision `json:"precision,omitempty"`
}

// Expand produces the deterministic job set of the spec: the same spec
// always expands to the same jobs in the same order, with duplicate
// cells removed. Axes left empty default to all workloads, the
// two-seed default, and the single default variant.
func (s Spec) Expand() ([]Job, error) {
	if len(s.Jobs) > 0 {
		return dedupe(applyPolicies(s.Jobs, s.Policies))
	}
	if len(s.Kinds) == 0 {
		return nil, fmt.Errorf("campaign: spec %q has no kinds and no explicit jobs", s.Name)
	}
	wls := s.Workloads
	if len(wls) == 0 {
		wls = workload.Names()
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = DefaultSeeds()
	}
	variants := s.Variants
	if len(variants) == 0 {
		variants = []Variant{{}}
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []string{""}
	}
	var jobs []Job
	for _, wl := range wls {
		for _, k := range s.Kinds {
			for _, v := range variants {
				for _, pol := range policies {
					for _, seed := range seeds {
						knobs := v.Knobs
						if pol != "" {
							knobs.Policy = pol
						}
						jobs = append(jobs, Job{
							Workload: wl,
							Kind:     k,
							Seed:     seed,
							Variant:  v.Name,
							Knobs:    knobs,
						})
					}
				}
			}
		}
	}
	return dedupe(jobs)
}

// applyPolicies crosses an explicit job list with the policy axis.
// Jobs whose policy is part of their identity (relia's adaptive
// modes preset Knobs.Policy) are never overwritten — their variant
// labels name the policy they run, so rewriting it would emit rows
// claiming one policy while simulating another; they pass through
// once per axis entry and dedupe collapses the copies.
func applyPolicies(jobs []Job, policies []string) []Job {
	if len(policies) == 0 {
		return jobs
	}
	out := make([]Job, 0, len(jobs)*len(policies))
	for _, pol := range policies {
		for _, j := range jobs {
			if pol != "" && j.Knobs.Policy == "" {
				j.Knobs.Policy = pol
			}
			out = append(out, j)
		}
	}
	return out
}

// dedupe validates workload and policy names — canonicalizing policy
// specs, so "duty-cycle:60000:25" and "duty-cycle" land in the same
// cell — and drops exact duplicate jobs while preserving order.
func dedupe(jobs []Job) ([]Job, error) {
	seen := make(map[Job]struct{}, len(jobs))
	out := jobs[:0:0]
	for _, j := range jobs {
		if _, err := workload.ByName(j.Workload); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		if j.Knobs.Policy != "" {
			canon, err := mode.Parse(j.Knobs.Policy)
			if err != nil {
				return nil, fmt.Errorf("campaign: %w", err)
			}
			if canon == "static" {
				// An explicit static policy is the default behavior;
				// normalize to the default cell so it shares the
				// baseline's cache entry instead of re-simulating it.
				canon = ""
			}
			j.Knobs.Policy = canon
		}
		if _, ok := seen[j]; ok {
			continue
		}
		seen[j] = struct{}{}
		out = append(out, j)
	}
	return out, nil
}
