// Package campaign turns declarative sweep specifications into
// deterministic job sets and executes them on a bounded,
// context-cancellable worker pool with a content-addressed result
// cache. It is the execution engine behind internal/exp (every figure,
// table and design study of the paper is a named campaign) and behind
// the cmd/mmmd sweep service: overlapping or re-submitted campaigns
// resume from cached results instead of re-simulating.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/mode"
	"repro/internal/sim"
	"repro/internal/workload"
)

// SpecVersion is folded into every job fingerprint. Bump it whenever
// the simulator's semantics change in a way that invalidates previously
// cached metrics.
//
// v2: Reunion fingerprints cover memory access addresses, persistent
// divergences escalate to machine checks, and reliability (Monte
// Carlo trial batch) jobs exist.
//
// v3: Metrics.FaultsInjected is rebased at ResetMeasurement and now
// counts only measurement-window injections; cached v2 metrics for
// fault-injection cells include warmup faults and are invalid.
//
// v4: the runtime mode-policy axis exists (Knobs.Policy, folded into
// the fingerprint). Static-policy results are byte-identical to v3 —
// the golden-row regression pins that — but the fingerprint input
// set changed, so cached v3 entries are re-keyed, not reinterpreted.
const SpecVersion = 4

// Scale sets the simulation windows shared by every job of a campaign.
type Scale struct {
	Warmup    sim.Cycle `json:"warmup"`
	Measure   sim.Cycle `json:"measure"`
	Timeslice sim.Cycle `json:"timeslice"`
}

// Knobs is the declarative form of the sim.Config mutations the
// evaluation sweeps over. Unlike a closure, a Knobs value is part of a
// job's identity: it canonicalizes into the cache fingerprint, so two
// jobs differing only in a knob never collide. The annotation below is
// enforced by mmmlint's knobcover analyzer: every field added here
// must be folded into Fingerprint/Key/SimSeed (with a SpecVersion
// bump) or carry an explicit //mmm:knobcover-exempt reason, so a knob
// outside the fingerprint — the silent cache-poisoning failure mode —
// is a build error, not a code-review hope.
//
//mmm:knobcover Fingerprint,Key,SimSeed
type Knobs struct {
	// PABSerial selects the serial 2-cycle PAB lookup (Section 5.2).
	PABSerial bool `json:"pab_serial,omitempty"`
	// PABDisabled turns PAB enforcement off (fault-injection ablation).
	PABDisabled bool `json:"pab_disabled,omitempty"`
	// TSO selects total-store-order instead of the paper's SC.
	TSO bool `json:"tso,omitempty"`
	// FlushPerCycle overrides the Leave-DMR flush rate when positive.
	FlushPerCycle int `json:"flush_per_cycle,omitempty"`
	// FaultInterval, when positive, injects faults with this mean
	// spacing in cycles.
	FaultInterval float64 `json:"fault_interval,omitempty"`
	// FaultKinds restricts injected manifestations to a comma-joined
	// list of canonical kind names ("result-flip,tlb-flip"); empty
	// injects all kinds. A string (not a slice) so Job stays
	// comparable and deduplicable.
	FaultKinds string `json:"fault_kinds,omitempty"`
	// ReliaTrials, when positive, turns the job into a reliability
	// evaluation batch: that many Monte Carlo fault-injection trials
	// run and the result carries an outcome taxonomy instead of
	// performance buckets (see internal/relia).
	ReliaTrials int `json:"relia_trials,omitempty"`
	// ForcePAB guards performance-mode stores with the PAB on system
	// kinds that do not enable it by default (the pure
	// performance-mode protection scenario).
	ForcePAB bool `json:"force_pab,omitempty"`
	// Policy names the runtime mode policy (internal/mode) deciding
	// when core pairs couple into DMR and decouple back to performance
	// mode: "" or "static" for the kind's pre-built behavior, or a
	// dynamic policy spec such as "utilization", "duty-cycle:60000:25"
	// or "fault-escalation". Expand canonicalizes and validates it.
	Policy string `json:"policy,omitempty"`
}

// apply mutates a sim.Config according to the knobs. PABDisabled and
// FaultInterval act at the core.Options level, not here.
func (k Knobs) apply(cfg *sim.Config) {
	if k.PABSerial {
		cfg.PABSerial = true
	}
	if k.TSO {
		cfg.TSO = true
	}
	if k.FlushPerCycle > 0 {
		cfg.FlushPerCycle = k.FlushPerCycle
	}
}

// Variant names one point of a non-axis sweep dimension (e.g. the
// serial-vs-parallel PAB lookup). The empty Variant{} is the default
// configuration.
type Variant struct {
	Name  string `json:"name"`
	Knobs Knobs  `json:"knobs"`
}

// Job is one fully specified simulation: a cell of the sweep
// cross-product. Jobs are pure data so they can be expanded, hashed,
// cached and distributed. Like Knobs, the field set is under knobcover
// coverage: every field must reach the fingerprint/key/seed
// derivation.
//
//mmm:knobcover Fingerprint,Key,SimSeed
type Job struct {
	Workload string    `json:"workload"`
	Kind     core.Kind `json:"kind"`
	Seed     uint64    `json:"seed"`
	Variant  string    `json:"variant,omitempty"`
	Knobs    Knobs     `json:"knobs"`
}

// Key is the aggregation key of the job's cell: runs differing only in
// seed share a key and fold into one stats.Sample. A non-default mode
// policy is its own key segment, so a policy sweep's cells never fold
// into the static baseline's.
func (j Job) Key() string {
	k := fmt.Sprintf("%s/%s", j.Workload, j.Kind)
	if j.Variant != "" {
		k += "/" + j.Variant
	}
	if j.Knobs.Policy != "" {
		k += "/pol=" + j.Knobs.Policy
	}
	return k
}

// SimSeed derives the seed handed to the simulator. Mixing the cell
// labels in decorrelates the random streams of different cells that
// declare the same seed, and is stable across processes, so cached
// results remain valid. The policy label is folded in only when set,
// so every pre-policy cell keeps its historical stream.
func (j Job) SimSeed() uint64 {
	if j.Knobs.Policy != "" {
		return sim.DeriveSeed(j.Seed, j.Workload, j.Kind.String(), j.Variant, j.Knobs.Policy)
	}
	return sim.DeriveSeed(j.Seed, j.Workload, j.Kind.String(), j.Variant)
}

// Fingerprint is the content address of the job's result: a SHA-256
// over the canonical rendering of (SpecVersion, scale, every job
// parameter). Equal fingerprints mean byte-identical simulations.
func (j Job) Fingerprint(sc Scale) string {
	h := sha256.New()
	fmt.Fprintf(h,
		"v%d|warm=%d|meas=%d|slice=%d|wl=%s|kind=%s|seed=%d|var=%s|pabser=%t|pabdis=%t|tso=%t|flush=%d|fault=%g|fkinds=%s|rtrials=%d|fpab=%t|policy=%s",
		SpecVersion, sc.Warmup, sc.Measure, sc.Timeslice,
		j.Workload, j.Kind, j.Seed, j.Variant,
		j.Knobs.PABSerial, j.Knobs.PABDisabled, j.Knobs.TSO,
		j.Knobs.FlushPerCycle, j.Knobs.FaultInterval,
		j.Knobs.FaultKinds, j.Knobs.ReliaTrials, j.Knobs.ForcePAB,
		j.Knobs.Policy)
	return hex.EncodeToString(h.Sum(nil))
}

// Spec declares a sweep: the cross-product of kinds x workloads x
// seeds x variants, or an explicit job list for campaigns that do not
// fit a cross-product (e.g. per-kind knobs).
type Spec struct {
	Name      string      `json:"name"`
	Kinds     []core.Kind `json:"kinds,omitempty"`
	Workloads []string    `json:"workloads,omitempty"`
	Seeds     []uint64    `json:"seeds,omitempty"`
	Variants  []Variant   `json:"variants,omitempty"`
	// Policies is the mode-policy axis: each entry crosses the sweep
	// with Knobs.Policy set to it ("" = the kind's static default).
	// Empty means the single default policy. The axis also applies to
	// explicit Jobs lists, multiplying the jobs that do not already
	// fix their own policy (jobs that do, like relia's adaptive-mode
	// cells, keep it — the policy is part of what their labels mean).
	Policies []string `json:"policies,omitempty"`
	// Jobs, when non-empty, bypasses the cross-product and is used
	// verbatim (still validated and deduplicated by Expand).
	Jobs []Job `json:"jobs,omitempty"`
}

// Expand produces the deterministic job set of the spec: the same spec
// always expands to the same jobs in the same order, with duplicate
// cells removed. Axes left empty default to all workloads, the
// two-seed default, and the single default variant.
func (s Spec) Expand() ([]Job, error) {
	if len(s.Jobs) > 0 {
		return dedupe(applyPolicies(s.Jobs, s.Policies))
	}
	if len(s.Kinds) == 0 {
		return nil, fmt.Errorf("campaign: spec %q has no kinds and no explicit jobs", s.Name)
	}
	wls := s.Workloads
	if len(wls) == 0 {
		wls = workload.Names()
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = DefaultSeeds()
	}
	variants := s.Variants
	if len(variants) == 0 {
		variants = []Variant{{}}
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []string{""}
	}
	var jobs []Job
	for _, wl := range wls {
		for _, k := range s.Kinds {
			for _, v := range variants {
				for _, pol := range policies {
					for _, seed := range seeds {
						knobs := v.Knobs
						if pol != "" {
							knobs.Policy = pol
						}
						jobs = append(jobs, Job{
							Workload: wl,
							Kind:     k,
							Seed:     seed,
							Variant:  v.Name,
							Knobs:    knobs,
						})
					}
				}
			}
		}
	}
	return dedupe(jobs)
}

// applyPolicies crosses an explicit job list with the policy axis.
// Jobs whose policy is part of their identity (relia's adaptive
// modes preset Knobs.Policy) are never overwritten — their variant
// labels name the policy they run, so rewriting it would emit rows
// claiming one policy while simulating another; they pass through
// once per axis entry and dedupe collapses the copies.
func applyPolicies(jobs []Job, policies []string) []Job {
	if len(policies) == 0 {
		return jobs
	}
	out := make([]Job, 0, len(jobs)*len(policies))
	for _, pol := range policies {
		for _, j := range jobs {
			if pol != "" && j.Knobs.Policy == "" {
				j.Knobs.Policy = pol
			}
			out = append(out, j)
		}
	}
	return out
}

// dedupe validates workload and policy names — canonicalizing policy
// specs, so "duty-cycle:60000:25" and "duty-cycle" land in the same
// cell — and drops exact duplicate jobs while preserving order.
func dedupe(jobs []Job) ([]Job, error) {
	seen := make(map[Job]struct{}, len(jobs))
	out := jobs[:0:0]
	for _, j := range jobs {
		if _, err := workload.ByName(j.Workload); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		if j.Knobs.Policy != "" {
			canon, err := mode.Parse(j.Knobs.Policy)
			if err != nil {
				return nil, fmt.Errorf("campaign: %w", err)
			}
			if canon == "static" {
				// An explicit static policy is the default behavior;
				// normalize to the default cell so it shares the
				// baseline's cache entry instead of re-simulating it.
				canon = ""
			}
			j.Knobs.Policy = canon
		}
		if _, ok := seen[j]; ok {
			continue
		}
		seen[j] = struct{}{}
		out = append(out, j)
	}
	return out, nil
}
