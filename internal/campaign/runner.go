package campaign

import (
	"context"
	"fmt"
)

// Runner executes an expanded job set at a scale and returns the
// ordered result set. It is the seam between campaign *definition*
// (Spec/Expand) and campaign *execution*: the local bounded worker
// pool (Engine) and the remote fleet dispatcher (Dispatcher) both
// implement it, so every front end — internal/exp tables, mmmbench,
// the mmmd service — can run a sweep on one box or across a worker
// fleet without caring which.
//
// Implementations must uphold the engine's contract: Results are in
// expansion order regardless of scheduling, the run stops on the first
// error or context cancellation, and — given the per-job derived seeds
// — the same (scale, jobs) input produces byte-identical Summarize
// rows however the work was placed.
type Runner interface {
	Run(ctx context.Context, sc Scale, jobs []Job) (*ResultSet, error)
}

// SpecRunner additionally executes whole campaign specs. The
// distinction matters for adaptive-precision campaigns: their job set
// is not known up front (the Precision block drives sequential
// stopping), so they cannot travel through Run's expanded-jobs
// contract. A SpecRunner's RunSpec must behave exactly like Run for
// specs without a Precision block.
type SpecRunner interface {
	Runner
	RunSpec(ctx context.Context, sc Scale, spec Spec) (*ResultSet, error)
}

// Engine and Dispatcher are the two interchangeable executors.
var (
	_ SpecRunner = (*Engine)(nil)
	_ SpecRunner = (*Dispatcher)(nil)
)

// RunSpec executes a campaign spec on any Runner: fixed-batch specs
// expand and run through the plain Runner contract (so custom Runner
// implementations keep working), adaptive specs are routed to the
// runner's RunSpec.
func RunSpec(ctx context.Context, r Runner, sc Scale, spec Spec) (*ResultSet, error) {
	if sr, ok := r.(SpecRunner); ok {
		return sr.RunSpec(ctx, sc, spec)
	}
	if spec.Precision == nil {
		jobs, err := spec.Expand()
		if err != nil {
			return nil, err
		}
		return r.Run(ctx, sc, jobs)
	}
	return nil, fmt.Errorf("campaign: runner %T cannot run adaptive-precision campaigns", r)
}
