package campaign

import "context"

// Runner executes an expanded job set at a scale and returns the
// ordered result set. It is the seam between campaign *definition*
// (Spec/Expand) and campaign *execution*: the local bounded worker
// pool (Engine) and the remote fleet dispatcher (Dispatcher) both
// implement it, so every front end — internal/exp tables, mmmbench,
// the mmmd service — can run a sweep on one box or across a worker
// fleet without caring which.
//
// Implementations must uphold the engine's contract: Results are in
// expansion order regardless of scheduling, the run stops on the first
// error or context cancellation, and — given the per-job derived seeds
// — the same (scale, jobs) input produces byte-identical Summarize
// rows however the work was placed.
type Runner interface {
	Run(ctx context.Context, sc Scale, jobs []Job) (*ResultSet, error)
}

// Engine and Dispatcher are the two interchangeable executors.
var (
	_ Runner = (*Engine)(nil)
	_ Runner = (*Dispatcher)(nil)
)
