package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/core"
)

// DispatchOptions configures a Dispatcher.
type DispatchOptions struct {
	// Workers lists the worker base URLs ("http://host:port"); use
	// ParseWorkerList to build it from a -workers flag.
	Workers []string
	// Cache, when non-nil, is consulted before dispatch (hits never
	// leave the coordinator) and filled as remote completions arrive,
	// so mixed local/remote reruns resume for free.
	Cache Cache
	// OnProgress mirrors Options.OnProgress: called in completion
	// order with running totals.
	OnProgress func(done, total, hits int)
	// Addr is the coordinator's listen address for the per-campaign
	// job board; default "127.0.0.1:0" (an ephemeral port).
	Addr string
	// Advertise overrides the board URL handed to workers, for fleets
	// where the coordinator's listen address is not the address
	// workers can reach (NAT, containers). Default: the listener's
	// own address.
	Advertise string
	// LeaseTTL bounds how long a worker may go silent before its
	// leases are revoked and reassigned; default 15s.
	LeaseTTL time.Duration
	// MaxInflight bounds outstanding leases across the fleet; default
	// 4 per worker.
	MaxInflight int
	// MaxAttempts bounds how often one job may fail (error or lease
	// expiry) before the campaign fails; default 3.
	MaxAttempts int
	// StallTimeout fails the campaign when no worker has contacted
	// the board at all for this long — the whole fleet died or lost
	// the network, and waiting further cannot make progress. Default
	// 2 minutes. (An idle poll counts as contact: a live fleet never
	// stalls, however slow its jobs, because workers heartbeat and
	// poll continuously.)
	StallTimeout time.Duration
	// Obs, when non-nil, instruments the lease protocol (grants,
	// expiries, reassignments, job latencies, worker liveness).
	Obs *FleetObs
	// Journal, when non-nil, receives the run's lifecycle events —
	// expansion, cache hits, lease grants/reassignments, completions
	// and merges — mirroring Options.Journal for distributed runs.
	Journal *Journal
}

// Dispatcher is the remote Runner: it shards a campaign's uncached
// jobs across a fleet of mmmd workers through a pull-based job board
// and merges the completions — in expansion order, through the same
// content-addressed cache — so a sharded campaign is byte-identical
// to a local one. It is stateless across Run calls (each run gets its
// own board and listener) and safe for concurrent Runs.
type Dispatcher struct {
	opts DispatchOptions
}

// NewDispatcher returns a dispatcher over the given fleet.
func NewDispatcher(opts DispatchOptions) *Dispatcher {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 4 * len(opts.Workers)
		if opts.MaxInflight < 1 {
			opts.MaxInflight = 1
		}
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = 2 * time.Minute
	}
	return &Dispatcher{opts: opts}
}

// Run implements Runner. Cache hits are resolved locally; the rest go
// on the board, the fleet is invited to pull, and the call blocks
// until every job completed, one failed terminally, or ctx was
// cancelled — in which case every outstanding lease is revoked before
// returning, so no worker's late result can be double-counted by a
// successor run (re-running simply resumes from the cache).
func (d *Dispatcher) Run(ctx context.Context, sc Scale, jobs []Job) (*ResultSet, error) {
	if len(d.opts.Workers) == 0 {
		return nil, fmt.Errorf("campaign: dispatcher has no workers")
	}
	start := time.Now()
	rs := &ResultSet{Scale: sc, Results: make([]Result, len(jobs))}
	d.opts.Journal.Begin(sc, jobs)

	// Serve cache hits locally, exactly like the engine would.
	var todo []int
	done, hits := 0, 0
	progress := func() {
		if d.opts.OnProgress != nil {
			d.opts.OnProgress(done, len(jobs), hits)
		}
	}
	for i, j := range jobs {
		if d.opts.Cache != nil {
			if m, ok := d.opts.Cache.Get(j.Fingerprint(sc)); ok {
				rs.Results[i] = Result{Job: j, Metrics: m, CacheHit: true}
				d.opts.Journal.CellDone(i, j, m, true, "", 0, 0)
				done++
				hits++
				progress()
				continue
			}
		}
		todo = append(todo, i)
	}

	b := newBoard(sc, jobs, todo, d.opts.LeaseTTL, d.opts.MaxInflight, d.opts.MaxAttempts,
		func(idx int, m core.Metrics) error {
			rs.Results[idx] = Result{Job: jobs[idx], Metrics: m}
			if d.opts.Cache != nil {
				if err := d.opts.Cache.Put(jobs[idx].Fingerprint(sc), m); err != nil {
					return err
				}
			}
			done++
			progress()
			return nil
		})
	b.fobs = d.opts.Obs
	b.jnl = d.opts.Journal

	if len(todo) > 0 {
		if err := d.serve(ctx, b); err != nil {
			return nil, err
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rs.Hits, rs.Misses = hits, done-hits
	rs.Wall = time.Since(start)
	return rs, nil
}

// serve runs one board to completion: listen, invite the fleet to
// pull, reap expired leases (watching for total fleet loss) until the
// board closes, and return its terminal error. Shared by the fixed and
// adaptive dispatch paths — the board's queue discipline differs, the
// lease protocol around it does not.
func (d *Dispatcher) serve(ctx context.Context, b *board) error {
	ln, err := net.Listen("tcp", d.opts.Addr)
	if err != nil {
		return fmt.Errorf("campaign: coordinator listen: %w", err)
	}
	srv := &http.Server{Handler: b.handler()}
	go func() { _ = srv.Serve(ln) }() // Serve returns once Close tears the listener down
	defer srv.Close()

	boardURL := d.opts.Advertise
	if boardURL == "" {
		boardURL = "http://" + ln.Addr().String()
	}
	attached := 0
	var lastErr error
	for _, w := range d.opts.Workers {
		if err := attachWorker(ctx, w, boardURL); err != nil {
			lastErr = err
			continue
		}
		attached++
	}
	if attached == 0 {
		b.close(lastErr)
		return fmt.Errorf("campaign: no worker attached: %w", lastErr)
	}

	// Reap expired leases — and watch for total fleet loss — until
	// the board closes.
	reapDone := make(chan struct{})
	go func() {
		defer close(reapDone)
		t := time.NewTicker(d.opts.LeaseTTL / 4)
		defer t.Stop()
		for {
			select {
			case <-b.doneCh:
				return
			case now := <-t.C:
				b.reap(now)
				if idle := b.idleFor(now); idle > d.opts.StallTimeout {
					b.close(fmt.Errorf(
						"campaign: no worker contact for %v: fleet lost", idle.Round(time.Second)))
					return
				}
			}
		}
	}()

	select {
	case <-ctx.Done():
		// Revoke everything in flight *before* returning: a
		// SIGTERM'd coordinator must leave no orphaned leases, and
		// any completion racing in after this point is rejected
		// with 410 and discarded.
		b.close(ctx.Err())
	case <-b.doneCh:
	}
	<-reapDone
	return b.wait()
}

// attachWorker invites one worker to pull from the board.
func attachWorker(ctx context.Context, workerURL, boardURL string) error {
	body, err := json.Marshal(attachRequest{Coordinator: boardURL, Check: protocolCheck()})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		workerURL+api.PathPrefix+"/attach", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := attachClient.Do(req)
	if err != nil {
		return fmt.Errorf("campaign: attach %s: %w", workerURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("campaign: attach %s: %d %s", workerURL, resp.StatusCode, e.Error)
	}
	return nil
}

// attachClient bounds how long a dead worker can stall campaign
// startup.
var attachClient = &http.Client{Timeout: 10 * time.Second}
