package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// journalTypes tallies one run's events by type.
func journalTypes(events []Event) map[EventType]int {
	types := make(map[EventType]int)
	for i := range events {
		types[events[i].Type]++
	}
	return types
}

// TestJournalMergePrefixOrdering: completions delivered wildly out of
// order must still merge in strict expansion order, exactly once per
// cell, with the merge stream released as the contiguous prefix grows.
func TestJournalMergePrefixOrdering(t *testing.T) {
	jobs := determinismJobs(t)
	if len(jobs) < 4 {
		t.Fatalf("need >= 4 jobs, have %d", len(jobs))
	}
	j, err := NewJournal("test", "")
	if err != nil {
		t.Fatal(err)
	}
	j.Begin(microScale(), jobs)

	// Complete the last cell first: nothing merges yet.
	last := len(jobs) - 1
	j.CellDone(last, jobs[last], core.Metrics{}, false, "w9", time.Second, 1)
	if types := journalTypes(j.Events()); types[EventMerged] != 0 {
		t.Fatalf("out-of-order completion merged early: %v", types)
	}

	// Deliver the rest back to front: the final delivery (cell 0)
	// releases the whole prefix at once.
	for i := last - 1; i >= 0; i-- {
		j.CellDone(i, jobs[i], core.Metrics{}, false, "w1", time.Second, 1)
	}
	// Duplicate deliveries — a raced late completion — must be dropped.
	j.CellDone(0, jobs[0], core.Metrics{}, false, "dup", time.Second, 2)
	j.Finish(nil)

	events := j.Events()
	types := journalTypes(events)
	if types[EventMerged] != len(jobs) || types[EventCompleted] != len(jobs) {
		t.Fatalf("merged %d / completed %d, want %d each: %v",
			types[EventMerged], types[EventCompleted], len(jobs), types)
	}
	next := 0
	for i := range events {
		if events[i].Type != EventMerged {
			continue
		}
		if events[i].Cell != next {
			t.Fatalf("merged cell %d at position %d, want %d", events[i].Cell, i, next)
		}
		if events[i].Job == nil || events[i].Metrics == nil || events[i].Fp == "" {
			t.Fatalf("merged event lacks payload: %+v", events[i])
		}
		if *events[i].Job != jobs[next] {
			t.Fatalf("merged cell %d carries wrong job: %+v", next, events[i].Job)
		}
		next++
	}
	if chk, err := ValidateEvents(events); err != nil || !chk.Complete || chk.Outcome != "done" {
		t.Fatalf("validate: %+v, %v", chk, err)
	}
}

// TestJournalEventsSince: the history-then-live subscription — a reader
// positioned past the history blocks on the wake channel until the next
// append, then observes exactly the new suffix; Finish closes the
// stream for everyone.
func TestJournalEventsSince(t *testing.T) {
	jobs := determinismJobs(t)
	j, err := NewJournal("test", "")
	if err != nil {
		t.Fatal(err)
	}
	j.Begin(microScale(), jobs)
	j.CellDone(0, jobs[0], core.Metrics{}, true, "", 0, 0)

	history, wake, closed := j.EventsSince(0)
	if closed || len(history) < 3 { // expanded, cache_hit, merged
		t.Fatalf("history: %d events, closed=%v", len(history), closed)
	}
	lastSeq := history[len(history)-1].Seq

	// Caught up: nothing new, not closed, wake pending.
	evs, wake, closed := j.EventsSince(lastSeq)
	if len(evs) != 0 || closed {
		t.Fatalf("caught-up read returned %d events, closed=%v", len(evs), closed)
	}
	select {
	case <-wake:
		t.Fatal("wake channel closed with no new events")
	default:
	}

	// A new append wakes the subscriber and the suffix read starts
	// exactly after the last seen sequence number.
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-wake
	}()
	j.Started(1, jobs[1], "w1", 1)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("append did not wake the subscriber")
	}
	evs, _, _ = j.EventsSince(lastSeq)
	if len(evs) != 1 || evs[0].Type != EventStarted || evs[0].Seq != lastSeq+1 {
		t.Fatalf("suffix after wake: %+v", evs)
	}

	// Finish closes the stream: closed reported true, wake released.
	_, wake, _ = j.EventsSince(lastSeq + 1)
	j.Finish(nil)
	select {
	case <-wake:
	case <-time.After(5 * time.Second):
		t.Fatal("Finish did not release waiting subscribers")
	}
	if _, _, closed = j.EventsSince(0); !closed {
		t.Fatal("journal not closed after Finish")
	}
	// Emissions after Finish are dropped, not appended.
	j.Started(1, jobs[1], "w1", 1)
	if evs, _, _ := j.EventsSince(lastSeq + 1); len(evs) != 0 {
		t.Fatalf("post-Finish emission appended: %+v", evs)
	}
}

// TestJournalFileRoundTrip is the tentpole persistence guarantee: an
// engine run journaled to disk replays from the JSONL file to the exact
// result set the run produced — same rows, byte for byte.
func TestJournalFileRoundTrip(t *testing.T) {
	jobs := determinismJobs(t)
	path := filepath.Join(t.TempDir(), "run.journal.jsonl")
	j, err := NewJournal("c1", path)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Parallel: runtime.NumCPU(), Journal: j})
	rs, err := eng.Run(context.Background(), microScale(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	j.Finish(nil)
	if err := j.Err(); err != nil {
		t.Fatalf("journal write error: %v", err)
	}

	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(j.Events()) {
		t.Fatalf("file has %d events, memory has %d", len(events), len(j.Events()))
	}
	chk, err := ValidateEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Complete || chk.Total != len(jobs) || chk.Merged != len(jobs) {
		t.Fatalf("journal incomplete: %+v", chk)
	}

	replayed, err := ReplayResults(events)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Hits != rs.Hits || replayed.Misses != rs.Misses || replayed.Scale != rs.Scale {
		t.Fatalf("replayed header differs: %+v vs %+v", replayed, rs)
	}
	var want, got bytes.Buffer
	if err := stats.WriteRowsJSON(&want, Summarize(rs)); err != nil {
		t.Fatal(err)
	}
	if err := stats.WriteRowsJSON(&got, Summarize(replayed)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("replay diverges from run:\nrun:    %s\nreplay: %s", want.Bytes(), got.Bytes())
	}
}

// TestJournalCacheHitRerun: a warm-cache rerun journals cache_hit (not
// completed) for every cell and still merges the full prefix — and the
// replayed result set preserves the hit accounting.
func TestJournalCacheHitRerun(t *testing.T) {
	jobs := determinismJobs(t)
	cache := NewMemCache()
	eng := New(Options{Parallel: 2, Cache: cache})
	if _, err := eng.Run(context.Background(), microScale(), jobs); err != nil {
		t.Fatal(err)
	}

	j, err := NewJournal("warm", "")
	if err != nil {
		t.Fatal(err)
	}
	warm := New(Options{Parallel: 2, Cache: cache, Journal: j})
	rs, err := warm.Run(context.Background(), microScale(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	j.Finish(nil)
	if rs.Hits != len(jobs) {
		t.Fatalf("warm run hits=%d, want %d", rs.Hits, len(jobs))
	}
	types := journalTypes(j.Events())
	if types[EventCacheHit] != len(jobs) || types[EventCompleted] != 0 || types[EventMerged] != len(jobs) {
		t.Fatalf("warm journal shape: %v", types)
	}
	replayed, err := ReplayResults(j.Events())
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Hits != len(jobs) || replayed.Misses != 0 {
		t.Fatalf("replayed hit accounting: hits=%d misses=%d", replayed.Hits, replayed.Misses)
	}
}

// TestJournalFinishOutcomes: the run-level terminal event
// distinguishes cancellation from failure, and ValidateEvents reports
// the outcome.
func TestJournalFinishOutcomes(t *testing.T) {
	jobs := determinismJobs(t)

	j1, _ := NewJournal("x", "")
	j1.Begin(microScale(), jobs)
	j1.Finish(fmt.Errorf("wrapped: %w", context.Canceled))
	chk, err := ValidateEvents(j1.Events())
	if err != nil || chk.Outcome != "canceled" {
		t.Fatalf("canceled outcome: %+v, %v", chk, err)
	}

	j2, _ := NewJournal("x", "")
	j2.Begin(microScale(), jobs)
	j2.Finish(errors.New("sim exploded"))
	chk, err = ValidateEvents(j2.Events())
	if err != nil || chk.Outcome != "failed" {
		t.Fatalf("failed outcome: %+v, %v", chk, err)
	}

	// Finish is idempotent: a second call emits nothing.
	n := len(j2.Events())
	j2.Finish(errors.New("again"))
	if len(j2.Events()) != n {
		t.Fatal("second Finish appended events")
	}

	// A run canceled before expansion journals only the run-level
	// terminal event — still a valid journal.
	j3, _ := NewJournal("x", "")
	j3.Finish(context.Canceled)
	chk, err = ValidateEvents(j3.Events())
	if err != nil || chk.Outcome != "canceled" || chk.Events != 1 {
		t.Fatalf("pre-expansion cancel: %+v, %v", chk, err)
	}
}

// TestValidateEventsRejectsCorruption: each structural invariant
// actually fires.
func TestValidateEventsRejectsCorruption(t *testing.T) {
	jobs := determinismJobs(t)
	good := func() []Event {
		j, _ := NewJournal("v", "")
		j.Begin(microScale(), jobs)
		for i := range jobs {
			j.CellDone(i, jobs[i], core.Metrics{}, false, "w", time.Second, 1)
		}
		j.Finish(nil)
		return j.Events()
	}

	if _, err := ValidateEvents(nil); err == nil {
		t.Error("empty journal accepted")
	}

	events := good()
	events[2].Seq = events[1].Seq
	if _, err := ValidateEvents(events); err == nil {
		t.Error("non-increasing seq accepted")
	}

	events = good()
	events[0], events[1] = events[1], events[0]
	events[0].Seq, events[1].Seq = 1, 2
	if _, err := ValidateEvents(events); err == nil {
		t.Error("cell event before expanded accepted")
	}

	// Swap two merged events: expansion order violated.
	events = good()
	var merged []int
	for i := range events {
		if events[i].Type == EventMerged {
			merged = append(merged, i)
		}
	}
	events[merged[0]].Cell, events[merged[1]].Cell = events[merged[1]].Cell, events[merged[0]].Cell
	if _, err := ValidateEvents(events); err == nil {
		t.Error("out-of-order merge accepted")
	}

	// A merged event without its payload.
	events = good()
	events[merged[0]].Job = nil
	if _, err := ValidateEvents(events); err == nil {
		t.Error("payload-less merge accepted")
	}

	// Events after a terminal run-level event.
	j, _ := NewJournal("v", "")
	j.Begin(microScale(), jobs)
	j.Finish(errors.New("boom"))
	events = j.Events()
	events = append(events, Event{Seq: events[len(events)-1].Seq + 1,
		Type: EventStarted, Cell: 0})
	if _, err := ValidateEvents(events); err == nil {
		t.Error("event after terminal accepted")
	}

	// Cell index out of range.
	events = good()
	j2, _ := NewJournal("v", "")
	j2.Begin(microScale(), jobs[:1])
	j2.Started(5, jobs[0], "w", 1)
	if _, err := ValidateEvents(j2.Events()); err == nil {
		t.Error("out-of-range cell accepted")
	}

	// ReplayResults shares the ordering oracle.
	events = good()
	events[merged[0]].Cell, events[merged[1]].Cell = events[merged[1]].Cell, events[merged[0]].Cell
	if _, err := ReplayResults(events); err == nil {
		t.Error("replay accepted out-of-order merge")
	}
}

// TestJournalNilSafe: every method must be a no-op on a nil journal —
// call sites in the engine, dispatcher and board are unconditional.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	jobs := determinismJobs(t)
	j.Begin(microScale(), jobs)
	j.Leased(0, jobs[0], "w", 1)
	j.Started(0, jobs[0], "w", 1)
	j.HeartbeatMissed(0, jobs[0], "w", 1)
	j.CellFailed(0, jobs[0], "w", 1, "x")
	j.CellDone(0, jobs[0], core.Metrics{}, false, "w", 0, 1)
	j.Finish(nil)
	if j.Events() != nil || j.Path() != "" || j.Err() != nil {
		t.Fatal("nil journal returned state")
	}
	if evs, wake, closed := j.EventsSince(0); evs != nil || !closed {
		t.Fatal("nil journal subscription not closed")
	} else {
		<-wake // must be closed, not nil
	}
}

// TestAttributeReport: the wall-clock attribution over a synthetic
// journal — worker busy seconds and utilization, cache-hit ratio,
// per-group percentiles, stragglers, churn counters.
func TestAttributeReport(t *testing.T) {
	jobs := determinismJobs(t)
	j, err := NewJournal("c9", "")
	if err != nil {
		t.Fatal(err)
	}
	j.Begin(microScale(), jobs)
	// Cell 0 from cache; the rest simulated across two workers, one
	// slow straggler, one reassignment after a missed heartbeat.
	j.CellDone(0, jobs[0], core.Metrics{}, true, "", 0, 0)
	j.Leased(1, jobs[1], "w1", 1)
	j.Started(1, jobs[1], "w1", 1)
	j.HeartbeatMissed(1, jobs[1], "w1", 1)
	j.Leased(1, jobs[1], "w2", 2)
	j.Started(1, jobs[1], "w2", 2)
	j.CellDone(1, jobs[1], core.Metrics{}, false, "w2", 8*time.Second, 2)
	for i := 2; i < len(jobs); i++ {
		w := "w1"
		if i%2 == 0 {
			w = "w2"
		}
		j.Leased(i, jobs[i], w, 1)
		j.Started(i, jobs[i], w, 1)
		j.CellDone(i, jobs[i], core.Metrics{}, false, w, 2*time.Second, 1)
	}
	j.Finish(nil)

	rep := Attribute("c9", j.Events())
	if rep.Run != "c9" || rep.Outcome != "done" {
		t.Fatalf("header: %+v", rep)
	}
	if rep.Cells != len(jobs) || rep.Merged != len(jobs) || rep.CacheHits != 1 {
		t.Fatalf("counts: %+v", rep)
	}
	wantHitPct := 100 * float64(1) / float64(len(jobs))
	if rep.CacheHitPct != wantHitPct {
		t.Fatalf("hit pct %v, want %v", rep.CacheHitPct, wantHitPct)
	}
	if rep.Reassignments != 1 || rep.HeartbeatsMissed != 1 {
		t.Fatalf("churn: %+v", rep)
	}
	if len(rep.Workers) != 2 || rep.Workers[0].Worker != "w1" || rep.Workers[1].Worker != "w2" {
		t.Fatalf("workers: %+v", rep.Workers)
	}
	// w2 did the 8s straggler plus its share of 2s cells.
	var w2 WorkerReport
	for _, w := range rep.Workers {
		if w.Worker == "w2" {
			w2 = w
		}
	}
	if w2.BusySeconds < 8 {
		t.Fatalf("w2 busy %v, want >= 8 (owns the straggler)", w2.BusySeconds)
	}
	if rep.BusySeconds != rep.Workers[0].BusySeconds+rep.Workers[1].BusySeconds {
		t.Fatalf("busy total %v != sum of workers", rep.BusySeconds)
	}
	// Every simulated cell lands in a workload/kind group and the 8s
	// cell dominates its group's max.
	if len(rep.Groups) == 0 {
		t.Fatal("no groups")
	}
	var sawStragglerGroup bool
	for _, g := range rep.Groups {
		if g.Max == 8 {
			sawStragglerGroup = true
			if g.P50 > g.P95 || g.P95 > g.P99 || g.P99 > g.Max {
				t.Fatalf("percentiles not monotone: %+v", g)
			}
		}
	}
	if !sawStragglerGroup {
		t.Fatalf("straggler group missing: %+v", rep.Groups)
	}
	// Stragglers: slowest first, the 8s cell on top, at most 5.
	if len(rep.Stragglers) == 0 || len(rep.Stragglers) > maxStragglers {
		t.Fatalf("stragglers: %+v", rep.Stragglers)
	}
	if rep.Stragglers[0].Cell != 1 || rep.Stragglers[0].Seconds != 8 || rep.Stragglers[0].Worker != "w2" {
		t.Fatalf("top straggler: %+v", rep.Stragglers[0])
	}

	// The text rendering carries the load-bearing lines.
	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"run c9: done", "1 reassignments", "w2", "stragglers:"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("report text lacks %q:\n%s", want, out)
		}
	}

	// An empty journal attributes to a running, empty report.
	empty := Attribute("x", nil)
	if empty.Outcome != "running" || empty.Cells != 0 {
		t.Fatalf("empty attribution: %+v", empty)
	}
}

// TestEngineJournalShape: a journaled local run emits the full
// vocabulary with local worker labels and per-cell wall times.
func TestEngineJournalShape(t *testing.T) {
	jobs := determinismJobs(t)
	j, err := NewJournal("local", "")
	if err != nil {
		t.Fatal(err)
	}
	var total, dropped uint64
	eng := New(Options{Parallel: 2, Journal: j, OnTrace: func(tt, dd uint64) {
		total += tt
		dropped += dd
	}})
	if _, err := eng.Run(context.Background(), microScale(), jobs); err != nil {
		t.Fatal(err)
	}
	j.Finish(nil)

	events := j.Events()
	types := journalTypes(events)
	if types[EventExpanded] != 1 || types[EventStarted] != len(jobs) ||
		types[EventCompleted] != len(jobs) || types[EventMerged] != len(jobs) {
		t.Fatalf("local journal shape: %v", types)
	}
	for i := range events {
		ev := &events[i]
		switch ev.Type {
		case EventStarted, EventCompleted:
			if len(ev.Worker) < 6 || ev.Worker[:6] != "local-" {
				t.Fatalf("local run labeled %q", ev.Worker)
			}
		case EventMerged:
			if ev.Key == "" || ev.Fp == "" {
				t.Fatalf("merged event lacks key/fingerprint: %+v", ev)
			}
		}
	}
	// The attribution over a local journal sees the pool slots as
	// workers.
	rep := Attribute("local", events)
	if rep.Outcome != "done" || len(rep.Workers) == 0 || len(rep.Workers) > 2 {
		t.Fatalf("local attribution: %+v", rep)
	}
}

// TestJournalExactlyOnceUnderWorkerDeath is the exactly-once merge
// guarantee under failure, end to end: a two-worker campaign whose
// victim worker is killed mid-lease must journal exactly one merged
// event per cell, record the missed heartbeats and reassignments the
// board actually performed, and replay from the journal byte-for-byte
// identical to the run's own rows.
func TestJournalExactlyOnceUnderWorkerDeath(t *testing.T) {
	jobs := determinismJobs(t)
	local, _ := runRows(t, New(Options{Parallel: 2}), jobs)

	victim, ts1 := startWorker(t, "victim", 2, nil)
	_, ts2 := startWorker(t, "survivor", 2, nil)

	j, err := NewJournal("kill", filepath.Join(t.TempDir(), "kill.journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fobs := NewFleetObs(reg)
	d := NewDispatcher(DispatchOptions{
		Workers:  []string{ts1.URL, ts2.URL},
		LeaseTTL: 400 * time.Millisecond,
		Journal:  j,
		Obs:      fobs,
	})
	type outcome struct {
		rows []byte
		err  error
	}
	res := make(chan outcome, 1)
	go func() {
		rs, err := d.Run(context.Background(), microScale(), jobs)
		if err != nil {
			res <- outcome{nil, err}
			return
		}
		var buf bytes.Buffer
		err = stats.WriteRowsJSON(&buf, Summarize(rs))
		res <- outcome{buf.Bytes(), err}
	}()

	time.Sleep(100 * time.Millisecond)
	victim.Stop()

	var rows []byte
	select {
	case out := <-res:
		if out.err != nil {
			t.Fatal(out.err)
		}
		rows = out.rows
	case <-time.After(2 * time.Minute):
		t.Fatal("campaign did not recover from worker death")
	}
	j.Finish(nil)
	if !bytes.Equal(local, rows) {
		t.Fatalf("campaign after worker death diverges:\nlocal: %s\nremote: %s", local, rows)
	}

	events := j.Events()
	chk, err := ValidateEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Complete || chk.Merged != len(jobs) {
		t.Fatalf("journal after worker death: %+v", chk)
	}
	// Exactly one merged event per cell, already enforced by
	// ValidateEvents's strict ordering; assert the count explicitly and
	// that every completion attributes to a real worker.
	types := journalTypes(events)
	if types[EventMerged] != len(jobs) {
		t.Fatalf("merged %d events for %d cells", types[EventMerged], len(jobs))
	}
	for i := range events {
		if events[i].Type == EventCompleted && events[i].Worker == "" {
			t.Fatalf("completion without worker: %+v", events[i])
		}
	}
	// The victim died holding leases: the journal must have seen the
	// reaps, and its reassignment count must agree with the board's own
	// FleetObs counter — the journal is not an independent estimate.
	if types[EventHeartbeatMissed] == 0 {
		t.Fatalf("no heartbeat_missed events after killing a leased worker: %v", types)
	}
	snap := reg.Snapshot()
	if want := int(snap["mmm_fleet_lease_reassignments_total"]); types[EventReassigned] != want {
		t.Fatalf("journal reassignments %d, board counted %d", types[EventReassigned], want)
	}
	if want := int(snap["mmm_fleet_lease_expiries_total"]); types[EventHeartbeatMissed] != want {
		t.Fatalf("journal heartbeat_missed %d, board reaped %d", types[EventHeartbeatMissed], want)
	}

	// Replay from the on-disk journal: byte-identical rows.
	fromDisk, err := ReadJournalFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ReplayResults(fromDisk)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stats.WriteRowsJSON(&buf, Summarize(replayed)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rows, buf.Bytes()) {
		t.Fatalf("journal replay diverges from the run:\nrun:    %s\nreplay: %s", rows, buf.Bytes())
	}
}
