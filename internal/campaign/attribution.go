package campaign

import (
	"sort"

	"repro/internal/api"
)

// Wall-clock attribution over a run journal: where did the campaign's
// time actually go? Per-worker busy seconds and utilization, the
// cache-hit ratio, straggler cells and per-group (workload x kind)
// job-seconds percentiles, and the lease-churn counters
// (reassignments, missed heartbeats) — everything "Producing Wrong
// Data Without Doing Anything Obviously Wrong" says a single median
// hides. Computed purely from journal events, so it works live
// (mmmtail -follow), post-hoc (mmmtail -report) and in GET
// /campaigns/{id}.

// The report types live in internal/api (GET /v1/campaigns/{id}
// embeds the report and mmmtail renders it); Attribute — the journal
// fold that computes them — stays here with the journal it reads.
type (
	WorkerReport = api.WorkerReport
	GroupReport  = api.GroupReport
	CellReport   = api.CellReport
	Report       = api.Report
)

// maxStragglers bounds the slowest-cells list.
const maxStragglers = 5

// Attribute computes the wall-clock attribution report from a run's
// journal events. Incomplete journals (a live or crashed run) are
// fine: the report covers whatever has been journaled so far.
func Attribute(runID string, events []Event) Report {
	rep := Report{Run: runID, Outcome: "running"}
	if len(events) == 0 {
		return rep
	}
	rep.WallSeconds = events[len(events)-1].Time.Sub(events[0].Time).Seconds()

	workers := map[string]*WorkerReport{}
	workerOf := func(name string) *WorkerReport {
		w := workers[name]
		if w == nil {
			w = &WorkerReport{Worker: name}
			workers[name] = w
		}
		return w
	}
	type cellTime struct {
		cell    int
		key     string
		worker  string
		seconds float64
	}
	var simulated []cellTime
	groups := map[string][]float64{}

	maxTrials, waves := 0, 0
	for i := range events {
		ev := &events[i]
		switch ev.Type {
		case EventExpanded:
			rep.Cells = ev.Total
			if ev.Precision != nil {
				rep.Adaptive = true
				maxTrials = ev.Precision.MaxTrials
			}
		case EventWaveScheduled:
			waves++
			rep.TrialsScheduled += ev.Trials
		case EventCellRetired:
			rep.CellsRetired++
			if ev.Capped {
				rep.CellsCapped++
			}
		case EventCacheHit:
			rep.CacheHits++
		case EventCompleted:
			w := workerOf(ev.Worker)
			w.Jobs++
			w.BusySeconds += float64(ev.WallMS) / 1000
		case EventFailed:
			if ev.Cell >= 0 {
				rep.Failures++
				if ev.Worker != "" {
					workerOf(ev.Worker).Failures++
				}
			} else {
				rep.Outcome = "failed"
			}
		case EventCanceled:
			if ev.Cell == -1 {
				rep.Outcome = "canceled"
			}
		case EventReassigned:
			rep.Reassignments++
		case EventHeartbeatMissed:
			rep.HeartbeatsMissed++
			if ev.Worker != "" {
				workerOf(ev.Worker).Failures++
			}
		case EventMerged:
			rep.Merged++
			if !ev.Hit && ev.Job != nil {
				secs := float64(ev.WallMS) / 1000
				simulated = append(simulated, cellTime{ev.Cell, ev.Key, ev.Worker, secs})
				g := ev.Job.Workload + "/" + ev.Job.Kind.String()
				groups[g] = append(groups[g], secs)
			}
		}
	}
	if rep.Cells > 0 && rep.Merged == rep.Cells && rep.Outcome == "running" {
		rep.Outcome = "done"
	}
	if rep.Adaptive && waves > 0 {
		// Adaptive cache hits land per wave; rate them against waves
		// scheduled, not cells merged.
		rep.CacheHitPct = 100 * float64(rep.CacheHits) / float64(waves)
	} else if rep.Merged > 0 {
		rep.CacheHitPct = 100 * float64(rep.CacheHits) / float64(rep.Merged)
	}
	if rep.Adaptive {
		// Trials saved vs fixed: the fixed-batch equivalent of an
		// adaptive run is cells x MaxTrials — the worst-case sample a
		// fixed design must provision to promise the same half-width
		// (see stats.WorstCaseTrials, the MaxTrials default).
		rep.TrialsFixed = rep.Cells * maxTrials
		if rep.TrialsFixed > 0 {
			rep.TrialsSavedPct = 100 * (1 - float64(rep.TrialsScheduled)/float64(rep.TrialsFixed))
		}
	}

	names := make([]string, 0, len(workers))
	for n := range workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := workers[n]
		rep.BusySeconds += w.BusySeconds
		if rep.WallSeconds > 0 {
			w.BusyPct = 100 * w.BusySeconds / rep.WallSeconds
		}
		rep.Workers = append(rep.Workers, *w)
	}

	gnames := make([]string, 0, len(groups))
	for g := range groups {
		gnames = append(gnames, g)
	}
	sort.Strings(gnames)
	for _, g := range gnames {
		secs := groups[g]
		sort.Float64s(secs)
		rep.Groups = append(rep.Groups, GroupReport{
			Group: g,
			Jobs:  len(secs),
			P50:   percentile(secs, 50),
			P95:   percentile(secs, 95),
			P99:   percentile(secs, 99),
			Max:   secs[len(secs)-1],
		})
	}

	sort.Slice(simulated, func(i, k int) bool {
		if simulated[i].seconds != simulated[k].seconds {
			return simulated[i].seconds > simulated[k].seconds
		}
		return simulated[i].cell < simulated[k].cell
	})
	if len(simulated) > maxStragglers {
		simulated = simulated[:maxStragglers]
	}
	for _, c := range simulated {
		rep.Stragglers = append(rep.Stragglers, CellReport{
			Cell: c.cell, Key: c.key, Worker: c.worker, Seconds: c.seconds})
	}
	return rep
}

// percentile returns the nearest-rank p-th percentile of sorted
// samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
