package campaign

import (
	"fmt"
	"io"
	"sort"
)

// Wall-clock attribution over a run journal: where did the campaign's
// time actually go? Per-worker busy seconds and utilization, the
// cache-hit ratio, straggler cells and per-group (workload x kind)
// job-seconds percentiles, and the lease-churn counters
// (reassignments, missed heartbeats) — everything "Producing Wrong
// Data Without Doing Anything Obviously Wrong" says a single median
// hides. Computed purely from journal events, so it works live
// (mmmtail -follow), post-hoc (mmmtail -report) and in GET
// /campaigns/{id}.

// WorkerReport is one worker's share of a run.
type WorkerReport struct {
	Worker string `json:"worker"`
	// Jobs counts completions (cache hits are coordinator-local and
	// attributed to no worker).
	Jobs     int `json:"jobs"`
	Failures int `json:"failures"`
	// BusySeconds sums the worker's completed-attempt wall times;
	// BusyPct is that against the run's wall clock — the utilization of
	// a dedicated worker (time not busy was idle or lost to churn).
	BusySeconds float64 `json:"busy_seconds"`
	BusyPct     float64 `json:"busy_pct"`
}

// GroupReport aggregates job seconds per workload x kind group —
// the straggler axis: a group whose p99 dwarfs its p50 is where the
// fleet's tail lives.
type GroupReport struct {
	Group string  `json:"group"`
	Jobs  int     `json:"jobs"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
	Max   float64 `json:"max_seconds"`
}

// CellReport is one straggler: a slowest-N simulated cell.
type CellReport struct {
	Cell    int     `json:"cell"`
	Key     string  `json:"key"`
	Worker  string  `json:"worker,omitempty"`
	Seconds float64 `json:"seconds"`
}

// Report is the wall-clock attribution of one run.
type Report struct {
	Run              string         `json:"run,omitempty"`
	Outcome          string         `json:"outcome"`
	Cells            int            `json:"cells"`
	Merged           int            `json:"merged"`
	CacheHits        int            `json:"cache_hits"`
	CacheHitPct      float64        `json:"cache_hit_pct"`
	WallSeconds      float64        `json:"wall_seconds"`
	BusySeconds      float64        `json:"busy_seconds"`
	Failures         int            `json:"failures"`
	Reassignments    int            `json:"reassignments"`
	HeartbeatsMissed int            `json:"heartbeats_missed"`
	Workers          []WorkerReport `json:"workers,omitempty"`
	Groups           []GroupReport  `json:"groups,omitempty"`
	Stragglers       []CellReport   `json:"stragglers,omitempty"`
}

// maxStragglers bounds the slowest-cells list.
const maxStragglers = 5

// Attribute computes the wall-clock attribution report from a run's
// journal events. Incomplete journals (a live or crashed run) are
// fine: the report covers whatever has been journaled so far.
func Attribute(runID string, events []Event) Report {
	rep := Report{Run: runID, Outcome: "running"}
	if len(events) == 0 {
		return rep
	}
	rep.WallSeconds = events[len(events)-1].Time.Sub(events[0].Time).Seconds()

	workers := map[string]*WorkerReport{}
	workerOf := func(name string) *WorkerReport {
		w := workers[name]
		if w == nil {
			w = &WorkerReport{Worker: name}
			workers[name] = w
		}
		return w
	}
	type cellTime struct {
		cell    int
		key     string
		worker  string
		seconds float64
	}
	var simulated []cellTime
	groups := map[string][]float64{}

	for i := range events {
		ev := &events[i]
		switch ev.Type {
		case EventExpanded:
			rep.Cells = ev.Total
		case EventCacheHit:
			rep.CacheHits++
		case EventCompleted:
			w := workerOf(ev.Worker)
			w.Jobs++
			w.BusySeconds += float64(ev.WallMS) / 1000
		case EventFailed:
			if ev.Cell >= 0 {
				rep.Failures++
				if ev.Worker != "" {
					workerOf(ev.Worker).Failures++
				}
			} else {
				rep.Outcome = "failed"
			}
		case EventCanceled:
			if ev.Cell == -1 {
				rep.Outcome = "canceled"
			}
		case EventReassigned:
			rep.Reassignments++
		case EventHeartbeatMissed:
			rep.HeartbeatsMissed++
			if ev.Worker != "" {
				workerOf(ev.Worker).Failures++
			}
		case EventMerged:
			rep.Merged++
			if !ev.Hit && ev.Job != nil {
				secs := float64(ev.WallMS) / 1000
				simulated = append(simulated, cellTime{ev.Cell, ev.Key, ev.Worker, secs})
				g := ev.Job.Workload + "/" + ev.Job.Kind.String()
				groups[g] = append(groups[g], secs)
			}
		}
	}
	if rep.Cells > 0 && rep.Merged == rep.Cells && rep.Outcome == "running" {
		rep.Outcome = "done"
	}
	if rep.Merged > 0 {
		rep.CacheHitPct = 100 * float64(rep.CacheHits) / float64(rep.Merged)
	}

	names := make([]string, 0, len(workers))
	for n := range workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := workers[n]
		rep.BusySeconds += w.BusySeconds
		if rep.WallSeconds > 0 {
			w.BusyPct = 100 * w.BusySeconds / rep.WallSeconds
		}
		rep.Workers = append(rep.Workers, *w)
	}

	gnames := make([]string, 0, len(groups))
	for g := range groups {
		gnames = append(gnames, g)
	}
	sort.Strings(gnames)
	for _, g := range gnames {
		secs := groups[g]
		sort.Float64s(secs)
		rep.Groups = append(rep.Groups, GroupReport{
			Group: g,
			Jobs:  len(secs),
			P50:   percentile(secs, 50),
			P95:   percentile(secs, 95),
			P99:   percentile(secs, 99),
			Max:   secs[len(secs)-1],
		})
	}

	sort.Slice(simulated, func(i, k int) bool {
		if simulated[i].seconds != simulated[k].seconds {
			return simulated[i].seconds > simulated[k].seconds
		}
		return simulated[i].cell < simulated[k].cell
	})
	if len(simulated) > maxStragglers {
		simulated = simulated[:maxStragglers]
	}
	for _, c := range simulated {
		rep.Stragglers = append(rep.Stragglers, CellReport{
			Cell: c.cell, Key: c.key, Worker: c.worker, Seconds: c.seconds})
	}
	return rep
}

// percentile returns the nearest-rank p-th percentile of sorted
// samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// WriteText renders the report for terminals (mmmtail).
func (r Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "run %s: %s — %d/%d cells merged, %d cache hits (%.0f%%), wall %.2fs\n",
		orDash(r.Run), r.Outcome, r.Merged, r.Cells, r.CacheHits, r.CacheHitPct, r.WallSeconds)
	if r.Failures > 0 || r.Reassignments > 0 || r.HeartbeatsMissed > 0 {
		fmt.Fprintf(w, "churn: %d failed attempts, %d reassignments, %d missed heartbeats\n",
			r.Failures, r.Reassignments, r.HeartbeatsMissed)
	}
	if len(r.Workers) > 0 {
		fmt.Fprintf(w, "workers:\n")
		for _, wr := range r.Workers {
			fmt.Fprintf(w, "  %-16s %4d jobs  busy %8.2fs  util %5.1f%%  failures %d\n",
				wr.Worker, wr.Jobs, wr.BusySeconds, wr.BusyPct, wr.Failures)
		}
	}
	if len(r.Groups) > 0 {
		fmt.Fprintf(w, "job seconds by workload/kind (p50/p95/p99/max):\n")
		for _, g := range r.Groups {
			fmt.Fprintf(w, "  %-28s %3d jobs  %6.2f %6.2f %6.2f %6.2f\n",
				g.Group, g.Jobs, g.P50, g.P95, g.P99, g.Max)
		}
	}
	if len(r.Stragglers) > 0 {
		fmt.Fprintf(w, "stragglers:\n")
		for _, s := range r.Stragglers {
			fmt.Fprintf(w, "  cell %-4d %-32s %6.2fs  %s\n", s.Cell, s.Key, s.Seconds, orDash(s.Worker))
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
