package campaign

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current implementation")

// goldenJobs covers every evaluated system kind plus the knob paths
// (serial PAB, fault injection, reliability batches) at a small fixed
// scale, one cell each.
func goldenJobs() []Job {
	kinds := []core.Kind{
		core.KindNoDMR2X, core.KindNoDMR, core.KindReunion, core.KindDMRBase,
		core.KindMMMIPC, core.KindMMMTP, core.KindSingleOS,
	}
	var jobs []Job
	for _, k := range kinds {
		jobs = append(jobs, Job{Workload: "apache", Kind: k, Seed: 11})
	}
	jobs = append(jobs,
		Job{Workload: "apache", Kind: core.KindMMMIPC, Seed: 11, Variant: "serial",
			Knobs: Knobs{PABSerial: true}},
		Job{Workload: "apache", Kind: core.KindReunion, Seed: 11, Variant: "flt",
			Knobs: Knobs{FaultInterval: 5_000}},
		Job{Workload: "apache", Kind: core.KindMMMIPC, Seed: 11, Variant: "relia",
			Knobs: Knobs{FaultInterval: 20_000, ReliaTrials: 2}},
		// Compiled-schedule fast paths (PR 10): duty-cycle on a
		// single-group roster, on a multi-group roster, and racing fault
		// injection. The seven kind rows above already pin compiled
		// static (single- and multi-group); these pin the precompiled
		// duty timeline byte-for-byte.
		Job{Workload: "apache", Kind: core.KindReunion, Seed: 11, Variant: "duty",
			Knobs: Knobs{Policy: "duty-cycle"}},
		Job{Workload: "apache", Kind: core.KindMMMIPC, Seed: 11, Variant: "duty",
			Knobs: Knobs{Policy: "duty-cycle"}},
		Job{Workload: "apache", Kind: core.KindMMMIPC, Seed: 11, Variant: "duty-flt",
			Knobs: Knobs{Policy: "duty-cycle:9000:40", FaultInterval: 5_000}},
	)
	return jobs
}

// TestGoldenRowsMatchPreRefactor pins the campaign rows of every
// pre-existing system kind byte-for-byte against the implementation
// that predates the mode-policy layer (testdata/golden_rows.json was
// generated from the static `groups []plan` rotation in PR 4). Any
// refactor of the scheduling seam that shifts a single transition
// cycle, counter or aggregation byte fails here. Regenerate only for
// documented semantic changes: go test ./internal/campaign -run Golden -update
func TestGoldenRowsMatchPreRefactor(t *testing.T) {
	sc := Scale{Warmup: 30_000, Measure: 60_000, Timeslice: 15_000}
	eng := New(Options{Parallel: 4})
	rs, err := eng.Run(context.Background(), sc, goldenJobs())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stats.WriteRowsJSON(&buf, Summarize(rs)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_rows.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (generate with -update on a known-good tree): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("campaign rows diverged from the pre-refactor golden.\nGot %d bytes, want %d.\nIf the change is an intended semantic change, document it and regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s",
			buf.Len(), len(want), truncate(buf.String(), 4000), truncate(string(want), 4000))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "\n...[truncated]"
}
