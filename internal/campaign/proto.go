package campaign

import (
	"fmt"
	"net"
	"strings"

	"repro/internal/api"
	"repro/internal/sim"
)

// The distributed campaign protocol. A coordinator (Dispatcher) serves
// a job board over HTTP; workers attach to it and then *pull*: each
// worker leases one job at a time, heartbeats while simulating, and
// completes with the canonical metrics payload plus the job's cache
// key. The coordinator owns all campaign state — workers are stateless
// between jobs, so losing one costs at most its in-flight leases,
// which expire and are reassigned.
//
// Board endpoints (served by the coordinator, called by workers):
//
//	POST /lease     -> leaseResponse | 204 (nothing to hand out) | 410 (board over)
//	POST /heartbeat -> 200 (extended) | 410 (lease revoked or board over)
//	POST /complete  -> 200 | 410 (lease revoked; result discarded)
//
// Worker endpoints (served by mmmd -worker, called by coordinators):
//
//	POST /attach  -> attachResponse | 409 (incompatible build)
//	GET  /healthz, GET /status
//
// protoVersion gates the wire format; protocolCheck() additionally
// folds in the simulator's SpecVersion and RNG stream digest so two
// *compatible wire formats* around *incompatible simulators* still
// refuse to mix — a silent mix would break the byte-identical
// determinism guarantee of sharded campaigns.
//
// v2: the wire bodies are the typed internal/api structs, wave jobs
// (Knobs.Wave/TrialOffset) exist on the wire, and the worker's attach
// endpoint is canonically POST /v1/attach (the unversioned path stays
// as a deprecated alias). A v1 peer would run wave jobs as plain
// batches — silently wrong trials — so mixed fleets are refused.
const protoVersion = 2

// protocolCheck is the compatibility token exchanged at attach and
// lease time.
func protocolCheck() string {
	return fmt.Sprintf("p%d.s%d.%s", protoVersion, SpecVersion, sim.StreamCheck())
}

// explainCheckMismatch names WHICH component of two protocolCheck
// tokens disagrees — the wire protoVersion, the campaign SpecVersion,
// or the RNG stream digest — so a refused attach/lease says what to
// upgrade instead of dumping two opaque tokens. Unparseable tokens
// (e.g. from a build predating the format) fall back to quoting both.
func explainCheckMismatch(ours, theirs string) string {
	op, os, od, ok1 := splitCheck(ours)
	tp, ts, td, ok2 := splitCheck(theirs)
	if !ok1 || !ok2 {
		return fmt.Sprintf("unrecognized check format: ours %q, theirs %q", ours, theirs)
	}
	switch {
	case op != tp:
		return fmt.Sprintf("wire protocol version mismatch: ours %s, theirs %s (checks %q vs %q)", op, tp, ours, theirs)
	case os != ts:
		return fmt.Sprintf("campaign SpecVersion mismatch: ours %s, theirs %s (checks %q vs %q)", os, ts, ours, theirs)
	case od != td:
		return fmt.Sprintf("RNG stream digest mismatch: ours %s, theirs %s — simulator builds differ", od, td)
	default:
		return fmt.Sprintf("checks match (%q); refusal is spurious", ours)
	}
}

// splitCheck parses "p<proto>.s<spec>.<digest>".
func splitCheck(c string) (proto, spec, digest string, ok bool) {
	parts := strings.SplitN(c, ".", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[0], "p") || !strings.HasPrefix(parts[1], "s") {
		return "", "", "", false
	}
	return parts[0][1:], parts[1][1:], parts[2], true
}

// The wire bodies are the exported internal/api types; the aliases
// keep the board/worker implementation reading naturally while the
// api package owns the single definition every process serializes.
type (
	attachRequest    = api.AttachRequest
	attachResponse   = api.AttachResponse
	leaseRequest     = api.LeaseRequest
	leaseResponse    = api.LeaseResponse
	heartbeatRequest = api.HeartbeatRequest
	completeRequest  = api.CompleteRequest
	boardStatus      = api.BoardStatus
)

// NormalizeWorkerURL turns a -workers flag element (host:port or a
// full URL) into a worker base URL.
func NormalizeWorkerURL(s string) string {
	s = strings.TrimRight(strings.TrimSpace(s), "/")
	if s == "" {
		return ""
	}
	if strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") {
		return s
	}
	return "http://" + s
}

// CoordinatorAddr resolves a -coordinator flag into a job-board
// listen address. The board's advertised URL is derived from the
// bound listener, so the flag's host decides what workers are told to
// dial: "" keeps the loopback default (single-machine fleets), a bare
// host (including an IPv6 literal like "2001:db8::1") binds that
// interface with an ephemeral port — the right form for cross-host
// fleets, where concurrent campaigns each get their own port — and an
// explicit "host:port" / "[v6]:port" is used verbatim.
func CoordinatorAddr(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return "127.0.0.1:0"
	}
	if _, _, err := net.SplitHostPort(s); err == nil {
		return s
	}
	return net.JoinHostPort(s, "0")
}

// ParseWorkerList splits a comma-separated -workers flag into worker
// base URLs, dropping empty elements.
func ParseWorkerList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if u := NormalizeWorkerURL(part); u != "" {
			out = append(out, u)
		}
	}
	return out
}
