package campaign

import (
	"fmt"
	"net"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// The distributed campaign protocol. A coordinator (Dispatcher) serves
// a job board over HTTP; workers attach to it and then *pull*: each
// worker leases one job at a time, heartbeats while simulating, and
// completes with the canonical metrics payload plus the job's cache
// key. The coordinator owns all campaign state — workers are stateless
// between jobs, so losing one costs at most its in-flight leases,
// which expire and are reassigned.
//
// Board endpoints (served by the coordinator, called by workers):
//
//	POST /lease     -> leaseResponse | 204 (nothing to hand out) | 410 (board over)
//	POST /heartbeat -> 200 (extended) | 410 (lease revoked or board over)
//	POST /complete  -> 200 | 410 (lease revoked; result discarded)
//
// Worker endpoints (served by mmmd -worker, called by coordinators):
//
//	POST /attach  -> attachResponse | 409 (incompatible build)
//	GET  /healthz, GET /status
//
// protoVersion gates the wire format; protocolCheck() additionally
// folds in the simulator's SpecVersion and RNG stream digest so two
// *compatible wire formats* around *incompatible simulators* still
// refuse to mix — a silent mix would break the byte-identical
// determinism guarantee of sharded campaigns.
const protoVersion = 1

// protocolCheck is the compatibility token exchanged at attach and
// lease time.
func protocolCheck() string {
	return fmt.Sprintf("p%d.s%d.%s", protoVersion, SpecVersion, sim.StreamCheck())
}

// explainCheckMismatch names WHICH component of two protocolCheck
// tokens disagrees — the wire protoVersion, the campaign SpecVersion,
// or the RNG stream digest — so a refused attach/lease says what to
// upgrade instead of dumping two opaque tokens. Unparseable tokens
// (e.g. from a build predating the format) fall back to quoting both.
func explainCheckMismatch(ours, theirs string) string {
	op, os, od, ok1 := splitCheck(ours)
	tp, ts, td, ok2 := splitCheck(theirs)
	if !ok1 || !ok2 {
		return fmt.Sprintf("unrecognized check format: ours %q, theirs %q", ours, theirs)
	}
	switch {
	case op != tp:
		return fmt.Sprintf("wire protocol version mismatch: ours %s, theirs %s (checks %q vs %q)", op, tp, ours, theirs)
	case os != ts:
		return fmt.Sprintf("campaign SpecVersion mismatch: ours %s, theirs %s (checks %q vs %q)", os, ts, ours, theirs)
	case od != td:
		return fmt.Sprintf("RNG stream digest mismatch: ours %s, theirs %s — simulator builds differ", od, td)
	default:
		return fmt.Sprintf("checks match (%q); refusal is spurious", ours)
	}
}

// splitCheck parses "p<proto>.s<spec>.<digest>".
func splitCheck(c string) (proto, spec, digest string, ok bool) {
	parts := strings.SplitN(c, ".", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[0], "p") || !strings.HasPrefix(parts[1], "s") {
		return "", "", "", false
	}
	return parts[0][1:], parts[1][1:], parts[2], true
}

// attachRequest invites a worker to start pulling jobs from a board.
type attachRequest struct {
	// Coordinator is the base URL of the board to pull from.
	Coordinator string `json:"coordinator"`
	// Check is the coordinator's protocolCheck(); the worker refuses
	// the attachment unless it matches its own.
	Check string `json:"check"`
}

// attachResponse acknowledges an attachment.
type attachResponse struct {
	Worker   string `json:"worker"`
	Capacity int    `json:"capacity"`
	Check    string `json:"check"`
}

// leaseRequest asks the board for one job.
type leaseRequest struct {
	Worker string `json:"worker"`
	Check  string `json:"check"`
}

// leaseResponse hands a worker one job under a lease. SimSeed and
// Fingerprint are the coordinator's derivations; the worker recomputes
// both and refuses the job on mismatch, so a seed-derivation or
// fingerprint skew between builds surfaces as an explicit error
// instead of a silently divergent (and wrongly cached) simulation.
type leaseResponse struct {
	LeaseID     string `json:"lease_id"`
	Job         Job    `json:"job"`
	Scale       Scale  `json:"scale"`
	SimSeed     uint64 `json:"sim_seed"`
	Fingerprint string `json:"fingerprint"`
	TTLMS       int64  `json:"ttl_ms"`
}

// heartbeatRequest extends a lease while its job simulates.
type heartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// completeRequest returns a finished job: the canonical core.Metrics
// payload (the same JSON the content-addressed cache stores) plus the
// job's cache key, or an error. Exactly one of Metrics/Error is set.
type completeRequest struct {
	LeaseID     string        `json:"lease_id"`
	Worker      string        `json:"worker"`
	Fingerprint string        `json:"fingerprint"`
	Metrics     *core.Metrics `json:"metrics,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// boardStatus is the terminal payload of 410 responses: why the board
// is over, so workers can log something actionable.
type boardStatus struct {
	Done  bool   `json:"done"`
	Error string `json:"error,omitempty"`
}

// NormalizeWorkerURL turns a -workers flag element (host:port or a
// full URL) into a worker base URL.
func NormalizeWorkerURL(s string) string {
	s = strings.TrimRight(strings.TrimSpace(s), "/")
	if s == "" {
		return ""
	}
	if strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") {
		return s
	}
	return "http://" + s
}

// CoordinatorAddr resolves a -coordinator flag into a job-board
// listen address. The board's advertised URL is derived from the
// bound listener, so the flag's host decides what workers are told to
// dial: "" keeps the loopback default (single-machine fleets), a bare
// host (including an IPv6 literal like "2001:db8::1") binds that
// interface with an ephemeral port — the right form for cross-host
// fleets, where concurrent campaigns each get their own port — and an
// explicit "host:port" / "[v6]:port" is used verbatim.
func CoordinatorAddr(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return "127.0.0.1:0"
	}
	if _, _, err := net.SplitHostPort(s); err == nil {
		return s
	}
	return net.JoinHostPort(s, "0")
}

// ParseWorkerList splits a comma-separated -workers flag into worker
// base URLs, dropping empty elements.
func ParseWorkerList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if u := NormalizeWorkerURL(part); u != "" {
			out = append(out, u)
		}
	}
	return out
}
