package campaign

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/relia"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configures an Engine.
type Options struct {
	// Parallel bounds the worker pool; values below 1 use NumCPU.
	Parallel int
	// Cache, when non-nil, is consulted before and written after every
	// job.
	Cache Cache
	// OnProgress, when non-nil, is called after every completed job
	// with the running totals (done out of total, cache hits so far).
	OnProgress func(done, total, hits int)
	// OnJobTime, when non-nil, is called with each simulated job's wall
	// time (cache hits excluded). It runs on worker goroutines and must
	// be concurrency-safe.
	OnJobTime func(time.Duration)
	// TraceDir, when non-empty, writes a flight-recorder trace for every
	// simulated job (cache hits have no simulation to trace) as
	// <mangled key+seed>.trace.json (Chrome trace-event JSON) and
	// .trace.jsonl next to it. Tracing is deliberately not part of the
	// job identity: fingerprints, cached metrics and result rows are
	// byte-identical with or without it.
	TraceDir string
	// TraceMatch, when non-empty, restricts TraceDir to jobs whose
	// aggregation key contains the substring.
	TraceMatch string
	// Journal, when non-nil, receives the run's lifecycle events
	// (expansion, per-cell start/completion/merge). Purely
	// observational: it never alters scheduling, fingerprints or
	// results, and a nil Journal records nothing.
	Journal *Journal
	// OnTrace, when non-nil, is called after each traced job with the
	// flight recorder's cumulative event and dropped-event counts for
	// that job. Runs on worker goroutines; must be concurrency-safe.
	OnTrace func(total, dropped uint64)
}

// Engine executes expanded job sets. It is stateless apart from its
// options and safe for concurrent Run calls (the mmmd service runs
// several campaigns at once on one engine).
type Engine struct {
	opts Options
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	if opts.Parallel < 1 {
		opts.Parallel = runtime.NumCPU()
	}
	return &Engine{opts: opts}
}

// Result is one completed job with its metrics and cache provenance.
type Result struct {
	Job      Job
	Metrics  core.Metrics
	CacheHit bool
}

// ResultSet holds a campaign's completed jobs in expansion order —
// independent of worker-pool scheduling, so aggregation over it is
// deterministic for any parallelism.
type ResultSet struct {
	Scale   Scale
	Results []Result
	Hits    int
	Misses  int
	Wall    time.Duration
}

// ByKey groups metrics by aggregation key, preserving expansion order
// within each key.
func (rs *ResultSet) ByKey() map[string][]core.Metrics {
	out := make(map[string][]core.Metrics)
	for _, r := range rs.Results {
		k := r.Job.Key()
		out[k] = append(out[k], r.Metrics)
	}
	return out
}

// Run executes jobs on the bounded pool, serving and filling the cache,
// and returns the ordered results. It stops early when ctx is
// cancelled or a job fails, returning the first error.
func (e *Engine) Run(ctx context.Context, sc Scale, jobs []Job) (*ResultSet, error) {
	start := time.Now()
	rs := &ResultSet{Scale: sc, Results: make([]Result, len(jobs))}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	e.opts.Journal.Begin(sc, jobs)

	var (
		mu       sync.Mutex
		firstErr error
		done     int
		hits     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	finish := func(hit bool) {
		mu.Lock()
		done++
		if hit {
			hits++
		}
		// The callback runs under the lock so progress is delivered in
		// order; consumers must not call back into the engine.
		if e.opts.OnProgress != nil {
			e.opts.OnProgress(done, len(jobs), hits)
		}
		mu.Unlock()
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < e.opts.Parallel; w++ {
		wg.Add(1)
		// The pool slot doubles as the journal's worker label for local
		// runs, mirroring the worker names of distributed ones.
		label := "local-" + strconv.Itoa(w)
		go func() {
			defer wg.Done()
			// Per-worker scratch: each worker recycles the cache
			// hierarchy's multi-megabyte line arrays across the chips it
			// builds, instead of allocating ~10 MB per job for the
			// garbage collector to chase. The recycler is confined to
			// this goroutine, so no locking is involved.
			scratch := cache.NewRecycler()
			for i := range work {
				j := jobs[i]
				fp := j.Fingerprint(sc)
				if e.opts.Cache != nil {
					if m, ok := e.opts.Cache.Get(fp); ok {
						rs.Results[i] = Result{Job: j, Metrics: m, CacheHit: true}
						e.opts.Journal.CellDone(i, j, m, true, "", 0, 0)
						finish(true)
						continue
					}
				}
				e.opts.Journal.Started(i, j, label, 1)
				rec := traceRecorder(e.opts.TraceDir, e.opts.TraceMatch, j)
				jobStart := time.Now()
				m, err := runJob(sc, j, scratch, rec)
				if err != nil {
					e.opts.Journal.CellFailed(i, j, label, 1, err.Error())
					fail(err)
					return
				}
				if e.opts.OnJobTime != nil {
					e.opts.OnJobTime(time.Since(jobStart))
				}
				if rec != nil {
					if err := writeTrace(e.opts.TraceDir, j, rec); err != nil {
						fail(err)
						return
					}
					if e.opts.OnTrace != nil {
						e.opts.OnTrace(rec.Total(), rec.Dropped())
					}
				}
				if e.opts.Cache != nil {
					if err := e.opts.Cache.Put(fp, m); err != nil {
						fail(err)
						return
					}
				}
				rs.Results[i] = Result{Job: j, Metrics: m}
				e.opts.Journal.CellDone(i, j, m, false, label, time.Since(jobStart), 1)
				finish(false)
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mu.Lock()
	rs.Hits, rs.Misses = hits, done-hits
	mu.Unlock()
	rs.Wall = time.Since(start)
	return rs, nil
}

// runJob builds and measures one simulation (or, for reliability
// jobs, one Monte Carlo trial batch). scratch recycles chip arrays
// across the jobs of one worker; nil is valid. rec, when non-nil,
// attaches a flight recorder to the simulated chip — pure observation,
// never part of the returned metrics.
func runJob(sc Scale, j Job, scratch *cache.Recycler, rec *obs.Recorder) (core.Metrics, error) {
	wl, err := workload.ByName(j.Workload)
	if err != nil {
		return core.Metrics{}, err
	}
	if j.Knobs.ReliaTrials > 0 {
		return runReliaJob(sc, j, wl, scratch, rec)
	}
	cfg := sim.DefaultConfig()
	cfg.TimesliceCycles = sc.Timeslice
	j.Knobs.Apply(cfg)
	opts := core.Options{
		Cfg:         cfg,
		Kind:        j.Kind,
		Workload:    wl,
		Seed:        j.SimSeed(),
		Policy:      j.Knobs.Policy,
		PABDisabled: j.Knobs.PABDisabled,
		ForcePAB:    j.Knobs.ForcePAB,
		Recycler:    scratch,
		Recorder:    rec,
	}
	if j.Knobs.FaultInterval > 0 {
		opts.FaultPlan = &fault.Plan{
			MeanInterval: j.Knobs.FaultInterval,
			Kinds:        parseFaultKinds(j.Knobs.FaultKinds),
			Seed:         j.SimSeed(),
		}
	}
	return core.RunSystem(opts, sc.Warmup, sc.Measure)
}

// parseFaultKinds resolves a comma-joined kind list; unknown names are
// dropped (the fingerprint already separates the cells, and a relia
// job with an empty set falls back to all kinds).
func parseFaultKinds(s string) []fault.Kind {
	if s == "" {
		return nil
	}
	var kinds []fault.Kind
	for _, name := range strings.Split(s, ",") {
		if k, err := fault.KindByName(strings.TrimSpace(name)); err == nil {
			kinds = append(kinds, k)
		}
	}
	return kinds
}

// runReliaJob executes one reliability batch: ReliaTrials derived-seed
// trial slices with faults injected at the job's rate, classified into
// the outcome taxonomy. The batch rides in Metrics.Relia so it flows
// through the same cache and aggregation as performance jobs.
func runReliaJob(sc Scale, j Job, wl *workload.Params, scratch *cache.Recycler, rec *obs.Recorder) (core.Metrics, error) {
	// Wave jobs (adaptive-precision increments of one cell) size their
	// per-trial windows from the cell's reference batch shape — not
	// from the wave's own trial count — so every wave of a cell runs
	// statistically identical trials and the merged aggregate equals a
	// single batch of the same trials. Fixed-batch jobs keep the
	// historical trials-dependent windows (their cached results pin
	// them).
	windowTrials := j.Knobs.ReliaTrials
	if j.Knobs.Wave > 0 {
		windowTrials = DefaultReliaTrials
	}
	warmup, measure, timeslice := relia.TrialWindows(sc.Warmup, sc.Measure, windowTrials)
	// Design knobs (serial PAB, TSO, flush rate) apply to reliability
	// trials exactly as they do to performance jobs — the fingerprint
	// distinguishes those cells, so their results must differ too.
	cfg := sim.DefaultConfig()
	j.Knobs.Apply(cfg)
	batch, err := relia.RunBatch(relia.BatchSpec{
		Trials:     j.Knobs.ReliaTrials,
		FirstTrial: j.Knobs.TrialOffset,
		Trial: relia.TrialSpec{
			Kind:         j.Kind,
			Workload:     wl,
			Config:       cfg,
			Policy:       j.Knobs.Policy,
			Seed:         j.SimSeed(),
			Kinds:        parseFaultKinds(j.Knobs.FaultKinds),
			MeanInterval: j.Knobs.FaultInterval,
			Warmup:       warmup,
			Measure:      measure,
			Timeslice:    timeslice,
			ForcePAB:     j.Knobs.ForcePAB,
			PABDisabled:  j.Knobs.PABDisabled,
			Recycler:     scratch,
			Recorder:     rec,
		},
	})
	if err != nil {
		return core.Metrics{}, err
	}
	m := core.Metrics{
		Kind:           j.Kind,
		Workload:       j.Workload,
		Cycles:         uint64(j.Knobs.ReliaTrials) * measure,
		FaultsInjected: relia.TotalInjected(&batch),
		Relia:          &batch,
	}
	return m, nil
}

// summaryMetrics lists the per-key aggregates Summarize emits for the
// buckets-independent counters, in emission order.
var summaryMetrics = []struct {
	name string
	get  func(*core.Metrics) float64
}{
	{"tp:total", func(m *core.Metrics) float64 { return m.TotalThroughput() }},
	{"enter_avg", func(m *core.Metrics) float64 { return m.EnterAvg }},
	{"leave_avg", func(m *core.Metrics) float64 { return m.LeaveAvg }},
	{"enter_n", func(m *core.Metrics) float64 { return float64(m.EnterN) }},
	{"checks", func(m *core.Metrics) float64 { return float64(m.Checks) }},
	{"mismatches", func(m *core.Metrics) float64 { return float64(m.Mismatches) }},
	{"pab_exceptions", func(m *core.Metrics) float64 { return float64(m.PABExceptions) }},
	{"would_corrupt", func(m *core.Metrics) float64 { return float64(m.WouldCorrupt) }},
	{"verify_failures", func(m *core.Metrics) float64 { return float64(m.VerifyFailures) }},
	{"faults_injected", func(m *core.Metrics) float64 { return float64(m.FaultsInjected) }},
	{"user_cyc_per_switch", func(m *core.Metrics) float64 { return m.UserCycPerSwitch }},
	{"os_cyc_per_switch", func(m *core.Metrics) float64 { return m.OSCycPerSwitch }},
}

// Summarize aggregates a result set into stats rows: per aggregation
// key, the per-bucket user IPC and throughput plus the fixed counter
// set, each summarized over the key's seeds. Keys, buckets and metrics
// are emitted in sorted/fixed order so the rows — and their JSON/CSV
// renderings — are byte-identical across runs, parallelism levels and
// cache temperature.
func Summarize(rs *ResultSet) []stats.Row {
	byKey := rs.ByKey()
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var rows []stats.Row
	for _, k := range keys {
		ms := byKey[k]
		buckets := map[string]bool{}
		for i := range ms {
			for b := range ms[i].GuestVCPUs {
				buckets[b] = true
			}
		}
		names := make([]string, 0, len(buckets))
		for b := range buckets {
			names = append(names, b)
		}
		sort.Strings(names)
		for _, b := range names {
			ipc, tp := &stats.Sample{}, &stats.Sample{}
			for i := range ms {
				ipc.Add(ms[i].UserIPC(b))
				tp.Add(ms[i].Throughput(b))
			}
			rows = append(rows, stats.RowOf(k, "ipc:"+b, ipc))
			rows = append(rows, stats.RowOf(k, "tp:"+b, tp))
		}
		for _, sm := range summaryMetrics {
			s := &stats.Sample{}
			for i := range ms {
				s.Add(sm.get(&ms[i]))
			}
			rows = append(rows, stats.RowOf(k, sm.name, s))
		}
		// Reliability cells additionally emit the outcome-taxonomy
		// rows: coverage/SDC with Wilson intervals, outcome counts,
		// detection-latency percentiles and the MTTF/FIT rollup.
		batches := make([]*core.ReliaBatch, 0, len(ms))
		for i := range ms {
			batches = append(batches, ms[i].Relia)
		}
		if merged := relia.MergeBatches(batches); merged != nil {
			rows = append(rows, relia.Rows(k, merged, relia.DefaultRates())...)
		}
	}
	return rows
}
