package campaign

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/relia"
	"repro/internal/stats"
)

// Adaptive-precision execution: sequential stopping in waves.
//
// A fixed-batch campaign spends the same trial budget on every cell,
// so the budget is sized for the hardest cell and most of it is wasted
// on cells whose proportions are nowhere near p=0.5. An adaptive
// campaign instead declares a target precision (a Wilson half-width on
// coverage or SDC probability) and lets each cell run just enough
// trials: the planner expands every cell into deterministic *waves* of
// trials, applies the stopping rule after each wave, and retires the
// cell the moment its interval is narrow enough — or caps it at
// MaxTrials, which Precision.Normalized defaults to the worst-case
// (p=0.5) trial count, so every cell terminates within the target.
//
// Determinism is wave-shaped, not schedule-shaped. Wave k of a cell
// always covers the same global trial indices ([offset, offset+size)),
// each wave job's fingerprint derives from (cell fingerprint, wave
// index, offset), and trial seeds derive from the global index — so
// cached, resumed and distributed runs are byte-identical at equal
// target precision, whatever order the scheduler ran the waves in.
// Cells are independent: each one observes only its own waves, so
// cross-cell completion order cannot change any stopping decision.
// There is no global barrier — a cell's next wave is schedulable the
// instant its previous wave lands, while other cells' waves are still
// in flight, and freed capacity flows to the widest intervals first.

// cellTemplate strips the wave-scheduling knobs off a job, leaving the
// wave-invariant cell identity: every wave of one adaptive cell — and
// the cell's original expanded job, whatever fixed trial count it
// declared — maps to the same template. The template is the adaptive
// run's cell key (journal indices, planner lookups, merged results).
func cellTemplate(j Job) Job {
	j.Knobs.ReliaTrials = 0
	j.Knobs.Wave = 0
	j.Knobs.TrialOffset = 0
	return j
}

// cellState tracks one cell's sequential-stopping progress. All access
// is serialized by the planner's caller (the engine's completion lock,
// the dispatcher's board mutex).
type cellState struct {
	template Job
	wave     int // waves scheduled so far
	trials   int // trials scheduled so far
	waves    int // waves completed so far
	hits     int // completed waves served from the cache
	cycles   uint64
	faults   uint64
	batches  []*core.ReliaBatch // completed waves, in wave order
	half     float64            // Wilson half-width after the last completed wave
	retired  bool
	capped   bool // retired at MaxTrials instead of at target
}

// planner is the sequential-stopping state machine shared by the local
// engine and the distributed dispatcher. It decides *what* runs (which
// cell gets its next wave, when a cell retires); the caller decides
// *where* (pool slot, worker lease). The planner holds no lock of its
// own — callers serialize start/observe/results externally.
type planner struct {
	sc    Scale
	prec  Precision
	cells []*cellState
	index map[Job]int
}

// newPlanner validates and expands an adaptive spec. Every expanded
// job must be a fault-injection cell (the stopping rule is a Wilson
// interval over fault outcomes; a cell that injects nothing can never
// converge) and cells must stay distinct after the trial knobs are
// stripped.
func newPlanner(sc Scale, spec Spec) (*planner, error) {
	if spec.Precision == nil {
		return nil, fmt.Errorf("campaign: spec %q has no precision block", spec.Name)
	}
	prec := spec.Precision.Normalized()
	if err := prec.Validate(); err != nil {
		return nil, err
	}
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("campaign: adaptive spec %q expands to no cells", spec.Name)
	}
	p := &planner{sc: sc, prec: prec, index: make(map[Job]int, len(jobs))}
	for _, j := range jobs {
		if j.Knobs.FaultInterval <= 0 {
			return nil, fmt.Errorf(
				"campaign: adaptive precision needs fault-injection cells: job %s has no fault_interval",
				j.Key())
		}
		t := cellTemplate(j)
		if _, dup := p.index[t]; dup {
			return nil, fmt.Errorf(
				"campaign: adaptive cells collide on %s after dropping trial knobs (cells may not differ only in relia_trials)",
				j.Key())
		}
		p.index[t] = len(p.cells)
		p.cells = append(p.cells, &cellState{template: t, half: 1})
	}
	return p, nil
}

// templates returns the cells' wave-invariant jobs in expansion order
// (the journal's cell numbering).
func (p *planner) templates() []Job {
	out := make([]Job, len(p.cells))
	for i, c := range p.cells {
		out[i] = c.template
	}
	return out
}

// start schedules wave 1 of every cell.
func (p *planner) start() []Job {
	jobs := make([]Job, 0, len(p.cells))
	for _, c := range p.cells {
		jobs = append(jobs, p.nextWave(c))
	}
	return jobs
}

// nextWave mints the cell's next wave job: 1-based wave index, trial
// offset continuing where the previous wave ended, size clamped so the
// cell never exceeds MaxTrials.
func (p *planner) nextWave(c *cellState) Job {
	size := p.prec.WaveTrials
	if rem := p.prec.MaxTrials - c.trials; size > rem {
		size = rem
	}
	j := c.template
	j.Knobs.Wave = c.wave + 1
	j.Knobs.TrialOffset = c.trials
	j.Knobs.ReliaTrials = size
	c.wave++
	c.trials += size
	return j
}

// priority is a wave job's lease priority: its cell's current
// half-width, so freed capacity always flows to the widest interval
// (1 before any data — an unmeasured cell outranks every measured one).
func (p *planner) priority(j Job) float64 {
	if i, ok := p.index[cellTemplate(j)]; ok {
		return p.cells[i].half
	}
	return 0
}

// halfWidth evaluates the stopping metric over the cell's merged waves.
// With no exposed faults yet, Wilson reports the vacuous [0,1] interval
// (half-width 0.5): the cell keeps scheduling until data arrives or
// MaxTrials caps it — no precision claim without observations.
func (p *planner) halfWidth(c *cellState) float64 {
	merged := relia.MergeBatches(c.batches)
	if merged == nil {
		return 1
	}
	covered, exposed := relia.Coverage(merged, "")
	num := covered
	if p.prec.Metric == "sdc" {
		num = exposed - covered
	}
	return stats.WilsonHalfWidth(num, exposed)
}

// waveOutcome is the planner's decision after one completed wave.
type waveOutcome struct {
	cell    int
	retired bool
	capped  bool
	trials  int
	half    float64
	next    Job // the cell's next wave, valid when hasNext
	hasNext bool
}

// observe folds one completed wave into its cell and applies the
// stopping rule: retire when the interval is inside the target (and
// MinTrials guards against a lucky first wave), cap at MaxTrials,
// otherwise schedule the next wave. Waves of one cell are strictly
// sequential — the caller only ever holds one wave of a cell in
// flight — so batches accumulate in wave order and the merged
// aggregate equals a single batch of the same trials.
func (p *planner) observe(j Job, m core.Metrics, hit bool) (waveOutcome, error) {
	i, ok := p.index[cellTemplate(j)]
	if !ok {
		return waveOutcome{}, fmt.Errorf("campaign: wave completion for unknown cell %s", j.Key())
	}
	c := p.cells[i]
	if c.retired {
		return waveOutcome{}, fmt.Errorf("campaign: wave completion for retired cell %s", j.Key())
	}
	if m.Relia == nil {
		return waveOutcome{}, fmt.Errorf("campaign: wave of cell %s carried no trial batch", j.Key())
	}
	c.batches = append(c.batches, m.Relia)
	c.cycles += m.Cycles
	c.faults += m.FaultsInjected
	c.waves++
	if hit {
		c.hits++
	}
	c.half = p.halfWidth(c)
	switch {
	case c.trials >= p.prec.MinTrials && c.half <= p.prec.HalfWidth:
		c.retired = true
	case c.trials >= p.prec.MaxTrials:
		c.retired, c.capped = true, true
	}
	out := waveOutcome{cell: i, trials: c.trials, half: c.half,
		retired: c.retired, capped: c.capped}
	if !c.retired {
		out.next, out.hasNext = p.nextWave(c), true
	}
	return out, nil
}

// mergedResult renders a retired cell as one campaign Result: the
// template job (with the realized trial count — Key ignores it, so
// aggregation is unaffected), wave batches merged in wave order, and
// the additive counters summed. A cell counts as a cache hit only when
// every one of its waves came from the cache — then a warm resume
// re-simulated nothing.
func (p *planner) mergedResult(c *cellState) Result {
	j := c.template
	j.Knobs.ReliaTrials = c.trials
	return Result{
		Job: j,
		Metrics: core.Metrics{
			Kind:           c.template.Kind,
			Workload:       c.template.Workload,
			Cycles:         c.cycles,
			FaultsInjected: c.faults,
			Relia:          relia.MergeBatches(c.batches),
		},
		CacheHit: c.waves > 0 && c.hits == c.waves,
	}
}

// results returns every cell's merged result in expansion order,
// erroring if any cell is still open (an internal scheduling bug —
// MaxTrials guarantees termination, so an open cell at campaign end
// means waves were lost).
func (p *planner) results() ([]Result, error) {
	out := make([]Result, len(p.cells))
	for i, c := range p.cells {
		if !c.retired {
			return nil, fmt.Errorf("campaign: internal: cell %s still open at campaign end", c.template.Key())
		}
		out[i] = p.mergedResult(c)
	}
	return out, nil
}

// waveQueue is the local engine's dynamic work queue. Unlike the fixed
// engine's pre-sized channel, waves appear as the planner schedules
// them; pops serve the widest interval first (FIFO among equals) and
// the queue itself detects termination — nothing pending and nothing
// in flight — without any global barrier.
type waveQueue struct {
	mu          sync.Mutex
	cond        *sync.Cond
	items       []waveItem
	outstanding int // added but not yet finished (queued + in flight)
	closed      bool
}

type waveItem struct {
	job  Job
	prio float64
}

func newWaveQueue() *waveQueue {
	q := &waveQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// add enqueues one wave; it counts as outstanding until finish.
func (q *waveQueue) add(j Job, prio float64) {
	q.mu.Lock()
	q.items = append(q.items, waveItem{job: j, prio: prio})
	q.outstanding++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a wave is available, the campaign is over (queue
// empty with nothing in flight), or the queue is closed.
func (q *waveQueue) pop() (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return Job{}, false
		}
		if len(q.items) > 0 {
			best := 0
			for i := 1; i < len(q.items); i++ {
				if q.items[i].prio > q.items[best].prio {
					best = i
				}
			}
			j := q.items[best].job
			q.items = append(q.items[:best], q.items[best+1:]...)
			return j, true
		}
		if q.outstanding == 0 {
			return Job{}, false
		}
		q.cond.Wait()
	}
}

// finish retires one popped wave. The worker calls it only after any
// follow-up wave was added, so outstanding can never dip to zero while
// a cell still owes work.
func (q *waveQueue) finish() {
	q.mu.Lock()
	q.outstanding--
	drained := q.outstanding == 0 && len(q.items) == 0
	q.mu.Unlock()
	if drained {
		q.cond.Broadcast()
	}
}

// closeNow drains the queue unconditionally (cancellation or failure);
// blocked pops return immediately.
func (q *waveQueue) closeNow() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// RunSpec executes a whole campaign spec: fixed-batch specs expand and
// run exactly as Run does; a spec with a Precision block runs
// adaptively.
func (e *Engine) RunSpec(ctx context.Context, sc Scale, spec Spec) (*ResultSet, error) {
	if spec.Precision == nil {
		jobs, err := spec.Expand()
		if err != nil {
			return nil, err
		}
		return e.Run(ctx, sc, jobs)
	}
	return e.runAdaptive(ctx, sc, spec)
}

// runAdaptive is the local sequential-stopping executor. Completion
// handling (planner feed, retirement, rescheduling) is serialized
// under one mutex at wave granularity — the same trade-off the fixed
// engine makes for progress callbacks — while simulations run on the
// bounded pool.
func (e *Engine) runAdaptive(ctx context.Context, sc Scale, spec Spec) (*ResultSet, error) {
	start := time.Now()
	p, err := newPlanner(sc, spec)
	if err != nil {
		return nil, err
	}
	e.opts.Journal.BeginAdaptive(sc, p.templates(), p.prec)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu          sync.Mutex
		firstErr    error
		mergedCells int
		hitWaves    int
		waves       int
	)
	q := newWaveQueue()
	go func() {
		<-ctx.Done()
		q.closeNow()
	}()
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	// completeLocked feeds one finished wave to the planner; on
	// retirement it journals the cell's exit and merged aggregate and
	// reports progress in retired cells (the adaptive analogue of
	// done-out-of-total).
	completeLocked := func(j Job, m core.Metrics, hit bool, worker string, wall time.Duration) (Job, bool, error) {
		e.opts.Journal.CellDone(0, j, m, hit, worker, wall, 1)
		waves++
		if hit {
			hitWaves++
		}
		out, err := p.observe(j, m, hit)
		if err != nil {
			return Job{}, false, err
		}
		if out.hasNext {
			return out.next, true, nil
		}
		c := p.cells[out.cell]
		res := p.mergedResult(c)
		e.opts.Journal.CellRetired(c.template, c.trials, c.half, c.capped)
		e.opts.Journal.CellMerged(c.template, res.Metrics, res.CacheHit)
		mergedCells++
		if e.opts.OnProgress != nil {
			e.opts.OnProgress(mergedCells, len(p.cells), hitWaves)
		}
		return Job{}, false, nil
	}

	// scheduleLocked journals a frontier of waves and enqueues the
	// cache misses. Hits resolve inline and chain: a warm cache can
	// retire a cell — or carry it several waves forward — without the
	// pool ever seeing it, which is why a warm resume re-schedules only
	// unfinished waves.
	scheduleLocked := func(frontier []Job) error {
		for len(frontier) > 0 {
			j := frontier[0]
			frontier = frontier[1:]
			e.opts.Journal.WaveScheduled(j, p.priority(j))
			if e.opts.Cache != nil {
				if m, ok := e.opts.Cache.Get(j.Fingerprint(sc)); ok {
					next, more, err := completeLocked(j, m, true, "", 0)
					if err != nil {
						return err
					}
					if more {
						frontier = append(frontier, next)
					}
					continue
				}
			}
			q.add(j, p.priority(j))
		}
		return nil
	}

	// Seed the queue before any worker starts: an empty queue with
	// nothing outstanding means "campaign over", so workers must not
	// observe the pre-seed state.
	mu.Lock()
	err = scheduleLocked(p.start())
	mu.Unlock()
	if err != nil {
		fail(err)
	}

	var wg sync.WaitGroup
	if firstErr == nil {
		for w := 0; w < e.opts.Parallel; w++ {
			label := "local-" + strconv.Itoa(w)
			wg.Add(1)
			go func() {
				defer wg.Done()
				scratch := cache.NewRecycler()
				for {
					j, ok := q.pop()
					if !ok {
						return
					}
					e.opts.Journal.Started(0, j, label, 1)
					rec := traceRecorder(e.opts.TraceDir, e.opts.TraceMatch, j)
					jobStart := time.Now()
					m, err := runJob(sc, j, scratch, rec)
					if err != nil {
						e.opts.Journal.CellFailed(0, j, label, 1, err.Error())
						fail(err)
						q.finish()
						return
					}
					if e.opts.OnJobTime != nil {
						e.opts.OnJobTime(time.Since(jobStart))
					}
					if rec != nil {
						if err := writeTrace(e.opts.TraceDir, j, rec); err != nil {
							fail(err)
							q.finish()
							return
						}
						if e.opts.OnTrace != nil {
							e.opts.OnTrace(rec.Total(), rec.Dropped())
						}
					}
					if e.opts.Cache != nil {
						if err := e.opts.Cache.Put(j.Fingerprint(sc), m); err != nil {
							fail(err)
							q.finish()
							return
						}
					}
					mu.Lock()
					next, more, err := completeLocked(j, m, false, label, time.Since(jobStart))
					if err == nil && more {
						err = scheduleLocked([]Job{next})
					}
					mu.Unlock()
					if err != nil {
						fail(err)
						q.finish()
						return
					}
					q.finish()
				}
			}()
		}
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results, err := p.results()
	if err != nil {
		return nil, err
	}
	return &ResultSet{
		Scale:   sc,
		Results: results,
		Hits:    hitWaves,
		Misses:  waves - hitWaves,
		Wall:    time.Since(start),
	}, nil
}

// RunSpec executes a whole campaign spec across the fleet: fixed-batch
// specs dispatch exactly as Run does; a spec with a Precision block
// runs adaptively, with the lease board re-leasing capacity freed by
// retired cells to the widest remaining intervals.
func (d *Dispatcher) RunSpec(ctx context.Context, sc Scale, spec Spec) (*ResultSet, error) {
	if spec.Precision == nil {
		jobs, err := spec.Expand()
		if err != nil {
			return nil, err
		}
		return d.Run(ctx, sc, jobs)
	}
	return d.runAdaptive(ctx, sc, spec)
}

// runAdaptive is the distributed sequential-stopping executor: the
// same planner as the local engine, fed from the board's completion
// path. The board's expand hook runs under its mutex, so planner
// access is serialized exactly like the engine's completion lock, and
// a cell's follow-up wave joins the lease queue the moment its
// previous wave lands — per-cell wave barriers, no global one.
func (d *Dispatcher) runAdaptive(ctx context.Context, sc Scale, spec Spec) (*ResultSet, error) {
	if len(d.opts.Workers) == 0 {
		return nil, fmt.Errorf("campaign: dispatcher has no workers")
	}
	start := time.Now()
	p, err := newPlanner(sc, spec)
	if err != nil {
		return nil, err
	}
	d.opts.Journal.BeginAdaptive(sc, p.templates(), p.prec)

	mergedCells, hitWaves, waves := 0, 0, 0

	// feed mirrors the engine's completeLocked. Board completions are
	// already journaled by the board itself; cache hits (prepass and
	// chained) are journaled here, like Run's hit prepass.
	feed := func(j Job, m core.Metrics, hit bool) (Job, bool, error) {
		if hit {
			d.opts.Journal.CellDone(0, j, m, true, "", 0, 0)
		}
		waves++
		if hit {
			hitWaves++
		}
		out, err := p.observe(j, m, hit)
		if err != nil {
			return Job{}, false, err
		}
		if out.hasNext {
			return out.next, true, nil
		}
		c := p.cells[out.cell]
		res := p.mergedResult(c)
		d.opts.Journal.CellRetired(c.template, c.trials, c.half, c.capped)
		d.opts.Journal.CellMerged(c.template, res.Metrics, res.CacheHit)
		mergedCells++
		if d.opts.OnProgress != nil {
			d.opts.OnProgress(mergedCells, len(p.cells), hitWaves)
		}
		return Job{}, false, nil
	}

	// schedule journals a frontier, resolves cache hits inline (hit
	// chains never touch the fleet) and returns the waves that must
	// actually run, each carrying its cell's current half-width as
	// lease priority.
	schedule := func(frontier []Job) ([]prioJob, error) {
		var misses []prioJob
		for len(frontier) > 0 {
			j := frontier[0]
			frontier = frontier[1:]
			d.opts.Journal.WaveScheduled(j, p.priority(j))
			if d.opts.Cache != nil {
				if m, ok := d.opts.Cache.Get(j.Fingerprint(sc)); ok {
					next, more, err := feed(j, m, true)
					if err != nil {
						return nil, err
					}
					if more {
						frontier = append(frontier, next)
					}
					continue
				}
			}
			misses = append(misses, prioJob{job: j, prio: p.priority(j)})
		}
		return misses, nil
	}

	initial, err := schedule(p.start())
	if err != nil {
		return nil, err
	}

	if len(initial) > 0 {
		jobs := make([]Job, len(initial))
		todo := make([]int, len(initial))
		prio := make(map[int]float64, len(initial))
		for i, pj := range initial {
			jobs[i] = pj.job
			todo[i] = i
			prio[i] = pj.prio
		}
		b := newBoard(sc, jobs, todo, d.opts.LeaseTTL, d.opts.MaxInflight, d.opts.MaxAttempts, nil)
		b.prio = prio
		b.fobs = d.opts.Obs
		b.jnl = d.opts.Journal
		b.expand = func(idx int, m core.Metrics) ([]prioJob, error) {
			if d.opts.Cache != nil {
				if err := d.opts.Cache.Put(b.jobs[idx].Fingerprint(sc), m); err != nil {
					return nil, err
				}
			}
			next, more, err := feed(b.jobs[idx], m, false)
			if err != nil || !more {
				return nil, err
			}
			return schedule([]Job{next})
		}
		if err := d.serve(ctx, b); err != nil {
			return nil, err
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results, err := p.results()
	if err != nil {
		return nil, err
	}
	return &ResultSet{
		Scale:   sc,
		Results: results,
		Hits:    hitWaves,
		Misses:  waves - hitWaves,
		Wall:    time.Since(start),
	}, nil
}
