package campaign

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

// microScale keeps engine tests fast: just enough cycles for caches to
// fill and a few timeslices to elapse.
func microScale() Scale {
	return Scale{Warmup: 30_000, Measure: 60_000, Timeslice: 20_000}
}

func TestSpecExpandCrossProduct(t *testing.T) {
	s := Spec{
		Name:      "x",
		Kinds:     []core.Kind{core.KindNoDMR, core.KindReunion},
		Workloads: []string{"apache", "oltp"},
		Seeds:     []uint64{1, 2, 3},
		Variants:  []Variant{{}, {Name: "tso", Knobs: Knobs{TSO: true}}},
	}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2*2*3*2 {
		t.Fatalf("expanded %d jobs, want 24", len(jobs))
	}
	// Deterministic: a second expansion is identical.
	again, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, jobs[i], again[i])
		}
	}
}

func TestSpecExpandDefaultsAndValidation(t *testing.T) {
	s := Spec{Name: "d", Kinds: []core.Kind{core.KindNoDMR}}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6*2 { // all workloads x default seeds
		t.Fatalf("expanded %d jobs, want 12", len(jobs))
	}
	if _, err := (Spec{Name: "e"}).Expand(); err == nil {
		t.Fatal("empty spec must not expand")
	}
	if _, err := (Spec{Name: "bad", Kinds: []core.Kind{core.KindNoDMR}, Workloads: []string{"nope"}}).Expand(); err == nil {
		t.Fatal("unknown workload must be rejected at expansion")
	}
}

func TestSpecExpandDedupes(t *testing.T) {
	j := Job{Workload: "apache", Kind: core.KindNoDMR, Seed: 1}
	jobs, err := (Spec{Name: "dup", Jobs: []Job{j, j, j}}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("dedupe kept %d jobs, want 1", len(jobs))
	}
}

func TestJobKeyAndFingerprint(t *testing.T) {
	j := Job{Workload: "apache", Kind: core.KindMMMIPC, Seed: 11}
	if j.Key() != "apache/MMM-IPC" {
		t.Fatal(j.Key())
	}
	j.Variant = "serial"
	if j.Key() != "apache/MMM-IPC/serial" {
		t.Fatal(j.Key())
	}

	sc := microScale()
	base := j.Fingerprint(sc)
	perturb := []Job{
		{Workload: "oltp", Kind: j.Kind, Seed: j.Seed, Variant: j.Variant},
		{Workload: j.Workload, Kind: core.KindMMMTP, Seed: j.Seed, Variant: j.Variant},
		{Workload: j.Workload, Kind: j.Kind, Seed: 12, Variant: j.Variant},
		{Workload: j.Workload, Kind: j.Kind, Seed: j.Seed, Variant: "parallel"},
		{Workload: j.Workload, Kind: j.Kind, Seed: j.Seed, Variant: j.Variant, Knobs: Knobs{PABSerial: true}},
		{Workload: j.Workload, Kind: j.Kind, Seed: j.Seed, Variant: j.Variant, Knobs: Knobs{FaultInterval: 1000}},
	}
	for i, p := range perturb {
		if p.Fingerprint(sc) == base {
			t.Errorf("perturbation %d did not change the fingerprint", i)
		}
	}
	if j.Fingerprint(Scale{Warmup: 1, Measure: 2, Timeslice: 3}) == base {
		t.Error("scale change did not change the fingerprint")
	}
	if j.Fingerprint(sc) != base {
		t.Error("fingerprint not stable")
	}
}

func TestSimSeedDecorrelatesCells(t *testing.T) {
	a := Job{Workload: "apache", Kind: core.KindNoDMR, Seed: 11}
	b := Job{Workload: "oltp", Kind: core.KindNoDMR, Seed: 11}
	c := Job{Workload: "apache", Kind: core.KindReunion, Seed: 11}
	if a.SimSeed() == b.SimSeed() || a.SimSeed() == c.SimSeed() {
		t.Fatal("cells sharing a declared seed must get distinct sim seeds")
	}
	if a.SimSeed() != a.SimSeed() {
		t.Fatal("sim seed not stable")
	}
}

func TestRegistryNamesExpand(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no registered campaigns")
	}
	for _, n := range names {
		spec, err := Named(n, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := spec.Expand()
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if len(jobs) == 0 {
			t.Fatalf("%s: expanded to no jobs", n)
		}
	}
	if _, err := Named("nope", nil, nil); err == nil {
		t.Fatal("unknown campaign name must error")
	}
}

func TestEnginePropagatesErrors(t *testing.T) {
	eng := New(Options{Parallel: 2})
	_, err := eng.Run(context.Background(), microScale(),
		[]Job{{Workload: "nope", Kind: core.KindNoDMR, Seed: 1}})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("bad workload not reported: %v", err)
	}
}

func TestEngineHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := New(Options{Parallel: 2})
	_, err := eng.Run(ctx, microScale(),
		[]Job{{Workload: "apache", Kind: core.KindNoDMR, Seed: 1}})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEngineProgressCallback(t *testing.T) {
	var calls int
	var lastDone, lastTotal int
	eng := New(Options{Parallel: 1, OnProgress: func(done, total, hits int) {
		calls++
		lastDone, lastTotal = done, total
	}})
	jobs := []Job{
		{Workload: "apache", Kind: core.KindNoDMR, Seed: 1},
		{Workload: "apache", Kind: core.KindNoDMR, Seed: 2},
	}
	if _, err := eng.Run(context.Background(), microScale(), jobs); err != nil {
		t.Fatal(err)
	}
	if calls != 2 || lastDone != 2 || lastTotal != 2 {
		t.Fatalf("progress calls=%d last=%d/%d", calls, lastDone, lastTotal)
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	c, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("deadbeef"); ok {
		t.Fatal("empty cache reported a hit")
	}
	m := core.Metrics{
		Kind:       core.KindMMMTP,
		Workload:   "apache",
		Cycles:     123,
		GuestUser:  map[string]uint64{"perf": 42, "reliable": 7},
		GuestOS:    map[string]uint64{"perf": 1},
		GuestVCPUs: map[string]int{"perf": 16, "reliable": 8},
		EnterAvg:   2200.5,
	}
	if err := c.Put("deadbeef", m); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("deadbeef")
	if !ok {
		t.Fatal("stored entry not found")
	}
	if got.Cycles != m.Cycles || got.GuestUser["perf"] != 42 ||
		got.GuestVCPUs["reliable"] != 8 || got.EnterAvg != 2200.5 {
		t.Fatalf("round trip mangled metrics: %+v", got)
	}
}

func TestReliaJobsExpand(t *testing.T) {
	jobs := ReliaJobs([]string{"apache", "oltp", "pmake"}, []uint64{11}, []float64{20_000, 40_000}, 3)
	modes := len(ReliaModes())
	if want := 3 * modes * 2 * 1; len(jobs) != want {
		t.Fatalf("expanded %d relia jobs, want %d", len(jobs), want)
	}
	variants := map[string]bool{}
	for _, j := range jobs {
		if j.Knobs.ReliaTrials != 3 {
			t.Fatalf("job lost its trial count: %+v", j)
		}
		if j.Knobs.FaultInterval == 0 {
			t.Fatalf("job lost its rate: %+v", j)
		}
		variants[j.Variant] = true
	}
	if len(variants) != modes*2 {
		t.Fatalf("%d distinct variants, want %d (mode x rate)", len(variants), modes*2)
	}
	// Different rates must produce different fingerprints (cache cells).
	a := jobs[0]
	b := a
	b.Knobs.FaultInterval *= 2
	if a.Fingerprint(microScale()) == b.Fingerprint(microScale()) {
		t.Fatal("fault rate not part of the job fingerprint")
	}
	// The registered campaign resolves and expands.
	spec, err := Named("relia", []string{"apache"}, []uint64{11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Expand(); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogAxes(t *testing.T) {
	cat := Catalog()
	if len(cat) != len(Names()) {
		t.Fatalf("catalog has %d entries, want %d", len(cat), len(Names()))
	}
	byName := map[string]Axes{}
	for _, ax := range cat {
		byName[ax.Name] = ax
	}
	relia, ok := byName["relia"]
	if !ok || !relia.Reliability {
		t.Fatalf("relia axes missing or not flagged: %+v", relia)
	}
	if len(relia.Kinds) == 0 || len(relia.Workloads) == 0 || len(relia.Variants) == 0 || relia.Jobs == 0 {
		t.Fatalf("relia axes incomplete: %+v", relia)
	}
	fig5 := byName["figure5"]
	if len(fig5.Kinds) != 3 || fig5.Reliability {
		t.Fatalf("figure5 axes wrong: %+v", fig5)
	}
}

func TestCountingCache(t *testing.T) {
	cc := NewCountingCache(NewMemCache())
	if _, ok := cc.Get("a"); ok {
		t.Fatal("phantom hit")
	}
	if err := cc.Put("a", core.Metrics{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := cc.Get("a"); !ok {
		t.Fatal("miss after put")
	}
	hits, misses, puts := cc.Stats()
	if hits != 1 || misses != 1 || puts != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", hits, misses, puts)
	}
}

func TestPolicyAxisExpand(t *testing.T) {
	spec := Spec{
		Name:      "t",
		Kinds:     []core.Kind{core.KindMMMIPC},
		Workloads: []string{"apache"},
		Seeds:     []uint64{11},
		Policies:  []string{"static", "duty-cycle:60000:25", "fault-escalation"},
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// "static" normalizes to the "" default cell and the parameterized
	// duty-cycle spec canonicalizes to its default name.
	want := []string{"", "duty-cycle", "fault-escalation"}
	if len(jobs) != len(want) {
		t.Fatalf("expanded %d jobs, want %d: %+v", len(jobs), len(want), jobs)
	}
	for i, j := range jobs {
		if j.Knobs.Policy != want[i] {
			t.Errorf("job %d policy %q, want %q", i, j.Knobs.Policy, want[i])
		}
	}
	// The policy is its own key segment and fingerprint input.
	if jobs[0].Key() != "apache/MMM-IPC" {
		t.Errorf("default cell key = %q", jobs[0].Key())
	}
	if jobs[1].Key() != "apache/MMM-IPC/pol=duty-cycle" {
		t.Errorf("policy cell key = %q", jobs[1].Key())
	}
	if jobs[0].Fingerprint(microScale()) == jobs[1].Fingerprint(microScale()) {
		t.Error("policy not part of the fingerprint")
	}
	if jobs[0].SimSeed() == jobs[1].SimSeed() {
		t.Error("policy cells share a random stream")
	}

	// Unknown policies are rejected at expansion.
	bad := spec
	bad.Policies = []string{"warp-drive"}
	if _, err := bad.Expand(); err == nil {
		t.Fatal("unknown policy expanded")
	}

	// The axis multiplies explicit job lists too.
	explicit := Spec{
		Name:     "t2",
		Jobs:     []Job{{Workload: "apache", Kind: core.KindReunion, Seed: 11}},
		Policies: []string{"", "utilization"},
	}
	jobs, err = explicit.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[1].Knobs.Policy != "utilization" {
		t.Fatalf("explicit-jobs axis: %+v", jobs)
	}
}

func TestPolicyCampaignRegistered(t *testing.T) {
	spec, err := Named("policy", []string{"apache"}, []uint64{11})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2 variants x (static + every dynamic policy) x 1 workload x 1 seed.
	if want := 2 * 4; len(jobs) != want {
		t.Fatalf("policy campaign expands to %d jobs, want %d", len(jobs), want)
	}
	// The relia campaign carries the adaptive modes' policies.
	spec, err = Named("relia", []string{"apache"}, []uint64{11})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err = spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	adaptive := 0
	for _, j := range jobs {
		if j.Knobs.Policy != "" {
			adaptive++
		}
	}
	if adaptive == 0 {
		t.Fatal("relia campaign has no adaptive-policy cells")
	}
}

func TestPolicyAxisPreservesPresetPolicies(t *testing.T) {
	// An operator-supplied policy axis must never rewrite cells whose
	// policy is part of their identity: relia's adaptive modes would
	// otherwise emit rows labeled fault-escalation/duty-cycle while
	// simulating something else.
	spec, err := Named("relia", []string{"apache"}, []uint64{11})
	if err != nil {
		t.Fatal(err)
	}
	spec.Policies = []string{"static"}
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]string{}
	for _, j := range jobs {
		byVariant[j.Variant] = j.Knobs.Policy
	}
	for variant, pol := range byVariant {
		switch {
		case strings.HasPrefix(variant, "adaptive-"):
			if pol != "fault-escalation" {
				t.Errorf("adaptive cell %q rewritten to policy %q", variant, pol)
			}
		case strings.HasPrefix(variant, "duty-"):
			if pol != "duty-cycle" {
				t.Errorf("duty cell %q rewritten to policy %q", variant, pol)
			}
		default:
			if pol != "" {
				t.Errorf("static-mode cell %q gained policy %q", variant, pol)
			}
		}
	}
}

func TestPolicyCampaignBaselineSharesFigure6Cells(t *testing.T) {
	// The policy campaign's fault-free static cells must be figure6's
	// MMM-IPC cells — same fingerprint, same cache entry — so the
	// design study never re-simulates the baseline it normalizes to.
	polSpec, err := Named("policy", []string{"apache"}, []uint64{11})
	if err != nil {
		t.Fatal(err)
	}
	polJobs, err := polSpec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	figSpec, err := Named("figure6", []string{"apache"}, []uint64{11})
	if err != nil {
		t.Fatal(err)
	}
	figJobs, err := figSpec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	figFPs := map[string]bool{}
	for _, j := range figJobs {
		figFPs[j.Fingerprint(microScale())] = true
	}
	shared := 0
	for _, j := range polJobs {
		if figFPs[j.Fingerprint(microScale())] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("policy campaign's static baseline shares no cells with figure6")
	}
}
