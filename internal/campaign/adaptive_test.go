package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// adaptiveSpec is a tiny sequential-stopping campaign: three
// fault-injection cells whose coverage proportions sit at roughly 1
// (DMR), 0 (unprotected) and in between (mixed mode), so the stopping
// rule exercises early retirement and the MaxTrials cap in one run.
// Waves of two trials keep every test fast.
func adaptiveSpec() Spec {
	p := Precision{Metric: "coverage", HalfWidth: 0.2, WaveTrials: 2, MinTrials: 2, MaxTrials: 8}
	return Spec{
		Name: "adaptive-test",
		Jobs: []Job{
			{Workload: "apache", Kind: core.KindReunion, Seed: 11, Variant: "dmr-r5000",
				Knobs: Knobs{FaultInterval: 5000}},
			{Workload: "apache", Kind: core.KindNoDMR2X, Seed: 11, Variant: "perf-r5000",
				Knobs: Knobs{FaultInterval: 5000, ForcePAB: true}},
			{Workload: "apache", Kind: core.KindMMMIPC, Seed: 11, Variant: "mixed-r5000",
				Knobs: Knobs{FaultInterval: 5000}},
		},
		Precision: &p,
	}
}

// runSpecRows executes a spec on a runner through RunSpec and renders
// the canonical row bytes.
func runSpecRows(t *testing.T, r Runner, spec Spec) ([]byte, *ResultSet) {
	t.Helper()
	rs, err := RunSpec(context.Background(), r, microScale(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stats.WriteRowsJSON(&buf, Summarize(rs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rs
}

func TestPlannerValidation(t *testing.T) {
	sc := microScale()
	spec := adaptiveSpec()

	fixed := spec
	fixed.Precision = nil
	if _, err := newPlanner(sc, fixed); err == nil {
		t.Fatal("planner accepted a spec without a precision block")
	}

	noFaults := spec
	noFaults.Jobs = []Job{{Workload: "apache", Kind: core.KindNoDMR, Seed: 11}}
	if _, err := newPlanner(sc, noFaults); err == nil ||
		!strings.Contains(err.Error(), "fault") {
		t.Fatalf("fault-free cell accepted: %v", err)
	}

	// Two cells that differ only in the trial knobs collapse onto one
	// template — ambiguous, so rejected at plan time.
	dup := spec
	a := spec.Jobs[0]
	b := a
	b.Knobs.ReliaTrials = 99
	dup.Jobs = []Job{a, b}
	if _, err := newPlanner(sc, dup); err == nil ||
		!strings.Contains(err.Error(), "collide") {
		t.Fatalf("trial-knob-only cells accepted: %v", err)
	}

	bad := spec
	badPrec := *spec.Precision
	badPrec.HalfWidth = 0.5
	bad.Precision = &badPrec
	if _, err := newPlanner(sc, bad); err == nil ||
		!strings.Contains(err.Error(), "half_width") {
		t.Fatalf("out-of-bounds half-width accepted: %v", err)
	}
}

// TestAdaptiveDeterminism: the sequential-stopping engine is
// schedule-independent — any parallelism retires every cell at the same
// trial count with byte-identical aggregates, because stopping
// decisions observe only the cell's own waves.
func TestAdaptiveDeterminism(t *testing.T) {
	spec := adaptiveSpec()
	seq, rsSeq := runSpecRows(t, New(Options{Parallel: 1}), spec)
	par, rsPar := runSpecRows(t, New(Options{Parallel: runtime.NumCPU()}), spec)
	if !bytes.Equal(seq, par) {
		t.Fatalf("adaptive runs diverge across parallelism:\nseq: %s\npar: %s", seq, par)
	}
	if len(rsSeq.Results) != len(spec.Jobs) {
		t.Fatalf("got %d results, want one per cell (%d)", len(rsSeq.Results), len(spec.Jobs))
	}
	for i := range rsSeq.Results {
		a, b := rsSeq.Results[i], rsPar.Results[i]
		if a.Job != b.Job {
			t.Fatalf("cell %d realized different trial counts: %+v vs %+v", i, a.Job, b.Job)
		}
	}
}

// TestAdaptiveTrialBounds: every cell retires inside [MinTrials,
// MaxTrials], the merged batch carries exactly the trials the planner
// scheduled, and at least one cell of the extreme-proportion spec stops
// short of the cap — the savings the stopping rule exists for.
func TestAdaptiveTrialBounds(t *testing.T) {
	spec := adaptiveSpec()
	prec := spec.Precision.Normalized()
	_, rs := runSpecRows(t, New(Options{Parallel: 2}), spec)

	early := false
	for _, r := range rs.Results {
		trials := r.Job.Knobs.ReliaTrials
		if trials < prec.MinTrials || trials > prec.MaxTrials {
			t.Fatalf("cell %s realized %d trials, want within [%d, %d]",
				r.Job.Key(), trials, prec.MinTrials, prec.MaxTrials)
		}
		if r.Metrics.Relia == nil || r.Metrics.Relia.Trials != trials {
			t.Fatalf("cell %s merged batch disagrees with the schedule: batch %v, scheduled %d",
				r.Job.Key(), r.Metrics.Relia, trials)
		}
		if trials < prec.MaxTrials {
			early = true
		}
	}
	if !early {
		t.Fatal("no cell retired before MaxTrials; the stopping rule never fired")
	}
}

// TestAdaptiveWarmResume: a warm rerun serves every wave from the
// cache — retired cells re-schedule nothing — and a cache populated to
// a lower trial cap serves exactly the shared wave prefix of a deeper
// rerun, so resumes redo only unfinished waves.
func TestAdaptiveWarmResume(t *testing.T) {
	spec := adaptiveSpec()
	counting := NewCountingCache(NewMemCache())

	cold, rsCold := runSpecRows(t, New(Options{Parallel: 2, Cache: counting}), spec)
	_, _, putsCold := counting.Stats()
	coldWaves := rsCold.Misses
	if putsCold != uint64(coldWaves) {
		t.Fatalf("cold run stored %d waves, scheduled %d", putsCold, coldWaves)
	}

	warm, rsWarm := runSpecRows(t, New(Options{Parallel: 2, Cache: counting}), spec)
	if rsWarm.Misses != 0 || rsWarm.Hits != coldWaves {
		t.Fatalf("warm resume simulated %d waves (hits %d), want 0 (%d)",
			rsWarm.Misses, rsWarm.Hits, coldWaves)
	}
	for _, r := range rsWarm.Results {
		if !r.CacheHit {
			t.Fatalf("retired cell %s not marked cache-hit on warm resume", r.Job.Key())
		}
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm resume not byte-identical to cold run")
	}
	if _, _, puts := counting.Stats(); puts != putsCold {
		t.Fatalf("warm resume stored %d new waves, want none", puts-putsCold)
	}

	// Partial warmth: a run capped at 4 trials leaves the first two
	// 2-trial waves of every cell in the cache. Deepening the cap to 8
	// (with a target no cell can meet) must hit exactly that prefix and
	// simulate only the waves beyond it.
	shallow := adaptiveSpec()
	p1 := *shallow.Precision
	p1.HalfWidth = 0.001 // unreachable at these trial caps: every cell caps out
	p1.MaxTrials = 4
	shallow.Precision = &p1
	part := NewCountingCache(NewMemCache())
	_, rsShallow := runSpecRows(t, New(Options{Parallel: 2, Cache: part}), shallow)
	if rsShallow.Misses != 2*len(shallow.Jobs) {
		t.Fatalf("shallow run scheduled %d waves, want %d", rsShallow.Misses, 2*len(shallow.Jobs))
	}

	deep := adaptiveSpec()
	p2 := p1
	p2.MaxTrials = 8
	deep.Precision = &p2
	_, rsDeep := runSpecRows(t, New(Options{Parallel: 2, Cache: part}), deep)
	if want := 2 * len(deep.Jobs); rsDeep.Hits != want {
		t.Fatalf("deep resume hit %d waves, want the %d-wave shared prefix", rsDeep.Hits, want)
	}
	if want := 2 * len(deep.Jobs); rsDeep.Misses != want {
		t.Fatalf("deep resume simulated %d waves, want only the %d new ones", rsDeep.Misses, want)
	}
}

// TestAdaptiveMatchesFixedTrials: scheduling a cell's trials in waves
// is an implementation detail — a cell capped at N trials merges to
// the same outcome counts as a fixed-batch job running the same N
// trials in one go (log digests aside, which are per-batch).
func TestAdaptiveMatchesFixedTrials(t *testing.T) {
	spec := adaptiveSpec()
	p := *spec.Precision
	p.HalfWidth = 0.001 // force every cell to its cap
	p.MaxTrials = 6
	spec.Precision = &p
	_, rs := runSpecRows(t, New(Options{Parallel: 2}), spec)

	fixed := make([]Job, len(spec.Jobs))
	for i, j := range spec.Jobs {
		j.Knobs.ReliaTrials = 6
		fixed[i] = j
	}
	rsFixed, err := New(Options{Parallel: 2}).Run(context.Background(), microScale(), fixed)
	if err != nil {
		t.Fatal(err)
	}

	for i := range rs.Results {
		a, b := rs.Results[i].Metrics.Relia, rsFixed.Results[i].Metrics.Relia
		if a == nil || b == nil {
			t.Fatalf("cell %d missing a batch", i)
		}
		aa, bb := *a, *b
		aa.LogDigest, bb.LogDigest = "", ""
		ab, _ := json.Marshal(aa)
		fb, _ := json.Marshal(bb)
		if !bytes.Equal(ab, fb) {
			t.Fatalf("cell %d wave-merged aggregate diverges from one fixed batch:\nwaves: %s\nfixed: %s",
				i, ab, fb)
		}
	}
}

// TestAdaptiveDistributedMatchesLocal: an adaptive campaign sharded
// across two workers retires every cell at the same trial counts with
// byte-identical rows to the local engine — wave-shaped determinism
// survives the lease board.
func TestAdaptiveDistributedMatchesLocal(t *testing.T) {
	spec := adaptiveSpec()
	local, rsLocal := runSpecRows(t, New(Options{Parallel: 2}), spec)

	_, ts1 := startWorker(t, "w1", 2, nil)
	_, ts2 := startWorker(t, "w2", 2, nil)
	remote, rs := runSpecRows(t, dispatcherFor(nil, 2*time.Second, ts1.URL, ts2.URL), spec)

	if !bytes.Equal(local, remote) {
		t.Fatalf("distributed adaptive run diverges from local:\nlocal: %s\nremote: %s", local, remote)
	}
	for i := range rs.Results {
		if rs.Results[i].Job != rsLocal.Results[i].Job {
			t.Fatalf("cell %d trial counts diverge: local %+v, remote %+v",
				i, rsLocal.Results[i].Job, rs.Results[i].Job)
		}
	}
	if rs.Hits != 0 {
		t.Fatalf("cold distributed run reported %d cache hits", rs.Hits)
	}
}

// TestAdaptiveWorkerKilledMidWave: killing a worker mid-campaign
// reassigns its expired wave leases without double-counting any trials
// — the completed-wave dedup means each wave feeds the stopping rule
// exactly once, so the outcome is byte-identical to a local run and
// the cache holds exactly one entry per scheduled wave.
func TestAdaptiveWorkerKilledMidWave(t *testing.T) {
	spec := adaptiveSpec()
	local, _ := runSpecRows(t, New(Options{Parallel: 2}), spec)

	victim, ts1 := startWorker(t, "victim", 2, nil)
	_, ts2 := startWorker(t, "survivor", 2, nil)
	counting := NewCountingCache(NewMemCache())

	d := NewDispatcher(DispatchOptions{
		Workers:  []string{ts1.URL, ts2.URL},
		Cache:    counting,
		LeaseTTL: 400 * time.Millisecond,
	})
	type outcome struct {
		rows []byte
		rs   *ResultSet
		err  error
	}
	res := make(chan outcome, 1)
	go func() {
		rs, err := RunSpec(context.Background(), d, microScale(), spec)
		if err != nil {
			res <- outcome{nil, nil, err}
			return
		}
		var buf bytes.Buffer
		err = stats.WriteRowsJSON(&buf, Summarize(rs))
		res <- outcome{buf.Bytes(), rs, err}
	}()

	time.Sleep(100 * time.Millisecond)
	victim.Stop()

	select {
	case out := <-res:
		if out.err != nil {
			t.Fatal(out.err)
		}
		if !bytes.Equal(local, out.rows) {
			t.Fatalf("adaptive campaign after worker death diverges:\nlocal: %s\nremote: %s",
				local, out.rows)
		}
		if _, _, puts := counting.Stats(); puts != uint64(out.rs.Misses) {
			t.Fatalf("stored %d wave results for %d simulated waves: a revoked lease was double-counted",
				puts, out.rs.Misses)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("adaptive campaign did not recover from worker death")
	}
}

// TestAdaptiveJournalAndAttribution: an adaptive run's journal
// validates, replays to the live result set, and attributes the
// trials-saved-vs-fixed win.
func TestAdaptiveJournalAndAttribution(t *testing.T) {
	spec := adaptiveSpec()
	prec := spec.Precision.Normalized()
	jnl, err := NewJournal("adpt1", "")
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Parallel: 2, Journal: jnl})
	rows, rs := runSpecRows(t, eng, spec)
	jnl.Finish(nil)

	events := jnl.Events()
	chk, err := ValidateEvents(events)
	if err != nil {
		t.Fatalf("adaptive journal invalid: %v", err)
	}
	if !chk.Complete || chk.Outcome != "done" {
		t.Fatalf("journal check: %+v", chk)
	}
	types := journalTypes(events)
	cells := len(spec.Jobs)
	if types[EventCellRetired] != cells {
		t.Fatalf("%d cell_retired events, want %d", types[EventCellRetired], cells)
	}
	if types[EventWaveScheduled] < cells {
		t.Fatalf("%d wave_scheduled events, want at least one per cell", types[EventWaveScheduled])
	}
	if types[EventMerged] != cells {
		t.Fatalf("%d merged events, want %d", types[EventMerged], cells)
	}

	// Every retirement either met the target or declared the cap.
	scheduled := 0
	for i := range events {
		switch events[i].Type {
		case EventWaveScheduled:
			scheduled += events[i].Trials
		case EventCellRetired:
			if !events[i].Capped && events[i].HalfWidth > prec.HalfWidth {
				t.Fatalf("cell %s retired at half-width %.3f above target %.3f without capping",
					events[i].Key, events[i].HalfWidth, prec.HalfWidth)
			}
		}
	}

	replayed, err := ReplayResults(events)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stats.WriteRowsJSON(&buf, Summarize(replayed)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rows, buf.Bytes()) {
		t.Fatalf("journal replay diverges from live run:\nlive: %s\nreplay: %s", rows, buf.Bytes())
	}

	rep := Attribute("adpt1", events)
	if !rep.Adaptive {
		t.Fatal("report not marked adaptive")
	}
	if rep.TrialsScheduled != scheduled {
		t.Fatalf("report scheduled %d trials, journal says %d", rep.TrialsScheduled, scheduled)
	}
	if rep.TrialsFixed != cells*prec.MaxTrials {
		t.Fatalf("fixed-equivalent %d trials, want cells x MaxTrials = %d",
			rep.TrialsFixed, cells*prec.MaxTrials)
	}
	if rep.CellsRetired != cells {
		t.Fatalf("report retired %d cells, want %d", rep.CellsRetired, cells)
	}
	if rep.TrialsSavedPct <= 0 {
		t.Fatalf("adaptive run saved %.1f%% trials, want a positive saving on this spec",
			rep.TrialsSavedPct)
	}
	total := 0
	for _, r := range rs.Results {
		total += r.Job.Knobs.ReliaTrials
	}
	if total != scheduled {
		t.Fatalf("realized %d trials, journal scheduled %d", total, scheduled)
	}
}

// TestAdaptiveCancel: cancelling an adaptive run mid-flight returns
// promptly with the context error instead of wedging in the wave queue.
func TestAdaptiveCancel(t *testing.T) {
	spec := adaptiveSpec()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once bool
	eng := New(Options{Parallel: 1, OnProgress: func(done, total, hits int) {
		if !once {
			once = true
			close(started)
		}
	}})
	// Progress fires on cell retirement; cancel right after the first.
	errCh := make(chan error, 1)
	go func() {
		_, err := eng.RunSpec(ctx, microScale(), spec)
		errCh <- err
	}()
	select {
	case <-started:
	case <-time.After(2 * time.Minute):
		t.Fatal("adaptive run never made progress")
	}
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("cancelled adaptive run returned nil")
		}
	case <-time.After(time.Minute):
		t.Fatal("cancelled adaptive run did not return")
	}
}
