package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Cache stores completed job results keyed by content fingerprint
// (Job.Fingerprint). Implementations must be safe for concurrent use.
type Cache interface {
	// Get returns the cached metrics for key, if present.
	Get(key string) (core.Metrics, bool)
	// Put stores the metrics for key.
	Put(key string, m core.Metrics) error
}

// MemCache is an in-process Cache, useful for sharing simulation work
// inside one process (tests, the mmmd service's hot set).
type MemCache struct {
	mu sync.RWMutex
	m  map[string]core.Metrics
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache { return &MemCache{m: make(map[string]core.Metrics)} }

// Get implements Cache.
func (c *MemCache) Get(key string) (core.Metrics, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.m[key]
	return m, ok
}

// Put implements Cache.
func (c *MemCache) Put(key string, m core.Metrics) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = m
	return nil
}

// Len reports the number of cached results.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// CountingCache wraps a Cache with hit/miss/store counters, so
// services can report cache effectiveness without instrumenting every
// call site. Safe for concurrent use when the wrapped cache is.
type CountingCache struct {
	inner              Cache
	hits, misses, puts atomic.Uint64
}

// NewCountingCache wraps inner.
func NewCountingCache(inner Cache) *CountingCache {
	return &CountingCache{inner: inner}
}

// Get implements Cache.
func (c *CountingCache) Get(key string) (core.Metrics, bool) {
	m, ok := c.inner.Get(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return m, ok
}

// Put implements Cache.
func (c *CountingCache) Put(key string, m core.Metrics) error {
	c.puts.Add(1)
	return c.inner.Put(key, m)
}

// Stats reports the lifetime hit/miss/store counts.
func (c *CountingCache) Stats() (hits, misses, puts uint64) {
	return c.hits.Load(), c.misses.Load(), c.puts.Load()
}

// DiskCache is a content-addressed on-disk Cache: each result lives at
// <dir>/<fp[:2]>/<fp>.json. Interrupted campaigns resume for free — on
// the next run every already-completed job is a cache hit — and
// overlapping campaigns share each other's work. Writes go through a
// temp file plus rename so concurrent writers and readers never see a
// torn entry.
type DiskCache struct {
	dir string
}

// NewDiskCache opens (creating if needed) a disk cache rooted at dir.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: cache dir: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *DiskCache) Dir() string { return c.dir }

func (c *DiskCache) path(key string) string {
	if len(key) < 2 {
		key = "__" + key
	}
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get implements Cache.
func (c *DiskCache) Get(key string) (core.Metrics, bool) {
	var m core.Metrics
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return m, false
	}
	if err := json.Unmarshal(data, &m); err != nil {
		// A corrupt entry is treated as a miss; the rerun overwrites it.
		return core.Metrics{}, false
	}
	return m, true
}

// Put implements Cache.
func (c *DiskCache) Put(key string, m core.Metrics) error {
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}
