package campaign

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// FleetObs instruments the distributed campaign protocol — lease
// grants, expiries and reassignments, job completions and latencies,
// worker heartbeat ages — into an obs.Registry. A nil *FleetObs
// records nothing, so the board and dispatcher call it unconditionally.
type FleetObs struct {
	leaseGrants   *obs.Counter
	leaseExpiries *obs.Counter
	leaseReassign *obs.Counter
	jobsCompleted *obs.Counter
	jobsFailed    *obs.Counter
	jobSeconds    *obs.Histogram

	mu       sync.Mutex
	lastSeen map[string]time.Time
}

// NewFleetObs registers the fleet metric family on r and returns the
// instrument set.
func NewFleetObs(r *obs.Registry) *FleetObs {
	f := &FleetObs{
		leaseGrants: r.Counter("mmm_fleet_lease_grants_total",
			"Job leases granted to workers."),
		leaseExpiries: r.Counter("mmm_fleet_lease_expiries_total",
			"Leases lost to missed heartbeats and reaped."),
		leaseReassign: r.Counter("mmm_fleet_lease_reassignments_total",
			"Lease grants that retried a previously attempted job."),
		jobsCompleted: r.Counter("mmm_fleet_jobs_completed_total",
			"Jobs completed by the fleet."),
		jobsFailed: r.Counter("mmm_fleet_jobs_failed_total",
			"Job completions that reported an error."),
		jobSeconds: r.Histogram("mmm_fleet_job_seconds",
			"Wall time from lease grant to completion.", nil),
		lastSeen: make(map[string]time.Time),
	}
	r.RegisterCollector(func(emit func(obs.Sample)) {
		f.mu.Lock()
		defer f.mu.Unlock()
		for w, t := range f.lastSeen {
			emit(obs.Sample{
				Name:   "mmm_fleet_worker_age_seconds",
				Help:   "Seconds since each worker was last heard from.",
				Type:   "gauge",
				Labels: []string{"worker", w},
				Value:  time.Since(t).Seconds(),
			})
		}
	})
	return f
}

// seen refreshes a worker's liveness timestamp.
func (f *FleetObs) seen(worker string) {
	f.mu.Lock()
	f.lastSeen[worker] = time.Now()
	f.mu.Unlock()
}

// LeaseGranted records a lease handed to a worker; reassigned marks a
// job that had been attempted before (its previous lease expired or
// failed).
func (f *FleetObs) LeaseGranted(worker string, reassigned bool) {
	if f == nil {
		return
	}
	f.leaseGrants.Inc()
	if reassigned {
		f.leaseReassign.Inc()
	}
	f.seen(worker)
}

// Heartbeat records a worker extending a lease.
func (f *FleetObs) Heartbeat(worker string) {
	if f == nil {
		return
	}
	f.seen(worker)
}

// JobCompleted records one completion and its lease-to-completion wall
// time.
func (f *FleetObs) JobCompleted(worker string, d time.Duration, failed bool) {
	if f == nil {
		return
	}
	f.jobsCompleted.Inc()
	if failed {
		f.jobsFailed.Inc()
	}
	f.jobSeconds.Observe(d.Seconds())
	f.seen(worker)
}

// LeaseExpired records a lease reaped after missed heartbeats.
func (f *FleetObs) LeaseExpired(worker string) {
	if f == nil {
		return
	}
	f.leaseExpiries.Inc()
}
