package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
)

// isCanceled reports whether err is (or wraps) a context cancellation
// — the run-level terminal event is then EventCanceled, not
// EventFailed, mirroring run.finish in mmmd.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled)
}

// The campaign run journal: a typed, ordered event stream per run.
// Every lifecycle step of every cell — expansion, cache hit, lease,
// start, missed heartbeat, reassignment, completion, merge — is
// stamped with a sequence number and wall-clock time and fanned out to
// (a) an append-only JSONL file beside the result cache, so a crashed
// coordinator leaves a replayable post-mortem, and (b) in-memory
// subscribers feeding the mmmd SSE endpoint, which streams
// history-then-live with Last-Event-ID resume.
//
// The journal is strictly observational: it runs at job granularity
// (seconds), never inside Chip.Run, and nothing in it feeds back into
// job identity, fingerprints or result rows. Replaying a journal's
// merged events reconstructs the run's final result set byte-for-byte
// — ReplayResults is the crash post-mortem path and the
// exactly-once-merge regression oracle.

// EventType classifies one journal event; Event is one record. Both
// live in internal/api (the SSE endpoint streams them verbatim and
// mmmtail decodes them); the vocabulary is stable — JSONL journals
// are read across builds.
type (
	EventType = api.EventType
	Event     = api.Event
)

const (
	EventExpanded        = api.EventExpanded
	EventCacheHit        = api.EventCacheHit
	EventLeased          = api.EventLeased
	EventStarted         = api.EventStarted
	EventHeartbeatMissed = api.EventHeartbeatMissed
	EventReassigned      = api.EventReassigned
	EventCompleted       = api.EventCompleted
	EventFailed          = api.EventFailed
	EventMerged          = api.EventMerged
	EventCanceled        = api.EventCanceled
	EventWaveScheduled   = api.EventWaveScheduled
	EventCellRetired     = api.EventCellRetired
)

// stagedCell is a completed-but-not-yet-merged cell result awaiting
// its turn in the expansion-order prefix.
type stagedCell struct {
	job    Job
	m      core.Metrics
	hit    bool
	worker string
	wall   time.Duration
}

// Journal is one run's event bus. Emitters (engine, dispatcher,
// board) call the typed methods; consumers read EventsSince, which
// the SSE endpoint turns into history-then-live streaming. A nil
// *Journal records nothing, so every call site is unconditional.
//
// Merge ordering is owned here: CellDone stages out-of-order
// completions and emits EventMerged for the contiguous expansion-order
// prefix only, so subscribers observe the deterministic row sequence
// regardless of pool scheduling or fleet racing.
type Journal struct {
	runID string
	path  string

	mu       sync.Mutex
	f        *os.File
	writeErr error
	events   []Event
	seq      int64
	wake     chan struct{}
	closed   bool

	total  int
	scale  Scale
	next   int // next cell index to merge
	staged map[int]*stagedCell

	// Adaptive runs: cell indices are cell-template lookups, not the
	// board's job indices (the board numbers waves, the journal numbers
	// cells), and the merged prefix is fed by CellMerged instead of
	// CellDone — one merged event per retired cell.
	adaptive bool
	cells    map[Job]int
}

// NewJournal opens a journal for runID. When path is non-empty the
// events are also appended to a JSONL file there (truncating any
// previous file of the same run id); an empty path keeps the journal
// in memory only.
func NewJournal(runID, path string) (*Journal, error) {
	j := &Journal{
		runID:  runID,
		path:   path,
		wake:   make(chan struct{}),
		staged: make(map[int]*stagedCell),
	}
	if path != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, fmt.Errorf("campaign: journal dir: %w", err)
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("campaign: journal: %w", err)
		}
		j.f = f
	}
	return j, nil
}

// Path returns the journal's JSONL file path ("" when memory-only).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// emitLocked appends one event: stamps seq and time, persists the
// JSONL line, and wakes every waiting subscriber. Callers hold j.mu.
// File errors are sticky — journaling degrades to memory-only rather
// than failing the campaign (the journal is observational).
func (j *Journal) emitLocked(ev Event) {
	j.seq++
	ev.Seq = j.seq
	ev.Time = time.Now().UTC()
	j.events = append(j.events, ev)
	if j.f != nil && j.writeErr == nil {
		line, err := json.Marshal(&ev)
		if err == nil {
			_, err = j.f.Write(append(line, '\n'))
		}
		if err != nil {
			j.writeErr = err
		}
	}
	close(j.wake)
	j.wake = make(chan struct{})
}

// Begin records the run's expansion: the first event, carrying the
// cell count and scale.
func (j *Journal) Begin(sc Scale, jobs []Job) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.total = len(jobs)
	j.scale = sc
	scale := sc
	j.emitLocked(Event{Type: EventExpanded, Run: j.runID, Cell: -1,
		Total: len(jobs), Scale: &scale})
}

// BeginAdaptive records an adaptive run's expansion: Total counts
// cells (not waves — wave counts are not known up front, that is the
// point), the normalized precision block rides on the expanded event,
// and subsequent cell-scoped events are re-indexed from whatever job
// index the emitter used (the board numbers waves) to the cell's
// expansion index via its wave-invariant template.
func (j *Journal) BeginAdaptive(sc Scale, cells []Job, prec Precision) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.total = len(cells)
	j.scale = sc
	j.adaptive = true
	j.cells = make(map[Job]int, len(cells))
	for i, c := range cells {
		j.cells[cellTemplate(c)] = i
	}
	scale := sc
	p := prec
	j.emitLocked(Event{Type: EventExpanded, Run: j.runID, Cell: -1,
		Total: len(cells), Scale: &scale, Precision: &p})
}

// cellOfLocked maps an emitter's job index to the journal's cell
// index: the identity for fixed-batch runs, the cell-template lookup
// for adaptive runs (where the board hands out wave jobs whose board
// indices mean nothing cell-wise).
func (j *Journal) cellOfLocked(idx int, job Job) int {
	if !j.adaptive {
		return idx
	}
	if c, ok := j.cells[cellTemplate(job)]; ok {
		return c
	}
	return idx
}

// Leased records a lease grant; an Attempt above 1 additionally emits
// EventReassigned — the board is retrying a cell whose earlier attempt
// failed or expired.
func (j *Journal) Leased(idx int, job Job, worker string, attempt int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	idx = j.cellOfLocked(idx, job)
	if attempt > 1 {
		j.emitLocked(Event{Type: EventReassigned, Cell: idx, Key: job.Key(),
			Worker: worker, Attempt: attempt, Wave: job.Knobs.Wave})
	}
	j.emitLocked(Event{Type: EventLeased, Cell: idx, Key: job.Key(),
		Worker: worker, Attempt: attempt, Wave: job.Knobs.Wave})
}

// Started records a cell beginning simulation.
func (j *Journal) Started(idx int, job Job, worker string, attempt int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.emitLocked(Event{Type: EventStarted, Cell: j.cellOfLocked(idx, job), Key: job.Key(),
		Worker: worker, Attempt: attempt, Wave: job.Knobs.Wave})
}

// HeartbeatMissed records a lease reaped after missed heartbeats.
func (j *Journal) HeartbeatMissed(idx int, job Job, worker string, attempt int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.emitLocked(Event{Type: EventHeartbeatMissed, Cell: j.cellOfLocked(idx, job), Key: job.Key(),
		Worker: worker, Attempt: attempt, Wave: job.Knobs.Wave})
}

// CellFailed records one failed attempt (the cell may be retried; a
// terminal run failure is Finish's run-level EventFailed).
func (j *Journal) CellFailed(idx int, job Job, worker string, attempt int, errMsg string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.emitLocked(Event{Type: EventFailed, Cell: j.cellOfLocked(idx, job), Key: job.Key(),
		Worker: worker, Attempt: attempt, Error: errMsg, Wave: job.Knobs.Wave})
}

// WaveScheduled records the sequential-stopping planner putting one
// wave of an adaptive cell on the schedule; half is the cell's Wilson
// half-width going into the wave (1 before any trials ran — no data,
// widest possible interval).
func (j *Journal) WaveScheduled(job Job, half float64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.emitLocked(Event{Type: EventWaveScheduled, Cell: j.cellOfLocked(-1, job), Key: job.Key(),
		Wave: job.Knobs.Wave, Trials: job.Knobs.ReliaTrials, HalfWidth: half})
}

// CellRetired records an adaptive cell leaving the schedule after
// trials total trials with final half-width half; capped marks a cell
// that hit MaxTrials instead of its target.
func (j *Journal) CellRetired(job Job, trials int, half float64, capped bool) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.emitLocked(Event{Type: EventCellRetired, Cell: j.cellOfLocked(-1, job), Key: job.Key(),
		Trials: trials, HalfWidth: half, Capped: capped})
}

// CellMerged feeds the merged prefix of an adaptive run: one call per
// retired cell with the cell's template job and wave-merged metrics
// (hit reports whether every wave came from the cache). The same
// exactly-once, expansion-order staging as fixed-batch CellDone.
func (j *Journal) CellMerged(job Job, m core.Metrics, hit bool) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	idx := j.cellOfLocked(-1, job)
	if idx < j.next || idx < 0 || j.staged[idx] != nil {
		return
	}
	j.staged[idx] = &stagedCell{job: job, m: m, hit: hit}
	j.mergeReadyLocked()
}

// CellDone records a cell's result landing (EventCacheHit for cache
// hits, EventCompleted with the attempt's wall time otherwise) and
// advances the merged prefix: every staged cell that is now contiguous
// from the front emits its EventMerged — in expansion order, exactly
// once, carrying the Job, Metrics and fingerprint — so subscribers see
// the deterministic row sequence as it becomes available. Duplicate
// deliveries for an already-staged or already-merged cell are dropped.
func (j *Journal) CellDone(idx int, job Job, m core.Metrics, hit bool, worker string, wall time.Duration, attempt int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	if j.adaptive {
		// Adaptive runs complete many waves per cell: record each one
		// (the board already deduplicates deliveries per wave job), but
		// leave the merged prefix to CellMerged — a cell merges once,
		// when it retires with its wave-merged aggregate.
		cell := j.cellOfLocked(idx, job)
		if hit {
			j.emitLocked(Event{Type: EventCacheHit, Cell: cell, Key: job.Key(), Hit: true,
				Wave: job.Knobs.Wave})
		} else {
			j.emitLocked(Event{Type: EventCompleted, Cell: cell, Key: job.Key(),
				Worker: worker, Attempt: attempt, WallMS: wall.Milliseconds(),
				Wave: job.Knobs.Wave})
		}
		return
	}
	if idx < j.next || j.staged[idx] != nil {
		return
	}
	if hit {
		j.emitLocked(Event{Type: EventCacheHit, Cell: idx, Key: job.Key(), Hit: true})
	} else {
		j.emitLocked(Event{Type: EventCompleted, Cell: idx, Key: job.Key(),
			Worker: worker, Attempt: attempt, WallMS: wall.Milliseconds()})
	}
	j.staged[idx] = &stagedCell{job: job, m: m, hit: hit, worker: worker, wall: wall}
	j.mergeReadyLocked()
}

// mergeReadyLocked emits EventMerged for every staged cell that is
// now contiguous from the front of the expansion order. An adaptive
// cell's merged aggregate never simulated as one job, so it carries
// no fingerprint — no single cache entry corresponds to it.
func (j *Journal) mergeReadyLocked() {
	for {
		st := j.staged[j.next]
		if st == nil {
			return
		}
		delete(j.staged, j.next)
		jb, mt := st.job, st.m
		fp := ""
		if !j.adaptive {
			fp = jb.Fingerprint(j.scale)
		}
		j.emitLocked(Event{Type: EventMerged, Cell: j.next, Key: jb.Key(),
			Worker: st.worker, WallMS: st.wall.Milliseconds(), Hit: st.hit,
			Fp: fp, Job: &jb, Metrics: &mt})
		j.next++
	}
}

// Finish terminates the journal: a non-nil error emits the run-level
// terminal event (EventCanceled for context cancellation, EventFailed
// otherwise), then the file is closed and subscribers observe the end
// of the stream. Idempotent; nil-safe.
func (j *Journal) Finish(err error) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	if err != nil {
		typ := EventFailed
		if isCanceled(err) {
			typ = EventCanceled
		}
		j.emitLocked(Event{Type: typ, Run: j.runID, Cell: -1, Error: err.Error()})
	}
	j.closed = true
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
	close(j.wake)
	j.wake = make(chan struct{})
}

// Err reports the sticky journal-file write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeErr
}

// Events returns a copy of the full event history.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// EventsSince returns every event with Seq > after, a channel that
// closes on the next append (or on Finish), and whether the journal
// has finished. This is the history-then-live subscription primitive:
// the full history is the buffer, so a slow consumer never blocks an
// emitter — it just reads further behind.
func (j *Journal) EventsSince(after int64) (evs []Event, wake <-chan struct{}, closed bool) {
	if j == nil {
		ch := make(chan struct{})
		close(ch)
		return nil, ch, true
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range j.events {
		if j.events[i].Seq > after {
			evs = append(evs, j.events[i:]...)
			break
		}
	}
	return evs, j.wake, j.closed
}

// ReadJournal decodes a JSONL journal stream.
func ReadJournal(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("campaign: journal line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	return events, nil
}

// ReadJournalFile reads a JSONL journal from disk.
func ReadJournalFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}

// ReplayResults reconstructs a run's result set from its journal: the
// merged events, in order, are the cells. A complete journal replays
// to the exact ResultSet the run produced — Summarize over it renders
// the same rows byte-for-byte, which is both the crash post-mortem
// path and the exactly-once regression oracle.
func ReplayResults(events []Event) (*ResultSet, error) {
	rs := &ResultSet{}
	found := false
	for i := range events {
		ev := &events[i]
		switch ev.Type {
		case EventExpanded:
			if found {
				return nil, fmt.Errorf("campaign: journal has two expanded events")
			}
			found = true
			if ev.Scale != nil {
				rs.Scale = *ev.Scale
			}
			rs.Results = make([]Result, 0, ev.Total)
		case EventMerged:
			if !found {
				return nil, fmt.Errorf("campaign: merged event before expanded")
			}
			if ev.Job == nil || ev.Metrics == nil {
				return nil, fmt.Errorf("campaign: merged event %d lacks job or metrics", ev.Seq)
			}
			if ev.Cell != len(rs.Results) {
				return nil, fmt.Errorf("campaign: merged cell %d out of order (want %d)",
					ev.Cell, len(rs.Results))
			}
			rs.Results = append(rs.Results, Result{Job: *ev.Job, Metrics: *ev.Metrics, CacheHit: ev.Hit})
			if ev.Hit {
				rs.Hits++
			} else {
				rs.Misses++
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("campaign: journal has no expanded event")
	}
	return rs, nil
}

// JournalCheck summarizes a validated journal.
type JournalCheck struct {
	Events   int
	Total    int // cells declared by the expanded event
	Merged   int
	Types    map[EventType]int
	Complete bool // every cell merged
	Outcome  string
}

// ValidateEvents checks a journal's structural invariants: sequence
// numbers strictly increasing, the expanded event first, merged events
// in strict expansion order with exactly one per cell and full
// payloads, cell indices in range, and any terminal run-level event
// last. This is the oracle behind obscheck -journal.
func ValidateEvents(events []Event) (JournalCheck, error) {
	chk := JournalCheck{Types: make(map[EventType]int), Outcome: "running"}
	if len(events) == 0 {
		return chk, fmt.Errorf("journal is empty")
	}
	chk.Events = len(events)
	expanded := false
	var lastSeq int64
	terminalAt := -1
	for i := range events {
		ev := &events[i]
		if ev.Seq <= lastSeq {
			return chk, fmt.Errorf("event %d: seq %d not increasing (prev %d)", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if terminalAt >= 0 {
			return chk, fmt.Errorf("event seq %d follows terminal %s event", ev.Seq, events[terminalAt].Type)
		}
		chk.Types[ev.Type]++
		switch ev.Type {
		case EventExpanded:
			if expanded {
				return chk, fmt.Errorf("event seq %d: duplicate expanded", ev.Seq)
			}
			if i != 0 {
				return chk, fmt.Errorf("expanded event at position %d, want first", i)
			}
			expanded = true
			chk.Total = ev.Total
		case EventMerged:
			if ev.Cell != chk.Merged {
				return chk, fmt.Errorf("event seq %d: merged cell %d out of order (want %d)",
					ev.Seq, ev.Cell, chk.Merged)
			}
			if ev.Job == nil || ev.Metrics == nil {
				return chk, fmt.Errorf("event seq %d: merged cell %d lacks job or metrics", ev.Seq, ev.Cell)
			}
			chk.Merged++
		case EventCanceled:
			if ev.Cell == -1 {
				terminalAt = i
				chk.Outcome = "canceled"
			}
		case EventFailed:
			if ev.Cell == -1 {
				terminalAt = i
				chk.Outcome = "failed"
			}
		}
		if !expanded {
			// A run canceled before expansion journals only run-level
			// events; anything cell-scoped before expanded is corrupt.
			if ev.Cell != -1 {
				return chk, fmt.Errorf("event seq %d: cell event before expanded", ev.Seq)
			}
			continue
		}
		if ev.Cell >= chk.Total {
			return chk, fmt.Errorf("event seq %d: cell %d out of range (total %d)", ev.Seq, ev.Cell, chk.Total)
		}
	}
	if expanded && chk.Merged == chk.Total && terminalAt < 0 {
		chk.Complete = true
		chk.Outcome = "done"
	}
	return chk, nil
}
