package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// startWorker runs an in-process fleet worker behind an httptest
// server, exactly as mmmd -worker serves it.
func startWorker(t *testing.T, name string, capacity int, cache Cache) (*Worker, *httptest.Server) {
	t.Helper()
	w := NewWorker(WorkerOptions{
		Name:     name,
		Capacity: capacity,
		Cache:    cache,
		Poll:     5 * time.Millisecond,
	})
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(func() {
		w.Stop()
		ts.Close()
	})
	return w, ts
}

// dispatcherFor builds a fast-turnaround test dispatcher over worker
// URLs.
func dispatcherFor(cache Cache, ttl time.Duration, urls ...string) *Dispatcher {
	return NewDispatcher(DispatchOptions{
		Workers:  urls,
		Cache:    cache,
		LeaseTTL: ttl,
	})
}

// runRows executes jobs on a runner and renders the canonical row
// bytes.
func runRows(t *testing.T, r Runner, jobs []Job) ([]byte, *ResultSet) {
	t.Helper()
	rs, err := r.Run(context.Background(), microScale(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stats.WriteRowsJSON(&buf, Summarize(rs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rs
}

// TestDistributedMatchesLocal is the tentpole guarantee: a campaign
// sharded across two workers produces byte-identical canonical rows
// to the same campaign run on the local pool, with results in
// expansion order either way.
func TestDistributedMatchesLocal(t *testing.T) {
	jobs := determinismJobs(t)
	local, _ := runRows(t, New(Options{Parallel: 2}), jobs)

	_, ts1 := startWorker(t, "w1", 2, nil)
	_, ts2 := startWorker(t, "w2", 2, nil)
	remote, rs := runRows(t, dispatcherFor(nil, 2*time.Second, ts1.URL, ts2.URL), jobs)

	if !bytes.Equal(local, remote) {
		t.Fatalf("sharded campaign diverges from local run:\nlocal: %s\nremote: %s", local, remote)
	}
	if rs.Hits != 0 || rs.Misses != len(jobs) {
		t.Fatalf("cold distributed run: hits=%d misses=%d, want 0/%d", rs.Hits, rs.Misses, len(jobs))
	}
	for i, r := range rs.Results {
		if r.Job != jobs[i] {
			t.Fatalf("result %d out of expansion order: %+v", i, r.Job)
		}
	}
}

// TestDistributedSharesCacheWithLocal: a locally-run campaign's cache
// fully serves a distributed rerun (no worker does any work — the
// dispatcher never even needs the fleet), and vice versa a
// distributed run seeds a local rerun. Mixed local/remote reruns
// resume for free.
func TestDistributedSharesCacheWithLocal(t *testing.T) {
	jobs := determinismJobs(t)
	cache := NewMemCache()

	local, _ := runRows(t, New(Options{Parallel: 2, Cache: cache}), jobs)

	// No workers attached anywhere: every job must come from cache.
	warm, rs := runRows(t, dispatcherFor(cache, time.Second, "http://127.0.0.1:1"), jobs)
	if rs.Hits != len(jobs) || rs.Misses != 0 {
		t.Fatalf("warm distributed run: hits=%d misses=%d, want %d/0", rs.Hits, rs.Misses, len(jobs))
	}
	if !bytes.Equal(local, warm) {
		t.Fatal("cache-warm distributed rerun not byte-identical to local run")
	}

	// The other direction: a distributed cold run fills a cache that a
	// local rerun consumes.
	cache2 := NewMemCache()
	_, ts1 := startWorker(t, "w1", 2, nil)
	cold, rs2 := runRows(t, dispatcherFor(cache2, 2*time.Second, ts1.URL), jobs)
	if rs2.Misses != len(jobs) {
		t.Fatalf("cold distributed run misses=%d, want %d", rs2.Misses, len(jobs))
	}
	localWarm, rs3 := runRows(t, New(Options{Parallel: 2, Cache: cache2}), jobs)
	if rs3.Hits != len(jobs) {
		t.Fatalf("local rerun hits=%d, want %d", rs3.Hits, len(jobs))
	}
	if !bytes.Equal(cold, localWarm) {
		t.Fatal("local rerun over distributed cache not byte-identical")
	}
}

// TestWorkerKilledMidLeaseReassigns: killing a worker that holds
// leases must not lose or corrupt the campaign — its leases expire
// and the surviving worker finishes everything, byte-identical to a
// local run.
func TestWorkerKilledMidLeaseReassigns(t *testing.T) {
	jobs := determinismJobs(t)
	local, _ := runRows(t, New(Options{Parallel: 2}), jobs)

	victim, ts1 := startWorker(t, "victim", 2, nil)
	_, ts2 := startWorker(t, "survivor", 2, nil)

	d := dispatcherFor(nil, 400*time.Millisecond, ts1.URL, ts2.URL)
	type outcome struct {
		rows []byte
		err  error
	}
	res := make(chan outcome, 1)
	go func() {
		rs, err := d.Run(context.Background(), microScale(), jobs)
		if err != nil {
			res <- outcome{nil, err}
			return
		}
		var buf bytes.Buffer
		err = stats.WriteRowsJSON(&buf, Summarize(rs))
		res <- outcome{buf.Bytes(), err}
	}()

	// Let the victim lease work, then kill it: its pull loops stop,
	// in-flight results are abandoned (never completed), and the board
	// reassigns the expired leases to the survivor.
	time.Sleep(100 * time.Millisecond)
	victim.Stop()

	select {
	case out := <-res:
		if out.err != nil {
			t.Fatal(out.err)
		}
		if !bytes.Equal(local, out.rows) {
			t.Fatalf("campaign after worker death diverges:\nlocal: %s\nremote: %s", local, out.rows)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("campaign did not recover from worker death")
	}
}

// TestCancelMidDispatchRevokesLeases: cancelling a distributed
// campaign revokes every outstanding lease before Run returns — no
// orphans — and the attached workers detach instead of spinning.
func TestCancelMidDispatchRevokesLeases(t *testing.T) {
	jobs := determinismJobs(t)
	w1, ts1 := startWorker(t, "w1", 2, nil)

	started := make(chan struct{})
	var once bool
	d := NewDispatcher(DispatchOptions{
		Workers:  []string{ts1.URL},
		LeaseTTL: time.Second,
		OnProgress: func(done, total, hits int) {
			if !once {
				once = true
				close(started)
			}
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := d.Run(ctx, microScale(), jobs)
		errCh <- err
	}()

	// Cancel as soon as at least one job completed, so leases are
	// guaranteed to be mid-flight.
	select {
	case <-started:
	case <-time.After(2 * time.Minute):
		t.Fatal("campaign never made progress")
	}
	cancel()
	err := <-errCh
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancelled dispatch returned %v, want context.Canceled", err)
	}

	// The worker must detach (board gone) rather than poll forever.
	deadline := time.Now().Add(30 * time.Second)
	for {
		w1.mu.Lock()
		n := len(w1.attachments)
		w1.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker still attached to a cancelled board (%d attachments)", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownNeverDoubleCounts is the coordinator-restart regression
// test: a campaign killed mid-dispatch (SIGTERM semantics — context
// cancelled, leases revoked) and then re-run against the same cache
// stores every job exactly once. A revoked lease's late completion
// must not land a second copy.
func TestShutdownNeverDoubleCounts(t *testing.T) {
	jobs := determinismJobs(t)
	counting := NewCountingCache(NewMemCache())

	_, ts1 := startWorker(t, "w1", 2, nil)

	started := make(chan struct{})
	var once bool
	d := NewDispatcher(DispatchOptions{
		Workers:  []string{ts1.URL},
		Cache:    counting,
		LeaseTTL: time.Second,
		OnProgress: func(done, total, hits int) {
			if !once {
				once = true
				close(started)
			}
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := d.Run(ctx, microScale(), jobs)
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled dispatch returned nil error")
	}
	_, _, putsAfterKill := counting.Stats()
	if putsAfterKill == 0 || putsAfterKill >= uint64(len(jobs)) {
		t.Fatalf("shutdown mid-campaign stored %d results, want partial (0 < n < %d)",
			putsAfterKill, len(jobs))
	}

	// "Restart": a fresh dispatcher over the same cache finishes the
	// campaign. Every job must be stored exactly once across both
	// lives, and the output must match a pure local run.
	local, _ := runRows(t, New(Options{Parallel: 2}), jobs)
	restart := dispatcherFor(counting, 2*time.Second, ts1.URL)
	rows, rs := runRows(t, restart, jobs)
	if int(putsAfterKill)+rs.Misses != len(jobs) || rs.Hits != int(putsAfterKill) {
		t.Fatalf("restart resumed wrong: first life stored %d, second hits=%d misses=%d of %d",
			putsAfterKill, rs.Hits, rs.Misses, len(jobs))
	}
	_, _, putsTotal := counting.Stats()
	if putsTotal != uint64(len(jobs)) {
		t.Fatalf("jobs stored %d times across restart, want exactly %d", putsTotal, len(jobs))
	}
	if !bytes.Equal(local, rows) {
		t.Fatal("restarted campaign output diverges from local run")
	}
}

// boardFixture serves a bare board over httptest so protocol-level
// behavior can be pinned without a dispatcher in the way.
func boardFixture(t *testing.T, jobs []Job, ttl time.Duration, maxInflight int) (*board, *httptest.Server) {
	t.Helper()
	todo := make([]int, len(jobs))
	for i := range todo {
		todo[i] = i
	}
	b := newBoard(microScale(), jobs, todo, ttl, maxInflight, 3, nil)
	ts := httptest.NewServer(b.handler())
	t.Cleanup(ts.Close)
	return b, ts
}

func postJSON(t *testing.T, url string, in any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestBoardLeaseProtocol pins the board's wire behavior: leases carry
// the coordinator's seed/fingerprint derivations, incompatible
// workers are refused, the in-flight cap holds, and revoked leases
// answer 410 to heartbeat and complete.
func TestBoardLeaseProtocol(t *testing.T) {
	jobs := determinismJobs(t)
	b, ts := boardFixture(t, jobs, time.Minute, 2)

	// Incompatible build: refused outright.
	code, body := postJSON(t, ts.URL+"/lease", leaseRequest{Worker: "bad", Check: "p0.s0.dead"})
	if code != http.StatusConflict {
		t.Fatalf("incompatible lease: %d %s, want 409", code, body)
	}

	lease1 := leaseResponse{}
	code, body = postJSON(t, ts.URL+"/lease", leaseRequest{Worker: "w1", Check: protocolCheck()})
	if code != http.StatusOK {
		t.Fatalf("lease: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &lease1); err != nil {
		t.Fatal(err)
	}
	if lease1.Job != jobs[0] {
		t.Fatalf("lease handed out %+v, want first pending job %+v", lease1.Job, jobs[0])
	}
	if lease1.SimSeed != jobs[0].SimSeed() || lease1.Fingerprint != jobs[0].Fingerprint(microScale()) {
		t.Fatalf("lease derivations wrong: %+v", lease1)
	}

	// In-flight cap: a third concurrent lease is denied.
	if code, _ = postJSON(t, ts.URL+"/lease", leaseRequest{Worker: "w1", Check: protocolCheck()}); code != http.StatusOK {
		t.Fatalf("second lease: %d", code)
	}
	if code, _ = postJSON(t, ts.URL+"/lease", leaseRequest{Worker: "w1", Check: protocolCheck()}); code != http.StatusNoContent {
		t.Fatalf("lease beyond MaxInflight: %d, want 204", code)
	}

	// Heartbeat keeps a live lease; after close both heartbeat and
	// complete get 410 and the late result is discarded.
	if code, _ = postJSON(t, ts.URL+"/heartbeat", heartbeatRequest{LeaseID: lease1.LeaseID}); code != http.StatusOK {
		t.Fatalf("heartbeat: %d", code)
	}
	b.close(nil)
	if got := b.liveLeases(); got != 0 {
		t.Fatalf("%d orphaned leases after close, want 0", got)
	}
	if code, _ = postJSON(t, ts.URL+"/heartbeat", heartbeatRequest{LeaseID: lease1.LeaseID}); code != http.StatusGone {
		t.Fatalf("heartbeat after close: %d, want 410", code)
	}
	code, _ = postJSON(t, ts.URL+"/complete", completeRequest{
		LeaseID:     lease1.LeaseID,
		Worker:      "w1",
		Fingerprint: lease1.Fingerprint,
		Metrics:     &core.Metrics{},
	})
	if code != http.StatusGone {
		t.Fatalf("complete after close: %d, want 410", code)
	}
	if got := boardDone(b); got != 0 {
		t.Fatalf("revoked completion was counted: done=%d", got)
	}
}

// boardDone reads b.done under its lock.
func boardDone(b *board) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.done
}

// TestBoardExpiryReassignsAndBacksOff: a lease whose worker goes
// silent expires, the job returns to the queue, and the silent worker
// is denied leases while it backs off.
func TestBoardExpiryReassignsAndBacksOff(t *testing.T) {
	jobs := determinismJobs(t)[:1]
	b, ts := boardFixture(t, jobs, 50*time.Millisecond, 4)

	var lr leaseResponse
	code, body := postJSON(t, ts.URL+"/lease", leaseRequest{Worker: "silent", Check: protocolCheck()})
	if code != http.StatusOK || json.Unmarshal(body, &lr) != nil {
		t.Fatalf("lease: %d %s", code, body)
	}

	// No heartbeat: reap past the TTL.
	b.reap(time.Now().Add(time.Second))
	if got := b.liveLeases(); got != 0 {
		t.Fatalf("expired lease still live: %d", got)
	}

	// The silent worker is backing off; a healthy worker picks the
	// requeued job up again.
	if code, _ = postJSON(t, ts.URL+"/lease", leaseRequest{Worker: "silent", Check: protocolCheck()}); code != http.StatusNoContent {
		t.Fatalf("backed-off worker got a lease: %d, want 204", code)
	}
	var lr2 leaseResponse
	code, body = postJSON(t, ts.URL+"/lease", leaseRequest{Worker: "healthy", Check: protocolCheck()})
	if code != http.StatusOK || json.Unmarshal(body, &lr2) != nil {
		t.Fatalf("reassigned lease: %d %s", code, body)
	}
	if lr2.Job != lr.Job {
		t.Fatalf("reassigned job %+v, want the expired one %+v", lr2.Job, lr.Job)
	}

	// A late complete on the expired lease is rejected and the
	// reassigned holder's result is the one that counts.
	code, _ = postJSON(t, ts.URL+"/complete", completeRequest{
		LeaseID: lr.LeaseID, Worker: "silent", Fingerprint: lr.Fingerprint,
		Metrics: &core.Metrics{},
	})
	if code != http.StatusGone {
		t.Fatalf("late complete on expired lease: %d, want 410", code)
	}
	code, _ = postJSON(t, ts.URL+"/complete", completeRequest{
		LeaseID: lr2.LeaseID, Worker: "healthy", Fingerprint: lr2.Fingerprint,
		Metrics: &core.Metrics{},
	})
	if code != http.StatusOK {
		t.Fatalf("reassigned complete: %d", code)
	}
	if got := boardDone(b); got != 1 {
		t.Fatalf("done=%d after reassigned completion, want 1", got)
	}
}

// TestBoardAttemptBudgetFailsCampaign: a job that keeps erroring
// exhausts its attempt budget and fails the whole campaign with the
// underlying error, like a local run would.
func TestBoardAttemptBudgetFailsCampaign(t *testing.T) {
	jobs := determinismJobs(t)[:1]
	b, ts := boardFixture(t, jobs, time.Minute, 4)

	for i := 0; i < 3; i++ {
		var lr leaseResponse
		code, body := postJSON(t, ts.URL+"/lease", leaseRequest{Worker: "flaky", Check: protocolCheck()})
		if code == http.StatusNoContent {
			// The flaky worker is backing off between failures; lease from
			// a fresh name — the job itself must still be retried.
			code, body = postJSON(t, ts.URL+"/lease",
				leaseRequest{Worker: fmt.Sprintf("fresh%d", i), Check: protocolCheck()})
		}
		if code != http.StatusOK || json.Unmarshal(body, &lr) != nil {
			t.Fatalf("attempt %d lease: %d %s", i, code, body)
		}
		postJSON(t, ts.URL+"/complete", completeRequest{
			LeaseID: lr.LeaseID, Worker: lr.Job.Workload, Error: "sim exploded",
		})
	}
	if err := b.wait(); err == nil || !strings.Contains(err.Error(), "sim exploded") {
		t.Fatalf("board error %v, want the job's error after 3 attempts", err)
	}
}

// TestWorkerRefusesIncompatibleCoordinator: the attach handshake
// rejects a coordinator whose simulator build disagrees, protecting
// fleet-wide determinism.
func TestWorkerRefusesIncompatibleCoordinator(t *testing.T) {
	w, ts := startWorker(t, "w1", 1, nil)
	body, _ := json.Marshal(attachRequest{Coordinator: "http://127.0.0.1:1", Check: "p1.s1.beef"})
	resp, err := http.Post(ts.URL+"/attach", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("incompatible attach: %d, want 409", resp.StatusCode)
	}
	if err := w.Attach("", protocolCheck()); err == nil {
		t.Fatal("attach without coordinator URL accepted")
	}
}

// TestStallDetectionFailsDeadFleet: a fleet that accepts the attach
// invitation and then goes completely silent must fail the campaign
// instead of wedging it in "running" forever.
func TestStallDetectionFailsDeadFleet(t *testing.T) {
	zombie := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSONTo(w, http.StatusOK, attachResponse{Worker: "zombie", Capacity: 1})
	}))
	t.Cleanup(zombie.Close)

	d := NewDispatcher(DispatchOptions{
		Workers:      []string{zombie.URL},
		LeaseTTL:     100 * time.Millisecond,
		StallTimeout: 300 * time.Millisecond,
	})
	_, err := d.Run(context.Background(), microScale(), determinismJobs(t))
	if err == nil || !strings.Contains(err.Error(), "fleet lost") {
		t.Fatalf("dead fleet returned %v, want fleet-lost error", err)
	}
}

// TestCoordinatorAddr covers the -coordinator flag forms.
func TestCoordinatorAddr(t *testing.T) {
	for in, want := range map[string]string{
		"":                 "127.0.0.1:0",
		"  ":               "127.0.0.1:0",
		"10.1.2.3":         "10.1.2.3:0",
		"10.1.2.3:18077":   "10.1.2.3:18077",
		"coord.internal":   "coord.internal:0",
		":18077":           ":18077",
		"::1":              "[::1]:0",
		"2001:db8::1":      "[2001:db8::1]:0",
		"[2001:db8::1]:80": "[2001:db8::1]:80",
	} {
		if got := CoordinatorAddr(in); got != want {
			t.Errorf("CoordinatorAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestParseWorkerList covers the -workers flag forms.
func TestParseWorkerList(t *testing.T) {
	got := ParseWorkerList(" node1:8078, http://node2:9000/ ,,https://node3 ")
	want := []string{"http://node1:8078", "http://node2:9000", "https://node3"}
	if len(got) != len(want) {
		t.Fatalf("ParseWorkerList: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseWorkerList[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if ParseWorkerList("") != nil {
		t.Fatal("empty list should be nil")
	}
}
