package campaign

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestTelemetryDoesNotChangeRows is the ISSUE's hard requirement at
// the campaign level: the same sweep with tracing and metrics enabled
// must produce byte-identical canonical rows to a plain run.
func TestTelemetryDoesNotChangeRows(t *testing.T) {
	jobs := determinismJobs(t)
	plain, _ := summarizeJSON(t, New(Options{Parallel: 2}), jobs)

	dir := t.TempDir()
	reg := obs.NewRegistry()
	jobSeconds := reg.Histogram("job_seconds", "", nil)
	traced, _ := summarizeJSON(t, New(Options{
		Parallel:  2,
		TraceDir:  dir,
		OnJobTime: func(d time.Duration) { jobSeconds.Observe(d.Seconds()) },
	}), jobs)

	if !bytes.Equal(plain, traced) {
		t.Fatalf("telemetry changed campaign rows:\nplain:  %s\ntraced: %s", plain, traced)
	}
	if jobSeconds.Count() != uint64(len(jobs)) {
		t.Fatalf("OnJobTime fired %d times, want %d", jobSeconds.Count(), len(jobs))
	}
	// Every simulated job left a perfetto trace and a JSONL twin.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var chrome, jsonl int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".trace.json"):
			chrome++
		case strings.HasSuffix(e.Name(), ".trace.jsonl"):
			jsonl++
		}
	}
	if chrome != len(jobs) || jsonl != len(jobs) {
		t.Fatalf("trace files: %d chrome + %d jsonl, want %d each", chrome, jsonl, len(jobs))
	}
}

// TestTraceMatchFilters: the per-cell opt-in knob traces only jobs
// whose key matches.
func TestTraceMatchFilters(t *testing.T) {
	jobs := determinismJobs(t)
	match := jobs[0].Key()
	var want int
	for _, j := range jobs {
		if strings.Contains(j.Key(), match) {
			want++
		}
	}
	if want == len(jobs) {
		t.Fatalf("match %q selects every job; filter test is vacuous", match)
	}
	dir := t.TempDir()
	if _, err := New(Options{Parallel: 2, TraceDir: dir, TraceMatch: match}).
		Run(context.Background(), microScale(), jobs); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var chrome int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".trace.json") {
			chrome++
		}
	}
	if chrome != want {
		t.Fatalf("matched traces = %d, want %d (match %q)", chrome, want, match)
	}
}

// TestDistributedTelemetryMatchesLocal is satellite 4's distributed
// half: a 2-worker sharded campaign with tracing and fleet metrics
// enabled produces rows byte-identical to a plain local run.
func TestDistributedTelemetryMatchesLocal(t *testing.T) {
	jobs := determinismJobs(t)
	local, _ := runRows(t, New(Options{Parallel: 2}), jobs)

	dir := t.TempDir()
	mkWorker := func(name string) *httptest.Server {
		w := NewWorker(WorkerOptions{
			Name:     name,
			Capacity: 2,
			Poll:     5 * time.Millisecond,
			TraceDir: dir,
		})
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(func() {
			w.Stop()
			ts.Close()
		})
		return ts
	}
	ts1, ts2 := mkWorker("w1"), mkWorker("w2")

	reg := obs.NewRegistry()
	fobs := NewFleetObs(reg)
	remote, rs := runRows(t, NewDispatcher(DispatchOptions{
		Workers:  []string{ts1.URL, ts2.URL},
		LeaseTTL: 2 * time.Second,
		Obs:      fobs,
	}), jobs)

	if !bytes.Equal(local, remote) {
		t.Fatalf("telemetry-enabled distributed run diverges from local:\nlocal:  %s\nremote: %s", local, remote)
	}
	if rs.Misses != len(jobs) {
		t.Fatalf("distributed run misses=%d, want %d", rs.Misses, len(jobs))
	}

	// The fleet instruments saw the campaign: every job granted and
	// completed, both workers observed.
	snap := reg.Snapshot()
	if got := snap["mmm_fleet_lease_grants_total"]; got < float64(len(jobs)) {
		t.Errorf("lease grants = %v, want >= %d", got, len(jobs))
	}
	if got := snap["mmm_fleet_jobs_completed_total"]; got != float64(len(jobs)) {
		t.Errorf("jobs completed = %v, want %d", got, len(jobs))
	}
	for _, w := range []string{"w1", "w2"} {
		key := fmt.Sprintf("mmm_fleet_worker_age_seconds{worker=%q}", w)
		if _, ok := snap[key]; !ok {
			t.Errorf("no heartbeat age for %s (snapshot keys: %v)", w, keysOf(snap))
		}
	}

	// Workers wrote per-job traces (every job simulated exactly once
	// across the fleet).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var chrome int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".trace.json") {
			chrome++
		}
	}
	if chrome != len(jobs) {
		t.Fatalf("worker traces = %d, want %d", chrome, len(jobs))
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestTraceFilesAreValid: a worker-written trace must load as Chrome
// trace-event JSON with at least one simulation event.
func TestTraceFilesAreValid(t *testing.T) {
	jobs := determinismJobs(t)[:1]
	dir := t.TempDir()
	if _, err := New(Options{Parallel: 1, TraceDir: dir}).
		Run(context.Background(), microScale(), jobs); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("trace glob: %v, %v", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"traceEvents"`)) || !bytes.Contains(data, []byte(`"bulk-step"`)) {
		t.Fatalf("trace file lacks expected content:\n%.300s", data)
	}
}

// TestExplainCheckMismatch (satellite 1): compat refusals must name
// WHICH component mismatched.
func TestExplainCheckMismatch(t *testing.T) {
	ours := protocolCheck()
	digest := sim.StreamCheck()
	cases := []struct {
		theirs string
		want   string
	}{
		{fmt.Sprintf("p%d.s%d.%s", protoVersion+1, SpecVersion, digest), "wire protocol version mismatch"},
		{fmt.Sprintf("p%d.s%d.%s", protoVersion, SpecVersion+7, digest), "campaign SpecVersion mismatch"},
		{fmt.Sprintf("p%d.s%d.%s", protoVersion, SpecVersion, "deadbeef"), "RNG stream digest mismatch"},
		{"garbage", "unrecognized check format"},
		{ours, "spurious"},
	}
	for _, tc := range cases {
		got := explainCheckMismatch(ours, tc.theirs)
		if !strings.Contains(got, tc.want) {
			t.Errorf("explainCheckMismatch(%q, %q) = %q, want substring %q", ours, tc.theirs, got, tc.want)
		}
	}
	// Precedence: when several components differ, the outermost (wire
	// protocol) is named — it gates everything behind it.
	multi := fmt.Sprintf("p%d.s%d.%s", protoVersion+1, SpecVersion+1, "zzz")
	if got := explainCheckMismatch(ours, multi); !strings.Contains(got, "wire protocol version mismatch") {
		t.Errorf("multi-component mismatch named %q, want wire protocol first", got)
	}
}

// TestAttachRefusalNamesComponent: the worker-side refusal carries the
// explanation through to the error a coordinator sees.
func TestAttachRefusalNamesComponent(t *testing.T) {
	w := NewWorker(WorkerOptions{Name: "wx", Capacity: 1})
	t.Cleanup(w.Stop)
	bad := fmt.Sprintf("p%d.s%d.%s", protoVersion, SpecVersion+1, sim.StreamCheck())
	err := w.Attach("http://127.0.0.1:0", bad)
	if err == nil {
		t.Fatal("attach with mismatched check succeeded")
	}
	if !strings.Contains(err.Error(), "campaign SpecVersion mismatch") {
		t.Fatalf("refusal does not name the component: %v", err)
	}
}
