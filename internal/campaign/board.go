package campaign

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
)

// board is the coordinator's campaign state machine: the pull-based
// job queue behind the lease/heartbeat/complete endpoints. One board
// runs one campaign's uncached jobs; the Dispatcher owns its
// lifecycle. All state transitions happen under mu, and every
// terminal path funnels through closeLocked so doneCh closes exactly
// once and no lease outlives the board.
type board struct {
	sc          Scale
	jobs        []Job
	check       string
	ttl         time.Duration
	maxInflight int
	maxAttempts int
	// onComplete delivers each first completion (job index, metrics)
	// under mu — in completion order, exactly once per job. The
	// callback must not call back into the board. A returned error
	// fails the campaign (e.g. a cache write error, mirroring the
	// local engine's behavior). Running it under mu is a deliberate
	// trade-off: completions arrive at job-runtime granularity
	// (seconds), so even a disk-cache write (µs–ms) held under the
	// lock is orders of magnitude below the TTL/3 heartbeat budget,
	// and in exchange delivery order needs no extra machinery.
	onComplete func(idx int, m core.Metrics) error
	// fobs instruments the lease protocol; nil records nothing.
	fobs *FleetObs
	// jnl journals the lease lifecycle (leased, started, reassigned,
	// heartbeat_missed, completed/failed, merged); nil records nothing.
	// Journal methods take only the journal's own lock, so calling them
	// under b.mu cannot deadlock.
	jnl *Journal
	// expand, when non-nil, runs under mu after each first completion
	// (after onComplete) and may append follow-up jobs to the board —
	// the adaptive planner scheduling a cell's next wave off the wave
	// that just landed. Returned jobs join the queue immediately, so a
	// freed worker's very next lease poll can pick one up; the board
	// only closes when a completion yields no expansion and nothing is
	// left. Like onComplete, it must not call back into the board, and
	// an error fails the campaign.
	expand func(idx int, m core.Metrics) ([]prioJob, error)

	mu          sync.Mutex
	lastContact time.Time // any worker request; stall detection
	// pending holds job indices awaiting a lease. With prio unset (fixed
	// campaigns) it is a plain FIFO; with prio set (adaptive campaigns)
	// leases pop the highest-priority index — the widest confidence
	// interval — FIFO among equals.
	pending   []int
	prio      map[int]float64
	attempts  map[int]int
	completed map[int]bool
	results   map[int]core.Metrics
	leases    map[string]*lease
	workers   map[string]*workerHealth
	inflight  int
	seq       int
	done      int
	need      int
	closed    bool
	err       error
	doneCh    chan struct{}
}

// lease is one outstanding job assignment. A lease record is kept
// until the board closes; revoked/expired leases stay in the map with
// ended=true so a late heartbeat or complete from the old holder gets
// an explicit 410 instead of corrupting a reassigned job.
type lease struct {
	id      string
	idx     int
	worker  string
	granted time.Time
	expires time.Time
	ended   bool
}

// workerHealth tracks per-worker failures for the lease-denial
// backoff: a worker whose leases expire or whose jobs error is denied
// new leases for an exponentially growing window, so a sick box stops
// soaking up reassignments while healthy workers drain the queue.
type workerHealth struct {
	failures     int
	backoffUntil time.Time
}

// backoffBase is the first per-worker denial window; it doubles per
// consecutive failure up to backoffMax.
const (
	backoffBase = 500 * time.Millisecond
	backoffMax  = 30 * time.Second
)

// newBoard builds a board over the campaign's uncached job indices.
func newBoard(sc Scale, jobs []Job, todo []int, ttl time.Duration, maxInflight, maxAttempts int,
	onComplete func(int, core.Metrics) error) *board {
	b := &board{
		sc:          sc,
		jobs:        jobs,
		check:       protocolCheck(),
		ttl:         ttl,
		maxInflight: maxInflight,
		maxAttempts: maxAttempts,
		onComplete:  onComplete,
		pending:     append([]int(nil), todo...),
		attempts:    make(map[int]int),
		completed:   make(map[int]bool),
		results:     make(map[int]core.Metrics),
		leases:      make(map[string]*lease),
		workers:     make(map[string]*workerHealth),
		need:        len(todo),
		lastContact: time.Now(),
		doneCh:      make(chan struct{}),
	}
	if b.need == 0 {
		b.closed = true
		close(b.doneCh)
	}
	return b
}

// handler routes the board's worker-facing endpoints. Every request —
// even an idle 204 lease poll — counts as fleet contact for the stall
// detector: a polling worker is alive and will drain the queue
// eventually, whereas total silence means the fleet is gone.
func (b *board) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /lease", b.handleLease)
	mux.HandleFunc("POST /heartbeat", b.handleHeartbeat)
	mux.HandleFunc("POST /complete", b.handleComplete)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		b.mu.Lock()
		b.lastContact = time.Now()
		b.mu.Unlock()
		mux.ServeHTTP(w, req)
	})
}

// idleFor reports how long the board has gone without any worker
// contact.
func (b *board) idleFor(now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return now.Sub(b.lastContact)
}

func (b *board) handleLease(w http.ResponseWriter, req *http.Request) {
	var lr leaseRequest
	if err := json.NewDecoder(req.Body).Decode(&lr); err != nil {
		httpErrorJSON(w, http.StatusBadRequest, "bad lease request: %v", err)
		return
	}
	if lr.Check != b.check {
		httpErrorJSON(w, http.StatusConflict,
			"incompatible worker %q: %s", lr.Worker, explainCheckMismatch(b.check, lr.Check))
		return
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		b.writeGoneLocked(w)
		return
	}
	now := time.Now()
	wh := b.workerLocked(lr.Worker)
	if now.Before(wh.backoffUntil) || b.inflight >= b.maxInflight || len(b.pending) == 0 {
		// Nothing to hand out right now (queue drained, in-flight cap
		// reached, or this worker is backing off after failures); the
		// worker polls again. Jobs may reappear via lease expiry, so an
		// empty queue is not "done".
		w.WriteHeader(http.StatusNoContent)
		return
	}
	idx := b.popPendingLocked()
	b.seq++
	l := &lease{
		id:      fmt.Sprintf("l%d", b.seq),
		idx:     idx,
		worker:  lr.Worker,
		granted: now,
		expires: now.Add(b.ttl),
	}
	b.leases[l.id] = l
	b.inflight++
	b.fobs.LeaseGranted(lr.Worker, b.attempts[idx] > 0)
	j := b.jobs[idx]
	// Workers lease only into a free slot and simulate immediately, so
	// the lease grant is also the start of execution.
	b.jnl.Leased(idx, j, lr.Worker, b.attempts[idx]+1)
	b.jnl.Started(idx, j, lr.Worker, b.attempts[idx]+1)
	writeJSONTo(w, http.StatusOK, leaseResponse{
		LeaseID:     l.id,
		Job:         j,
		Scale:       b.sc,
		SimSeed:     j.SimSeed(),
		Fingerprint: j.Fingerprint(b.sc),
		TTLMS:       b.ttl.Milliseconds(),
	})
}

func (b *board) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	var hr heartbeatRequest
	if err := json.NewDecoder(req.Body).Decode(&hr); err != nil {
		httpErrorJSON(w, http.StatusBadRequest, "bad heartbeat: %v", err)
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	l := b.leases[hr.LeaseID]
	if b.closed || l == nil || l.ended {
		b.writeGoneLocked(w)
		return
	}
	l.expires = time.Now().Add(b.ttl)
	b.fobs.Heartbeat(l.worker)
	writeJSONTo(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (b *board) handleComplete(w http.ResponseWriter, req *http.Request) {
	var cr completeRequest
	if err := json.NewDecoder(req.Body).Decode(&cr); err != nil {
		httpErrorJSON(w, http.StatusBadRequest, "bad completion: %v", err)
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	l := b.leases[cr.LeaseID]
	if b.closed || l == nil || l.ended {
		// Revoked or expired-and-reassigned: the result is discarded.
		// Per-job derived seeds make simulations deterministic, so the
		// reassigned run produces the identical payload — dropping this
		// one loses nothing and guarantees each job is counted once.
		b.writeGoneLocked(w)
		return
	}
	l.ended = true
	b.inflight--
	b.fobs.JobCompleted(l.worker, time.Since(l.granted), cr.Error != "")

	idx := l.idx
	if cr.Error != "" {
		b.jnl.CellFailed(idx, b.jobs[idx], l.worker, b.attempts[idx]+1, cr.Error)
		b.jobFailedLocked(idx, l.worker, fmt.Errorf("campaign: worker %s: job %s: %s",
			l.worker, b.jobs[idx].Key(), cr.Error))
		writeJSONTo(w, http.StatusOK, map[string]string{"status": "recorded"})
		return
	}
	if want := b.jobs[idx].Fingerprint(b.sc); cr.Fingerprint != want || cr.Metrics == nil {
		b.jnl.CellFailed(idx, b.jobs[idx], l.worker, b.attempts[idx]+1,
			fmt.Sprintf("fingerprint mismatch: got %q want %q", cr.Fingerprint, want))
		b.jobFailedLocked(idx, l.worker, fmt.Errorf(
			"campaign: worker %s returned fingerprint %q for job %s (want %q)",
			l.worker, cr.Fingerprint, b.jobs[idx].Key(), want))
		writeJSONTo(w, http.StatusOK, map[string]string{"status": "recorded"})
		return
	}
	if b.completed[idx] {
		writeJSONTo(w, http.StatusOK, map[string]string{"status": "duplicate"})
		return
	}
	b.completed[idx] = true
	b.results[idx] = *cr.Metrics
	b.done++
	b.workerLocked(l.worker).failures = 0
	b.jnl.CellDone(idx, b.jobs[idx], *cr.Metrics, false, l.worker,
		time.Since(l.granted), b.attempts[idx]+1)
	if b.onComplete != nil {
		if err := b.onComplete(idx, *cr.Metrics); err != nil {
			b.closeLocked(err)
			b.writeGoneLocked(w)
			return
		}
	}
	// Expansion must run before the done==need check: a wave completion
	// that schedules a follow-up wave grows need in the same critical
	// section, so the board can never close with a cell still owing
	// trials.
	if b.expand != nil {
		added, err := b.expand(idx, *cr.Metrics)
		if err != nil {
			b.closeLocked(err)
			b.writeGoneLocked(w)
			return
		}
		for _, pj := range added {
			b.addJobLocked(pj)
		}
	}
	if b.done == b.need {
		b.closeLocked(nil)
	}
	writeJSONTo(w, http.StatusOK, map[string]string{"status": "accepted"})
}

// prioJob pairs a dynamically added job with its lease priority (the
// scheduling cell's current half-width).
type prioJob struct {
	job  Job
	prio float64
}

// popPendingLocked removes and returns the next index to lease:
// highest priority first when the board is prioritized, FIFO otherwise
// and among equals.
func (b *board) popPendingLocked() int {
	best := 0
	if b.prio != nil {
		for i := 1; i < len(b.pending); i++ {
			if b.prio[b.pending[i]] > b.prio[b.pending[best]] {
				best = i
			}
		}
	}
	idx := b.pending[best]
	b.pending = append(b.pending[:best], b.pending[best+1:]...)
	return idx
}

// addJobLocked appends an expansion job to the board's queue.
func (b *board) addJobLocked(pj prioJob) {
	idx := len(b.jobs)
	b.jobs = append(b.jobs, pj.job)
	b.need++
	if b.prio == nil {
		b.prio = make(map[int]float64)
	}
	b.prio[idx] = pj.prio
	b.pending = append(b.pending, idx)
}

// jobFailedLocked records a failed attempt: the worker backs off and
// the job is requeued, until the attempt budget is spent — then the
// whole campaign fails with the underlying error, like a local run.
func (b *board) jobFailedLocked(idx int, worker string, err error) {
	b.workerFailureLocked(worker)
	b.attempts[idx]++
	if b.attempts[idx] >= b.maxAttempts {
		b.closeLocked(err)
		return
	}
	if !b.completed[idx] {
		b.pending = append(b.pending, idx)
	}
}

// workerFailureLocked bumps a worker's failure count and backoff
// window (exponential, capped).
func (b *board) workerFailureLocked(worker string) {
	wh := b.workerLocked(worker)
	wh.failures++
	d := backoffBase << uint(wh.failures-1)
	if d > backoffMax || d <= 0 {
		d = backoffMax
	}
	wh.backoffUntil = time.Now().Add(d)
}

func (b *board) workerLocked(name string) *workerHealth {
	wh := b.workers[name]
	if wh == nil {
		wh = &workerHealth{}
		b.workers[name] = wh
	}
	return wh
}

// reap expires overdue leases: each one counts as a failure of its
// holder (heartbeats stopped — the worker died or lost its network)
// and its job goes back in the queue for reassignment.
func (b *board) reap(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for _, l := range b.leases {
		if l.ended || now.Before(l.expires) {
			continue
		}
		l.ended = true
		b.inflight--
		b.fobs.LeaseExpired(l.worker)
		b.jnl.HeartbeatMissed(l.idx, b.jobs[l.idx], l.worker, b.attempts[l.idx]+1)
		b.jobFailedLocked(l.idx, l.worker, fmt.Errorf(
			"campaign: worker %s lease on job %s expired %d times",
			l.worker, b.jobs[l.idx].Key(), b.attempts[l.idx]+1))
		if b.closed {
			return
		}
	}
}

// close terminates the board: every live lease is revoked (later
// heartbeats and completes get 410 and their results are discarded)
// and doneCh closes. err == nil means the campaign completed.
func (b *board) close(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closeLocked(err)
}

func (b *board) closeLocked(err error) {
	if b.closed {
		return
	}
	b.closed = true
	b.err = err
	for _, l := range b.leases {
		if !l.ended {
			l.ended = true
			b.inflight--
		}
	}
	close(b.doneCh)
}

// wait blocks until the board closes and returns its terminal error.
func (b *board) wait() error {
	<-b.doneCh
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// liveLeases reports the number of un-ended leases — zero after close,
// which the shutdown regression test pins.
func (b *board) liveLeases() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, l := range b.leases {
		if !l.ended {
			n++
		}
	}
	return n
}

func (b *board) writeGoneLocked(w http.ResponseWriter) {
	writeJSONTo(w, http.StatusGone, boardStatus{
		Done:  b.closed && b.err == nil,
		Error: errString(b.err),
	})
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// writeJSONTo and httpErrorJSON are the board/worker-side JSON
// helpers (cmd/mmmd has its own; these keep internal/campaign
// self-contained).
func writeJSONTo(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpErrorJSON(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSONTo(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
