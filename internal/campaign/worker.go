package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/cache"
	"repro/internal/core"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Name identifies the worker to coordinators (lease requests,
	// failure backoff, logs). Required.
	Name string
	// Capacity bounds concurrent leased jobs across all attachments;
	// default 1.
	Capacity int
	// Cache, when non-nil, is the worker's local result cache: leased
	// jobs it already holds complete without re-simulating, and fresh
	// results are stored. Optional — the coordinator caches too.
	Cache Cache
	// Poll is the idle lease-poll interval; default 250ms.
	Poll time.Duration
	// Client performs the worker's HTTP calls; default a client with
	// a 10s timeout.
	Client *http.Client
	// OnJobTime, when non-nil, is called with each simulated leased
	// job's wall time (local cache hits excluded). It runs on pull
	// goroutines and must be concurrency-safe.
	OnJobTime func(time.Duration)
	// TraceDir / TraceMatch mirror Options.TraceDir / TraceMatch:
	// flight-recorder traces for leased jobs this worker simulates.
	// Never part of the job identity or the completion payload.
	TraceDir   string
	TraceMatch string
	// OnTrace mirrors Options.OnTrace: per traced job, the flight
	// recorder's event and dropped-event counts. Concurrency-safe.
	OnTrace func(total, dropped uint64)
}

// Worker is the fleet-side runtime behind mmmd -worker: it serves an
// /attach endpoint, and for every attached coordinator runs pull
// loops that lease jobs, heartbeat while simulating, and complete
// with canonical metrics plus the job's cache key. A worker holds no
// campaign state: between jobs it is a blank simulator, so killing
// one costs at most its in-flight leases (which the coordinator
// expires and reassigns).
type Worker struct {
	opts  WorkerOptions
	check string
	slots chan struct{}

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu          sync.Mutex
	attachments map[string]context.CancelFunc // board URL -> detach

	jobsDone    atomic.Uint64
	jobsFailed  atomic.Uint64
	leasesLost  atomic.Uint64
	attachTotal atomic.Uint64
}

// NewWorker returns a stopped-when-Stop'd worker ready to accept
// attachments.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Name == "" {
		opts.Name = "worker"
	}
	if opts.Capacity < 1 {
		opts.Capacity = 1
	}
	if opts.Poll <= 0 {
		opts.Poll = 250 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 10 * time.Second}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Worker{
		opts:        opts,
		check:       protocolCheck(),
		slots:       make(chan struct{}, opts.Capacity),
		ctx:         ctx,
		cancel:      cancel,
		attachments: make(map[string]context.CancelFunc),
	}
}

// Handler routes the worker's coordinator-facing endpoints. Attach is
// canonical under /v1 (protoVersion 2 coordinators post there); the
// unversioned spelling stays as a deprecated alias for by-hand
// attachment and old scripts. The board's own lease endpoints are not
// versioned this way — they are ephemeral per-campaign internals,
// guarded by the protocol check token instead.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		writeJSONTo(rw, http.StatusOK, map[string]string{"status": "ok", "worker": w.opts.Name})
	})
	mux.HandleFunc("GET /status", w.handleStatus)
	mux.HandleFunc("POST "+api.PathPrefix+"/attach", w.handleAttach)
	mux.HandleFunc("POST /attach", func(rw http.ResponseWriter, req *http.Request) {
		rw.Header().Set(api.DeprecationHeader, "true")
		rw.Header().Set("Link", fmt.Sprintf("<%s/attach>; rel=%q", api.PathPrefix, api.SuccessorRel))
		w.handleAttach(rw, req)
	})
	return mux
}

func (w *Worker) handleStatus(rw http.ResponseWriter, _ *http.Request) {
	w.mu.Lock()
	attached := len(w.attachments)
	w.mu.Unlock()
	writeJSONTo(rw, http.StatusOK, map[string]any{
		"worker":        w.opts.Name,
		"capacity":      w.opts.Capacity,
		"check":         w.check,
		"attachments":   attached,
		"attach_total":  w.attachTotal.Load(),
		"jobs_done":     w.jobsDone.Load(),
		"jobs_failed":   w.jobsFailed.Load(),
		"leases_lost":   w.leasesLost.Load(),
		"in_flight_max": cap(w.slots),
	})
}

// WorkerStats is a point-in-time snapshot of a worker's counters, for
// metric exposition.
type WorkerStats struct {
	Name        string
	Capacity    int
	Attachments int
	AttachTotal uint64
	JobsDone    uint64
	JobsFailed  uint64
	LeasesLost  uint64
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	attached := len(w.attachments)
	w.mu.Unlock()
	return WorkerStats{
		Name:        w.opts.Name,
		Capacity:    w.opts.Capacity,
		Attachments: attached,
		AttachTotal: w.attachTotal.Load(),
		JobsDone:    w.jobsDone.Load(),
		JobsFailed:  w.jobsFailed.Load(),
		LeasesLost:  w.leasesLost.Load(),
	}
}

func (w *Worker) handleAttach(rw http.ResponseWriter, req *http.Request) {
	var ar attachRequest
	if err := json.NewDecoder(req.Body).Decode(&ar); err != nil {
		httpErrorJSON(rw, http.StatusBadRequest, "bad attach request: %v", err)
		return
	}
	if err := w.Attach(ar.Coordinator, ar.Check); err != nil {
		httpErrorJSON(rw, http.StatusConflict, "%v", err)
		return
	}
	writeJSONTo(rw, http.StatusOK, attachResponse{
		Worker:   w.opts.Name,
		Capacity: w.opts.Capacity,
		Check:    w.check,
	})
}

// Attach starts pulling jobs from the board at boardURL. check is the
// coordinator's compatibility token; an incompatible build is refused
// outright — a mixed fleet would break byte-identical determinism.
// Attaching to an already-attached board is a no-op.
func (w *Worker) Attach(boardURL, check string) error {
	if check != w.check {
		return fmt.Errorf("campaign: worker %s refuses attach: %s",
			w.opts.Name, explainCheckMismatch(w.check, check))
	}
	if boardURL == "" {
		return fmt.Errorf("campaign: attach without coordinator URL")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ctx.Err() != nil {
		return fmt.Errorf("campaign: worker %s is stopped", w.opts.Name)
	}
	if _, ok := w.attachments[boardURL]; ok {
		return nil
	}
	ctx, cancel := context.WithCancel(w.ctx)
	w.attachments[boardURL] = cancel
	w.attachTotal.Add(1)
	for i := 0; i < w.opts.Capacity; i++ {
		w.wg.Add(1)
		go w.pull(ctx, boardURL)
	}
	return nil
}

// detach ends an attachment (idempotent).
func (w *Worker) detach(boardURL string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if cancel, ok := w.attachments[boardURL]; ok {
		delete(w.attachments, boardURL)
		cancel()
	}
}

// Stop abandons every attachment and in-flight lease. In-flight
// simulations finish their current job but their results are
// discarded (the coordinator has revoked or will expire the leases —
// and per-job determinism means the reassigned runs are identical).
// The cancel happens under mu so it cannot interleave with Attach's
// liveness check: after Stop begins, a concurrent Attach either
// already spawned its pull loops (and Wait covers them) or observes
// the dead context and refuses.
func (w *Worker) Stop() {
	w.mu.Lock()
	w.cancel()
	w.mu.Unlock()
	w.wg.Wait()
}

// errBudget is how many consecutive transport failures a pull loop
// tolerates before concluding the coordinator is gone and detaching.
const errBudget = 5

// pull is one lease loop: lease, simulate under heartbeat, complete,
// repeat — until the board reports done (410), the attachment is
// cancelled, or the coordinator stops answering.
func (w *Worker) pull(ctx context.Context, boardURL string) {
	defer w.wg.Done()
	// Per-loop scratch, like the engine's per-worker recycler: chips
	// built for consecutive jobs reuse the cache hierarchy's line
	// arrays. Confined to this goroutine.
	scratch := cache.NewRecycler()
	errs := 0
	for {
		select {
		case <-ctx.Done():
			return
		case w.slots <- struct{}{}:
		}
		state, err := w.leaseAndRun(ctx, boardURL, scratch)
		<-w.slots
		switch {
		case err != nil:
			errs++
			if errs >= errBudget {
				w.detach(boardURL)
				return
			}
			w.sleep(ctx, w.opts.Poll)
		case state == boardOver:
			w.detach(boardURL)
			return
		case state == boardIdle:
			errs = 0
			w.sleep(ctx, w.opts.Poll)
		default:
			errs = 0
		}
	}
}

type boardState int

const (
	boardBusy boardState = iota // leased and ran a job
	boardIdle                   // nothing to lease right now
	boardOver                   // board closed: campaign done or cancelled
)

// leaseAndRun performs one lease round trip and, when a job was
// handed out, runs it to completion.
func (w *Worker) leaseAndRun(ctx context.Context, boardURL string, scratch *cache.Recycler) (boardState, error) {
	var lr leaseResponse
	code, err := w.post(ctx, boardURL+"/lease",
		leaseRequest{Worker: w.opts.Name, Check: w.check}, &lr)
	if err != nil {
		return boardIdle, err
	}
	switch code {
	case http.StatusOK:
	case http.StatusNoContent:
		return boardIdle, nil
	case http.StatusGone:
		return boardOver, nil
	default:
		return boardIdle, fmt.Errorf("campaign: lease: unexpected status %d", code)
	}

	// Verify the coordinator's derivations before burning cycles: a
	// seed or fingerprint skew means the builds disagree about what
	// this job *is*, and the result must not enter any cache.
	comp := completeRequest{LeaseID: lr.LeaseID, Worker: w.opts.Name, Fingerprint: lr.Fingerprint}
	if got := lr.Job.SimSeed(); got != lr.SimSeed {
		comp.Error = fmt.Sprintf("derived-seed mismatch: worker %d, coordinator %d", got, lr.SimSeed)
	} else if got := lr.Job.Fingerprint(lr.Scale); got != lr.Fingerprint {
		comp.Error = fmt.Sprintf("fingerprint mismatch: worker %s, coordinator %s", got, lr.Fingerprint)
	} else {
		m, err := w.runLeased(ctx, boardURL, lr, scratch)
		if err != nil {
			comp.Error = err.Error()
		} else if m == nil {
			// Lease lost mid-run (board revoked it); nothing to send.
			w.leasesLost.Add(1)
			return boardBusy, nil
		} else {
			comp.Metrics = m
		}
	}
	if comp.Error != "" {
		w.jobsFailed.Add(1)
	} else {
		w.jobsDone.Add(1)
	}
	code, err = w.post(ctx, boardURL+"/complete", comp, nil)
	if err != nil {
		return boardBusy, err
	}
	if code == http.StatusGone {
		// Completed into a closed board or a revoked lease: result
		// discarded there; treat as board-over only if lease revocation
		// came from closure — the next lease poll disambiguates.
		w.leasesLost.Add(1)
	}
	return boardBusy, nil
}

// runLeased simulates the leased job under a heartbeat. It returns
// (nil, nil) when the lease was revoked mid-run.
func (w *Worker) runLeased(ctx context.Context, boardURL string, lr leaseResponse, scratch *cache.Recycler) (*core.Metrics, error) {
	if w.opts.Cache != nil {
		if m, ok := w.opts.Cache.Get(lr.Fingerprint); ok {
			return &m, nil
		}
	}

	// Heartbeat at a third of the TTL until the job finishes; a 410
	// marks the lease revoked so the result is discarded. The interval
	// is clamped: a degenerate wire-supplied TTL (0 or sub-3ms) must
	// not panic time.NewTicker and take the worker process down.
	var revoked atomic.Bool
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	hbEvery := time.Duration(lr.TTLMS) * time.Millisecond / 3
	if hbEvery < time.Millisecond {
		hbEvery = time.Millisecond
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer close(hbDone)
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				code, err := w.post(ctx, boardURL+"/heartbeat",
					heartbeatRequest{LeaseID: lr.LeaseID}, nil)
				if err == nil && code == http.StatusGone {
					revoked.Store(true)
					return
				}
			}
		}
	}()

	rec := traceRecorder(w.opts.TraceDir, w.opts.TraceMatch, lr.Job)
	jobStart := time.Now()
	m, err := runJob(lr.Scale, lr.Job, scratch, rec)
	close(hbStop)
	<-hbDone

	if err != nil {
		return nil, err
	}
	if w.opts.OnJobTime != nil {
		w.opts.OnJobTime(time.Since(jobStart))
	}
	if rec != nil {
		if err := writeTrace(w.opts.TraceDir, lr.Job, rec); err != nil {
			return nil, err
		}
		if w.opts.OnTrace != nil {
			w.opts.OnTrace(rec.Total(), rec.Dropped())
		}
	}
	if revoked.Load() || ctx.Err() != nil {
		return nil, nil
	}
	if w.opts.Cache != nil {
		if err := w.opts.Cache.Put(lr.Fingerprint, m); err != nil {
			return nil, err
		}
	}
	return &m, nil
}

// post sends one JSON request and decodes a JSON body into out (when
// non-nil and the response carries one).
func (w *Worker) post(ctx context.Context, url string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// sleep waits d or until ctx is done.
func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
