package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/obs"
)

// Per-job flight-recorder traces. The trace knobs live in engine /
// worker options — NOT in Job or Knobs — so job fingerprints, cached
// metrics and result rows are byte-identical whether tracing is on or
// off. Only simulated jobs produce traces (a cache hit has no chip to
// observe).

// traceRecorder returns a fresh recorder for one job when tracing is
// enabled and the job's aggregation key matches, else nil (the
// zero-cost disabled path).
func traceRecorder(dir, match string, j Job) *obs.Recorder {
	if dir == "" {
		return nil
	}
	if match != "" && !strings.Contains(j.Key(), match) {
		return nil
	}
	return obs.NewRecorder(0)
}

// traceBase mangles a job's key and seed into a filesystem-safe
// basename.
func traceBase(j Job) string {
	name := fmt.Sprintf("%s_seed%d", j.Key(), j.Seed)
	mangle := func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-', r == '.', r == '+':
			return r
		default:
			return '_'
		}
	}
	return strings.Map(mangle, name)
}

// writeTrace writes one job's retained events as Chrome trace-event
// JSON (<base>.trace.json, perfetto-loadable) plus JSONL
// (<base>.trace.jsonl), creating dir as needed.
func writeTrace(dir string, j Job, rec *obs.Recorder) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(dir, traceBase(j))
	cf, err := os.Create(base + ".trace.json")
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(cf, j.Key()); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}
	jf, err := os.Create(base + ".trace.jsonl")
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(jf); err != nil {
		jf.Close()
		return err
	}
	return jf.Close()
}
