package sim

// Config holds every architectural parameter of the target multicore.
// The defaults reproduce the configuration in Section 4.1 of the paper:
// a 16-core chip at 3 GHz with out-of-order, 2-wide cores, an 8-stage
// pipeline (9 with Reunion's Check stage), a 128-entry instruction
// window, a 32-load/32-store queue, sequential consistency, split 16 KB
// write-through L1 I/D caches, a 512 KB private L2, an 8 MB shared L3
// that is exclusive with the L2s, a MOSI directory protocol over a
// point-to-point interconnect, and 350-cycle main memory with 40 GB/s
// of off-chip bandwidth.
type Config struct {
	// Chip
	Cores       int // physical cores on the chip
	ClockGHz    float64
	IssueWidth  int // instructions issued per cycle per core
	CommitWidth int // instructions committed per cycle per core
	FetchWidth  int // instructions fetched per cycle per core
	WindowSize  int // instruction window (ROB) entries
	LoadQueue   int // load queue entries
	StoreQueue  int // store queue entries

	// Pipeline depth: front-end fill delay charged after a redirect
	// (trap, mispredict). 8 stages baseline, 9 with Reunion.
	PipelineStages int

	// TSO selects total-store-order instead of sequential consistency:
	// committed stores drain from a store buffer in the background
	// instead of holding their window slot until the write-through
	// completes. The paper's configuration is SC (which Smolens
	// reports costs Reunion ~30% on average); the original Reunion
	// evaluation used TSO — this knob reproduces that ablation.
	TSO bool
	// StoreBufferEntries bounds the TSO store buffer.
	StoreBufferEntries int

	// Branch handling
	MispredictPenalty Cycle

	// Caches (sizes in bytes)
	LineSize   int
	L1Size     int
	L1Ways     int
	L1HitLat   Cycle // load-to-use for an L1 hit
	L2Size     int
	L2Ways     int
	L2HitLat   Cycle // load-to-use for a private L2 hit
	L3Size     int
	L3Ways     int
	L3Banks    int
	L3HitLat   Cycle // end-to-end load-to-use for a shared L3 hit (55 in the paper)
	L3PortBusy Cycle // bank occupancy per access
	// MemLat is the DRAM device latency. End-to-end memory load-to-use
	// is MemLat plus network hops and the directory lookup, ~350
	// cycles as in the paper.
	MemLat             Cycle
	MemBWBytesPerCycle float64 // 40 GB/s at 3 GHz = 13.3 B/cycle
	DirLat             Cycle   // directory (shadow tag) lookup latency

	// Interconnect
	NetHopLat Cycle // average point-to-point message latency (10)

	// TLB: hardware filled (like the paper, to avoid over-inflating
	// the serializing-instruction count).
	TLBEntries int
	TLBFillLat Cycle

	// Reunion
	FingerprintLat  Cycle // dedicated fingerprint network latency (10)
	SerializeFPLat  Cycle // extra validation delay for serializing instructions
	RecoveryPenalty Cycle // pipeline flush + resync after fingerprint mismatch
	// MachineCheckPenalty is charged when squash-and-retry cannot clear
	// a persistent fingerprint divergence and the pair escalates to a
	// machine check (trap to system software, TLB shootdown, restart).
	MachineCheckPenalty Cycle

	// Protection Assistance Buffer
	PABEntries   int   // 128 in the paper
	PABSerial    bool  // serial (2-cycle) vs parallel lookup
	PABSerialLat Cycle // store write-through delay when serial

	// Mode transitions
	VCPUStateBytes int // ~2.3 KB for SPARC
	FlushPerCycle  int // L2 lines inspected per cycle when flushing (1)
	// ScratchLat is the access latency of the on-chip scratchpad space
	// that stages VCPU state during mode transitions (pinned L3 ways).
	ScratchLat Cycle

	// Scheduling
	TimesliceCycles Cycle // gang-scheduling timeslice, 1 ms = 3 M cycles

	// Memory system size
	PhysMemBytes uint64
	PageBytes    int // 8 KB pages (SPARC)
}

// DefaultConfig returns the paper's target multicore configuration.
func DefaultConfig() *Config {
	return &Config{
		Cores:       16,
		ClockGHz:    3.0,
		IssueWidth:  2,
		CommitWidth: 2,
		FetchWidth:  2,
		WindowSize:  128,
		LoadQueue:   32,
		StoreQueue:  32,

		PipelineStages:    8,
		MispredictPenalty: 10,

		TSO:                false,
		StoreBufferEntries: 16,

		LineSize:           64,
		L1Size:             16 * 1024,
		L1Ways:             2,
		L1HitLat:           2,
		L2Size:             512 * 1024,
		L2Ways:             4,
		L2HitLat:           10,
		L3Size:             8 * 1024 * 1024,
		L3Ways:             16,
		L3Banks:            16,
		L3HitLat:           55,
		L3PortBusy:         4,
		MemLat:             310,
		MemBWBytesPerCycle: 40.0 / 3.0, // 40 GB/s at 3 GHz
		DirLat:             10,

		NetHopLat: 10,

		TLBEntries: 1024,
		TLBFillLat: 25,

		FingerprintLat:      10,
		SerializeFPLat:      30,
		RecoveryPenalty:     200,
		MachineCheckPenalty: 2_000,

		PABEntries:   128,
		PABSerial:    false,
		PABSerialLat: 2,

		VCPUStateBytes: 2304, // ~2.3 KB
		FlushPerCycle:  1,
		ScratchLat:     40,

		TimesliceCycles: 3_000_000,

		PhysMemBytes: 4 << 30,
		PageBytes:    8 * 1024,
	}
}

// Lines returns the number of cache lines for a cache of size bytes.
func (c *Config) Lines(size int) int { return size / c.LineSize }

// L2Lines is the number of lines in one private L2 (8192 by default,
// which sets the ~8k-cycle line-by-line flush cost in Table 1).
func (c *Config) L2Lines() int { return c.Lines(c.L2Size) }

// VCPUStateLines is the number of cache lines occupied by one VCPU's
// architectural state when saved to the scratchpad space.
func (c *Config) VCPUStateLines() int {
	return (c.VCPUStateBytes + c.LineSize - 1) / c.LineSize
}

// Validate reports a non-nil error description if the configuration is
// internally inconsistent.
func (c *Config) Validate() error {
	switch {
	case c.Cores <= 0 || c.Cores%2 != 0:
		return errConfig("Cores must be positive and even (DMR pairs)")
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return errConfig("LineSize must be a power of two")
	case c.L1Size%(c.LineSize*c.L1Ways) != 0:
		return errConfig("L1 geometry does not divide into sets")
	case c.L2Size%(c.LineSize*c.L2Ways) != 0:
		return errConfig("L2 geometry does not divide into sets")
	case c.L3Size%(c.LineSize*c.L3Ways) != 0:
		return errConfig("L3 geometry does not divide into sets")
	case c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0:
		return errConfig("PageBytes must be a power of two")
	case c.WindowSize <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return errConfig("pipeline widths must be positive")
	case c.FlushPerCycle <= 0:
		return errConfig("FlushPerCycle must be positive")
	}
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "sim: invalid config: " + string(e) }
