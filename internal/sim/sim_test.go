package sim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 10_000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("generators with the same seed diverged at step %d", i)
		}
	}
}

func TestRandSnapshotRestore(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 100; i++ {
		r.Next()
	}
	snap := r.Snapshot()
	want := make([]uint64, 50)
	for i := range want {
		want[i] = r.Next()
	}
	r.Restore(snap)
	for i := range want {
		if got := r.Next(); got != want[i] {
			t.Fatalf("restored stream diverged at %d: got %d want %d", i, got, want[i])
		}
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(1)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 100_000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(5)
	const buckets = 16
	var counts [buckets]int
	const n = 160_000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		// Each bucket expects n/buckets = 10000; allow 5%.
		if c < 9500 || c > 10500 {
			t.Fatalf("bucket %d has %d hits, expected ~10000", b, c)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRand(9)
	for _, mean := range []float64{2, 10, 1000, 50_000} {
		sum := 0.0
		const n = 20_000
		for i := 0; i < n; i++ {
			sum += float64(r.Geometric(mean))
		}
		got := sum / n
		if got < mean*0.9 || got > mean*1.1 {
			t.Errorf("Geometric(%v) sample mean %v, want within 10%%", mean, got)
		}
	}
}

func TestGeometricMinimum(t *testing.T) {
	r := NewRand(2)
	for i := 0; i < 10_000; i++ {
		if k := r.Geometric(1.5); k < 1 {
			t.Fatalf("Geometric returned %d < 1", k)
		}
	}
	if k := r.Geometric(0.5); k != 1 {
		t.Fatalf("Geometric with mean <= 1 should return 1, got %d", k)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	var got []int
	q.Schedule(30, func(Cycle) { got = append(got, 3) })
	q.Schedule(10, func(Cycle) { got = append(got, 1) })
	q.Schedule(20, func(Cycle) { got = append(got, 2) })
	q.Schedule(10, func(Cycle) { got = append(got, 11) }) // same cycle: FIFO
	q.RunUntil(25)
	if len(got) != 3 || got[0] != 1 || got[1] != 11 || got[2] != 2 {
		t.Fatalf("wrong event order: %v", got)
	}
	if next, ok := q.NextCycle(); !ok || next != 30 {
		t.Fatalf("expected event pending at 30, got %v %v", next, ok)
	}
	q.RunUntil(100)
	if q.Len() != 0 {
		t.Fatalf("queue should be empty")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.L2Lines() != 8192 {
		t.Fatalf("expected 8192 L2 lines (512KB / 64B), got %d", cfg.L2Lines())
	}
	if got := cfg.VCPUStateLines(); got != 36 {
		t.Fatalf("expected 36 VCPU state lines (2304B), got %d", got)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Cores = 3 },
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.LineSize = 48 },
		func(c *Config) { c.PageBytes = 3000 },
		func(c *Config) { c.WindowSize = 0 },
		func(c *Config) { c.FlushPerCycle = 0 },
	}
	for i, mut := range cases {
		cfg := DefaultConfig()
		mut(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestStreamCheckPinned pins the RNG stream digest that the
// distributed campaign protocol exchanges at attach time. If this
// test fails, the generator or DeriveSeed changed semantics: that is
// allowed, but it invalidates every cached campaign result — bump
// campaign.SpecVersion in the same change, then update the constant
// here. (The protocol token already folds SpecVersion in, so a
// correctly-bumped build pairs only with its own kind.)
func TestStreamCheckPinned(t *testing.T) {
	const pinned = "0c8267d67d3fbdce"
	if got := StreamCheck(); got != pinned {
		t.Fatalf("StreamCheck() = %q, want %q — RNG stream semantics changed; bump campaign.SpecVersion and repin", got, pinned)
	}
	if StreamCheck() != StreamCheck() {
		t.Fatal("StreamCheck not stable across calls")
	}
}
