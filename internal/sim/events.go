package sim

import "container/heap"

// Cycle is a point in simulated time, measured in processor clock
// cycles (the target chip runs at 3 GHz, so 3e6 cycles = 1 ms).
type Cycle = uint64

// Never is the event horizon of a source with nothing scheduled: later
// than any reachable simulation cycle. Event-driven run loops compare
// against it to skip consulting an inert source.
const Never = ^Cycle(0)

// Event is a callback scheduled to run at a particular cycle.
type Event struct {
	When Cycle
	Fn   func(now Cycle)
	seq  uint64 // tie-break so same-cycle events run in schedule order
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// EventQueue is a deterministic discrete event queue. Events scheduled
// for the same cycle fire in the order they were scheduled.
type EventQueue struct {
	h   eventHeap
	seq uint64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Schedule registers fn to run at cycle when.
func (q *EventQueue) Schedule(when Cycle, fn func(now Cycle)) {
	q.seq++
	heap.Push(&q.h, &Event{When: when, Fn: fn, seq: q.seq})
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// NextCycle returns the cycle of the earliest pending event, or ok=false
// if the queue is empty.
func (q *EventQueue) NextCycle() (Cycle, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].When, true
}

// RunUntil fires, in order, every event scheduled at or before cycle now.
func (q *EventQueue) RunUntil(now Cycle) {
	for len(q.h) > 0 && q.h[0].When <= now {
		e := heap.Pop(&q.h).(*Event)
		e.Fn(e.When)
	}
}
