// Package sim provides the simulation kernel shared by every other
// module in this repository: the cycle clock, a deterministic
// pseudo-random number generator, a discrete event queue, and the chip
// configuration corresponding to the target multicore of the paper
// (Wells, Chakraborty, Sohi, "Mixed-Mode Multicore Reliability",
// ASPLOS 2009, Section 4.1).
package sim

import (
	"fmt"
	"math"
)

// Rand is a small, fast, deterministic PRNG (splitmix64). Determinism
// matters: the vocal and the mute core of a Reunion pair must observe
// bit-identical instruction streams, which requires that two generators
// seeded identically produce identical sequences forever. Rand is not
// safe for concurrent use; every simulated agent owns its own Rand.
type Rand struct {
	state uint64

	// Geometric denominator memo: math.Log(1-1/mean) is a pure function
	// of the mean, and each caller samples from at most a couple of
	// fixed means (dependency distance, fetch-line run, fault interval),
	// so two slots avoid recomputing the log on every sample. Purely a
	// cache — identical inputs yield bit-identical samples.
	geoMean [2]float64
	geoLogQ [2]float64
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce the same sequence.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed + 0x9e3779b97f4a7c15}
}

// Snapshot returns the internal state so a caller can checkpoint the
// generator (used by recovery and replay logic).
func (r *Rand) Snapshot() uint64 { return r.state }

// Restore rewinds the generator to a state captured by Snapshot.
func (r *Rand) Restore(s uint64) { r.state = s }

// Next returns the next 64 uniformly distributed bits.
func (r *Rand) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). n must be positive.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Next() % n
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Around returns a sample uniform in [mean/2, 3*mean/2): a bounded
// jitter around mean. Phase lengths use this rather than a geometric
// distribution so that run-to-run variance at realistic simulation
// lengths stays small (the paper smooths its heavy-tailed phases over
// 100M-cycle runs; our windows are shorter).
func (r *Rand) Around(mean float64) int {
	if mean <= 1 {
		return 1
	}
	m := uint64(mean)
	v := m/2 + r.Uint64n(m+1)
	if v < 1 {
		v = 1
	}
	return int(v)
}

// DeriveSeed deterministically derives an independent stream seed from
// a base seed and a sequence of labels. Campaign jobs use it so that
// every (workload, kind, variant) cell of a sweep observes its own
// decorrelated random stream even when the declared seed is shared:
// the labels are folded in FNV-1a style and the result is pushed
// through the splitmix64 finalizer so nearby inputs land far apart.
func DeriveSeed(base uint64, labels ...string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h = (h ^ (base >> (8 * i) & 0xff)) * prime
	}
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h = (h ^ uint64(l[i])) * prime
		}
		h = (h ^ 0x1f) * prime // label separator
	}
	// splitmix64 finalizer
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// StreamCheck digests the opening of the canonical derived random
// stream into a short hex token. Two builds that disagree on either
// DeriveSeed or the generator itself — and would therefore simulate
// different chips from the same declared seed — disagree on this token.
// The distributed campaign protocol exchanges it at attach time so a
// coordinator never leases jobs to a worker running an incompatible
// simulator, which would silently break the byte-identical determinism
// guarantee of sharded campaigns.
func StreamCheck() string {
	r := NewRand(DeriveSeed(0x6d6d6d, "stream-check"))
	var h uint64
	for i := 0; i < 16; i++ {
		h = h*0x100000001b3 + r.Next()
	}
	return fmt.Sprintf("%016x", h)
}

// Geometric returns a sample from a geometric distribution with the
// given mean (at least 1). It is used for phase lengths and dependency
// distances, which the paper's workloads exhibit as heavy-tailed
// interleavings.
func (r *Rand) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	u := r.Float64()
	if u >= 1 {
		u = 0.999999999
	}
	// Inverse-CDF sampling: P(X = k) = p(1-p)^(k-1) with p = 1/mean.
	// The denominator log(1-p) depends only on the mean; serve it from
	// the two-slot memo (slot 0 holds the most recent mean).
	var logq float64
	switch mean {
	case r.geoMean[0]:
		logq = r.geoLogQ[0]
	case r.geoMean[1]:
		logq = r.geoLogQ[1]
		r.geoMean[0], r.geoMean[1] = r.geoMean[1], r.geoMean[0]
		r.geoLogQ[0], r.geoLogQ[1] = r.geoLogQ[1], r.geoLogQ[0]
	default:
		p := 1 / mean
		logq = math.Log(1 - p)
		r.geoMean[1] = r.geoMean[0]
		r.geoLogQ[1] = r.geoLogQ[0]
		r.geoMean[0] = mean
		r.geoLogQ[0] = logq
	}
	k := int(math.Ceil(math.Log(1-u) / logq))
	if k < 1 {
		k = 1
	}
	return k
}
