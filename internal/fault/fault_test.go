package fault

import (
	"testing"
)

// mockTarget records injections.
type mockTarget struct {
	cores   int
	results int
	tlbs    int
	privs   int
	tlbOK   bool
	privOK  bool
}

func (m *mockTarget) NumCores() int { return m.cores }
func (m *mockTarget) CorruptResult(core int, mask uint64) {
	if core < 0 || core >= m.cores || mask == 0 {
		panic("bad injection")
	}
	m.results++
}
func (m *mockTarget) CorruptTLB(core int, bit uint) bool {
	m.tlbs++
	return m.tlbOK
}
func (m *mockTarget) CorruptPrivReg(core, reg int, bit uint) (int, bool) {
	m.privs++
	if !m.privOK {
		return -1, false
	}
	return core, true
}

func TestInjectionRate(t *testing.T) {
	inj := NewInjector(Plan{MeanInterval: 1000, Seed: 3})
	tg := &mockTarget{cores: 16, tlbOK: true, privOK: true}
	for now := uint64(0); now < 1_000_000; now += 10 {
		inj.Tick(now, tg)
	}
	total := inj.Total()
	// Expect ~1000 injections; allow wide tolerance.
	if total < 600 || total > 1600 {
		t.Fatalf("injected %d faults over 1M cycles at mean interval 1000", total)
	}
	if len(inj.Injected) == 0 {
		t.Fatal("no kinds recorded")
	}
}

func TestKindRestriction(t *testing.T) {
	inj := NewInjector(Plan{MeanInterval: 100, Seed: 5, Kinds: []Kind{ResultFlip}})
	tg := &mockTarget{cores: 4}
	for now := uint64(0); now < 100_000; now++ {
		inj.Tick(now, tg)
	}
	if tg.tlbs != 0 || tg.privs != 0 {
		t.Fatal("restricted plan injected other kinds")
	}
	if tg.results == 0 {
		t.Fatal("no result flips injected")
	}
}

func TestMissesCounted(t *testing.T) {
	inj := NewInjector(Plan{MeanInterval: 50, Seed: 7, Kinds: []Kind{TLBFlip, PrivRegFlip}})
	tg := &mockTarget{cores: 4} // both injection surfaces refuse
	for now := uint64(0); now < 50_000; now++ {
		inj.Tick(now, tg)
	}
	if inj.Misses == 0 {
		t.Fatal("refused injections not counted as misses")
	}
	if inj.Total() != 0 {
		t.Fatal("refused injections counted as injected")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, int, int) {
		inj := NewInjector(Plan{MeanInterval: 500, Seed: 42})
		tg := &mockTarget{cores: 8, tlbOK: true, privOK: true}
		for now := uint64(0); now < 200_000; now++ {
			inj.Tick(now, tg)
		}
		return tg.results, tg.tlbs, tg.privs
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatal("fault campaign not reproducible")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{ResultFlip, TLBFlip, PrivRegFlip} {
		if k.String() == "?" {
			t.Fatalf("kind %d unnamed", k)
		}
		rt, err := KindByName(k.String())
		if err != nil || rt != k {
			t.Fatalf("KindByName(%q) = %v, %v", k.String(), rt, err)
		}
	}
	if _, err := KindByName("meteor-strike"); err == nil {
		t.Fatal("unknown kind name accepted")
	}
}

// TestTinyMeanIntervalAdvances is the livelock regression test: with a
// sub-cycle mean interval every sampled gap must still clamp to at
// least one cycle, so Tick's catch-up loop terminates and fires at
// most one fault per elapsed cycle.
func TestTinyMeanIntervalAdvances(t *testing.T) {
	for _, mean := range []float64{0, 1e-9, 0.5, 1} {
		inj := NewInjector(Plan{MeanInterval: mean, Seed: 3})
		tg := &mockTarget{cores: 4, tlbOK: true, privOK: true}
		const horizon = 5_000
		for now := uint64(0); now < horizon; now++ {
			inj.Tick(now, tg)
		}
		if got := uint64(len(inj.Log)); got > horizon {
			t.Fatalf("mean %g: %d attempts over %d cycles (interval collapsed below 1)", mean, got, horizon)
		}
		if inj.Total() == 0 {
			t.Fatalf("mean %g: no faults fired", mean)
		}
	}
}

// TestInjectionLogDeterminism: the same Plan.Seed must produce a
// byte-identical injection log (kind/core/cycle sequence), the
// property outcome attribution and campaign caching rely on.
func TestInjectionLogDeterminism(t *testing.T) {
	run := func() []Injection {
		inj := NewInjector(Plan{MeanInterval: 500, Seed: 42})
		tg := &mockTarget{cores: 8, tlbOK: true, privOK: true}
		for now := uint64(0); now < 100_000; now++ {
			inj.Tick(now, tg)
		}
		return inj.Log
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty log")
	}
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %d vs %d", len(a), len(b))
	}
	var prev uint64
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("log entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, a[i].Seq)
		}
		if a[i].Cycle < prev {
			t.Fatalf("entry %d goes backwards: %d < %d", i, a[i].Cycle, prev)
		}
		prev = a[i].Cycle
	}
}

// TestCoreTargeting: Plan.Cores restricts every injection to the
// listed victim cores.
func TestCoreTargeting(t *testing.T) {
	inj := NewInjector(Plan{MeanInterval: 100, Seed: 9, Cores: []int{3, 5}})
	tg := &mockTarget{cores: 16, tlbOK: true, privOK: true}
	for now := uint64(0); now < 50_000; now++ {
		inj.Tick(now, tg)
	}
	if len(inj.Log) == 0 {
		t.Fatal("nothing injected")
	}
	for _, in := range inj.Log {
		if in.Core != 3 && in.Core != 5 {
			t.Fatalf("injection on untargeted core %d", in.Core)
		}
	}
}

// TestMaxFaultsBoundsCampaign: a bounded plan stops after exactly
// MaxFaults successful injections.
func TestMaxFaultsBoundsCampaign(t *testing.T) {
	inj := NewInjector(Plan{MeanInterval: 50, Seed: 5, MaxFaults: 7})
	tg := &mockTarget{cores: 4, tlbOK: true, privOK: true}
	for now := uint64(0); now < 100_000; now++ {
		inj.Tick(now, tg)
	}
	if inj.Total() != 7 {
		t.Fatalf("injected %d faults, want exactly 7", inj.Total())
	}
	if !inj.Done() {
		t.Fatal("bounded campaign not done")
	}
}

// TestRebaseDefersFirstFault: Rebase must push the next fault past the
// rebase point so a mid-run installation does not fire a backlog
// burst.
func TestRebaseDefersFirstFault(t *testing.T) {
	inj := NewInjector(Plan{MeanInterval: 100, Seed: 11})
	inj.Rebase(10_000)
	tg := &mockTarget{cores: 4, tlbOK: true, privOK: true}
	inj.Tick(10_000, tg)
	if len(inj.Log) != 0 {
		t.Fatalf("fault fired at the rebase cycle itself: %+v", inj.Log)
	}
	for now := uint64(10_000); now < 12_000; now++ {
		inj.Tick(now, tg)
	}
	if len(inj.Log) == 0 {
		t.Fatal("no faults after rebase")
	}
	if first := inj.Log[0].Cycle; first <= 10_000 {
		t.Fatalf("first fault at %d, want after the rebase point", first)
	}
}
