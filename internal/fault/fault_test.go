package fault

import (
	"testing"
)

// mockTarget records injections.
type mockTarget struct {
	cores   int
	results int
	tlbs    int
	privs   int
	tlbOK   bool
	privOK  bool
}

func (m *mockTarget) NumCores() int { return m.cores }
func (m *mockTarget) CorruptResult(core int, mask uint64) {
	if core < 0 || core >= m.cores || mask == 0 {
		panic("bad injection")
	}
	m.results++
}
func (m *mockTarget) CorruptTLB(core int, bit uint) bool {
	m.tlbs++
	return m.tlbOK
}
func (m *mockTarget) CorruptPrivReg(core, reg int, bit uint) bool {
	m.privs++
	return m.privOK
}

func TestInjectionRate(t *testing.T) {
	inj := NewInjector(Plan{MeanInterval: 1000, Seed: 3})
	tg := &mockTarget{cores: 16, tlbOK: true, privOK: true}
	for now := uint64(0); now < 1_000_000; now += 10 {
		inj.Tick(now, tg)
	}
	total := inj.Total()
	// Expect ~1000 injections; allow wide tolerance.
	if total < 600 || total > 1600 {
		t.Fatalf("injected %d faults over 1M cycles at mean interval 1000", total)
	}
	if len(inj.Injected) == 0 {
		t.Fatal("no kinds recorded")
	}
}

func TestKindRestriction(t *testing.T) {
	inj := NewInjector(Plan{MeanInterval: 100, Seed: 5, Kinds: []Kind{ResultFlip}})
	tg := &mockTarget{cores: 4}
	for now := uint64(0); now < 100_000; now++ {
		inj.Tick(now, tg)
	}
	if tg.tlbs != 0 || tg.privs != 0 {
		t.Fatal("restricted plan injected other kinds")
	}
	if tg.results == 0 {
		t.Fatal("no result flips injected")
	}
}

func TestMissesCounted(t *testing.T) {
	inj := NewInjector(Plan{MeanInterval: 50, Seed: 7, Kinds: []Kind{TLBFlip, PrivRegFlip}})
	tg := &mockTarget{cores: 4} // both injection surfaces refuse
	for now := uint64(0); now < 50_000; now++ {
		inj.Tick(now, tg)
	}
	if inj.Misses == 0 {
		t.Fatal("refused injections not counted as misses")
	}
	if inj.Total() != 0 {
		t.Fatal("refused injections counted as injected")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, int, int) {
		inj := NewInjector(Plan{MeanInterval: 500, Seed: 42})
		tg := &mockTarget{cores: 8, tlbOK: true, privOK: true}
		for now := uint64(0); now < 200_000; now++ {
			inj.Tick(now, tg)
		}
		return tg.results, tg.tlbs, tg.privs
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatal("fault campaign not reproducible")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{ResultFlip, TLBFlip, PrivRegFlip} {
		if k.String() == "?" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}
