// Package fault injects hardware faults into the simulated chip and
// keeps score of what was detected, corrected, prevented, or silently
// corrupted. The three injected manifestations cover the fault classes
// the paper's protection mechanisms target:
//
//   - execution-result corruption: caught by Reunion's fingerprint
//     comparison when the core runs in DMR mode;
//   - TLB array corruption (a flipped physical-page bit): the class
//     that lets even correct software write physical addresses it does
//     not own — caught by the PAB when the core runs in performance
//     mode;
//   - privileged-register corruption during performance mode: caught by
//     the mute's redundant copy verification on Enter-DMR.
//
// Every injection attempt is recorded in an ordered log so downstream
// evaluation (internal/relia) can attribute protection-mechanism events
// back to individual faults and classify each one's outcome.
package fault

import (
	"fmt"

	"repro/internal/sim"
)

// Kind is a fault manifestation: which hardware structure the fault
// corrupts.
type Kind uint8

const (
	// ResultFlip flips a bit in an instruction's execution result.
	ResultFlip Kind = iota
	// TLBFlip flips a bit of a cached translation's physical page.
	TLBFlip
	// PrivRegFlip flips a bit in a privileged register.
	PrivRegFlip
)

// AllKinds lists every manifestation in canonical order.
func AllKinds() []Kind { return []Kind{ResultFlip, TLBFlip, PrivRegFlip} }

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ResultFlip:
		return "result-flip"
	case TLBFlip:
		return "tlb-flip"
	case PrivRegFlip:
		return "privreg-flip"
	default:
		return "?"
	}
}

// KindByName resolves a canonical kind name ("result-flip", "tlb-flip",
// "privreg-flip").
func KindByName(name string) (Kind, error) {
	for _, k := range AllKinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", name)
}

// Target is the chip surface the injector corrupts. It is implemented
// by the core (MMM) package.
type Target interface {
	// NumCores returns the number of physical cores.
	NumCores() int
	// CorruptResult arranges for the next instruction executed on core
	// to produce a flipped result.
	CorruptResult(core int, mask uint64)
	// CorruptTLB flips a bit in a live TLB translation on core,
	// returning false if the core had no suitable entry.
	CorruptTLB(core int, bit uint) bool
	// CorruptPrivReg flips a bit in a privileged register of the VCPU
	// currently running on core, returning the victim VCPU's id, or
	// ok=false if the core is idle or protected.
	CorruptPrivReg(core int, reg int, bit uint) (vcpu int, ok bool)
}

// Plan configures an injection campaign.
type Plan struct {
	// MeanInterval is the mean number of cycles between faults
	// (exponentially distributed).
	MeanInterval float64
	// Kinds enables specific manifestations; empty enables all.
	Kinds []Kind
	// Cores restricts injection to the listed physical cores
	// (per-structure targeting of one core's pipeline/TLB/register
	// file); empty targets all cores.
	Cores []int
	// MaxFaults, when positive, stops the campaign after that many
	// successful injections — the single-fault Monte Carlo trial mode.
	MaxFaults int
	// Seed makes the campaign reproducible.
	Seed uint64
}

// Injection is one recorded injection attempt, in campaign order.
type Injection struct {
	Seq   uint64    `json:"seq"` // 1-based attempt number
	Kind  Kind      `json:"kind"`
	Core  int       `json:"core"`
	Cycle sim.Cycle `json:"cycle"`
	Hit   bool      `json:"hit"`  // false: no viable target (miss)
	VCPU  int       `json:"vcpu"` // victim VCPU id (privreg flips), -1 otherwise
	Bit   uint      `json:"bit"`
}

// Injector drives a Plan against a Target.
type Injector struct {
	plan  Plan
	rng   *sim.Rand
	next  sim.Cycle
	kinds []Kind
	hits  int

	Injected map[Kind]uint64
	Misses   uint64 // injection attempts with no viable target

	// Log records every injection attempt in order. With a fixed Seed
	// the log is byte-identical across runs, which is what lets trial
	// outcomes be attributed to individual faults.
	Log []Injection
}

// NewInjector creates an injector; the first fault fires after one
// sampled interval.
func NewInjector(plan Plan) *Injector {
	if len(plan.Kinds) == 0 {
		plan.Kinds = AllKinds()
	}
	inj := &Injector{
		plan:     plan,
		rng:      sim.NewRand(plan.Seed ^ 0xfa017),
		kinds:    plan.Kinds,
		Injected: make(map[Kind]uint64),
	}
	inj.next = inj.step()
	return inj
}

// step samples the next inter-fault interval, clamped to at least one
// cycle so Tick's catch-up loop always advances (a sampled interval of
// zero would livelock the simulation at tiny MeanInterval values).
func (inj *Injector) step() sim.Cycle {
	d := inj.rng.Geometric(inj.plan.MeanInterval)
	if d < 1 {
		d = 1
	}
	return sim.Cycle(d)
}

// Rebase schedules the next fault one sampled interval after now.
// Callers that install an injector mid-run (e.g. after a fault-free
// warmup window) use it so the elapsed cycles do not fire as a burst
// of backlogged faults.
func (inj *Injector) Rebase(now sim.Cycle) {
	inj.next = now + inj.step()
}

// Done reports whether a bounded campaign has injected all its faults.
func (inj *Injector) Done() bool {
	return inj.plan.MaxFaults > 0 && inj.hits >= inj.plan.MaxFaults
}

// NextEventAt returns the cycle at which the next injection fires — the
// injector's event horizon: Tick is a no-op strictly before it, so a
// run loop may advance to it in bulk. A completed bounded campaign
// reports sim.Never.
func (inj *Injector) NextEventAt() sim.Cycle {
	if inj.Done() {
		return sim.Never
	}
	return inj.next
}

// Tick fires any due fault at the given cycle.
func (inj *Injector) Tick(now sim.Cycle, t Target) {
	for now >= inj.next {
		if inj.Done() {
			return
		}
		inj.inject(now, t)
		inj.next += inj.step()
	}
}

// pickCore selects the victim core from the plan's target set.
func (inj *Injector) pickCore(t Target) int {
	if len(inj.plan.Cores) > 0 {
		return inj.plan.Cores[inj.rng.Intn(len(inj.plan.Cores))]
	}
	return inj.rng.Intn(t.NumCores())
}

func (inj *Injector) inject(now sim.Cycle, t Target) {
	kind := inj.kinds[inj.rng.Intn(len(inj.kinds))]
	core := inj.pickCore(t)
	rec := Injection{
		Seq:   uint64(len(inj.Log) + 1),
		Kind:  kind,
		Core:  core,
		Cycle: now,
		VCPU:  -1,
	}
	switch kind {
	case ResultFlip:
		rec.Bit = uint(inj.rng.Intn(64))
		t.CorruptResult(core, uint64(1)<<rec.Bit)
		rec.Hit = true
	case TLBFlip:
		rec.Bit = uint(inj.rng.Intn(20))
		rec.Hit = t.CorruptTLB(core, rec.Bit)
	case PrivRegFlip:
		reg := inj.rng.Intn(64)
		rec.Bit = uint(inj.rng.Intn(64))
		rec.VCPU, rec.Hit = t.CorruptPrivReg(core, reg, rec.Bit)
		if !rec.Hit {
			rec.VCPU = -1
		}
	}
	if rec.Hit {
		inj.Injected[kind]++
		inj.hits++
	} else {
		inj.Misses++
	}
	inj.Log = append(inj.Log, rec)
}

// Total returns the number of injected faults.
func (inj *Injector) Total() uint64 {
	var n uint64
	for _, v := range inj.Injected {
		n += v
	}
	return n
}
