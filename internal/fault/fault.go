// Package fault injects hardware faults into the simulated chip and
// keeps score of what was detected, corrected, prevented, or silently
// corrupted. The three injected manifestations cover the fault classes
// the paper's protection mechanisms target:
//
//   - execution-result corruption: caught by Reunion's fingerprint
//     comparison when the core runs in DMR mode;
//   - TLB array corruption (a flipped physical-page bit): the class
//     that lets even correct software write physical addresses it does
//     not own — caught by the PAB when the core runs in performance
//     mode;
//   - privileged-register corruption during performance mode: caught by
//     the mute's redundant copy verification on Enter-DMR.
package fault

import "repro/internal/sim"

// Kind is a fault manifestation.
type Kind uint8

const (
	// ResultFlip flips a bit in an instruction's execution result.
	ResultFlip Kind = iota
	// TLBFlip flips a bit of a cached translation's physical page.
	TLBFlip
	// PrivRegFlip flips a bit in a privileged register.
	PrivRegFlip
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ResultFlip:
		return "result-flip"
	case TLBFlip:
		return "tlb-flip"
	case PrivRegFlip:
		return "privreg-flip"
	default:
		return "?"
	}
}

// Target is the chip surface the injector corrupts. It is implemented
// by the core (MMM) package.
type Target interface {
	// NumCores returns the number of physical cores.
	NumCores() int
	// CorruptResult arranges for the next instruction executed on core
	// to produce a flipped result.
	CorruptResult(core int, mask uint64)
	// CorruptTLB flips a bit in a live TLB translation on core,
	// returning false if the core had no suitable entry.
	CorruptTLB(core int, bit uint) bool
	// CorruptPrivReg flips a bit in a privileged register of the VCPU
	// currently running on core, returning false if the core is idle.
	CorruptPrivReg(core int, reg int, bit uint) bool
}

// Plan configures an injection campaign.
type Plan struct {
	// MeanInterval is the mean number of cycles between faults
	// (exponentially distributed).
	MeanInterval float64
	// Kinds enables specific manifestations; empty enables all.
	Kinds []Kind
	// Seed makes the campaign reproducible.
	Seed uint64
}

// Injector drives a Plan against a Target.
type Injector struct {
	plan  Plan
	rng   *sim.Rand
	next  sim.Cycle
	kinds []Kind

	Injected map[Kind]uint64
	Misses   uint64 // injection attempts with no viable target
}

// NewInjector creates an injector; the first fault fires after one
// sampled interval.
func NewInjector(plan Plan) *Injector {
	if len(plan.Kinds) == 0 {
		plan.Kinds = []Kind{ResultFlip, TLBFlip, PrivRegFlip}
	}
	inj := &Injector{
		plan:     plan,
		rng:      sim.NewRand(plan.Seed ^ 0xfa017),
		kinds:    plan.Kinds,
		Injected: make(map[Kind]uint64),
	}
	inj.next = sim.Cycle(inj.rng.Geometric(plan.MeanInterval))
	return inj
}

// Tick fires any due fault at the given cycle.
func (inj *Injector) Tick(now sim.Cycle, t Target) {
	for now >= inj.next {
		inj.inject(t)
		inj.next += sim.Cycle(inj.rng.Geometric(inj.plan.MeanInterval))
	}
}

func (inj *Injector) inject(t Target) {
	kind := inj.kinds[inj.rng.Intn(len(inj.kinds))]
	core := inj.rng.Intn(t.NumCores())
	switch kind {
	case ResultFlip:
		mask := uint64(1) << uint(inj.rng.Intn(64))
		t.CorruptResult(core, mask)
		inj.Injected[kind]++
	case TLBFlip:
		if t.CorruptTLB(core, uint(inj.rng.Intn(20))) {
			inj.Injected[kind]++
		} else {
			inj.Misses++
		}
	case PrivRegFlip:
		if t.CorruptPrivReg(core, inj.rng.Intn(64), uint(inj.rng.Intn(64))) {
			inj.Injected[kind]++
		} else {
			inj.Misses++
		}
	}
}

// Total returns the number of injected faults.
func (inj *Injector) Total() uint64 {
	var n uint64
	for _, v := range inj.Injected {
		n += v
	}
	return n
}
