package cpu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/paging"
	"repro/internal/sim"
)

// scriptSource feeds a fixed instruction sequence, then NOPs.
type scriptSource struct {
	insts []isa.Inst
	pos   int
	seq   uint64
	pc    uint64
}

func script(insts ...isa.Inst) *scriptSource {
	s := &scriptSource{insts: insts}
	for i := range s.insts {
		s.insts[i].Seq = uint64(i + 1)
		if s.insts[i].PC == 0 {
			s.insts[i].PC = 0x1000 + uint64(i)*4
		}
	}
	return s
}

func (s *scriptSource) at(i int) isa.Inst {
	if i < len(s.insts) {
		return s.insts[i]
	}
	return isa.Inst{
		Seq:    uint64(i + 1),
		PC:     0x1000 + uint64(i%64)*4, // 4-line loop: warms quickly
		Class:  isa.Nop,
		Result: uint64(i),
	}
}

func (s *scriptSource) Peek() isa.Inst { return s.at(s.pos) }
func (s *scriptSource) Next() isa.Inst {
	in := s.at(s.pos)
	s.pos++
	return in
}

func testRig(t testing.TB, cores int) (*sim.Config, *cache.Hierarchy, *paging.Space) {
	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	h := cache.New(cfg)
	pm := paging.NewPhysMap(256<<20, cfg.PageBytes)
	sp := paging.NewSpace(1, paging.DomainPerformance, 0, pm)
	sp.MapRegion("code", 0x1000&^8191, 16)
	sp.MapRegion("data", 0x2000_0000, 64)
	return cfg, h, sp
}

func run(c *Core, from, n sim.Cycle) sim.Cycle {
	for i := sim.Cycle(0); i < n; i++ {
		c.Tick(from + i)
	}
	return from + n
}

func TestALUThroughput(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	c := New(0, cfg, h)
	c.SetSpace(sp)
	c.SetSource(script()) // all NOPs on a tight loop of PCs
	run(c, 0, 5_000)      // warm the icache
	base := c.C.Commits
	run(c, 5_000, 20_000)
	ipc := float64(c.C.Commits-base) / 20_000
	// 2-wide with single-cycle ops and warm icache should approach the
	// commit width.
	if ipc < 1.2 {
		t.Fatalf("NOP IPC = %.2f, expected near 2", ipc)
	}
}

func TestDependencyStallsSerialize(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	// Chain of dependent divides: each depends on the previous one.
	var insts []isa.Inst
	for i := 0; i < 50; i++ {
		insts = append(insts, isa.Inst{Class: isa.Div, Dep: 1})
	}
	c := New(0, cfg, h)
	c.SetSpace(sp)
	c.SetSource(script(insts...))
	run(c, 0, 2000)
	// 50 dependent 12-cycle divides need >= 600 cycles; check the core
	// did not magically parallelize them: at cycle 300 fewer than half
	// should have committed.
	c2 := New(1, cfg, h)
	c2.SetSpace(sp)
	c2.SetSource(script(insts...))
	run(c2, 0, 300)
	if c2.C.Commits > 30 {
		t.Fatalf("dependent divides committed too fast: %d in 300 cycles", c2.C.Commits)
	}
}

func TestStoreHoldsCommit(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	insts := []isa.Inst{
		{Class: isa.Store, VA: 0x2000_0000},
		{Class: isa.ALU},
		{Class: isa.ALU},
	}
	c := New(0, cfg, h)
	c.SetSpace(sp)
	c.SetSource(script(insts...))
	run(c, 0, 15)
	// The cold store's ownership acquisition goes to memory (~350
	// cycles): nothing can have committed yet (in-order commit).
	if c.C.Commits != 0 {
		t.Fatalf("committed %d instructions behind a blocked store", c.C.Commits)
	}
	run(c, 15, 800)
	if c.C.Commits < 3 {
		t.Fatalf("store never completed: commits=%d", c.C.Commits)
	}
	if c.C.StoreCommitStall == 0 {
		t.Fatal("store commit stall not recorded")
	}
}

func TestSerializingInstructionStallsFetch(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	insts := []isa.Inst{
		{Class: isa.ALU},
		{Class: isa.Serializing},
		{Class: isa.ALU},
	}
	c := New(0, cfg, h)
	c.SetSpace(sp)
	c.SetSource(script(insts...))
	run(c, 0, 2000)
	if c.C.SerializingInsts != 1 {
		t.Fatalf("SI commits = %d", c.C.SerializingInsts)
	}
	if c.C.SIStallCycles == 0 {
		t.Fatal("SI fetch stall not recorded")
	}
}

func TestMispredictChargesRedirect(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	var insts []isa.Inst
	for i := 0; i < 40; i++ {
		insts = append(insts, isa.Inst{Class: isa.Branch, Taken: true, Misp: true})
	}
	c := New(0, cfg, h)
	c.SetSpace(sp)
	c.SetSource(script(insts...))
	run(c, 0, 3000)
	if c.C.Mispredicts < 30 {
		t.Fatalf("mispredicts = %d", c.C.Mispredicts)
	}
	if c.C.FetchStallCycles < 30*uint64(cfg.MispredictPenalty)/2 {
		t.Fatalf("redirect penalty not charged: fetch stalls = %d", c.C.FetchStallCycles)
	}
}

func TestTrapMarkersTrackPhase(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	insts := []isa.Inst{
		{Class: isa.ALU},
		{Class: isa.TrapEnter, Priv: true},
		{Class: isa.ALU, Priv: true},
		{Class: isa.TrapReturn, Priv: true},
		{Class: isa.ALU},
	}
	c := New(0, cfg, h)
	c.SetSpace(sp)
	c.SetSource(script(insts...))
	run(c, 0, 500)
	if c.C.TrapEntries != 1 || c.C.TrapReturns != 1 {
		t.Fatalf("traps = %d/%d", c.C.TrapEntries, c.C.TrapReturns)
	}
	if c.C.OSCommits != 2 { // TrapEnter counts at commit... Priv instructions
		t.Logf("OS commits = %d", c.C.OSCommits)
	}
	if c.InOS() {
		t.Fatal("phase should be user after TrapReturn")
	}
	if c.C.OSCycles == 0 || c.C.UserCycles == 0 {
		t.Fatal("phase cycles not accounted")
	}
}

func TestOnTrapEnterHoldsFetch(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	insts := []isa.Inst{
		{Class: isa.ALU},
		{Class: isa.TrapEnter, Priv: true},
		{Class: isa.ALU, Priv: true},
	}
	c := New(0, cfg, h)
	c.SetSpace(sp)
	c.SetSource(script(insts...))
	fired := 0
	c.OnTrapEnter = func(core *Core) bool {
		fired++
		return true
	}
	run(c, 0, 1500)
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1 (held afterwards)", fired)
	}
	if c.C.TrapEntries != 0 {
		t.Fatal("TrapEnter fetched despite hold")
	}
	if !c.Drained() {
		t.Fatal("window should drain during the hold")
	}
	// Resume with hook suppression: the trap proceeds.
	c.Resume(true)
	run(c, 1500, 1500)
	if c.C.TrapEntries != 1 {
		t.Fatal("TrapEnter did not commit after resume")
	}
	if fired != 1 {
		t.Fatal("hook re-fired for the suppressed trap")
	}
}

func TestOnTrapReturnFires(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	insts := []isa.Inst{
		{Class: isa.TrapEnter, Priv: true},
		{Class: isa.TrapReturn, Priv: true},
		{Class: isa.ALU},
	}
	c := New(0, cfg, h)
	c.SetSpace(sp)
	c.SetSource(script(insts...))
	fired := false
	c.OnTrapReturn = func(core *Core) bool {
		fired = true
		return true
	}
	run(c, 0, 500)
	if !fired {
		t.Fatal("OnTrapReturn never fired")
	}
	if c.C.Commits != 2 {
		t.Fatalf("commits = %d; fetch should hold after TrapReturn", c.C.Commits)
	}
}

func TestSetSourcePanicsWithWork(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	c := New(0, cfg, h)
	c.SetSpace(sp)
	var chain []isa.Inst
	for i := 0; i < 100; i++ {
		chain = append(chain, isa.Inst{Class: isa.Div, Dep: 1, PC: 0x1000})
	}
	c.SetSource(script(chain...))
	run(c, 0, 600)
	if c.Drained() {
		t.Skip("window drained; cannot exercise the panic")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetSource with in-flight work must panic")
		}
	}()
	c.SetSource(script())
}

func TestIdleCoreCountsIdle(t *testing.T) {
	cfg, h, _ := testRig(t, 2)
	c := New(0, cfg, h)
	run(c, 0, 100)
	if c.C.IdleCycles != 100 {
		t.Fatalf("idle cycles = %d", c.C.IdleCycles)
	}
}

func TestLSQLimitsFetch(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	cfg.StoreQueue = 4
	var insts []isa.Inst
	for i := 0; i < 64; i++ {
		insts = append(insts, isa.Inst{Class: isa.Store, VA: 0x2000_0000 + uint64(i)*8192})
	}
	c := New(0, cfg, h)
	c.SetSpace(sp)
	c.SetSource(script(insts...))
	run(c, 0, 50)
	if c.lsqStores > 4 {
		t.Fatalf("store queue exceeded: %d", c.lsqStores)
	}
}

func TestWindowOccupancyBounded(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	var insts []isa.Inst
	for i := 0; i < 3000; i++ {
		insts = append(insts, isa.Inst{Class: isa.Div, Dep: 1, PC: 0x1000 + uint64(i%16)*4})
	}
	c := New(0, cfg, h)
	c.SetSpace(sp)
	c.SetSource(script(insts...))
	for now := sim.Cycle(0); now < 30_000; now++ {
		c.Tick(now)
		if c.WindowOccupancy() > cfg.WindowSize {
			t.Fatal("window overflow")
		}
	}
	if c.C.WindowFullCycles == 0 {
		t.Fatal("window never filled behind dependent divides")
	}
}
