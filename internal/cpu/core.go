// Package cpu implements the out-of-order core timing model: a 2-wide,
// 128-entry-window pipeline with a 32-load/32-store queue, sequential
// consistency (stores hold their window slot until the write-through
// completes — the paper's largest single source of Reunion overhead),
// serializing instructions that drain the pipeline and stall fetch, a
// hardware-filled TLB, and an optional Check stage that gates commit on
// the partner core's fingerprint when Dual-Modular Redundancy is
// active.
package cpu

import (
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/paging"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Source supplies the dynamic instruction stream of the software thread
// scheduled on a core. Peek must return the same instruction that the
// following Next will consume.
type Source interface {
	Peek() isa.Inst
	Next() isa.Inst
}

// consumer is an optional Source extension: Consume advances the stream
// cursor past the instruction the preceding Peek returned, without
// copying it back out. Fetch always Peeks before consuming, so a source
// that implements it (trace.SideSource) saves one multi-word struct
// copy per fetched instruction on the hot path.
type consumer interface {
	Consume()
}

// Gate couples the two cores of a DMR pair at the Check stage. The core
// reports every completed instruction (Complete) and asks permission to
// commit (CommitReady); the gate implementation (package reunion)
// compares fingerprints and squashes both cores on a mismatch.
type Gate interface {
	Complete(side int, seq uint64, done sim.Cycle, fp uint64)
	CommitReady(side int, seq uint64, now sim.Cycle) (at sim.Cycle, ok bool)
}

// Check-stage sleep states reported by a gateSleeper's CheckSleep.
const (
	// CheckNoSleep: the wait's outcome cannot be predicted (or a
	// mismatch is pending); the core must keep polling CommitReady.
	CheckNoSleep = iota
	// CheckWaitPartner: the partner has not executed the instruction
	// yet. The gate registered the core for a wake call on the partner's
	// Complete, so the core may sleep with no deadline.
	CheckWaitPartner
	// CheckWaitRelease: both executions matched; the commit-release
	// cycle is known and poll-invariant. The core may sleep until it,
	// owing the gate one per-poll counter credit per slept cycle.
	CheckWaitRelease
)

// gateSleeper is an optional Gate extension that lets a core sleep
// through Check-stage waits instead of polling CommitReady every cycle.
type gateSleeper interface {
	// CheckSleep classifies the wait for seq without the counter side
	// effects of CommitReady. A CheckWaitPartner return registers the
	// core for a wake call when the partner completes seq.
	CheckSleep(side int, seq uint64) (at sim.Cycle, state int)
	// CreditWait replays the per-poll Check-stage counters for n slept
	// cycles of a CheckWaitRelease wait.
	CreditWait(n uint64)
}

// StoreGuard re-validates the permission of performance-mode stores
// before they reach the L2 — the Protection Assistance Buffer. It
// returns any extra latency (serial lookups, PAB miss refills) and
// whether the store violates the PAT and must raise an exception.
type StoreGuard interface {
	CheckStore(core int, pa uint64, now sim.Cycle) (extra sim.Cycle, fault bool)
}

// entry is one in-flight instruction in the window.
type entry struct {
	inst        isa.Inst
	pa          uint64
	issued      bool
	done        sim.Cycle
	storeIssued bool
	storeDone   sim.Cycle
	// prefetchDone is when the store's exclusive-ownership prefetch
	// (issued at execute, off the critical path) completes.
	prefetchDone sim.Cycle
}

// readyUnknown marks an entry whose producer has not issued yet, so its
// wake-up cycle cannot be cached.
const readyUnknown = ^sim.Cycle(0)

const (
	histSize  = 512 // completion history for dependency tracking
	scanDepth = 24  // max unissued entries examined per cycle
)

// Core is one physical core of the chip.
type Core struct {
	ID  int
	cfg *sim.Config

	hier  *cache.Hierarchy
	TLB   *paging.TLB
	Space *paging.Space

	src Source
	// srcConsume is src's optional Consume fast path (nil when the
	// source does not implement it), resolved once at SetSource.
	srcConsume consumer

	// Mode. A coherent core participates in the MOSI protocol; a mute
	// core (Coherent=false) uses the incoherent best-effort path. The
	// gate is non-nil exactly when the Check stage is active (DMR).
	coherent bool
	gate     Gate
	side     int
	guard    StoreGuard

	// Window (ring buffer) and scheduler state. The per-entry fields the
	// issue scan touches every cycle live in flat parallel arrays rather
	// than in the 80-byte entry struct: a scan over scanDepth blocked
	// entries then reads a few compact cache lines instead of one line
	// per entry.
	//
	// readyAts caches each entry's earliest issue cycle (0 when the
	// entry has no pending producer, the producer's completion cycle
	// once the producer has issued, readyUnknown while the producer sits
	// unissued — re-resolved each scan by readySlow). prodSeqs is the
	// producer sequence number readySlow resolves against, computed once
	// at insert. classes mirrors each entry's instruction class for the
	// serializing-instruction check.
	win      []entry
	readyAts []sim.Cycle
	prodSeqs []uint64
	classes  []isa.Class
	head     int
	count    int
	unissued []int
	histDone [histSize]sim.Cycle
	histSeq  [histSize]uint64

	lsqLoads  int
	lsqStores int

	// issueWakeAt sleeps the issue scan: set when a full scan issued
	// nothing and every blocked entry's earliest wake-up is known, so
	// re-scanning before that cycle is provably fruitless. Invalidated
	// by fetch (a new entry may be instantly ready) and by squashes.
	issueWakeAt sim.Cycle

	// sleepUntil sleeps the whole pipeline walk: armSleep sets it when,
	// at the end of a Tick, every stage is provably inert — commit
	// blocked on a known completion cycle, the issue scan asleep, fetch
	// stalled on a known or externally-released condition — so Tick can
	// replay the cycle's counter increments (the sleep* deltas below)
	// without running commit/issue/fetch at all. Any external mutation
	// of pipeline state (source/gate changes, holds, resumes, blocks,
	// squashes) clears it.
	sleepUntil sim.Cycle
	sleepFS    uint64 // per-cycle FetchStallCycles while asleep (0/1)
	sleepSI    uint64 // per-cycle SIStallCycles while asleep (0/1)
	sleepWF    uint64 // per-cycle WindowFullCycles while asleep (0/1)
	sleepSS    uint64 // per-cycle StoreCommitStall while asleep (0/1)
	sleepCW    uint64 // per-cycle CheckWaitCycles while asleep (0/1)
	// sleepCredit marks a CheckWaitRelease sleep: each slept cycle also
	// owes the gate one CommitReady poll's counter increments, settled
	// in bulk (sleepOwed → gateSleeper.CreditWait) when the sleep ends.
	sleepCredit bool
	sleepOwed   uint64

	// TSO store buffer: completion times of posted (committed but not
	// yet drained) stores. Empty and unused under SC.
	storeBuf []sim.Cycle

	fetchBlockedUntil sim.Cycle
	serializers       int // SIs (and trap markers) in flight: fetch stalls
	fetchHold         bool
	fetchBarrier      uint64 // stop fetching beyond this sequence number
	suppressTrapHook  bool

	curFetchLine uint64
	faultFlip    uint64 // XOR applied to the next executed result (fault injection)
	inOS         bool   // committed-phase tracking (user vs OS cycles, Table 2)

	// peeked caches the head-of-stream instruction across fetch attempts
	// so a cycle that stalls on a full load/store queue does not re-run
	// the stream's Peek path. Invalidated when the instruction is
	// consumed or the source changes; Peek is pure, so the cache can
	// never go stale otherwise.
	peeked  isa.Inst
	hasPeek bool

	// OnTrapEnter fires when a TrapEnter is about to be fetched;
	// returning true holds fetch (a mode transition is in progress and
	// the MMM layer will call Resume). OnTrapReturn fires right after
	// a TrapReturn commits, with the same contract.
	OnTrapEnter  func(c *Core) bool
	OnTrapReturn func(c *Core) bool

	// OnSilentFault fires when an injected result corruption lands on
	// an execution with no Check stage to compare it against — the
	// silent-data-corruption case reliability evaluation scores.
	OnSilentFault func(c *Core, now sim.Cycle)

	C stats.CoreCounters
}

// New creates a core wired to the shared memory hierarchy.
func New(id int, cfg *sim.Config, hier *cache.Hierarchy) *Core {
	return &Core{
		ID:       id,
		cfg:      cfg,
		hier:     hier,
		TLB:      paging.NewTLB(cfg.TLBEntries),
		coherent: true,
		win:      make([]entry, cfg.WindowSize),
		readyAts: make([]sim.Cycle, cfg.WindowSize),
		prodSeqs: make([]uint64, cfg.WindowSize),
		classes:  make([]isa.Class, cfg.WindowSize),
	}
}

// SetSource assigns the instruction stream (nil idles the core). The
// window must be drained first; scheduling layers guarantee this.
func (c *Core) SetSource(src Source) {
	if src != nil && c.count != 0 {
		panic("cpu: SetSource with non-empty window")
	}
	c.src = src
	c.srcConsume, _ = src.(consumer)
	c.curFetchLine = ^uint64(0)
	c.hasPeek = false
	c.wake()
}

// SetSpace assigns the active address space.
func (c *Core) SetSpace(s *paging.Space) { c.Space = s }

// SetGate enables (non-nil) or disables the DMR Check stage. side is
// the core's position in the pair (0 = vocal, 1 = mute).
func (c *Core) SetGate(g Gate, side int) {
	c.wake() // settle any Check-stage debt against the old gate
	c.gate = g
	c.side = side
}

// SetCoherent selects the coherent (vocal / performance-mode) or
// incoherent (mute) memory request path.
func (c *Core) SetCoherent(coherent bool) { c.coherent = coherent }

// Coherent reports the current request path.
func (c *Core) Coherent() bool { return c.coherent }

// SetGuard installs the store-permission checker (the PAB) used while
// the core runs in performance mode; nil removes it.
func (c *Core) SetGuard(g StoreGuard) {
	c.guard = g
	c.wake()
}

// Drained reports whether the window is empty (required before any
// mode transition or context switch).
func (c *Core) Drained() bool { return c.count == 0 }

// Idle reports whether the core has no work source.
func (c *Core) Idle() bool { return c.src == nil }

// HoldFetch stops instruction fetch (the window keeps draining).
func (c *Core) HoldFetch() {
	c.fetchHold = true
	c.wake()
}

// HoldFetchAfter lets fetch continue up to and including sequence
// number seq, then holds. The two cores of a DMR pair must drain to an
// agreed stream position: if both simply stopped fetching, the core
// that had fetched further could never commit (the Check stage would
// wait forever for partner executions that never happen).
func (c *Core) HoldFetchAfter(seq uint64) {
	c.wake()
	if seq == 0 {
		c.fetchHold = true
		return
	}
	c.fetchBarrier = seq
}

// Resume releases a fetch hold. If suppressHook is set, the next
// TrapEnter fetched will not re-fire OnTrapEnter (it is the very trap
// whose transition just completed).
func (c *Core) Resume(suppressHook bool) {
	c.fetchHold = false
	c.fetchBarrier = 0
	c.suppressTrapHook = suppressHook
	c.wake()
}

// BlockUntil stalls fetch until the given cycle (mode-transition
// latency charged to this core).
func (c *Core) BlockUntil(when sim.Cycle) {
	if when > c.fetchBlockedUntil {
		c.fetchBlockedUntil = when
	}
	// Extending the fetch block can change which stall counter a
	// sleeping cycle would charge; re-arm from the next full Tick.
	c.wake()
}

// InjectResultFault arranges for the next executed instruction's result
// to be XORed with mask, modeling a transient computation error.
func (c *Core) InjectResultFault(mask uint64) { c.faultFlip = mask }

// Squash flushes in-flight instructions with sequence number >= fromSeq
// (they re-execute from the window) and charges the recovery penalty.
// Committed state is never affected — that is the point of detecting at
// the Check stage. Older in-flight instructions already validated by
// the Check stage are left to commit normally.
func (c *Core) Squash(now sim.Cycle, fromSeq uint64) {
	for i := 0; i < c.count; i++ {
		idx := (c.head + i) % len(c.win)
		e := &c.win[idx]
		if e.inst.Seq < fromSeq {
			continue
		}
		if e.issued {
			h := e.inst.Seq % histSize
			if c.histSeq[h] == e.inst.Seq {
				c.histSeq[h] = ^uint64(0)
			}
		}
		e.issued = false
		e.storeIssued = false
		e.done = 0
		// A squashed producer re-executes with a new completion time, and
		// every dependent of a squashed producer is itself squashed (it is
		// younger), so dropping the cache here keeps readyAt consistent.
		c.readyAts[idx] = readyUnknown
	}
	// Rebuild the pending-issue list in program order.
	c.unissued = c.unissued[:0]
	for i := 0; i < c.count; i++ {
		idx := (c.head + i) % len(c.win)
		if !c.win[idx].issued {
			c.unissued = append(c.unissued, idx)
		}
	}
	c.issueWakeAt = 0 // re-executed entries change the scan set
	c.wake()
	c.BlockUntil(now + c.cfg.RecoveryPenalty)
	c.C.Recoveries++
}

// wake ends any armed pipeline sleep, settling Check-stage counter debt
// accumulated by a CheckWaitRelease sleep. It is called by every
// external event that could change what the sleeping pipeline would do
// (and by WakeCheck when the DMR partner completes a waited-on
// instruction); waking a core that could in fact have kept sleeping is
// always safe — a full Tick on a sleepable cycle performs exactly the
// increments the replay would have.
func (c *Core) wake() {
	c.sleepUntil = 0
	if c.sleepOwed != 0 {
		if gs, ok := c.gate.(gateSleeper); ok {
			gs.CreditWait(c.sleepOwed)
		}
		c.sleepOwed = 0
	}
}

// WakeCheck ends a Check-stage sleep early: the gate calls it when the
// partner completes the instruction the core is waiting on.
func (c *Core) WakeCheck() { c.wake() }

// SettleCheckDebt flushes Check-stage counter credits owed by an
// in-progress sleep without ending it, so an external reader (metrics
// collection, measurement reset) observes settled gate counters.
func (c *Core) SettleCheckDebt() {
	if c.sleepOwed != 0 {
		if gs, ok := c.gate.(gateSleeper); ok {
			gs.CreditWait(c.sleepOwed)
		}
		c.sleepOwed = 0
	}
}

// Tick advances the core by one cycle: commit, issue, fetch.
func (c *Core) Tick(now sim.Cycle) {
	c.C.Cycles++
	if c.src == nil {
		c.C.IdleCycles++
		return
	}
	if c.inOS {
		c.C.OSCycles++
	} else {
		c.C.UserCycles++
	}
	// Pipeline sleep: a previous full Tick proved (armSleep) that every
	// stage is inert until sleepUntil, so the cycle reduces to replaying
	// the same counter increments the full walk would make.
	if now < c.sleepUntil {
		c.C.FetchStallCycles += c.sleepFS
		c.C.SIStallCycles += c.sleepSI
		c.C.WindowFullCycles += c.sleepWF
		c.C.StoreCommitStall += c.sleepSS
		c.C.CheckWaitCycles += c.sleepCW
		if c.sleepCredit {
			c.sleepOwed++
		}
		return
	}
	if c.sleepOwed != 0 {
		// The sleep expired naturally: settle the Check-stage debt
		// before the live CommitReady polls resume.
		c.SettleCheckDebt()
	}
	// Fast path for a fully stalled core: the window is empty and fetch
	// cannot proceed (held for a mode transition, or blocked on a
	// redirect/transition latency). Nothing can commit, issue or fetch;
	// only the stall counter advances — exactly what the full pipeline
	// walk below would do, without the three calls.
	if c.count == 0 && (c.fetchHold || c.fetchBlockedUntil > now) {
		c.C.FetchStallCycles++
		return
	}
	c.commit(now)
	c.issue(now)
	c.fetch(now)
	c.armSleep(now)
}

// armSleep inspects the pipeline after a full Tick and, when every
// stage is provably inert for a span of cycles, arms the Tick-level
// sleep for that span. "Inert" means the stage takes the same early
// exit on every cycle of the span, mutating nothing but its stall
// counter: commit blocked on the head's known completion (or on an
// unissued head that the sleeping issue scan cannot execute), issue
// asleep on issueWakeAt, and fetch stalled on a hold, a known block
// cycle, in-flight serializers, or a full window/load-store queue.
// Cases whose next state transition depends on the DMR partner (Check
// stage waits) or mutates state per cycle (TSO buffer drain) never
// sleep. External events that could wake a stage early (Resume,
// BlockUntil, Squash, source/gate changes) clear sleepUntil.
func (c *Core) armSleep(now sim.Cycle) {
	if c.count == 0 {
		// Either fetch is progressing (no sleep) or the window is empty
		// and held, which the count==0 fast path in Tick already covers.
		return
	}
	wake := readyUnknown
	var fs, si, wf, ss, cw uint64
	credit := false
	// waker records that an external event is guaranteed to end the
	// sleep (the gate's wake on partner completion), which permits
	// arming with no deadline.
	waker := false
	// Commit: the head entry must stay blocked for the whole span.
	e := &c.win[c.head]
	switch {
	case !e.issued:
		// Only the (sleeping) issue scan can unblock it; the issue
		// check below guarantees a finite wake in that case.
	case e.done > now:
		wake = e.done
	case c.gate != nil:
		// Check stage. The gate classifies the wait without CommitReady's
		// per-poll counter effects; the replay reproduces them.
		gs, ok := c.gate.(gateSleeper)
		if !ok {
			return
		}
		at, state := gs.CheckSleep(c.side, e.inst.Seq)
		switch state {
		case CheckWaitPartner:
			cw = 1
			waker = true
		case CheckWaitRelease:
			if at <= now+1 {
				return
			}
			wake = at
			cw = 1
			credit = true
		default:
			return // mismatch pending: the live poll must squash
		}
	case e.inst.Class == isa.Store:
		if c.cfg.TSO || !e.storeIssued || e.storeDone <= now {
			return // per-cycle buffer drain, or progress next cycle
		}
		wake = e.storeDone
		ss = 1
	default:
		return // head is retirable: commit progresses next cycle
	}
	// Issue: the scan must be asleep (or have nothing to scan).
	if len(c.unissued) > 0 {
		if c.issueWakeAt <= now {
			return
		}
		if c.issueWakeAt < wake {
			wake = c.issueWakeAt
		}
	}
	// Fetch: must be stalled on a stable condition.
	switch {
	case c.fetchHold:
		fs = 1
	case c.fetchBlockedUntil > now:
		if c.fetchBlockedUntil < wake {
			wake = c.fetchBlockedUntil
		}
		fs = 1
	case c.serializers > 0:
		si = 1
	case c.count == len(c.win):
		wf = 1
	case c.fetchBarrier != 0 || !c.hasPeek:
		return
	case c.peeked.Class == isa.Load && c.lsqLoads >= c.cfg.LoadQueue:
		wf = 1
	case c.peeked.Class == isa.Store && c.lsqStores >= c.cfg.StoreQueue:
		wf = 1
	default:
		return // fetch can make progress next cycle
	}
	if wake == readyUnknown {
		if !waker {
			return // nothing bounds the sleep and nothing would end it
		}
	} else if wake <= now+1 {
		return
	}
	c.sleepUntil = wake
	c.sleepFS, c.sleepSI, c.sleepWF, c.sleepSS = fs, si, wf, ss
	c.sleepCW = cw
	c.sleepCredit = credit
}

// --- commit --------------------------------------------------------------

func (c *Core) commit(now sim.Cycle) {
	for n := 0; n < c.cfg.CommitWidth; n++ {
		if c.count == 0 {
			return
		}
		e := &c.win[c.head]
		if !e.issued || e.done > now {
			return
		}
		// Check stage: wait for the partner's fingerprint.
		if c.gate != nil {
			at, ok := c.gate.CommitReady(c.side, e.inst.Seq, now)
			if !ok || at > now {
				c.C.CheckWaitCycles++
				return
			}
			c.C.FingerprintChecks++
		}
		// Sequential consistency: the store performs its write-through
		// at commit and holds its window slot until the write is in
		// the cache. Under TSO the store retires into a store buffer
		// and drains in the background; commit blocks only when the
		// buffer is full.
		if e.inst.Class == isa.Store {
			if !e.storeIssued {
				c.issueStore(e, now)
			}
			if c.cfg.TSO {
				if !c.postStore(e.storeDone, now) {
					c.C.StoreCommitStall++
					return
				}
			} else if e.storeDone > now {
				c.C.StoreCommitStall++
				return
			}
		}
		c.retire(e, now)
	}
}

// postStore places a committed store's completion into the TSO store
// buffer, reporting false when the buffer is full (commit must wait).
func (c *Core) postStore(done, now sim.Cycle) bool {
	// Drain completed entries.
	kept := c.storeBuf[:0]
	for _, t := range c.storeBuf {
		if t > now {
			kept = append(kept, t)
		}
	}
	c.storeBuf = kept
	if len(c.storeBuf) >= c.cfg.StoreBufferEntries {
		return false
	}
	c.storeBuf = append(c.storeBuf, done)
	return true
}

// issueStore starts the write-through for the store at the head of the
// window, consulting the PAB first when in performance mode.
func (c *Core) issueStore(e *entry, now sim.Cycle) {
	e.storeIssued = true
	start := now
	if c.gate != nil {
		// Under Reunion the fingerprint interval closes at the store:
		// its address and value must be validated with the partner
		// before the write becomes globally visible, costing a
		// sync-request round trip on the fingerprint network per store
		// (this serialization is why sequential consistency is so
		// expensive for Reunion — Smolens reports 30% on average).
		start += 2 * c.cfg.FingerprintLat
	}
	if c.guard != nil {
		// The PAB re-validates every store a performance-mode core
		// emits — including a performance guest VM's own privileged
		// code, which also runs unprotected in consolidated mode.
		extra, fault := c.guard.CheckStore(c.ID, e.pa, now)
		start += extra
		if fault {
			// The PAB (or TLB) denied the store: an exception is
			// raised before corruption occurs and the write never
			// reaches the L2.
			c.C.PABExceptions++
			e.storeDone = start
			return
		}
	}
	// The line was (pre-)acquired in Modified state at execute. The
	// write-through begins once the permission check and any pending
	// ownership acquisition complete, then pays the L2 write latency.
	if e.prefetchDone > start {
		start = e.prefetchDone
	}
	e.storeDone = start + c.cfg.L2HitLat
	c.C.StoreLatCycles += e.storeDone - now
}

// retire removes the head instruction from the window and updates
// architectural counters.
func (c *Core) retire(e *entry, now sim.Cycle) {
	c.C.Commits++
	if e.inst.Priv {
		c.C.OSCommits++
	} else {
		c.C.UserCommits++
	}
	switch e.inst.Class {
	case isa.Load:
		c.lsqLoads--
		c.C.Loads++
	case isa.Store:
		c.lsqStores--
		c.C.Stores++
	case isa.Branch:
		c.C.Branches++
	case isa.Serializing:
		c.C.SerializingInsts++
		c.serializers--
	case isa.TrapEnter:
		c.C.TrapEntries++
		c.serializers--
		c.inOS = true
	case isa.TrapReturn:
		c.C.TrapReturns++
		c.serializers--
		c.inOS = false
	}
	cls := e.inst.Class
	c.head = (c.head + 1) % len(c.win)
	c.count--
	// The head moved: a serializer blocked behind it may have reached
	// the head, so a sleeping issue scan must take another look.
	c.issueWakeAt = 0
	if cls == isa.TrapReturn && c.OnTrapReturn != nil {
		if c.OnTrapReturn(c) {
			c.fetchHold = true
		}
	}
}

// --- issue ---------------------------------------------------------------

func (c *Core) issue(now sim.Cycle) {
	n := len(c.unissued)
	if n == 0 {
		return
	}
	if c.issueWakeAt > now {
		// A previous scan proved nothing can issue before issueWakeAt
		// and no fetch or squash has touched the scan set since.
		return
	}
	limit := n
	if limit > scanDepth {
		limit = scanDepth
	}
	width := c.cfg.IssueWidth
	minWake := readyUnknown
	// The window head cannot move during issue (commit ran already), so
	// the committed-producer check in readySlow resolves against one
	// hoisted sequence number for the whole scan.
	oldest := c.win[c.head].inst.Seq
	issued, w, i := 0, 0, 0
	for ; i < limit; i++ {
		idx := c.unissued[i]
		// Readiness fast path (the memoized wake-up cycle, kept in a
		// flat array so a blocked scan touches compact memory, not one
		// entry struct per element); readySlow resolves entries whose
		// producer had not issued at the last look.
		ra := c.readyAts[idx]
		if ra > now {
			if ra == readyUnknown && c.readySlow(idx, oldest, now) {
				goto issuable
			}
			// Blocked. An entry waiting on an unissued producer keeps
			// readyAt == readyUnknown, which cannot lower minWake — and
			// needs no wake of its own: its producer sits earlier in
			// this same scan set, so it cannot issue before minWake
			// either.
			if ra = c.readyAts[idx]; ra < minWake {
				minWake = ra
			}
			if w < i {
				c.unissued[w] = idx
			}
			w++
			continue
		}
	issuable:
		// Serializing instructions (and trap markers) execute only
		// from the head of a drained window. The head only moves when
		// retire runs, and retire re-opens the scan (clears
		// issueWakeAt), so a blocked serializer does not forbid
		// sleeping: nothing about it can change while the scan sleeps.
		if serializes(c.classes[idx]) && idx != c.head {
			if w < i {
				c.unissued[w] = idx
			}
			w++
			continue
		}
		c.execute(&c.win[idx], now)
		if issued++; issued >= width {
			i++
			break
		}
	}
	if i == w {
		// Nothing issued: the pending list is untouched. Sleep the scan
		// until the earliest known wake-up. When no blocked entry has a
		// known wake (all wait on unissued producers or on reaching the
		// head), the scan sleeps indefinitely: the only events that can
		// change its outcome — a fetch, a squash, or the head advancing —
		// all clear issueWakeAt.
		c.issueWakeAt = minWake
		return
	}
	// Close the gaps left by issued entries; the tail beyond the scan
	// depth shifts down unexamined, preserving program order.
	c.unissued = c.unissued[:w+copy(c.unissued[w:], c.unissued[i:])]
}

// serializes reports whether a class must reach the window head before
// executing.
func serializes(cl isa.Class) bool {
	return cl == isa.Serializing || cl == isa.TrapEnter || cl == isa.TrapReturn
}

// readySlow resolves the producer dependency of an entry whose wake-up
// cycle is still unknown, memoizing it in readyAts once the producer
// has issued. The issue loop's inlined readyAt comparison answers every
// later scan in one load, which matters because the scan re-examines up
// to scanDepth entries on every cycle of a stall. The producer sequence
// number was precomputed at insert (prodSeqs, 0 when the entry has no
// producer), so resolution never touches the entry struct.
func (c *Core) readySlow(idx int, oldest uint64, now sim.Cycle) bool {
	pseq := c.prodSeqs[idx]
	if pseq < oldest {
		c.readyAts[idx] = 0
		return true // no producer, or it committed long ago
	}
	h := pseq % histSize
	if c.histSeq[h] != pseq {
		return false // producer in window but not yet issued
	}
	ra := c.histDone[h]
	c.readyAts[idx] = ra
	return ra <= now
}

// execute models the execution of one instruction: functional units,
// TLB, memory hierarchy, branch redirect, fault injection and
// fingerprint generation.
func (c *Core) execute(e *entry, now sim.Cycle) {
	e.issued = true
	switch e.inst.Class {
	case isa.Load:
		start := now + c.translate(e)
		if c.coherent {
			e.done, _ = c.hier.Load(c.ID, e.pa, start)
		} else {
			e.done, _ = c.hier.IncoherentLoad(c.ID, e.pa, start)
		}
		c.C.LoadLatCycles += e.done - start
	case isa.Store:
		// Address generation and translation. Sequential consistency
		// makes the write itself happen at commit, but the core
		// prefetches exclusive ownership of the line now, off the
		// critical path (standard for SC out-of-order designs).
		start := now + c.translate(e)
		e.done = start + e.inst.Class.Latency()
		if c.coherent {
			e.prefetchDone, _ = c.hier.Store(c.ID, e.pa, start)
		} else {
			e.prefetchDone, _ = c.hier.IncoherentStore(c.ID, e.pa, start)
		}
	case isa.Branch:
		e.done = now + e.inst.Class.Latency()
		if e.inst.Misp {
			c.C.Mispredicts++
			c.BlockUntil(e.done + c.cfg.MispredictPenalty)
		}
	case isa.Serializing:
		e.done = now + e.inst.Class.Latency()
		if c.gate != nil {
			// The SI must be validated before younger instructions
			// enter the pipeline: an extra fingerprint round trip.
			e.done += c.cfg.SerializeFPLat
		}
	default:
		e.done = now + e.inst.Class.Latency()
	}

	h := e.inst.Seq % histSize
	c.histSeq[h] = e.inst.Seq
	c.histDone[h] = e.done

	if c.gate != nil {
		// A pending transient fault corrupts this execution's result.
		// The window keeps the architecturally correct instruction, so
		// re-execution after a squash computes the correct fingerprint
		// — exactly the transient-fault recovery model.
		fp := e.inst.FP
		if c.faultFlip != 0 {
			corrupted := e.inst
			corrupted.Result ^= c.faultFlip
			fp = corrupted.Fingerprint()
			c.faultFlip = 0
		}
		// Reunion fingerprints cover memory access addresses as well as
		// register updates: fold the translated physical address in, so
		// a corrupted translation on either side of the pair diverges
		// the fingerprints and is detected at the Check stage.
		if e.inst.Class == isa.Load || e.inst.Class == isa.Store {
			fp ^= (e.pa + 0x9e3779b97f4a7c15) * 0xff51afd7ed558ccd
		}
		c.gate.Complete(c.side, e.inst.Seq, e.done, fp)
	} else if c.faultFlip != 0 {
		// Unprotected execution: the corruption lands silently (no
		// fingerprint comparison exists to catch it).
		e.inst.Result ^= c.faultFlip
		c.faultFlip = 0
		if c.OnSilentFault != nil {
			c.OnSilentFault(c, now)
		}
	}
}

// translate runs the TLB for a memory instruction, returning extra
// latency for a hardware fill.
func (c *Core) translate(e *entry) sim.Cycle {
	pa, hit, ok := c.TLB.Lookup(c.Space, e.inst.VA)
	if !ok {
		// Unmapped (should not occur: regions are pre-mapped); treat
		// as an identity mapping so the simulation can proceed.
		pa = e.inst.VA
	}
	e.pa = pa
	if hit {
		return 0
	}
	c.C.TLBMisses++
	return c.cfg.TLBFillLat
}

// --- fetch ---------------------------------------------------------------

func (c *Core) fetch(now sim.Cycle) {
	if c.fetchHold {
		c.C.FetchStallCycles++
		return
	}
	if c.fetchBlockedUntil > now {
		c.C.FetchStallCycles++
		return
	}
	if c.serializers > 0 {
		c.C.SIStallCycles++
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.count == len(c.win) {
			if n == 0 {
				c.C.WindowFullCycles++
			}
			return
		}
		in := c.peeked
		if !c.hasPeek {
			in = c.src.Peek()
			c.peeked = in
			c.hasPeek = true
		}
		if c.fetchBarrier != 0 && in.Seq > c.fetchBarrier {
			// Drain barrier reached: convert to a plain hold.
			c.fetchBarrier = 0
			c.fetchHold = true
			return
		}
		switch in.Class {
		case isa.Load:
			if c.lsqLoads >= c.cfg.LoadQueue {
				if n == 0 {
					c.C.WindowFullCycles++
				}
				return
			}
		case isa.Store:
			if c.lsqStores >= c.cfg.StoreQueue {
				if n == 0 {
					c.C.WindowFullCycles++
				}
				return
			}
		}
		// Instruction cache: one access per new line.
		line := in.PC &^ uint64(c.cfg.LineSize-1)
		if line != c.curFetchLine {
			ready := c.fetchLine(in.PC, now)
			c.curFetchLine = line
			if ready > now+c.cfg.L1HitLat {
				c.BlockUntil(ready)
				return
			}
		}
		// Mode-transition hook: a performance-mode core may not
		// execute privileged code; the MMM layer interposes here.
		if in.Class == isa.TrapEnter && c.OnTrapEnter != nil && !c.suppressTrapHook {
			if c.OnTrapEnter(c) {
				c.fetchHold = true
				return
			}
		}
		if in.Class == isa.TrapEnter {
			c.suppressTrapHook = false
		}
		if c.srcConsume != nil {
			c.srcConsume.Consume()
		} else {
			c.src.Next()
		}
		c.hasPeek = false
		c.insert(in, now)
	}
}

// fetchLine performs the instruction-cache access for pc.
func (c *Core) fetchLine(pc uint64, now sim.Cycle) sim.Cycle {
	pa, hit, ok := c.TLB.Lookup(c.Space, pc)
	extra := sim.Cycle(0)
	if !hit && ok {
		c.C.TLBMisses++
		extra = c.cfg.TLBFillLat
	}
	if !ok {
		pa = pc
	}
	var ready sim.Cycle
	if c.coherent {
		ready, _ = c.hier.Fetch(c.ID, pa, now+extra)
	} else {
		ready, _ = c.hier.IncoherentFetch(c.ID, pa, now+extra)
	}
	return ready
}

// insert places a fetched instruction into the window.
func (c *Core) insert(in isa.Inst, now sim.Cycle) {
	tail := (c.head + c.count) % len(c.win)
	readyAt := sim.Cycle(0) // no producer: issuable immediately
	pseq := uint64(0)
	if in.Dep != 0 && uint64(in.Dep) < in.Seq {
		readyAt = readyUnknown // producer in flight: resolved by readySlow
		pseq = in.Seq - uint64(in.Dep)
	}
	c.win[tail] = entry{inst: in}
	c.readyAts[tail] = readyAt
	c.prodSeqs[tail] = pseq
	c.classes[tail] = in.Class
	c.count++
	c.unissued = append(c.unissued, tail)
	if len(c.unissued) <= scanDepth {
		// The new entry lands inside the issue scan's examination
		// window and may be instantly ready: cancel any scan sleep.
		c.issueWakeAt = 0
	}
	switch in.Class {
	case isa.Load:
		c.lsqLoads++
	case isa.Store:
		c.lsqStores++
	case isa.Serializing, isa.TrapEnter, isa.TrapReturn:
		c.serializers++
		if in.Class != isa.Serializing {
			// Control transfer into/out of the kernel redirects the
			// front end.
			c.BlockUntil(now + sim.Cycle(c.cfg.PipelineStages))
		}
	}
}

// WindowOccupancy returns the number of in-flight instructions (for
// tests and diagnostics).
func (c *Core) WindowOccupancy() int { return c.count }

// Hierarchy exposes the memory hierarchy the core is wired to.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// InOS reports the committed user/OS phase.
func (c *Core) InOS() bool { return c.inOS }

// SetInOS restores the phase when a migrated VCPU resumes on this core.
func (c *Core) SetInOS(os bool) { c.inOS = os }
