// Package cpu implements the out-of-order core timing model: a 2-wide,
// 128-entry-window pipeline with a 32-load/32-store queue, sequential
// consistency (stores hold their window slot until the write-through
// completes — the paper's largest single source of Reunion overhead),
// serializing instructions that drain the pipeline and stall fetch, a
// hardware-filled TLB, and an optional Check stage that gates commit on
// the partner core's fingerprint when Dual-Modular Redundancy is
// active.
package cpu

import (
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/paging"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Source supplies the dynamic instruction stream of the software thread
// scheduled on a core. Peek must return the same instruction that the
// following Next will consume.
type Source interface {
	Peek() isa.Inst
	Next() isa.Inst
}

// Gate couples the two cores of a DMR pair at the Check stage. The core
// reports every completed instruction (Complete) and asks permission to
// commit (CommitReady); the gate implementation (package reunion)
// compares fingerprints and squashes both cores on a mismatch.
type Gate interface {
	Complete(side int, seq uint64, done sim.Cycle, fp uint64)
	CommitReady(side int, seq uint64, now sim.Cycle) (at sim.Cycle, ok bool)
}

// StoreGuard re-validates the permission of performance-mode stores
// before they reach the L2 — the Protection Assistance Buffer. It
// returns any extra latency (serial lookups, PAB miss refills) and
// whether the store violates the PAT and must raise an exception.
type StoreGuard interface {
	CheckStore(core int, pa uint64, now sim.Cycle) (extra sim.Cycle, fault bool)
}

// entry is one in-flight instruction in the window.
type entry struct {
	inst        isa.Inst
	pa          uint64
	issued      bool
	done        sim.Cycle
	storeIssued bool
	storeDone   sim.Cycle
	// prefetchDone is when the store's exclusive-ownership prefetch
	// (issued at execute, off the critical path) completes.
	prefetchDone sim.Cycle
	// readyAt caches the entry's earliest issue cycle so the per-cycle
	// issue scan is one comparison instead of a dependency-history walk:
	// 0 when the entry has no pending producer, the producer's completion
	// cycle once the producer has issued, or readyUnknown while the
	// producer sits unissued in the window (re-resolved each scan).
	readyAt sim.Cycle
}

// readyUnknown marks an entry whose producer has not issued yet, so its
// wake-up cycle cannot be cached.
const readyUnknown = ^sim.Cycle(0)

const (
	histSize  = 512 // completion history for dependency tracking
	scanDepth = 24  // max unissued entries examined per cycle
)

// Core is one physical core of the chip.
type Core struct {
	ID  int
	cfg *sim.Config

	hier  *cache.Hierarchy
	TLB   *paging.TLB
	Space *paging.Space

	src Source

	// Mode. A coherent core participates in the MOSI protocol; a mute
	// core (Coherent=false) uses the incoherent best-effort path. The
	// gate is non-nil exactly when the Check stage is active (DMR).
	coherent bool
	gate     Gate
	side     int
	guard    StoreGuard

	// Window (ring buffer) and scheduler state.
	win      []entry
	head     int
	count    int
	unissued []int
	histDone [histSize]sim.Cycle
	histSeq  [histSize]uint64

	lsqLoads  int
	lsqStores int

	// issueWakeAt sleeps the issue scan: set when a full scan issued
	// nothing and every blocked entry's earliest wake-up is known, so
	// re-scanning before that cycle is provably fruitless. Invalidated
	// by fetch (a new entry may be instantly ready) and by squashes.
	issueWakeAt sim.Cycle

	// TSO store buffer: completion times of posted (committed but not
	// yet drained) stores. Empty and unused under SC.
	storeBuf []sim.Cycle

	fetchBlockedUntil sim.Cycle
	serializers       int // SIs (and trap markers) in flight: fetch stalls
	fetchHold         bool
	fetchBarrier      uint64 // stop fetching beyond this sequence number
	suppressTrapHook  bool

	curFetchLine uint64
	faultFlip    uint64 // XOR applied to the next executed result (fault injection)
	inOS         bool   // committed-phase tracking (user vs OS cycles, Table 2)

	// peeked caches the head-of-stream instruction across fetch attempts
	// so a cycle that stalls on a full load/store queue does not re-run
	// the stream's Peek path. Invalidated when the instruction is
	// consumed or the source changes; Peek is pure, so the cache can
	// never go stale otherwise.
	peeked  isa.Inst
	hasPeek bool

	// OnTrapEnter fires when a TrapEnter is about to be fetched;
	// returning true holds fetch (a mode transition is in progress and
	// the MMM layer will call Resume). OnTrapReturn fires right after
	// a TrapReturn commits, with the same contract.
	OnTrapEnter  func(c *Core) bool
	OnTrapReturn func(c *Core) bool

	// OnSilentFault fires when an injected result corruption lands on
	// an execution with no Check stage to compare it against — the
	// silent-data-corruption case reliability evaluation scores.
	OnSilentFault func(c *Core, now sim.Cycle)

	C stats.CoreCounters
}

// New creates a core wired to the shared memory hierarchy.
func New(id int, cfg *sim.Config, hier *cache.Hierarchy) *Core {
	return &Core{
		ID:       id,
		cfg:      cfg,
		hier:     hier,
		TLB:      paging.NewTLB(cfg.TLBEntries),
		coherent: true,
		win:      make([]entry, cfg.WindowSize),
	}
}

// SetSource assigns the instruction stream (nil idles the core). The
// window must be drained first; scheduling layers guarantee this.
func (c *Core) SetSource(src Source) {
	if src != nil && c.count != 0 {
		panic("cpu: SetSource with non-empty window")
	}
	c.src = src
	c.curFetchLine = ^uint64(0)
	c.hasPeek = false
}

// SetSpace assigns the active address space.
func (c *Core) SetSpace(s *paging.Space) { c.Space = s }

// SetGate enables (non-nil) or disables the DMR Check stage. side is
// the core's position in the pair (0 = vocal, 1 = mute).
func (c *Core) SetGate(g Gate, side int) {
	c.gate = g
	c.side = side
}

// SetCoherent selects the coherent (vocal / performance-mode) or
// incoherent (mute) memory request path.
func (c *Core) SetCoherent(coherent bool) { c.coherent = coherent }

// Coherent reports the current request path.
func (c *Core) Coherent() bool { return c.coherent }

// SetGuard installs the store-permission checker (the PAB) used while
// the core runs in performance mode; nil removes it.
func (c *Core) SetGuard(g StoreGuard) { c.guard = g }

// Drained reports whether the window is empty (required before any
// mode transition or context switch).
func (c *Core) Drained() bool { return c.count == 0 }

// Idle reports whether the core has no work source.
func (c *Core) Idle() bool { return c.src == nil }

// HoldFetch stops instruction fetch (the window keeps draining).
func (c *Core) HoldFetch() { c.fetchHold = true }

// HoldFetchAfter lets fetch continue up to and including sequence
// number seq, then holds. The two cores of a DMR pair must drain to an
// agreed stream position: if both simply stopped fetching, the core
// that had fetched further could never commit (the Check stage would
// wait forever for partner executions that never happen).
func (c *Core) HoldFetchAfter(seq uint64) {
	if seq == 0 {
		c.fetchHold = true
		return
	}
	c.fetchBarrier = seq
}

// Resume releases a fetch hold. If suppressHook is set, the next
// TrapEnter fetched will not re-fire OnTrapEnter (it is the very trap
// whose transition just completed).
func (c *Core) Resume(suppressHook bool) {
	c.fetchHold = false
	c.fetchBarrier = 0
	c.suppressTrapHook = suppressHook
}

// BlockUntil stalls fetch until the given cycle (mode-transition
// latency charged to this core).
func (c *Core) BlockUntil(when sim.Cycle) {
	if when > c.fetchBlockedUntil {
		c.fetchBlockedUntil = when
	}
}

// InjectResultFault arranges for the next executed instruction's result
// to be XORed with mask, modeling a transient computation error.
func (c *Core) InjectResultFault(mask uint64) { c.faultFlip = mask }

// Squash flushes in-flight instructions with sequence number >= fromSeq
// (they re-execute from the window) and charges the recovery penalty.
// Committed state is never affected — that is the point of detecting at
// the Check stage. Older in-flight instructions already validated by
// the Check stage are left to commit normally.
func (c *Core) Squash(now sim.Cycle, fromSeq uint64) {
	for i := 0; i < c.count; i++ {
		idx := (c.head + i) % len(c.win)
		e := &c.win[idx]
		if e.inst.Seq < fromSeq {
			continue
		}
		if e.issued {
			h := e.inst.Seq % histSize
			if c.histSeq[h] == e.inst.Seq {
				c.histSeq[h] = ^uint64(0)
			}
		}
		e.issued = false
		e.storeIssued = false
		e.done = 0
		// A squashed producer re-executes with a new completion time, and
		// every dependent of a squashed producer is itself squashed (it is
		// younger), so dropping the cache here keeps readyAt consistent.
		e.readyAt = readyUnknown
	}
	// Rebuild the pending-issue list in program order.
	c.unissued = c.unissued[:0]
	for i := 0; i < c.count; i++ {
		idx := (c.head + i) % len(c.win)
		if !c.win[idx].issued {
			c.unissued = append(c.unissued, idx)
		}
	}
	c.issueWakeAt = 0 // re-executed entries change the scan set
	c.BlockUntil(now + c.cfg.RecoveryPenalty)
	c.C.Recoveries++
}

// Tick advances the core by one cycle: commit, issue, fetch.
func (c *Core) Tick(now sim.Cycle) {
	c.C.Cycles++
	if c.src == nil {
		c.C.IdleCycles++
		return
	}
	if c.inOS {
		c.C.OSCycles++
	} else {
		c.C.UserCycles++
	}
	// Fast path for a fully stalled core: the window is empty and fetch
	// cannot proceed (held for a mode transition, or blocked on a
	// redirect/transition latency). Nothing can commit, issue or fetch;
	// only the stall counter advances — exactly what the full pipeline
	// walk below would do, without the three calls.
	if c.count == 0 && (c.fetchHold || c.fetchBlockedUntil > now) {
		c.C.FetchStallCycles++
		return
	}
	c.commit(now)
	c.issue(now)
	c.fetch(now)
}

// --- commit --------------------------------------------------------------

func (c *Core) commit(now sim.Cycle) {
	for n := 0; n < c.cfg.CommitWidth; n++ {
		if c.count == 0 {
			return
		}
		e := &c.win[c.head]
		if !e.issued || e.done > now {
			return
		}
		// Check stage: wait for the partner's fingerprint.
		if c.gate != nil {
			at, ok := c.gate.CommitReady(c.side, e.inst.Seq, now)
			if !ok || at > now {
				c.C.CheckWaitCycles++
				return
			}
			c.C.FingerprintChecks++
		}
		// Sequential consistency: the store performs its write-through
		// at commit and holds its window slot until the write is in
		// the cache. Under TSO the store retires into a store buffer
		// and drains in the background; commit blocks only when the
		// buffer is full.
		if e.inst.Class == isa.Store {
			if !e.storeIssued {
				c.issueStore(e, now)
			}
			if c.cfg.TSO {
				if !c.postStore(e.storeDone, now) {
					c.C.StoreCommitStall++
					return
				}
			} else if e.storeDone > now {
				c.C.StoreCommitStall++
				return
			}
		}
		c.retire(e, now)
	}
}

// postStore places a committed store's completion into the TSO store
// buffer, reporting false when the buffer is full (commit must wait).
func (c *Core) postStore(done, now sim.Cycle) bool {
	// Drain completed entries.
	kept := c.storeBuf[:0]
	for _, t := range c.storeBuf {
		if t > now {
			kept = append(kept, t)
		}
	}
	c.storeBuf = kept
	if len(c.storeBuf) >= c.cfg.StoreBufferEntries {
		return false
	}
	c.storeBuf = append(c.storeBuf, done)
	return true
}

// issueStore starts the write-through for the store at the head of the
// window, consulting the PAB first when in performance mode.
func (c *Core) issueStore(e *entry, now sim.Cycle) {
	e.storeIssued = true
	start := now
	if c.gate != nil {
		// Under Reunion the fingerprint interval closes at the store:
		// its address and value must be validated with the partner
		// before the write becomes globally visible, costing a
		// sync-request round trip on the fingerprint network per store
		// (this serialization is why sequential consistency is so
		// expensive for Reunion — Smolens reports 30% on average).
		start += 2 * c.cfg.FingerprintLat
	}
	if c.guard != nil {
		// The PAB re-validates every store a performance-mode core
		// emits — including a performance guest VM's own privileged
		// code, which also runs unprotected in consolidated mode.
		extra, fault := c.guard.CheckStore(c.ID, e.pa, now)
		start += extra
		if fault {
			// The PAB (or TLB) denied the store: an exception is
			// raised before corruption occurs and the write never
			// reaches the L2.
			c.C.PABExceptions++
			e.storeDone = start
			return
		}
	}
	// The line was (pre-)acquired in Modified state at execute. The
	// write-through begins once the permission check and any pending
	// ownership acquisition complete, then pays the L2 write latency.
	if e.prefetchDone > start {
		start = e.prefetchDone
	}
	e.storeDone = start + c.cfg.L2HitLat
	c.C.StoreLatCycles += e.storeDone - now
}

// retire removes the head instruction from the window and updates
// architectural counters.
func (c *Core) retire(e *entry, now sim.Cycle) {
	c.C.Commits++
	if e.inst.Priv {
		c.C.OSCommits++
	} else {
		c.C.UserCommits++
	}
	switch e.inst.Class {
	case isa.Load:
		c.lsqLoads--
		c.C.Loads++
	case isa.Store:
		c.lsqStores--
		c.C.Stores++
	case isa.Branch:
		c.C.Branches++
	case isa.Serializing:
		c.C.SerializingInsts++
		c.serializers--
	case isa.TrapEnter:
		c.C.TrapEntries++
		c.serializers--
		c.inOS = true
	case isa.TrapReturn:
		c.C.TrapReturns++
		c.serializers--
		c.inOS = false
	}
	cls := e.inst.Class
	c.head = (c.head + 1) % len(c.win)
	c.count--
	if cls == isa.TrapReturn && c.OnTrapReturn != nil {
		if c.OnTrapReturn(c) {
			c.fetchHold = true
		}
	}
}

// --- issue ---------------------------------------------------------------

func (c *Core) issue(now sim.Cycle) {
	n := len(c.unissued)
	if n == 0 {
		return
	}
	if c.issueWakeAt > now {
		// A previous scan proved nothing can issue before issueWakeAt
		// and no fetch or squash has touched the scan set since.
		return
	}
	limit := n
	if limit > scanDepth {
		limit = scanDepth
	}
	width := c.cfg.IssueWidth
	canSleep := true
	minWake := readyUnknown
	issued, w, i := 0, 0, 0
	for ; i < limit; i++ {
		idx := c.unissued[i]
		e := &c.win[idx]
		// Readiness fast path (the memoized wake-up cycle) is inlined
		// here; readySlow resolves entries whose producer had not issued
		// at the last look.
		ra := e.readyAt
		if ra > now {
			if ra == readyUnknown && c.readySlow(e, now) {
				goto issuable
			}
			// Blocked. An entry waiting on an unissued producer keeps
			// readyAt == readyUnknown, which cannot lower minWake — and
			// needs no wake of its own: its producer sits earlier in
			// this same scan set, so it cannot issue before minWake
			// either.
			if ra = e.readyAt; ra < minWake {
				minWake = ra
			}
			if w < i {
				c.unissued[w] = idx
			}
			w++
			continue
		}
	issuable:
		// Serializing instructions (and trap markers) execute only
		// from the head of a drained window. Commits move the head
		// independently of issue activity, so a blocked serializer
		// forbids sleeping the scan.
		if serializes(e.inst.Class) && idx != c.head {
			canSleep = false
			if w < i {
				c.unissued[w] = idx
			}
			w++
			continue
		}
		c.execute(e, now)
		if issued++; issued >= width {
			i++
			break
		}
	}
	if i == w {
		// Nothing issued: the pending list is untouched. If every
		// blocked entry's wake-up is known, sleep the scan until the
		// earliest one.
		if canSleep && minWake != readyUnknown {
			c.issueWakeAt = minWake
		}
		return
	}
	// Close the gaps left by issued entries; the tail beyond the scan
	// depth shifts down unexamined, preserving program order.
	c.unissued = c.unissued[:w+copy(c.unissued[w:], c.unissued[i:])]
}

// serializes reports whether a class must reach the window head before
// executing.
func serializes(cl isa.Class) bool {
	return cl == isa.Serializing || cl == isa.TrapEnter || cl == isa.TrapReturn
}

// readySlow resolves the producer dependency of an entry whose wake-up
// cycle is still unknown, memoizing it in e.readyAt once the producer
// has issued. The issue loop's inlined readyAt comparison answers every
// later scan in one load, which matters because the scan re-examines up
// to scanDepth entries on every cycle of a stall.
func (c *Core) readySlow(e *entry, now sim.Cycle) bool {
	if e.inst.Dep == 0 || uint64(e.inst.Dep) >= e.inst.Seq {
		e.readyAt = 0
		return true
	}
	pseq := e.inst.Seq - uint64(e.inst.Dep)
	if c.count > 0 {
		oldest := c.win[c.head].inst.Seq
		if pseq < oldest {
			e.readyAt = 0
			return true // producer committed long ago
		}
	}
	h := pseq % histSize
	if c.histSeq[h] != pseq {
		return false // producer in window but not yet issued
	}
	e.readyAt = c.histDone[h]
	return e.readyAt <= now
}

// execute models the execution of one instruction: functional units,
// TLB, memory hierarchy, branch redirect, fault injection and
// fingerprint generation.
func (c *Core) execute(e *entry, now sim.Cycle) {
	e.issued = true
	switch e.inst.Class {
	case isa.Load:
		start := now + c.translate(e)
		if c.coherent {
			e.done, _ = c.hier.Load(c.ID, e.pa, start)
		} else {
			e.done, _ = c.hier.IncoherentLoad(c.ID, e.pa, start)
		}
		c.C.LoadLatCycles += e.done - start
	case isa.Store:
		// Address generation and translation. Sequential consistency
		// makes the write itself happen at commit, but the core
		// prefetches exclusive ownership of the line now, off the
		// critical path (standard for SC out-of-order designs).
		start := now + c.translate(e)
		e.done = start + e.inst.Class.Latency()
		if c.coherent {
			e.prefetchDone, _ = c.hier.Store(c.ID, e.pa, start)
		} else {
			e.prefetchDone, _ = c.hier.IncoherentStore(c.ID, e.pa, start)
		}
	case isa.Branch:
		e.done = now + e.inst.Class.Latency()
		if e.inst.Misp {
			c.C.Mispredicts++
			c.BlockUntil(e.done + c.cfg.MispredictPenalty)
		}
	case isa.Serializing:
		e.done = now + e.inst.Class.Latency()
		if c.gate != nil {
			// The SI must be validated before younger instructions
			// enter the pipeline: an extra fingerprint round trip.
			e.done += c.cfg.SerializeFPLat
		}
	default:
		e.done = now + e.inst.Class.Latency()
	}

	h := e.inst.Seq % histSize
	c.histSeq[h] = e.inst.Seq
	c.histDone[h] = e.done

	if c.gate != nil {
		// A pending transient fault corrupts this execution's result.
		// The window keeps the architecturally correct instruction, so
		// re-execution after a squash computes the correct fingerprint
		// — exactly the transient-fault recovery model.
		fp := e.inst.Fingerprint()
		if c.faultFlip != 0 {
			corrupted := e.inst
			corrupted.Result ^= c.faultFlip
			fp = corrupted.Fingerprint()
			c.faultFlip = 0
		}
		// Reunion fingerprints cover memory access addresses as well as
		// register updates: fold the translated physical address in, so
		// a corrupted translation on either side of the pair diverges
		// the fingerprints and is detected at the Check stage.
		if e.inst.Class == isa.Load || e.inst.Class == isa.Store {
			fp ^= (e.pa + 0x9e3779b97f4a7c15) * 0xff51afd7ed558ccd
		}
		c.gate.Complete(c.side, e.inst.Seq, e.done, fp)
	} else if c.faultFlip != 0 {
		// Unprotected execution: the corruption lands silently (no
		// fingerprint comparison exists to catch it).
		e.inst.Result ^= c.faultFlip
		c.faultFlip = 0
		if c.OnSilentFault != nil {
			c.OnSilentFault(c, now)
		}
	}
}

// translate runs the TLB for a memory instruction, returning extra
// latency for a hardware fill.
func (c *Core) translate(e *entry) sim.Cycle {
	pa, hit, ok := c.TLB.Lookup(c.Space, e.inst.VA)
	if !ok {
		// Unmapped (should not occur: regions are pre-mapped); treat
		// as an identity mapping so the simulation can proceed.
		pa = e.inst.VA
	}
	e.pa = pa
	if hit {
		return 0
	}
	c.C.TLBMisses++
	return c.cfg.TLBFillLat
}

// --- fetch ---------------------------------------------------------------

func (c *Core) fetch(now sim.Cycle) {
	if c.fetchHold {
		c.C.FetchStallCycles++
		return
	}
	if c.fetchBlockedUntil > now {
		c.C.FetchStallCycles++
		return
	}
	if c.serializers > 0 {
		c.C.SIStallCycles++
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.count == len(c.win) {
			if n == 0 {
				c.C.WindowFullCycles++
			}
			return
		}
		in := c.peeked
		if !c.hasPeek {
			in = c.src.Peek()
			c.peeked = in
			c.hasPeek = true
		}
		if c.fetchBarrier != 0 && in.Seq > c.fetchBarrier {
			// Drain barrier reached: convert to a plain hold.
			c.fetchBarrier = 0
			c.fetchHold = true
			return
		}
		switch in.Class {
		case isa.Load:
			if c.lsqLoads >= c.cfg.LoadQueue {
				if n == 0 {
					c.C.WindowFullCycles++
				}
				return
			}
		case isa.Store:
			if c.lsqStores >= c.cfg.StoreQueue {
				if n == 0 {
					c.C.WindowFullCycles++
				}
				return
			}
		}
		// Instruction cache: one access per new line.
		line := in.PC &^ uint64(c.cfg.LineSize-1)
		if line != c.curFetchLine {
			ready := c.fetchLine(in.PC, now)
			c.curFetchLine = line
			if ready > now+c.cfg.L1HitLat {
				c.BlockUntil(ready)
				return
			}
		}
		// Mode-transition hook: a performance-mode core may not
		// execute privileged code; the MMM layer interposes here.
		if in.Class == isa.TrapEnter && c.OnTrapEnter != nil && !c.suppressTrapHook {
			if c.OnTrapEnter(c) {
				c.fetchHold = true
				return
			}
		}
		if in.Class == isa.TrapEnter {
			c.suppressTrapHook = false
		}
		c.src.Next()
		c.hasPeek = false
		c.insert(in, now)
	}
}

// fetchLine performs the instruction-cache access for pc.
func (c *Core) fetchLine(pc uint64, now sim.Cycle) sim.Cycle {
	pa, hit, ok := c.TLB.Lookup(c.Space, pc)
	extra := sim.Cycle(0)
	if !hit && ok {
		c.C.TLBMisses++
		extra = c.cfg.TLBFillLat
	}
	if !ok {
		pa = pc
	}
	var ready sim.Cycle
	if c.coherent {
		ready, _ = c.hier.Fetch(c.ID, pa, now+extra)
	} else {
		ready, _ = c.hier.IncoherentFetch(c.ID, pa, now+extra)
	}
	return ready
}

// insert places a fetched instruction into the window.
func (c *Core) insert(in isa.Inst, now sim.Cycle) {
	tail := (c.head + c.count) % len(c.win)
	readyAt := readyUnknown
	if in.Dep == 0 {
		readyAt = 0 // no producer: issuable immediately
	}
	c.win[tail] = entry{inst: in, readyAt: readyAt}
	c.count++
	c.unissued = append(c.unissued, tail)
	if len(c.unissued) <= scanDepth {
		// The new entry lands inside the issue scan's examination
		// window and may be instantly ready: cancel any scan sleep.
		c.issueWakeAt = 0
	}
	switch in.Class {
	case isa.Load:
		c.lsqLoads++
	case isa.Store:
		c.lsqStores++
	case isa.Serializing, isa.TrapEnter, isa.TrapReturn:
		c.serializers++
		if in.Class != isa.Serializing {
			// Control transfer into/out of the kernel redirects the
			// front end.
			c.BlockUntil(now + sim.Cycle(c.cfg.PipelineStages))
		}
	}
}

// WindowOccupancy returns the number of in-flight instructions (for
// tests and diagnostics).
func (c *Core) WindowOccupancy() int { return c.count }

// Hierarchy exposes the memory hierarchy the core is wired to.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// InOS reports the committed user/OS phase.
func (c *Core) InOS() bool { return c.inOS }

// SetInOS restores the phase when a migrated VCPU resumes on this core.
func (c *Core) SetInOS(os bool) { c.inOS = os }
