package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
)

// TestTSOStoresDoNotBlockCommit: under TSO a committed store drains
// from the store buffer in the background, so a stream with stores
// commits much faster than under SC.
func TestTSOStoresDoNotBlockCommit(t *testing.T) {
	mkInsts := func() []isa.Inst {
		var insts []isa.Inst
		for i := 0; i < 200; i++ {
			cls := isa.ALU
			if i%4 == 0 {
				cls = isa.Store
			}
			insts = append(insts, isa.Inst{
				Class: cls,
				VA:    0x2000_0000 + uint64(i%8)*64,
				PC:    0x1000 + uint64(i%16)*4,
			})
		}
		return insts
	}
	run := func(tso bool) uint64 {
		cfg, h, sp := testRig(t, 2)
		cfg.TSO = tso
		c := New(0, cfg, h)
		c.SetSpace(sp)
		c.SetSource(script(mkInsts()...))
		for now := sim.Cycle(0); now < 4000; now++ {
			c.Tick(now)
		}
		return c.C.StoreCommitStall
	}
	sc := run(false)
	tso := run(true)
	if tso >= sc {
		t.Fatalf("TSO store stalls (%d) should be below SC's (%d)", tso, sc)
	}
}

// TestTSOStoreBufferBounded: a burst of slow stores fills the bounded
// store buffer and eventually blocks commit.
func TestTSOStoreBufferBounded(t *testing.T) {
	cfg, h, sp := testRig(t, 2)
	cfg.TSO = true
	cfg.StoreBufferEntries = 2
	var insts []isa.Inst
	for i := 0; i < 64; i++ {
		// Distinct cold pages: every store's ownership fetch goes to
		// memory.
		insts = append(insts, isa.Inst{
			Class: isa.Store,
			VA:    0x2000_0000 + uint64(i)*8192,
			PC:    0x1000,
		})
	}
	c := New(0, cfg, h)
	c.SetSpace(sp)
	c.SetSource(script(insts...))
	for now := sim.Cycle(0); now < 3000; now++ {
		c.Tick(now)
		if len(c.storeBuf) > 2 {
			t.Fatal("store buffer exceeded its bound")
		}
	}
	if c.C.StoreCommitStall == 0 {
		t.Fatal("full store buffer never blocked commit")
	}
}
