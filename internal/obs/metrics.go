// Package obs is the repository's telemetry layer: a dependency-free
// metrics registry (counters, gauges, histograms with Prometheus text
// exposition) and a bounded flight recorder for structured simulation
// events (recorder.go). It sits below every other layer — obs imports
// only internal/sim — so the chip core, the campaign engine and the
// mmmd service can all feed it.
//
// The package's contract is zero cost when disabled: every instrument
// and the recorder are nil-safe (methods on a nil receiver return
// immediately), so instrumented code holds a possibly-nil pointer and
// pays one predictable branch, no allocation and no locking when
// telemetry is off. Telemetry is pure observation — nothing in this
// package consumes simulation RNG or feeds back into event order, so
// enabling it cannot change any simulation result.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer instrument. The zero
// value is ready to use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float instrument. A nil *Gauge discards updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (CAS loop; gauges are low-rate).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram bucket upper bounds, in seconds
// — tuned for job/request latencies from sub-millisecond cache hits to
// multi-minute simulations.
var DefBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// Histogram counts observations into fixed cumulative buckets. A nil
// *Histogram discards observations.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// sort.SearchFloat64s gives the first bound >= v under le semantics
	// (bucket bound is inclusive).
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Sample is one collector-produced series value: a metric name, its
// metadata, an alternating key/value label list and the value at
// scrape time. Collectors let the registry expose state that lives
// elsewhere (runs by status, per-worker heartbeat ages) without
// churning registered instruments.
type Sample struct {
	Name   string
	Help   string
	Type   string // "counter" or "gauge"
	Labels []string
	Value  float64
}

// CollectorFunc is called at scrape time; it emits zero or more
// samples.
type CollectorFunc func(emit func(Sample))

// family is one registered metric name with its metadata and series.
type series struct {
	labels  string // rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

type family struct {
	name, help, typ string
	series          map[string]*series
}

// Registry holds named instruments and scrape-time collectors and
// renders them as Prometheus text exposition. A nil *Registry hands
// out nil instruments, so a component wired to an optional registry
// needs no further guards.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []CollectorFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelString renders an alternating key/value list canonically
// (sorted by key, values escaped). Panics on an odd-length list —
// that is a programming error at the instrument's registration site.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, escapeLabel(p.v))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format. %q
// above already escapes '"' and '\'; newlines become \n via %q too,
// so this only needs to pass the value through.
func escapeLabel(v string) string { return v }

// lookup returns (creating if needed) the family and series for one
// instrument registration. Registration is idempotent: the same
// (name, labels) returns the same instrument.
func (r *Registry) lookup(name, help, typ string, labels []string) *series {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	ls := labelString(labels)
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		f.series[ls] = s
	}
	return s
}

// Counter registers (or finds) a counter. labels alternate key, value.
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, "counter", labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, "gauge", labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or finds) a histogram with the given bucket
// upper bounds (nil uses DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.lookup(name, help, "histogram", labels)
	if s.hist == nil {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		s.hist = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
	}
	return s.hist
}

// RegisterCollector adds a scrape-time sample source.
func (r *Registry) RegisterCollector(fn CollectorFunc) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// fmtValue renders a sample value the way Prometheus expects.
func fmtValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WritePrometheus renders the registry — static instruments plus every
// collector's scrape-time samples — as version 0.0.4 text exposition,
// families and series in sorted order so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type line struct{ labels, text string }
	type fam struct {
		help, typ string
		lines     []line
	}
	fams := make(map[string]*fam)

	r.mu.Lock()
	collectors := append([]CollectorFunc(nil), r.collectors...)
	for name, f := range r.families {
		out := &fam{help: f.help, typ: f.typ}
		for ls, s := range f.series {
			switch {
			case s.counter != nil:
				out.lines = append(out.lines, line{ls,
					fmt.Sprintf("%s%s %d", name, ls, s.counter.Value())})
			case s.gauge != nil:
				out.lines = append(out.lines, line{ls,
					fmt.Sprintf("%s%s %s", name, ls, fmtValue(s.gauge.Value()))})
			case s.hist != nil:
				h := s.hist
				var cum uint64
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					out.lines = append(out.lines, line{ls + "\x00" + fmt.Sprintf("%04d", i),
						fmt.Sprintf("%s_bucket%s %d", name, mergeLabels(ls, "le", fmtValue(b)), cum)})
				}
				out.lines = append(out.lines, line{ls + "\x00zinf",
					fmt.Sprintf("%s_bucket%s %d", name, mergeLabels(ls, "le", "+Inf"), h.Count())})
				out.lines = append(out.lines, line{ls + "\x00zsum",
					fmt.Sprintf("%s_sum%s %s", name, ls, fmtValue(h.Sum()))})
				out.lines = append(out.lines, line{ls + "\x00zzcount",
					fmt.Sprintf("%s_count%s %d", name, ls, h.Count())})
			}
		}
		fams[name] = out
	}
	r.mu.Unlock()

	// Collector samples merge into (or create) families. Static
	// metadata wins on a name collision.
	for _, fn := range collectors {
		fn(func(s Sample) {
			f := fams[s.Name]
			if f == nil {
				typ := s.Type
				if typ == "" {
					typ = "gauge"
				}
				f = &fam{help: s.Help, typ: typ}
				fams[s.Name] = f
			}
			ls := labelString(s.Labels)
			f.lines = append(f.lines, line{ls,
				fmt.Sprintf("%s%s %s", s.Name, ls, fmtValue(s.Value))})
		})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if len(f.lines) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", n, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.typ); err != nil {
			return err
		}
		sort.Slice(f.lines, func(i, j int) bool { return f.lines[i].labels < f.lines[j].labels })
		for _, l := range f.lines {
			if _, err := fmt.Fprintln(w, l.text); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeLabels splices one extra label into an already-rendered label
// string (used for histogram le labels).
func mergeLabels(ls, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if ls == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(ls, "}") + "," + extra + "}"
}

// Snapshot returns every static series as "name{labels}" -> value
// (histograms contribute _count and _sum). Collector samples are
// included. Intended for tests and JSON status endpoints.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	r.mu.Lock()
	collectors := append([]CollectorFunc(nil), r.collectors...)
	for name, f := range r.families {
		for ls, s := range f.series {
			switch {
			case s.counter != nil:
				out[name+ls] = float64(s.counter.Value())
			case s.gauge != nil:
				out[name+ls] = s.gauge.Value()
			case s.hist != nil:
				out[name+"_count"+ls] = float64(s.hist.Count())
				out[name+"_sum"+ls] = s.hist.Sum()
			}
		}
	}
	r.mu.Unlock()
	for _, fn := range collectors {
		fn(func(s Sample) {
			out[s.Name+labelString(s.Labels)] = s.Value
		})
	}
	return out
}
