package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Kind classifies one flight-recorder event. Kinds are stable strings
// so JSONL output is self-describing.
type Kind string

const (
	// KindEnterDMR / KindLeaveDMR / KindCtxSwitch are completed mode
	// transitions (span events: Cycle..Cycle+Dur, Arg = drain latency
	// in cycles, Cause = what triggered the switch).
	KindEnterDMR  Kind = "enter-dmr"
	KindLeaveDMR  Kind = "leave-dmr"
	KindCtxSwitch Kind = "ctx-switch"
	// KindDecision is one per-pair policy decision outcome; Cause is
	// "<event>/taken", "<event>/dropped" (pair mid-transition) or
	// "<event>/retried" (a previously dropped decision finally landing),
	// Arg the assigned roster group.
	KindDecision Kind = "decision"
	// KindOverride marks a coupling override riding on a taken
	// decision; Cause is "couple" or "decouple".
	KindOverride Kind = "override"
	// KindFault is one protection-mechanism observation (mismatch,
	// machine check, PAB exception, ...); Cause names the
	// core.FaultEventKind, Arg the victim VCPU (-1 when n/a).
	KindFault Kind = "fault"
	// KindInjection is one fault-injector attempt; Cause is the fault
	// kind name ("/miss" appended when no viable target), Arg the
	// 1-based attempt sequence number.
	KindInjection Kind = "injection"
	// KindBulkStep is one event-horizon bulk segment of the Run loop
	// (span; Arg = active cores; Cause "idle" for whole-chip idle
	// jumps).
	KindBulkStep Kind = "bulk-step"
	// KindMark is a free-form annotation (e.g. relia trial boundaries).
	KindMark Kind = "mark"
)

// Event is one recorded observation, timestamped in simulation cycles.
// Pair and Core are -1 when not applicable.
type Event struct {
	Kind  Kind      `json:"kind"`
	Cycle sim.Cycle `json:"cycle"`
	Dur   sim.Cycle `json:"dur,omitempty"`
	Pair  int       `json:"pair"`
	Core  int       `json:"core"`
	Cause string    `json:"cause,omitempty"`
	Arg   int64     `json:"arg,omitempty"`
}

// DefaultRecorderCap bounds the flight recorder when the caller does
// not: 1<<16 events is a few MB and covers hundreds of timeslices of a
// busy chip.
const DefaultRecorderCap = 1 << 16

// Recorder is a bounded structured event tracer: a ring buffer that
// keeps the most recent events (flight-recorder semantics — when the
// buffer wraps, the oldest events fall off and Dropped counts them).
// It is not safe for concurrent use; a chip owns its recorder on the
// simulation goroutine. A nil *Recorder discards everything, which is
// the telemetry-disabled fast path.
type Recorder struct {
	cap   int
	buf   []Event
	head  int // next write position once the ring is full
	total uint64
}

// NewRecorder returns a recorder keeping up to capacity events
// (DefaultRecorderCap when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{cap: capacity}
}

// Emit records one event; on a full ring the oldest event is
// overwritten.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.total++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.head] = ev
	r.head++
	if r.head == r.cap {
		r.head = 0
	}
}

// Total returns how many events were emitted (including dropped ones).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns how many events fell off the ring.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.total - uint64(len(r.buf))
}

// Events returns the retained events in emission order. The slice is
// freshly allocated; mutating it does not affect the recorder.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// Reset empties the ring and zeroes the counters.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.buf = r.buf[:0]
	r.head = 0
	r.total = 0
}

// WriteJSONL writes the retained events as JSON Lines, one event per
// line, in emission order.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(&ev); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event JSON record (the subset
// perfetto and chrome://tracing load).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Track layout of the Chrome trace: one process per recorder, the run
// loop on tid 0 and each core pair on its own thread track.
const (
	chromePid     = 1
	tidRunLoop    = 0
	tidPairBase   = 1 // pair p renders on tid tidPairBase+p
	catTransition = "transition"
	catPolicy     = "policy"
	catFault      = "fault"
	catRun        = "run"
)

// chromeTid maps an event onto its track: its pair's thread when one
// is identifiable (directly or via the core), else the run loop.
func chromeTid(ev Event) int {
	switch {
	case ev.Pair >= 0:
		return tidPairBase + ev.Pair
	case ev.Core >= 0:
		return tidPairBase + ev.Core/2
	default:
		return tidRunLoop
	}
}

// WriteChromeTrace writes the retained events as Chrome trace-event
// JSON, loadable in perfetto (ui.perfetto.dev) and chrome://tracing.
// One simulation cycle renders as one microsecond; process names the
// trace (e.g. the run's "system/policy/workload" label).
func (r *Recorder) WriteChromeTrace(w io.Writer, process string) error {
	if r == nil {
		return nil
	}
	events := r.Events()
	out := make([]chromeEvent, 0, len(events)+16)

	meta := func(name string, tid int, arg string) {
		out = append(out, chromeEvent{
			Name: name, Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]any{"name": arg},
		})
	}
	meta("process_name", tidRunLoop, process)
	meta("thread_name", tidRunLoop, "run-loop")
	seenPairs := map[int]bool{}

	for _, ev := range events {
		tid := chromeTid(ev)
		if tid != tidRunLoop && !seenPairs[tid] {
			seenPairs[tid] = true
			meta("thread_name", tid, fmt.Sprintf("pair %d", tid-tidPairBase))
		}
		ce := chromeEvent{
			Name: string(ev.Kind),
			Ts:   float64(ev.Cycle),
			Pid:  chromePid,
			Tid:  tid,
		}
		args := map[string]any{}
		if ev.Cause != "" {
			args["cause"] = ev.Cause
		}
		switch ev.Kind {
		case KindEnterDMR, KindLeaveDMR, KindCtxSwitch:
			ce.Ph, ce.Cat = "X", catTransition
			ce.Dur = float64(ev.Dur)
			args["drain_cycles"] = ev.Arg
		case KindBulkStep:
			ce.Ph, ce.Cat = "X", catRun
			ce.Dur = float64(ev.Dur)
			args["active_cores"] = ev.Arg
		case KindDecision, KindOverride:
			ce.Ph, ce.Cat, ce.S = "i", catPolicy, "t"
			if ev.Kind == KindDecision {
				args["group"] = ev.Arg
			}
		case KindFault, KindInjection:
			ce.Ph, ce.Cat, ce.S = "i", catFault, "t"
			args["arg"] = ev.Arg
			if ev.Core >= 0 {
				args["core"] = ev.Core
			}
		default:
			ce.Ph, ce.S = "i", "g"
			args["arg"] = ev.Arg
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out = append(out, ce)
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}
