package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestNilSafety exercises the zero-cost-disabled contract: every
// instrument and the recorder must be inert through a nil receiver.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil instruments: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments retained state")
	}
	r.RegisterCollector(func(emit func(Sample)) { t.Fatal("collector ran on nil registry") })
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("WritePrometheus on nil registry: %v", err)
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("Snapshot on nil registry: %v", snap)
	}

	var rec *Recorder
	rec.Emit(Event{Kind: KindMark})
	rec.Reset()
	if rec.Total() != 0 || rec.Dropped() != 0 || rec.Events() != nil {
		t.Fatal("nil recorder retained state")
	}
	if err := rec.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("WriteJSONL on nil recorder: %v", err)
	}
	if err := rec.WriteChromeTrace(&bytes.Buffer{}, "p"); err != nil {
		t.Fatalf("WriteChromeTrace on nil recorder: %v", err)
	}
}

// TestExpositionRoundTrip renders a populated registry and feeds the
// page back through the package's own strict parser.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs.", "kind", "mmm-ipc").Add(7)
	r.Counter("jobs_total", "Jobs.", "kind", "reunion").Inc()
	r.Gauge("depth", "Queue depth.").Set(3.5)
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "dyn", Help: "Dynamic.", Type: "gauge",
			Labels: []string{"w", "n1"}, Value: 2})
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()

	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition rejected our own output: %v\n%s", err, text)
	}
	if f := fams["jobs_total"]; f == nil || f.Type != "counter" || len(f.Series) != 2 {
		t.Fatalf("jobs_total family wrong: %+v", fams["jobs_total"])
	}
	if f := fams["latency_seconds"]; f == nil || f.Type != "histogram" {
		t.Fatalf("latency_seconds family wrong: %+v", fams["latency_seconds"])
	}
	// 3 finite buckets + +Inf + sum + count fold into one family.
	if got := len(fams["latency_seconds"].Series); got != 6 {
		t.Fatalf("latency_seconds series = %d, want 6\n%s", got, text)
	}
	if f := fams["dyn"]; f == nil || f.Type != "gauge" || len(f.Series) != 1 {
		t.Fatalf("collector family wrong: %+v", fams["dyn"])
	}
	if got := TotalSeries(fams); got != 10 {
		t.Fatalf("TotalSeries = %d, want 10\n%s", got, text)
	}

	// Cumulative bucket semantics: 0.05 and 0.5 land at or below le="1",
	// the 100 only in +Inf.
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="10"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		`latency_seconds_count 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// Deterministic output: a second render is byte-identical.
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatalf("second WritePrometheus: %v", err)
	}
	if again.String() != text {
		t.Fatal("exposition is not deterministic across renders")
	}
}

// TestRegistryIdempotentRegistration checks that re-registering the
// same (name, labels) returns the same instrument.
func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h", "k", "v")
	b := r.Counter("c", "h", "k", "v")
	if a != b {
		t.Fatal("same (name, labels) produced distinct counters")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("shared counter value = %d, want 2", b.Value())
	}
	// Label order must not matter: canonical rendering sorts keys.
	g1 := r.Gauge("g", "h", "a", "1", "b", "2")
	g2 := r.Gauge("g", "h", "b", "2", "a", "1")
	if g1 != g2 {
		t.Fatal("label order produced distinct gauges")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "h").Add(4)
	r.Histogram("h", "h", []float64{1}).Observe(0.5)
	r.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "d", Value: 9})
	})
	snap := r.Snapshot()
	if snap["c"] != 4 {
		t.Errorf("snapshot c = %v, want 4", snap["c"])
	}
	if snap["h_count"] != 1 || snap["h_sum"] != 0.5 {
		t.Errorf("snapshot histogram = count %v sum %v", snap["h_count"], snap["h_sum"])
	}
	if snap["d"] != 9 {
		t.Errorf("snapshot collector sample = %v, want 9", snap["d"])
	}
}

// TestRecorderRing exercises flight-recorder semantics: the ring keeps
// the newest events and counts what fell off.
func TestRecorderRing(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Emit(Event{Kind: KindMark, Cycle: sim.Cycle(i), Pair: -1, Core: -1})
	}
	if rec.Total() != 10 {
		t.Fatalf("Total = %d, want 10", rec.Total())
	}
	if rec.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", rec.Dropped())
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := sim.Cycle(6 + i); ev.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (emission order lost)", i, ev.Cycle, want)
		}
	}
	rec.Reset()
	if rec.Total() != 0 || len(rec.Events()) != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestRecorderJSONL(t *testing.T) {
	rec := NewRecorder(8)
	rec.Emit(Event{Kind: KindEnterDMR, Cycle: 100, Dur: 40, Pair: 2, Core: 4, Cause: "timer", Arg: 12})
	rec.Emit(Event{Kind: KindFault, Cycle: 150, Pair: 0, Core: 1, Cause: "machine-check", Arg: 3})
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Kind != KindEnterDMR || ev.Cycle != 100 || ev.Dur != 40 || ev.Cause != "timer" {
		t.Fatalf("round-tripped event = %+v", ev)
	}
}

// TestChromeTrace checks the trace-event JSON shape perfetto loads:
// top-level traceEvents, span events with dur, instant events, and
// process/thread metadata.
func TestChromeTrace(t *testing.T) {
	rec := NewRecorder(16)
	rec.Emit(Event{Kind: KindEnterDMR, Cycle: 100, Dur: 40, Pair: 1, Core: 2, Cause: "timer", Arg: 12})
	rec.Emit(Event{Kind: KindDecision, Cycle: 140, Pair: 1, Core: 2, Cause: "timer/taken", Arg: 1})
	rec.Emit(Event{Kind: KindFault, Cycle: 200, Pair: -1, Core: 5, Cause: "mismatch", Arg: 3})
	rec.Emit(Event{Kind: KindBulkStep, Cycle: 0, Dur: 300, Pair: -1, Core: -1, Arg: 16})

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, "mmm-ipc/utilization/apache"); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spans, instants, metas int
	sawProcess := false
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("span without dur: %v", ev)
			}
		case "i":
			instants++
		case "M":
			metas++
			if ev["name"] == "process_name" {
				sawProcess = true
				args := ev["args"].(map[string]any)
				if args["name"] != "mmm-ipc/utilization/apache" {
					t.Errorf("process name = %v", args["name"])
				}
			}
		}
	}
	if spans != 2 || instants != 2 {
		t.Fatalf("spans=%d instants=%d, want 2 and 2", spans, instants)
	}
	if !sawProcess || metas < 3 {
		t.Fatalf("metadata incomplete: sawProcess=%v metas=%d", sawProcess, metas)
	}
	// The fault on core 5 must land on pair 2's track, offset by the
	// pair tid base.
	for _, ev := range doc.TraceEvents {
		if ev["name"] == string(KindFault) && ev["ph"] == "i" {
			if tid := ev["tid"].(float64); tid != float64(tidPairBase+2) {
				t.Errorf("fault tid = %v, want %d", tid, tidPairBase+2)
			}
		}
	}
}

// TestParseExpositionRejects spot-checks the strict-parser failure
// modes CI relies on.
func TestParseExpositionRejects(t *testing.T) {
	for _, bad := range []string{
		"metric_name\n",   // no value
		"1bad_name 3\n",   // bad metric name
		`m{le=} 3` + "\n", // bad label syntax
		"m notanumber\n",  // bad value
		"# TYPE m counter\n# TYPE m gauge\nm 1\n", // re-typed family
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseExposition accepted %q", bad)
		}
	}
	// And a well-formed page with comments passes.
	good := "# scraped at some point\n# HELP m help text\n# TYPE m counter\nm{a=\"b\"} 4\nm 2 1700000000\n"
	fams, err := ParseExposition(strings.NewReader(good))
	if err != nil {
		t.Fatalf("ParseExposition rejected valid page: %v", err)
	}
	if len(fams["m"].Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fams["m"].Series))
	}
}
