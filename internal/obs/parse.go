package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// ExpoFamily is one metric family recovered from a text exposition:
// its declared type and every sample series seen under its name.
type ExpoFamily struct {
	Name   string
	Help   string
	Type   string
	Series []string // "name{labels}" of each sample line, in input order
}

var (
	metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	helpLine   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) ?(.*)$`)
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	// sampleLine splits "name{labels} value [timestamp]"; the label
	// block is validated separately.
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)( [0-9]+)?$`)
	labelPair  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// ParseExposition validates Prometheus text exposition (version 0.0.4)
// and returns the families found, keyed by base name — histogram
// _bucket/_sum/_count samples fold into their declared family. It is
// strict about what the repository's own WritePrometheus emits:
// malformed sample lines, bad label syntax, unparseable values and
// samples of histogram-suffixed names without a histogram TYPE
// declaration are errors.
func ParseExposition(r io.Reader) (map[string]*ExpoFamily, error) {
	fams := make(map[string]*ExpoFamily)
	fam := func(name string) *ExpoFamily {
		f := fams[name]
		if f == nil {
			f = &ExpoFamily{Name: name}
			fams[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := helpLine.FindStringSubmatch(line); m != nil {
				fam(m[1]).Help = m[2]
				continue
			}
			if m := typeLine.FindStringSubmatch(line); m != nil {
				f := fam(m[1])
				if f.Type != "" && f.Type != m[2] {
					return nil, fmt.Errorf("obs: line %d: family %s re-typed %s -> %s", n, m[1], f.Type, m[2])
				}
				f.Type = m[2]
				continue
			}
			// Other comments are legal and ignored.
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("obs: line %d: malformed sample %q", n, line)
		}
		name, labels, value := m[1], m[2], m[3]
		if !metricName.MatchString(name) {
			return nil, fmt.Errorf("obs: line %d: bad metric name %q", n, name)
		}
		if labels != "" {
			inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
			if inner != "" {
				for _, pair := range splitLabels(inner) {
					if !labelPair.MatchString(pair) {
						return nil, fmt.Errorf("obs: line %d: bad label %q", n, pair)
					}
				}
			}
		}
		if _, err := parseValue(value); err != nil {
			return nil, fmt.Errorf("obs: line %d: bad value %q: %v", n, value, err)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.Type == "histogram" {
					base = trimmed
				}
				break
			}
		}
		f := fam(base)
		f.Series = append(f.Series, name+labels)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// splitLabels splits a rendered label block on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// parseValue accepts floats plus the exposition's infinity spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// TotalSeries sums the sample series across families.
func TotalSeries(fams map[string]*ExpoFamily) int {
	n := 0
	for _, f := range fams {
		n += len(f.Series)
	}
	return n
}
