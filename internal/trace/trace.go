// Package trace generates the deterministic synthetic instruction
// streams that drive the simulator. A generator models one software
// thread: alternating user and OS phases (system calls, interrupts),
// an instruction mix, control flow over a code footprint with an
// L1-resident hot loop/function working set, and data accesses over
// private, shared and kernel regions with multi-tier reuse locality.
//
// Threads of one guest share the hot/warm sets of the shared-data and
// kernel regions (a database's buffer pool and lock tables, a web
// server's accept queues, the OS run queues) — that sharing is what
// produces the coherence traffic, upgrades and cache-to-cache
// transfers the paper's evaluation hinges on.
//
// Determinism is a hard requirement, not a convenience: the vocal and
// mute cores of a Reunion pair tee a single generator (trace.Shared)
// and must observe bit-identical instruction streams, or fingerprints
// would mismatch in fault-free execution.
package trace

import (
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Virtual-address region bases. Regions are far apart so they can never
// collide; the paging layer maps each to its own physical allocation.
const (
	VACodeBase   = 0x0000_0100_0000_0000
	VAPrivBase   = 0x0000_0200_0000_0000
	VASharedBase = 0x0000_0300_0000_0000
	VAOSCodeBase = 0x0000_0400_0000_0000
	VAOSDataBase = 0x0000_0500_0000_0000
)

const (
	pageBytes = 8 * 1024
	lineBytes = 64
)

// hotSet is a fixed-capacity ring of recently used line addresses.
// Re-referencing recent lines is what gives the stream its cache
// locality.
type hotSet struct {
	lines []uint64
	n     int
	next  int
}

func newHotSet(capacity int) *hotSet {
	return &hotSet{lines: make([]uint64, capacity)}
}

func (h *hotSet) push(la uint64) {
	h.lines[h.next] = la
	h.next = (h.next + 1) % len(h.lines)
	if h.n < len(h.lines) {
		h.n++
	}
}

func (h *hotSet) pick(r *sim.Rand) (uint64, bool) {
	if h.n == 0 {
		return 0, false
	}
	return h.lines[r.Intn(h.n)], true
}

// GuestState holds the truly write-shared lines of one guest: the user
// sync lines (locks, shared counters, queue heads in the shared data
// region) and the kernel sync lines (run queues, VFS locks). Every VCPU
// generator of one guest references the same GuestState, so the
// threads genuinely contend on the same lines — these are the lines
// whose stores invalidate every other cache and whose reloads arrive
// as 3-hop cache-to-cache transfers.
type GuestState struct {
	syncUser []uint64
	syncOS   []uint64
}

// NewGuestState builds the contended-line sets for one guest. Sync
// lines are spread one per page at the start of the shared and kernel
// regions, so they map to distinct cache sets and directory banks.
func NewGuestState(p *workload.Params) *GuestState {
	gs := &GuestState{}
	for i := 0; i < p.SyncLines; i++ {
		gs.syncUser = append(gs.syncUser, VASharedBase+uint64(i)*(pageBytes+lineBytes))
		gs.syncOS = append(gs.syncOS, VAOSDataBase+uint64(i)*(pageBytes+lineBytes))
	}
	return gs
}

// Gen produces the dynamic instruction stream of one thread.
type Gen struct {
	rng   *sim.Rand
	p     *workload.Params
	guest *GuestState

	seq       uint64
	inOS      bool
	remaining int

	pc      uint64
	lineRun int // instructions left before control transfers lines

	hotPriv    *hotSet
	warmPriv   *hotSet
	hotShared  *hotSet
	warmShared *hotSet
	hotOS      *hotSet
	warmOS     *hotSet

	hotCode    *hotSet
	warmCode   *hotSet
	hotOSCode  *hotSet
	warmOSCode *hotSet

	// Totals for calibration and tests.
	UserInsts uint64
	OSInsts   uint64
	Traps     uint64
}

// New creates a generator for the given workload with private working
// sets (a single-threaded view; threads that should share pass a
// common GuestState to NewInGuest).
func New(p *workload.Params, seed uint64) *Gen {
	return NewInGuest(p, seed, NewGuestState(p))
}

// NewInGuest creates a generator whose shared-region and kernel working
// sets are shared with the other generators of the same guest.
func NewInGuest(p *workload.Params, seed uint64, gs *GuestState) *Gen {
	g := &Gen{
		rng:        sim.NewRand(seed),
		p:          p,
		guest:      gs,
		pc:         VACodeBase,
		hotPriv:    newHotSet(p.HotLines),
		warmPriv:   newHotSet(p.WarmLines),
		hotShared:  newHotSet(p.HotLines / 2),
		warmShared: newHotSet(p.WarmLines / 2),
		hotOS:      newHotSet(p.HotLines / 2),
		warmOS:     newHotSet(p.WarmLines / 2),
		hotCode:    newHotSet(p.ICHotLines),
		warmCode:   newHotSet(p.ICHotLines * 4),
		hotOSCode:  newHotSet(p.ICHotLines),
		warmOSCode: newHotSet(p.ICHotLines * 4),
	}
	g.remaining = g.rng.Around(p.UserInstrsPerTrap)
	// Pre-populate the working sets so the reuse distribution is in
	// steady state from the first instruction (the caches themselves
	// still warm up during the measurement warmup window).
	fill := func(hs *hotSet, base, pages uint64) {
		for i := 0; i < len(hs.lines); i++ {
			hs.push(base + g.rng.Uint64n(pages*pageBytes/lineBytes)*lineBytes)
		}
	}
	fill(g.warmPriv, VAPrivBase, p.PrivPages)
	fill(g.hotPriv, VAPrivBase, p.PrivPages)
	fill(g.warmShared, VASharedBase, p.SharedPages)
	fill(g.hotShared, VASharedBase, p.SharedPages)
	fill(g.warmOS, VAOSDataBase, p.OSPages)
	fill(g.hotOS, VAOSDataBase, p.OSPages)
	fill(g.warmCode, VACodeBase, p.CodePages)
	fill(g.hotCode, VACodeBase, p.CodePages)
	fill(g.warmOSCode, VAOSCodeBase, p.OSCodePages)
	fill(g.hotOSCode, VAOSCodeBase, p.OSCodePages)
	return g
}

// Next returns the next dynamic instruction.
func (g *Gen) Next() isa.Inst {
	g.seq++
	var in isa.Inst
	if g.remaining <= 0 {
		in = g.phaseSwitch()
	} else {
		g.remaining--
		if g.inOS {
			g.OSInsts++
			in = g.gen(true)
		} else {
			g.UserInsts++
			in = g.gen(false)
		}
	}
	// Fingerprint once at generation: both cores of a DMR pair check the
	// same hash, and re-executions after a squash re-read it for free.
	in.FP = in.Fingerprint()
	return in
}

// phaseSwitch emits the trap-enter or trap-return marking a transition
// between user and OS execution.
func (g *Gen) phaseSwitch() isa.Inst {
	in := isa.Inst{Seq: g.seq, PC: g.pc, Result: g.rng.Next()}
	if !g.inOS {
		g.Traps++
		in.Class = isa.TrapEnter
		in.Priv = true
		g.inOS = true
		g.remaining = g.rng.Around(g.p.OSInstrsPerTrap)
	} else {
		in.Class = isa.TrapReturn
		in.Priv = true
		g.inOS = false
		g.remaining = g.rng.Around(g.p.UserInstrsPerTrap)
	}
	g.lineRun = 0 // trap handlers start on a different code line
	return in
}

// gen emits one ordinary instruction in the current phase.
func (g *Gen) gen(os bool) isa.Inst {
	p := g.p
	g.advancePC(os)
	in := isa.Inst{Seq: g.seq, PC: g.pc, Priv: os}
	u := g.rng.Float64()
	var loadF, storeF, branchF, siF float64
	if os {
		loadF, storeF, branchF, siF = p.OSLoadFrac, p.OSStoreFrac, p.OSBranchFrac, p.OSSIFrac
	} else {
		loadF, storeF, branchF, siF = p.LoadFrac, p.StoreFrac, p.BranchFrac, p.UserSIFrac
	}
	switch {
	case u < loadF:
		in.Class = isa.Load
		in.VA = g.dataAddr(os, false)
	case u < loadF+storeF:
		in.Class = isa.Store
		in.VA = g.dataAddr(os, true)
	case u < loadF+storeF+branchF:
		in.Class = isa.Branch
		in.Taken = g.rng.Bool(0.6)
		in.Misp = g.rng.Bool(p.MispredictRate)
	case u < loadF+storeF+branchF+siF:
		in.Class = isa.Serializing
	case u < loadF+storeF+branchF+siF+p.MulFrac:
		in.Class = isa.Mul
	case u < loadF+storeF+branchF+siF+p.MulFrac+p.DivFrac:
		in.Class = isa.Div
	default:
		in.Class = isa.ALU
	}
	dep := g.rng.Geometric(p.DepMean)
	if dep > 48 {
		dep = 48 // beyond the scheduler's scan depth every producer is done
	}
	in.Dep = uint8(dep)
	in.Result = g.rng.Next()
	return in
}

// advancePC models instruction-fetch behaviour: sequential runs of
// ICLineRunMean instructions on one line, then a control transfer to
// a hot line (the L1-resident loop working set, probability ICHotFrac),
// a warm line (the L2/L3-resident function working set), or — rarely —
// a cold line anywhere in the code footprint.
func (g *Gen) advancePC(os bool) {
	if g.lineRun > 0 {
		g.lineRun--
		g.pc += 4
		return
	}
	g.lineRun = g.rng.Geometric(g.p.ICLineRunMean)
	base, pages := uint64(VACodeBase), g.p.CodePages
	hot, warm := g.hotCode, g.warmCode
	if os {
		base, pages = uint64(VAOSCodeBase), g.p.OSCodePages
		hot, warm = g.hotOSCode, g.warmOSCode
	}
	u := g.rng.Float64()
	if la, ok := hot.pick(g.rng); ok && u < g.p.ICHotFrac {
		g.pc = la
		return
	}
	warmCut := g.p.ICHotFrac + (1-g.p.ICHotFrac)*0.9
	if la, ok := warm.pick(g.rng); ok && u < warmCut {
		hot.push(la)
		g.pc = la
		return
	}
	la := base + g.rng.Uint64n(pages*pageBytes/lineBytes)*lineBytes
	warm.push(la)
	g.pc = la
}

// dataAddr produces the virtual address of a load or store.
//
// A small fraction of accesses (SyncFrac in user code, OSSyncFrac in
// the kernel) hit the guest's write-shared sync lines. Everything else
// uses the three-tier reuse model over thread-local working sets: hot
// (L1-resident), warm (L2/L3-resident), cold (anywhere in the region
// footprint). Cold lines promote into the warm set; warm picks promote
// into the hot set, so the working set drifts slowly the way real heap
// and buffer-pool accesses do.
func (g *Gen) dataAddr(os, isStore bool) uint64 {
	p := g.p
	off := g.rng.Uint64n(lineBytes/8) * 8
	var base uint64
	var pages uint64
	var hot, warm *hotSet
	switch {
	case os && g.rng.Bool(p.OSSyncFrac):
		// Contended kernel structures (run queues, VFS, locks),
		// shared by every thread of the guest.
		return g.guest.syncOS[g.rng.Intn(len(g.guest.syncOS))] + off
	case os:
		base, pages, hot, warm = VAOSDataBase, p.OSPages, g.hotOS, g.warmOS
	case g.rng.Bool(p.SyncFrac):
		// Application-level locks and shared counters.
		return g.guest.syncUser[g.rng.Intn(len(g.guest.syncUser))] + off
	case g.rng.Bool(p.SharedFrac):
		base, pages, hot, warm = VASharedBase, p.SharedPages, g.hotShared, g.warmShared
	default:
		base, pages, hot, warm = VAPrivBase, p.PrivPages, g.hotPriv, g.warmPriv
	}
	_ = isStore
	u := g.rng.Float64()
	if la, ok := hot.pick(g.rng); ok && u < p.HotFrac {
		return la + off
	}
	if la, ok := warm.pick(g.rng); ok && u < p.HotFrac+p.WarmFrac {
		hot.push(la)
		return la + off
	}
	va := base + g.rng.Uint64n(pages*pageBytes/lineBytes)*lineBytes
	warm.push(va)
	return va + off
}

// Seq returns the number of instructions generated so far.
func (g *Gen) Seq() uint64 { return g.seq }

// InOS reports whether the stream is currently in an OS phase.
func (g *Gen) InOS() bool { return g.inOS }
