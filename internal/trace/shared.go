package trace

import "repro/internal/isa"

// Shared tees one generator to two consumers — the vocal and the mute
// core of a Reunion pair — guaranteeing they observe bit-identical
// instruction streams. The faster side pulls ahead into a buffer that
// is trimmed once both sides have consumed an instruction; the skew is
// naturally bounded by the pair's instruction windows because the
// Check stage prevents either core from committing far ahead of the
// other.
type Shared struct {
	g    *Gen
	buf  []isa.Inst
	base uint64 // stream index of buf[0]
	cur  [2]uint64
	solo bool // side 1 detached (performance mode)
}

// NewShared wraps g for two-consumer use. A Shared starts in solo mode
// (only side 0 attached); Attach joins side 1 at side 0's position.
func NewShared(g *Gen) *Shared {
	return &Shared{g: g, solo: true}
}

// Gen exposes the underlying generator (for calibration counters).
func (s *Shared) Gen() *Gen { return s.g }

// Attach joins side 1 (the mute) to the stream at side 0's current
// position. It is called when a pair enters DMR mode: the mute core
// resumes redundant execution exactly where the vocal stands.
func (s *Shared) Attach() {
	s.trim()
	s.cur[1] = s.cur[0]
	s.solo = false
}

// Detach removes side 1 (Leave-DMR: the vocal continues alone in
// performance mode).
func (s *Shared) Detach() {
	s.solo = true
	s.trim()
}

// Peek returns the instruction the given side's Next will consume,
// without advancing the cursor.
func (s *Shared) Peek(side int) isa.Inst {
	idx := s.cur[side]
	for idx >= s.base+uint64(len(s.buf)) {
		s.buf = append(s.buf, s.g.Next())
	}
	return s.buf[idx-s.base]
}

// Next returns the next instruction for the given side (0 = vocal,
// 1 = mute).
func (s *Shared) Next(side int) isa.Inst {
	idx := s.cur[side]
	for idx >= s.base+uint64(len(s.buf)) {
		s.buf = append(s.buf, s.g.Next())
	}
	in := s.buf[idx-s.base]
	s.cur[side] = idx + 1
	s.trim()
	return in
}

// Consume advances the given side's cursor past the instruction Peek
// returned, without copying it back out. It consumes exactly the
// instruction Next would have; callers that already hold the Peeked
// value (the core's fetch stage) save the copy.
func (s *Shared) Consume(side int) {
	idx := s.cur[side]
	for idx >= s.base+uint64(len(s.buf)) {
		s.buf = append(s.buf, s.g.Next())
	}
	s.cur[side] = idx + 1
	s.trim()
}

// MaxCursor returns the stream position of the side that has consumed
// the most instructions; the sequence number of the last instruction
// consumed by that side equals this value. Mode transitions use it as
// the drain barrier: both cores fetch exactly up to it, so both
// pipelines can drain without waiting on unfetched partner work.
func (s *Shared) MaxCursor() uint64 {
	m := s.cur[0]
	if !s.solo && s.cur[1] > m {
		m = s.cur[1]
	}
	return m
}

// Skew returns how many instructions side 0 is ahead of side 1
// (negative if behind).
func (s *Shared) Skew() int64 {
	return int64(s.cur[0]) - int64(s.cur[1])
}

// trimSlack bounds how many consumed instructions may sit at the front
// of the buffer before trim compacts it, so consumption costs amortized
// O(1) instead of one memmove of the in-flight tail per instruction.
const trimSlack = 64

// trim drops buffered instructions both sides have consumed. A fully
// consumed buffer truncates for free; otherwise compaction is deferred
// until trimSlack instructions of dead prefix have accumulated.
func (s *Shared) trim() {
	minCur := s.cur[0]
	if !s.solo && s.cur[1] < minCur {
		minCur = s.cur[1]
	}
	n := minCur - s.base
	if n == 0 {
		return
	}
	if n == uint64(len(s.buf)) {
		s.buf = s.buf[:0]
		s.base = minCur
		return
	}
	if n >= trimSlack {
		s.buf = s.buf[:copy(s.buf, s.buf[n:])]
		s.base = minCur
	}
}

// Side returns a single-consumer view of the stream.
func (s *Shared) Side(side int) *SideSource { return &SideSource{s: s, side: side} }

// SideSource adapts one side of a Shared stream to a pull interface.
type SideSource struct {
	s    *Shared
	side int
}

// Next pulls the next instruction for this side.
func (ss *SideSource) Next() isa.Inst { return ss.s.Next(ss.side) }

// Peek inspects the next instruction without consuming it.
func (ss *SideSource) Peek() isa.Inst { return ss.s.Peek(ss.side) }

// Consume advances past the instruction Peek returned without copying
// it back out.
func (ss *SideSource) Consume() { ss.s.Consume(ss.side) }
