package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/workload"
)

func apache(t testing.TB) *workload.Params {
	p, err := workload.ByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGenDeterminism is the property the Reunion pair depends on: two
// generators with identical parameters produce bit-identical streams.
func TestGenDeterminism(t *testing.T) {
	p := apache(t)
	gs := NewGuestState(p)
	a := NewInGuest(p, 99, gs)
	b := NewInGuest(p, 99, NewGuestState(p))
	for i := 0; i < 50_000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestGenSeedsDiffer(t *testing.T) {
	p := apache(t)
	a := New(p, 1)
	b := New(p, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 identical instructions", same)
	}
}

func TestInstructionMix(t *testing.T) {
	p := apache(t)
	g := New(p, 7)
	counts := make(map[isa.Class]int)
	const n = 400_000
	for i := 0; i < n; i++ {
		counts[g.Next().Class]++
	}
	loads := float64(counts[isa.Load]) / n
	stores := float64(counts[isa.Store]) / n
	branches := float64(counts[isa.Branch]) / n
	// The stream mixes user and OS phases; both mixes are ~0.24-0.28
	// loads, ~0.11-0.13 stores, ~0.14-0.18 branches.
	if loads < 0.20 || loads > 0.33 {
		t.Errorf("load fraction %v out of range", loads)
	}
	if stores < 0.08 || stores > 0.17 {
		t.Errorf("store fraction %v out of range", stores)
	}
	if branches < 0.10 || branches > 0.23 {
		t.Errorf("branch fraction %v out of range", branches)
	}
	diff := counts[isa.TrapEnter] - counts[isa.TrapReturn]
	if counts[isa.TrapEnter] == 0 || diff < 0 || diff > 1 {
		// The stream may end mid-OS-phase, so enters may lead by one.
		t.Errorf("unbalanced traps: %d enters, %d returns",
			counts[isa.TrapEnter], counts[isa.TrapReturn])
	}
}

func TestPhaseAlternation(t *testing.T) {
	p := apache(t)
	g := New(p, 3)
	inOS := false
	for i := 0; i < 300_000; i++ {
		in := g.Next()
		switch in.Class {
		case isa.TrapEnter:
			if inOS {
				t.Fatal("TrapEnter while already in OS")
			}
			inOS = true
		case isa.TrapReturn:
			if !inOS {
				t.Fatal("TrapReturn while in user mode")
			}
			inOS = false
		default:
			if in.Priv != inOS {
				t.Fatalf("instruction privilege %v does not match phase %v", in.Priv, inOS)
			}
		}
	}
	if g.Traps == 0 {
		t.Fatal("no traps generated")
	}
}

func TestAddressesWithinRegions(t *testing.T) {
	p := apache(t)
	g := New(p, 5)
	for i := 0; i < 200_000; i++ {
		in := g.Next()
		if !in.Class.IsMem() {
			continue
		}
		va := in.VA
		ok := (va >= VAPrivBase && va < VAPrivBase+p.PrivPages*pageBytes) ||
			(va >= VASharedBase && va < VASharedBase+p.SharedPages*pageBytes+uint64(p.SyncLines)*(pageBytes+lineBytes)) ||
			(va >= VAOSDataBase && va < VAOSDataBase+p.OSPages*pageBytes+uint64(p.SyncLines)*(pageBytes+lineBytes))
		if !ok {
			t.Fatalf("address %#x outside every data region", va)
		}
	}
}

func TestPCWithinCodeRegions(t *testing.T) {
	p := apache(t)
	g := New(p, 5)
	for i := 0; i < 100_000; i++ {
		in := g.Next()
		userOK := in.PC >= VACodeBase && in.PC < VACodeBase+p.CodePages*pageBytes
		osOK := in.PC >= VAOSCodeBase && in.PC < VAOSCodeBase+p.OSCodePages*pageBytes
		if !userOK && !osOK {
			t.Fatalf("PC %#x outside code regions", in.PC)
		}
	}
}

func TestSyncLinesShared(t *testing.T) {
	p := apache(t)
	gs := NewGuestState(p)
	a := NewInGuest(p, 1, gs)
	b := NewInGuest(p, 2, gs)
	seen := make(map[uint64]int)
	collect := func(g *Gen, bit int) {
		for i := 0; i < 300_000; i++ {
			in := g.Next()
			if in.Class.IsMem() && in.VA >= VASharedBase && in.VA < VAOSCodeBase {
				la := in.VA &^ 63
				for _, s := range gs.syncUser {
					if la == s {
						seen[la] |= bit
					}
				}
			}
		}
	}
	collect(a, 1)
	collect(b, 2)
	both := 0
	for _, v := range seen {
		if v == 3 {
			both++
		}
	}
	if both == 0 {
		t.Fatal("no sync line was touched by both threads")
	}
}

func TestDepBounded(t *testing.T) {
	p := apache(t)
	g := New(p, 11)
	err := quick.Check(func(steps uint8) bool {
		for i := 0; i < int(steps)+1; i++ {
			if in := g.Next(); in.Dep > 48 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSharedStreamTee(t *testing.T) {
	p := apache(t)
	s := NewShared(NewInGuest(p, 42, NewGuestState(p)))
	ref := NewInGuest(p, 42, NewGuestState(p))
	s.Attach()
	var fromA, fromB, want []isa.Inst
	for i := 0; i < 5000; i++ {
		want = append(want, ref.Next())
	}
	// Interleave pulls with different paces.
	for len(fromA) < 5000 || len(fromB) < 5000 {
		if len(fromA) < 5000 {
			fromA = append(fromA, s.Next(0))
		}
		if len(fromB) < 5000 && len(fromA)%3 == 0 {
			fromB = append(fromB, s.Next(1))
		}
		if len(fromA) == 5000 {
			for len(fromB) < 5000 {
				fromB = append(fromB, s.Next(1))
			}
		}
	}
	for i := range want {
		if fromA[i] != want[i] || fromB[i] != want[i] {
			t.Fatalf("tee diverged at %d", i)
		}
	}
}

func TestSharedPeekDoesNotConsume(t *testing.T) {
	p := apache(t)
	s := NewShared(New(p, 9))
	pk := s.Peek(0)
	if got := s.Next(0); got != pk {
		t.Fatal("Peek did not match the following Next")
	}
}

func TestSharedAttachAtVocalPosition(t *testing.T) {
	p := apache(t)
	s := NewShared(New(p, 13))
	for i := 0; i < 100; i++ {
		s.Next(0)
	}
	pk := s.Peek(0)
	s.Attach()
	if got := s.Next(1); got != pk {
		t.Fatal("mute did not start at the vocal's position")
	}
	if s.Skew() != -1 {
		t.Fatalf("skew = %d, want -1 (mute consumed one, vocal not yet)", s.Skew())
	}
	s.Detach()
	// Vocal continues unperturbed.
	if got := s.Next(0); got != pk {
		t.Fatal("vocal stream disturbed by attach/detach")
	}
}

func TestSideSourceAdapters(t *testing.T) {
	p := apache(t)
	s := NewShared(New(p, 17))
	s.Attach()
	v, m := s.Side(0), s.Side(1)
	for i := 0; i < 1000; i++ {
		a := v.Peek()
		if got := v.Next(); got != a {
			t.Fatal("vocal side peek/next mismatch")
		}
		if got := m.Next(); got != a {
			t.Fatal("sides diverged")
		}
	}
}
