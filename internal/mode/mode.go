// Package mode is the runtime mode-policy layer of the Mixed-Mode
// Multicore: the seam between the chip's mode-transition machinery
// (internal/core) and the question *when* a core pair should run
// coupled (DMR, reliable) or decoupled (independent, performance).
//
// The paper's evaluated systems are static answers — every pair's plan
// is fixed at construction and, on a consolidated server, rotated at
// gang timeslice boundaries. This package makes the answer a policy:
// the chip consults a Policy at scheduling boundaries (timeslice
// expiry, periodic utilization samples, protection-mechanism events)
// and the policy returns the next per-pair assignment. The seven
// static system kinds are one registered policy ("static", a pure
// reformulation of the gang rotation, byte-identical to the
// pre-policy implementation); dynamic policies — utilization-triggered
// coupling, duty-cycle DMR scrubbing, fault-triggered escalation —
// are the new scenario axis the refactor opens.
//
// The package deliberately knows nothing about VCPUs, cores or cache
// hierarchies. A policy sees pair indices, roster groups (the gang
// groups the system kind pre-built) and per-pair utilization/​status
// summaries, and answers with (group, override) assignments. The chip
// owns the mapping from assignments to concrete pair plans, skips
// pairs whose mode transition is still in flight, and drops decisions
// that would not change the pair's plan.
package mode

import "repro/internal/sim"

// Override adjusts how a pair runs the roster group it was assigned:
// as built (None), forced into DMR coupling (Couple), or forced into
// independent performance execution (Decouple). Overrides that do not
// apply to the group's built plan — coupling an already-DMR plan,
// decoupling an already-independent one — are no-ops, which lets one
// policy express "scrub now" uniformly across heterogeneous rosters.
type Override uint8

const (
	// OverrideNone runs the group's plan as the system kind built it.
	OverrideNone Override = iota
	// OverrideCouple forces the pair into DMR: the group's vocal VCPU
	// runs redundantly on both cores; an independent mute VCPU, if the
	// plan had one, is displaced (its state is saved at Enter-DMR).
	OverrideCouple
	// OverrideDecouple forces the pair out of DMR: the vocal VCPU runs
	// alone in performance mode and the mute core idles.
	OverrideDecouple
)

// String names the override.
func (o Override) String() string {
	switch o {
	case OverrideNone:
		return "none"
	case OverrideCouple:
		return "couple"
	case OverrideDecouple:
		return "decouple"
	default:
		return "?"
	}
}

// Assignment is a policy's answer for one pair: which roster group to
// run and how to override its coupling. The zero value — group 0, no
// override — is the initial state of every system kind.
type Assignment struct {
	Group    int
	Override Override
}

// PairStatus is the chip's per-pair report at a decision point.
type PairStatus struct {
	// Assignment is the pair's current target assignment: the one most
	// recently applied, or the one a still-in-flight transition is
	// moving toward.
	Assignment Assignment
	// DMR reports whether the currently *applied* plan runs coupled.
	// It can disagree with Assignment while a transition is in flight,
	// and with Assignment.Override when a trap hook (single-OS mode
	// switching) changed the coupling underneath the policy.
	DMR bool
	// InTransition reports a mode transition in flight; decisions for
	// this pair will be dropped, so a policy that must win re-issues
	// them at its next decision point.
	InTransition bool
	// VocalCommits / MuteCommits are the instructions committed on the
	// pair's even / odd core since the previous decision point — the
	// utilization signal. In DMR mode the mute core's commits mirror
	// the vocal's.
	VocalCommits, MuteCommits uint64
	// Window is the number of cycles since the previous decision point
	// (the denominator of a commit-rate computed from the deltas
	// above). Zero when two events land on the same cycle.
	Window sim.Cycle
	// VocalBusy / MuteBusy report whether each core currently has an
	// instruction stream (parked cores are not busy).
	VocalBusy, MuteBusy bool
}

// EventKind classifies a decision point.
type EventKind uint8

const (
	// EvTimer fires when the simulation clock reaches the policy's
	// NextEventAt horizon: gang timeslice expiries, utilization sample
	// periods, duty-cycle boundaries, escalation decay deadlines.
	EvTimer EventKind = iota
	// EvMachineCheck fires when a pair's persistent fingerprint
	// divergence escalated to a machine check (Pair is set).
	EvMachineCheck
	// EvPABException fires when the PAB denied a performance-mode
	// store on one of the pair's cores (Pair is set).
	EvPABException
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvTimer:
		return "timer"
	case EvMachineCheck:
		return "machine-check"
	case EvPABException:
		return "pab-exception"
	default:
		return "?"
	}
}

// Event is one decision point, timestamped in chip cycles. Pair is the
// affected pair index, or -1 for chip-wide events (timers).
type Event struct {
	Kind  EventKind
	Pair  int
	Cycle sim.Cycle
}

// Topology tells a policy what it schedules: how many core pairs the
// chip has, how many roster groups the system kind pre-built (one per
// gang-scheduled guest set), and the configured gang timeslice.
type Topology struct {
	Pairs     int
	Groups    int
	Timeslice sim.Cycle
}

// Policy decides, at scheduling boundaries, what every core pair runs
// next. Implementations are stateful per simulation run and must be
// deterministic: the same event/status sequence must produce the same
// decisions (no wall clock, no randomness outside seeded generators).
// A Policy instance must not be shared between chips.
type Policy interface {
	// Name returns the policy's canonical, parseable name: Parse(Name())
	// yields an equivalent policy.
	Name() string
	// Reset prepares the policy for one run and returns the initial
	// per-pair assignments (length t.Pairs). The chip applies them
	// directly, with no transition cost, at cycle 0.
	Reset(t Topology) []Assignment
	// NextEventAt returns the next cycle at which the policy wants an
	// EvTimer decision, or sim.Never for purely event-driven policies.
	// It is re-read after every Decide.
	NextEventAt() sim.Cycle
	// Decide handles one event and returns the desired per-pair
	// assignments, or nil for "no change". The chip applies the
	// returned assignments to every pair whose plan would actually
	// change and whose transition machinery is free; assignments for
	// busy pairs are dropped (the policy sees the divergence in the
	// next PairStatus and may re-issue).
	//
	// The returned slice is scratch owned by the policy: it may be
	// overwritten by the next Decide (or Reset), so callers must copy
	// any assignments they retain past the call.
	Decide(ev Event, pairs []PairStatus) []Assignment
	// WantsFaults reports whether the chip should forward protection
	// events (EvMachineCheck, EvPABException) to Decide. Policies that
	// ignore faults return false so fault campaigns on static systems
	// pay no policy overhead.
	WantsFaults() bool
}

// Program is a compiled decision schedule: the complete, deterministic
// timer behavior of a status-oblivious policy, reduced to four numbers
// the chip can evaluate inline. A program describes a gang rotation
// (Groups taking turns in Slice-cycle timeslices; Groups <= 1 means no
// rotation ever fires) optionally composed with a duty cycle (the first
// Window cycles of every Period force OverrideCouple, the rest force
// OverrideDecouple; Period 0 means no duty phase and OverrideNone
// throughout). The chip's compiled fast path replays the schedule
// without calling Decide, devirtualizing the policy out of the hot
// loop; the golden-row and Run-vs-Tick regressions pin the replay to
// the generic path cycle-for-cycle.
type Program struct {
	Groups int
	Slice  sim.Cycle
	Period sim.Cycle
	Window sim.Cycle
}

// Scheduled is implemented by policies whose entire decision sequence
// is a precompilable function of the clock — no dependence on pair
// status or protection events. Compile reports ok=false when the
// policy's current parameterization cannot be expressed as a Program,
// in which case the chip falls back to the generic Decide path.
type Scheduled interface {
	Policy
	Compile(t Topology) (Program, bool)
}
