package mode

import (
	"fmt"

	"repro/internal/sim"
)

// utilization is the utilization-triggered coupling policy: pairs run
// coupled (DMR) by default, decouple to performance mode while the
// guest is under load — the window where redundancy costs the most
// throughput — and re-couple as soon as the pair's commit rate drops
// back to where the redundant half would mostly idle anyway, making
// the reliability nearly free. The commit-rate hysteresis (decouple
// above decoupleIPC, re-couple below coupleIPC) keeps pairs from
// oscillating on noise.
type utilization struct {
	rot    rotor
	period sim.Cycle // sampling period
	// Hysteresis thresholds in commits per cycle on the vocal core.
	decoupleIPC, coupleIPC float64

	pairs    int
	sampleAt sim.Cycle
	ovr      []Override
	asg      []Assignment // Decide scratch, reused across decisions
}

// Name implements Policy.
func (p *utilization) Name() string { return "utilization" }

// WantsFaults implements Policy.
func (p *utilization) WantsFaults() bool { return false }

// Reset implements Policy.
func (p *utilization) Reset(t Topology) []Assignment {
	p.rot.reset(t)
	p.pairs = t.Pairs
	p.sampleAt = p.period
	p.ovr = make([]Override, t.Pairs)
	p.asg = make([]Assignment, t.Pairs)
	return p.asg
}

// NextEventAt implements Policy.
func (p *utilization) NextEventAt() sim.Cycle {
	if p.rot.nextAt < p.sampleAt {
		return p.rot.nextAt
	}
	return p.sampleAt
}

// Decide implements Policy.
func (p *utilization) Decide(ev Event, pairs []PairStatus) []Assignment {
	if ev.Kind != EvTimer {
		return nil
	}
	rotated := p.rot.due(ev.Cycle)
	sampled := false
	if ev.Cycle >= p.sampleAt {
		sampled = true
		p.sampleAt = ev.Cycle + p.period
		for i := range pairs {
			st := &pairs[i]
			if st.InTransition || st.Window == 0 {
				continue
			}
			rate := float64(st.VocalCommits) / float64(st.Window)
			switch {
			case st.DMR && rate >= p.decoupleIPC:
				p.ovr[i] = OverrideDecouple
			case !st.DMR && rate < p.coupleIPC:
				p.ovr[i] = OverrideCouple
			}
		}
	}
	if !rotated && !sampled {
		return nil
	}
	asg := p.asg
	for i := range asg {
		asg[i] = Assignment{Group: p.rot.active, Override: p.ovr[i]}
	}
	return asg
}

// dutyCycle is the duty-cycle DMR policy: periodic scrubbing windows.
// During the first window-cycles of every period each pair is forced
// into DMR coupling (scrub: divergence accumulated while unprotected
// is caught by the Enter-DMR verification and the fingerprint
// stream); for the rest of the period pairs run decoupled for
// performance. On rosters whose plans are already coupled (Reunion,
// DMR-base) the policy reads inversely: pairs get periodic
// performance windows and spend the duty fraction in DMR.
type dutyCycle struct {
	rot    rotor
	period sim.Cycle
	window sim.Cycle // coupled prefix of each period
	pct    int       // the duty percent as specified, echoed by Name
	pairs  int
	from   sim.Cycle    // boundaries at or after this cycle are upcoming
	asg    []Assignment // Decide scratch, reused across decisions
}

// Name implements Policy: the canonical parameterized form, with the
// defaults elided. The duty percent is the one that was parsed, not
// recomputed from the window — floor(100*window/period) loses a
// percent whenever period is not divisible by 100, which would make
// canonicalization non-idempotent and split one intended
// configuration across several cache cells.
func (p *dutyCycle) Name() string {
	if p.period == dutyDefaultPeriod && p.pct == dutyDefaultPct {
		return "duty-cycle"
	}
	return fmt.Sprintf("duty-cycle:%d:%d", p.period, p.pct)
}

// WantsFaults implements Policy.
func (p *dutyCycle) WantsFaults() bool { return false }

// Reset implements Policy.
func (p *dutyCycle) Reset(t Topology) []Assignment {
	p.rot.reset(t)
	p.pairs = t.Pairs
	p.from = 1 // cycle 0's scrub window is applied by Reset itself
	p.asg = make([]Assignment, t.Pairs)
	for i := range p.asg {
		p.asg[i] = Assignment{Override: OverrideCouple} // cycle 0 opens a scrub window
	}
	return p.asg
}

// NextEventAt implements Policy: the earlier of the gang rotation and
// the next duty boundary.
func (p *dutyCycle) NextEventAt() sim.Cycle {
	b := p.nextBoundary()
	if p.rot.nextAt < b {
		return p.rot.nextAt
	}
	return b
}

// nextBoundary returns the first duty-phase boundary at or after
// p.from (the cycle following the last handled decision). Boundaries
// are the period starts (couple) and the window ends (decouple); a
// p.from sitting exactly on a period start IS the next boundary —
// returning the window end instead would silently skip that period's
// scrub window.
func (p *dutyCycle) nextBoundary() sim.Cycle {
	pos := p.from % p.period
	switch {
	case pos == 0:
		return p.from
	case pos <= p.window:
		return p.from - pos + p.window
	default:
		return p.from - pos + p.period
	}
}

// Decide implements Policy.
func (p *dutyCycle) Decide(ev Event, pairs []PairStatus) []Assignment {
	if ev.Kind != EvTimer {
		return nil
	}
	p.rot.due(ev.Cycle)
	ovr := OverrideDecouple
	if ev.Cycle%p.period < p.window {
		ovr = OverrideCouple
	}
	asg := p.asg
	for i := range asg {
		asg[i] = Assignment{Group: p.rot.active, Override: ovr}
	}
	// NextEventAt must move past the boundary just handled.
	p.from = ev.Cycle + 1
	return asg
}

// Compile implements Scheduled: the gang rotation composed with the
// duty phase — both pure functions of the clock.
func (p *dutyCycle) Compile(t Topology) (Program, bool) {
	return Program{Groups: t.Groups, Slice: t.Timeslice, Period: p.period, Window: p.window}, true
}

// faultEsc is the fault-escalation policy: a pair runs decoupled (as
// its roster built it) until a protection mechanism fires on it — a
// machine check from persistent fingerprint divergence, or a PAB
// exception stopping an unprotected store — at which point the pair
// escalates to DMR coupling. Each further event extends the
// escalation; after a clean decay interval the pair de-escalates back
// to its built plan. Decisions dropped because the pair's transition
// machinery was busy are re-issued on a short retry timer.
type faultEsc struct {
	rot   rotor
	decay sim.Cycle
	retry sim.Cycle

	pairs    int
	deadline []sim.Cycle // per pair; 0 = not escalated
	retryAt  sim.Cycle
	asg      []Assignment // Decide scratch, reused across decisions
}

// Name implements Policy.
func (p *faultEsc) Name() string {
	if p.decay == escDefaultDecay {
		return "fault-escalation"
	}
	return fmt.Sprintf("fault-escalation:%d", p.decay)
}

// WantsFaults implements Policy: this is the one registered policy
// driven by protection events.
func (p *faultEsc) WantsFaults() bool { return true }

// Reset implements Policy.
func (p *faultEsc) Reset(t Topology) []Assignment {
	p.rot.reset(t)
	p.pairs = t.Pairs
	p.deadline = make([]sim.Cycle, t.Pairs)
	p.retryAt = sim.Never
	p.asg = make([]Assignment, t.Pairs)
	return p.asg
}

// NextEventAt implements Policy: the earliest of rotation, the next
// escalation decay, and the retry timer.
func (p *faultEsc) NextEventAt() sim.Cycle {
	at := p.rot.nextAt
	for _, d := range p.deadline {
		if d != 0 && d < at {
			at = d
		}
	}
	if p.retryAt < at {
		at = p.retryAt
	}
	return at
}

// Decide implements Policy.
func (p *faultEsc) Decide(ev Event, pairs []PairStatus) []Assignment {
	switch ev.Kind {
	case EvMachineCheck, EvPABException:
		if ev.Pair >= 0 && ev.Pair < p.pairs {
			p.deadline[ev.Pair] = ev.Cycle + p.decay
		}
	case EvTimer:
		p.rot.due(ev.Cycle)
		if ev.Cycle >= p.retryAt {
			p.retryAt = sim.Never
		}
		for i, d := range p.deadline {
			if d != 0 && d <= ev.Cycle {
				p.deadline[i] = 0
			}
		}
	}
	asg := p.asg
	for i := range asg {
		asg[i] = Assignment{Group: p.rot.active}
		if p.deadline[i] != 0 {
			asg[i].Override = OverrideCouple
		}
	}
	// A desired assignment that differs from the pair's current target
	// while its transition machinery is busy will be dropped by the
	// chip; arm the retry timer so it is re-issued promptly.
	for i := range pairs {
		if pairs[i].InTransition && asg[i] != pairs[i].Assignment {
			if at := ev.Cycle + p.retry; at < p.retryAt {
				p.retryAt = at
			}
		}
	}
	return asg
}
