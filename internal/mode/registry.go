package mode

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Default parameters of the registered policies. Exported indirectly
// through the canonical names; campaigns that want different values
// use the parameterized name forms, which flow through job
// fingerprints, cache keys and the distributed protocol like any
// other policy name.
const (
	// The utilization thresholds are commit rates per core cycle.
	// The simulated workloads commit ~0.03-0.06 instructions per core
	// cycle when busy (they are memory-bound server mixes), so the
	// hysteresis band sits just under the busy rate: a coupled pair
	// under real load decouples for performance, and re-couples once
	// its rate collapses into stall/idle territory where the
	// redundancy is nearly free.
	utilDefaultPeriod      = sim.Cycle(20_000)
	utilDefaultDecoupleIPC = 0.035
	utilDefaultCoupleIPC   = 0.015

	dutyDefaultPeriod = sim.Cycle(60_000)
	dutyDefaultPct    = 25

	escDefaultDecay = sim.Cycle(150_000)
	escRetry        = sim.Cycle(2_000)
)

// dutyWindow is the scrub window for a period at a duty percent.
func dutyWindow(period sim.Cycle, pct int) sim.Cycle {
	return period * sim.Cycle(pct) / 100
}

// factories maps base policy names to constructors taking the
// colon-separated parameter suffix of a policy spec.
var factories = map[string]func(args []string) (Policy, error){
	"static": func(args []string) (Policy, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("mode: static takes no parameters")
		}
		return &static{}, nil
	},
	"utilization": func(args []string) (Policy, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("mode: utilization takes no parameters")
		}
		return &utilization{
			period:      utilDefaultPeriod,
			decoupleIPC: utilDefaultDecoupleIPC,
			coupleIPC:   utilDefaultCoupleIPC,
		}, nil
	},
	// duty-cycle[:period[:dutypct]] — e.g. duty-cycle:60000:25 couples
	// each pair for the first 25% of every 60k-cycle period.
	"duty-cycle": func(args []string) (Policy, error) {
		p := &dutyCycle{period: dutyDefaultPeriod, pct: dutyDefaultPct}
		if len(args) > 2 {
			return nil, fmt.Errorf("mode: duty-cycle takes at most period and duty%% parameters")
		}
		if len(args) >= 1 {
			n, err := strconv.ParseUint(args[0], 10, 32)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("mode: duty-cycle period %q must be a positive cycle count", args[0])
			}
			p.period = sim.Cycle(n)
		}
		if len(args) == 2 {
			pct, err := strconv.ParseUint(args[1], 10, 8)
			if err != nil || pct == 0 || pct >= 100 {
				return nil, fmt.Errorf("mode: duty-cycle duty %q must be a percentage in 1..99", args[1])
			}
			p.pct = int(pct)
		}
		p.window = dutyWindow(p.period, p.pct)
		if p.window == 0 {
			return nil, fmt.Errorf("mode: duty-cycle window rounds to zero cycles (period %d too short)", p.period)
		}
		return p, nil
	},
	// fault-escalation[:decay] — decay is the clean interval, in
	// cycles, after which an escalated pair returns to its built plan.
	"fault-escalation": func(args []string) (Policy, error) {
		p := &faultEsc{decay: escDefaultDecay, retry: escRetry}
		if len(args) > 1 {
			return nil, fmt.Errorf("mode: fault-escalation takes at most a decay parameter")
		}
		if len(args) == 1 {
			n, err := strconv.ParseUint(args[0], 10, 32)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("mode: fault-escalation decay %q must be a positive cycle count", args[0])
			}
			p.decay = sim.Cycle(n)
		}
		return p, nil
	},
}

// New builds a fresh policy instance from a policy spec: a registered
// base name with optional colon-separated parameters. The empty spec
// resolves to "static", the policy form of the paper's pre-built
// system kinds. Instances are stateful and must not be shared between
// chips.
func New(spec string) (Policy, error) {
	if spec == "" {
		spec = "static"
	}
	parts := strings.Split(spec, ":")
	f, ok := factories[parts[0]]
	if !ok {
		return nil, fmt.Errorf("mode: unknown policy %q (valid: %s)", parts[0], strings.Join(Names(), ", "))
	}
	return f(parts[1:])
}

// Parse validates a policy spec and returns its canonical form (the
// name the built policy reports). Empty canonicalizes to "static".
func Parse(spec string) (string, error) {
	p, err := New(spec)
	if err != nil {
		return "", err
	}
	return p.Name(), nil
}

// Names lists the registered base policy names, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Dynamic lists the registered policies that can change a pair's
// coupling at runtime (everything but "static"), in sorted order —
// the default policy axis of catalogs and sweeps.
func Dynamic() []string {
	var out []string
	for _, n := range Names() {
		if n != "static" {
			out = append(out, n)
		}
	}
	return out
}
