package mode

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestParseRoundTrip: every registered policy's canonical name parses
// back to itself, and the empty spec canonicalizes to static.
func TestParseRoundTrip(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
		canon, err := Parse(name)
		if err != nil || canon != name {
			t.Errorf("Parse(%q) = %q, %v", name, canon, err)
		}
	}
	if canon, err := Parse(""); err != nil || canon != "static" {
		t.Errorf("Parse(\"\") = %q, %v; want static", canon, err)
	}
}

// TestParseParameterizedForms: parameter suffixes round-trip through
// the canonical name, defaults elide, and malformed forms are
// rejected with the valid-name list.
func TestParseParameterizedForms(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"duty-cycle:80000:50", "duty-cycle:80000:50"},
		{"duty-cycle:60000:25", "duty-cycle"}, // the defaults elide
		// A period not divisible by 100 must echo the parsed percent,
		// not a floor-recomputed one (25 -> 24 -> 23 would split one
		// configuration across several cache cells).
		{"duty-cycle:12345:25", "duty-cycle:12345:25"},
		{"fault-escalation:99000", "fault-escalation:99000"},
		{"fault-escalation:150000", "fault-escalation"},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if err != nil || got != c.want {
			t.Errorf("Parse(%q) = %q, %v; want %q", c.spec, got, err, c.want)
		}
		// The canonical form must itself round-trip.
		again, err := Parse(got)
		if err != nil || again != got {
			t.Errorf("Parse(%q) = %q, %v; not canonical", got, again, err)
		}
	}
	for _, bad := range []string{
		"nope", "static:1", "duty-cycle:0", "duty-cycle:x", "duty-cycle:60000:0",
		"duty-cycle:60000:100", "duty-cycle:1:1:1", "fault-escalation:0", "utilization:5",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	if _, err := Parse("nope"); err == nil || !strings.Contains(err.Error(), "static") {
		t.Errorf("unknown-policy error should list valid names, got %v", err)
	}
}

// TestStaticRotation: the static policy reproduces the gang
// scheduler's rotation semantics — first switch at the timeslice,
// deadlines re-armed relative to the decision cycle, single-group
// rosters never rotate.
func TestStaticRotation(t *testing.T) {
	p, _ := New("static")
	asg := p.Reset(Topology{Pairs: 4, Groups: 2, Timeslice: 1000})
	if len(asg) != 4 {
		t.Fatalf("got %d initial assignments", len(asg))
	}
	for i, a := range asg {
		if a != (Assignment{}) {
			t.Fatalf("initial assignment %d = %+v", i, a)
		}
	}
	if at := p.NextEventAt(); at != 1000 {
		t.Fatalf("first deadline %d, want 1000", at)
	}
	st := make([]PairStatus, 4)
	// A decision arriving late (cycle 1200) re-arms relative to the
	// decision cycle, exactly like the pre-policy gang scheduler.
	out := p.Decide(Event{Kind: EvTimer, Pair: -1, Cycle: 1200}, st)
	if out == nil || out[0].Group != 1 {
		t.Fatalf("rotation missing: %+v", out)
	}
	if at := p.NextEventAt(); at != 2200 {
		t.Fatalf("re-armed deadline %d, want 2200", at)
	}
	// Non-timer events are ignored.
	if out := p.Decide(Event{Kind: EvMachineCheck, Pair: 0, Cycle: 1300}, st); out != nil {
		t.Fatalf("static reacted to a fault event: %+v", out)
	}

	single, _ := New("static")
	single.Reset(Topology{Pairs: 4, Groups: 1, Timeslice: 1000})
	if at := single.NextEventAt(); at != sim.Never {
		t.Fatalf("single-group roster got a deadline: %d", at)
	}
}

// TestDutyCycleBoundaries: coupled during the scrub window, decoupled
// after it, period after period.
func TestDutyCycleBoundaries(t *testing.T) {
	p, _ := New("duty-cycle:1000:25") // window = 250
	asg := p.Reset(Topology{Pairs: 2, Groups: 1, Timeslice: 0})
	if asg[0].Override != OverrideCouple {
		t.Fatal("cycle 0 must open a scrub window")
	}
	st := make([]PairStatus, 2)
	expect := []struct {
		at   sim.Cycle
		next Override
	}{
		{250, OverrideDecouple},  // scrub window ends
		{1000, OverrideCouple},   // next period opens
		{1250, OverrideDecouple}, // and closes its window
	}
	for _, e := range expect {
		if at := p.NextEventAt(); at != e.at {
			t.Fatalf("boundary at %d, want %d", at, e.at)
		}
		out := p.Decide(Event{Kind: EvTimer, Pair: -1, Cycle: p.NextEventAt()}, st)
		if out == nil || out[0].Override != e.next || out[1].Override != e.next {
			t.Fatalf("at %d: got %+v, want override %v", e.at, out, e.next)
		}
	}

	// A stray timer decision landing one cycle before a period start
	// (e.g. a gang rotation at k*period-1) must not skip that period's
	// scrub window: the next boundary is the period start itself.
	p.Decide(Event{Kind: EvTimer, Pair: -1, Cycle: 1999}, st)
	if at := p.NextEventAt(); at != 2000 {
		t.Fatalf("boundary after off-cycle decision at 1999: %d, want 2000", at)
	}
	out := p.Decide(Event{Kind: EvTimer, Pair: -1, Cycle: 2000}, st)
	if out == nil || out[0].Override != OverrideCouple {
		t.Fatalf("period start skipped its scrub window: %+v", out)
	}
}

// TestFaultEscalationDecay: a protection event couples the pair, a
// clean decay interval releases it, and a dropped decision arms the
// retry timer.
func TestFaultEscalationDecay(t *testing.T) {
	p, _ := New("fault-escalation:5000")
	p.Reset(Topology{Pairs: 2, Groups: 1, Timeslice: 0})
	st := make([]PairStatus, 2)

	out := p.Decide(Event{Kind: EvPABException, Pair: 1, Cycle: 100}, st)
	if out == nil || out[1].Override != OverrideCouple || out[0].Override != OverrideNone {
		t.Fatalf("escalation missing: %+v", out)
	}
	if at := p.NextEventAt(); at != 5100 {
		t.Fatalf("decay deadline %d, want 5100", at)
	}
	// A further event extends the escalation.
	p.Decide(Event{Kind: EvMachineCheck, Pair: 1, Cycle: 2000}, st)
	if at := p.NextEventAt(); at != 7000 {
		t.Fatalf("extended deadline %d, want 7000", at)
	}
	out = p.Decide(Event{Kind: EvTimer, Pair: -1, Cycle: 7000}, st)
	if out == nil || out[1].Override != OverrideNone {
		t.Fatalf("decay did not release the pair: %+v", out)
	}

	// Desired-vs-actual divergence on a transitioning pair arms the
	// retry timer.
	p.Decide(Event{Kind: EvPABException, Pair: 0, Cycle: 8000}, st)
	st[0].InTransition = true
	st[0].Assignment = Assignment{}
	p.Decide(Event{Kind: EvTimer, Pair: -1, Cycle: 9000}, st)
	if at := p.NextEventAt(); at != 9000+escRetry {
		t.Fatalf("retry not armed: next %d, want %d", at, 9000+escRetry)
	}
}

// TestUtilizationHysteresis: a busy coupled pair decouples; it only
// re-couples after the rate collapses below the lower threshold.
func TestUtilizationHysteresis(t *testing.T) {
	p, _ := New("utilization")
	p.Reset(Topology{Pairs: 1, Groups: 1, Timeslice: 0})
	busy := []PairStatus{{DMR: true, Window: 1000, VocalCommits: 100}} // rate 0.1
	out := p.Decide(Event{Kind: EvTimer, Pair: -1, Cycle: p.NextEventAt()}, busy)
	if out == nil || out[0].Override != OverrideDecouple {
		t.Fatalf("busy pair did not decouple: %+v", out)
	}
	// Mid-band rate keeps the decoupled state (hysteresis).
	mid := []PairStatus{{DMR: false, Window: 1000, VocalCommits: 25}} // rate 0.025
	out = p.Decide(Event{Kind: EvTimer, Pair: -1, Cycle: p.NextEventAt()}, mid)
	if out == nil || out[0].Override != OverrideDecouple {
		t.Fatalf("mid-band rate flapped: %+v", out)
	}
	idle := []PairStatus{{DMR: false, Window: 1000, VocalCommits: 2}} // rate 0.002
	out = p.Decide(Event{Kind: EvTimer, Pair: -1, Cycle: p.NextEventAt()}, idle)
	if out == nil || out[0].Override != OverrideCouple {
		t.Fatalf("idle pair did not re-couple: %+v", out)
	}
}

// TestDynamicExcludesStatic pins the catalog helper.
func TestDynamicExcludesStatic(t *testing.T) {
	for _, n := range Dynamic() {
		if n == "static" {
			t.Fatal("Dynamic() lists static")
		}
	}
	if len(Dynamic()) != len(Names())-1 {
		t.Fatalf("Dynamic() = %v, Names() = %v", Dynamic(), Names())
	}
}

// BenchmarkPolicyDecide measures the per-decision cost of every
// registered policy on a consolidated-server topology. The allocs/op
// column is the contract under test: Decide reuses a policy-owned
// scratch slice (PR 10), so steady-state decisions must not allocate.
// Run with -benchmem; any policy above 0 allocs/op has regressed.
func BenchmarkPolicyDecide(b *testing.B) {
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			p, err := New(name)
			if err != nil {
				b.Fatal(err)
			}
			p.Reset(Topology{Pairs: 4, Groups: 2, Timeslice: 1000})
			st := make([]PairStatus, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fire exactly at the policy's own deadline so every
				// iteration is a real decision, not an ignored event.
				at := p.NextEventAt()
				if at == sim.Never {
					at = sim.Cycle(i) // duty/static single-group never hit this here
				}
				p.Decide(Event{Kind: EvTimer, Pair: -1, Cycle: at}, st)
			}
		})
	}
}
