package mode

import "repro/internal/sim"

// rotor is the consolidated-server gang rotation (1 ms timeslices in
// the paper): groups take turns in fixed timeslices. Every policy
// embeds one so dynamic policies compose with guest rotation instead
// of starving the inactive guest. This is the sole implementation of
// the rotation semantics the pre-policy sched.Gang had; the golden-row
// regression pins its behavior.
type rotor struct {
	groups int
	slice  sim.Cycle
	active int
	nextAt sim.Cycle
}

// reset arms the rotor for a run. Single-group rosters never rotate.
func (r *rotor) reset(t Topology) {
	r.groups = t.Groups
	r.slice = t.Timeslice
	r.active = 0
	if t.Groups <= 1 {
		r.nextAt = sim.Never
	} else {
		r.nextAt = t.Timeslice
	}
}

// due rotates to the next group when the timeslice expired, returning
// whether a rotation happened. The deadline is re-armed relative to
// the decision cycle, not the nominal boundary (pre-policy semantics,
// kept byte-identical).
func (r *rotor) due(now sim.Cycle) bool {
	if r.groups <= 1 || now < r.nextAt {
		return false
	}
	r.active = (r.active + 1) % r.groups
	r.nextAt = now + r.slice
	return true
}

// static is the policy form of the paper's evaluated systems: run the
// roster exactly as built, rotating gang groups at timeslice
// boundaries and never overriding a pair's coupling. Every pre-policy
// system kind maps onto it byte-identically (the golden-row regression
// in internal/campaign pins this).
type static struct {
	rot   rotor
	pairs int
	asg   []Assignment // Decide scratch, reused across decisions
}

// Name implements Policy.
func (p *static) Name() string { return "static" }

// WantsFaults implements Policy: static systems ignore fault events.
func (p *static) WantsFaults() bool { return false }

// Reset implements Policy.
func (p *static) Reset(t Topology) []Assignment {
	p.rot.reset(t)
	p.pairs = t.Pairs
	p.asg = make([]Assignment, t.Pairs)
	return p.asg // group 0, no override
}

// NextEventAt implements Policy.
func (p *static) NextEventAt() sim.Cycle { return p.rot.nextAt }

// Decide implements Policy: rotate the gang, assign the new active
// group everywhere.
func (p *static) Decide(ev Event, pairs []PairStatus) []Assignment {
	if ev.Kind != EvTimer || !p.rot.due(ev.Cycle) {
		return nil
	}
	asg := p.asg
	for i := range asg {
		asg[i] = Assignment{Group: p.rot.active}
	}
	return asg
}

// Compile implements Scheduled: the gang rotation with no duty phase.
func (p *static) Compile(t Topology) (Program, bool) {
	return Program{Groups: t.Groups, Slice: t.Timeslice}, true
}
