// Campaign-engine benchmarks: the cost of a sweep through the engine
// cold (every job simulates) versus warm (every job served from the
// content-addressed cache). The warm path is what repeated figure
// regeneration and mmmd re-submissions pay.
package repro

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/campaign"
)

// benchJobs is the Figure 5 sweep on one workload and seed.
func benchJobs(b *testing.B) []campaign.Job {
	spec, err := campaign.Named("figure5", []string{"apache"}, []uint64{11})
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := spec.Expand()
	if err != nil {
		b.Fatal(err)
	}
	return jobs
}

func benchScale() campaign.Scale {
	return campaign.Scale{Warmup: 60_000, Measure: 120_000, Timeslice: 40_000}
}

// BenchmarkCampaignCold measures the engine with no cache: every
// iteration simulates the full job set.
func BenchmarkCampaignCold(b *testing.B) {
	jobs := benchJobs(b)
	eng := campaign.New(campaign.Options{Parallel: runtime.NumCPU()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), benchScale(), jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignWarm measures the same sweep against a warm disk
// cache: job expansion, fingerprinting, cache reads and aggregation,
// but no simulation.
func BenchmarkCampaignWarm(b *testing.B) {
	jobs := benchJobs(b)
	cache, err := campaign.NewDiskCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	eng := campaign.New(campaign.Options{Parallel: runtime.NumCPU(), Cache: cache})
	if _, err := eng.Run(context.Background(), benchScale(), jobs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := eng.Run(context.Background(), benchScale(), jobs)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Hits != len(jobs) {
			b.Fatalf("warm run missed: %d/%d", rs.Hits, len(jobs))
		}
		if rows := campaign.Summarize(rs); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}
