// Command obscheck validates a Prometheus text exposition, for CI: it
// parses the page strictly (version 0.0.4, the dialect mmmd emits),
// asserts that every -required metric family is present with at least
// one sample series, and optionally enforces a series floor. Exit 0
// means the scrape is well-formed and complete; any failure prints the
// reason and exits 1.
//
//	curl -fsS localhost:8077/metrics | obscheck \
//	    -required mmmd_uptime_seconds,mmmd_campaign_runs -min-series 12
//	obscheck -in scrape.txt -required mmmd_cache_hits_total
//
// With -journal, obscheck instead validates a campaign run journal
// (JSONL): structural invariants (strictly increasing sequence,
// expanded first, merged events exactly once per cell in expansion
// order, terminal event last), plus -required reinterpreted as event
// types that must appear, and -complete demanding every cell merged.
//
//	obscheck -journal mmmd-cache/journals/c1.journal.jsonl \
//	    -required expanded,merged -complete
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/obs"
)

func main() {
	var (
		inPath    = flag.String("in", "-", "exposition text to validate ('-' = stdin)")
		required  = flag.String("required", "", "comma-separated metric family names (or, with -journal, event types) that must be present")
		minSeries = flag.Int("min-series", 0, "minimum total sample series across all families")
		list      = flag.Bool("list", false, "print every family (name, type, series count) after validating")
		journal   = flag.String("journal", "", "validate a run-journal JSONL file instead of a metrics exposition")
		complete  = flag.Bool("complete", false, "with -journal: require every cell merged")
	)
	flag.Parse()

	if *journal != "" {
		checkJournal(*journal, *required, *complete)
		return
	}

	var in io.Reader = os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}

	fams, err := obs.ParseExposition(in)
	if err != nil {
		fatal("invalid exposition: %v", err)
	}
	total := obs.TotalSeries(fams)

	var missing []string
	for _, name := range strings.Split(*required, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if f := fams[name]; f == nil || len(f.Series) == 0 {
			missing = append(missing, name)
		}
	}

	if *list {
		names := make([]string, 0, len(fams))
		for n := range fams {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			f := fams[n]
			typ := f.Type
			if typ == "" {
				typ = "untyped"
			}
			fmt.Printf("%-40s %-9s %d series\n", n, typ, len(f.Series))
		}
	}

	if len(missing) > 0 {
		fatal("missing required families: %s", strings.Join(missing, ", "))
	}
	if total < *minSeries {
		fatal("only %d sample series, need at least %d", total, *minSeries)
	}
	fmt.Printf("obscheck: ok (%d families, %d series)\n", len(fams), total)
}

// checkJournal validates a run journal's structure and required event
// vocabulary; exits like the metrics path (0 ok, 1 with the reason).
func checkJournal(path, required string, complete bool) {
	events, err := campaign.ReadJournalFile(path)
	if err != nil {
		fatal("%v", err)
	}
	chk, err := campaign.ValidateEvents(events)
	if err != nil {
		fatal("invalid journal %s: %v", path, err)
	}
	var missing []string
	for _, name := range strings.Split(required, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if chk.Types[campaign.EventType(name)] == 0 {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fatal("journal %s missing required event types: %s", path, strings.Join(missing, ", "))
	}
	if complete && !chk.Complete {
		fatal("journal %s incomplete: %d/%d cells merged, outcome %s",
			path, chk.Merged, chk.Total, chk.Outcome)
	}
	fmt.Printf("obscheck: journal ok (%d events, %d/%d cells merged, outcome %s)\n",
		chk.Events, chk.Merged, chk.Total, chk.Outcome)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obscheck: "+format+"\n", args...)
	os.Exit(1)
}
