// Command reliagate is the nightly fixed-vs-adaptive gate: it compares
// a fixed-batch reliability run against an adaptive (sequential
// stopping) run at the same target precision and fails (exit 1) unless
// the adaptive run simulated fewer trials AND every (mode, rate) row's
// coverage intervals overlap between the two — i.e. the savings did
// not move the answer.
//
//	mmmbench -exp relia -quick -trials 384        -json fixed.json    | tee fixed.txt
//	mmmbench -exp relia -quick -halfwidth 0.05    -json adaptive.json | tee adaptive.txt
//	reliagate -fixed fixed.txt -fixed-json fixed.json \
//	          -adaptive adaptive.txt -adaptive-json adaptive.json -min-savings 0.30
//
// Trial counts come from the mmmbench -json records; the per-row
// Wilson intervals are parsed from the printed reliability tables
// (the `[lo,hi]` tokens of the result- and TLB-coverage columns).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// interval is one 95% Wilson interval parsed from a table cell.
type interval struct{ lo, hi float64 }

func (a interval) overlaps(b interval) bool { return a.lo <= b.hi && b.lo <= a.hi }

// row is one (mode, rate) line of the reliability table: the result-
// and TLB-coverage intervals, in column order.
type row struct{ result, tlb interval }

var intervalRE = regexp.MustCompile(`\[(\d+\.\d+),(\d+\.\d+)\]`)

// parseTable extracts the (mode, rate) -> intervals map from mmmbench
// -exp relia text output, recognizing rows by their interval tokens.
func parseTable(text string) (map[string]row, error) {
	rows := map[string]row{}
	for _, line := range strings.Split(text, "\n") {
		m := intervalRE.FindAllStringSubmatch(line, -1)
		if len(m) < 2 {
			continue // header, rule or non-table line
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		key := fields[0] + "@" + fields[1]
		var iv [2]interval
		for i := 0; i < 2; i++ {
			lo, err1 := strconv.ParseFloat(m[i][1], 64)
			hi, err2 := strconv.ParseFloat(m[i][2], 64)
			if err1 != nil || err2 != nil || lo > hi {
				return nil, fmt.Errorf("reliagate: bad interval %q in row %q", m[i][0], key)
			}
			iv[i] = interval{lo, hi}
		}
		if _, dup := rows[key]; dup {
			return nil, fmt.Errorf("reliagate: duplicate row %q", key)
		}
		rows[key] = row{result: iv[0], tlb: iv[1]}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("reliagate: no table rows found")
	}
	return rows, nil
}

// trialCount reads the relia experiment's trial total from a
// mmmbench -json record.
func trialCount(data []byte) (int, error) {
	var doc struct {
		Experiments []struct {
			Experiment string `json:"experiment"`
			Trials     int    `json:"trials"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("reliagate: %w", err)
	}
	for _, e := range doc.Experiments {
		if e.Experiment == "relia" {
			return e.Trials, nil
		}
	}
	return 0, fmt.Errorf("reliagate: no relia experiment in JSON record")
}

// compare is the gate proper, factored out of main for testing. It
// returns the findings as error text (nil = gate passes) plus the
// human summary line.
func compare(fixedTxt, adaptiveTxt string, fixedTrials, adaptiveTrials int, minSavings float64) (string, error) {
	fixed, err := parseTable(fixedTxt)
	if err != nil {
		return "", fmt.Errorf("fixed table: %w", err)
	}
	adaptive, err := parseTable(adaptiveTxt)
	if err != nil {
		return "", fmt.Errorf("adaptive table: %w", err)
	}
	if len(fixed) != len(adaptive) {
		return "", fmt.Errorf("row mismatch: fixed has %d rows, adaptive %d", len(fixed), len(adaptive))
	}
	for key, f := range fixed {
		a, ok := adaptive[key]
		if !ok {
			return "", fmt.Errorf("row %q missing from adaptive table", key)
		}
		if !f.result.overlaps(a.result) {
			return "", fmt.Errorf("row %q result-coverage intervals disjoint: fixed [%g,%g] vs adaptive [%g,%g]",
				key, f.result.lo, f.result.hi, a.result.lo, a.result.hi)
		}
		if !f.tlb.overlaps(a.tlb) {
			return "", fmt.Errorf("row %q tlb-coverage intervals disjoint: fixed [%g,%g] vs adaptive [%g,%g]",
				key, f.tlb.lo, f.tlb.hi, a.tlb.lo, a.tlb.hi)
		}
	}
	if fixedTrials <= 0 || adaptiveTrials <= 0 {
		return "", fmt.Errorf("non-positive trial counts: fixed %d, adaptive %d", fixedTrials, adaptiveTrials)
	}
	savings := 1 - float64(adaptiveTrials)/float64(fixedTrials)
	if savings < minSavings {
		return "", fmt.Errorf("adaptive saved only %.1f%% of trials (%d vs %d fixed), gate requires >= %.1f%%",
			100*savings, adaptiveTrials, fixedTrials, 100*minSavings)
	}
	return fmt.Sprintf("reliagate: OK — %d rows agree; adaptive %d trials vs fixed %d (%.1f%% saved)",
		len(fixed), adaptiveTrials, fixedTrials, 100*savings), nil
}

func main() {
	var (
		fixedTxt    = flag.String("fixed", "", "fixed-batch mmmbench -exp relia text output")
		adaptiveTxt = flag.String("adaptive", "", "adaptive mmmbench -exp relia text output")
		fixedJSON   = flag.String("fixed-json", "", "fixed-batch mmmbench -json record")
		adaptJSON   = flag.String("adaptive-json", "", "adaptive mmmbench -json record")
		minSavings  = flag.Float64("min-savings", 0.30, "minimum fraction of trials the adaptive run must save")
	)
	flag.Parse()

	read := func(path string) []byte {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reliagate: %v\n", err)
			os.Exit(2)
		}
		return data
	}
	ft, err := trialCount(read(*fixedJSON))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	at, err := trialCount(read(*adaptJSON))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	summary, err := compare(string(read(*fixedTxt)), string(read(*adaptiveTxt)), ft, at, *minSavings)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reliagate: FAIL — %v\n", err)
		os.Exit(1)
	}
	fmt.Println(summary)
}
