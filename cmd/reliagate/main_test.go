package main

import (
	"strings"
	"testing"
)

// fixedTable / adaptiveTable are abbreviated mmmbench -exp relia
// outputs: same rows, compatible intervals, adaptive narrower.
const fixedTable = `mode         rate   trials  faults  result(cov)          tlb(cov)
-----------  -----  ------  ------  -------------------  -------------------
performance  25000  768     392     0.000 [0.000,0.026]  0.115 [0.054,0.230]
dmr          25000  768     420     1.000 [0.983,1.000]  0.948 [0.885,0.978]
mixed        25000  768     408     0.776 [0.748,0.802]  0.772 [0.701,0.831]

[relia completed in 1s]
`

const adaptiveTable = `mode         rate   trials  faults  result(cov)          tlb(cov)
-----------  -----  ------  ------  -------------------  -------------------
performance  25000  120     61      0.000 [0.000,0.048]  0.120 [0.050,0.260]
dmr          25000  96      52      1.000 [0.963,1.000]  0.940 [0.870,0.980]
mixed        25000  512     271     0.780 [0.741,0.815]  0.765 [0.690,0.829]
`

func TestGatePasses(t *testing.T) {
	summary, err := compare(fixedTable, adaptiveTable, 2304, 728, 0.30)
	if err != nil {
		t.Fatalf("gate failed on agreeing runs: %v", err)
	}
	if !strings.Contains(summary, "3 rows") || !strings.Contains(summary, "68.4% saved") {
		t.Fatalf("summary %q", summary)
	}
}

func TestGateRejectsInsufficientSavings(t *testing.T) {
	_, err := compare(fixedTable, adaptiveTable, 2304, 2000, 0.30)
	if err == nil || !strings.Contains(err.Error(), "13.2%") {
		t.Fatalf("err = %v, want savings complaint", err)
	}
}

func TestGateRejectsDisjointIntervals(t *testing.T) {
	moved := strings.Replace(adaptiveTable, "0.780 [0.741,0.815]", "0.300 [0.262,0.341]", 1)
	_, err := compare(fixedTable, moved, 2304, 728, 0.30)
	if err == nil || !strings.Contains(err.Error(), "mixed@25000") ||
		!strings.Contains(err.Error(), "disjoint") {
		t.Fatalf("err = %v, want disjoint-interval complaint for mixed@25000", err)
	}
}

func TestGateRejectsRowMismatch(t *testing.T) {
	lines := strings.SplitN(adaptiveTable, "\n", -1)
	short := strings.Join(lines[:4], "\n") // drops the mixed row
	_, err := compare(fixedTable, short, 2304, 728, 0.30)
	if err == nil || !strings.Contains(err.Error(), "row mismatch") {
		t.Fatalf("err = %v, want row-count complaint", err)
	}
}

func TestParseTableRejectsGarbage(t *testing.T) {
	if _, err := parseTable("no intervals anywhere\n"); err == nil {
		t.Fatal("parseTable accepted interval-free text")
	}
}

func TestTrialCount(t *testing.T) {
	n, err := trialCount([]byte(`{"experiments":[{"experiment":"relia","rows":12,"trials":728}]}`))
	if err != nil || n != 728 {
		t.Fatalf("trialCount = %d, %v", n, err)
	}
	if _, err := trialCount([]byte(`{"experiments":[]}`)); err == nil {
		t.Fatal("trialCount accepted a record without relia")
	}
}
