// Command benchgate is the CI bench regression gate: it parses `go
// test -bench` output for BenchmarkHotPath, takes the per-kind median
// of the reported cycles/sec metric across repeated runs, compares
// each median against the latest recorded baseline in
// BENCH_hotpath.json, and fails (exit 1) when any kind regressed past
// the tolerance. The fresh numbers are written as JSON so CI can
// upload them as a build artifact and a human can refresh the
// baseline from them.
//
//	go test -run=NONE -bench='BenchmarkHotPath$' -benchtime=1s -count=3 . | tee bench.txt
//	benchgate -baseline BENCH_hotpath.json -bench bench.txt -tolerance 0.20 -out bench-fresh.json
//
// The tolerance still absorbs run-to-run noise — CI hardware is noisy
// and slower than the recorded machine — but with per-cell medians and
// each cell's coefficient of variation recorded next to them, a wide
// spread is distinguishable from a shifted median, so the gate can
// afford 20% (down from the original 35%): it catches a lost fast path
// or an accidentally quadratic hot loop without tripping on jitter.
//
// With -update, benchgate instead *appends* a fresh baseline entry to
// the file from the same bench output — per-kind medians become the
// "after" numbers, the previous entry's "after" numbers become
// "before" for kinds both entries share — so adding a new bench kind
// (which the gate would otherwise only ever fail as missing) is a
// one-command baseline refresh:
//
//	go test -run=NONE -bench='BenchmarkHotPath$' -benchtime=1s -count=3 . | \
//	    benchgate -update -pr 5 -change "mode-policy layer" -baseline BENCH_hotpath.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// baselineFile mirrors the BENCH_hotpath.json schema. The header
// fields ride along so -update rewrites the file without dropping
// them; entries stay raw so historical records round-trip untouched.
type baselineFile struct {
	Comment   string            `json:"comment,omitempty"`
	Benchmark string            `json:"benchmark"`
	Metric    string            `json:"metric"`
	Benchtime string            `json:"benchtime,omitempty"`
	Workload  string            `json:"workload,omitempty"`
	Seed      int               `json:"seed,omitempty"`
	CPU       string            `json:"cpu,omitempty"`
	Entries   []json.RawMessage `json:"entries"`
}

// latestEntry decodes the gate-relevant view of the newest entry.
func (bf *baselineFile) latestEntry() (baselineEntry, error) {
	var e baselineEntry
	if len(bf.Entries) == 0 {
		return e, fmt.Errorf("baseline has no entries")
	}
	err := json.Unmarshal(bf.Entries[len(bf.Entries)-1], &e)
	return e, err
}

type baselineEntry struct {
	PR           int                     `json:"pr"`
	CyclesPerSec map[string]baselineKind `json:"cycles_per_sec"`
}

// cellStat is the min/median/max of one workload×seed cell's samples,
// with the coefficient of variation (stddev/mean) quantifying the
// run-to-run noise behind the median.
type cellStat struct {
	Median float64 `json:"median"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
	CV     float64 `json:"cv,omitempty"`
}

// cellStatOf summarizes one cell's samples.
func cellStatOf(samples []float64) cellStat {
	lo, hi := spread(samples)
	return cellStat{Median: median(samples), Min: lo, Max: hi, CV: cv(samples)}
}

type baselineKind struct {
	After float64 `json:"after"`
	// Cells records the per-workload×seed spread behind After
	// (entries appended before the multi-cell suite lack it; those
	// baselines gate on the primary cell only).
	Cells map[string]cellStat `json:"cells,omitempty"`
}

// primaryCell is the workload/seed cell every kind benches and legacy
// single-cell baselines implicitly recorded: baseline After values are
// compared against this cell's median.
const primaryCell = "apache/s11"

// benchLine matches one sub-benchmark result line, e.g.
//
//	BenchmarkHotPath/MMM-IPC/apache/s11-4   123   9270000 ns/op   944490 cycles/sec
//
// capturing the full sub-benchmark name ("MMM-IPC/apache/s11"; the
// trailing -N is the GOMAXPROCS suffix, omitted when GOMAXPROCS=1) and
// the cycles/sec value. Pre-multi-cell output ("MMM-IPC" alone) parses
// too and maps onto the primary cell.
var benchLine = regexp.MustCompile(`^BenchmarkHotPath/(.+?)(?:-\d+)?\s+.*?([0-9.e+]+) cycles/sec`)

// parseBench collects every sub-benchmark's cycles/sec samples from go
// test -bench output (repeated runs via -count yield repeated samples).
func parseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad cycles/sec in %q: %w", sc.Text(), err)
		}
		out[m[1]] = append(out[m[1]], v)
	}
	return out, sc.Err()
}

// splitCell splits a sub-benchmark name into system kind and
// workload×seed cell; a bare kind (legacy output) is the primary cell.
func splitCell(name string) (kind, cell string) {
	if i := strings.Index(name, "/"); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, primaryCell
}

// groupCells indexes parsed samples by kind, then cell. Names are
// walked in sorted order so that when two bench names fold into one
// cell (legacy bare-kind lines plus explicit primary-cell lines) the
// merged sample order does not depend on map iteration order.
func groupCells(samples map[string][]float64) map[string]map[string][]float64 {
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]map[string][]float64)
	for _, name := range names {
		k, c := splitCell(name)
		if out[k] == nil {
			out[k] = make(map[string][]float64)
		}
		out[k][c] = append(out[k][c], samples[name]...)
	}
	return out
}

// median returns the middle sample (lower-middle for even counts).
func median(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// spread returns the min and max samples — the per-kind run-to-run
// spread recorded next to the median, so a noisy box (wide spread) is
// distinguishable from a real regression (shifted median).
func spread(samples []float64) (min, max float64) {
	min, max = samples[0], samples[0]
	for _, v := range samples[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// cv returns the coefficient of variation (population stddev divided by
// mean) of the samples — the dimensionless noise figure recorded next
// to every median. Zero for fewer than two samples or a non-positive
// mean. Rounded to four decimals so baseline files stay readable.
func cv(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(len(samples))
	if mean <= 0 {
		return 0
	}
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	return math.Round(math.Sqrt(ss/float64(len(samples)))/mean*1e4) / 1e4
}

// gateResult is the fresh-numbers artifact plus the verdict.
type gateResult struct {
	Benchmark   string              `json:"benchmark"`
	Metric      string              `json:"metric"`
	Tolerance   float64             `json:"tolerance"`
	PrimaryCell string              `json:"primary_cell"`
	Kinds       map[string]gateKind `json:"kinds"`
	Regressions []string            `json:"regressions"`
}

type gateKind struct {
	// Median/Min/Max/Samples describe the primary cell — the series
	// every baseline entry (old or new) records.
	Median   float64   `json:"median"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	CV       float64   `json:"cv"`
	Samples  []float64 `json:"samples"`
	Baseline float64   `json:"baseline"`
	Ratio    float64   `json:"ratio"`
	// Cells is the min/median/max spread of every fresh workload×seed
	// cell of this kind.
	Cells map[string]cellStat `json:"cells"`
}

// gate compares fresh medians against the baseline: every baseline
// kind's After against its primary-cell median, plus — when the
// baseline entry records per-cell numbers — each recorded cell against
// its fresh counterpart. A baseline kind or cell with no fresh samples
// is itself a gate failure: a benchmark that silently stopped running
// must not pass.
func gate(baseline map[string]baselineKind, grouped map[string]map[string][]float64, tolerance float64) gateResult {
	res := gateResult{
		Benchmark:   "BenchmarkHotPath",
		Metric:      "cycles/sec",
		Tolerance:   tolerance,
		PrimaryCell: primaryCell,
		Kinds:       make(map[string]gateKind),
		Regressions: []string{},
	}
	kinds := make([]string, 0, len(baseline))
	for k := range baseline {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		base := baseline[k]
		cells := grouped[k]
		ss := cells[primaryCell]
		if len(ss) == 0 {
			res.Regressions = append(res.Regressions,
				fmt.Sprintf("%s: no %s samples (benchmark did not run)", k, primaryCell))
			continue
		}
		med := median(ss)
		lo, hi := spread(ss)
		gk := gateKind{Median: med, Min: lo, Max: hi, CV: cv(ss), Samples: ss,
			Baseline: base.After, Cells: make(map[string]cellStat)}
		if base.After > 0 {
			gk.Ratio = med / base.After
			if med < base.After*(1-tolerance) {
				res.Regressions = append(res.Regressions, fmt.Sprintf(
					"%s: median %.0f cycles/sec vs baseline %.0f (%.0f%% of baseline, floor %.0f%%)",
					k, med, base.After, 100*gk.Ratio, 100*(1-tolerance)))
			}
		}
		for c, cs := range cells {
			gk.Cells[c] = cellStatOf(cs)
		}
		// Baselines that record per-cell numbers gate each cell, so a
		// regression confined to one workload or seed cannot hide behind
		// a healthy primary cell.
		baseCells := make([]string, 0, len(base.Cells))
		for c := range base.Cells {
			baseCells = append(baseCells, c)
		}
		sort.Strings(baseCells)
		for _, c := range baseCells {
			bc := base.Cells[c]
			cs := cells[c]
			if len(cs) == 0 {
				res.Regressions = append(res.Regressions,
					fmt.Sprintf("%s/%s: no samples (cell did not run)", k, c))
				continue
			}
			if m := median(cs); bc.Median > 0 && m < bc.Median*(1-tolerance) {
				res.Regressions = append(res.Regressions, fmt.Sprintf(
					"%s/%s: median %.0f cycles/sec vs baseline %.0f (%.0f%% of baseline, floor %.0f%%)",
					k, c, m, bc.Median, 100*m/bc.Median, 100*(1-tolerance)))
			}
		}
		res.Kinds[k] = gk
	}
	return res
}

// updateKind is one kind's record in an appended baseline entry. Min
// and Max record the primary cell's run-to-run spread behind the
// "after" median; Cells the per-workload×seed spread of the whole
// suite.
type updateKind struct {
	Before  float64             `json:"before,omitempty"`
	After   float64             `json:"after"`
	Min     float64             `json:"min,omitempty"`
	Max     float64             `json:"max,omitempty"`
	CV      float64             `json:"cv,omitempty"`
	Speedup float64             `json:"speedup,omitempty"`
	Cells   map[string]cellStat `json:"cells,omitempty"`
}

// buildUpdateEntry folds fresh medians into a new baseline entry:
// primary-cell medians become "after", the previous entry's "after"
// become "before" where both exist (kinds new to the suite record only
// an "after"), and every workload×seed cell records its min/median/max
// so future gates can check each cell.
func buildUpdateEntry(prev baselineEntry, grouped map[string]map[string][]float64, pr int, date, change string) (json.RawMessage, error) {
	if len(grouped) == 0 {
		return nil, fmt.Errorf("bench output contains no BenchmarkHotPath samples")
	}
	kinds := make(map[string]updateKind, len(grouped))
	for k, cells := range grouped {
		ss := cells[primaryCell]
		if len(ss) == 0 {
			// A kind that skips the primary cell pools everything it ran
			// — After stays meaningful even for a partial suite.
			for _, cs := range cells {
				ss = append(ss, cs...)
			}
		}
		lo, hi := spread(ss)
		uk := updateKind{After: median(ss), Min: lo, Max: hi, CV: cv(ss),
			Cells: make(map[string]cellStat, len(cells))}
		for c, cs := range cells {
			uk.Cells[c] = cellStatOf(cs)
		}
		if base, ok := prev.CyclesPerSec[k]; ok && base.After > 0 {
			uk.Before = base.After
			uk.Speedup = round2(uk.After / uk.Before)
		}
		kinds[k] = uk
	}
	entry := struct {
		PR           int                   `json:"pr"`
		Date         string                `json:"date"`
		Change       string                `json:"change,omitempty"`
		CyclesPerSec map[string]updateKind `json:"cycles_per_sec"`
	}{PR: pr, Date: date, Change: change, CyclesPerSec: kinds}
	return marshalPlain(entry, "")
}

// marshalPlain marshals without HTML escaping — the baseline file is
// read by maintainers, and its comment/change strings legitimately
// contain <, > and & (shell recipes) that must not turn into <.
func marshalPlain(v any, indent string) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if indent != "" {
		enc.SetIndent("", indent)
	}
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// round2 rounds to two decimals (speedup readability).
func round2(v float64) float64 {
	return math.Round(v*100) / 100
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_hotpath.json", "recorded baseline file")
		benchPath    = flag.String("bench", "-", "go test -bench output ('-' = stdin)")
		tolerance    = flag.Float64("tolerance", 0.20, "allowed fractional regression before failing")
		outPath      = flag.String("out", "", "write fresh numbers + verdict as JSON here")
		update       = flag.Bool("update", false, "append a fresh baseline entry instead of gating")
		pr           = flag.Int("pr", 0, "PR number recorded in the appended entry (-update)")
		change       = flag.String("change", "", "one-line change description for the appended entry (-update)")
	)
	flag.Parse()

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("%v", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		fatal("parse %s: %v", *baselinePath, err)
	}
	latest, err := bf.latestEntry()
	if err != nil {
		fatal("%s: %v", *baselinePath, err)
	}

	in := os.Stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}
	samples, err := parseBench(in)
	if err != nil {
		fatal("%v", err)
	}
	grouped := groupCells(samples)

	if *update {
		entry, err := buildUpdateEntry(latest, grouped, *pr, time.Now().Format("2006-01-02"), *change)
		if err != nil {
			fatal("%v", err)
		}
		bf.Entries = append(bf.Entries, entry)
		out, err := marshalPlain(&bf, "  ")
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("benchgate: appended entry pr=%d with %d kinds to %s\n",
			*pr, len(grouped), *baselinePath)
		return
	}

	res := gate(latest.CyclesPerSec, grouped, *tolerance)
	if *outPath != "" {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*outPath, append(out, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
	}
	kinds := make([]string, 0, len(res.Kinds))
	for k := range res.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		gk := res.Kinds[k]
		fmt.Printf("benchgate: %-10s median %12.0f  [%.0f..%.0f]  cv %.3f  baseline %12.0f  ratio %.2f\n",
			k, gk.Median, gk.Min, gk.Max, gk.CV, gk.Baseline, gk.Ratio)
		cells := make([]string, 0, len(gk.Cells))
		for c := range gk.Cells {
			cells = append(cells, c)
		}
		sort.Strings(cells)
		for _, c := range cells {
			cs := gk.Cells[c]
			fmt.Printf("benchgate:   %-20s median %12.0f  [%.0f..%.0f]  cv %.3f\n",
				c, cs.Median, cs.Min, cs.Max, cs.CV)
		}
	}
	if len(res.Regressions) > 0 {
		for _, r := range res.Regressions {
			fmt.Fprintf(os.Stderr, "benchgate: REGRESSION %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (%d kinds within %.0f%% of baseline)\n",
		len(res.Kinds), 100**tolerance)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(2)
}
