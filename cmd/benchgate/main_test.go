package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// benchFixture is real-shaped `go test -bench -count=3` output from
// the multi-cell suite: three samples per kind at the primary cell,
// extra workload/seed cells, kind names containing dashes, legacy
// cell-less lines, plus noise lines the parser must skip.
const benchFixture = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkHotPath/NoDMR/apache/s11-4         	     100	  10000000 ns/op	   1600000 cycles/sec
BenchmarkHotPath/NoDMR/apache/s11-4         	     100	  10000000 ns/op	   1500000 cycles/sec
BenchmarkHotPath/NoDMR/apache/s11-4         	     100	  10000000 ns/op	   1700000 cycles/sec
BenchmarkHotPath/NoDMR/oltp/s12-4           	     100	  10000000 ns/op	   2000000 cycles/sec
BenchmarkHotPath/MMM-IPC/apache/s11-4      	     100	  10000000 ns/op	   1000000 cycles/sec
BenchmarkHotPath/MMM-IPC/apache/s11-4      	     100	  10000000 ns/op	    900000 cycles/sec
BenchmarkHotPath/MMM-IPC/apache/s11-4      	     100	  10000000 ns/op	    950000 cycles/sec
BenchmarkHotPath/SingleOS       	       1	  10000000 ns/op	   4000000 cycles/sec
BenchmarkHotPathTick/NoDMR-4    	     100	  10000000 ns/op	    500000 cycles/sec
PASS
ok  	repro	1.0s
`

func TestParseBenchAndGroup(t *testing.T) {
	samples, err := parseBench(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	grouped := groupCells(samples)
	if len(grouped) != 3 {
		t.Fatalf("parsed kinds %v, want NoDMR, MMM-IPC and SingleOS", grouped)
	}
	if got := grouped["NoDMR"][primaryCell]; len(got) != 3 || got[0] != 1600000 {
		t.Fatalf("NoDMR primary samples: %v", got)
	}
	if got := grouped["NoDMR"]["oltp/s12"]; len(got) != 1 || got[0] != 2000000 {
		t.Fatalf("NoDMR oltp/s12 samples: %v", got)
	}
	// Dashed kind names must survive the GOMAXPROCS-suffix strip.
	if got := grouped["MMM-IPC"][primaryCell]; len(got) != 3 || got[1] != 900000 {
		t.Fatalf("MMM-IPC samples: %v", got)
	}
	// Legacy cell-less names (and GOMAXPROCS=1 output with no -N
	// suffix) parse and map onto the primary cell.
	if got := grouped["SingleOS"][primaryCell]; len(got) != 1 || got[0] != 4000000 {
		t.Fatalf("SingleOS samples: %v", got)
	}
}

func TestSplitCell(t *testing.T) {
	cases := []struct{ name, kind, cell string }{
		{"NoDMR/apache/s11", "NoDMR", "apache/s11"},
		{"MMM-IPC/oltp/s13", "MMM-IPC", "oltp/s13"},
		{"SingleOS", "SingleOS", primaryCell},
	}
	for _, tc := range cases {
		k, c := splitCell(tc.name)
		if k != tc.kind || c != tc.cell {
			t.Errorf("splitCell(%q) = (%q, %q), want (%q, %q)", tc.name, k, c, tc.kind, tc.cell)
		}
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median of odd count: %v", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2 {
		t.Fatalf("median of even count (lower middle): %v", got)
	}
	if got := median([]float64{7}); got != 7 {
		t.Fatalf("median of one: %v", got)
	}
}

func TestSpread(t *testing.T) {
	if lo, hi := spread([]float64{3, 1, 2}); lo != 1 || hi != 3 {
		t.Fatalf("spread = [%v..%v], want [1..3]", lo, hi)
	}
	if lo, hi := spread([]float64{7}); lo != 7 || hi != 7 {
		t.Fatalf("spread of one = [%v..%v], want [7..7]", lo, hi)
	}
}

// TestCV: the coefficient of variation is population stddev over mean,
// rounded to four decimals, and zero when it cannot be estimated (one
// sample, constant samples, non-positive mean).
func TestCV(t *testing.T) {
	if got := cv([]float64{100}); got != 0 {
		t.Errorf("cv of one sample = %v, want 0", got)
	}
	if got := cv([]float64{7, 7, 7}); got != 0 {
		t.Errorf("cv of constant samples = %v, want 0", got)
	}
	// mean 100, deviations ±10 -> population stddev 10 -> cv 0.1
	if got := cv([]float64{90, 110}); got != 0.1 {
		t.Errorf("cv(90, 110) = %v, want 0.1", got)
	}
	if got := cv([]float64{0, 0}); got != 0 {
		t.Errorf("cv of zero-mean samples = %v, want 0", got)
	}
	// Rounding: 900/1000/1100 -> stddev 81.65 -> cv 0.0816 (4 decimals).
	if got := cv([]float64{900, 1000, 1100}); got != 0.0816 {
		t.Errorf("cv(900,1000,1100) = %v, want 0.0816", got)
	}
}

// TestGateFloorBoundary: the gate fails strictly below
// baseline*(1-tolerance); a median exactly at the floor passes.
func TestGateFloorBoundary(t *testing.T) {
	baseline := map[string]baselineKind{"A": {After: 1000}}
	at := map[string]map[string][]float64{"A": {primaryCell: {800}}}
	if res := gate(baseline, at, 0.20); len(res.Regressions) != 0 {
		t.Errorf("median exactly at the 20%% floor flagged: %v", res.Regressions)
	}
	below := map[string]map[string][]float64{"A": {primaryCell: {799}}}
	if res := gate(baseline, below, 0.20); len(res.Regressions) != 1 {
		t.Errorf("median below the floor not flagged: %v", res.Regressions)
	}
}

// TestGateRecordsCV: the gate artifact and the appended baseline entry
// both carry the coefficient of variation next to every median.
func TestGateRecordsCV(t *testing.T) {
	baseline := map[string]baselineKind{"A": {After: 100}}
	fresh := map[string]map[string][]float64{"A": {
		primaryCell: {90, 110},
		"oltp/s12":  {90, 110},
	}}
	res := gate(baseline, fresh, 0.20)
	if gk := res.Kinds["A"]; gk.CV != 0.1 {
		t.Errorf("gate kind CV = %v, want 0.1", gk.CV)
	}
	if cs := res.Kinds["A"].Cells["oltp/s12"]; cs.CV != 0.1 {
		t.Errorf("gate cell CV = %v, want 0.1", cs.CV)
	}

	raw, err := buildUpdateEntry(baselineEntry{}, fresh, 10, "2026-08-07", "")
	if err != nil {
		t.Fatal(err)
	}
	var entry struct {
		CyclesPerSec map[string]updateKind `json:"cycles_per_sec"`
	}
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatal(err)
	}
	uk := entry.CyclesPerSec["A"]
	if uk.CV != 0.1 || uk.Cells[primaryCell].CV != 0.1 {
		t.Errorf("update entry CV = %v / %v, want 0.1 / 0.1", uk.CV, uk.Cells[primaryCell].CV)
	}
}

func TestGate(t *testing.T) {
	samples, err := parseBench(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	grouped := groupCells(samples)
	// Legacy baseline entries record only After — they gate against
	// the primary cell.
	baseline := map[string]baselineKind{
		"NoDMR":   {After: 1624690},
		"MMM-IPC": {After: 1034722},
	}

	// Medians 1600000 and 950000 are ~0.98x and ~0.92x of baseline:
	// comfortably inside a 35% tolerance.
	res := gate(baseline, grouped, 0.35)
	if len(res.Regressions) != 0 {
		t.Fatalf("within tolerance but flagged: %v", res.Regressions)
	}
	if res.Kinds["NoDMR"].Median != 1600000 {
		t.Fatalf("NoDMR median: %+v", res.Kinds["NoDMR"])
	}
	// The artifact records the per-cell run-to-run spread next to the
	// median, so a noisy box is distinguishable from a shifted median.
	if gk := res.Kinds["NoDMR"]; gk.Min != 1500000 || gk.Max != 1700000 {
		t.Fatalf("NoDMR spread: %+v", gk)
	}
	if cs := res.Kinds["NoDMR"].Cells["oltp/s12"]; cs.Median != 2000000 {
		t.Fatalf("NoDMR oltp cell: %+v", res.Kinds["NoDMR"].Cells)
	}
	if gk := res.Kinds["MMM-IPC"]; gk.Min != 900000 || gk.Max != 1000000 {
		t.Fatalf("MMM-IPC spread: %+v", gk)
	}

	// A tight tolerance turns the slower kind into a regression.
	res = gate(baseline, grouped, 0.05)
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "MMM-IPC") {
		t.Fatalf("5%% tolerance: %v", res.Regressions)
	}

	// A baseline kind with no fresh samples is itself a failure — the
	// gate must not silently pass when a benchmark stops running.
	baseline["Reunion"] = baselineKind{After: 1000000}
	res = gate(baseline, grouped, 0.35)
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "Reunion") {
		t.Fatalf("missing kind not flagged: %v", res.Regressions)
	}
	delete(baseline, "Reunion")

	// A baseline that records per-cell numbers gates each cell: a
	// regression confined to one cell fails even when the primary cell
	// is healthy, and a cell that stopped running fails too.
	baseline["NoDMR"] = baselineKind{After: 1624690, Cells: map[string]cellStat{
		primaryCell: {Median: 1624690},
		"oltp/s12":  {Median: 4000000}, // fresh median 2000000: 50% drop
	}}
	res = gate(baseline, grouped, 0.35)
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "NoDMR/oltp/s12") {
		t.Fatalf("per-cell regression not flagged: %v", res.Regressions)
	}
	baseline["NoDMR"] = baselineKind{After: 1624690, Cells: map[string]cellStat{
		"oltp/s13": {Median: 2000000},
	}}
	res = gate(baseline, grouped, 0.35)
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "NoDMR/oltp/s13") {
		t.Fatalf("missing cell not flagged: %v", res.Regressions)
	}
}

func TestBuildUpdateEntry(t *testing.T) {
	samples, err := parseBench(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	grouped := groupCells(samples)
	prev := baselineEntry{
		PR: 4,
		CyclesPerSec: map[string]baselineKind{
			"NoDMR":   {After: 1500000},
			"MMM-IPC": {After: 1000000},
			// A kind retired from the suite simply drops out.
			"Retired": {After: 1},
		},
	}
	raw, err := buildUpdateEntry(prev, grouped, 5, "2026-07-29", "test change")
	if err != nil {
		t.Fatal(err)
	}
	var entry struct {
		PR           int                   `json:"pr"`
		Date         string                `json:"date"`
		Change       string                `json:"change"`
		CyclesPerSec map[string]updateKind `json:"cycles_per_sec"`
	}
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatal(err)
	}
	if entry.PR != 5 || entry.Date != "2026-07-29" || entry.Change != "test change" {
		t.Fatalf("header: %+v", entry)
	}
	// Known kinds: primary-cell median becomes after, previous after
	// becomes before.
	nd := entry.CyclesPerSec["NoDMR"]
	if nd.After != 1600000 || nd.Before != 1500000 || nd.Speedup != 1.07 {
		t.Fatalf("NoDMR: %+v", nd)
	}
	// Appended entries record the spread behind the median too — the
	// primary cell's inline, every cell's in the cells map.
	if nd.Min != 1500000 || nd.Max != 1700000 {
		t.Fatalf("NoDMR spread in entry: %+v", nd)
	}
	if cs := nd.Cells["oltp/s12"]; cs.Median != 2000000 || cs.Min != 2000000 || cs.Max != 2000000 {
		t.Fatalf("NoDMR cells in entry: %+v", nd.Cells)
	}
	if cs := nd.Cells[primaryCell]; cs.Median != 1600000 {
		t.Fatalf("NoDMR primary cell in entry: %+v", nd.Cells)
	}
	// A kind new to the suite records only an after — the exact case
	// the gate's missing-kind check could previously only fail on.
	so := entry.CyclesPerSec["SingleOS"]
	if so.After != 4000000 || so.Before != 0 || so.Speedup != 0 {
		t.Fatalf("SingleOS: %+v", so)
	}
	if _, ok := entry.CyclesPerSec["Retired"]; ok {
		t.Fatal("retired kind resurrected")
	}
	// The gate accepts the appended entry as its new baseline — now
	// including the per-cell checks.
	var latest baselineEntry
	if err := json.Unmarshal(raw, &latest); err != nil {
		t.Fatal(err)
	}
	res := gate(latest.CyclesPerSec, grouped, 0.35)
	if len(res.Regressions) != 0 {
		t.Fatalf("fresh entry gates its own samples: %v", res.Regressions)
	}
	// No samples at all is an error, not an empty entry.
	if _, err := buildUpdateEntry(prev, nil, 5, "2026-07-29", ""); err == nil {
		t.Fatal("empty samples accepted")
	}
}
