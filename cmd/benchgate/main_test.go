package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// benchFixture is real-shaped `go test -bench -count=3` output: three
// samples per kind, kind names containing dashes, plus noise lines
// the parser must skip.
const benchFixture = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkHotPath/NoDMR-4         	     100	  10000000 ns/op	   1600000 cycles/sec
BenchmarkHotPath/NoDMR-4         	     100	  10000000 ns/op	   1500000 cycles/sec
BenchmarkHotPath/NoDMR-4         	     100	  10000000 ns/op	   1700000 cycles/sec
BenchmarkHotPath/MMM-IPC-4      	     100	  10000000 ns/op	   1000000 cycles/sec
BenchmarkHotPath/MMM-IPC-4      	     100	  10000000 ns/op	    900000 cycles/sec
BenchmarkHotPath/MMM-IPC-4      	     100	  10000000 ns/op	    950000 cycles/sec
BenchmarkHotPath/SingleOS       	       1	  10000000 ns/op	   4000000 cycles/sec
BenchmarkHotPathTick/NoDMR-4    	     100	  10000000 ns/op	    500000 cycles/sec
PASS
ok  	repro	1.0s
`

func TestParseBench(t *testing.T) {
	samples, err := parseBench(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("parsed kinds %v, want NoDMR, MMM-IPC and SingleOS", samples)
	}
	if got := samples["NoDMR"]; len(got) != 3 || got[0] != 1600000 {
		t.Fatalf("NoDMR samples: %v", got)
	}
	// Dashed kind names must survive the GOMAXPROCS-suffix strip.
	if got := samples["MMM-IPC"]; len(got) != 3 || got[1] != 900000 {
		t.Fatalf("MMM-IPC samples: %v", got)
	}
	// GOMAXPROCS=1 output carries no -N suffix at all.
	if got := samples["SingleOS"]; len(got) != 1 || got[0] != 4000000 {
		t.Fatalf("SingleOS samples: %v", got)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median of odd count: %v", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2 {
		t.Fatalf("median of even count (lower middle): %v", got)
	}
	if got := median([]float64{7}); got != 7 {
		t.Fatalf("median of one: %v", got)
	}
}

func TestSpread(t *testing.T) {
	if lo, hi := spread([]float64{3, 1, 2}); lo != 1 || hi != 3 {
		t.Fatalf("spread = [%v..%v], want [1..3]", lo, hi)
	}
	if lo, hi := spread([]float64{7}); lo != 7 || hi != 7 {
		t.Fatalf("spread of one = [%v..%v], want [7..7]", lo, hi)
	}
}

func TestGate(t *testing.T) {
	samples, err := parseBench(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[string]baselineKind{
		"NoDMR":   {After: 1624690},
		"MMM-IPC": {After: 1034722},
	}

	// Medians 1600000 and 950000 are ~0.98x and ~0.92x of baseline:
	// comfortably inside a 35% tolerance.
	res := gate(baseline, samples, 0.35)
	if len(res.Regressions) != 0 {
		t.Fatalf("within tolerance but flagged: %v", res.Regressions)
	}
	if res.Kinds["NoDMR"].Median != 1600000 {
		t.Fatalf("NoDMR median: %+v", res.Kinds["NoDMR"])
	}
	// The artifact records the per-kind run-to-run spread next to the
	// median, so a noisy box is distinguishable from a shifted median.
	if gk := res.Kinds["NoDMR"]; gk.Min != 1500000 || gk.Max != 1700000 {
		t.Fatalf("NoDMR spread: %+v", gk)
	}
	if gk := res.Kinds["MMM-IPC"]; gk.Min != 900000 || gk.Max != 1000000 {
		t.Fatalf("MMM-IPC spread: %+v", gk)
	}

	// A tight tolerance turns the slower kind into a regression.
	res = gate(baseline, samples, 0.05)
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "MMM-IPC") {
		t.Fatalf("5%% tolerance: %v", res.Regressions)
	}

	// A baseline kind with no fresh samples is itself a failure — the
	// gate must not silently pass when a benchmark stops running.
	baseline["Reunion"] = baselineKind{After: 1000000}
	res = gate(baseline, samples, 0.35)
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "Reunion") {
		t.Fatalf("missing kind not flagged: %v", res.Regressions)
	}
}

func TestBuildUpdateEntry(t *testing.T) {
	samples, err := parseBench(strings.NewReader(benchFixture))
	if err != nil {
		t.Fatal(err)
	}
	prev := baselineEntry{
		PR: 4,
		CyclesPerSec: map[string]baselineKind{
			"NoDMR":   {After: 1500000},
			"MMM-IPC": {After: 1000000},
			// A kind retired from the suite simply drops out.
			"Retired": {After: 1},
		},
	}
	raw, err := buildUpdateEntry(prev, samples, 5, "2026-07-29", "test change")
	if err != nil {
		t.Fatal(err)
	}
	var entry struct {
		PR           int                   `json:"pr"`
		Date         string                `json:"date"`
		Change       string                `json:"change"`
		CyclesPerSec map[string]updateKind `json:"cycles_per_sec"`
	}
	if err := json.Unmarshal(raw, &entry); err != nil {
		t.Fatal(err)
	}
	if entry.PR != 5 || entry.Date != "2026-07-29" || entry.Change != "test change" {
		t.Fatalf("header: %+v", entry)
	}
	// Known kinds: median becomes after, previous after becomes before.
	nd := entry.CyclesPerSec["NoDMR"]
	if nd.After != 1600000 || nd.Before != 1500000 || nd.Speedup != 1.07 {
		t.Fatalf("NoDMR: %+v", nd)
	}
	// Appended entries record the spread behind the median too.
	if nd.Min != 1500000 || nd.Max != 1700000 {
		t.Fatalf("NoDMR spread in entry: %+v", nd)
	}
	// A kind new to the suite records only an after — the exact case
	// the gate's missing-kind check could previously only fail on.
	so := entry.CyclesPerSec["SingleOS"]
	if so.After != 4000000 || so.Before != 0 || so.Speedup != 0 {
		t.Fatalf("SingleOS: %+v", so)
	}
	if _, ok := entry.CyclesPerSec["Retired"]; ok {
		t.Fatal("retired kind resurrected")
	}
	// The gate accepts the appended entry as its new baseline.
	var latest baselineEntry
	if err := json.Unmarshal(raw, &latest); err != nil {
		t.Fatal(err)
	}
	res := gate(latest.CyclesPerSec, samples, 0.35)
	if len(res.Regressions) != 0 {
		t.Fatalf("fresh entry gates its own samples: %v", res.Regressions)
	}
	// No samples at all is an error, not an empty entry.
	if _, err := buildUpdateEntry(prev, nil, 5, "2026-07-29", ""); err == nil {
		t.Fatal("empty samples accepted")
	}
}
