// Command mmmsim runs one simulated system configuration and prints
// its metrics:
//
//	mmmsim -system mmm-tp -workload oltp
//	mmmsim -system reunion -workload apache -measure 2000000
//	mmmsim -system single-os -workload zeus -v
//
// Systems: no-dmr-2x, no-dmr, reunion, dmr-base, mmm-ipc, mmm-tp,
// single-os.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mode"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		system     = flag.String("system", "mmm-tp", "system configuration (no-dmr-2x, no-dmr, reunion, dmr-base, mmm-ipc, mmm-tp, single-os)")
		policy     = flag.String("policy", "", "runtime mode policy (static, utilization, duty-cycle[:period[:duty%]], fault-escalation[:decay]); empty = static")
		wlName     = flag.String("workload", "apache", "workload model (apache, oltp, pgoltp, pmake, pgbench, zeus)")
		seed       = flag.Uint64("seed", 11, "random seed")
		warmup     = flag.Uint64("warmup", 800_000, "warmup cycles")
		measure    = flag.Uint64("measure", 1_500_000, "measurement cycles")
		timeslice  = flag.Uint64("timeslice", 250_000, "gang-scheduling timeslice cycles")
		serialPAB  = flag.Bool("serial-pab", false, "serial 2-cycle PAB lookup instead of parallel")
		noPAB      = flag.Bool("no-pab", false, "disable PAB enforcement (count violations only)")
		faults     = flag.Float64("fault-interval", 0, "mean cycles between injected faults (0 = none)")
		verbose    = flag.Bool("v", false, "print detailed counters")
		traceOut   = flag.String("trace", "", "write a flight-recorder trace as Chrome trace-event JSON (perfetto-loadable) to this file")
		traceJSONL = flag.String("trace-jsonl", "", "write the flight-recorder trace as JSON Lines to this file")
		traceCap   = flag.Int("trace-cap", 0, "flight-recorder ring capacity in events (0 = default 65536; oldest events drop first)")
	)
	flag.Parse()

	kind, err := core.ParseKind(*system)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmmsim:", err)
		os.Exit(2)
	}
	if _, err := mode.Parse(*policy); err != nil {
		fmt.Fprintln(os.Stderr, "mmmsim:", err)
		os.Exit(2)
	}
	wl, err := workload.ByName(strings.ToLower(*wlName))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmmsim:", err)
		os.Exit(2)
	}
	cfg := sim.DefaultConfig()
	cfg.TimesliceCycles = sim.Cycle(*timeslice)
	cfg.PABSerial = *serialPAB
	opts := core.Options{
		Cfg:         cfg,
		Kind:        kind,
		Policy:      *policy,
		Workload:    wl,
		Seed:        *seed,
		PABDisabled: *noPAB,
	}
	if *faults > 0 {
		opts.FaultPlan = &fault.Plan{MeanInterval: *faults}
	}
	var rec *obs.Recorder
	if *traceOut != "" || *traceJSONL != "" {
		rec = obs.NewRecorder(*traceCap)
		opts.Recorder = rec
	}
	m, err := core.RunSystem(opts, sim.Cycle(*warmup), sim.Cycle(*measure))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmmsim:", err)
		os.Exit(1)
	}
	if rec != nil {
		label := fmt.Sprintf("%s/%s/%s", kind, *policy, wl.Name)
		if err := writeTraces(rec, *traceOut, *traceJSONL, label); err != nil {
			fmt.Fprintln(os.Stderr, "mmmsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events recorded (%d dropped from the ring)\n", rec.Total(), rec.Dropped())
	}

	polName := *policy
	if polName == "" {
		polName = "static"
	}
	fmt.Printf("system=%s policy=%s workload=%s seed=%d cycles=%d\n", kind, polName, wl.Name, *seed, m.Cycles)
	for _, b := range []string{"app", "apps", "reliable", "perf"} {
		if n := m.GuestVCPUs[b]; n > 0 {
			fmt.Printf("  %-9s vcpus=%-3d user-commits=%-12d per-thread user IPC=%.4f\n",
				b, n, m.GuestUser[b], m.UserIPC(b))
		}
	}
	fmt.Printf("  total user throughput: %.0f instructions (%.4f IPC chip-wide)\n",
		m.TotalThroughput(), m.TotalThroughput()/float64(m.Cycles))
	if m.EnterN+m.LeaveN > 0 {
		fmt.Printf("  mode switches: enter=%d (avg %.0f cyc) leave=%d (avg %.0f cyc)\n",
			m.EnterN, m.EnterAvg, m.LeaveN, m.LeaveAvg)
	}
	if m.Checks > 0 {
		fmt.Printf("  reunion: %d fingerprint checks, %d mismatches\n", m.Checks, m.Mismatches)
	}
	if m.PABChecks > 0 {
		fmt.Printf("  pab: %d checks, %d misses, %d exceptions, %d would-corrupt\n",
			m.PABChecks, m.PABMisses, m.PABExceptions, m.WouldCorrupt)
	}
	if m.FaultsInjected > 0 {
		fmt.Printf("  faults: %d injected, %d verify-caught\n", m.FaultsInjected, m.VerifyFailures)
	}
	if *verbose {
		c := m.Core
		fmt.Printf("  pipeline: commits=%d user=%d os=%d loads=%d stores=%d branches=%d mispredicts=%d SIs=%d\n",
			c.Commits, c.UserCommits, c.OSCommits, c.Loads, c.Stores, c.Branches, c.Mispredicts, c.SerializingInsts)
		fmt.Printf("  stalls (core-cycles): window-full=%d si=%d check-wait=%d store-commit=%d fetch=%d idle=%d\n",
			c.WindowFullCycles, c.SIStallCycles, c.CheckWaitCycles, c.StoreCommitStall, c.FetchStallCycles, c.IdleCycles)
		h := m.Cache
		fmt.Printf("  caches: L1 %d/%d L2 %d/%d L3hit=%d C2C=%d mem=%d writebacks=%d invalidations=%d\n",
			h.L1Hits, h.L1Misses, h.L2Hits, h.L2Misses, h.L3Hits, h.C2CTransfers, h.MemAccesses, h.Writebacks, h.Invalidations)
		fmt.Printf("  flush: %d lines inspected, %d written back\n", h.FlushedLines, h.FlushWritebacks)
		fmt.Printf("  table2: user-cycles/switch=%.0f os-cycles/switch=%.0f\n", m.UserCycPerSwitch, m.OSCycPerSwitch)
	}
}

// writeTraces dumps the flight recorder in the requested formats.
func writeTraces(rec *obs.Recorder, chrome, jsonl, label string) error {
	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			return err
		}
		if err := rec.WriteChromeTrace(f, label); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if jsonl != "" {
		f, err := os.Create(jsonl)
		if err != nil {
			return err
		}
		if err := rec.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
