// Command mmmbench regenerates every table and figure of the paper's
// evaluation (Section 5) on the simulated Mixed-Mode Multicore:
//
//	mmmbench                  # everything, default scale
//	mmmbench -exp fig5a       # one experiment
//	mmmbench -quick           # reduced scale (fast smoke run)
//	mmmbench -measure 3000000 # override the measurement window
//	mmmbench -cache ./cache   # reuse results across invocations
//	mmmbench -json out.json   # machine-readable per-experiment results
//	mmmbench -workers n1:8078,n2:8078  # shard jobs across mmmd -worker nodes
//
// Experiments: fig5a, fig5b, fig6a, fig6b, table1, table2, pab,
// singleos, faults, relia, policy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/exp"
	"repro/internal/mode"
	"repro/internal/sim"
)

// expResult is one experiment's machine-readable record, consumed by
// the perf-trajectory BENCH_*.json tooling.
type expResult struct {
	Experiment string  `json:"experiment"`
	Rows       int     `json:"rows"`
	WallMS     float64 `json:"wall_ms"`
	// Trials counts the Monte Carlo trial slices the reliability study
	// simulated — the quantity -adaptive exists to shrink; 0 for
	// experiments without a trial axis.
	Trials int `json:"trials,omitempty"`
}

func main() {
	var (
		which     = flag.String("exp", "all", "experiment: all,fig5a,fig5b,fig6a,fig6b,table1,table2,pab,singleos,faults,relia,policy")
		policies  = flag.String("policies", "", "comma-separated mode-policy axis for -exp policy (e.g. 'static,duty-cycle:60000:25'); empty sweeps every registered policy")
		quick     = flag.Bool("quick", false, "reduced scale for a fast smoke run")
		warmup    = flag.Uint64("warmup", 0, "override warmup cycles")
		measure   = flag.Uint64("measure", 0, "override measurement cycles")
		slice     = flag.Uint64("timeslice", 0, "override gang-scheduling timeslice cycles")
		seeds     = flag.Int("seeds", 0, "override number of seeds")
		wls       = flag.String("workloads", "", "comma-separated workload subset (empty = all six)")
		par       = flag.Int("parallel", 0, "override worker parallelism")
		cacheDir  = flag.String("cache", "", "campaign result cache directory (empty = no cache)")
		adaptive  = flag.Bool("adaptive", false, "run -exp relia with sequential stopping: trials in waves until each cell's 95% interval is within -halfwidth")
		hw        = flag.Float64("halfwidth", 0, "adaptive target half-width on coverage (implies -adaptive; default 0.05)")
		fixTrials = flag.Int("trials", 0, "override -exp relia fixed trials per cell (sizes a fixed-batch run to an adaptive run's worst-case budget; ignored with -adaptive)")
		workers   = flag.String("workers", "", "comma-separated mmmd worker fleet (host:port,...); shards campaign jobs remotely")
		coord     = flag.String("coordinator", "", "job-board bind address for -workers (host[:port]); set a host the workers can reach for cross-host fleets (default loopback, single-machine only)")
		jsonOut   = flag.String("json", "", "write per-experiment results as JSON to this file (- for stdout)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (go tool pprof) to this file at exit")
		execTr    = flag.String("trace", "", "write a runtime execution trace (go tool trace) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmmbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mmmbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *execTr != "" {
		f, err := os.Create(*execTr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmmbench: %v\n", err)
			os.Exit(1)
		}
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "mmmbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer rtrace.Stop()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mmmbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mmmbench: %v\n", err)
			}
		}()
	}

	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	if *warmup > 0 {
		cfg.Warmup = sim.Cycle(*warmup)
	}
	if *measure > 0 {
		cfg.Measure = sim.Cycle(*measure)
	}
	if *slice > 0 {
		cfg.Timeslice = sim.Cycle(*slice)
	}
	if *seeds > 0 {
		cfg.Seeds = cfg.Seeds[:0]
		for i := 0; i < *seeds; i++ {
			cfg.Seeds = append(cfg.Seeds, uint64(11+10*i))
		}
	}
	if *par > 0 {
		cfg.Parallel = *par
	}
	if *wls != "" {
		for _, w := range strings.Split(*wls, ",") {
			if w = strings.TrimSpace(w); w != "" {
				cfg.Workloads = append(cfg.Workloads, w)
			}
		}
	}
	if *policies != "" {
		for _, p := range strings.Split(*policies, ",") {
			p = strings.TrimSpace(p)
			if _, err := mode.Parse(p); err != nil {
				fmt.Fprintf(os.Stderr, "mmmbench: -policies: %v\n", err)
				os.Exit(2)
			}
			cfg.Policies = append(cfg.Policies, p)
		}
	}
	if *adaptive || *hw > 0 {
		p := campaign.Precision{HalfWidth: *hw}
		if p.HalfWidth == 0 {
			p.HalfWidth = 0.05
		}
		cfg.Precision = &p
	}
	cfg.ReliaTrials = *fixTrials
	if *cacheDir != "" {
		cache, err := campaign.NewDiskCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmmbench: %v\n", err)
			os.Exit(1)
		}
		cfg.Cache = cache
	}
	if *workers != "" {
		fleet := campaign.ParseWorkerList(*workers)
		if len(fleet) == 0 {
			fmt.Fprintf(os.Stderr, "mmmbench: -workers %q names no workers\n", *workers)
			os.Exit(1)
		}
		// The dispatcher honors the same cache, so mixed local/remote
		// reruns resume from each other's results.
		cfg.Runner = campaign.NewDispatcher(campaign.DispatchOptions{
			Workers: fleet,
			Cache:   cfg.Cache,
			Addr:    campaign.CoordinatorAddr(*coord),
		})
	}

	var results []expResult
	matched := false
	trials := 0 // set by experiments with a trial axis, consumed per run
	run := func(name string, fn func() (int, error)) {
		if *which != "all" && !strings.EqualFold(*which, name) {
			return
		}
		matched = true
		start := time.Now()
		trials = 0
		rows, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		fmt.Printf("[%s completed in %v]\n\n", name, wall.Round(time.Millisecond))
		results = append(results, expResult{
			Experiment: name,
			Rows:       rows,
			WallMS:     float64(wall.Microseconds()) / 1000,
			Trials:     trials,
		})
	}

	var fig5 []exp.Fig5Row
	run("fig5a", func() (int, error) {
		rows, err := exp.Figure5(cfg)
		if err != nil {
			return 0, err
		}
		fig5 = rows
		fmt.Println(exp.Figure5aTable(rows))
		return len(rows), nil
	})
	run("fig5b", func() (int, error) {
		rows := fig5
		if rows == nil {
			var err error
			rows, err = exp.Figure5(cfg)
			if err != nil {
				return 0, err
			}
		}
		fmt.Println(exp.Figure5bTable(rows))
		return len(rows), nil
	})

	var fig6 []exp.Fig6Row
	run("fig6a", func() (int, error) {
		rows, err := exp.Figure6(cfg)
		if err != nil {
			return 0, err
		}
		fig6 = rows
		fmt.Println(exp.Figure6aTable(rows))
		return len(rows), nil
	})
	run("fig6b", func() (int, error) {
		rows := fig6
		if rows == nil {
			var err error
			rows, err = exp.Figure6(cfg)
			if err != nil {
				return 0, err
			}
		}
		fmt.Println(exp.Figure6bTable(rows))
		return len(rows), nil
	})

	run("table1", func() (int, error) {
		rows, err := exp.Table1(cfg)
		if err != nil {
			return 0, err
		}
		fmt.Println(exp.Table1Table(rows))
		return len(rows), nil
	})
	run("table2", func() (int, error) {
		rows, err := exp.Table2(cfg)
		if err != nil {
			return 0, err
		}
		fmt.Println(exp.Table2Table(rows))
		return len(rows), nil
	})
	run("pab", func() (int, error) {
		rows, err := exp.PABStudy(cfg)
		if err != nil {
			return 0, err
		}
		fmt.Println(exp.PABTable(rows))
		return len(rows), nil
	})
	run("singleos", func() (int, error) {
		rows, err := exp.SingleOSOverhead(cfg)
		if err != nil {
			return 0, err
		}
		fmt.Println(exp.SingleOSTable(rows))
		return len(rows), nil
	})
	run("faults", func() (int, error) {
		rows, err := exp.FaultStudy(cfg, "apache", 40_000)
		if err != nil {
			return 0, err
		}
		fmt.Println(exp.FaultTable(rows))
		return len(rows), nil
	})
	run("relia", func() (int, error) {
		rows, err := exp.ReliabilityStudy(cfg)
		if err != nil {
			return 0, err
		}
		for _, r := range rows {
			trials += r.Trials
		}
		fmt.Println(exp.ReliabilityTable(rows))
		return len(rows), nil
	})
	run("policy", func() (int, error) {
		rows, err := exp.PolicyStudy(cfg)
		if err != nil {
			return 0, err
		}
		fmt.Println(exp.PolicyTable(rows))
		return len(rows), nil
	})

	if !matched {
		fmt.Fprintf(os.Stderr, "mmmbench: unknown experiment %q (see -exp usage)\n", *which)
		os.Exit(2)
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "mmmbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeJSON emits the per-experiment records to path ("-" = stdout).
func writeJSON(path string, results []expResult) error {
	var total float64
	for _, r := range results {
		total += r.WallMS
	}
	doc := struct {
		Experiments []expResult `json:"experiments"`
		TotalWallMS float64     `json:"total_wall_ms"`
	}{Experiments: results, TotalWallMS: total}
	if doc.Experiments == nil {
		doc.Experiments = []expResult{}
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
