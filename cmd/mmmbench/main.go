// Command mmmbench regenerates every table and figure of the paper's
// evaluation (Section 5) on the simulated Mixed-Mode Multicore:
//
//	mmmbench                  # everything, default scale
//	mmmbench -exp fig5a       # one experiment
//	mmmbench -quick           # reduced scale (fast smoke run)
//	mmmbench -measure 3000000 # override the measurement window
//
// Experiments: fig5a, fig5b, fig6a, fig6b, table1, table2, pab,
// singleos, faults.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/sim"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment: all,fig5a,fig5b,fig6a,fig6b,table1,table2,pab,singleos,faults")
		quick   = flag.Bool("quick", false, "reduced scale for a fast smoke run")
		warmup  = flag.Uint64("warmup", 0, "override warmup cycles")
		measure = flag.Uint64("measure", 0, "override measurement cycles")
		slice   = flag.Uint64("timeslice", 0, "override gang-scheduling timeslice cycles")
		seeds   = flag.Int("seeds", 0, "override number of seeds")
		par     = flag.Int("parallel", 0, "override worker parallelism")
	)
	flag.Parse()

	cfg := exp.Default()
	if *quick {
		cfg = exp.Quick()
	}
	if *warmup > 0 {
		cfg.Warmup = sim.Cycle(*warmup)
	}
	if *measure > 0 {
		cfg.Measure = sim.Cycle(*measure)
	}
	if *slice > 0 {
		cfg.Timeslice = sim.Cycle(*slice)
	}
	if *seeds > 0 {
		cfg.Seeds = cfg.Seeds[:0]
		for i := 0; i < *seeds; i++ {
			cfg.Seeds = append(cfg.Seeds, uint64(11+10*i))
		}
	}
	if *par > 0 {
		cfg.Parallel = *par
	}

	run := func(name string, fn func() error) {
		if *which != "all" && !strings.EqualFold(*which, name) {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "mmmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	var fig5 []exp.Fig5Row
	run("fig5a", func() error {
		rows, err := exp.Figure5(cfg)
		if err != nil {
			return err
		}
		fig5 = rows
		fmt.Println(exp.Figure5aTable(rows))
		return nil
	})
	run("fig5b", func() error {
		rows := fig5
		if rows == nil {
			var err error
			rows, err = exp.Figure5(cfg)
			if err != nil {
				return err
			}
		}
		fmt.Println(exp.Figure5bTable(rows))
		return nil
	})

	var fig6 []exp.Fig6Row
	run("fig6a", func() error {
		rows, err := exp.Figure6(cfg)
		if err != nil {
			return err
		}
		fig6 = rows
		fmt.Println(exp.Figure6aTable(rows))
		return nil
	})
	run("fig6b", func() error {
		rows := fig6
		if rows == nil {
			var err error
			rows, err = exp.Figure6(cfg)
			if err != nil {
				return err
			}
		}
		fmt.Println(exp.Figure6bTable(rows))
		return nil
	})

	run("table1", func() error {
		rows, err := exp.Table1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(exp.Table1Table(rows))
		return nil
	})
	run("table2", func() error {
		rows, err := exp.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Println(exp.Table2Table(rows))
		return nil
	})
	run("pab", func() error {
		rows, err := exp.PABStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Println(exp.PABTable(rows))
		return nil
	})
	run("singleos", func() error {
		rows, err := exp.SingleOSOverhead(cfg)
		if err != nil {
			return err
		}
		fmt.Println(exp.SingleOSTable(rows))
		return nil
	})
	run("faults", func() error {
		rows, err := exp.FaultStudy(cfg, "apache", 40_000)
		if err != nil {
			return err
		}
		fmt.Println(exp.FaultTable(rows))
		return nil
	})
}
