package main

import (
	"strings"
	"testing"

	"repro/internal/campaign"
)

// TestParseSSE: the frame grammar — id/event/data lines, keepalive
// comments, blank-line dispatch, the terminal end frame.
func TestParseSSE(t *testing.T) {
	stream := "id: 1\nevent: expanded\ndata: {\"seq\":1,\"type\":\"expanded\",\"cell\":-1,\"total\":4}\n\n" +
		": keepalive\n\n" +
		"id: 2\nevent: started\ndata: {\"seq\":2,\"type\":\"started\",\"cell\":0}\n\n" +
		"event: end\ndata: {\"run\":\"c1\"}\n\n"
	var events []campaign.Event
	ended := false
	err := parseSSE(strings.NewReader(stream),
		func(ev campaign.Event) { events = append(events, ev) },
		func() { ended = true })
	if err != nil {
		t.Fatal(err)
	}
	if !ended {
		t.Fatal("end frame not dispatched")
	}
	if len(events) != 2 {
		t.Fatalf("parsed %d events, want 2", len(events))
	}
	if events[0].Type != campaign.EventExpanded || events[0].Total != 4 || events[0].Seq != 1 {
		t.Fatalf("first event: %+v", events[0])
	}
	if events[1].Type != campaign.EventStarted || events[1].Cell != 0 {
		t.Fatalf("second event: %+v", events[1])
	}
}

// TestParseSSEErrors: a malformed payload is an error, and a stream
// that ends without the terminal frame is reported so -follow
// reconnects instead of treating a dropped connection as completion.
func TestParseSSEErrors(t *testing.T) {
	err := parseSSE(strings.NewReader("event: merged\ndata: {not json\n\n"),
		func(campaign.Event) {}, func() {})
	if err == nil || !strings.Contains(err.Error(), "bad event payload") {
		t.Fatalf("malformed payload: %v", err)
	}

	var n int
	err = parseSSE(strings.NewReader(
		"id: 1\nevent: started\ndata: {\"seq\":1,\"type\":\"started\",\"cell\":0}\n\n"),
		func(campaign.Event) { n++ }, func() { t.Fatal("end dispatched") })
	if err == nil || !strings.Contains(err.Error(), "without an end frame") {
		t.Fatalf("truncated stream: %v", err)
	}
	if n != 1 {
		t.Fatalf("events before truncation: %d, want 1", n)
	}

	// Events after the end frame are never delivered — parsing stops.
	n = 0
	err = parseSSE(strings.NewReader(
		"event: end\ndata: {\"run\":\"c1\"}\n\n"+
			"id: 9\nevent: started\ndata: {\"seq\":9,\"type\":\"started\",\"cell\":3}\n\n"),
		func(campaign.Event) { n++ }, func() {})
	if err != nil || n != 0 {
		t.Fatalf("post-end parsing: err=%v events=%d", err, n)
	}
}
