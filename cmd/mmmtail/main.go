// Command mmmtail follows and analyzes campaign run journals.
//
// Live, against a running mmmd: consume the SSE event stream of a
// campaign until it reaches a terminal state, printing per-cell
// progress and the final wall-clock attribution report. The client
// reconnects with Last-Event-ID on transport errors, so a bounced
// coordinator connection resumes instead of double-printing.
//
//	mmmtail -follow c1
//	mmmtail -follow c1 -addr http://127.0.0.1:8077 -json
//
// Post-hoc, against a journal file: validate the journal's structural
// invariants (monotonic sequence, exactly-once in-order merges) and
// render the same attribution report from it.
//
//	mmmtail -report mmmd-cache/journals/c1.journal.jsonl
//
// Exit status: 0 when the run completed, 1 when it failed or was
// canceled (or the journal is invalid), 2 on usage or transport
// errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
)

func main() {
	var (
		follow  = flag.String("follow", "", "campaign id to stream live from mmmd")
		report  = flag.String("report", "", "journal file (JSONL) to validate and report on")
		addr    = flag.String("addr", "http://127.0.0.1:8077", "mmmd base URL for -follow")
		jsonOut = flag.Bool("json", false, "emit the attribution report as JSON instead of text")
		quiet   = flag.Bool("quiet", false, "suppress per-event progress lines in -follow mode")
	)
	flag.Parse()

	switch {
	case *follow != "" && *report != "":
		fatal(2, "use -follow or -report, not both")
	case *follow != "":
		os.Exit(followRun(*addr, *follow, *jsonOut, *quiet))
	case *report != "":
		os.Exit(reportFile(*report, *jsonOut))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mmmtail: "+format+"\n", args...)
	os.Exit(code)
}

// maxReconnects bounds how often -follow re-dials a dropped stream
// before giving up.
const maxReconnects = 10

// followRun streams one campaign's events to completion and prints
// the attribution report derived from them.
func followRun(addr, id string, jsonOut, quiet bool) int {
	base := strings.TrimSuffix(addr, "/")
	url := base + api.PathPrefix + "/campaigns/" + id + "/events"

	var events []campaign.Event
	var last int64
	done := false
	reconnects := 0
	for !done {
		err := streamSSE(url, last, func(ev campaign.Event) {
			events = append(events, ev)
			last = ev.Seq
			if !quiet {
				printEvent(&ev)
			}
		}, func() { done = true })
		if done {
			break
		}
		if err != nil {
			reconnects++
			if reconnects > maxReconnects {
				fmt.Fprintf(os.Stderr, "mmmtail: stream %s: %v (giving up after %d reconnects)\n",
					url, err, maxReconnects)
				return 2
			}
			fmt.Fprintf(os.Stderr, "mmmtail: stream %s: %v (resuming after id %d)\n", url, err, last)
			time.Sleep(time.Second)
			continue
		}
		// EOF without an end frame: the server closed the stream
		// cleanly but the run outlived the connection; resume.
	}

	rep := campaign.Attribute(id, events)
	writeReport(rep, jsonOut)
	if rep.Outcome != "done" {
		return 1
	}
	return 0
}

// reportFile validates a journal file and renders its report.
func reportFile(path string, jsonOut bool) int {
	events, err := campaign.ReadJournalFile(path)
	if err != nil {
		fatal(2, "%v", err)
	}
	chk, err := campaign.ValidateEvents(events)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmmtail: invalid journal %s: %v\n", path, err)
		return 1
	}
	runID := ""
	for i := range events {
		if events[i].Run != "" {
			runID = events[i].Run
			break
		}
	}
	if !jsonOut {
		fmt.Printf("journal %s: %d events, %d/%d cells merged, outcome %s\n",
			path, chk.Events, chk.Merged, chk.Total, chk.Outcome)
	}
	rep := campaign.Attribute(runID, events)
	writeReport(rep, jsonOut)
	if rep.Outcome != "done" {
		return 1
	}
	return 0
}

func writeReport(rep campaign.Report, jsonOut bool) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
		return
	}
	rep.WriteText(os.Stdout)
}

// printEvent renders one journal event as a progress line.
func printEvent(ev *campaign.Event) {
	switch ev.Type {
	case campaign.EventExpanded:
		if ev.Precision != nil {
			fmt.Printf("expanded: %d cells (adaptive: %s half-width <= %g)\n",
				ev.Total, ev.Precision.Metric, ev.Precision.HalfWidth)
		} else {
			fmt.Printf("expanded: %d cells\n", ev.Total)
		}
	case campaign.EventWaveScheduled:
		fmt.Printf("wave %d/%-4d %-36s %d trials, half-width %.4f\n",
			ev.Wave, ev.Cell, ev.Key, ev.Trials, ev.HalfWidth)
	case campaign.EventCellRetired:
		why := "target met"
		if ev.Capped {
			why = "capped"
		}
		fmt.Printf("retired %4d %-36s %d trials, half-width %.4f (%s)\n",
			ev.Cell, ev.Key, ev.Trials, ev.HalfWidth, why)
	case campaign.EventMerged:
		src := "simulated"
		if ev.Hit {
			src = "cache"
		}
		fmt.Printf("merged %4d  %-36s %s\n", ev.Cell, ev.Key, src)
	case campaign.EventFailed:
		if ev.Cell >= 0 {
			fmt.Printf("failed %4d  %-36s attempt %d: %s\n", ev.Cell, ev.Key, ev.Attempt, ev.Error)
		} else {
			fmt.Printf("run failed: %s\n", ev.Error)
		}
	case campaign.EventHeartbeatMissed:
		fmt.Printf("lease lost %d (%s, worker %s)\n", ev.Cell, ev.Key, ev.Worker)
	case campaign.EventReassigned:
		fmt.Printf("reassigned %d (%s) to %s, attempt %d\n", ev.Cell, ev.Key, ev.Worker, ev.Attempt)
	case campaign.EventCanceled:
		if ev.Cell == -1 {
			fmt.Printf("run canceled\n")
		}
	}
}

// streamSSE consumes one SSE connection: each complete frame with a
// data payload is decoded as a journal event and handed to onEvent;
// an "end" frame calls onEnd and returns nil. A transport error
// returns it; the caller resumes from the last delivered id.
func streamSSE(url string, after int64, onEvent func(campaign.Event), onEnd func()) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if after > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(after, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return parseSSE(resp.Body, onEvent, onEnd)
}

// parseSSE reads text/event-stream frames. Split out from the
// transport so the frame grammar (id/event/data lines, comment lines,
// blank-line dispatch) is unit-testable.
func parseSSE(r io.Reader, onEvent func(campaign.Event), onEnd func()) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var event, data string
	dispatch := func() error {
		defer func() { event, data = "", "" }()
		if data == "" {
			return nil
		}
		if event == "end" {
			onEnd()
			return io.EOF
		}
		var ev campaign.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("bad event payload %q: %w", data, err)
		}
		onEvent(ev)
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := dispatch(); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
		case strings.HasPrefix(line, ":"): // comment / keepalive
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		case strings.HasPrefix(line, "id:"):
			// The resume cursor is tracked by the caller via Event.Seq.
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("stream ended without an end frame")
}
